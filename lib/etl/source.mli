(** Simulated genomic data sources spanning the paper's Figure 2 grid.

    A source has a {e capability} (what the monitor may do with it) and a
    {e representation} (how its data look from outside):

    - [Active] sources push change notifications to subscribers;
    - [Logged] sources keep a queryable change log;
    - [Queryable] sources answer full-content queries (the monitor polls
      and diffs);
    - [Non_queryable] sources only publish periodic textual dumps.

    Representations: [Relational] (rows), [Flat_file] (GenBank text),
    [Hierarchical] (AceDB-like trees).

    Remote access is instrumented for fault injection: {!query_all},
    {!read_log} and {!dump} consult {!Genalg_fault.Fault} under site
    [source.<name>] ({!fault_site}) — [error] rules raise there, and
    [truncate]/[corrupt] rules mangle the dump text. Callers that model
    network time (the mediator) additionally charge
    [Fault.latency_s (fault_site s)] per access. *)

open Genalg_formats

type capability = Active | Logged | Queryable | Non_queryable
type representation = Relational | Flat_file | Hierarchical

type update =
  | Insert of Entry.t
  | Delete of string
  | Modify of Entry.t

type t

val create :
  name:string -> capability -> representation -> Entry.t list -> t

val name : t -> string
val capability : t -> capability
val representation : t -> representation

val fault_site : t -> string
(** ["source." ^ name t] — the fault-registry site all remote accessors
    of this source consult. *)

val entries : t -> Entry.t list
(** Current content, for test assertions — monitors must not call this on
    non-queryable sources; use the capability-specific accessors below. *)

val apply : t -> update list -> unit
(** The source's own write path: updates its content, appends to the log
    when [Logged], and fires subscriber callbacks when [Active]. *)

(** {1 Capability-specific access} *)

val subscribe : t -> (Delta.t -> unit) -> (unit, string) result
(** [Active] sources only. *)

val read_log : t -> since:int -> (Delta.t list, string) result
(** [Logged] sources only: deltas with id > [since]. *)

val query_all : t -> (Entry.t list, string) result
(** [Queryable] (and [Active]/[Logged]) sources. Fails for
    [Non_queryable]. *)

val dump : t -> string
(** Textual snapshot in the source's representation — always available
    (the paper's "periodic data dumps provided off-line"). Relational
    sources dump tab-separated rows with an accession key column. *)

val parse_dump : representation -> string -> (Entry.t list, string) result
(** Re-read a dump (used by monitors over non-queryable sources). *)
