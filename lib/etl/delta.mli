(** Deltas: the change representation of paper section 5.2.

    "Each delta must be uniquely identifiable and contain (a) information
    about the data item to which it belongs and (b) the a priori and a
    posteriori data and the time stamp for when the update became
    effective." *)

open Genalg_formats

type t = {
  id : int;                  (** unique within a source's history *)
  item : string;             (** accession of the data item *)
  before : Entry.t option;   (** a priori data; [None] for inserts *)
  after : Entry.t option;    (** a posteriori data; [None] for deletes *)
  timestamp : float;
}

type kind = Insertion | Deletion | Modification

val kind : t -> kind
(** Raises [Invalid_argument] on a delta with neither side (never built
    by this library). *)

val insertion : id:int -> timestamp:float -> Entry.t -> t
val deletion : id:int -> timestamp:float -> Entry.t -> t
val modification : id:int -> timestamp:float -> before:Entry.t -> after:Entry.t -> t

val apply : t list -> Entry.t list -> Entry.t list
(** Replay deltas over a repository state (keyed by accession; insertion
    order preserved, inserts appended). *)

(** {1 Change notifications}

    A process-wide listener registry connecting change detection to the
    caches above it: [Monitor.poll] calls {!notify} with every non-empty
    delta batch it detects, and e.g. the mediator's response cache
    subscribes with {!on_change} to drop entries for the changed source
    (see [docs/CACHING.md]). *)

val on_change : (source:string -> t list -> unit) -> int
(** Register a listener; returns a token for {!unsubscribe}. The
    registry holds the listener (and anything it closes over) alive
    until unsubscribed. *)

val unsubscribe : int -> unit

val notify : source:string -> t list -> unit
(** Deliver a batch to every listener; no-op on the empty list. *)

val pp : Format.formatter -> t -> unit
