module Db = Genalg_storage.Database
module Obs = Genalg_obs.Obs

type t = {
  db : Db.t;
  monitors : (Source.t * Monitor.t) list;
}

let ( let* ) = Result.bind

let create ?signature ~sources () =
  let signature =
    match signature with Some s -> s | None -> Genalg_core.Builtin.create ()
  in
  let db = Db.create () in
  let* () = Loader.init db signature in
  let rec attach acc = function
    | [] -> Ok (List.rev acc)
    | src :: rest ->
        let* m = Monitor.create src in
        attach ((src, m) :: acc) rest
  in
  let* monitors = attach [] sources in
  Ok { db; monitors }

let database t = t.db
let sources t = List.map fst t.monitors

let all_entries source =
  match Source.query_all source with
  | Ok entries -> Ok entries
  | Error _ ->
      (* non-queryable: go through the offline dump *)
      Source.parse_dump (Source.representation source) (Source.dump source)

let bootstrap t =
  Obs.with_span "etl.bootstrap" @@ fun () ->
  let* sourced =
    List.fold_left
      (fun acc (src, _) ->
        let* acc = acc in
        let* entries =
          Obs.with_span
            ~attrs:[ ("source", Source.name src) ]
            "etl.extract"
            (fun () -> all_entries src)
        in
        Ok (acc @ List.map (fun e -> (Source.name src, e)) entries))
      (Ok []) t.monitors
  in
  let merged =
    Obs.with_span "etl.reconcile" (fun () -> Integrator.reconcile sourced)
  in
  Loader.load_merged t.db merged

let refresh t =
  Obs.with_span "etl.refresh" @@ fun () ->
  List.fold_left
    (fun acc (src, monitor) ->
      let* stats, count = acc in
      let deltas = Monitor.poll monitor in
      let* s = Loader.incremental t.db ~source:(Source.name src) deltas in
      Ok (Loader.add_stats stats s, count + List.length deltas))
    (Ok (Loader.zero_stats, 0))
    t.monitors
