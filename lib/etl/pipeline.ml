module Db = Genalg_storage.Database
module Obs = Genalg_obs.Obs
module Fault = Genalg_fault.Fault
module Resilience = Genalg_resilience.Resilience

let c_quarantined = Obs.counter "etl.poll.quarantined"

type t = {
  db : Db.t;
  monitors : (Source.t * Monitor.t) list;
  breakers : (string, Resilience.Breaker.t) Hashtbl.t;
}

let ( let* ) = Result.bind

let create ?signature ~sources () =
  let signature =
    match signature with Some s -> s | None -> Genalg_core.Builtin.create ()
  in
  let db = Db.create () in
  let* () = Loader.init db signature in
  let rec attach acc = function
    | [] -> Ok (List.rev acc)
    | src :: rest ->
        let* m = Monitor.create src in
        attach ((src, m) :: acc) rest
  in
  let* monitors = attach [] sources in
  Ok { db; monitors; breakers = Hashtbl.create 7 }

let breaker_for t name =
  match Hashtbl.find_opt t.breakers name with
  | Some b -> b
  | None ->
      let b = Resilience.Breaker.create () in
      Hashtbl.add t.breakers name b;
      b

let quarantined t =
  Hashtbl.fold
    (fun name b acc ->
      if Resilience.Breaker.state b = Resilience.Breaker.Open then name :: acc
      else acc)
    t.breakers []
  |> List.sort compare

let database t = t.db
let sources t = List.map fst t.monitors

let all_entries source =
  match
    match Source.query_all source with
    | Ok entries -> Ok entries
    | Error _ ->
        (* non-queryable: go through the offline dump *)
        Source.parse_dump (Source.representation source) (Source.dump source)
  with
  | result -> result
  | exception Fault.Injected (_, msg) -> Error msg

let bootstrap t =
  Obs.with_span "etl.bootstrap" @@ fun () ->
  let* sourced =
    List.fold_left
      (fun acc (src, _) ->
        let* acc = acc in
        let* entries =
          Obs.with_span
            ~attrs:[ ("source", Source.name src) ]
            "etl.extract"
            (fun () -> all_entries src)
        in
        Ok (acc @ List.map (fun e -> (Source.name src, e)) entries))
      (Ok []) t.monitors
  in
  let merged =
    Obs.with_span "etl.reconcile" (fun () -> Integrator.reconcile sourced)
  in
  Loader.load_merged t.db merged

type poll_status =
  | Polled of int
  | Quarantined
  | Poll_failed of string

let poll_status_to_string = function
  | Polled n -> Printf.sprintf "polled(%d)" n
  | Quarantined -> "quarantined"
  | Poll_failed msg -> Printf.sprintf "failed(%s)" msg

type refresh_report = {
  stats : Loader.stats;
  deltas : int;
  statuses : (string * poll_status) list;
}

let refresh_report t =
  Obs.with_span "etl.refresh" @@ fun () ->
  let stats = ref Loader.zero_stats in
  let total = ref 0 in
  let statuses =
    List.map
      (fun (src, monitor) ->
        let name = Source.name src in
        let b = breaker_for t name in
        let status =
          if not (Resilience.Breaker.allow b) then begin
            (* quarantined: a source that kept failing is not polled
               again until its cooldown lets a probe through *)
            Obs.add c_quarantined 1;
            Quarantined
          end
          else
            match
              let deltas = Monitor.poll monitor in
              match Loader.incremental t.db ~source:name deltas with
              | Ok s -> Ok (s, List.length deltas)
              | Error _ as e -> e
            with
            | Ok (s, n) ->
                Resilience.Breaker.success b;
                stats := Loader.add_stats !stats s;
                total := !total + n;
                Polled n
            | Error msg ->
                Resilience.Breaker.failure b;
                Poll_failed msg
            | exception Fault.Injected (_, msg) ->
                Resilience.Breaker.failure b;
                Poll_failed msg
            | exception (Fault.Crash_point _ as e) -> raise e
            | exception exn ->
                Resilience.Breaker.failure b;
                Poll_failed (Printexc.to_string exn)
        in
        (name, status))
      t.monitors
  in
  { stats = !stats; deltas = !total; statuses }

let refresh t =
  let r = refresh_report t in
  Ok (r.stats, r.deltas)
