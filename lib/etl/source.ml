open Genalg_gdt
open Genalg_formats
module Fault = Genalg_fault.Fault

type capability = Active | Logged | Queryable | Non_queryable
type representation = Relational | Flat_file | Hierarchical

type update =
  | Insert of Entry.t
  | Delete of string
  | Modify of Entry.t

type t = {
  name : string;
  capability : capability;
  representation : representation;
  mutable entries : Entry.t list;
  mutable log : Delta.t list; (* newest first *)
  mutable subscribers : (Delta.t -> unit) list;
  mutable next_delta : int;
  mutable clock : float;
}

let create ~name capability representation entries =
  { name; capability; representation; entries; log = []; subscribers = [];
    next_delta = 1; clock = 0. }

let name t = t.name
let capability t = t.capability
let representation t = t.representation
let entries t = t.entries

(* Every remote access consults the fault registry under this site, so
   one spec clause (e.g. [source.s3:error:p=0.5]) covers queries, log
   reads and dumps alike. *)
let fault_site t = "source." ^ t.name

let find t accession =
  List.find_opt (fun (e : Entry.t) -> e.Entry.accession = accession) t.entries

let delta_of_update t u =
  t.clock <- t.clock +. 1.;
  let id = t.next_delta in
  t.next_delta <- id + 1;
  match u with
  | Insert e -> Some (Delta.insertion ~id ~timestamp:t.clock e)
  | Delete accession -> (
      match find t accession with
      | Some before -> Some (Delta.deletion ~id ~timestamp:t.clock before)
      | None ->
          t.next_delta <- id;
          None)
  | Modify e -> (
      match find t e.Entry.accession with
      | Some before -> Some (Delta.modification ~id ~timestamp:t.clock ~before ~after:e)
      | None -> Some (Delta.insertion ~id ~timestamp:t.clock e))

let apply t updates =
  List.iter
    (fun u ->
      match delta_of_update t u with
      | None -> ()
      | Some d ->
          t.entries <- Delta.apply [ d ] t.entries;
          if t.capability = Logged then t.log <- d :: t.log;
          if t.capability = Active then List.iter (fun f -> f d) t.subscribers)
    updates

let subscribe t callback =
  match t.capability with
  | Active ->
      t.subscribers <- callback :: t.subscribers;
      Ok ()
  | Logged | Queryable | Non_queryable ->
      Error (Printf.sprintf "source %s is not active" t.name)

let read_log t ~since =
  match t.capability with
  | Logged ->
      Fault.hit (fault_site t);
      Ok (List.rev (List.filter (fun (d : Delta.t) -> d.Delta.id > since) t.log))
  | Active | Queryable | Non_queryable ->
      Error (Printf.sprintf "source %s keeps no log" t.name)

let query_all t =
  match t.capability with
  | Non_queryable -> Error (Printf.sprintf "source %s is not queryable" t.name)
  | Active | Logged | Queryable ->
      Fault.hit (fault_site t);
      Ok t.entries

(* ------------------------------------------------------------------ *)
(* Dumps                                                               *)

let clean field =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) field

let feature_to_field (f : Feature.t) =
  Printf.sprintf "%s@%s@%s"
    (Feature.kind_to_string f.Feature.kind)
    (Location.to_string f.Feature.location)
    (String.concat ","
       (List.map (fun (k, v) -> k ^ "=" ^ clean v) f.Feature.qualifiers))

let feature_of_field s =
  match String.split_on_char '@' s with
  | [ kind; loc; quals ] -> (
      match Location.of_string loc with
      | Error msg -> Error msg
      | Ok location ->
          let qualifiers =
            if quals = "" then []
            else
              List.filter_map
                (fun kv ->
                  match String.index_opt kv '=' with
                  | None -> None
                  | Some i ->
                      Some
                        ( String.sub kv 0 i,
                          String.sub kv (i + 1) (String.length kv - i - 1) ))
                (String.split_on_char ',' quals)
          in
          Ok (Feature.make ~qualifiers (Feature.kind_of_string kind) location))
  | _ -> Error (Printf.sprintf "bad feature field %S" s)

let relational_row (e : Entry.t) =
  String.concat "\t"
    [
      e.Entry.accession;
      string_of_int e.Entry.version;
      clean e.Entry.definition;
      clean e.Entry.organism;
      String.concat ";" (List.map clean e.Entry.keywords);
      String.concat "|" (List.map feature_to_field e.Entry.features);
      Sequence.to_string e.Entry.sequence;
    ]

let relational_row_parse line =
  match String.split_on_char '\t' line with
  | [ accession; version; definition; organism; keywords; features; seq ] -> (
      let version = Option.value (int_of_string_opt version) ~default:1 in
      let keywords =
        if keywords = "" then [] else String.split_on_char ';' keywords
      in
      let feature_fields =
        if features = "" then [] else String.split_on_char '|' features
      in
      let rec parse_features acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
            match feature_of_field f with
            | Ok feat -> parse_features (feat :: acc) rest
            | Error _ as e -> e)
      in
      match parse_features [] feature_fields with
      | Error _ as e -> e
      | Ok features -> (
          match Sequence.of_string Sequence.Dna seq with
          | Error msg -> Error msg
          | Ok sequence ->
              Ok
                (Entry.make ~version ~definition ~organism ~features ~keywords
                   ~accession sequence)))
  | _ -> Error (Printf.sprintf "bad relational row: %d fields"
                  (List.length (String.split_on_char '\t' line)))

let dump t =
  Fault.hit (fault_site t);
  let text =
    match t.representation with
    | Flat_file -> Genbank.print t.entries
    | Hierarchical ->
        String.concat ""
          (List.map (fun e -> Acedb.print (Acedb.of_entry e)) t.entries)
    | Relational ->
        String.concat "" (List.map (fun e -> relational_row e ^ "\n") t.entries)
  in
  (* truncate/corrupt rules mangle the dump text — the wire payload — so
     downstream parsers see realistic damage *)
  Fault.mangle (fault_site t) text

let parse_dump representation text =
  match representation with
  | Flat_file -> Genbank.parse text
  | Relational ->
      let lines = List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text) in
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | l :: rest -> (
            match relational_row_parse l with
            | Ok e -> parse (e :: acc) rest
            | Error _ as err -> err)
      in
      parse [] lines
  | Hierarchical ->
      (* split on unindented lines *)
      let lines = String.split_on_char '\n' text in
      let chunks = ref [] and current = ref [] in
      List.iter
        (fun line ->
          if String.trim line = "" then ()
          else if line.[0] <> ' ' && !current <> [] then begin
            chunks := List.rev !current :: !chunks;
            current := [ line ]
          end
          else current := line :: !current)
        lines;
      if !current <> [] then chunks := List.rev !current :: !chunks;
      let chunks = List.rev !chunks in
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | chunk :: rest -> (
            match Acedb.parse (String.concat "\n" chunk) with
            | Error _ as e -> e
            | Ok tree -> (
                match Acedb.to_entry tree with
                | Ok e -> parse (e :: acc) rest
                | Error _ as err -> err))
      in
      parse [] chunks
