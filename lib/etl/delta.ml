open Genalg_formats

type t = {
  id : int;
  item : string;
  before : Entry.t option;
  after : Entry.t option;
  timestamp : float;
}

type kind = Insertion | Deletion | Modification

let kind t =
  match t.before, t.after with
  | None, Some _ -> Insertion
  | Some _, None -> Deletion
  | Some _, Some _ -> Modification
  | None, None -> invalid_arg "Delta.kind: empty delta"

let insertion ~id ~timestamp e =
  { id; item = e.Entry.accession; before = None; after = Some e; timestamp }

let deletion ~id ~timestamp e =
  { id; item = e.Entry.accession; before = Some e; after = None; timestamp }

let modification ~id ~timestamp ~before ~after =
  { id; item = after.Entry.accession; before = Some before; after = Some after; timestamp }

let apply deltas entries =
  let order = List.map (fun (e : Entry.t) -> e.Entry.accession) entries in
  let state = Hashtbl.create 64 in
  List.iter (fun (e : Entry.t) -> Hashtbl.replace state e.Entry.accession e) entries;
  let appended = ref [] in
  List.iter
    (fun d ->
      match kind d with
      | Insertion ->
          let e = Option.get d.after in
          if not (Hashtbl.mem state d.item) then appended := d.item :: !appended;
          Hashtbl.replace state d.item e
      | Deletion -> Hashtbl.remove state d.item
      | Modification -> Hashtbl.replace state d.item (Option.get d.after))
    deltas;
  let surviving = List.filter_map (fun acc -> Hashtbl.find_opt state acc) order in
  let inserted =
    List.filter_map (fun acc -> Hashtbl.find_opt state acc) (List.rev !appended)
  in
  surviving @ inserted

(* ---- change notifications ----------------------------------------- *)
(* Downstream caches (the mediator's per-source response cache) register
   here; [Monitor.poll] publishes every non-empty batch of detected
   deltas under the originating source's name. *)

let next_listener = ref 0
let listeners : (int, source:string -> t list -> unit) Hashtbl.t = Hashtbl.create 4

let on_change f =
  incr next_listener;
  Hashtbl.replace listeners !next_listener f;
  !next_listener

let unsubscribe id = Hashtbl.remove listeners id

let notify ~source deltas =
  if deltas <> [] then Hashtbl.iter (fun _ f -> f ~source deltas) listeners

let pp ppf t =
  let k = match kind t with
    | Insertion -> "insert"
    | Deletion -> "delete"
    | Modification -> "modify"
  in
  Format.fprintf ppf "delta#%d %s %s @%g" t.id k t.item t.timestamp
