open Genalg_formats
module Lcs = Genalg_align.Lcs
module Obs = Genalg_obs.Obs

let c_insertions = Obs.counter "etl.deltas.insertion"
let c_deletions = Obs.counter "etl.deltas.deletion"
let c_modifications = Obs.counter "etl.deltas.modification"
let c_diff_cost = Obs.counter "etl.diff_cost"

type technique =
  | Database_trigger
  | Program_trigger
  | Log_inspection
  | Edit_sequence
  | Snapshot_differential
  | Lcs_diff
  | Tree_diff

let technique_for capability representation =
  match capability, representation with
  | Source.Active, Source.Relational -> Some Database_trigger
  | Source.Active, Source.Hierarchical -> Some Program_trigger
  | Source.Active, Source.Flat_file -> None
  | Source.Logged, _ -> Some Log_inspection
  | Source.Queryable, Source.Hierarchical -> Some Edit_sequence
  | Source.Queryable, Source.Relational -> Some Snapshot_differential
  | Source.Queryable, Source.Flat_file -> None
  | Source.Non_queryable, Source.Hierarchical -> Some Tree_diff
  | Source.Non_queryable, Source.Flat_file -> Some Lcs_diff
  | Source.Non_queryable, Source.Relational -> None

let technique_to_string = function
  | Database_trigger -> "database trigger"
  | Program_trigger -> "program trigger"
  | Log_inspection -> "log inspection"
  | Edit_sequence -> "edit sequence"
  | Snapshot_differential -> "snapshot differential"
  | Lcs_diff -> "LCS diff"
  | Tree_diff -> "tree diff"

let technique_slug = function
  | Database_trigger -> "database_trigger"
  | Program_trigger -> "program_trigger"
  | Log_inspection -> "log_inspection"
  | Edit_sequence -> "edit_sequence"
  | Snapshot_differential -> "snapshot_differential"
  | Lcs_diff -> "lcs_diff"
  | Tree_diff -> "tree_diff"

type t = {
  source : Source.t;
  technique : technique;
  mutable pushed : Delta.t list;      (* trigger techniques: queue, newest first *)
  mutable log_cursor : int;           (* log inspection *)
  mutable snapshot : Entry.t list;    (* edit sequence / snapshot differential *)
  mutable last_dump : string;         (* LCS / tree diff *)
  mutable next_id : int;
  mutable clock : float;
  mutable diff_cost : int;
}

let technique t = t.technique
let last_diff_cost t = t.diff_cost

let create source =
  match technique_for (Source.capability source) (Source.representation source) with
  | None ->
      Error
        (Printf.sprintf "no change-detection technique for this source class (%s)"
           (Source.name source))
  | Some technique ->
      let t =
        {
          source;
          technique;
          pushed = [];
          log_cursor = 0;
          snapshot = [];
          last_dump = "";
          next_id = 1;
          clock = 0.;
          diff_cost = 0;
        }
      in
      (match technique with
      | Database_trigger | Program_trigger ->
          (match Source.subscribe source (fun d -> t.pushed <- d :: t.pushed) with
          | Ok () -> ()
          | Error _ -> ())
      | Log_inspection -> ()
      | Edit_sequence | Snapshot_differential ->
          t.snapshot <- (match Source.query_all source with Ok e -> e | Error _ -> [])
      | Lcs_diff | Tree_diff -> t.last_dump <- Source.dump source);
      Ok t

let fresh_delta t make =
  t.clock <- t.clock +. 1.;
  let id = t.next_id in
  t.next_id <- id + 1;
  make ~id ~timestamp:t.clock

(* Keyed comparison of two entry lists: the common core of edit-sequence
   and snapshot-differential detection (and of dump-based techniques after
   re-parsing). *)
let keyed_diff t old_entries new_entries =
  let old_tbl = Hashtbl.create 64 and new_tbl = Hashtbl.create 64 in
  List.iter (fun (e : Entry.t) -> Hashtbl.replace old_tbl e.Entry.accession e) old_entries;
  List.iter (fun (e : Entry.t) -> Hashtbl.replace new_tbl e.Entry.accession e) new_entries;
  let deltas = ref [] in
  (* deletions and modifications, in old order *)
  List.iter
    (fun (old_e : Entry.t) ->
      match Hashtbl.find_opt new_tbl old_e.Entry.accession with
      | None -> deltas := fresh_delta t (fun ~id ~timestamp -> Delta.deletion ~id ~timestamp old_e) :: !deltas
      | Some new_e ->
          if not (Entry.equal old_e new_e) then
            deltas :=
              fresh_delta t (fun ~id ~timestamp ->
                  Delta.modification ~id ~timestamp ~before:old_e ~after:new_e)
              :: !deltas)
    old_entries;
  (* insertions, in new order *)
  List.iter
    (fun (new_e : Entry.t) ->
      if not (Hashtbl.mem old_tbl new_e.Entry.accession) then
        deltas := fresh_delta t (fun ~id ~timestamp -> Delta.insertion ~id ~timestamp new_e) :: !deltas)
    new_entries;
  List.rev !deltas

let poll_inner t =
  match t.technique with
  | Database_trigger | Program_trigger ->
      let ds = List.rev t.pushed in
      t.pushed <- [];
      ds
  | Log_inspection -> (
      match Source.read_log t.source ~since:t.log_cursor with
      | Error _ -> []
      | Ok ds ->
          List.iter (fun (d : Delta.t) -> t.log_cursor <- max t.log_cursor d.Delta.id) ds;
          ds)
  | Edit_sequence | Snapshot_differential -> (
      match Source.query_all t.source with
      | Error _ -> []
      | Ok current ->
          let ds = keyed_diff t t.snapshot current in
          t.snapshot <- current;
          ds)
  | Lcs_diff -> (
      let dump = Source.dump t.source in
      (* the raw flat-file comparison: Myers diff over lines (the paper's
         "longest common subsequence approach, used in the UNIX diff
         command") *)
      let old_lines = Array.of_list (String.split_on_char '\n' t.last_dump) in
      let new_lines = Array.of_list (String.split_on_char '\n' dump) in
      let script = Lcs.diff ~equal:String.equal old_lines new_lines in
      t.diff_cost <- Lcs.edit_distance_of script;
      if t.diff_cost = 0 then begin
        t.last_dump <- dump;
        []
      end
      else begin
        (* identify the affected records by re-parsing both dumps *)
        match
          ( Source.parse_dump (Source.representation t.source) t.last_dump,
            Source.parse_dump (Source.representation t.source) dump )
        with
        | Ok old_entries, Ok new_entries ->
            let ds = keyed_diff t old_entries new_entries in
            t.last_dump <- dump;
            ds
        | _ ->
            t.last_dump <- dump;
            []
      end)
  | Tree_diff -> (
      let dump = Source.dump t.source in
      match
        ( Source.parse_dump (Source.representation t.source) t.last_dump,
          Source.parse_dump (Source.representation t.source) dump )
      with
      | Ok old_entries, Ok new_entries ->
          (* per-record ordered-tree diff drives both the cost accounting
             and the modification detection *)
          let new_tbl = Hashtbl.create 64 in
          List.iter
            (fun (e : Entry.t) -> Hashtbl.replace new_tbl e.Entry.accession e)
            new_entries;
          let total_cost = ref 0 in
          List.iter
            (fun (old_e : Entry.t) ->
              match Hashtbl.find_opt new_tbl old_e.Entry.accession with
              | Some new_e ->
                  let edits =
                    Tree_diff.diff (Acedb.of_entry old_e) (Acedb.of_entry new_e)
                  in
                  total_cost := !total_cost + Tree_diff.cost edits
              | None ->
                  total_cost := !total_cost + Acedb.size (Acedb.of_entry old_e))
            old_entries;
          t.diff_cost <- !total_cost;
          let ds = keyed_diff t old_entries new_entries in
          t.last_dump <- dump;
          ds
      | _ ->
          t.last_dump <- dump;
          [])

let poll t =
  Obs.with_span
    ~attrs:[ ("source", Source.name t.source) ]
    ("etl.poll." ^ technique_slug t.technique)
    (fun () ->
      let ds = poll_inner t in
      List.iter
        (fun (d : Delta.t) ->
          match Delta.kind d with
          | Delta.Insertion -> Obs.add c_insertions 1
          | Delta.Deletion -> Obs.add c_deletions 1
          | Delta.Modification -> Obs.add c_modifications 1)
        ds;
      (match t.technique with
      | Lcs_diff | Tree_diff -> Obs.add c_diff_cost t.diff_cost
      | Database_trigger | Program_trigger | Log_inspection | Edit_sequence
      | Snapshot_differential ->
          ());
      Delta.notify ~source:(Source.name t.source) ds;
      ds)
