(** The assembled ETL pipeline of Figure 3: sources → monitors → wrappers
    → integrator → loader → Unifying Database.

    Owns a database and one monitor per source. {!bootstrap} performs the
    initial cross-source reconciliation and full load; {!refresh} polls
    every monitor and applies the detected deltas incrementally. Refresh
    is manual by design — the paper's "manual refresh option … allows the
    biologist to defer or advance updates depending on the situation". *)

module Db := Genalg_storage.Database

type t

val create :
  ?signature:Genalg_core.Signature.t ->
  sources:Source.t list ->
  unit ->
  (t, string) result
(** Build the pipeline: fresh database, adapter attached, warehouse
    tables created, monitors attached (sources on N/A Figure 2 cells are
    rejected). No data is loaded yet. *)

val database : t -> Db.t
val sources : t -> Source.t list

val bootstrap : t -> (Loader.stats, string) result
(** Initial load: read every source in full (via its dump for
    non-queryable sources), reconcile across sources, load.

    Observability: runs under an [etl.bootstrap] span, with one
    [etl.extract] child span per source (carrying a [source] attribute),
    an [etl.reconcile] span around cross-source integration, and the
    loader's [etl.load_merged] span around the warehouse load. *)

(** {1 Refresh} *)

(** Per-source outcome of one refresh round. *)
type poll_status =
  | Polled of int         (** deltas detected and applied *)
  | Quarantined           (** skipped: its circuit breaker is open after
                              repeated failures ([etl.poll.quarantined]) *)
  | Poll_failed of string (** the poll or its load failed this round *)

val poll_status_to_string : poll_status -> string

type refresh_report = {
  stats : Loader.stats;   (** aggregated over the sources that polled *)
  deltas : int;           (** total deltas applied *)
  statuses : (string * poll_status) list;  (** per source, in order *)
}

val refresh_report : t -> refresh_report
(** Poll every non-quarantined monitor and apply deltas incrementally.
    One failing source — including injected faults — cannot abort the
    round: its status is recorded and the rest still refresh. A source
    that fails 3 consecutive rounds is quarantined (circuit breaker with
    a 2-round cooldown, then one probe poll; see
    {!Genalg_resilience.Resilience.Breaker}).
    {!Genalg_fault.Fault.Crash_point} is the one exception that always
    propagates.

    Observability: runs under an [etl.refresh] span; each poll runs under
    its technique's [etl.poll.<slug>] span and each load under
    [etl.incremental]. *)

val refresh : t -> (Loader.stats * int, string) result
(** [refresh_report] without the per-source detail (never [Error];
    kept for compatibility). *)

val quarantined : t -> string list
(** Sources currently quarantined (breaker open), sorted. *)
