(** The assembled ETL pipeline of Figure 3: sources → monitors → wrappers
    → integrator → loader → Unifying Database.

    Owns a database and one monitor per source. {!bootstrap} performs the
    initial cross-source reconciliation and full load; {!refresh} polls
    every monitor and applies the detected deltas incrementally. Refresh
    is manual by design — the paper's "manual refresh option … allows the
    biologist to defer or advance updates depending on the situation". *)

module Db := Genalg_storage.Database

type t

val create :
  ?signature:Genalg_core.Signature.t ->
  sources:Source.t list ->
  unit ->
  (t, string) result
(** Build the pipeline: fresh database, adapter attached, warehouse
    tables created, monitors attached (sources on N/A Figure 2 cells are
    rejected). No data is loaded yet. *)

val database : t -> Db.t
val sources : t -> Source.t list

val bootstrap : t -> (Loader.stats, string) result
(** Initial load: read every source in full (via its dump for
    non-queryable sources), reconcile across sources, load.

    Observability: runs under an [etl.bootstrap] span, with one
    [etl.extract] child span per source (carrying a [source] attribute),
    an [etl.reconcile] span around cross-source integration, and the
    loader's [etl.load_merged] span around the warehouse load. *)

val refresh : t -> (Loader.stats * int, string) result
(** Poll all monitors; apply deltas incrementally. Returns load stats and
    the number of deltas processed.

    Observability: runs under an [etl.refresh] span; each poll runs under
    its technique's [etl.poll.<slug>] span and each load under
    [etl.incremental]. *)
