open Genalg_gdt
open Genalg_formats
module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Schema = Genalg_storage.Schema
module D = Genalg_storage.Dtype
module Obs = Genalg_obs.Obs

let c_sequences = Obs.counter "etl.rows.sequences"
let c_genes = Obs.counter "etl.rows.genes"
let c_proteins = Obs.counter "etl.rows.proteins"
let c_conflicts = Obs.counter "etl.rows.conflicts"
let c_history = Obs.counter "etl.rows.history"
let c_deleted = Obs.counter "etl.rows.deleted"

type stats = {
  entries : int;
  genes : int;
  proteins : int;
  conflicts : int;
}

let zero_stats = { entries = 0; genes = 0; proteins = 0; conflicts = 0 }

let add_stats a b =
  {
    entries = a.entries + b.entries;
    genes = a.genes + b.genes;
    proteins = a.proteins + b.proteins;
    conflicts = a.conflicts + b.conflicts;
  }

let ( let* ) = Result.bind

let actor = Db.loader_actor

let col name dtype = { Schema.name; dtype; nullable = false }
let col_null name dtype = { Schema.name; dtype; nullable = true }

let sequences_schema () =
  Schema.make_exn
    [
      col "accession" D.TString;
      col "version" D.TInt;
      col "source" D.TString;
      col "organism" D.TString;
      col_null "definition" D.TString;
      col "seq" (D.TOpaque "dna");
      col "length" D.TInt;
      col "gc" D.TFloat;
      col "consistent" D.TBool;
    ]

let genes_schema () =
  Schema.make_exn
    [
      col "id" D.TString;
      col "accession" D.TString;
      col "gene" (D.TOpaque "gene");
      col "exon_count" D.TInt;
      col "length" D.TInt;
    ]

let proteins_schema () =
  Schema.make_exn
    [
      col "id" D.TString;
      col "accession" D.TString;
      col "protein" (D.TOpaque "protein");
      col "length" D.TInt;
      col "weight" D.TFloat;
    ]

let history_schema () =
  Schema.make_exn
    [
      col "accession" D.TString;
      col "version" D.TInt;
      col "source" D.TString;
      col "replaced_at" D.TFloat;
      col "seq" (D.TOpaque "dna");
    ]

let conflicts_schema () =
  Schema.make_exn
    [
      col "accession" D.TString;
      col "rank" D.TInt;
      col "confidence" D.TFloat;
      col "source" D.TString;
      col "seq" (D.TOpaque "dna");
    ]

let init db signature =
  Genalg_adapter.Adapter.attach db signature;
  let* seq_table =
    Db.create_table db ~actor ~space:Db.Public ~name:"sequences" (sequences_schema ())
  in
  let* gene_table =
    Db.create_table db ~actor ~space:Db.Public ~name:"genes" (genes_schema ())
  in
  let* protein_table =
    Db.create_table db ~actor ~space:Db.Public ~name:"proteins" (proteins_schema ())
  in
  let* _ =
    Db.create_table db ~actor ~space:Db.Public ~name:"conflicts" (conflicts_schema ())
  in
  let* _ =
    Db.create_table db ~actor ~space:Db.Public ~name:"history" (history_schema ())
  in
  let* () = Table.create_index seq_table ~column:"accession" in
  let* () = Table.create_index gene_table ~column:"accession" in
  let* () = Table.create_index protein_table ~column:"accession" in
  Ok ()

let dna_value seq = D.Opaque ("dna", Sequence.to_bytes seq)

let gene_value g = D.Opaque ("gene", Genalg_adapter.Codec.encode_gene g)

let gc_of seq =
  let n = Sequence.length seq in
  if n = 0 then 0. else float_of_int (Sequence.gc_count seq) /. float_of_int n

let sequence_row ~source (e : Entry.t) ~consistent ~sequence =
  [|
    D.Str e.Entry.accession;
    D.Int e.Entry.version;
    D.Str source;
    D.Str e.Entry.organism;
    D.Str e.Entry.definition;
    dna_value sequence;
    D.Int (Sequence.length sequence);
    D.Float (gc_of sequence);
    D.Bool consistent;
  |]

let gene_rows ~accession genes =
  List.map
    (fun (g : Gene.t) ->
      [|
        D.Str g.Gene.id;
        D.Str accession;
        gene_value g;
        D.Int (Gene.exon_count g);
        D.Int (Gene.length g);
      |])
    genes

let protein_value p = D.Opaque ("protein", Genalg_adapter.Codec.encode_protein p)

(* decode every extracted gene; genes without a clean translation are
   simply not represented in [proteins] *)
let protein_rows ~accession genes =
  List.filter_map
    (fun (g : Gene.t) ->
      match Genalg_core.Ops.decode g with
      | Error _ -> None
      | Ok p ->
          Some
            [|
              D.Str p.Protein.id;
              D.Str accession;
              protein_value p;
              D.Int (Protein.length p);
              D.Float (Protein.molecular_weight p);
            |])
    genes

let insert_entry db ~source (e : Entry.t) ~consistent ~sequence =
  let* _ =
    Db.insert db ~actor ~space:Db.Public ~table:"sequences"
      (sequence_row ~source e ~consistent ~sequence)
  in
  let extracted = Wrapper.extract ~source e in
  let rec insert_rows table n = function
    | [] -> Ok n
    | row :: rest ->
        let* _ = Db.insert db ~actor ~space:Db.Public ~table row in
        insert_rows table (n + 1) rest
  in
  let* gene_count =
    insert_rows "genes" 0 (gene_rows ~accession:e.Entry.accession extracted.Wrapper.genes)
  in
  let* protein_count =
    insert_rows "proteins" 0
      (protein_rows ~accession:e.Entry.accession extracted.Wrapper.genes)
  in
  Obs.add c_sequences 1;
  Obs.add c_genes gene_count;
  Obs.add c_proteins protein_count;
  Ok { entries = 1; genes = gene_count; proteins = protein_count; conflicts = 0 }

let insert_conflicts db ~accession alternatives =
  let rec loop rank n = function
    | [] -> Ok n
    | (alt : Sequence.t Uncertain.alternative) :: rest ->
        let source =
          match alt.Uncertain.provenance with
          | Some p -> p.Provenance.source
          | None -> "?"
        in
        let* _ =
          Db.insert db ~actor ~space:Db.Public ~table:"conflicts"
            [|
              D.Str accession;
              D.Int rank;
              D.Float alt.Uncertain.confidence;
              D.Str source;
              dna_value alt.Uncertain.value;
            |]
        in
        loop (rank + 1) (n + 1) rest
  in
  let* n = loop 1 0 alternatives in
  Obs.add c_conflicts n;
  Ok n

let load_merged db merged =
  Obs.with_span "etl.load_merged" @@ fun () ->
  let rec loop stats = function
    | [] -> Ok stats
    | (m : Integrator.merged) :: rest ->
        let source =
          match m.Integrator.members with (src, _) :: _ -> src | [] -> "?"
        in
        let best_sequence = Uncertain.best m.Integrator.sequence in
        let* s =
          insert_entry db ~source m.Integrator.canonical
            ~consistent:m.Integrator.consistent ~sequence:best_sequence
        in
        let* conflict_count =
          if m.Integrator.consistent then Ok 0
          else
            insert_conflicts db
              ~accession:m.Integrator.canonical.Entry.accession
              (Uncertain.alternatives m.Integrator.sequence)
        in
        loop (add_stats stats (add_stats s { zero_stats with conflicts = conflict_count })) rest
  in
  loop zero_stats merged

let table_exn db name =
  match Db.find_table db ~space:Db.Public name with
  | Some t -> Ok t
  | None -> Error (Printf.sprintf "warehouse table %s missing (run Loader.init)" name)

let delete_where db name pred =
  let* table = table_exn db name in
  let victims = ref [] in
  Table.scan table (fun rid row -> if pred row then victims := rid :: !victims);
  List.iter (fun rid -> ignore (Table.delete table rid)) !victims;
  Obs.add c_deleted (List.length !victims);
  Ok (List.length !victims)

let clear db =
  let* _ = delete_where db "sequences" (fun _ -> true) in
  let* _ = delete_where db "genes" (fun _ -> true) in
  let* _ = delete_where db "proteins" (fun _ -> true) in
  let* _ = delete_where db "conflicts" (fun _ -> true) in
  let* _ = delete_where db "history" (fun _ -> true) in
  Ok ()

let accession_matches accession row =
  match row.(0) with D.Str s -> s = accession | _ -> false

let gene_accession_matches accession (row : D.value array) =
  match row.(1) with D.Str s -> s = accession | _ -> false

let remove_accession db accession =
  let* _ = delete_where db "sequences" (accession_matches accession) in
  let* _ = delete_where db "genes" (gene_accession_matches accession) in
  let* _ = delete_where db "proteins" (gene_accession_matches accession) in
  let* _ = delete_where db "conflicts" (accession_matches accession) in
  Ok ()

(* archive the a-priori data of a replaced or deleted record (the delta's
   "a priori" side, section 5.2; archival requirement C15) *)
let archive db ~source ~timestamp (before : Entry.t) =
  let* _ =
    Db.insert db ~actor ~space:Db.Public ~table:"history"
      [|
        D.Str before.Entry.accession;
        D.Int before.Entry.version;
        D.Str source;
        D.Float timestamp;
        dna_value before.Entry.sequence;
      |]
  in
  Obs.add c_history 1;
  Ok ()

let incremental db ~source deltas =
  Obs.with_span ~attrs:[ ("source", source) ] "etl.incremental" @@ fun () ->
  let rec loop stats = function
    | [] -> Ok stats
    | (d : Delta.t) :: rest -> (
        match Delta.kind d with
        | Delta.Deletion ->
            let* () =
              match d.Delta.before with
              | Some before -> archive db ~source ~timestamp:d.Delta.timestamp before
              | None -> Ok ()
            in
            let* () = remove_accession db d.Delta.item in
            loop stats rest
        | Delta.Insertion ->
            (* upsert: a source may re-announce an accession it already
               holds; the warehouse must not grow duplicate rows *)
            let e = Option.get d.Delta.after in
            let* () = remove_accession db d.Delta.item in
            let* s = insert_entry db ~source e ~consistent:true ~sequence:e.Entry.sequence in
            loop (add_stats stats s) rest
        | Delta.Modification ->
            let e = Option.get d.Delta.after in
            let* () =
              match d.Delta.before with
              | Some before -> archive db ~source ~timestamp:d.Delta.timestamp before
              | None -> Ok ()
            in
            let* () = remove_accession db d.Delta.item in
            let* s = insert_entry db ~source e ~consistent:true ~sequence:e.Entry.sequence in
            loop (add_stats stats s) rest)
  in
  loop zero_stats deltas
