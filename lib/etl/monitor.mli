(** Source monitors: change detection for every populated cell of the
    paper's Figure 2.

    {v
                    Hierarchical        Flat file      Relational
    Active          program trigger     N/A            database trigger
    Logged          inspect log         inspect log    inspect log
    Queryable       edit sequence       N/A            snapshot differential
    Non-queryable   tree diff (acediff) LCS diff       N/A
    v}

    A monitor wraps one source, remembers whatever state its technique
    needs (log cursor, last snapshot, last dump), and each {!poll} returns
    the deltas since the previous poll. *)

type technique =
  | Database_trigger
  | Program_trigger
  | Log_inspection
  | Edit_sequence          (** structured snapshot comparison *)
  | Snapshot_differential  (** keyed relational snapshot join *)
  | Lcs_diff               (** Myers/LCS over flat-file dump lines *)
  | Tree_diff              (** ordered-tree diff over hierarchical dumps *)

val technique_for :
  Source.capability -> Source.representation -> technique option
(** [None] for the grid's N/A cells. *)

val technique_to_string : technique -> string

val technique_slug : technique -> string
(** Lower-snake-case name used in instrument names: each {!poll} runs
    under an [etl.poll.<slug>] span carrying a [source] attribute. *)

type t

val create : Source.t -> (t, string) result
(** Attach to a source. Fails on N/A cells. For [Active] sources this
    subscribes a callback; for snapshot techniques it records the initial
    state, so only subsequent changes are reported. *)

val technique : t -> technique

val poll : t -> Delta.t list
(** Changes since the last poll (or creation), in occurrence order.
    Deltas are renumbered by the monitor for snapshot techniques (the
    source's own ids are unknowable there).

    Observability: runs under an [etl.poll.<technique_slug>] span; each
    returned delta bumps [etl.deltas.insertion] / [etl.deltas.deletion] /
    [etl.deltas.modification], and dump-comparison techniques add their
    raw edit-script size to the [etl.diff_cost] counter. *)

val last_diff_cost : t -> int
(** Size of the most recent raw edit script (LCS line edits or tree-edit
    cost); 0 for trigger/log techniques. Exposed for the Figure 2
    experiment. *)
