module D = Genalg_storage.Dtype
module T = Genalg_storage.Table
module Obs = Genalg_obs.Obs

let c_cost_based = Obs.counter "sqlx.opt.cost_based_tables"
let c_index_paths = Obs.counter "sqlx.opt.index_paths"
let c_contains_paths = Obs.counter "sqlx.opt.genomic_contains_paths"
let c_seed_paths = Obs.counter "sqlx.opt.genomic_seed_paths"
let c_reordered = Obs.counter "sqlx.opt.reordered_joins"

type access =
  | Full_scan
  | Index_eq of { column : string; key : D.value }
  | Index_range of {
      column : string;
      lo : D.value option;
      hi : D.value option;
      lo_inclusive : bool;
      hi_inclusive : bool;
    }
  | Genomic_contains of { column : string; pattern : string }
  | Genomic_seed of {
      column : string;
      pattern : string;  (* uppercased, pure ACGT *)
      min_len : int;
      threshold : float;
    }

type table_plan = {
  table : string;
  alias : string;
  access : access;
  filters : Ast.expr list;
  est_rows : float option;
  vec_kernels : string list;
      (* packed-kernel labels the vectorized scan expects to use for
         the pushed-down filters; display-only (EXPLAIN) *)
}

type join_strategy =
  | Nested_loop
  | Hash_join of { outer_alias : string; outer_col : string; inner_col : string }

type join_step = {
  step_alias : string;
  strategy : join_strategy;
  step_filters : Ast.expr list;
  step_est : float option;
}

type t = {
  tables : table_plan list;
  join_filters : Ast.expr list;
  joins : join_step list;
  tail_filters : Ast.expr list;
  est_out : float option;
  output_order : string list;
}

(* Planner mode: [Cost_based] uses the ANALYZE statistics catalog when
   the executor supplies one (and a table has been analyzed);
   [Heuristic] always uses the static constants below. Flip it through
   [Exec.set_planner_mode], which also drops cached plans. *)
type mode = Heuristic | Cost_based

let mode_ref = ref Cost_based
let set_mode m = mode_ref := m
let mode () = !mode_ref

(* Statistics the cost-based planner pulls per table; supplied by the
   executor from live [Table.t] handles so plans see current stats. *)
type stats_provider = {
  analyzed : table:string -> bool;
  row_count : table:string -> int;
  stats_of : table:string -> column:string -> T.column_stats option;
  genomic_k_of : table:string -> column:string -> int option;
  genomic_mean_len_of : table:string -> column:string -> float option;
  is_dna : table:string -> column:string -> bool;
}

(* Global switch so benches/tests can force the nested-loop baseline.
   Callers that flip it must drop cached plans (Exec.set_hash_join_enabled
   does). *)
let hash_join_flag = ref true
let set_hash_join_enabled b = hash_join_flag := b
let hash_join_enabled () = !hash_join_flag

type catalog = {
  has_index : table:string -> column:string -> bool;
  has_genomic_index : table:string -> column:string -> bool;
  column_exists : table:string -> column:string -> bool;
  equality_selectivity : table:string -> column:string -> float option;
  column_dtype : table:string -> column:string -> D.t option;
}

(* ------------------------------------------------------------------ *)
(* Vectorized-kernel awareness: which pushed-down filters the
   batch executor will serve with packed kernels. Classification here
   mirrors {!Vec.classify} against the catalog's declared column
   types; the executor re-checks against the live schema and the
   function registry, so this is a planning/display-level promise. *)

let vec_classify catalog ~table ~alias f =
  if not (Vec.enabled ()) then None
  else
    let dtype_of qualifier name =
      let qualifier_ok =
        match qualifier with
        | None -> true
        | Some q -> String.lowercase_ascii q = String.lowercase_ascii alias
      in
      if not qualifier_ok then None
      else
        Option.map
          (fun dt -> (dt, 0))
          (catalog.column_dtype ~table ~column:name)
    in
    Vec.classify ~dtype_of ~resolves:(fun _ _ -> true) f

let vec_kernels_of catalog ~table ~alias filters =
  List.filter_map
    (fun f -> Option.map Vec.kernel_label (vec_classify catalog ~table ~alias f))
    filters

(* ------------------------------------------------------------------ *)
(* Cost and selectivity models                                         *)

let fn_cost name =
  match String.lowercase_ascii name with
  | "resembles" | "identity" | "edit_distance" -> 5000.
  | "contains" | "find_motif" -> 200.
  | "decode" | "translate" | "find_orfs" | "digest" -> 500.
  | "gc_content" | "melting_temperature" | "reverse_complement" | "complement"
  | "length" | "subsequence" | "molecular_weight" | "gene_sequence"
  | "protein_sequence" | "mrna_sequence" | "transcribe" | "splice"
  | "transcribe_seq" | "gene_id" | "exon_count" ->
      50.
  | _ -> 5.

let rec predicate_cost = function
  | Ast.Lit _ | Ast.Col _ | Ast.Count_star -> 0.5
  | Ast.Not e | Ast.Neg e -> predicate_cost e
  | Ast.Binop (_, a, b) -> 1. +. predicate_cost a +. predicate_cost b
  | Ast.Fn (name, args) ->
      fn_cost name +. List.fold_left (fun acc a -> acc +. predicate_cost a) 0. args

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

(* Probability that a random DNA sequence of moderate length (~1 kb)
   contains a fixed pattern: ~ len * 4^-|pattern|. *)
let contains_selectivity pattern_len =
  clamp 1e-6 1.0 (1000. *. (0.25 ** float_of_int pattern_len))

let rec predicate_selectivity expr =
  match expr with
  | Ast.Fn (name, args) when String.lowercase_ascii name = "contains" -> (
      match args with
      | [ _; Ast.Lit (D.Str pattern) ] -> contains_selectivity (String.length pattern)
      | _ -> 0.1)
  | Ast.Binop (((Ast.Ge | Ast.Gt) as _op), Ast.Fn (name, _), Ast.Lit _)
    when String.lowercase_ascii name = "resembles" ->
      0.02
  | Ast.Binop ((Ast.Le | Ast.Lt), Ast.Lit _, Ast.Fn (name, _))
    when String.lowercase_ascii name = "resembles" ->
      0.02
  | Ast.Binop (Ast.Eq, _, _) -> 0.05
  | Ast.Binop (Ast.Ne, _, _) -> 0.95
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) -> 0.3
  | Ast.Binop (Ast.Like, _, _) -> 0.25
  | Ast.Binop (Ast.And, a, b) -> predicate_selectivity a *. predicate_selectivity b
  | Ast.Binop (Ast.Or, a, b) ->
      let sa = predicate_selectivity a and sb = predicate_selectivity b in
      clamp 0. 1. (sa +. sb -. (sa *. sb))
  | Ast.Not e -> clamp 0.001 1. (1. -. predicate_selectivity e)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), _, _) -> 0.5
  | Ast.Fn _ -> 0.5
  | Ast.Lit (D.Bool false) -> 0.001
  | Ast.Lit _ | Ast.Col _ | Ast.Count_star -> 0.5
  | Ast.Neg _ -> 0.5

let rank e =
  let s = predicate_selectivity e in
  predicate_cost e /. Float.max 1e-6 (1. -. s)

(* Selectivity refined by ANALYZE statistics for equality predicates on
   this table's columns. *)
let selectivity_with catalog ~table ~alias expr =
  let col_of = function
    | Ast.Col (Some q, c) when String.lowercase_ascii q = String.lowercase_ascii alias
      -> Some c
    | Ast.Col (None, c) -> Some c
    | _ -> None
  in
  match expr with
  | Ast.Binop (Ast.Eq, lhs, Ast.Lit _) | Ast.Binop (Ast.Eq, Ast.Lit _, lhs) -> (
      match col_of lhs with
      | Some c -> (
          match catalog.equality_selectivity ~table ~column:c with
          | Some s -> clamp 1e-6 1. s
          | None -> predicate_selectivity expr)
      | None -> predicate_selectivity expr)
  | _ -> predicate_selectivity expr

let rank_with catalog ~table ~alias e =
  let s = selectivity_with catalog ~table ~alias e in
  predicate_cost e /. Float.max 1e-6 (1. -. s)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)

(* Aliases a conjunct references; unqualified columns are attributed by
   probing the catalog across the FROM tables. *)
let aliases_of catalog from expr =
  let cols = Ast.columns_of_expr expr in
  let resolve (qualifier, col) =
    match qualifier with
    | Some q -> [ q ]
    | None ->
        List.filter_map
          (fun (table, alias) ->
            if catalog.column_exists ~table ~column:col then Some alias else None)
          from
  in
  List.sort_uniq String.compare (List.concat_map resolve cols)

(* Try to turn a conjunct into an index access for [alias]/[table]. *)
let index_access catalog ~table ~alias expr =
  let col_of = function
    | Ast.Col (Some q, c) when String.lowercase_ascii q = String.lowercase_ascii alias
      -> Some c
    | Ast.Col (None, c) -> Some c
    | _ -> None
  in
  let indexed c = catalog.has_index ~table ~column:c in
  match expr with
  | Ast.Binop (Ast.Eq, lhs, Ast.Lit v) -> (
      match col_of lhs with
      | Some c when indexed c -> Some (Index_eq { column = c; key = v })
      | _ -> None)
  | Ast.Binop (Ast.Eq, Ast.Lit v, rhs) -> (
      match col_of rhs with
      | Some c when indexed c -> Some (Index_eq { column = c; key = v })
      | _ -> None)
  | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), lhs, Ast.Lit v) -> (
      match col_of lhs with
      | Some c when indexed c ->
          let range =
            match op with
            | Ast.Lt ->
                Index_range
                  { column = c; lo = None; hi = Some v; lo_inclusive = true; hi_inclusive = false }
            | Ast.Le ->
                Index_range
                  { column = c; lo = None; hi = Some v; lo_inclusive = true; hi_inclusive = true }
            | Ast.Gt ->
                Index_range
                  { column = c; lo = Some v; hi = None; lo_inclusive = false; hi_inclusive = true }
            | Ast.Ge ->
                Index_range
                  { column = c; lo = Some v; hi = None; lo_inclusive = true; hi_inclusive = true }
            | _ -> assert false
          in
          Some range
      | _ -> None)
  | _ -> None

(* a contains(col, 'LIT') conjunct over a genomically-indexed column
   becomes an access path; the executor re-applies the predicate when it
   must fall back to scanning *)
let genomic_access catalog ~table ~alias expr =
  let col_of = function
    | Ast.Col (Some q, c) when String.lowercase_ascii q = String.lowercase_ascii alias
      -> Some c
    | Ast.Col (None, c) -> Some c
    | _ -> None
  in
  match expr with
  | Ast.Fn (name, [ col_e; Ast.Lit (D.Str pattern) ])
    when String.lowercase_ascii name = "contains" -> (
      match col_of col_e with
      | Some c when catalog.has_genomic_index ~table ~column:c ->
          Some (Genomic_contains { column = c; pattern })
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Cost-based access selection (tentpole of the optimizer work): for an
   ANALYZEd table, every candidate access path — full scan, each usable
   B-tree conjunct, the k-mer contains path, the resembles seed path —
   is costed with the [Cost] model over [Stats] selectivities and the
   cheapest wins. Unanalyzed tables keep the heuristic rules above, so
   plans only change where measured statistics exist.                  *)

let pure_acgt s =
  s <> ""
  && String.for_all (function 'A' | 'C' | 'G' | 'T' -> true | _ -> false) s

let col_of_expr ~alias = function
  | Ast.Col (Some q, c) when String.lowercase_ascii q = String.lowercase_ascii alias
    -> Some c
  | Ast.Col (None, c) -> Some c
  | _ -> None

(* Selectivity of a single-table conjunct refined by the ANALYZE
   catalog: equality and comparison predicates against literals use the
   measured NDV / histogram; everything else keeps the static model. *)
let rec stat_selectivity stats ~table ~alias expr =
  let column c = stats.stats_of ~table ~column:c in
  let via_stats col_e f =
    match Option.bind (col_of_expr ~alias col_e) column with
    | Some cs -> ( match f cs with Some s -> Some s | None -> None)
    | None -> None
  in
  let fallback () = predicate_selectivity expr in
  let cmp op col_e v =
    via_stats col_e (fun cs -> Stats.cmp_selectivity cs ~op v)
  in
  let tag = function
    | Ast.Lt -> `Lt | Ast.Le -> `Le | Ast.Gt -> `Gt | Ast.Ge -> `Ge
    | _ -> assert false
  in
  let flip = function `Lt -> `Gt | `Le -> `Ge | `Gt -> `Lt | `Ge -> `Le in
  let r =
    match expr with
    | Ast.Binop (Ast.Eq, col_e, Ast.Lit _) | Ast.Binop (Ast.Eq, Ast.Lit _, col_e)
      ->
        via_stats col_e Stats.eq_selectivity
    | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), col_e, Ast.Lit v)
      ->
        cmp (tag op) col_e v
    | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), Ast.Lit v, col_e)
      ->
        cmp (flip (tag op)) col_e v
    | Ast.Binop (Ast.And, a, b) ->
        Some
          (stat_selectivity stats ~table ~alias a
          *. stat_selectivity stats ~table ~alias b)
    | Ast.Binop (Ast.Or, a, b) ->
        let sa = stat_selectivity stats ~table ~alias a in
        let sb = stat_selectivity stats ~table ~alias b in
        Some (clamp 0. 1. (sa +. sb -. (sa *. sb)))
    | Ast.Not e ->
        Some (clamp 0.001 1. (1. -. stat_selectivity stats ~table ~alias e))
    | _ -> None
  in
  match r with Some s -> clamp 1e-6 1. s | None -> fallback ()

let rank_stats stats ~table ~alias e =
  let s = stat_selectivity stats ~table ~alias e in
  predicate_cost e /. Float.max 1e-6 (1. -. s)

(* Recognize [resembles(col, dna('P')) >= t] (and mirrored/strict forms)
   as a seed-path candidate: DNA column with a genomic index, pure-ACGT
   pattern at least the safe minimum length for (k, t). The conjunct is
   NOT consumed — the real predicate still filters the candidates, so
   the path is an optimization, never a semantics change. *)
let seed_of stats ~table ~alias expr =
  let pattern_of = function
    | Ast.Lit (D.Str p) -> Some p
    | Ast.Fn (name, [ Ast.Lit (D.Str p) ])
      when String.lowercase_ascii name = "dna" ->
        Some p
    | _ -> None
  in
  let threshold_of = function
    | Ast.Lit (D.Float f) -> Some f
    | Ast.Lit (D.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let decomposed =
    match expr with
    | Ast.Binop ((Ast.Ge | Ast.Gt), Ast.Fn (name, args), lit)
      when String.lowercase_ascii name = "resembles" ->
        Option.map (fun t -> (args, t)) (threshold_of lit)
    | Ast.Binop ((Ast.Le | Ast.Lt), lit, Ast.Fn (name, args))
      when String.lowercase_ascii name = "resembles" ->
        Option.map (fun t -> (args, t)) (threshold_of lit)
    | _ -> None
  in
  match decomposed with
  | Some ([ a; b ], threshold) -> (
      let pick col_e pat_e =
        match (col_of_expr ~alias col_e, pattern_of pat_e) with
        | Some c, Some p -> Some (c, p)
        | _ -> None
      in
      match (match pick a b with Some x -> Some x | None -> pick b a) with
      | Some (column, pattern) -> (
          let pattern = String.uppercase_ascii pattern in
          if not (pure_acgt pattern) then None
          else if not (stats.is_dna ~table ~column) then None
          else
            match stats.genomic_k_of ~table ~column with
            | None -> None
            | Some k -> (
                match Cost.resembles_min_len ~k ~threshold with
                | Some min_len when String.length pattern >= min_len ->
                    Some (column, pattern, min_len, threshold, k)
                | _ -> None))
      | None -> None)
  | _ -> None

(* Choose the cheapest access path for one ANALYZEd table. Returns the
   access, its residual filters in evaluation order, and the estimate. *)
let plan_table_cost_based stats catalog ~table ~alias mine =
  Obs.add c_cost_based 1;
  let rows = float_of_int (max 0 (stats.row_count ~table)) in
  let sel e = stat_selectivity stats ~table ~alias e in
  let order fs =
    List.stable_sort
      (fun a b ->
        Float.compare
          (rank_stats stats ~table ~alias a)
          (rank_stats stats ~table ~alias b))
      fs
  in
  (* per-conjunct evaluation cost: filters the vectorized scan serves
     with a packed kernel are far cheaper than the scalar fn model *)
  let conjunct_cost f =
    match vec_classify catalog ~table ~alias f with
    | Some k -> (
        match k.Vec.k_kind with
        | Vec.Gc_cmp _ -> Cost.vec_gc_row
        | Vec.Len_cmp _ -> Cost.vec_len_row
        | Vec.Contains _ -> Cost.vec_contains_row)
    | None -> predicate_cost f
  in
  let chain fs = List.map (fun f -> (conjunct_cost f, sel f)) fs in
  let without c = List.filter (fun x -> x != c) mine in
  let candidate_of c =
    match index_access catalog ~table ~alias c with
    | Some (Index_eq _ as a) ->
        let fs = order (without c) in
        Some (a, fs, Cost.index_eq ~rows ~eq_sel:(sel c) ~filters:(chain fs))
    | Some (Index_range _ as a) ->
        let fs = order (without c) in
        Some (a, fs, Cost.index_range ~rows ~range_sel:(sel c) ~filters:(chain fs))
    | Some _ | None -> (
        match genomic_access catalog ~table ~alias c with
        | Some (Genomic_contains { column; pattern } as a) -> (
            match
              ( stats.genomic_k_of ~table ~column,
                stats.genomic_mean_len_of ~table ~column )
            with
            | Some k, Some mean_len ->
                let fs = order (without c) in
                Some
                  ( a,
                    fs,
                    Cost.genomic_contains ~rows ~k ~mean_len
                      ~pattern_len:(String.length pattern)
                      ~verify_cost:(fn_cost "contains") ~filters:(chain fs) )
            | _ -> None)
        | Some _ | None -> (
            match seed_of stats ~table ~alias c with
            | Some (column, pattern, min_len, threshold, k) -> (
                match stats.genomic_mean_len_of ~table ~column with
                | Some mean_len ->
                    (* seed path keeps every conjunct, including the
                       resembles predicate itself *)
                    let fs = order mine in
                    Some
                      ( Genomic_seed { column; pattern; min_len; threshold },
                        fs,
                        Cost.genomic_seed ~rows ~k ~mean_len
                          ~pattern_len:(String.length pattern)
                          ~filters:(chain fs) )
                | None -> None)
            | None -> None))
  in
  let base =
    let fs = order mine in
    (Full_scan, fs, Cost.full_scan ~rows ~filters:(chain fs))
  in
  let best =
    List.fold_left
      (fun ((_, _, be) as acc) c ->
        match candidate_of c with
        | Some ((_, _, e) as cand) when e.Cost.est_cost < be.Cost.est_cost ->
            cand
        | _ -> acc)
      base mine
  in
  let access, filters, est = best in
  (match access with
  | Index_eq _ | Index_range _ -> Obs.add c_index_paths 1
  | Genomic_contains _ -> Obs.add c_contains_paths 1
  | Genomic_seed _ -> Obs.add c_seed_paths 1
  | Full_scan -> ());
  { table; alias; access; filters; est_rows = Some est.Cost.est_rows;
    vec_kernels = [] }

(* ------------------------------------------------------------------ *)
(* Join steps: each cross-table conjunct is applied exactly once, at the
   first join step where every alias it references is bound (fixes the
   deferred-filter double bookkeeping of the executor's old dynamic
   partitioning, which also mis-attributed unqualified columns of
   not-yet-bound tables). A step whose filters include a simple column
   equality between the incoming table and an already-bound one becomes a
   build/probe hash join; everything else stays a nested loop.           *)

(* Aliases a single column reference can belong to. *)
let resolve_col catalog from (qualifier, col) =
  match qualifier with
  | Some q -> [ String.lowercase_ascii q ]
  | None ->
      List.filter_map
        (fun (table, alias) ->
          if catalog.column_exists ~table ~column:col then
            Some (String.lowercase_ascii alias)
          else None)
        from

(* An equality conjunct usable as the hash key when joining [alias_k]
   against the aliases bound before it. Both sides must resolve to exactly
   one alias (so evaluation could not be ambiguous), to existing columns,
   and to opposite sides of the join frontier. *)
let hash_key_of catalog from ~bound ~alias_k expr =
  let table_of alias =
    let la = String.lowercase_ascii alias in
    List.find_map
      (fun (table, a) ->
        if String.lowercase_ascii a = la then Some table else None)
      from
  in
  let side (q, c) =
    let c = String.lowercase_ascii c in
    match resolve_col catalog from (q, c) with
    | [ a ] -> (
        match table_of a with
        | Some table when catalog.column_exists ~table ~column:c -> Some (a, c)
        | _ -> None)
    | _ -> None
  in
  match expr with
  | Ast.Binop (Ast.Eq, Ast.Col (qa, ca), Ast.Col (qb, cb)) -> (
      match side (qa, ca), side (qb, cb) with
      | Some (a1, c1), Some (a2, c2) ->
          let lk = String.lowercase_ascii alias_k in
          if a1 = lk && a2 <> lk && List.mem a2 bound then
            Some (Hash_join { outer_alias = a2; outer_col = c2; inner_col = c1 })
          else if a2 = lk && a1 <> lk && List.mem a1 bound then
            Some (Hash_join { outer_alias = a1; outer_col = c1; inner_col = c2 })
          else None
      | _ -> None)
  | _ -> None

(* Distribute [join_filters] (kept in their evaluation order) over the
   join steps; conjuncts no step can ever evaluate go to [tail_filters]
   so the executor surfaces the evaluation error exactly like a nested
   loop would. *)
let make_steps ~hash_join catalog (from : (string * string) list) classified
    join_filters =
  match from with
  | [] | [ _ ] -> ([], join_filters)
  | _ :: rest ->
      let aliases = List.map (fun (_, a) -> String.lowercase_ascii a) from in
      let alias_array = Array.of_list aliases in
      let bound_upto k =
        Array.to_list (Array.sub alias_array 0 (k + 1))
      in
      let step_of f =
        let af =
          match List.assoc_opt f classified with
          | Some al -> List.map String.lowercase_ascii al
          | None -> []
        in
        let rec find k =
          if k >= Array.length alias_array then None
          else if
            List.for_all (fun a -> List.mem a (bound_upto k)) af
          then Some (max 1 k)
          else find (k + 1)
        in
        find 0
      in
      let placed = List.map (fun f -> (f, step_of f)) join_filters in
      let tail = List.filter_map (fun (f, s) -> if s = None then Some f else None) placed in
      let steps =
        List.mapi
          (fun i (_, alias) ->
            let k = i + 1 in
            let mine =
              List.filter_map
                (fun (f, s) -> if s = Some k then Some f else None)
                placed
            in
            let bound = bound_upto (k - 1) in
            let strategy, residual =
              if not hash_join then (Nested_loop, mine)
              else
                let rec pick seen = function
                  | [] -> (Nested_loop, List.rev seen)
                  | f :: fs -> (
                      match hash_key_of catalog from ~bound ~alias_k:alias f with
                      | Some s -> (s, List.rev_append seen fs)
                      | None -> pick (f :: seen) fs)
                in
                pick [] mine
            in
            { step_alias = alias; strategy; step_filters = residual; step_est = None })
          rest
      in
      (steps, tail)

(* Join-graph edges for reordering: column-equality conjuncts linking
   exactly two aliases, selectivity 1/max(NDV) from the stats catalog. *)
let join_edges stats catalog from classified =
  let table_of alias =
    List.find_map
      (fun (table, a) ->
        if String.lowercase_ascii a = alias then Some table else None)
      from
  in
  let ndv alias col =
    match table_of alias with
    | Some table -> (
        match stats.stats_of ~table ~column:col with
        | Some cs when cs.T.distinct > 0 -> Some (float_of_int cs.T.distinct)
        | _ -> None)
    | None -> None
  in
  List.filter_map
    (fun (c, als) ->
      if List.length als <> 2 then None
      else
        match c with
        | Ast.Binop (Ast.Eq, Ast.Col (qa, ca), Ast.Col (qb, cb)) -> (
            match
              (resolve_col catalog from (qa, ca), resolve_col catalog from (qb, cb))
            with
            | [ a ], [ b ] when a <> b ->
                let sel =
                  match (ndv a ca, ndv b cb) with
                  | Some x, Some y -> 1. /. Float.max 1. (Float.max x y)
                  | Some x, None | None, Some x -> 1. /. Float.max 1. x
                  | None, None -> 0.1
                in
                Some { Cost.e_a = a; e_b = b; e_sel = sel }
            | _ -> None)
        | _ -> None)
    classified

(* Stamp each table plan with the kernel labels the vectorized scan is
   expected to use, so plain EXPLAIN shows them before execution. *)
let annotate_vec catalog t =
  {
    t with
    tables =
      List.map
        (fun tp ->
          {
            tp with
            vec_kernels =
              vec_kernels_of catalog ~table:tp.table ~alias:tp.alias tp.filters;
          })
        t.tables;
  }

let make ?(optimize = true) ?stats catalog (select : Ast.select) =
  let conjuncts =
    match select.Ast.where with None -> [] | Some w -> Ast.conjuncts w
  in
  let from = select.Ast.from in
  let output_order = List.map snd from in
  let classified =
    List.map (fun c -> (c, aliases_of catalog from c)) conjuncts
  in
  if not optimize then begin
    (* naive: all single-table conjuncts stay in source order, no indexes *)
    let tables =
      List.map
        (fun (table, alias) ->
          let filters =
            List.filter_map
              (fun (c, al) -> if al = [ alias ] then Some c else None)
              classified
          in
          { table; alias; access = Full_scan; filters; est_rows = None;
            vec_kernels = [] })
        from
    in
    let join_filters =
      List.filter_map
        (fun (c, al) -> if List.length al <> 1 then Some c else None)
        classified
    in
    let joins, tail_filters =
      make_steps ~hash_join:false catalog from classified join_filters
    in
    annotate_vec catalog
      { tables; join_filters; joins; tail_filters; est_out = None; output_order }
  end
  else begin
    let plan_table (table, alias) =
      let mine =
        List.filter_map
          (fun (c, al) -> if al = [ alias ] then Some c else None)
          classified
      in
      match stats with
      | Some s when s.analyzed ~table ->
          plan_table_cost_based s catalog ~table ~alias mine
      | _ ->
          (* heuristic: first usable index conjunct becomes the access *)
          let access, residual =
            let rec pick probe seen = function
              | [] -> (Full_scan, List.rev seen)
              | c :: rest -> (
                  match probe c with
                  | Some a -> (a, List.rev_append seen rest)
                  | None -> pick probe (c :: seen) rest)
            in
            (* prefer a B-tree equality/range path; otherwise try the
               genomic substring index *)
            match pick (index_access catalog ~table ~alias) [] mine with
            | (Full_scan, _) -> pick (genomic_access catalog ~table ~alias) [] mine
            | found -> found
          in
          let filters =
            List.stable_sort
              (fun a b ->
                Float.compare (rank_with catalog ~table ~alias a)
                  (rank_with catalog ~table ~alias b))
              residual
          in
          { table; alias; access; filters; est_rows = None; vec_kernels = [] }
    in
    let tables = List.map plan_table from in
    (* Join reordering: only when statistics cover every FROM table, so
       plans without ANALYZE are byte-identical to the heuristic ones. *)
    let from, tables, edges =
      match (stats, from) with
      | Some s, _ :: _ :: _ when List.for_all (fun (t, _) -> s.analyzed ~table:t) from
        ->
          let edges = join_edges s catalog from classified in
          let rels =
            List.map
              (fun tp ->
                {
                  Cost.r_alias = String.lowercase_ascii tp.alias;
                  r_rows = Option.value tp.est_rows ~default:1.;
                })
              tables
          in
          let order = Cost.greedy_order rels edges in
          let find_tp a =
            List.find
              (fun tp -> String.lowercase_ascii tp.alias = a)
              tables
          in
          let tables' = List.map find_tp order in
          let from' =
            List.map
              (fun tp ->
                List.find
                  (fun (_, al) -> String.lowercase_ascii al
                                  = String.lowercase_ascii tp.alias)
                  from)
              tables'
          in
          if List.map snd from' <> List.map snd from then Obs.add c_reordered 1;
          (from', tables', edges)
      | _ -> (from, tables, [])
    in
    let join_filters =
      List.filter_map
        (fun (c, al) -> if List.length al <> 1 then Some c else None)
        classified
      |> List.stable_sort (fun a b -> Float.compare (rank a) (rank b))
    in
    let joins, tail_filters =
      make_steps ~hash_join:(hash_join_enabled ()) catalog from classified
        join_filters
    in
    (* Cumulative cardinality estimates along the (possibly reordered)
       join chain, when per-table estimates exist. *)
    let joins, est_out =
      match tables with
      | { est_rows = Some first; alias; _ } :: rest
        when List.for_all (fun tp -> tp.est_rows <> None) rest ->
          let bound = ref [ String.lowercase_ascii alias ] in
          let card = ref first in
          let joins =
            List.map2
              (fun step tp ->
                let a = String.lowercase_ascii tp.alias in
                let sel =
                  List.fold_left
                    (fun acc e ->
                      let touches x =
                        (e.Cost.e_a = x && e.Cost.e_b = a)
                        || (e.Cost.e_b = x && e.Cost.e_a = a)
                      in
                      if List.exists touches !bound then acc *. e.Cost.e_sel
                      else acc)
                    1. edges
                in
                card := !card *. Option.value tp.est_rows ~default:1. *. sel;
                bound := a :: !bound;
                { step with step_est = Some !card })
              joins rest
          in
          (joins, Some !card)
      | _ -> (joins, None)
    in
    annotate_vec catalog
      { tables; join_filters; joins; tail_filters; est_out; output_order }
  end

let access_to_string = function
  | Full_scan -> "full scan"
  | Index_eq { column; key } ->
      Printf.sprintf "index %s = %s" column (D.value_to_display key)
  | Index_range { column; lo; hi; _ } ->
      Printf.sprintf "index %s in [%s, %s]" column
        (match lo with Some v -> D.value_to_display v | None -> "-inf")
        (match hi with Some v -> D.value_to_display v | None -> "+inf")
  | Genomic_contains { column; pattern } ->
      Printf.sprintf "genomic index %s contains %S" column pattern
  | Genomic_seed { column; pattern; min_len; threshold } ->
      Printf.sprintf "genomic seed %s resembles %S >= %g (min_len=%d)" column
        pattern threshold min_len

let strategy_to_string step =
  match step.strategy with
  | Hash_join { outer_alias; outer_col; inner_col } ->
      Printf.sprintf "hash join on %s.%s = %s.%s" outer_alias outer_col
        step.step_alias inner_col
  | Nested_loop -> "nested-loop join"

let to_string ?(jobs = 1) t =
  let partitions =
    if jobs > 1 then Printf.sprintf " [partitions=%d]" jobs else ""
  in
  let est = function
    | None -> ""
    | Some e -> Printf.sprintf " (est~%.0f rows)" e
  in
  let lines =
    List.map
      (fun tp ->
        Printf.sprintf "scan %s as %s via %s%s%s%s" tp.table tp.alias
          (access_to_string tp.access)
          (match tp.access with Full_scan -> partitions | _ -> "")
          (match tp.filters with
          | [] -> ""
          | fs ->
              Printf.sprintf " filter [%s]"
                (String.concat "; " (List.map Ast.expr_to_string fs)))
          (est tp.est_rows
          ^ match tp.vec_kernels with
            | [] -> ""
            | ks -> Printf.sprintf " vec [%s]" (String.concat "; " ks)))
      t.tables
  in
  let join_lines =
    List.map
      (fun step ->
        Printf.sprintf "join %s via %s%s%s" step.step_alias
          (strategy_to_string step)
          (match step.step_filters with
          | [] -> ""
          | fs ->
              Printf.sprintf " filter [%s]"
                (String.concat "; " (List.map Ast.expr_to_string fs)))
          (est step.step_est))
      t.joins
  in
  let tail_line =
    match t.tail_filters with
    | [] -> []
    | fs ->
        [ Printf.sprintf "join filter [%s]"
            (String.concat "; " (List.map Ast.expr_to_string fs)) ]
  in
  String.concat "\n" (lines @ join_lines @ tail_line)
