type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen | Rparen
  | Comma | Dot | Star | Semicolon
  | Op of string
  | Eof

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let pos = ref 0 in
  let tokens = ref [] in
  let error = ref None in
  let emit tok = tokens := tok :: !tokens in
  while !error = None && !pos < n do
    let c = input.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char input.[!pos] do
        incr pos
      done;
      emit (Ident (String.sub input start (!pos - start)))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit input.[!pos] do
        incr pos
      done;
      let has_frac =
        !pos + 1 < n && input.[!pos] = '.' && is_digit input.[!pos + 1]
      in
      if has_frac then begin
        incr pos;
        while !pos < n && is_digit input.[!pos] do
          incr pos
        done
      end;
      (* exponent form (1e-3, 2.5E6) — only when digits follow the
         marker, so an identifier right after a number stays an
         identifier *)
      let has_exp =
        !pos < n
        && (input.[!pos] = 'e' || input.[!pos] = 'E')
        &&
        let p =
          if
            !pos + 1 < n
            && (input.[!pos + 1] = '+' || input.[!pos + 1] = '-')
          then !pos + 2
          else !pos + 1
        in
        p < n && is_digit input.[p]
      in
      if has_exp then begin
        incr pos;
        if input.[!pos] = '+' || input.[!pos] = '-' then incr pos;
        while !pos < n && is_digit input.[!pos] do
          incr pos
        done
      end;
      let text = String.sub input start (!pos - start) in
      if has_frac || has_exp then emit (Float_lit (float_of_string text))
      else emit (Int_lit (int_of_string text))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr pos;
      let closed = ref false in
      while (not !closed) && !error = None do
        if !pos >= n then error := Some "unterminated string literal"
        else if input.[!pos] = '\'' then
          if !pos + 1 < n && input.[!pos + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2
          end
          else begin
            closed := true;
            incr pos
          end
        else begin
          Buffer.add_char buf input.[!pos];
          incr pos
        end
      done;
      if !error = None then emit (Str_lit (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < n then String.sub input !pos 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "!=" ->
          emit (Op (if two = "!=" then "<>" else two));
          pos := !pos + 2
      | _ -> (
          (match c with
          | '(' -> emit Lparen
          | ')' -> emit Rparen
          | ',' -> emit Comma
          | '.' -> emit Dot
          | '*' -> emit Star
          | ';' -> emit Semicolon
          | '=' | '<' | '>' | '+' | '-' | '/' -> emit (Op (String.make 1 c))
          | _ -> error := Some (Printf.sprintf "unexpected character %C at offset %d" c !pos));
          incr pos)
    end
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok (List.rev (Eof :: !tokens))

let token_to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> Printf.sprintf "%g" f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Star -> "*"
  | Semicolon -> ";"
  | Op s -> s
  | Eof -> "<eof>"
