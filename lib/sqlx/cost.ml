(* The planner's cost model (paper section 6.5: genomic access paths
   must be chosen by the optimizer, not bolted on). Units are abstract:
   1.0 ~ visiting one row in a full scan. Only relative magnitudes
   matter — every candidate access path for a table is costed with the
   same constants and the cheapest wins. *)

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

(* ---- unit costs --------------------------------------------------- *)

let seq_row = 1.0          (* decode one row during a heap scan *)
let fetch_row = 1.6        (* fetch + decode one row through a rid *)
let btree_probe = 12.0     (* descend a B-tree *)
let kmer_lookup = 4.0      (* one posting-list lookup *)
let hash_build_row = 1.4
let hash_probe_row = 0.9
let nested_probe_row = 1.0

(* Per-row costs of the packed scan kernels (docs/EXECUTION.md): the
   vectorized executor evaluates these predicates straight on the 2-bit
   payload — no decode, no env, no allocation — so their chain cost
   sits far below the scalar [Plan.fn_cost] model (length 50, gc 50,
   contains 200). Ratios roughly track the VEC bench. *)

let vec_len_row = 0.1      (* header read + integer compare *)
let vec_gc_row = 2.0       (* one LUT probe per 4 bases *)
let vec_contains_row = 20.0 (* rolling packed-word substring scan *)

(* ---- filter chains ------------------------------------------------ *)

(* Expected per-row cost of evaluating filters (cost, selectivity) in
   order with short-circuiting: later filters only run on survivors. *)
let chain_cost filters =
  let total, _ =
    List.fold_left
      (fun (acc, pass) (cost, sel) -> (acc +. (pass *. cost), pass *. sel))
      (0., 1.) filters
  in
  total

let chain_selectivity filters =
  List.fold_left (fun acc (_, sel) -> acc *. sel) 1. filters

(* ---- access paths ------------------------------------------------- *)

type access_est = {
  est_rows : float;  (* rows the access + its residual filters produce *)
  est_cost : float;  (* total cost of producing them *)
}

(* [rows]: live table cardinality. [filters]: residual (cost, sel) in
   evaluation order. [access_sel]: fraction of rows the access itself
   delivers. [probe]: fixed entry cost. [per_row]: fetching one
   delivered row. *)
let indexed_access ~rows ~probe ~access_sel ~per_row ~filters =
  let delivered = rows *. clamp 0. 1. access_sel in
  { est_rows = delivered *. chain_selectivity filters;
    est_cost = probe +. (delivered *. (per_row +. chain_cost filters)) }

let full_scan ~rows ~filters =
  { est_rows = rows *. chain_selectivity filters;
    est_cost = rows *. (seq_row +. chain_cost filters) }

let index_eq ~rows ~eq_sel ~filters =
  indexed_access ~rows ~probe:btree_probe ~access_sel:eq_sel
    ~per_row:fetch_row ~filters

let index_range ~rows ~range_sel ~filters =
  indexed_access ~rows ~probe:btree_probe ~access_sel:range_sel
    ~per_row:fetch_row ~filters

(* Fraction of indexed rows expected to share a specific k-mer with a
   pattern: each of the record's ~[mean_len] windows hits a given k-mer
   with probability 4^-k. *)
let kmer_hit_fraction ~k ~mean_len =
  clamp 0. 1. (mean_len *. (0.25 ** float_of_int k))

(* contains(): candidates from one posting list, each verified by exact
   substring search. *)
let genomic_contains ~rows ~k ~mean_len ~pattern_len ~verify_cost ~filters =
  let cand = kmer_hit_fraction ~k ~mean_len in
  let match_sel = clamp 1e-6 1. (mean_len *. (0.25 ** float_of_int pattern_len)) in
  let delivered = rows *. cand in
  { est_rows = rows *. match_sel *. chain_selectivity filters;
    est_cost =
      kmer_lookup
      +. (delivered *. (fetch_row +. verify_cost +. chain_cost filters)) }

(* resembles() seed path: the union of every pattern k-mer's postings,
   then the REAL predicate runs as a residual filter over the
   candidates, so [filters] must include it. *)
let genomic_seed ~rows ~k ~mean_len ~pattern_len ~filters =
  let windows = float_of_int (max 1 (pattern_len - k + 1)) in
  let cand = clamp 0. 1. (windows *. kmer_hit_fraction ~k ~mean_len) in
  let delivered = rows *. cand in
  { est_rows = delivered *. chain_selectivity filters;
    est_cost =
      (windows *. kmer_lookup) +. (delivered *. (fetch_row +. chain_cost filters)) }

(* ---- resembles seed-path safety bound ----------------------------- *)

(* [Ops.resembles] normalizes a Smith-Waterman local score by
   2*min(|a|,|b|) under Scoring.dna_default: match +2, mismatch -3,
   gap open 10 + 1/char (so any break between two match runs costs at
   least 3). For resembles(a,b) >= t with m = min(|a|,|b|):
     score 2M - P >= 2tm, matches M <= m, penalties P >= 3B over B
     breaks => B <= (2M - 2tm)/3, and the longest exact run
     L >= 3M/(2M - 2tm + 3) >= 3m/(2m(1-t) + 3)   (minimized at M = m
     whenever 2tm > 3, which holds for every m >= the bound below).
   L grows with m, so rows (and patterns) of length >= min_len are
   guaranteed to share a full k-mer with the pattern; shorter rows must
   stay unconditional candidates. Usable only when t > 1 - 3/(2k).
   THIS BOUND IS TIED TO Scoring.dna_default — test_optimizer pins the
   scoring constants so a change there fails loudly. *)
let resembles_min_len ~k ~threshold =
  let kf = float_of_int k in
  let denom = 3. -. (2. *. kf *. (1. -. threshold)) in
  if denom <= 0. then None
  else Some (int_of_float (ceil (3. *. kf /. denom)))

(* ---- join ordering ------------------------------------------------ *)

type rel = {
  r_alias : string;   (* lowercased *)
  r_rows : float;     (* estimated rows after local filters *)
}

type edge = {
  e_a : string;
  e_b : string;
  e_sel : float;
}

(* Cost of one join step given both input cardinalities; mirrors the
   executor's build/probe hash join (the planner may still fall back to
   a nested loop per step, but ordering by the cheaper model keeps small
   relations early either way). *)
let step_cost ~left ~right =
  Float.min
    ((right *. hash_build_row) +. (left *. hash_probe_row))
    (left *. right *. nested_probe_row)

(* Greedy join ordering: start from the smallest relation, then
   repeatedly take the relation that minimizes the next intermediate
   cardinality, preferring connected relations over cartesian products.
   Deterministic: ties keep the earliest relation in FROM order. *)
let greedy_order (rels : rel list) (edges : edge list) =
  match rels with
  | [] | [ _ ] -> List.map (fun r -> r.r_alias) rels
  | _ ->
      let remaining = ref rels in
      let pick best f =
        List.fold_left
          (fun acc r -> match acc with
            | Some (_, bv) when f r >= bv -> acc
            | _ when f r = infinity -> acc
            | _ -> Some (r, f r))
          best !remaining
      in
      let start =
        match pick None (fun r -> r.r_rows) with
        | Some (r, _) -> r
        | None -> List.hd rels
      in
      let bound = ref [ start.r_alias ] in
      let order = ref [ start ] in
      remaining := List.filter (fun r -> r != start) !remaining;
      let card = ref start.r_rows in
      while !remaining <> [] do
        let join_sel r =
          List.fold_left
            (fun (sel, connected) e ->
              let touches x y = (e.e_a = x && e.e_b = y) || (e.e_a = y && e.e_b = x) in
              if List.exists (fun b -> touches b r.r_alias) !bound then
                (sel *. e.e_sel, true)
              else (sel, connected))
            (1., false) edges
        in
        let score connected_only r =
          let sel, connected = join_sel r in
          if connected_only && not connected then infinity
          else !card *. r.r_rows *. sel
        in
        let chosen =
          match pick None (score true) with
          | Some (r, _) -> r
          | None -> (
              (* no connected relation left: cheapest cartesian *)
              match pick None (score false) with
              | Some (r, _) -> r
              | None -> List.hd !remaining)
        in
        let sel, _ = join_sel chosen in
        card := Float.max 1. (!card *. chosen.r_rows *. sel);
        bound := chosen.r_alias :: !bound;
        order := chosen :: !order;
        remaining := List.filter (fun r -> r != chosen) !remaining
      done;
      List.rev_map (fun r -> r.r_alias) !order
