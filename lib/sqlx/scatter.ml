module D = Genalg_storage.Dtype

let grid_col = "__grid"

type agg =
  | A_count_star
  | A_count of Ast.expr
  | A_sum of Ast.expr
  | A_min of Ast.expr
  | A_max of Ast.expr
  | A_avg of Ast.expr

type plain = {
  p_shard : Ast.select;
  p_columns : string list;
  p_items : int;
  p_order : bool list;
  p_limit : int option;
}

type grouped = {
  g_shard : Ast.select;
  g_columns : string list;
  g_nkeys : int;
  g_keys : Ast.expr list;
  g_aggs : agg list;
  g_items : (Ast.expr * string option) list;
  g_having : Ast.expr option;
  g_order : Ast.order_item list;
  g_limit : int option;
}

type t =
  | Plain of plain
  | Grouped of grouped
  | Not_shardable of string

exception Reject of string

let item_name (e, alias) =
  match alias with Some a -> a | None -> Ast.expr_to_string e

(* ------------------------------------------------------------------ *)
(* Decomposition                                                       *)

(* the column a conjunct talks about, resolving the FROM alias *)
let col_of ~alias = function
  | Ast.Col (None, c) -> Some c
  | Ast.Col (Some q, c)
    when String.lowercase_ascii q = String.lowercase_ascii alias ->
      Some c
  | _ -> None

(* Would the single-node planner be allowed to answer a range conjunct
   from a B-tree?  Index_range emits in key order, not scan order, so
   the grid merge cannot reproduce it — such queries stay on the
   mirror.  (Whether the planner actually picks the index depends on
   its statistics, so the guard is deliberately static.) *)
let range_on_indexed ~alias ~has_index where =
  match where with
  | None -> false
  | Some w ->
      List.exists
        (fun c ->
          match c with
          | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), lhs, Ast.Lit _) -> (
              match col_of ~alias lhs with
              | Some col -> has_index col
              | None -> false)
          | _ -> false)
        (Ast.conjuncts w)

(* collect distinct aggregate occurrences (dedup by argument) *)
let register aggs a =
  let same b =
    match a, b with
    | A_count_star, A_count_star -> true
    | A_count x, A_count y
    | A_sum x, A_sum y
    | A_min x, A_min y
    | A_max x, A_max y
    | A_avg x, A_avg y -> Ast.equal_expr x y
    | _ -> false
  in
  if List.exists same !aggs then () else aggs := !aggs @ [ a ]

let rec collect_aggs aggs e =
  match e with
  | Ast.Count_star -> register aggs A_count_star
  | Ast.Fn (name, [ arg ]) when Ast.is_aggregate_fn name ->
      if Ast.contains_aggregate arg then raise (Reject "nested aggregate");
      (match String.lowercase_ascii name with
      | "count" -> register aggs (A_count arg)
      | "sum" -> register aggs (A_sum arg)
      | "avg" -> register aggs (A_avg arg)
      | "min" -> register aggs (A_min arg)
      | "max" -> register aggs (A_max arg)
      | other -> raise (Reject (Printf.sprintf "unknown aggregate %s" other)))
  | Ast.Fn (name, _) when Ast.is_aggregate_fn name ->
      raise (Reject (Printf.sprintf "aggregate %s with wrong arity" name))
  | Ast.Fn (_, args) -> List.iter (collect_aggs aggs) args
  | Ast.Not e | Ast.Neg e -> collect_aggs aggs e
  | Ast.Binop (_, a, b) ->
      collect_aggs aggs a;
      collect_aggs aggs b
  | Ast.Lit _ | Ast.Col _ -> ()

(* After treating aggregates and group-key-equal subtrees as leaves, no
   bare column reference may remain: anything else would need a "first
   row of the group", which no shard can know globally. *)
let rec residual_ok ~keys e =
  if List.exists (Ast.equal_expr e) keys then true
  else
    match e with
    | Ast.Count_star -> true
    | Ast.Fn (name, [ _ ]) when Ast.is_aggregate_fn name -> true
    | Ast.Col _ -> false
    | Ast.Lit _ -> true
    | Ast.Fn (_, args) -> List.for_all (residual_ok ~keys) args
    | Ast.Not e | Ast.Neg e -> residual_ok ~keys e
    | Ast.Binop (_, a, b) -> residual_ok ~keys a && residual_ok ~keys b

let agg_partial_items = function
  | A_count_star -> [ (Ast.Count_star, None) ]
  | A_count e -> [ (Ast.Fn ("count", [ e ]), None) ]
  | A_sum e -> [ (Ast.Fn ("sum", [ e ]), None) ]
  | A_min e -> [ (Ast.Fn ("min", [ e ]), None) ]
  | A_max e -> [ (Ast.Fn ("max", [ e ]), None) ]
  | A_avg e -> [ (Ast.Fn ("sum", [ e ]), None); (Ast.Fn ("count", [ e ]), None) ]

let agg_width = function A_avg _ -> 2 | _ -> 1

let decompose ~star_columns ~has_index (select : Ast.select) : t =
  try
    let table_alias =
      match select.Ast.from with
      | [ (_, alias) ] -> alias
      | _ -> raise (Reject "multi-table join")
    in
    (match select.Ast.where with
    | Some w when Ast.contains_aggregate w -> raise (Reject "aggregate in WHERE")
    | _ -> ());
    if range_on_indexed ~alias:table_alias ~has_index select.Ast.where then
      raise (Reject "range predicate on an indexed column (key-ordered plan)");
    let needs_grouping =
      select.Ast.group_by <> []
      || select.Ast.having <> None
      || (match select.Ast.projection with
         | Ast.Star -> false
         | Ast.Exprs items ->
             List.exists (fun (e, _) -> Ast.contains_aggregate e) items)
    in
    if not needs_grouping then begin
      if
        List.exists
          (fun { Ast.key; _ } -> Ast.contains_aggregate key)
          select.Ast.order_by
      then raise (Reject "aggregate in ORDER BY without grouping");
      let items, columns =
        match select.Ast.projection with
        | Ast.Exprs items -> (items, List.map item_name items)
        | Ast.Star -> (
            match star_columns () with
            | Error msg -> raise (Reject msg)
            | Ok cols ->
                (List.map (fun c -> (Ast.Col (None, c), None)) cols, cols))
      in
      let shard_items =
        items
        @ List.map (fun { Ast.key; _ } -> (key, None)) select.Ast.order_by
        @ [ (Ast.Col (None, grid_col), None) ]
      in
      Plain
        {
          p_shard =
            {
              select with
              Ast.projection = Ast.Exprs shard_items;
              group_by = [];
              having = None;
              order_by = [];
              limit = None;
            };
          p_columns = columns;
          p_items = List.length items;
          p_order =
            List.map (fun { Ast.ascending; _ } -> ascending) select.Ast.order_by;
          p_limit = select.Ast.limit;
        }
    end
    else begin
      let items =
        match select.Ast.projection with
        | Ast.Exprs items -> items
        | Ast.Star -> raise (Reject "SELECT * with grouping")
      in
      if List.exists Ast.contains_aggregate select.Ast.group_by then
        raise (Reject "aggregate in GROUP BY");
      let keys = select.Ast.group_by in
      let aggs = ref [] in
      List.iter (fun (e, _) -> collect_aggs aggs e) items;
      Option.iter (collect_aggs aggs) select.Ast.having;
      List.iter
        (fun { Ast.key; _ } -> collect_aggs aggs key)
        select.Ast.order_by;
      let check_residual what e =
        if not (residual_ok ~keys e) then
          raise
            (Reject
               (Printf.sprintf "%s depends on individual rows (%s)" what
                  (Ast.expr_to_string e)))
      in
      List.iter (fun (e, _) -> check_residual "projection" e) items;
      Option.iter (check_residual "HAVING") select.Ast.having;
      List.iter
        (fun { Ast.key; _ } -> check_residual "ORDER BY" key)
        select.Ast.order_by;
      (* count-star doubles as the global-emptiness detector *)
      register aggs A_count_star;
      let aggs = !aggs in
      let shard_items =
        List.map (fun k -> (k, None)) keys
        @ List.concat_map agg_partial_items aggs
        @ [ (Ast.Fn ("min", [ Ast.Col (None, grid_col) ]), None) ]
      in
      Grouped
        {
          g_shard =
            {
              select with
              Ast.projection = Ast.Exprs shard_items;
              having = None;
              order_by = [];
              limit = None;
            };
          g_columns = List.map item_name items;
          g_nkeys = List.length keys;
          g_keys = keys;
          g_aggs = aggs;
          g_items = items;
          g_having = select.Ast.having;
          g_order = select.Ast.order_by;
          g_limit = select.Ast.limit;
        }
    end
  with Reject reason -> Not_shardable reason

(* ------------------------------------------------------------------ *)
(* Merging — every comparator and null rule below mirrors Exec          *)

let sort_by_keys decorated =
  List.stable_sort
    (fun (_, ka) (_, kb) ->
      let rec cmp = function
        | [], [] -> 0
        | (va, asc) :: ra, (vb, _) :: rb ->
            let c = D.compare_value va vb in
            if c <> 0 then if asc then c else -c else cmp (ra, rb)
        | _ -> 0
      in
      cmp (ka, kb))
    decorated

let apply_limit limit rows =
  match limit with
  | None -> rows
  | Some n -> List.filteri (fun i _ -> i < n) rows

let merge_plain p gathered =
  let n_items = p.p_items in
  let decorated =
    List.map
      (fun (row : D.value array) ->
        let grid =
          match row.(Array.length row - 1) with
          | D.Int g -> g
          | _ -> max_int
        in
        let keys =
          List.mapi (fun i asc -> (row.(n_items + i), asc)) p.p_order
        in
        (grid, Array.sub row 0 n_items, keys))
      gathered
  in
  (* restore the global scan order, then the user's ORDER BY on top *)
  let in_grid_order =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) decorated
  in
  let sorted =
    let rows = List.map (fun (_, row, ks) -> (row, ks)) in_grid_order in
    if p.p_order = [] then rows else sort_by_keys rows
  in
  let limited = apply_limit p.p_limit sorted in
  { Exec.columns = p.p_columns; rows = List.map fst limited }

(* partial-aggregate accumulators *)
type sum_acc = { mutable seen : bool; mutable all_int : bool; mutable total : float }

type acc =
  | Acc_count of int ref                 (* count / count_star *)
  | Acc_sum of sum_acc
  | Acc_minmax of D.value option ref * int  (* dir: -1 min, +1 max *)
  | Acc_avg of sum_acc * int ref

let fresh_acc = function
  | A_count_star | A_count _ -> Acc_count (ref 0)
  | A_sum _ -> Acc_sum { seen = false; all_int = true; total = 0. }
  | A_min _ -> Acc_minmax (ref None, -1)
  | A_max _ -> Acc_minmax (ref None, 1)
  | A_avg _ -> Acc_avg ({ seen = false; all_int = true; total = 0. }, ref 0)

let sum_feed (s : sum_acc) = function
  | D.Null -> ()
  | D.Int i ->
      s.seen <- true;
      s.total <- s.total +. float_of_int i
  | D.Float f ->
      s.seen <- true;
      s.all_int <- false;
      s.total <- s.total +. f
  | v ->
      (* a shard-side partial is always numeric or Null; anything else
         means the shard query itself errored, which the caller already
         turned into a fallback *)
      ignore v

let feed acc (row : D.value array) pos =
  match acc with
  | Acc_count r ->
      (match row.(pos) with D.Int n -> r := !r + n | _ -> ());
      pos + 1
  | Acc_sum s ->
      sum_feed s row.(pos);
      pos + 1
  | Acc_minmax (best, dir) ->
      (match row.(pos) with
      | D.Null -> ()
      | v -> (
          match !best with
          | None -> best := Some v
          | Some m -> if D.compare_value v m * dir > 0 then best := Some v));
      pos + 1
  | Acc_avg (s, n) ->
      sum_feed s row.(pos);
      (match row.(pos + 1) with D.Int k -> n := !n + k | _ -> ());
      pos + 2

let acc_value = function
  | Acc_count r -> D.Int !r
  | Acc_sum s ->
      if not s.seen then D.Null
      else if s.all_int then D.Int (int_of_float s.total)
      else D.Float s.total
  | Acc_minmax (best, _) -> ( match !best with None -> D.Null | Some v -> v)
  | Acc_avg (s, n) ->
      if !n = 0 then D.Null else D.Float (s.total /. float_of_int !n)

type group = {
  gkey : D.value list;
  gaccs : acc list;
  mutable gmin_grid : int;
  mutable gcount_star : int;
}

let merge_grouped ~udts g gathered =
  let ( let* ) = Result.bind in
  let groups : group list ref = ref [] in
  let key_of row = Array.to_list (Array.sub row 0 g.g_nkeys) in
  let same_key a b =
    List.length a = List.length b
    && List.for_all2 (fun x y -> D.compare_value x y = 0) a b
  in
  let feed_group grp row =
    let pos = ref g.g_nkeys in
    List.iter (fun acc -> pos := feed acc row !pos) grp.gaccs;
    (match row.(Array.length row - 1) with
    | D.Int grid -> if grid < grp.gmin_grid then grp.gmin_grid <- grid
    | _ -> ());
    (* track global row count for the empty-input quirk *)
    let pos = ref g.g_nkeys in
    List.iter2
      (fun a acc ->
        (match a, acc with
        | A_count_star, Acc_count _ -> (
            match row.(!pos) with
            | D.Int n -> grp.gcount_star <- grp.gcount_star + n
            | _ -> ())
        | _ -> ());
        pos := !pos + agg_width a)
      g.g_aggs grp.gaccs
  in
  List.iter
    (fun (row : D.value array) ->
      let key = key_of row in
      match List.find_opt (fun grp -> same_key grp.gkey key) !groups with
      | Some grp -> feed_group grp row
      | None ->
          let grp =
            {
              gkey = key;
              gaccs = List.map fresh_acc g.g_aggs;
              gmin_grid = max_int;
              gcount_star = 0;
            }
          in
          feed_group grp row;
          groups := !groups @ [ grp ])
    gathered;
  (* global group order = first occurrence in the unpartitioned scan *)
  let ordered =
    List.stable_sort (fun a b -> compare a.gmin_grid b.gmin_grid) !groups
  in
  (* merged value of each registered aggregate, in registry order *)
  let merged_of grp =
    let tbl = ref [] in
    List.iter2 (fun a acc -> tbl := (a, acc_value acc) :: !tbl) g.g_aggs grp.gaccs;
    List.rev !tbl
  in
  let find_merged merged a =
    let same b =
      match a, b with
      | A_count_star, A_count_star -> true
      | A_count x, A_count y
      | A_sum x, A_sum y
      | A_min x, A_min y
      | A_max x, A_max y
      | A_avg x, A_avg y -> Ast.equal_expr x y
      | _ -> false
    in
    match List.find_opt (fun (b, _) -> same b) merged with
    | Some (_, v) -> v
    | None -> D.Null
  in
  let env =
    { Eval.lookup = (fun _ n -> Error ("unknown column " ^ n)); udts }
  in
  (* replace aggregates and group-key subtrees with their merged values,
     then evaluate the residue like the executor evaluates in-group *)
  let eval_in_group grp e =
    let merged = merged_of grp in
    let keyed e =
      let rec idx i = function
        | [] -> None
        | k :: rest -> if Ast.equal_expr e k then Some i else idx (i + 1) rest
      in
      idx 0 g.g_keys
    in
    let rec subst e =
      match keyed e with
      | Some i -> Ast.Lit (List.nth grp.gkey i)
      | None -> (
          match e with
          | Ast.Count_star -> Ast.Lit (find_merged merged A_count_star)
          | Ast.Fn (name, [ arg ]) when Ast.is_aggregate_fn name ->
              let a =
                match String.lowercase_ascii name with
                | "count" -> A_count arg
                | "sum" -> A_sum arg
                | "avg" -> A_avg arg
                | "min" -> A_min arg
                | _ -> A_max arg
              in
              Ast.Lit (find_merged merged a)
          | Ast.Fn (name, args) -> Ast.Fn (name, List.map subst args)
          | Ast.Not e -> Ast.Not (subst e)
          | Ast.Neg e -> Ast.Neg (subst e)
          | Ast.Binop (op, a, b) -> Ast.Binop (op, subst a, subst b)
          | Ast.Lit _ | Ast.Col _ -> e)
    in
    Eval.eval env (subst e)
  in
  let global_rows =
    List.fold_left (fun n grp -> n + grp.gcount_star) 0 ordered
  in
  let* out_rows =
    let rec per_group acc = function
      | [] -> Ok (List.rev acc)
      | grp :: rest ->
          if g.g_keys = [] && global_rows = 0 then begin
            (* empty overall group: only COUNT-like aggregates make
               sense — any other item silently drops the row (executor
               quirk, reproduced bit for bit) *)
            let rec vals acc' = function
              | [] -> Ok (Array.of_list (List.rev acc'))
              | (e, _) :: more -> (
                  match e with
                  | Ast.Count_star -> vals (D.Int 0 :: acc') more
                  | Ast.Fn (name, _) when Ast.is_aggregate_fn name ->
                      vals
                        ((if String.lowercase_ascii name = "count" then
                            D.Int 0
                          else D.Null)
                        :: acc')
                        more
                  | _ -> Error "non-aggregate projection over empty input")
            in
            match vals [] g.g_items with
            | Ok row -> per_group ((row, []) :: acc) rest
            | Error _ -> per_group acc rest
          end
          else begin
            let* keep =
              match g.g_having with
              | None -> Ok true
              | Some h -> (
                  let* v = eval_in_group grp h in
                  match v with
                  | D.Bool b -> Ok b
                  | D.Null -> Ok false
                  | v ->
                      Error
                        (Printf.sprintf "HAVING evaluated to %s"
                           (D.value_to_display v)))
            in
            if not keep then per_group acc rest
            else
              let rec vals acc' = function
                | [] -> Ok (Array.of_list (List.rev acc'))
                | (e, _) :: more ->
                    let* v = eval_in_group grp e in
                    vals (v :: acc') more
              in
              let* row = vals [] g.g_items in
              let rec okeys acc' = function
                | [] -> Ok (List.rev acc')
                | { Ast.key; ascending } :: more ->
                    let* v = eval_in_group grp key in
                    okeys ((v, ascending) :: acc') more
              in
              let* ks = okeys [] g.g_order in
              per_group ((row, ks) :: acc) rest
          end
    in
    per_group [] ordered
  in
  let sorted = if g.g_order = [] then out_rows else sort_by_keys out_rows in
  let limited = apply_limit g.g_limit sorted in
  Ok { Exec.columns = g.g_columns; rows = List.map fst limited }
