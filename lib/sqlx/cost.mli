(** The planner's cost model.

    Costs are abstract units where [1.0] is roughly one row visited by
    a sequential scan; only relative magnitudes matter because every
    candidate access path for a table is costed with the same
    constants and the cheapest wins. *)

(** {1 Unit costs} *)

val seq_row : float
val fetch_row : float
val btree_probe : float
val kmer_lookup : float
val hash_build_row : float
val hash_probe_row : float
val nested_probe_row : float

val vec_len_row : float
val vec_gc_row : float
val vec_contains_row : float
(** Per-row cost of a filter the vectorized scan serves with a packed
    kernel ({!Vec}); substituted for the scalar predicate cost in
    residual filter chains so plans reflect the batch executor. *)

(** {1 Filter chains} *)

val chain_cost : (float * float) list -> float
(** Expected per-row cost of a short-circuiting filter chain given
    [(cost, selectivity)] pairs in evaluation order. *)

val chain_selectivity : (float * float) list -> float
(** Product of the chain's selectivities. *)

(** {1 Access paths} *)

type access_est = {
  est_rows : float;  (** rows the access plus residual filters produce *)
  est_cost : float;  (** total cost of producing them *)
}

val full_scan : rows:float -> filters:(float * float) list -> access_est

val index_eq :
  rows:float -> eq_sel:float -> filters:(float * float) list -> access_est
(** B-tree point lookup delivering [rows *. eq_sel] candidates. *)

val index_range :
  rows:float -> range_sel:float -> filters:(float * float) list -> access_est
(** B-tree range scan delivering [rows *. range_sel] candidates. *)

val kmer_hit_fraction : k:int -> mean_len:float -> float
(** Expected fraction of indexed rows whose text contains one specific
    k-mer, for texts of [mean_len] characters over a 4-letter
    alphabet. *)

val genomic_contains :
  rows:float ->
  k:int ->
  mean_len:float ->
  pattern_len:int ->
  verify_cost:float ->
  filters:(float * float) list ->
  access_est
(** k-mer posting-list access for [contains(col, pattern)]: one lookup
    plus exact verification of each candidate. *)

val genomic_seed :
  rows:float ->
  k:int ->
  mean_len:float ->
  pattern_len:int ->
  filters:(float * float) list ->
  access_est
(** Seed-and-verify access for [resembles(col, pattern) >= t]: the
    union of every pattern k-mer's postings. The real [resembles]
    predicate runs as a residual filter, so [filters] must include
    it. *)

val resembles_min_len : k:int -> threshold:float -> int option
(** Minimum sequence length [m*] such that any pair of sequences both
    at least [m*] long with [resembles >= threshold] (under
    [Scoring.dna_default]) must share an exact run of [k] characters,
    i.e. a k-mer seed lookup cannot miss them. [None] when the
    threshold is too low for the bound to hold
    ([threshold <= 1 - 3/(2k)]); rows shorter than [m*] must remain
    unconditional candidates. *)

(** {1 Join ordering} *)

type rel = {
  r_alias : string;  (** lowercased alias *)
  r_rows : float;  (** estimated rows after local filters *)
}

type edge = {
  e_a : string;
  e_b : string;
  e_sel : float;  (** selectivity of the join predicate linking them *)
}

val step_cost : left:float -> right:float -> float
(** Cost of joining intermediates of the given cardinalities (cheaper
    of hash build/probe and nested loop). *)

val greedy_order : rel list -> edge list -> string list
(** Greedy join order: start at the smallest relation, repeatedly pick
    the relation minimizing the next intermediate cardinality,
    preferring connected relations over cartesian products.
    Deterministic — ties resolve to the earliest relation in input
    order. *)
