(** Abstract syntax of the extended query language.

    A SQL subset whose expressions admit user-defined (genomic) functions
    in every position — SELECT list, WHERE, GROUP BY, ORDER BY — exactly
    the integration surface paper section 6.3 describes. *)

type binop =
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul | Div
  | Like   (** SQL LIKE with [%] and [_] wildcards *)

type expr =
  | Lit of Genalg_storage.Dtype.value
  | Col of string option * string     (** optional table alias, column *)
  | Fn of string * expr list          (** built-in, aggregate or UDF call *)
  | Not of expr
  | Neg of expr
  | Binop of binop * expr * expr
  | Count_star                        (** the COUNT-star aggregate *)

type order_item = { key : expr; ascending : bool }

type projection =
  | Star
  | Exprs of (expr * string option) list  (** expression, optional AS alias *)

type select = {
  projection : projection;
  from : (string * string) list;      (** (table, alias); alias defaults to table *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

type column_def = {
  col_name : string;
  col_type : Genalg_storage.Dtype.t;
  col_nullable : bool;
}

type stmt =
  | Select of select
  | Insert of { table : string; columns : string list; rows : expr list list }
  | Create_table of { table : string; defs : column_def list }
  | Create_index of { table : string; column : string }
  | Create_genomic_index of { table : string; column : string }
      (** a k-mer substring index over an opaque (sequence) column *)
  | Delete of { table : string; where : expr option }
  | Analyze of string  (** collect per-column statistics for a table *)
  | Drop_table of string
  | Explain of { analyze : bool; select : select }
      (** [EXPLAIN SELECT ...] shows the access plan without running it;
          [EXPLAIN ANALYZE SELECT ...] executes the query and reports the
          per-operator tree with row counts and elapsed times *)

val expr_to_string : expr -> string
val stmt_to_string : stmt -> string

val is_aggregate_fn : string -> bool
(** count, sum, avg, min, max (case-insensitive). *)

val contains_aggregate : expr -> bool

val conjuncts : expr -> expr list
(** Flatten a tree of ANDs into its conjuncts. *)

val columns_of_expr : expr -> (string option * string) list
(** Column references, in order of first occurrence. *)

val equal_expr : expr -> expr -> bool
