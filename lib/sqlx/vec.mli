(** Batch-at-a-time (vectorized) scan execution.

    Scans feed the pushed-down filter pipeline columnar chunks of
    {!chunk_rows} rows carrying a selection vector. Within a chunk the
    pipeline runs predicate-major: each stage shrinks the selection
    before the next stage sees it, which preserves the tuple path's
    left-to-right short-circuit semantics per row. Stages the
    {!classify}r recognizes run as word-level kernels on the packed
    sequence frame (GC content, length, substring containment) without
    decoding; every other stage — and every row a kernel cannot decide
    — falls back to the tuple-at-a-time evaluator so results,
    including errors and their input-order position, are byte-identical.

    See docs/EXECUTION.md for the model and the kernel catalog. *)

module D = Genalg_storage.Dtype

val chunk_rows : int
(** Rows per columnar chunk (1024). *)

val set_enabled : bool -> unit
(** Toggle the vectorized scan path; off means every scan uses the
    tuple-at-a-time code. Prefer {!Exec.set_vectorized_enabled}, which
    also drops cached plans/results. On by default. *)

val enabled : unit -> bool

(** {2 Kernel classification} *)

type kind =
  | Gc_cmp of Ast.binop * D.value * bool
      (** [gc_content(col) <cmp> lit]; the bool is [lit_first]. *)
  | Len_cmp of Ast.binop * D.value * bool  (** [length(col) <cmp> lit]. *)
  | Contains of string  (** [contains(col, 'pattern')]. *)

type kernel = {
  k_col : int;  (** resolver token (the executor passes a column index) *)
  k_col_name : string;
  k_udt : string;  (** declared column UDT: dna, rna or proteinseq *)
  k_kind : kind;
}

val kernel_label : kernel -> string
(** ["packed-gc(seq)"], ["packed-len(seq)"] or ["packed-contains(seq)"]. *)

val classify :
  dtype_of:(string option -> string -> (D.t * int) option) ->
  resolves:(string -> D.t list -> bool) ->
  Ast.expr ->
  kernel option
(** Recognize a kernel-servable predicate. [dtype_of qualifier column]
    resolves a column reference against the scan's binding (returning
    the declared dtype and a token stored in [k_col]); [resolves]
    confirms the genomic function is registered for the argument types
    (otherwise the tuple evaluator's "unknown function" error must
    surface, so no kernel may run). *)

(** {2 The fused filter pipeline} *)

type stage = {
  st_expr : Ast.expr;
  st_kernel : (kernel * (D.value array -> bool option)) option;
      (** [None]: tuple-evaluated stage. The kernel function returns
          [None] for rows it cannot decide (NULL, corrupt frame, wrong
          alphabet), which routes that row to the tuple evaluator. *)
}

val compile :
  dtype_of:(string option -> string -> (D.t * int) option) ->
  resolves:(string -> D.t list -> bool) ->
  Ast.expr list ->
  stage list
(** One stage per pushed-down filter, in plan order. *)

val kernel_labels : stage list -> string list

type report = {
  batches : int;
  rows_in : int;
  rows_out : int;
  kernel_rows : int;  (** row×stage decisions served by packed kernels *)
  fallback_rows : int;  (** row×stage decisions by the tuple evaluator *)
  parts : int;  (** degree of parallelism used for the chunks *)
  kernels : string list;
}

val run :
  eval_row:(D.value array -> Ast.expr -> (bool, string) result) ->
  stages:stage list ->
  D.value array array ->
  (int list * report, string) result
(** Run the pipeline; returns surviving row indices, ascending.
    Equivalent to applying the stage expressions left to right per row
    with short-circuit on false, first-error-in-input-order on error.
    Chunks partition over the {!Genalg_par.Par} pool when the input is
    large enough and jobs > 1; results are jobs-invariant. *)

val report_to_string : report -> string
(** ["[vec batches=4 rows=4000->512 kernels=[packed-gc(seq)] ...]"] —
    the annotation EXPLAIN ANALYZE appends to vectorized scans. *)
