(** Query execution against the Unifying Database.

    Materializing executor over {!Plan} plans: index or full scans,
    pushed-down filters, nested-loop joins with early join-filter
    application, grouping/aggregation, HAVING, ORDER BY, LIMIT. All reads
    and writes are permission-checked through {!Genalg_storage.Database}
    with the calling actor.

    Observability: every SELECT increments the [sqlx.queries] counter and
    runs under an [sqlx.select] span; each table access runs under an
    [sqlx.scan] span carrying a [table] attribute, and result cardinality
    feeds [sqlx.rows_out]. Execution always assembles a per-operator
    {!op_profile} tree — cheap enough to build unconditionally — which
    {!explain} renders for [EXPLAIN ANALYZE]. *)

module D := Genalg_storage.Dtype

type result_set = {
  columns : string list;
  rows : D.value array list;
}

type outcome =
  | Rows of result_set
  | Affected of int   (** INSERT / DELETE *)
  | Executed          (** DDL *)

type op_profile = {
  op : string;            (** operator label, e.g. ["Scan genes via full scan"] *)
  actual_rows : int;      (** rows the operator produced *)
  est_rows : int option;
      (** the cost-based planner's cardinality estimate for this
          operator; [None] on heuristic plans and shaping operators *)
  elapsed_s : float;      (** wall-clock seconds, inclusive of children *)
  children : op_profile list;
}
(** One node of an EXPLAIN ANALYZE operator tree. The root is always a
    [Select] node whose [actual_rows] equals the result-set cardinality. *)

val run_select :
  ?optimize:bool ->
  Genalg_storage.Database.t -> actor:string -> Ast.select ->
  (result_set, string) result

val run_select_profiled :
  ?optimize:bool ->
  Genalg_storage.Database.t -> actor:string -> Ast.select ->
  (result_set * op_profile, string) result
(** Like {!run_select} but also returns the per-operator profile tree.
    Profiling is always on — it adds a handful of clock reads per query,
    not per row. *)

val render_profile : op_profile -> string list
(** Render a profile tree as indented lines,
    ["Select  (rows=3, time=1.204 ms)"] style; operators with a planner
    estimate render ["(rows=3, est~5, time=1.204 ms)"]. *)

val explain :
  ?optimize:bool ->
  Genalg_storage.Database.t -> actor:string -> analyze:bool -> Ast.select ->
  (result_set, string) result
(** [EXPLAIN] ([analyze:false]) renders the access plan without executing;
    [EXPLAIN ANALYZE] executes the SELECT and renders the operator tree.
    Either way the result is a single-column [QUERY PLAN] result set. *)

val run :
  ?optimize:bool ->
  Genalg_storage.Database.t -> actor:string -> Ast.stmt ->
  (outcome, string) result
(** DDL and INSERTs target the actor's own space, except for the loader
    actor, whose tables live in the public space. *)

val query :
  ?optimize:bool ->
  Genalg_storage.Database.t -> actor:string -> string ->
  (outcome, string) result
(** Parse then {!run}. Parsing goes through the statement cache, keyed
    on the whitespace-normalized statement text. *)

(** {1 Statement caches}

    Three process-wide LRUs back {!query} and {!run} (full story in
    [docs/CACHING.md]):

    - [cache.stmt] — normalized statement text -> parsed AST;
    - [cache.plan] — (database id, actor, optimize, SELECT ast) -> plan,
      validated against table schema versions and the catalog version;
    - [cache.result] — same key -> result set for read-only SELECTs
      executed via {!run}/{!query}, validated against table data/schema
      versions, eagerly swept by SQL writes and DDL.

    Validation makes staleness impossible regardless of the write path:
    a hit is only served while every touched table's version counters
    match those recorded at execution. A cached result set is shared —
    treat returned rows as read-only (the engine never mutates them). *)

val invalidate_table : Genalg_storage.Database.t -> table:string -> int
(** Eagerly drop every cached plan/result depending on [table] in this
    database; returns how many entries were dropped (all counted under
    [cache.{plan,result}.invalidations]). *)

val clear_statement_caches : unit -> unit
(** Empty all three caches (statistics are kept). For tests/benches. *)

val set_hash_join_enabled : bool -> unit
(** Enable/disable the hash equi-join strategy (default enabled). Also
    drops cached plans and results so the toggle takes effect
    immediately. Disabling forces the nested-loop baseline — used by the
    PAR bench and the hash ≡ nested-loop equivalence tests. *)

val set_vectorized_enabled : bool -> unit
(** Enable/disable batch-at-a-time scan execution (default enabled;
    see {!Vec} and docs/EXECUTION.md). Disabling forces the
    tuple-at-a-time baseline. Also drops cached plans and results so
    the toggle takes effect immediately — used by the VEC bench and
    the vectorized ≡ tuple equivalence tests. *)

val set_planner_mode : Plan.mode -> unit
(** Select the planner: [Cost_based] (default) consults ANALYZE
    statistics where they exist; [Heuristic] always uses the static
    model. Also drops cached plans and results so the toggle takes
    effect immediately — used by the OPT bench and the plan-equivalence
    tests. *)

val set_plan_cache_entries : int -> unit
(** Replace the plan cache with an empty one of the given capacity. *)

val set_result_cache_limits : entries:int -> bytes:int -> unit
(** Replace the result cache with an empty one bounded by [entries] and
    [bytes] (approximate decoded size of the cached result sets). *)

val render : Genalg_storage.Database.t -> result_set -> string
(** ASCII table with UDT-aware value display. *)
