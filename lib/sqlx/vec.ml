(* Batch-at-a-time scan execution (docs/EXECUTION.md).

   Scans hand the filter pipeline columnar chunks of ~1k rows with a
   selection vector instead of evaluating predicates row by row.
   Predicates the classifier recognizes run as word-level kernels
   straight on the 2-bit/4-bit packed sequence payload ({!Sequence}'s
   framed kernels) — no [Bytes.sub], no decode to text, no [Eval] env
   per row. Everything else (and every row a kernel cannot serve:
   NULLs, corrupt frames, mismatched alphabets, unregistered
   functions) falls back to the tuple-at-a-time evaluator for that
   row, so results — including which error surfaces, and in which
   input order — are byte-identical to the scalar path. *)

module D = Genalg_storage.Dtype
module Obs = Genalg_obs.Obs
module Par = Genalg_par.Par
module Sequence = Genalg_gdt.Sequence

let c_batches = Obs.counter "sqlx.vec.batches"
let c_rows = Obs.counter "sqlx.vec.rows"
let c_kernel_rows = Obs.counter "sqlx.vec.kernel_rows"
let c_fallback_rows = Obs.counter "sqlx.vec.fallback_rows"

(* Chunk size: small enough that a chunk's selection vector and its
   rows stay cache-resident, large enough to amortize per-chunk
   bookkeeping. *)
let chunk_rows = 1024

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* ------------------------------------------------------------------ *)
(* Kernel classification                                               *)

type kind =
  | Gc_cmp of Ast.binop * D.value * bool (* lit_first *)
  | Len_cmp of Ast.binop * D.value * bool
  | Contains of string

type kernel = {
  k_col : int; (* resolver token: schema column index in the executor *)
  k_col_name : string;
  k_udt : string; (* dna | rna | proteinseq *)
  k_kind : kind;
}

let kernel_label k =
  let name =
    match k.k_kind with
    | Gc_cmp _ -> "packed-gc"
    | Len_cmp _ -> "packed-len"
    | Contains _ -> "packed-contains"
  in
  Printf.sprintf "%s(%s)" name k.k_col_name

let sequence_udts = [ "dna"; "rna"; "proteinseq" ]
let nucleotide_udts = [ "dna"; "rna" ]

let is_cmp = function
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
  | Ast.And | Ast.Or | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Like -> false

(* [classify ~dtype_of ~resolves expr] recognizes the predicate shapes
   the packed kernels serve:

     contains(col, 'LITERAL')
     gc_content(col) <cmp> literal      (and the mirrored literal <cmp> fn)
     length(col)     <cmp> literal

   [dtype_of qualifier name] resolves a column reference to its
   declared dtype plus an opaque token handed back in [k_col];
   [resolves name args] must confirm the genomic function is actually
   registered for those argument types — when it is not, the tuple
   evaluator raises "unknown function", and the kernel must not mask
   that. Anything unrecognized stays on the tuple path. *)
let classify ~dtype_of ~resolves expr =
  let seq_col allowed_udts qualifier name =
    match dtype_of qualifier name with
    | Some (D.TOpaque u, token) when List.mem (String.lowercase_ascii u) allowed_udts ->
        Some (u, token)
    | _ -> None
  in
  let fn_operand allowed fname = function
    | Ast.Fn (name, [ Ast.Col (q, col) ]) when String.lowercase_ascii name = fname -> (
        match seq_col allowed q col with
        | Some (u, token) when resolves name [ D.TOpaque u ] -> Some (u, token, col)
        | _ -> None)
    | _ -> None
  in
  let stat_kernel op lhs rhs ~lit_first =
    let of_fn fname allowed mk =
      match fn_operand allowed fname lhs with
      | Some (u, token, col) ->
          Some { k_col = token; k_col_name = col; k_udt = u; k_kind = mk }
      | None -> None
    in
    match rhs with
    | Ast.Lit v -> (
        match of_fn "gc_content" nucleotide_udts (Gc_cmp (op, v, lit_first)) with
        | Some _ as r -> r
        | None -> of_fn "length" sequence_udts (Len_cmp (op, v, lit_first)))
    | _ -> None
  in
  match expr with
  | Ast.Fn (name, [ Ast.Col (q, col); Ast.Lit (D.Str pattern) ])
    when String.lowercase_ascii name = "contains" -> (
      match seq_col sequence_udts q col with
      | Some (u, token) when resolves name [ D.TOpaque u; D.TString ] ->
          Some { k_col = token; k_col_name = col; k_udt = u; k_kind = Contains pattern }
      | _ -> None)
  | Ast.Binop (op, lhs, (Ast.Lit _ as rhs)) when is_cmp op ->
      stat_kernel op lhs rhs ~lit_first:false
  | Ast.Binop (op, (Ast.Lit _ as lhs), rhs) when is_cmp op ->
      stat_kernel op rhs lhs ~lit_first:true
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Kernel application                                                  *)

(* Replica of [Eval.compare_op] ∘ [Eval.eval_predicate] for the
   kernel-computed operand: a NULL literal compares to SQL NULL, which
   the predicate context reads as false; otherwise [D.compare_value]
   is total (numeric Int/Float, cross-type via rank), so no error
   branch exists on this path. *)
let cmp_value op ~lit_first lit actual =
  if lit = D.Null then false
  else begin
    let a, b = if lit_first then (lit, actual) else (actual, lit) in
    let c = D.compare_value a b in
    match op with
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
    | Ast.And | Ast.Or | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Like ->
        assert false
  end

let expected_alphabet = function
  | "dna" -> Some Sequence.Dna
  | "rna" -> Some Sequence.Rna
  | "proteinseq" -> Some Sequence.Protein
  | _ -> None

(* [Some verdict] when the kernel can decide this row from the packed
   frame alone; [None] sends the row to the tuple evaluator, which
   reproduces the exact scalar behaviour (type errors for NULL or
   non-sequence values, decode errors for corrupt frames, the
   wrong-alphabet error for mismatched payloads). *)
let apply_of k =
  let expect = expected_alphabet (String.lowercase_ascii k.k_udt) in
  fun (values : D.value array) ->
    match values.(k.k_col) with
    | D.Opaque (tag, data) when tag = k.k_udt -> (
        match Sequence.framed_info data, expect with
        | Some (alpha, len), Some want when alpha = want -> (
            match k.k_kind with
            | Len_cmp (op, lit, lit_first) ->
                Some (cmp_value op ~lit_first lit (D.Int len))
            | Gc_cmp (op, lit, lit_first) -> (
                match Sequence.framed_gc_count data with
                | Some gc ->
                    let v =
                      if len = 0 then 0.
                      else float_of_int gc /. float_of_int len
                    in
                    Some (cmp_value op ~lit_first lit (D.Float v))
                | None -> None)
            | Contains pattern -> Sequence.framed_contains ~pattern data)
        | _ -> None)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* The fused filter pipeline                                           *)

type stage = {
  st_expr : Ast.expr;
  st_kernel : (kernel * (D.value array -> bool option)) option;
}

let compile ~dtype_of ~resolves filters =
  List.map
    (fun f ->
      match classify ~dtype_of ~resolves f with
      | Some k -> { st_expr = f; st_kernel = Some (k, apply_of k) }
      | None -> { st_expr = f; st_kernel = None })
    filters

let kernel_labels stages =
  List.filter_map
    (fun st -> Option.map (fun (k, _) -> kernel_label k) st.st_kernel)
    stages

type report = {
  batches : int;
  rows_in : int;
  rows_out : int;
  kernel_rows : int; (* row×stage decisions served by a packed kernel *)
  fallback_rows : int; (* row×stage decisions by the tuple evaluator *)
  parts : int; (* degree of parallelism used for the chunks *)
  kernels : string list;
}

(* Same threshold as the executor's row-partitioned scalar path. *)
let par_row_threshold = 256

(* Run the fused pipeline over [rows]. Returns the indices of the
   surviving rows, ascending.

   Semantics contract (the QCheck property in test/test_vec.ml pins
   this): identical to evaluating the predicates left to right on each
   row with short-circuit on false — a row reaches stage [s] only if
   every earlier stage accepted it, and when any row errors, the error
   of the smallest row index surfaces, exactly as the tuple path's
   first-error-in-input-order merge. Chunks are processed predicate-
   major for locality, which cannot change any of that: stage order
   per row is preserved by the shrinking selection vector, and errors
   are recorded with their row index and minimized at the merge. *)
let run ~eval_row ~stages rows =
  let n = Array.length rows in
  let nchunks = max 1 ((n + chunk_rows - 1) / chunk_rows) in
  let do_chunk ci =
    let lo = ci * chunk_rows in
    let hi = min n (lo + chunk_rows) in
    let sel = Array.init (hi - lo) (fun i -> lo + i) in
    let live = ref (hi - lo) in
    let first_err = ref None in
    let kr = ref 0 and fr = ref 0 in
    let record_err r msg =
      match !first_err with
      | Some (r0, _) when r0 <= r -> ()
      | _ -> first_err := Some (r, msg)
    in
    List.iter
      (fun st ->
        let m = !live in
        let w = ref 0 in
        for i = 0 to m - 1 do
          let r = Array.unsafe_get sel i in
          let scalar () =
            incr fr;
            match eval_row rows.(r) st.st_expr with
            | Ok b -> b
            | Error msg ->
                record_err r msg;
                false
          in
          let keep =
            match st.st_kernel with
            | Some (_, apply) -> (
                match apply rows.(r) with
                | Some b ->
                    incr kr;
                    b
                | None -> scalar ())
            | None -> scalar ()
          in
          if keep then begin
            Array.unsafe_set sel !w r;
            incr w
          end
        done;
        live := !w)
      stages;
    (Array.sub sel 0 !live, !first_err, !kr, !fr)
  in
  let jobs = Par.jobs () in
  let parts = if jobs > 1 && n >= par_row_threshold then jobs else 1 in
  let chunk_ids = Array.init nchunks Fun.id in
  let results =
    if parts > 1 then Par.parallel_map ~chunk:1 do_chunk chunk_ids
    else Array.map do_chunk chunk_ids
  in
  (* chunks cover ascending row ranges, so the first chunk carrying an
     error holds the globally smallest erroring row *)
  let rec merge acc kr fr ci =
    if ci = nchunks then Ok (List.concat (List.rev acc), kr, fr)
    else
      let kept, err, ckr, cfr = results.(ci) in
      match err with
      | Some (_, msg) -> Error msg
      | None ->
          merge (Array.to_list kept :: acc) (kr + ckr) (fr + cfr) (ci + 1)
  in
  match merge [] 0 0 0 with
  | Error _ as e -> e
  | Ok (kept, kernel_rows, fallback_rows) ->
      Obs.add c_batches nchunks;
      Obs.add c_rows n;
      if kernel_rows > 0 then Obs.add c_kernel_rows kernel_rows;
      if fallback_rows > 0 then Obs.add c_fallback_rows fallback_rows;
      Ok
        ( kept,
          {
            batches = nchunks;
            rows_in = n;
            rows_out = List.length kept;
            kernel_rows;
            fallback_rows;
            parts;
            kernels = kernel_labels stages;
          } )

let report_to_string r =
  Printf.sprintf "[vec batches=%d rows=%d->%d%s%s%s]" r.batches r.rows_in
    r.rows_out
    (match r.kernels with
    | [] -> ""
    | ks -> Printf.sprintf " kernels=[%s]" (String.concat "; " ks))
    (if r.kernel_rows > 0 then Printf.sprintf " kernel_rows=%d" r.kernel_rows
     else "")
    (if r.fallback_rows > 0 then Printf.sprintf " fallback_rows=%d" r.fallback_rows
     else "")
