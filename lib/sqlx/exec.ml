module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Schema = Genalg_storage.Schema

type result_set = {
  columns : string list;
  rows : D.value array list;
}

type outcome =
  | Rows of result_set
  | Affected of int
  | Executed

let ( let* ) = Result.bind

module Obs = Genalg_obs.Obs
module Lru = Genalg_cache.Lru
module Par = Genalg_par.Par

let c_queries = Obs.counter "sqlx.queries"
let c_statements = Obs.counter "sqlx.statements"
let c_rows_out = Obs.counter "sqlx.rows_out"
let c_hash_steps = Obs.counter "sqlx.join.hash_steps"
let c_nested_steps = Obs.counter "sqlx.join.nested_steps"
let c_scan_partitions = Obs.counter "sqlx.scan.partitions"

type binding = {
  alias : string;
  schema : Schema.t;
  values : D.value array;
}

let lookup_in bindings qualifier name =
  let lname = String.lowercase_ascii name in
  match qualifier with
  | Some q ->
      let lq = String.lowercase_ascii q in
      (match List.find_opt (fun b -> String.lowercase_ascii b.alias = lq) bindings with
      | None -> Error (Printf.sprintf "unknown table alias %s" q)
      | Some b -> (
          match Schema.column_index b.schema lname with
          | Some i -> Ok b.values.(i)
          | None -> Error (Printf.sprintf "no column %s in %s" name q)))
  | None -> (
      let hits =
        List.filter_map
          (fun b ->
            Option.map (fun i -> b.values.(i)) (Schema.column_index b.schema lname))
          bindings
      in
      match hits with
      | [ v ] -> Ok v
      | [] -> Error (Printf.sprintf "unknown column %s" name)
      | _ -> Error (Printf.sprintf "ambiguous column %s" name))

let env_of db bindings =
  { Eval.lookup = (fun q n -> lookup_in bindings q n); udts = Db.udts db }

(* ------------------------------------------------------------------ *)
(* Aggregation: replace aggregate subtrees by their computed value,
   then evaluate the residual expression on the group's first row.      *)

let compute_aggregate db group name arg =
  let values =
    List.fold_left
      (fun acc bindings ->
        match acc with
        | Error _ as e -> e
        | Ok vs -> (
            match Eval.eval (env_of db bindings) arg with
            | Error _ as e -> e
            | Ok v -> Ok (v :: vs)))
      (Ok []) group
  in
  let* values = values in
  let values = List.rev values in
  let non_null = List.filter (fun v -> v <> D.Null) values in
  let numeric msg f =
    let rec sum acc = function
      | [] -> Ok acc
      | D.Int i :: rest -> sum (acc +. float_of_int i) rest
      | D.Float x :: rest -> sum (acc +. x) rest
      | v :: _ ->
          Error (Printf.sprintf "%s over non-numeric value %s" msg (D.value_to_display v))
    in
    let* total = sum 0. non_null in
    Ok (f total (List.length non_null))
  in
  match String.lowercase_ascii name with
  | "count" -> Ok (D.Int (List.length non_null))
  | "sum" ->
      if non_null = [] then Ok D.Null
      else
        let all_int = List.for_all (function D.Int _ -> true | _ -> false) non_null in
        let* v = numeric "SUM" (fun total _ -> total) in
        Ok (if all_int then D.Int (int_of_float v) else D.Float v)
  | "avg" ->
      if non_null = [] then Ok D.Null
      else
        let* v = numeric "AVG" (fun total n -> total /. float_of_int n) in
        Ok (D.Float v)
  | "min" ->
      (match non_null with
      | [] -> Ok D.Null
      | first :: rest ->
          Ok (List.fold_left (fun m v -> if D.compare_value v m < 0 then v else m) first rest))
  | "max" ->
      (match non_null with
      | [] -> Ok D.Null
      | first :: rest ->
          Ok (List.fold_left (fun m v -> if D.compare_value v m > 0 then v else m) first rest))
  | other -> Error (Printf.sprintf "unknown aggregate %s" other)

let rec fold_aggregates db group expr =
  match expr with
  | Ast.Count_star -> Ok (Ast.Lit (D.Int (List.length group)))
  | Ast.Fn (name, [ arg ]) when Ast.is_aggregate_fn name ->
      let* v = compute_aggregate db group name arg in
      Ok (Ast.Lit v)
  | Ast.Fn (name, _) when Ast.is_aggregate_fn name ->
      Error (Printf.sprintf "aggregate %s expects exactly one argument" name)
  | Ast.Fn (name, args) ->
      let* args = map_result (fold_aggregates db group) args in
      Ok (Ast.Fn (name, args))
  | Ast.Not e ->
      let* e = fold_aggregates db group e in
      Ok (Ast.Not e)
  | Ast.Neg e ->
      let* e = fold_aggregates db group e in
      Ok (Ast.Neg e)
  | Ast.Binop (op, a, b) ->
      let* a = fold_aggregates db group a in
      let* b = fold_aggregates db group b in
      Ok (Ast.Binop (op, a, b))
  | Ast.Lit _ | Ast.Col _ -> Ok expr

and map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let eval_in_group db group expr =
  match group with
  | [] -> Error "empty group"
  | first :: _ ->
      let* folded = fold_aggregates db group expr in
      Eval.eval (env_of db first) folded

(* ------------------------------------------------------------------ *)
(* Parallel row filtering and join expansion.

   Rows are decoded from the buffer pool sequentially (the pool and heap
   are not domain-safe); the decoded, immutable binding arrays are then
   partitioned over the {!Par} pool. Each partition writes only its own
   slot and partitions are merged in input order, so results — including
   which error surfaces first — are identical for any jobs setting.      *)

let par_row_threshold = 256

let apply_filters db filters row =
  let rec apply = function
    | [] -> Ok true
    | f :: fs -> (
        match Eval.eval_predicate (env_of db row) f with
        | Ok true -> apply fs
        | Ok false -> Ok false
        | Error _ as e -> e)
  in
  apply filters

(* [expand_ordered ~expand items] maps every item to the (ordered) list of
   rows it produces and concatenates in input order; the first error in
   input order wins. Parallel when worthwhile; returns the degree of
   parallelism used. *)
let expand_ordered ~expand items =
  let n = Array.length items in
  let j = Par.jobs () in
  let dop = if j > 1 && n >= par_row_threshold then j else 1 in
  let results = if dop > 1 then Par.parallel_map expand items else Array.map expand items in
  let rec merge acc i =
    if i = n then Ok (List.rev acc)
    else
      match results.(i) with
      | Ok rows -> merge (List.rev_append rows acc) (i + 1)
      | Error _ as e -> e
  in
  let* out = merge [] 0 in
  Ok (out, dop)

let filter_ordered db filters items =
  expand_ordered items ~expand:(fun row ->
      let* keep = apply_filters db filters row in
      Ok (if keep then [ row ] else []))

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)

let scan_table db ~actor (tp : Plan.table_plan) =
  match Db.resolve db ~actor tp.Plan.table with
  | None -> Error (Printf.sprintf "unknown or unreadable table %s" tp.Plan.table)
  | Some (_, table) ->
      let schema = Table.schema table in
      let from_rids rids =
        List.filter_map (fun rid -> Table.get table rid) rids
      in
      (* when a genomic access path cannot serve the pattern, fall back
         to a scan and re-apply the containment predicate *)
      let fallback_filter = ref [] in
      let raw_rows =
        match tp.Plan.access with
        | Plan.Full_scan ->
            let acc = ref [] in
            Table.scan table (fun _ row -> acc := row :: !acc);
            List.rev !acc
        | Plan.Genomic_contains { column; pattern } -> (
            match Table.genomic_search table ~column ~pattern with
            | `Hits rids -> from_rids rids
            | `No_index | `Unsupported_pattern ->
                fallback_filter :=
                  [ Ast.Fn
                      ( "contains",
                        [ Ast.Col (None, column); Ast.Lit (D.Str pattern) ] ) ];
                let acc = ref [] in
                Table.scan table (fun _ row -> acc := row :: !acc);
                List.rev !acc)
        | Plan.Genomic_seed { column; pattern; min_len; _ } -> (
            (* candidate superset only: the resembles conjunct is still in
               tp.filters, so falling back to a full scan — or candidates
               that over-approximate — never changes results *)
            match Table.genomic_seed table ~column ~pattern ~min_len with
            | `Hits rids -> from_rids rids
            | `No_index | `Unsupported_pattern ->
                let acc = ref [] in
                Table.scan table (fun _ row -> acc := row :: !acc);
                List.rev !acc)
        | Plan.Index_eq { column; key } -> (
            match Table.index_lookup table ~column key with
            | Some rids -> from_rids rids
            | None ->
                let acc = ref [] in
                Table.scan table (fun _ row -> acc := row :: !acc);
                List.rev !acc)
        | Plan.Index_range { column; lo; hi; lo_inclusive; hi_inclusive } -> (
            match
              Table.index_range table ~column ?lo ?hi ~lo_inclusive ~hi_inclusive ()
            with
            | Some rids -> from_rids rids
            | None ->
                let acc = ref [] in
                Table.scan table (fun _ row -> acc := row :: !acc);
                List.rev !acc)
      in
      let bindings_of row = { alias = tp.Plan.alias; schema; values = row } in
      (* apply pushed-down filters in plan order, over parallel
         partitions of the decoded rows when worthwhile *)
      (match !fallback_filter @ tp.Plan.filters with
      | [] -> Ok (List.map bindings_of raw_rows, 1, None)
      | filters when Vec.enabled () ->
          (* batch-at-a-time: columnar chunks with selection vectors,
             packed kernels where the classifier allows, per-row tuple
             fallback otherwise (docs/EXECUTION.md) *)
          let rows = Array.of_list raw_rows in
          let dtype_of qualifier name =
            let qualifier_ok =
              match qualifier with
              | None -> true
              | Some q ->
                  String.lowercase_ascii q
                  = String.lowercase_ascii tp.Plan.alias
            in
            if not qualifier_ok then None
            else
              match Schema.column_index schema (String.lowercase_ascii name) with
              | Some i -> Some ((Schema.column schema i).Schema.dtype, i)
              | None -> None
          in
          let resolves name args =
            Genalg_storage.Udt.resolve_function (Db.udts db) name args <> None
          in
          let stages = Vec.compile ~dtype_of ~resolves filters in
          let eval_row values f =
            Eval.eval_predicate (env_of db [ bindings_of values ]) f
          in
          let* kept, report = Vec.run ~eval_row ~stages rows in
          if report.Vec.parts > 1 then Obs.add c_scan_partitions report.Vec.parts;
          Ok
            ( List.map (fun i -> bindings_of rows.(i)) kept,
              report.Vec.parts,
              Some report )
      | filters ->
          let items =
            Array.of_list (List.map (fun row -> [ bindings_of row ]) raw_rows)
          in
          let* kept, parts = filter_ordered db filters items in
          if parts > 1 then Obs.add c_scan_partitions parts;
          Ok (List.map List.hd kept, parts, None))

(* When the index-eq access came from a conjunct that the planner removed,
   rows from a fallback full scan could violate it. To stay correct we
   re-check index-access conjuncts only when the index was missing; the
   scan above already handles that by falling back WITHOUT dropping the
   conjunct — the planner only removes it when the catalog reported an
   index, in which case the index path is taken. *)

(* ------------------------------------------------------------------ *)
(* Joins: one step per table after the first, strategy chosen by the
   planner. A hash step builds a table over the incoming rows keyed on
   the join column and probes it with each accumulated row; key equality
   follows SQL [=] (NULL keys never match; Int and Float keys compare
   numerically, so the hash normalizes Int to Float).                    *)

module JoinHash = Hashtbl.Make (struct
  type t = D.value

  let equal a b = D.compare_value a b = 0

  let hash v =
    Hashtbl.hash
      (match v with D.Int i -> D.Float (float_of_int i) | v -> v)
end)

let build_hash right_rows ~inner_col ~step_alias =
  let tbl = JoinHash.create (max 16 (2 * List.length right_rows)) in
  let* idx =
    match right_rows with
    | [] -> Ok (-1)
    | b :: _ -> (
        match Schema.column_index b.schema (String.lowercase_ascii inner_col) with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "no column %s in %s" inner_col step_alias))
  in
  List.iter
    (fun b ->
      let key = b.values.(idx) in
      if key <> D.Null then
        let prev = Option.value (JoinHash.find_opt tbl key) ~default:[] in
        JoinHash.replace tbl key (b :: prev))
    right_rows;
  (* per-key chains back into scan order so output matches a nested loop *)
  JoinHash.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl;
  Ok tbl

(* Expand one accumulated row through the step: nested loop walks every
   incoming row; hash probes the build table. Both apply the step's
   residual filters per combined row and keep incoming-scan order. *)
let exec_join_step db (step : Plan.join_step) ~right_rows acc_rows =
  let* expand =
    match step.Plan.strategy with
    | Plan.Nested_loop ->
        Obs.add c_nested_steps 1;
        Ok
          (fun row ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | b :: rest ->
                  let combined = row @ [ b ] in
                  let* keep = apply_filters db step.Plan.step_filters combined in
                  go (if keep then combined :: acc else acc) rest
            in
            go [] right_rows)
    | Plan.Hash_join { outer_alias; outer_col; inner_col } ->
        Obs.add c_hash_steps 1;
        let* tbl =
          build_hash right_rows ~inner_col ~step_alias:step.Plan.step_alias
        in
        Ok
          (fun row ->
            let* key = lookup_in row (Some outer_alias) outer_col in
            if key = D.Null then Ok []
            else
              let matches =
                Option.value (JoinHash.find_opt tbl key) ~default:[]
              in
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | b :: rest ->
                    let combined = row @ [ b ] in
                    let* keep =
                      apply_filters db step.Plan.step_filters combined
                    in
                    go (if keep then combined :: acc else acc) rest
              in
              go [] matches)
  in
  expand_ordered ~expand (Array.of_list acc_rows)

(* ------------------------------------------------------------------ *)
(* Statement caches (docs/CACHING.md): a parse cache keyed on the
   normalized statement text, a plan cache and a read-only result cache
   keyed on (database id, actor, optimize flag, SELECT ast). Plan and
   result entries carry the version counters of every table they touched
   and are validated on lookup, so invalidation is correct no matter
   which path wrote (sqlx, the ETL loader, or direct Table calls);
   SQL writes additionally sweep eagerly via [invalidate_table]. *)

let normalize_statement s =
  let buf = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> if Buffer.length buf > 0 then pending_space := true
      | c ->
          if !pending_space then Buffer.add_char buf ' ';
          pending_space := false;
          Buffer.add_char buf c)
    s;
  Buffer.contents buf

type query_key = {
  qk_db : int;
  qk_actor : string; (* lowercased; resolution is case-insensitive *)
  qk_optimize : bool;
  qk_select : Ast.select;
}

type plan_entry = {
  pe_plan : Plan.t;
  pe_catalog : int;
  pe_deps : (string * (int * int) option) list;
      (* FROM table -> (schema_version, stats_version) at build; None =
         unresolvable. The stats version makes re-ANALYZE drop the plan
         even if schema versioning ever stops covering it. *)
}

type result_entry = {
  re_rs : result_set;
  re_catalog : int;
  re_deps : (string * int * int) list; (* table, data_version, schema_version *)
}

let stmt_cache : (string, Ast.stmt) Lru.t ref =
  ref (Lru.create ~name:"stmt" ~max_entries:512 ())

let plan_cache : (query_key, plan_entry) Lru.t ref =
  ref (Lru.create ~name:"plan" ~max_entries:256 ())

let value_weight = function
  | D.Null | D.Bool _ | D.Int _ | D.Float _ -> 16
  | D.Str s -> 24 + String.length s
  | D.Opaque (tag, payload) -> 32 + String.length tag + Bytes.length payload

let result_weight _ e =
  List.fold_left
    (fun acc row -> Array.fold_left (fun acc v -> acc + value_weight v) (acc + 24) row)
    (List.fold_left (fun acc c -> acc + 24 + String.length c) 0 e.re_rs.columns)
    e.re_rs.rows

let default_result_entries = 128
let default_result_bytes = 4 * 1024 * 1024

let result_cache : (query_key, result_entry) Lru.t ref =
  ref
    (Lru.create ~name:"result" ~max_entries:default_result_entries
       ~max_bytes:default_result_bytes ~weight:result_weight ())

let set_plan_cache_entries n =
  plan_cache := Lru.create ~name:"plan" ~max_entries:(max 1 n) ()

let set_result_cache_limits ~entries ~bytes =
  result_cache :=
    Lru.create ~name:"result" ~max_entries:(max 1 entries) ~max_bytes:(max 0 bytes)
      ~weight:result_weight ()

let clear_statement_caches () =
  Lru.clear !stmt_cache;
  Lru.clear !plan_cache;
  Lru.clear !result_cache

(* flipping the strategy invalidates every cached plan (the cache key
   does not include the flag) and the results derived from them *)
let set_hash_join_enabled b =
  Plan.set_hash_join_enabled b;
  clear_statement_caches ()

(* same invalidation story: plans carry vec-kernel annotations and
   cached results may have been produced by either path *)
let set_vectorized_enabled b =
  Vec.set_enabled b;
  clear_statement_caches ()

let query_key db ~actor ~optimize select =
  { qk_db = Db.id db; qk_actor = String.lowercase_ascii actor; qk_optimize = optimize;
    qk_select = select }

let dep_table db ~actor name =
  Option.map snd (Db.resolve db ~actor name)

let plan_deps db ~actor (select : Ast.select) =
  List.map
    (fun (table, _alias) ->
      ( table,
        Option.map
          (fun t -> (Table.schema_version t, Table.stats_version t))
          (dep_table db ~actor table) ))
    select.Ast.from

let plan_fresh db ~actor e =
  e.pe_catalog = Db.catalog_version db
  && List.for_all
       (fun (table, v) ->
         Option.map
           (fun t -> (Table.schema_version t, Table.stats_version t))
           (dep_table db ~actor table)
         = v)
       e.pe_deps

let result_deps db ~actor (select : Ast.select) =
  (* only called after a successful execution, so every table resolves *)
  List.filter_map
    (fun (table, _alias) ->
      Option.map
        (fun t -> (table, Table.data_version t, Table.schema_version t))
        (dep_table db ~actor table))
    select.Ast.from

let result_fresh db ~actor e =
  e.re_catalog = Db.catalog_version db
  && List.for_all
       (fun (table, dv, sv) ->
         match dep_table db ~actor table with
         | Some t -> Table.data_version t = dv && Table.schema_version t = sv
         | None -> false)
       e.re_deps

let invalidate_table db ~table =
  let id = Db.id db in
  let lname = String.lowercase_ascii table in
  let touches deps name_of k =
    k.qk_db = id
    && List.exists (fun d -> String.lowercase_ascii (name_of d) = lname) deps
  in
  Lru.invalidate_where !result_cache (fun k e ->
      touches e.re_deps (fun (n, _, _) -> n) k)
  + Lru.invalidate_where !plan_cache (fun k e ->
        touches e.pe_deps fst k)

(* catalog view for the planner *)
let catalog_of db ~actor =
  {
    Plan.has_index =
        (fun ~table ~column ->
          match Db.resolve db ~actor table with
          | Some (_, t) -> Table.has_index t ~column
          | None -> false);
      has_genomic_index =
        (fun ~table ~column ->
          match Db.resolve db ~actor table with
          | Some (_, t) -> Table.has_genomic_index t ~column
          | None -> false);
      column_exists =
        (fun ~table ~column ->
          match Db.resolve db ~actor table with
          | Some (_, t) -> Schema.column_index (Table.schema t) column <> None
          | None -> false);
      equality_selectivity =
        (fun ~table ~column ->
          match Db.resolve db ~actor table with
          | Some (_, t) -> (
              match Table.column_stats t ~column with
              | Some { Table.distinct; _ } when distinct > 0 ->
                  Some (1. /. float_of_int distinct)
              | Some _ | None -> None)
          | None -> None);
      column_dtype =
        (fun ~table ~column ->
          match Db.resolve db ~actor table with
          | Some (_, t) ->
              let schema = Table.schema t in
              Option.map
                (fun i -> (Schema.column schema i).Schema.dtype)
                (Schema.column_index schema column)
          | None -> None);
  }

(* live ANALYZE statistics for the cost-based planner *)
let stats_provider_of db ~actor =
  let resolve table f d =
    match Db.resolve db ~actor table with Some (_, t) -> f t | None -> d
  in
  {
    Plan.analyzed = (fun ~table -> resolve table Table.has_stats false);
    row_count = (fun ~table -> resolve table Table.row_count 0);
    stats_of =
      (fun ~table ~column ->
        resolve table (fun t -> Table.column_stats t ~column) None);
    genomic_k_of =
      (fun ~table ~column ->
        resolve table (fun t -> Table.genomic_k t ~column) None);
    genomic_mean_len_of =
      (fun ~table ~column ->
        resolve table (fun t -> Table.genomic_mean_len t ~column) None);
    is_dna =
      (fun ~table ~column ->
        resolve table
          (fun t ->
            let schema = Table.schema t in
            match Schema.column_index schema column with
            | Some i -> (Schema.column schema i).Schema.dtype = D.TOpaque "dna"
            | None -> false)
          false);
  }

(* flipping the planner invalidates cached plans and derived results
   (the cache key does not include the mode) *)
let set_planner_mode m =
  Plan.set_mode m;
  clear_statement_caches ()

let cached_plan db ~actor ~optimize select =
  let key = query_key db ~actor ~optimize select in
  match Lru.find_validated !plan_cache key ~validate:(plan_fresh db ~actor) with
  | Some e -> e.pe_plan
  | None ->
      let stats =
        match Plan.mode () with
        | Plan.Cost_based -> Some (stats_provider_of db ~actor)
        | Plan.Heuristic -> None
      in
      let plan = Plan.make ~optimize ?stats (catalog_of db ~actor) select in
      Lru.put !plan_cache key
        { pe_plan = plan; pe_catalog = Db.catalog_version db;
          pe_deps = plan_deps db ~actor select };
      plan

(* per-operator execution profile; [elapsed_s] is inclusive of children *)
type op_profile = {
  op : string;
  actual_rows : int;
  est_rows : int option;
      (* planner's cardinality estimate, when the plan carried one *)
  elapsed_s : float;
  children : op_profile list;
}

let est_of = Option.map (fun e -> int_of_float (Float.round e))

(* wrap the scan/join/group base in Sort, Limit and Select nodes; stage
   times are measured from [t_query0] so every node is inclusive *)
let assemble_profile ~(select : Ast.select) ~join_prof ~group_prof ~t_query0
    ~t_after_sort ~t_after_limit ~n_sorted ~n_limited ~n_out =
  let base = match group_prof with Some g -> g | None -> join_prof in
  let base =
    if select.Ast.order_by = [] then base
    else
      { op =
          Printf.sprintf "Sort [%s]"
            (String.concat "; "
               (List.map
                  (fun { Ast.key; ascending } ->
                    Ast.expr_to_string key ^ if ascending then "" else " DESC")
                  select.Ast.order_by));
        actual_rows = n_sorted;
        est_rows = None;
        elapsed_s = t_after_sort -. t_query0;
        children = [ base ] }
  in
  let base =
    match select.Ast.limit with
    | None -> base
    | Some n ->
        { op = Printf.sprintf "Limit %d" n; actual_rows = n_limited;
          est_rows = None; elapsed_s = t_after_limit -. t_query0;
          children = [ base ] }
  in
  { op = "Select"; actual_rows = n_out; est_rows = None;
    elapsed_s = Obs.now_s () -. t_query0; children = [ base ] }

let run_select_profiled ?(optimize = true) db ~actor (select : Ast.select) =
  Obs.add c_queries 1;
  Obs.with_span "sqlx.select" @@ fun () ->
  let plan = cached_plan db ~actor ~optimize select in
  let t_query0 = Obs.now_s () in
  let scan_profs = ref [] in
  let timed_scan (tp : Plan.table_plan) =
    let t0 = Obs.now_s () in
    let res =
      Obs.with_span ~attrs:[ ("table", tp.Plan.table) ] "sqlx.scan" (fun () ->
          scan_table db ~actor tp)
    in
    (match res with
    | Ok (rows, parts, vec) ->
        let label =
          Printf.sprintf "Scan %s%s via %s%s%s%s" tp.Plan.table
            (if tp.Plan.alias <> tp.Plan.table then " as " ^ tp.Plan.alias else "")
            (Plan.access_to_string tp.Plan.access)
            (if parts > 1 then Printf.sprintf " [partitions=%d]" parts else "")
            (match tp.Plan.filters with
            | [] -> ""
            | fs ->
                Printf.sprintf " filter [%s]"
                  (String.concat "; " (List.map Ast.expr_to_string fs)))
            (match vec with
            | Some r -> " " ^ Vec.report_to_string r
            | None -> "")
        in
        scan_profs :=
          { op = label; actual_rows = List.length rows;
            est_rows = est_of tp.Plan.est_rows;
            elapsed_s = Obs.now_s () -. t0; children = [] }
          :: !scan_profs
    | Error _ -> ());
    Result.map (fun (rows, _, _) -> rows) res
  in
  (* scan + join: one step per table after the first, following the
     planner's per-step strategy and filter assignment *)
  let* joined, join_prof =
    match plan.Plan.tables with
    | [] -> Error "SELECT requires a FROM clause"
    | first :: rest ->
        let* first_rows = timed_scan first in
        let first_rows = List.map (fun b -> [ b ]) first_rows in
        let join_dop = ref 1 in
        let rec join_loop acc_rows steps tps =
          match steps, tps with
          | [], [] -> Ok acc_rows
          | step :: steps_rest, tp :: tps_rest ->
              let* right_rows = timed_scan tp in
              let* out, dop = exec_join_step db step ~right_rows acc_rows in
              join_dop := max !join_dop dop;
              join_loop out steps_rest tps_rest
          | _ -> Error "internal error: join plan shape mismatch"
        in
        let* out = join_loop first_rows plan.Plan.joins rest in
        (* conjuncts no step could evaluate: apply last so the same
           evaluation error a nested loop would hit still surfaces *)
        let* out =
          match plan.Plan.tail_filters with
          | [] -> Ok out
          | fs ->
              let* kept, dop = filter_ordered db fs (Array.of_list out) in
              join_dop := max !join_dop dop;
              Ok kept
        in
        let scans = List.rev !scan_profs in
        let prof =
          match scans, plan.Plan.joins, plan.Plan.tail_filters with
          | [ s ], [], [] -> s
          | _ ->
              let describe (step : Plan.join_step) =
                Printf.sprintf "%s: %s%s" step.Plan.step_alias
                  (Plan.strategy_to_string step)
                  (match step.Plan.step_filters with
                  | [] -> ""
                  | fs ->
                      Printf.sprintf " filter [%s]"
                        (String.concat "; " (List.map Ast.expr_to_string fs)))
              in
              let op =
                (match plan.Plan.joins with
                | [] -> "Join"
                | steps ->
                    Printf.sprintf "Join [%s]"
                      (String.concat "; " (List.map describe steps)))
                ^ (match plan.Plan.tail_filters with
                  | [] -> ""
                  | fs ->
                      Printf.sprintf " filter [%s]"
                        (String.concat "; " (List.map Ast.expr_to_string fs)))
                ^
                if !join_dop > 1 then Printf.sprintf " (jobs=%d)" !join_dop
                else ""
              in
              { op; actual_rows = List.length out;
                est_rows = est_of plan.Plan.est_out;
                elapsed_s = Obs.now_s () -. t_query0; children = scans }
        in
        Ok (out, prof)
  in
  (* cost-based join reordering permutes execution order; bindings are
     restored to the written FROM order here so projection output
     (column order of SELECT *, column names) is plan-invariant *)
  let joined =
    let planned = List.map (fun (tp : Plan.table_plan) -> tp.Plan.alias) plan.Plan.tables in
    if planned = plan.Plan.output_order then joined
    else
      List.map
        (fun bindings ->
          List.filter_map
            (fun a ->
              List.find_opt
                (fun b -> String.lowercase_ascii b.alias = String.lowercase_ascii a)
                bindings)
            plan.Plan.output_order)
        joined
  in
  (* projection setup *)
  let needs_grouping =
    select.Ast.group_by <> [] || select.Ast.having <> None
    || (match select.Ast.projection with
       | Ast.Star -> false
       | Ast.Exprs items -> List.exists (fun (e, _) -> Ast.contains_aggregate e) items)
  in
  let column_names bindings =
    let multi = List.length bindings > 1 in
    List.concat_map
      (fun b ->
        List.map
          (fun (c : Schema.column) ->
            if multi then b.alias ^ "." ^ c.Schema.name else c.Schema.name)
          (Schema.columns b.schema))
      bindings
  in
  let item_name (e, alias) =
    match alias with Some a -> a | None -> Ast.expr_to_string e
  in
  if not needs_grouping then begin
    let* produced =
      match select.Ast.projection with
      | Ast.Star ->
          let rows =
            List.map
              (fun bindings ->
                Array.concat (List.map (fun b -> Array.copy b.values) bindings))
              joined
          in
          let columns =
            match joined with
            | [] -> (
                (* derive names from the plan's tables, in FROM order *)
                match
                  List.filter_map
                    (fun a ->
                      List.find_opt
                        (fun (tp : Plan.table_plan) ->
                          String.lowercase_ascii tp.Plan.alias
                          = String.lowercase_ascii a)
                        plan.Plan.tables)
                    plan.Plan.output_order
                with
                | [] -> []
                | tps ->
                    let multi = List.length tps > 1 in
                    List.concat_map
                      (fun (tp : Plan.table_plan) ->
                        match Db.resolve db ~actor tp.Plan.table with
                        | Some (_, t) ->
                            List.map
                              (fun (c : Schema.column) ->
                                if multi then tp.Plan.alias ^ "." ^ c.Schema.name
                                else c.Schema.name)
                              (Schema.columns (Table.schema t))
                        | None -> [])
                      tps)
            | first :: _ -> column_names first
          in
          Ok (columns, List.map (fun r -> (r, [])) rows, joined)
      | Ast.Exprs items ->
          let columns = List.map item_name items in
          let rec per_row acc = function
            | [] -> Ok (List.rev acc)
            | bindings :: rest ->
                let env = env_of db bindings in
                let rec vals acc' = function
                  | [] -> Ok (Array.of_list (List.rev acc'))
                  | (e, _) :: more ->
                      let* v = Eval.eval env e in
                      vals (v :: acc') more
                in
                let* row = vals [] items in
                per_row ((row, []) :: acc) rest
          in
          let* rows = per_row [] joined in
          Ok (columns, rows, joined)
    in
    let columns, rows, contexts = produced in
    (* ORDER BY over source rows *)
    let* decorated =
      let rec deco acc rows ctxs =
        match rows, ctxs with
        | [], _ -> Ok (List.rev acc)
        | (row, _) :: rrest, ctx :: crest ->
            let env = env_of db ctx in
            let rec keys acc' = function
              | [] -> Ok (List.rev acc')
              | { Ast.key; ascending } :: more ->
                  let* v = Eval.eval env key in
                  keys ((v, ascending) :: acc') more
            in
            let* ks = keys [] select.Ast.order_by in
            deco ((row, ks) :: acc) rrest crest
        | (row, _) :: rrest, [] -> deco ((row, []) :: acc) rrest []
      in
      deco [] rows contexts
    in
    let sorted =
      if select.Ast.order_by = [] then decorated
      else
        List.stable_sort
          (fun (_, ka) (_, kb) ->
            let rec cmp = function
              | [], [] -> 0
              | (va, asc) :: ra, (vb, _) :: rb ->
                  let c = D.compare_value va vb in
                  if c <> 0 then if asc then c else -c else cmp (ra, rb)
              | _ -> 0
            in
            cmp (ka, kb))
          decorated
    in
    let t_after_sort = Obs.now_s () in
    let limited =
      match select.Ast.limit with
      | None -> sorted
      | Some n -> List.filteri (fun i _ -> i < n) sorted
    in
    let t_after_limit = Obs.now_s () in
    let rows = List.map fst limited in
    Obs.add c_rows_out (List.length rows);
    let prof =
      assemble_profile ~select ~join_prof ~group_prof:None ~t_query0 ~t_after_sort
        ~t_after_limit ~n_sorted:(List.length sorted)
        ~n_limited:(List.length limited) ~n_out:(List.length rows)
    in
    Ok ({ columns; rows }, prof)
  end
  else begin
    (* grouping path *)
    let* keyed =
      let rec key_rows acc = function
        | [] -> Ok (List.rev acc)
        | bindings :: rest ->
            let env = env_of db bindings in
            let rec keys acc' = function
              | [] -> Ok (List.rev acc')
              | e :: more ->
                  let* v = Eval.eval env e in
                  keys (v :: acc') more
            in
            let* ks = keys [] select.Ast.group_by in
            key_rows ((ks, bindings) :: acc) rest
      in
      key_rows [] joined
    in
    let groups : (D.value list * binding list list) list =
      List.fold_left
        (fun acc (k, row) ->
          let rec add = function
            | [] -> [ (k, [ row ]) ]
            | (k', rows) :: rest ->
                if List.length k' = List.length k
                   && List.for_all2 (fun a b -> D.compare_value a b = 0) k' k
                then (k', rows @ [ row ]) :: rest
                else (k', rows) :: add rest
          in
          add acc)
        [] keyed
    in
    let groups =
      (* an aggregate query without GROUP BY forms one group over all rows
         (and yields a single row even over the empty input only for
         COUNT-style aggregates; we follow the common behaviour and return
         one row when input is non-empty, zero-count row when empty) *)
      if select.Ast.group_by = [] then
        match joined with [] -> [ ([], []) ] | _ -> [ ([], joined) ]
      else groups
    in
    let items =
      match select.Ast.projection with
      | Ast.Exprs items -> items
      | Ast.Star -> []
    in
    let* out_rows =
      let rec per_group acc = function
        | [] -> Ok (List.rev acc)
        | (_k, rows) :: rest ->
            if rows = [] then begin
              (* empty overall group: only COUNT-like aggregates make sense *)
              let rec vals acc' = function
                | [] -> Ok (Array.of_list (List.rev acc'))
                | (e, _) :: more -> (
                    match e with
                    | Ast.Count_star -> vals (D.Int 0 :: acc') more
                    | Ast.Fn (name, _) when Ast.is_aggregate_fn name ->
                        vals
                          ((if String.lowercase_ascii name = "count" then D.Int 0
                            else D.Null)
                          :: acc')
                          more
                    | _ -> Error "non-aggregate projection over empty input")
              in
              (match vals [] items with
              | Ok row -> per_group ((row, []) :: acc) rest
              | Error _ -> per_group acc rest)
            end
            else begin
              (* HAVING *)
              let* keep =
                match select.Ast.having with
                | None -> Ok true
                | Some h -> (
                    let* v = eval_in_group db rows h in
                    match v with
                    | D.Bool b -> Ok b
                    | D.Null -> Ok false
                    | v ->
                        Error
                          (Printf.sprintf "HAVING evaluated to %s"
                             (D.value_to_display v)))
              in
              if not keep then per_group acc rest
              else begin
                let rec vals acc' = function
                  | [] -> Ok (Array.of_list (List.rev acc'))
                  | (e, _) :: more ->
                      let* v = eval_in_group db rows e in
                      vals (v :: acc') more
                in
                let* row = vals [] items in
                (* order keys evaluated in-group *)
                let rec keys acc' = function
                  | [] -> Ok (List.rev acc')
                  | { Ast.key; ascending } :: more ->
                      let* v = eval_in_group db rows key in
                      keys ((v, ascending) :: acc') more
                in
                let* ks = keys [] select.Ast.order_by in
                per_group ((row, ks) :: acc) rest
              end
            end
      in
      per_group [] groups
    in
    let t_after_group = Obs.now_s () in
    let group_prof =
      let op =
        (if select.Ast.group_by = [] then "Aggregate"
         else
           Printf.sprintf "Group by [%s]"
             (String.concat "; " (List.map Ast.expr_to_string select.Ast.group_by)))
        ^
        match select.Ast.having with
        | None -> ""
        | Some h -> Printf.sprintf " having [%s]" (Ast.expr_to_string h)
      in
      { op; actual_rows = List.length out_rows; est_rows = None;
        elapsed_s = t_after_group -. t_query0; children = [ join_prof ] }
    in
    let sorted =
      if select.Ast.order_by = [] then out_rows
      else
        List.stable_sort
          (fun (_, ka) (_, kb) ->
            let rec cmp = function
              | [], [] -> 0
              | (va, asc) :: ra, (vb, _) :: rb ->
                  let c = D.compare_value va vb in
                  if c <> 0 then if asc then c else -c else cmp (ra, rb)
              | _ -> 0
            in
            cmp (ka, kb))
          out_rows
    in
    let t_after_sort = Obs.now_s () in
    let limited =
      match select.Ast.limit with
      | None -> sorted
      | Some n -> List.filteri (fun i _ -> i < n) sorted
    in
    let t_after_limit = Obs.now_s () in
    let rows = List.map fst limited in
    Obs.add c_rows_out (List.length rows);
    let prof =
      assemble_profile ~select ~join_prof ~group_prof:(Some group_prof) ~t_query0
        ~t_after_sort ~t_after_limit ~n_sorted:(List.length sorted)
        ~n_limited:(List.length limited) ~n_out:(List.length rows)
    in
    Ok ({ columns = List.map item_name items; rows }, prof)
  end

let run_select ?optimize db ~actor select =
  let* rs, _prof = run_select_profiled ?optimize db ~actor select in
  Ok rs

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)

let render_profile prof =
  let fmt_t t =
    if t >= 1. then Printf.sprintf "%.3f s" t
    else if t >= 1e-3 then Printf.sprintf "%.3f ms" (t *. 1e3)
    else Printf.sprintf "%.1f us" (t *. 1e6)
  in
  let lines = ref [] in
  let rec go prefix child_prefix node =
    lines :=
      Printf.sprintf "%s%s  (rows=%d%s, time=%s)" prefix node.op node.actual_rows
        (match node.est_rows with
        | Some e -> Printf.sprintf ", est~%d" e
        | None -> "")
        (fmt_t node.elapsed_s)
      :: !lines;
    let n = List.length node.children in
    List.iteri
      (fun i c ->
        let last = i = n - 1 in
        go
          (child_prefix ^ if last then "└─ " else "├─ ")
          (child_prefix ^ if last then "   " else "│  ")
          c)
      node.children
  in
  go "" "" prof;
  List.rev !lines

let explain ?optimize db ~actor ~analyze select =
  if analyze then
    let* _rs, prof = run_select_profiled ?optimize db ~actor select in
    Ok { columns = [ "QUERY PLAN" ];
         rows = List.map (fun l -> [| D.Str l |]) (render_profile prof) }
  else
    let optimize = Option.value optimize ~default:true in
    let plan = cached_plan db ~actor ~optimize select in
    Ok { columns = [ "QUERY PLAN" ];
         rows =
           List.map
             (fun l -> [| D.Str l |])
             (String.split_on_char '\n'
                (Plan.to_string ~jobs:(Par.jobs ()) plan)) }

(* ------------------------------------------------------------------ *)
(* DML / DDL                                                           *)

let target_space ~actor =
  if actor = Db.loader_actor then Db.Public else Db.User actor

let run ?optimize db ~actor stmt =
  Obs.add c_statements 1;
  match stmt with
  | Ast.Select s -> (
      (* read-only: served from the result cache when every dependency's
         version counters still match (see docs/CACHING.md) *)
      let opt = Option.value optimize ~default:true in
      let key = query_key db ~actor ~optimize:opt s in
      match
        Lru.find_validated !result_cache key ~validate:(result_fresh db ~actor)
      with
      | Some e ->
          Obs.add c_queries 1;
          Obs.add c_rows_out (List.length e.re_rs.rows);
          Ok (Rows e.re_rs)
      | None ->
          let* rs = run_select ?optimize db ~actor s in
          Lru.put !result_cache key
            { re_rs = rs; re_catalog = Db.catalog_version db;
              re_deps = result_deps db ~actor s };
          Ok (Rows rs))
  | Ast.Explain { analyze; select } ->
      let* rs = explain ?optimize db ~actor ~analyze select in
      Ok (Rows rs)
  | Ast.Create_table { table; defs } ->
      let cols =
        List.map
          (fun (d : Ast.column_def) ->
            {
              Schema.name = d.Ast.col_name;
              dtype = d.Ast.col_type;
              nullable = d.Ast.col_nullable;
            })
          defs
      in
      let* schema = Schema.make cols in
      let* _ = Db.create_table db ~actor ~space:(target_space ~actor) ~name:table schema in
      Ok Executed
  | Ast.Create_index { table; column } -> (
      ignore (invalidate_table db ~table);
      match Db.resolve db ~actor table with
      | None -> Error (Printf.sprintf "unknown table %s" table)
      | Some (_, t) ->
          let* () = Table.create_index t ~column in
          Ok Executed)
  | Ast.Create_genomic_index { table; column } -> (
      ignore (invalidate_table db ~table);
      match Db.resolve db ~actor table with
      | None -> Error (Printf.sprintf "unknown table %s" table)
      | Some (_, t) ->
          let* () = Table.create_genomic_index t ~column ~registry:(Db.udts db) in
          Ok Executed)
  | Ast.Insert { table; columns; rows } -> (
      ignore (invalidate_table db ~table);
      let space = target_space ~actor in
      match Db.find_table db ~space table with
      | None -> Error (Printf.sprintf "no table %s in your writable space" table)
      | Some t ->
          let schema = Table.schema t in
          let arity = Schema.arity schema in
          let env = { Eval.lookup = (fun _ n -> Error ("unknown column " ^ n)); udts = Db.udts db } in
          let rec insert_rows n = function
            | [] -> Ok (Affected n)
            | exprs :: rest ->
                let* values =
                  let rec vals acc = function
                    | [] -> Ok (List.rev acc)
                    | e :: more ->
                        let* v = Eval.eval env e in
                        vals (v :: acc) more
                  in
                  vals [] exprs
                in
                let* row =
                  if columns = [] then
                    if List.length values <> arity then
                      Error
                        (Printf.sprintf "expected %d values, got %d" arity
                           (List.length values))
                    else Ok (Array.of_list values)
                  else begin
                    let row = Array.make arity D.Null in
                    let rec place cols vals =
                      match cols, vals with
                      | [], [] -> Ok row
                      | c :: cs, v :: vs -> (
                          match Schema.column_index schema c with
                          | Some i ->
                              row.(i) <- v;
                              place cs vs
                          | None -> Error (Printf.sprintf "no column %s" c))
                      | _ -> Error "column/value count mismatch"
                    in
                    place columns values
                  end
                in
                let* _rid = Db.insert db ~actor ~space ~table row in
                insert_rows (n + 1) rest
          in
          insert_rows 0 rows)
  | Ast.Analyze table -> (
      ignore (invalidate_table db ~table);
      match Db.resolve db ~actor table with
      | None -> Error (Printf.sprintf "unknown table %s" table)
      | Some (_, t) ->
          Table.analyze t;
          Ok Executed)
  | Ast.Drop_table table ->
      ignore (invalidate_table db ~table);
      let space = target_space ~actor in
      let* () = Db.drop_table db ~actor ~space ~name:table in
      Ok Executed
  | Ast.Delete { table; where } -> (
      ignore (invalidate_table db ~table);
      let space = target_space ~actor in
      match Db.find_table db ~space table with
      | None -> Error (Printf.sprintf "no table %s in your writable space" table)
      | Some t ->
          let schema = Table.schema t in
          let victims = ref [] in
          let err = ref None in
          Table.scan t (fun rid row ->
              if !err = None then
                match where with
                | None -> victims := rid :: !victims
                | Some w -> (
                    let b = { alias = table; schema; values = row } in
                    match Eval.eval_predicate (env_of db [ b ]) w with
                    | Ok true -> victims := rid :: !victims
                    | Ok false -> ()
                    | Error msg -> err := Some msg));
          (match !err with
          | Some msg -> Error msg
          | None ->
              let n =
                List.fold_left
                  (fun n rid -> if Table.delete t rid then n + 1 else n)
                  0 !victims
              in
              Ok (Affected n)))

let query ?optimize db ~actor input =
  let* stmt =
    let key = normalize_statement input in
    match Lru.find !stmt_cache key with
    | Some stmt -> Ok stmt
    | None ->
        let* stmt = Parser.parse input in
        Lru.put !stmt_cache key stmt;
        Ok stmt
  in
  run ?optimize db ~actor stmt

(* column widths in code points, not bytes — EXPLAIN ANALYZE output
   contains multi-byte box-drawing characters *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xc0 <> 0x80 then incr n) s;
  !n

let render db rs =
  let registry = Db.udts db in
  let display v = Genalg_storage.Udt.display_value registry v in
  let header = rs.columns in
  let body = List.map (fun row -> List.map display (Array.to_list row)) rs.rows in
  let ncols = List.length header in
  let widths = Array.make (max 1 ncols) 0 in
  List.iteri (fun i h -> widths.(i) <- display_width h) header;
  List.iter
    (List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (display_width cell)))
    body;
  let pad i s = s ^ String.make (max 0 (widths.(i) - display_width s)) ' ' in
  let line cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let sep =
    "+-"
    ^ String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') (Array.sub widths 0 ncols)))
    ^ "-+"
  in
  String.concat "\n"
    ((if ncols = 0 then [] else [ sep; line header; sep ])
    @ List.map line body
    @ (if ncols = 0 then [] else [ sep ])
    @ [ Printf.sprintf "(%d row%s)" (List.length body)
          (if List.length body = 1 then "" else "s") ])
