type binop =
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul | Div
  | Like

type expr =
  | Lit of Genalg_storage.Dtype.value
  | Col of string option * string
  | Fn of string * expr list
  | Not of expr
  | Neg of expr
  | Binop of binop * expr * expr
  | Count_star

type order_item = { key : expr; ascending : bool }

type projection =
  | Star
  | Exprs of (expr * string option) list

type select = {
  projection : projection;
  from : (string * string) list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
}

type column_def = {
  col_name : string;
  col_type : Genalg_storage.Dtype.t;
  col_nullable : bool;
}

type stmt =
  | Select of select
  | Insert of { table : string; columns : string list; rows : expr list list }
  | Create_table of { table : string; defs : column_def list }
  | Create_index of { table : string; column : string }
  | Create_genomic_index of { table : string; column : string }
  | Delete of { table : string; where : expr option }
  | Analyze of string
  | Drop_table of string
  | Explain of { analyze : bool; select : select }

let binop_to_string = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Like -> "LIKE"

let lit_to_string v =
  let module D = Genalg_storage.Dtype in
  match v with
  | D.Null -> "NULL"
  | D.Bool b -> if b then "TRUE" else "FALSE"
  | D.Int i -> string_of_int i
  | D.Float f ->
      (* must re-parse as a Float literal at full precision: bare %g
         drops the decimal point on integral values ("2.0" becomes "2",
         an Int after replay) and rounds past 6 significant digits —
         either would corrupt a replayed statement log *)
      let s = Printf.sprintf "%.15g" f in
      let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
      if
        String.contains s '.' || String.contains s 'e'
        || String.contains s 'n' (* nan *) || String.contains s 'i' (* inf *)
      then s
      else s ^ ".0"
  | D.Str s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | D.Opaque (name, payload) ->
      Printf.sprintf "<%s:%d>" name (Bytes.length payload)

let rec expr_to_string = function
  | Lit v -> lit_to_string v
  | Col (None, c) -> c
  | Col (Some t, c) -> t ^ "." ^ c
  | Fn (name, args) ->
      Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_to_string args))
  | Not e -> Printf.sprintf "NOT (%s)" (expr_to_string e)
  | Neg e -> Printf.sprintf "-(%s)" (expr_to_string e)
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
        (expr_to_string b)
  | Count_star -> "COUNT(*)"

let select_to_string s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  (match s.projection with
  | Star -> Buffer.add_string buf "*"
  | Exprs items ->
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun (e, alias) ->
                match alias with
                | None -> expr_to_string e
                | Some a -> expr_to_string e ^ " AS " ^ a)
              items)));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (tbl, alias) -> if alias = tbl then tbl else tbl ^ " " ^ alias)
          s.from));
  (match s.where with
  | Some w -> Buffer.add_string buf (" WHERE " ^ expr_to_string w)
  | None -> ());
  (match s.group_by with
  | [] -> ()
  | keys ->
      Buffer.add_string buf
        (" GROUP BY " ^ String.concat ", " (List.map expr_to_string keys)));
  (match s.having with
  | Some h -> Buffer.add_string buf (" HAVING " ^ expr_to_string h)
  | None -> ());
  (match s.order_by with
  | [] -> ()
  | items ->
      Buffer.add_string buf
        (" ORDER BY "
        ^ String.concat ", "
            (List.map
               (fun { key; ascending } ->
                 expr_to_string key ^ if ascending then " ASC" else " DESC")
               items)));
  (match s.limit with
  | Some n -> Buffer.add_string buf (" LIMIT " ^ string_of_int n)
  | None -> ());
  Buffer.contents buf

let stmt_to_string = function
  | Select s -> select_to_string s
  | Insert { table; columns; rows } ->
      Printf.sprintf "INSERT INTO %s%s VALUES %s" table
        (match columns with
        | [] -> ""
        | cols -> " (" ^ String.concat ", " cols ^ ")")
        (String.concat ", "
           (List.map
              (fun row ->
                "(" ^ String.concat ", " (List.map expr_to_string row) ^ ")")
              rows))
  | Create_table { table; defs } ->
      Printf.sprintf "CREATE TABLE %s (%s)" table
        (String.concat ", "
           (List.map
              (fun d ->
                Printf.sprintf "%s %s%s" d.col_name
                  (Genalg_storage.Dtype.to_string d.col_type)
                  (if d.col_nullable then "" else " NOT NULL"))
              defs))
  | Create_index { table; column } ->
      Printf.sprintf "CREATE INDEX ON %s (%s)" table column
  | Create_genomic_index { table; column } ->
      Printf.sprintf "CREATE GENOMIC INDEX ON %s (%s)" table column
  | Delete { table; where } ->
      Printf.sprintf "DELETE FROM %s%s" table
        (match where with
        | None -> ""
        | Some w -> " WHERE " ^ expr_to_string w)
  | Analyze table -> Printf.sprintf "ANALYZE %s" table
  | Drop_table table -> Printf.sprintf "DROP TABLE %s" table
  | Explain { analyze; select } ->
      Printf.sprintf "EXPLAIN %s%s"
        (if analyze then "ANALYZE " else "")
        (select_to_string select)

let is_aggregate_fn name =
  match String.lowercase_ascii name with
  | "count" | "sum" | "avg" | "min" | "max" -> true
  | _ -> false

let rec contains_aggregate = function
  | Lit _ | Col _ -> false
  | Count_star -> true
  | Fn (name, args) -> is_aggregate_fn name || List.exists contains_aggregate args
  | Not e | Neg e -> contains_aggregate e
  | Binop (_, a, b) -> contains_aggregate a || contains_aggregate b

let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let columns_of_expr e =
  let acc = ref [] in
  let add c = if not (List.mem c !acc) then acc := c :: !acc in
  let rec walk = function
    | Lit _ | Count_star -> ()
    | Col (t, c) -> add (t, String.lowercase_ascii c)
    | Fn (_, args) -> List.iter walk args
    | Not e | Neg e -> walk e
    | Binop (_, a, b) ->
        walk a;
        walk b
  in
  walk e;
  List.rev !acc

let equal_expr (a : expr) (b : expr) = a = b
