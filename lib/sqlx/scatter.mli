(** Scatter-gather decomposition of SELECT statements for the sharded
    warehouse ([lib/shard]).

    A coordinator holding N hash-partitioned shards answers a SELECT by
    rewriting it into a {e shard select} that every shard runs locally,
    then merging the gathered rows so the final answer is byte-identical
    to running the original statement on the unpartitioned database
    ([docs/SHARDING.md] has the full argument):

    - {b Plain} (no grouping): each shard projects the original items,
      the ORDER BY key expressions, and the hidden insertion-order column
      [__grid]; the coordinator restores the global scan order by sorting
      on [__grid], then applies the original ORDER BY (stable, same
      comparator as the executor), LIMIT, and strips the helper columns.
    - {b Grouped}: each shard computes {e partial aggregates} per group —
      [count]/[sum]/[min]/[max] merge directly, [avg] ships as a
      (sum, count) pair — plus a count-star and [min(__grid)] helper.
      The coordinator unifies groups across shards by key, combines the
      partials with the executor's exact null/typing rules, orders groups
      by first global occurrence ([min(__grid)]), and evaluates HAVING,
      the projection and ORDER BY keys over the merged values in the
      executor's per-group order, so error precedence matches too.

    Queries the rewrite cannot reproduce exactly — joins, [SELECT *] with
    grouping, nested aggregates, range predicates over indexed columns
    (whose single-node plan may emit in key order rather than scan
    order) — come back as {!Not_shardable} with a reason; the cluster
    then answers from its coordinator mirror, which {e is} the
    single-node database, so the fallback is trivially identical. *)

module D := Genalg_storage.Dtype

val grid_col : string
(** ["__grid"] — the hidden global-insertion-order column every shard
    table carries. User schemas may not use the name. *)

(** One distinct aggregate occurrence, deduplicated by argument. *)
type agg =
  | A_count_star
  | A_count of Ast.expr
  | A_sum of Ast.expr
  | A_min of Ast.expr
  | A_max of Ast.expr
  | A_avg of Ast.expr

type plain = {
  p_shard : Ast.select;     (** what each shard runs *)
  p_columns : string list;  (** output column names *)
  p_items : int;            (** projection item count (prefix of a row) *)
  p_order : bool list;      (** ascending flag per ORDER BY key *)
  p_limit : int option;
}

type grouped = {
  g_shard : Ast.select;
  g_columns : string list;
  g_nkeys : int;            (** group-key columns (prefix of a row) *)
  g_keys : Ast.expr list;   (** the GROUP BY expressions *)
  g_aggs : agg list;        (** partial-column layout after the keys;
                                [A_avg] occupies two columns *)
  g_items : (Ast.expr * string option) list;
  g_having : Ast.expr option;
  g_order : Ast.order_item list;
  g_limit : int option;
}

type t =
  | Plain of plain
  | Grouped of grouped
  | Not_shardable of string  (** reason, surfaced by EXPLAIN *)

val decompose :
  star_columns:(unit -> (string list, string) result) ->
  has_index:(string -> bool) ->
  Ast.select -> t
(** [star_columns] resolves [SELECT *] to the table's column names (an
    [Error] means the coordinator cannot see the table either — the
    caller falls back so the canonical error message surfaces).
    [has_index] reports whether a column of the FROM table carries a
    B-tree index — used by the key-order guard. *)

val merge_plain :
  plain -> D.value array list -> Exec.result_set
(** Merge gathered shard rows (each [items @ order-keys @ grid]).
    Never fails: all row-level evaluation already happened shard-side. *)

val merge_grouped :
  udts:Genalg_storage.Udt.t ->
  grouped -> D.value array list -> (Exec.result_set, string) result
(** Merge gathered per-shard group rows (each
    [keys @ partials @ min-grid]) and finish the query at the
    coordinator. Errors carry the executor's message for the same
    failure (e.g. ["HAVING evaluated to 3"]). *)
