(** Selectivity estimation from the ANALYZE statistics catalog.

    Thin, purely functional math over
    {!Genalg_storage.Table.column_stats}: every estimator returns
    [None] when the statistics cannot answer (no stats, non-numeric
    values without a histogram, zero rows), so the planner can fall
    back to its static heuristic constants. *)

type column = Genalg_storage.Table.column_stats

val null_fraction : column -> float
(** Fraction of rows where the column is NULL, in [0, 1]. *)

val eq_selectivity : column -> float option
(** Fraction of all rows matching [col = <literal>], assuming the
    non-null mass is spread uniformly over the distinct values. *)

val fraction_le : column -> Genalg_storage.Dtype.value -> float option
(** Fraction of the {e non-null} values that are [<= v]: equi-depth
    histogram buckets with within-bucket linear interpolation when the
    type is numeric, falling back to min/max interpolation. *)

val cmp_selectivity :
  column -> op:[ `Lt | `Le | `Gt | `Ge ] -> Genalg_storage.Dtype.value -> float option
(** Fraction of all rows satisfying [col <op> <literal>] (nulls never
    match). Strict bounds shave off one average equality share. *)

val range_selectivity :
  column ->
  lo:(Genalg_storage.Dtype.value * bool) option ->
  hi:(Genalg_storage.Dtype.value * bool) option ->
  float option
(** Selectivity of a (possibly half-open) range; the [bool] marks an
    inclusive bound. [None] bounds are unbounded. *)
