(* Per-column statistics math for the cost-based planner: selectivity
   fractions derived from the ANALYZE catalog (row counts, NDV, nulls,
   min/max, equi-depth histograms) collected by
   [Genalg_storage.Table.analyze]. Every function degrades to [None]
   when the statistics cannot answer, so callers fall back to the
   heuristic constants in [Plan]. *)

module D = Genalg_storage.Dtype
module T = Genalg_storage.Table

type column = T.column_stats

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let null_fraction (c : column) =
  if c.T.rows <= 0 then 0.
  else clamp 0. 1. (float_of_int c.T.nulls /. float_of_int c.T.rows)

(* Fraction of ALL rows matching [col = <literal>]: uniform share of the
   non-null rows across the distinct values. *)
let eq_selectivity (c : column) =
  if c.T.rows <= 0 then None
  else if c.T.distinct <= 0 then Some 0.
  else
    Some
      (clamp 0. 1. ((1. -. null_fraction c) /. float_of_int c.T.distinct))

(* Numeric coordinate for within-bucket interpolation. Strings and
   opaque payloads have no usable metric; their partial buckets count
   half. *)
let numeric = function
  | D.Int i -> Some (float_of_int i)
  | D.Float f -> Some f
  | D.Bool b -> Some (if b then 1. else 0.)
  | D.Null | D.Str _ | D.Opaque _ -> None

let interpolate ~lo ~hi v =
  match numeric lo, numeric hi, numeric v with
  | Some l, Some h, Some x when h > l -> clamp 0. 1. ((x -. l) /. (h -. l))
  | _ -> 0.5

(* Fraction of the NON-NULL values that are <= v, from the histogram:
   whole buckets below v plus an interpolated share of the straddling
   bucket. *)
let hist_fraction_le (c : column) (h : T.histogram) v =
  let nb = Array.length h.T.bounds in
  let total = Array.fold_left ( + ) 0 h.T.counts in
  if nb = 0 || total = 0 then None
  else begin
    let lo_of i = if i = 0 then Option.value c.T.min_value ~default:h.T.bounds.(0) else h.T.bounds.(i - 1) in
    let rec walk i acc =
      if i = nb then acc
      else
        let hi = h.T.bounds.(i) in
        if D.compare_value v hi >= 0 then walk (i + 1) (acc +. float_of_int h.T.counts.(i))
        else if D.compare_value v (lo_of i) < 0 then acc
        else
          acc
          +. (float_of_int h.T.counts.(i) *. interpolate ~lo:(lo_of i) ~hi v)
    in
    Some (clamp 0. 1. (walk 0 0. /. float_of_int total))
  end

(* Non-null fraction <= v without a histogram: linear interpolation over
   [min, max] when the column is numeric. *)
let minmax_fraction_le (c : column) v =
  match c.T.min_value, c.T.max_value with
  | Some lo, Some hi ->
      if D.compare_value v lo < 0 then Some 0.
      else if D.compare_value v hi >= 0 then Some 1.
      else (
        match numeric lo, numeric hi, numeric v with
        | Some l, Some h, Some x when h > l -> Some (clamp 0. 1. ((x -. l) /. (h -. l)))
        | _ -> None)
  | _ -> None

let fraction_le (c : column) v =
  match c.T.histogram with
  | Some h -> (
      match hist_fraction_le c h v with
      | Some _ as r -> r
      | None -> minmax_fraction_le c v)
  | None -> minmax_fraction_le c v

(* Selectivity over ALL rows (nulls never satisfy a comparison) of
   [col <op> <literal>]. Strict bounds shave off one equality share. *)
let cmp_selectivity (c : column) ~op v =
  match fraction_le c v with
  | None -> None
  | Some f_le ->
      let eq_share =
        if c.T.distinct <= 0 then 0. else 1. /. float_of_int c.T.distinct
      in
      let nn = 1. -. null_fraction c in
      let frac =
        match op with
        | `Le -> f_le
        | `Lt -> Float.max 0. (f_le -. eq_share)
        | `Gt -> Float.max 0. (1. -. f_le)
        | `Ge -> Float.min 1. (1. -. f_le +. eq_share)
      in
      Some (clamp 0. 1. (frac *. nn))

(* Estimated rows of [col between lo and hi] style conjunctions; bounds
   are optional so open ranges work. *)
let range_selectivity (c : column) ~lo ~hi =
  let lo_sel =
    match lo with
    | None -> Some 1.
    | Some (v, inclusive) -> cmp_selectivity c ~op:(if inclusive then `Ge else `Gt) v
  in
  let hi_sel =
    match hi with
    | None -> Some 1.
    | Some (v, inclusive) -> cmp_selectivity c ~op:(if inclusive then `Le else `Lt) v
  in
  match lo_sel, hi_sel with
  | Some a, Some b ->
      (* overlap of the two half-ranges within the non-null mass *)
      let nn = 1. -. null_fraction c in
      Some (clamp 0. 1. (Float.max 0. (a +. b -. nn)))
  | _ -> None
