(** Logical planning: predicate pushdown, index selection and
    selectivity-ordered predicate evaluation.

    Section 6.5 of the paper calls for "optimisation rules for genomic
    data, information about the selectivity of genomic predicates, and
    cost estimation of access plans containing genomic operators". The
    model here: every WHERE conjunct gets a per-row evaluation cost and a
    selectivity estimate; single-table conjuncts are pushed to their
    table, equality/range conjuncts over indexed columns become index
    accesses, and residual conjuncts run cheapest-and-most-selective
    first (ascending [cost / (1 - selectivity)]). *)

module D := Genalg_storage.Dtype

type access =
  | Full_scan
  | Index_eq of { column : string; key : D.value }
  | Index_range of {
      column : string;
      lo : D.value option;
      hi : D.value option;
      lo_inclusive : bool;
      hi_inclusive : bool;
    }
  | Genomic_contains of { column : string; pattern : string }
      (** serve a [contains(col, 'PATTERN')] conjunct from the column's
          k-mer substring index (paper section 6.5); the executor falls
          back to a scan with the predicate re-applied when the index
          cannot serve the pattern *)
  | Genomic_seed of {
      column : string;
      pattern : string;  (** uppercased, pure ACGT *)
      min_len : int;     (** safe bound from {!Cost.resembles_min_len} *)
      threshold : float;
    }
      (** seed-and-verify path for [resembles(col, dna('P')) >= t]: scan
          only the k-mer seed candidates (plus rows shorter than
          [min_len], which the bound cannot exclude). The resembles
          conjunct is {e not} consumed — it stays in [filters], so a
          fallback scan or a candidate superset never changes results *)

type table_plan = {
  table : string;
  alias : string;
  access : access;
  filters : Ast.expr list;  (** residual predicates, in evaluation order *)
  est_rows : float option;
      (** cost-based estimate of rows this scan emits after filters;
          [None] for heuristic plans *)
  vec_kernels : string list;
      (** labels of the packed kernels the vectorized scan expects to
          serve [filters] with (e.g. ["packed-gc(seq)"]); display-only
          — the executor re-classifies against the live schema and
          function registry. Empty when vectorization is disabled *)
}

type join_strategy =
  | Nested_loop
  | Hash_join of {
      outer_alias : string;  (** already-bound side, lowercased alias *)
      outer_col : string;    (** probe key column on the bound side *)
      inner_col : string;    (** build key column on the incoming table *)
    }
      (** build a hash table over the incoming table keyed on [inner_col]
          (NULL keys excluded, SQL three-valued [=] semantics), probe it
          with each accumulated row's [outer_alias.outer_col] — chosen
          whenever a join step's conjuncts contain a simple column
          equality across the join frontier *)

type join_step = {
  step_alias : string;           (** lowercased alias of the joined table *)
  strategy : join_strategy;
  step_filters : Ast.expr list;
      (** conjuncts first evaluable at this step (the hash-key equality,
          when consumed by [Hash_join], is removed), evaluation order *)
  step_est : float option;
      (** estimated cumulative cardinality after this step; [None] for
          heuristic plans *)
}

type t = {
  tables : table_plan list;      (** joined left to right, execution order *)
  join_filters : Ast.expr list;  (** all cross-table conjuncts, evaluation order *)
  joins : join_step list;        (** one step per table after the first *)
  tail_filters : Ast.expr list;
      (** conjuncts no step can evaluate (unknown aliases/columns); the
          executor applies them last so the error still surfaces *)
  est_out : float option;        (** estimated output cardinality *)
  output_order : string list;
      (** aliases in the original FROM order. When cost-based join
          reordering permutes [tables], the executor restores bindings to
          this order before projection so [SELECT *] output is stable *)
}

type mode = Heuristic | Cost_based

val set_mode : mode -> unit
(** Select the planner (default [Cost_based]). Use
    {!Exec.set_planner_mode}, which also drops cached plans. *)

val mode : unit -> mode

type stats_provider = {
  analyzed : table:string -> bool;
      (** the table has ANALYZE statistics; without them the planner
          keeps the heuristic rules, so plans only change where measured
          statistics exist *)
  row_count : table:string -> int;
  stats_of : table:string -> column:string -> Genalg_storage.Table.column_stats option;
  genomic_k_of : table:string -> column:string -> int option;
  genomic_mean_len_of : table:string -> column:string -> float option;
  is_dna : table:string -> column:string -> bool;
      (** the column's declared type is the DNA UDT — the resembles
          seed bound is only valid for [Scoring.dna_default] *)
}
(** Live statistics the cost-based planner consults; supplied by the
    executor from the storage layer. *)

val set_hash_join_enabled : bool -> unit
(** Force the nested-loop baseline when [false] (default [true]). Use
    {!Exec.set_hash_join_enabled}, which also drops cached plans. *)

val hash_join_enabled : unit -> bool

type catalog = {
  has_index : table:string -> column:string -> bool;
  has_genomic_index : table:string -> column:string -> bool;
  column_exists : table:string -> column:string -> bool;
  equality_selectivity : table:string -> column:string -> float option;
      (** [1 / distinct] from ANALYZE statistics; [None] when the table
          has not been analyzed *)
  column_dtype : table:string -> column:string -> D.t option;
      (** declared dtype of a column, used to classify pushed-down
          filters against the packed scan kernels ({!Vec}) both for
          kernel-aware chain costing and the EXPLAIN [vec [...]]
          annotation *)
}

val predicate_cost : Ast.expr -> float
(** Estimated per-row evaluation cost (abstract units). Genomic UDF calls
    dominate: alignment-backed operators ≈ 5000, substring search ≈ 200,
    cheap genomic accessors ≈ 50, scalar built-ins ≈ 5, comparisons 1. *)

val predicate_selectivity : Ast.expr -> float
(** Estimated fraction of rows surviving the predicate, in (0, 1].
    Notably: [contains(seq, 'PATTERN')] uses the 4^-|pattern| motif
    probability model, and threshold comparisons over [resembles] are
    highly selective. *)

val rank : Ast.expr -> float
(** [cost / (1 - selectivity)] — ascending rank gives the classic optimal
    ordering of independent predicates. *)

val rank_with : catalog -> table:string -> alias:string -> Ast.expr -> float
(** Like {!rank} but equality predicates over analyzed columns use the
    measured [1 / distinct] selectivity instead of the static default
    (section 6.5: selectivity information for access-plan costing). *)

val make : ?optimize:bool -> ?stats:stats_provider -> catalog -> Ast.select -> t
(** Build a plan. With [optimize:false] (default true), no pushdown
    reordering or index selection happens beyond assigning conjuncts to
    the last table that makes them evaluable — the naive baseline for the
    optimizer experiment.

    With [?stats], ANALYZEd tables get cost-based access selection:
    every candidate path (full scan, each usable B-tree conjunct, the
    k-mer contains path, the resembles seed path) is costed with {!Cost}
    over {!Stats} selectivities and the cheapest wins; when every FROM
    table is analyzed, joins are greedily reordered by estimated
    cardinality and the plan carries row estimates. Without [?stats]
    (or for unanalyzed tables) behaviour is identical to the heuristic
    planner. *)

val to_string : ?jobs:int -> t -> string
(** Human-readable plan: one line per table scan (full scans carry the
    planned partition count when [jobs > 1]), one line per join step with
    its strategy ("hash join on l.k = r.k" vs "nested-loop join"), then
    any tail join filters. *)

val strategy_to_string : join_step -> string
(** ["hash join on l.k = r.k"] or ["nested-loop join"] — used for EXPLAIN
    output and join operator labels. *)

val access_to_string : access -> string
(** One-line description of an access path, e.g. ["full scan"] or
    ["index id = 42"] — used for EXPLAIN output and scan labels. *)
