module D = Genalg_storage.Dtype

exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let peek st = match st.tokens with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let expect st tok what =
  if peek st = tok then advance st
  else fail "expected %s, found %s" what (Lexer.token_to_string (peek st))

let is_kw st kw =
  match peek st with
  | Lexer.Ident s -> String.lowercase_ascii s = kw
  | _ -> false

let eat_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw =
  if not (eat_kw st kw) then
    fail "expected %s, found %s" (String.uppercase_ascii kw)
      (Lexer.token_to_string (peek st))

let keywords =
  [ "select"; "from"; "where"; "group"; "by"; "having"; "order"; "limit";
    "insert"; "into"; "values"; "create"; "table"; "index"; "genomic"; "on"; "delete";
    "analyze"; "drop"; "explain"; "and"; "or"; "not"; "like"; "as"; "asc"; "desc";
    "true"; "false"; "null" ]

let ident st what =
  match peek st with
  | Lexer.Ident s when not (List.mem (String.lowercase_ascii s) keywords) ->
      advance st;
      s
  | t -> fail "expected %s, found %s" what (Lexer.token_to_string t)

(* ---- expressions -------------------------------------------------- *)

let rec parse_or st =
  let left = parse_and st in
  if eat_kw st "or" then Ast.Binop (Ast.Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if eat_kw st "and" then Ast.Binop (Ast.And, left, parse_and st) else left

and parse_not st =
  if eat_kw st "not" then Ast.Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let left = parse_add st in
  let op =
    match peek st with
    | Lexer.Op "=" -> Some Ast.Eq
    | Lexer.Op "<>" -> Some Ast.Ne
    | Lexer.Op "<" -> Some Ast.Lt
    | Lexer.Op "<=" -> Some Ast.Le
    | Lexer.Op ">" -> Some Ast.Gt
    | Lexer.Op ">=" -> Some Ast.Ge
    | Lexer.Ident s when String.lowercase_ascii s = "like" -> Some Ast.Like
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
      advance st;
      Ast.Binop (op, left, parse_add st)

and parse_add st =
  let rec loop left =
    match peek st with
    | Lexer.Op "+" ->
        advance st;
        loop (Ast.Binop (Ast.Add, left, parse_mul st))
    | Lexer.Op "-" ->
        advance st;
        loop (Ast.Binop (Ast.Sub, left, parse_mul st))
    | _ -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | Lexer.Star ->
        advance st;
        loop (Ast.Binop (Ast.Mul, left, parse_unary st))
    | Lexer.Op "/" ->
        advance st;
        loop (Ast.Binop (Ast.Div, left, parse_unary st))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.Op "-" ->
      advance st;
      Ast.Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Int_lit i ->
      advance st;
      Ast.Lit (D.Int i)
  | Lexer.Float_lit f ->
      advance st;
      Ast.Lit (D.Float f)
  | Lexer.Str_lit s ->
      advance st;
      Ast.Lit (D.Str s)
  | Lexer.Lparen ->
      advance st;
      let e = parse_or st in
      expect st Lexer.Rparen ")";
      e
  | Lexer.Ident s -> (
      let lower = String.lowercase_ascii s in
      match lower with
      | "true" ->
          advance st;
          Ast.Lit (D.Bool true)
      | "false" ->
          advance st;
          Ast.Lit (D.Bool false)
      | "null" ->
          advance st;
          Ast.Lit D.Null
      | "not" | "and" | "or" | "like" ->
          fail "unexpected keyword %s" s
      | _ ->
          advance st;
          (match peek st with
          | Lexer.Lparen ->
              advance st;
              if lower = "count" && peek st = Lexer.Star then begin
                advance st;
                expect st Lexer.Rparen ")";
                Ast.Count_star
              end
              else begin
                let args =
                  if peek st = Lexer.Rparen then []
                  else begin
                    let rec loop acc =
                      let e = parse_or st in
                      if peek st = Lexer.Comma then begin
                        advance st;
                        loop (e :: acc)
                      end
                      else List.rev (e :: acc)
                    in
                    loop []
                  end
                in
                expect st Lexer.Rparen ")";
                Ast.Fn (s, args)
              end
          | Lexer.Dot ->
              advance st;
              let col = ident st "column name" in
              Ast.Col (Some s, col)
          | _ -> Ast.Col (None, s)))
  | t -> fail "unexpected token %s in expression" (Lexer.token_to_string t)

(* ---- statements ---------------------------------------------------- *)

let parse_select st =
  expect_kw st "select";
  let projection =
    if peek st = Lexer.Star then begin
      advance st;
      Ast.Star
    end
    else begin
      let rec items acc =
        let e = parse_or st in
        let alias = if eat_kw st "as" then Some (ident st "alias") else None in
        let acc = (e, alias) :: acc in
        if peek st = Lexer.Comma then begin
          advance st;
          items acc
        end
        else List.rev acc
      in
      Ast.Exprs (items [])
    end
  in
  expect_kw st "from";
  let rec rels acc =
    let table = ident st "table name" in
    let alias =
      match peek st with
      | Lexer.Ident s when not (List.mem (String.lowercase_ascii s) keywords) ->
          advance st;
          s
      | _ -> table
    in
    let acc = (table, alias) :: acc in
    if peek st = Lexer.Comma then begin
      advance st;
      rels acc
    end
    else List.rev acc
  in
  let from = rels [] in
  let where = if eat_kw st "where" then Some (parse_or st) else None in
  let group_by =
    if is_kw st "group" then begin
      advance st;
      expect_kw st "by";
      let rec keys acc =
        let e = parse_or st in
        if peek st = Lexer.Comma then begin
          advance st;
          keys (e :: acc)
        end
        else List.rev (e :: acc)
      in
      keys []
    end
    else []
  in
  let having = if eat_kw st "having" then Some (parse_or st) else None in
  let order_by =
    if is_kw st "order" then begin
      advance st;
      expect_kw st "by";
      let rec items acc =
        let key = parse_or st in
        let ascending =
          if eat_kw st "desc" then false
          else begin
            ignore (eat_kw st "asc");
            true
          end
        in
        let acc = { Ast.key; ascending } :: acc in
        if peek st = Lexer.Comma then begin
          advance st;
          items acc
        end
        else List.rev acc
      in
      items []
    end
    else []
  in
  let limit =
    if eat_kw st "limit" then begin
      match peek st with
      | Lexer.Int_lit n ->
          advance st;
          Some n
      | t -> fail "expected integer after LIMIT, found %s" (Lexer.token_to_string t)
    end
    else None
  in
  Ast.Select { projection; from; where; group_by; having; order_by; limit }

let parse_insert st =
  expect_kw st "insert";
  expect_kw st "into";
  let table = ident st "table name" in
  let columns =
    if peek st = Lexer.Lparen then begin
      advance st;
      let rec cols acc =
        let c = ident st "column name" in
        if peek st = Lexer.Comma then begin
          advance st;
          cols (c :: acc)
        end
        else List.rev (c :: acc)
      in
      let cs = cols [] in
      expect st Lexer.Rparen ")";
      cs
    end
    else []
  in
  expect_kw st "values";
  let rec rows acc =
    expect st Lexer.Lparen "(";
    let rec vals vacc =
      let e = parse_or st in
      if peek st = Lexer.Comma then begin
        advance st;
        vals (e :: vacc)
      end
      else List.rev (e :: vacc)
    in
    let row = vals [] in
    expect st Lexer.Rparen ")";
    let acc = row :: acc in
    if peek st = Lexer.Comma then begin
      advance st;
      rows acc
    end
    else List.rev acc
  in
  Ast.Insert { table; columns; rows = rows [] }

let parse_create st =
  expect_kw st "create";
  let genomic = eat_kw st "genomic" in
  if genomic then begin
    expect_kw st "index";
    expect_kw st "on";
    let table = ident st "table name" in
    expect st Lexer.Lparen "(";
    let column = ident st "column name" in
    expect st Lexer.Rparen ")";
    Ast.Create_genomic_index { table; column }
  end
  else if eat_kw st "table" then begin
    let table = ident st "table name" in
    expect st Lexer.Lparen "(";
    let rec defs acc =
      let col_name = ident st "column name" in
      let type_name =
        match peek st with
        | Lexer.Ident s ->
            advance st;
            s
        | t -> fail "expected a type name, found %s" (Lexer.token_to_string t)
      in
      let col_type =
        match D.of_string type_name with
        | Some ty -> ty
        | None -> fail "unknown type %s" type_name
      in
      let col_nullable =
        if is_kw st "not" then begin
          advance st;
          expect_kw st "null";
          false
        end
        else true
      in
      let acc = { Ast.col_name; col_type; col_nullable } :: acc in
      if peek st = Lexer.Comma then begin
        advance st;
        defs acc
      end
      else List.rev acc
    in
    let defs = defs [] in
    expect st Lexer.Rparen ")";
    Ast.Create_table { table; defs }
  end
  else begin
    expect_kw st "index";
    expect_kw st "on";
    let table = ident st "table name" in
    expect st Lexer.Lparen "(";
    let column = ident st "column name" in
    expect st Lexer.Rparen ")";
    Ast.Create_index { table; column }
  end

let parse_delete st =
  expect_kw st "delete";
  expect_kw st "from";
  let table = ident st "table name" in
  let where = if eat_kw st "where" then Some (parse_or st) else None in
  Ast.Delete { table; where }

let parse_stmt st =
  match peek st with
  | Lexer.Ident s -> (
      match String.lowercase_ascii s with
      | "select" -> parse_select st
      | "insert" -> parse_insert st
      | "create" -> parse_create st
      | "delete" -> parse_delete st
      | "analyze" ->
          advance st;
          Ast.Analyze (ident st "table name")
      | "drop" ->
          advance st;
          expect_kw st "table";
          Ast.Drop_table (ident st "table name")
      | "explain" -> (
          advance st;
          let analyze = eat_kw st "analyze" in
          match parse_select st with
          | Ast.Select select -> Ast.Explain { analyze; select }
          | _ -> fail "EXPLAIN expects a SELECT statement")
      | other -> fail "unknown statement %s" other)
  | t -> fail "expected a statement, found %s" (Lexer.token_to_string t)

let finish st =
  ignore (if peek st = Lexer.Semicolon then (advance st; true) else true);
  match peek st with
  | Lexer.Eof -> ()
  | t -> fail "trailing input: %s" (Lexer.token_to_string t)

let parse input =
  match Lexer.tokenize input with
  | Error msg -> Error msg
  | Ok tokens -> (
      let st = { tokens } in
      match
        let s = parse_stmt st in
        finish st;
        s
      with
      | s -> Ok s
      | exception Parse_error msg -> Error msg)

let parse_expr input =
  match Lexer.tokenize input with
  | Error msg -> Error msg
  | Ok tokens -> (
      let st = { tokens } in
      match
        let e = parse_or st in
        finish st;
        e
      with
      | e -> Ok e
      | exception Parse_error msg -> Error msg)
