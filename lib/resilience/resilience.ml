module Obs = Genalg_obs.Obs
module Fault = Genalg_fault.Fault

let c_retries = Obs.counter "resilience.retries"
let c_recovered = Obs.counter "resilience.recovered"
let c_exhausted = Obs.counter "resilience.exhausted"
let c_opened = Obs.counter "resilience.breaker.opened"
let c_skipped = Obs.counter "resilience.breaker.skipped"
let c_half_open = Obs.counter "resilience.breaker.half_open"
let c_reclosed = Obs.counter "resilience.breaker.reclosed"

type backoff = {
  initial_s : float;
  multiplier : float;
  max_delay_s : float;
  jitter : float;
}

let default_backoff =
  { initial_s = 0.05; multiplier = 2.0; max_delay_s = 1.0; jitter = 0.1 }

type policy = {
  max_attempts : int;
  backoff : backoff;
  budget_s : float;
  timeout_s : float option;
}

let default_policy =
  { max_attempts = 4; backoff = default_backoff; budget_s = 2.0;
    timeout_s = Some 0.25 }

(* the same splitmix64 finalizer the fault registry uses; jitter must be
   a pure function of (seed, site, attempt) *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let unit_float ~seed ~site ~attempt =
  let salt = Hashtbl.hash site in
  let h =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.of_int ((salt * 2654435761) + attempt)))
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let delay_for policy ~seed ~site ~attempt =
  let b = policy.backoff in
  let base =
    Float.min b.max_delay_s
      (b.initial_s *. (b.multiplier ** float_of_int (attempt - 1)))
  in
  if b.jitter <= 0. then base
  else begin
    (* jitter in [-j, +j] around the base delay, never negative *)
    let u = unit_float ~seed ~site ~attempt in
    Float.max 0. (base *. (1. +. (b.jitter *. ((2. *. u) -. 1.))))
  end

let delays policy ~seed ~site =
  let rec go acc spent attempt =
    if attempt >= policy.max_attempts then List.rev acc
    else
      let d = delay_for policy ~seed ~site ~attempt in
      if spent +. d > policy.budget_s then List.rev acc
      else go (d :: acc) (spent +. d) (attempt + 1)
  in
  go [] 0. 1

type 'a outcome = {
  result : ('a, string) result;
  attempts : int;
  backoff_s : float;
}

let run ?(policy = default_policy) ?(seed = 1) ~site f =
  let max_attempts = max 1 policy.max_attempts in
  let attempt_once () =
    match f () with
    | Ok _ as ok -> ok
    | Error _ as e -> e
    | exception (Fault.Crash_point _ as e) ->
        (* simulated process death must never be absorbed by a retry *)
        raise e
    | exception Fault.Injected (_, msg) -> Error msg
    | exception exn -> Error (Printexc.to_string exn)
  in
  let rec go attempt spent =
    match attempt_once () with
    | Ok _ as result ->
        if attempt > 1 then Obs.add c_recovered 1;
        { result; attempts = attempt; backoff_s = spent }
    | Error _ as result ->
        if attempt >= max_attempts then begin
          Obs.add c_exhausted 1;
          { result; attempts = attempt; backoff_s = spent }
        end
        else begin
          let d = delay_for policy ~seed ~site ~attempt in
          if spent +. d > policy.budget_s then begin
            (* retrying again would blow the backoff budget: stop here *)
            Obs.add c_exhausted 1;
            { result; attempts = attempt; backoff_s = spent }
          end
          else begin
            Obs.add c_retries 1;
            go (attempt + 1) (spent +. d)
          end
        end
  in
  go 1 0.

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)

module Breaker = struct
  type state = Closed | Open | Half_open

  type t = {
    failure_threshold : int;
    cooldown_calls : int;
    mutable state : state;
    mutable consecutive_failures : int;
    mutable rejected : int;       (* refusals since the breaker opened *)
    mutable probe_in_flight : bool;
  }

  let create ?(failure_threshold = 3) ?(cooldown_calls = 2) () =
    { failure_threshold = max 1 failure_threshold;
      cooldown_calls = max 1 cooldown_calls;
      state = Closed; consecutive_failures = 0; rejected = 0;
      probe_in_flight = false }

  let state t = t.state

  let allow t =
    match t.state with
    | Closed -> true
    | Open ->
        t.rejected <- t.rejected + 1;
        if t.rejected >= t.cooldown_calls then begin
          (* cooldown served: this very call becomes the half-open probe *)
          t.state <- Half_open;
          t.probe_in_flight <- true;
          Obs.add c_half_open 1;
          true
        end
        else begin
          Obs.add c_skipped 1;
          false
        end
    | Half_open ->
        if t.probe_in_flight then begin
          Obs.add c_skipped 1;
          false
        end
        else begin
          t.probe_in_flight <- true;
          Obs.add c_half_open 1;
          true
        end

  let success t =
    match t.state with
    | Half_open ->
        t.state <- Closed;
        t.consecutive_failures <- 0;
        t.rejected <- 0;
        t.probe_in_flight <- false;
        Obs.add c_reclosed 1
    | Closed -> t.consecutive_failures <- 0
    | Open -> ()

  let failure t =
    match t.state with
    | Half_open ->
        (* failed probe: back to a full cooldown *)
        t.state <- Open;
        t.rejected <- 0;
        t.probe_in_flight <- false;
        Obs.add c_opened 1
    | Closed ->
        t.consecutive_failures <- t.consecutive_failures + 1;
        if t.consecutive_failures >= t.failure_threshold then begin
          t.state <- Open;
          t.rejected <- 0;
          Obs.add c_opened 1
        end
    | Open -> ()

  let state_to_string = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half-open"
end
