(** Generic resilience policies: bounded retries with deterministic
    exponential backoff, and a per-dependency circuit breaker.

    Used by the mediator (per-source queries) and the ETL pipeline
    (per-monitor polls) to degrade gracefully when a source fails,
    instead of aborting a whole fan-out. Delays are {e simulated} — no
    wall-clock sleeping — so retried work stays deterministic and fast;
    callers that model network time (the mediator) add {!outcome.backoff_s}
    to their simulated clock.

    All jitter is a pure function of [(seed, site, attempt)], so a fixed
    seed replays the same schedule, and running calls on several domains
    ([lib/par]) cannot change any call's own accounting.

    Instruments (see docs/OBSERVABILITY.md): [resilience.retries],
    [resilience.recovered], [resilience.exhausted],
    [resilience.breaker.opened], [resilience.breaker.skipped],
    [resilience.breaker.half_open], [resilience.breaker.reclosed]. *)

(** {1 Backoff and retry} *)

type backoff = {
  initial_s : float;    (** delay before the first retry (default 0.05) *)
  multiplier : float;   (** exponential growth factor (default 2.0) *)
  max_delay_s : float;  (** per-delay cap, pre-jitter (default 1.0) *)
  jitter : float;       (** +/- fraction of the delay, in [0,1] (default 0.1) *)
}

val default_backoff : backoff

type policy = {
  max_attempts : int;        (** total attempts including the first (>= 1) *)
  backoff : backoff;
  budget_s : float;          (** total backoff budget per call; retrying
                                 stops before it would be exceeded *)
  timeout_s : float option;  (** per-attempt deadline against simulated
                                 latency (callers enforce it; see
                                 {!Genalg_mediator}) *)
}

val default_policy : policy
(** 4 attempts, default backoff, 2 s budget, 0.25 s attempt timeout. *)

val delay_for : policy -> seed:int -> site:string -> attempt:int -> float
(** Deterministic jittered delay before retry [attempt] (1-based).
    Pure: same arguments, same delay. *)

val delays : policy -> seed:int -> site:string -> float list
(** The full backoff schedule for a call at this site: at most
    [max_attempts - 1] delays, truncated so the running sum never
    exceeds [budget_s]. *)

type 'a outcome = {
  result : ('a, string) result;
  attempts : int;     (** attempts actually made (>= 1) *)
  backoff_s : float;  (** total simulated delay spent between attempts *)
}

val run :
  ?policy:policy ->
  ?seed:int ->
  site:string ->
  (unit -> ('a, string) result) ->
  'a outcome
(** [run ~site f] calls [f] up to [max_attempts] times, charging the
    deterministic backoff schedule between failures and stopping early
    when the budget is spent. [Error _] results and raised exceptions
    both count as failures — except {!Genalg_fault.Fault.Crash_point},
    which models process death and is always re-raised immediately.

    Counters: each retry bumps [resilience.retries]; a success after at
    least one failure bumps [resilience.recovered]; returning [Error]
    after the last attempt bumps [resilience.exhausted]. *)

(** {1 Circuit breaker} *)

module Breaker : sig
  (** A per-dependency circuit breaker with deterministic, call-counted
      cooldown (no wall clock, so experiment runs replay exactly):

      - {b Closed}: calls flow; [failure_threshold] {e consecutive}
        failures trip it to Open ([resilience.breaker.opened]).
      - {b Open}: {!allow} refuses ([resilience.breaker.skipped]); after
        [cooldown_calls] refusals the breaker moves to Half-open.
      - {b Half-open}: exactly one probe call is allowed
        ([resilience.breaker.half_open]); success closes the breaker
        ([resilience.breaker.reclosed]), failure re-opens it and the
        cooldown starts over. *)

  type state = Closed | Open | Half_open

  type t

  val create : ?failure_threshold:int -> ?cooldown_calls:int -> unit -> t
  (** Defaults: [failure_threshold = 3], [cooldown_calls = 2]. Both are
      clamped to at least 1. *)

  val state : t -> state

  val allow : t -> bool
  (** Ask to place a call. Counts a refusal while Open (advancing the
      cooldown) and claims the single Half-open probe slot. Callers must
      follow a [true] with exactly one {!success} or {!failure}. *)

  val success : t -> unit
  val failure : t -> unit

  val state_to_string : state -> string
end
