(** Hash partitioning of warehouse rows across shards.

    A row lands on shard [shard_of ~shards v] where [v] is its value in
    the table's {e partition column}. The hash is a pure FNV-1a over a
    {e numerically normalized} encoding of the value, so:

    - it is total — every value, including [Null] and opaque UDT
      payloads, maps to a shard;
    - it is stable — independent of process, domain count
      ([Genalg_par.Par.set_jobs]) and insertion history;
    - values that compare equal hash equally — [Int 7] and [Float 7.]
      land on the same shard, so literal pruning agrees with
      {!Genalg_storage.Dtype.compare_value} semantics. *)

val shard_of : shards:int -> Genalg_storage.Dtype.value -> int
(** [0 <= shard_of ~shards v < max 1 shards]. *)

val partition_column : Genalg_sqlx.Ast.column_def list -> string
(** Pick the partition column for a new table: the first column named
    [organism] or [accession] (the paper's natural distribution keys),
    else the first column whose name is [id] or ends in [_id], else the
    table's first column. Case-insensitive; returns the declared
    spelling. *)
