module Fault = Genalg_fault.Fault
module Checksum = Genalg_storage.Checksum
module Fsutil = Genalg_storage.Fsutil

let magic = "GENALGMF1"

let crash_points = [ "shard.manifest.tmp"; "shard.manifest.rename" ]
let () = List.iter Fault.register_crash_point crash_points

type topology =
  | Local of { shards : int; replicas : bool }
  | Remote of { actor : string; sockets : string list; replicas : string list }

type shard_entry = {
  epoch : int;
  primary_applied : int;
  replica_applied : int option;
}

type t = {
  topology : topology;
  pcols : (string * string) list;
  next_seq : int;
  log_base : int;
  shards : shard_entry list;
}

let path dir = Filename.concat dir "MANIFEST"

(* ---- encoding: the storage layer's sized-string idiom, CRC-framed ---- *)

let add_int buf n = Buffer.add_int64_le buf (Int64.of_int n)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let encode_body t =
  let b = Buffer.create 256 in
  add_int b 1 (* body version *);
  (match t.topology with
  | Local { shards; replicas } ->
      Buffer.add_char b 'L';
      add_int b shards;
      Buffer.add_char b (if replicas then '\001' else '\000')
  | Remote { actor; sockets; replicas } ->
      Buffer.add_char b 'R';
      add_str b actor;
      add_int b (List.length sockets);
      List.iter (add_str b) sockets;
      add_int b (List.length replicas);
      List.iter (add_str b) replicas);
  add_int b (List.length t.pcols);
  List.iter
    (fun (table, col) ->
      add_str b table;
      add_str b col)
    t.pcols;
  add_int b t.next_seq;
  add_int b t.log_base;
  add_int b (List.length t.shards);
  List.iter
    (fun e ->
      add_int b e.epoch;
      add_int b e.primary_applied;
      (* 0 = no replica, n+1 = Some n (applied LSNs are >= 0) *)
      add_int b
        (match e.replica_applied with None -> 0 | Some v -> v + 1))
    t.shards;
  Buffer.contents b

let encode t =
  let body = encode_body t in
  let b = Buffer.create (String.length body + 24) in
  Buffer.add_string b magic;
  Buffer.add_int64_le b (Int64.of_int32 (Checksum.string body));
  Buffer.add_string b body;
  Buffer.contents b

exception Corrupt of string

let decode contents =
  let m = String.length magic in
  if String.length contents < m + 8 || String.sub contents 0 m <> magic then
    Error "not a genalg coordinator manifest (bad magic)"
  else begin
    let data = Bytes.of_string contents in
    let crc = Int64.to_int32 (Bytes.get_int64_le data m) in
    let body_pos = m + 8 in
    let body_len = Bytes.length data - body_pos in
    if Checksum.sub data ~pos:body_pos ~len:body_len <> crc then
      Error "manifest checksum mismatch"
    else
      let pos = ref body_pos in
      let need n =
        if !pos + n > Bytes.length data then raise (Corrupt "truncated")
      in
      let get_int () =
        need 8;
        let v = Int64.to_int (Bytes.get_int64_le data !pos) in
        pos := !pos + 8;
        if v < 0 then raise (Corrupt "negative field");
        v
      in
      let get_str () =
        let n = get_int () in
        need n;
        let s = Bytes.sub_string data !pos n in
        pos := !pos + n;
        s
      in
      let get_char () =
        need 1;
        let c = Bytes.get data !pos in
        incr pos;
        c
      in
      match
        let version = get_int () in
        if version <> 1 then
          raise (Corrupt (Printf.sprintf "unknown body version %d" version));
        let topology =
          match get_char () with
          | 'L' ->
              let shards = get_int () in
              let replicas = get_char () <> '\000' in
              Local { shards; replicas }
          | 'R' ->
              let actor = get_str () in
              let sockets = List.init (get_int ()) (fun _ -> get_str ()) in
              let replicas = List.init (get_int ()) (fun _ -> get_str ()) in
              Remote { actor; sockets; replicas }
          | c -> raise (Corrupt (Printf.sprintf "unknown topology tag %C" c))
        in
        let pcols =
          List.init (get_int ()) (fun _ ->
              let table = get_str () in
              let col = get_str () in
              (table, col))
        in
        let next_seq = get_int () in
        let log_base = get_int () in
        let shards =
          List.init (get_int ()) (fun _ ->
              let epoch = get_int () in
              let primary_applied = get_int () in
              let replica_applied =
                match get_int () with 0 -> None | n -> Some (n - 1)
              in
              { epoch; primary_applied; replica_applied })
        in
        { topology; pcols; next_seq; log_base; shards }
      with
      | t -> Ok t
      | exception Corrupt msg -> Error ("corrupt manifest: " ^ msg)
  end

(* ---- crash-safe persistence: complete tmp image, fsync, atomic
   rename, directory fsync. Unlike [Database.save] there is no intent
   journal: the manifest is advisory over the logs (recovery re-derives
   sequence numbers and applied LSNs from them), so rolling back to the
   previous manifest after a crash is always safe, and the CRC framing
   rejects anything torn. *)

let save t ~dir =
  match
    let file = path dir in
    let tmp = file ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (encode t));
    Fsutil.fsync_file tmp;
    Fault.crash "shard.manifest.tmp";
    Sys.rename tmp file;
    Fault.crash "shard.manifest.rename";
    Fsutil.fsync_dir dir
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let load ~dir =
  let file = path dir in
  let tmp = file ^ ".tmp" in
  (* a stray tmp is an interrupted save that never renamed *)
  if Sys.file_exists tmp then (try Sys.remove tmp with Sys_error _ -> ());
  if not (Sys.file_exists file) then Ok None
  else
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error msg
    | contents -> (
        match decode contents with
        | Ok t -> Ok (Some t)
        | Error _ as e -> e)
