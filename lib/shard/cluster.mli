(** The sharded scatter-gather warehouse coordinator.

    A cluster hash-partitions every table created through it across N
    {e shards} — each a primary/replica pair of stores — by the table's
    partition column ({!Partitioner.partition_column}). Shards are
    either in-process databases ({!create_local}) or remote [genalg
    serve] processes reached over the wire protocol
    ({!create_remote}).

    {b Mirror.} The coordinator also maintains a {e mirror}: a full
    unpartitioned database that receives every statement first, in
    arrival order. The mirror is the semantic authority — writes it
    rejects never reach the shards, partial INSERT application follows
    its row count, and any SELECT the scatter rewrite cannot reproduce
    byte-for-byte (see {!Genalg_sqlx.Scatter}) is answered by the
    mirror directly, so results and error messages are always exactly
    those of the single-node engine.

    {b Reads.} Shardable SELECTs run shard-local (index, genomic and
    vectorized paths included), pruned to a single shard when a WHERE
    conjunct pins the partition column to a literal. Aggregates and
    GROUP BY ship as partial aggregates and merge at the coordinator.

    {b Failover.} Each shard read passes a [shard.<i>.primary] fault
    site and the shard's circuit breaker; a dead or crash-looping
    primary degrades to the replica ([shard.<i>.replica]), and a fully
    dead shard degrades to the mirror — a query never fails because a
    shard died. Writes go to primary {e and} replica synchronously and
    have no fault sites (see docs/SHARDING.md for the argument).

    Instruments: [shard.queries], [shard.scatter.fanout],
    [shard.gathered_rows], [shard.failovers], [shard.partial_merges],
    [shard.fallbacks], [shard.pruned]; histograms [shard.gather],
    [shard.merge]; span [shard.scatter]. *)

module Db := Genalg_storage.Database
module Exec := Genalg_sqlx.Exec

type t

val create_local :
  ?attach:(Db.t -> unit) -> ?replicas:bool -> shards:int -> unit -> t
(** Fresh in-process cluster of [max 1 shards] shards. [attach]
    registers UDTs/UDFs and is applied to the mirror and every shard
    store (default: nothing). [replicas] (default [true]) controls
    whether each shard gets a replica store. *)

val create_remote :
  ?attach:(Db.t -> unit) ->
  ?replicas:string list ->
  actor:string ->
  sockets:string list ->
  unit -> (t, string) result
(** Cluster over remote [genalg serve] shards, one per socket path, in
    shard order; [replicas] optionally lists replica sockets pairwise.
    The coordinator keeps a local mirror (UDFs from [attach]), so only
    data loaded through this cluster is visible to it. *)

val close : t -> unit
(** Disconnect remote clients. Local stores need no teardown. *)

val shard_count : t -> int

val mirror : t -> Db.t
(** The coordinator mirror (tests compare scatter output against it). *)

val primary_db : t -> int -> Db.t option
(** Shard [i]'s primary when it is in-process ([None] for remote). *)

val replica_db : t -> int -> Db.t option

val run :
  t -> actor:string -> Genalg_sqlx.Ast.stmt -> (Exec.outcome, string) result

val query : t -> actor:string -> string -> (Exec.outcome, string) result
(** Parse then {!run}. *)

type report = {
  targets : int;       (** shards the last SELECT was scattered to *)
  gathered : int;      (** shard answers gathered (= [targets] unless a
                           fallback cut the scatter short) *)
  failed_over : int;   (** primary->replica failovers during it *)
  fallback : string option;  (** why the mirror answered, if it did *)
}

val last_report : t -> report
(** Scatter telemetry of the most recent SELECT (EXPLAIN ANALYZE shows
    the same numbers). *)

val failovers_total : t -> int

val merged_stats_text : t -> actor:string -> table:string -> (string, string) result
(** ANALYZE statistics merged across the shard primaries (row counts
    and null counts summed, min/max widened, equi-depth histograms
    recombined); the per-shard planners use their own local statistics,
    this view is the coordinator's. In-process shards only. *)
