(** The sharded scatter-gather warehouse coordinator.

    A cluster hash-partitions every table created through it across N
    {e shards} — each a primary/replica pair of stores — by the table's
    partition column ({!Partitioner.partition_column}). Shards are
    either in-process databases ({!create_local}) or remote [genalg
    serve] processes reached over the wire protocol
    ({!create_remote}).

    {b Mirror.} The coordinator also maintains a {e mirror}: a full
    unpartitioned database that receives every statement first, in
    arrival order. The mirror is the semantic authority — writes it
    rejects never reach the shards, partial INSERT application follows
    its row count, and any SELECT the scatter rewrite cannot reproduce
    byte-for-byte (see {!Genalg_sqlx.Scatter}) is answered by the
    mirror directly, so results and error messages are always exactly
    those of the single-node engine.

    {b Reads.} Shardable SELECTs run shard-local (index, genomic and
    vectorized paths included), pruned to a single shard when a WHERE
    conjunct pins the partition column to a literal. Aggregates and
    GROUP BY ship as partial aggregates and merge at the coordinator.

    {b Failover and self-healing.} Every member access passes a
    [shard.<i>.primary] / [shard.<i>.replica] fault site. A member
    that fails is marked down; losing a primary bumps the shard pair's
    {e fencing epoch} (pushed to the surviving members, so the stale
    primary is refused writes under its old epoch), reads degrade to
    the replica and then to the mirror, and writes simply skip the
    down member — the statement log holds its delta. When the shard's
    circuit breaker grants a half-open probe, the coordinator {e
    resyncs} the member: it replays only the statements above the
    member's applied LSN (see {!Genalg_shard.Resync}) and the member
    rejoins serving. A query never fails because a shard died.

    {b Durability.} With a state directory ([?dir] / {!open_dir}) the
    coordinator keeps a crash-safe {!Genalg_shard.Manifest}, an
    LSN-ordered statement log, and checkpoint images, so a restarted
    coordinator recovers its routing state, mirror, and (for local
    topologies) every shard store — then resyncs remote members.

    Instruments: [shard.queries], [shard.scatter.fanout],
    [shard.gathered_rows], [shard.failovers], [shard.partial_merges],
    [shard.fallbacks], [shard.pruned], [shard.epoch.bumps],
    [shard.resync.*], [shard.rejoin.count]; histograms [shard.gather],
    [shard.merge]; span [shard.scatter]. *)

module Db := Genalg_storage.Database
module Exec := Genalg_sqlx.Exec

type t

val create_local :
  ?attach:(Db.t -> unit) ->
  ?replicas:bool ->
  ?dir:string ->
  shards:int ->
  unit ->
  (t, string) result
(** Fresh in-process cluster of [max 1 shards] shards. [attach]
    registers UDTs/UDFs and is applied to the mirror and every shard
    store (default: nothing). [replicas] (default [true]) controls
    whether each shard gets a replica store. [dir] makes the cluster
    persistent: the directory (created if missing) receives the
    manifest, the statement log and checkpoint images. [Error] if
    [dir] already holds a manifest (reopen it with {!open_dir}) or
    cannot be initialised. *)

val create_remote :
  ?attach:(Db.t -> unit) ->
  ?replicas:string list ->
  ?dir:string ->
  actor:string ->
  sockets:string list ->
  unit ->
  (t, string) result
(** Cluster over remote [genalg serve] shards, one per socket path, in
    shard order; [replicas] optionally lists replica sockets pairwise.
    The coordinator keeps a local mirror (UDFs from [attach]), so only
    data loaded through this cluster is visible to it. [dir] as in
    {!create_local} (but reported as [Error], not an exception). *)

val open_dir : ?attach:(Db.t -> unit) -> dir:string -> unit -> (t, string) result
(** Reopen a coordinator state directory: load the manifest, replay
    the statement log over the checkpoint images (rebuilding the log
    file first if its tail is torn), and reassemble the recorded
    topology. Local shard stores come back serving; remote members
    are reconnected and resynced through the epoch handshake (a member
    that cannot be resynced yet stays down and is retried by breaker
    probes). *)

val checkpoint : t -> (unit, string) result
(** Fold the statement log into fresh checkpoint images and truncate
    it. Crash-atomic: images are staged under the new log base, the
    manifest carrying that base is the single commit point, and only
    then are the staged images promoted and the log truncated —
    {!open_dir} finishes or discards an interrupted checkpoint and
    replays only statements above the committed base, so no statement
    is ever applied twice (crash points [shard.checkpoint.stage] /
    [.commit] / [.promote]). Refused unless every member is serving —
    truncating earlier would strand a down member's replay delta — and
    refused after a failed statement-log flush (see {!run}). *)

val close : t -> unit
(** Flush the statement log and manifest (when persistent), then
    disconnect remote clients. Local stores need no teardown. *)

val shard_count : t -> int

val mirror : t -> Db.t
(** The coordinator mirror (tests compare scatter output against it). *)

val primary_db : t -> int -> Db.t option
(** Shard [i]'s primary when it is in-process ([None] for remote). *)

val replica_db : t -> int -> Db.t option

val run :
  t -> actor:string -> Genalg_sqlx.Ast.stmt -> (Exec.outcome, string) result
(** Execute one statement with single-node semantics. Actor names
    starting with ['@'] are refused — that prefix is reserved for the
    statement log's shard-routing records. If a write's statement-log
    flush fails, the write fails and the coordinator {e wedges}: every
    later write (and {!checkpoint}) is refused with the same error
    until the state directory is reopened with {!open_dir}, which
    re-derives a consistent state from the durable log. Reads keep
    serving while wedged. *)

val query : t -> actor:string -> string -> (Exec.outcome, string) result
(** Parse then {!run}. *)

type report = {
  targets : int;       (** shards the last SELECT was scattered to *)
  gathered : int;      (** shard answers gathered (= [targets] unless a
                           fallback cut the scatter short) *)
  failed_over : int;   (** primary->replica failovers during it *)
  fallback : string option;  (** why the mirror answered, if it did *)
}

val last_report : t -> report
(** Scatter telemetry of the most recent SELECT (EXPLAIN ANALYZE shows
    the same numbers). *)

val failovers_total : t -> int

(** {1 Cluster health} *)

type shard_state =
  | Serving    (** primary healthy *)
  | Degraded   (** primary down, replica serving reads *)
  | Resyncing  (** a resync probe is in flight, or the pair is down but
                   recoverable from the statement log *)
  | Dead       (** the primary can never catch up from the log *)

val shard_state_to_string : shard_state -> string

val shard_states : t -> shard_state array

val epoch : t -> int -> int
(** The fencing epoch currently in force for shard [i]. *)

val report_text : t -> string
(** Human-readable health: the last scatter's telemetry plus one line
    per shard (state, epoch, per-member applied LSNs). *)

val merged_stats_text : t -> actor:string -> table:string -> (string, string) result
(** ANALYZE statistics merged across the shard primaries (row counts
    and null counts summed, min/max widened, equi-depth histograms
    recombined); the per-shard planners use their own local statistics,
    this view is the coordinator's. In-process shards only. *)
