module Db = Genalg_storage.Database
module Exec = Genalg_sqlx.Exec
module Parser = Genalg_sqlx.Parser
module Obs = Genalg_obs.Obs
module Fault = Genalg_fault.Fault
module Client = Genalg_serve.Client
module P = Genalg_serve.Protocol

let c_attempts = Obs.counter "shard.resync.attempts"
let c_replayed = Obs.counter "shard.resync.replayed"
let c_failed = Obs.counter "shard.resync.failed"
let c_rejoins = Obs.counter "shard.rejoin.count"

type endpoint = Local of Db.t | Remote of Client.t | Detached of string

(* one logged statement: (lsn, actor, routed sql) *)
type entry = int * string * string

type outcome =
  | Rejoined of { applied : int; replayed : int }
  | Failed of { applied : int }
  | Unrecoverable
  | Epoch_superseded of { epoch : int }

let is_shard_site s = String.length s >= 6 && String.sub s 0 6 = "shard."

(* Replay [entries] (ascending LSN) one statement at a time through
   [apply], advancing the cursor after each success so an interrupted
   resync retries only the remainder — this is what keeps resync
   bounded: no statement is ever replayed twice against one member. *)
let replay_entries ~applied ~apply entries =
  let cur = ref applied in
  let replayed = ref 0 in
  let rec go = function
    | [] ->
        Obs.add c_rejoins 1;
        Rejoined { applied = !cur; replayed = !replayed }
    | (lsn, actor, sql) :: rest ->
        if apply ~lsn ~actor sql then begin
          incr replayed;
          Obs.add c_replayed 1;
          cur := lsn;
          go rest
        end
        else begin
          Obs.add c_failed 1;
          Failed { applied = !cur }
        end
  in
  go entries

let attempt ~actor:_ ~site ~epoch ~log_base ~applied ~entries_after ep =
  Obs.add c_attempts 1;
  try
    (* the member's fault site gates the whole resync: a member that is
       still dying cannot be brought back this probe *)
    Fault.hit site;
    match ep with
    | Detached _ ->
        (* the server is unreachable and the caller's re-dial did not
           land; the probe is spent *)
        Obs.add c_failed 1;
        Failed { applied }
    | Local db ->
        (* an in-process store never loses state, it only misses the
           statements skipped while it was marked down — all of which
           the log still holds (checkpoints refuse while any member is
           unhealthy) *)
        let apply ~lsn:_ ~actor sql =
          match
            Result.bind (Parser.parse sql) (fun stmt ->
                Exec.run db ~actor stmt)
          with
          | Ok _ -> true
          | Error _ -> false
        in
        replay_entries ~applied ~apply (entries_after applied)
    | Remote c -> (
        (* handshake first: the server reports the epoch it now honours
           and how far it durably got, which defines the replay delta *)
        match Client.resync c ~epoch with
        | Error _ ->
            Obs.add c_failed 1;
            Failed { applied }
        | Ok (srv_epoch, srv_applied) ->
            if srv_epoch > epoch then Epoch_superseded { epoch = srv_epoch }
            else if srv_applied < log_base then begin
              (* the server is behind the oldest log entry we still
                 hold: the delta is gone, only a full rebuild (outside
                 this protocol) could help *)
              Obs.add c_failed 1;
              Unrecoverable
            end
            else
              let apply ~lsn ~actor:_ sql =
                match Client.fenced_query c ~epoch ~lsn sql with
                | Ok (P.Error_reply _) | Error _ -> false
                | Ok _ -> true
              in
              replay_entries ~applied:srv_applied ~apply
                (entries_after srv_applied))
  with
  | Fault.Injected _ ->
      Obs.add c_failed 1;
      Failed { applied }
  | Fault.Crash_point s when is_shard_site s ->
      Obs.add c_failed 1;
      Failed { applied }
