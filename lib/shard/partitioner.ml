module D = Genalg_storage.Dtype
module Ast = Genalg_sqlx.Ast

(* FNV-1a over a numerically-normalized byte encoding: Int and Float
   that compare equal must hash equally, or WHERE-literal pruning would
   route to a different shard than the stored row. *)
let fnv_offset = Int64.to_int 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3

let hash_string s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime)
    s;
  !h land max_int

let normalize = function
  | D.Int i -> D.Float (float_of_int i)
  | v -> v

let encode v =
  let buf = Buffer.create 32 in
  D.encode_value buf (normalize v);
  Buffer.contents buf

let shard_of ~shards v =
  let n = max 1 shards in
  hash_string (encode v) mod n

let partition_column (defs : Ast.column_def list) =
  let named p =
    List.find_opt (fun d -> p (String.lowercase_ascii d.Ast.col_name)) defs
  in
  let pick =
    match named (fun n -> n = "organism" || n = "accession") with
    | Some d -> Some d
    | None ->
        named (fun n ->
            n = "id"
            || String.length n > 3
               && String.sub n (String.length n - 3) 3 = "_id")
  in
  match pick, defs with
  | Some d, _ -> d.Ast.col_name
  | None, d :: _ -> d.Ast.col_name
  | None, [] -> ""
