(** The coordinator manifest: crash-safe routing state for a persistent
    cluster (magic [GENALGMF1], spec in [docs/SHARDING.md]).

    The manifest records everything a fresh coordinator needs to pick a
    cluster back up: the topology it must reassemble, the partition
    column of every table, the statement-sequence high-water marks, and
    each shard pair's fencing epoch. It deliberately does {e not} hold
    data — the mirror image and the per-shard statement logs in the
    same directory are the data; the manifest's LSN fields are advisory
    (recovery re-derives the truth from the logs and from what each
    member reports), so a crash that loses the very latest manifest
    write only rolls routing state back to a point the logs carry
    forward again.

    Persistence is the image-save protocol minus the intent journal:
    complete tmp file, fsync, atomic rename over the old manifest,
    directory fsync — with the CRC frame rejecting anything torn.
    Roll-back is always safe here, so no journal is needed. Crash
    points: [shard.manifest.tmp] (after the tmp is complete),
    [shard.manifest.rename] (after the rename, before the directory
    fsync). *)

type topology =
  | Local of { shards : int; replicas : bool }
      (** in-process stores, rebuilt from images + logs on recovery *)
  | Remote of { actor : string; sockets : string list; replicas : string list }
      (** [genalg serve] processes, reconnected and resynced on
          recovery ([actor] is the session actor the coordinator
          connects as) *)

type shard_entry = {
  epoch : int;              (** fencing epoch in force for the pair *)
  primary_applied : int;    (** advisory: last LSN seen applied *)
  replica_applied : int option;  (** [None] when the pair has no replica *)
}

type t = {
  topology : topology;
  pcols : (string * string) list;  (** lowercase table -> partition column *)
  next_seq : int;  (** next statement LSN / [__grid] value to assign *)
  log_base : int;  (** LSNs at or below this are checkpointed into images *)
  shards : shard_entry list;
}

val path : string -> string
(** [path dir] is the manifest file inside a coordinator state
    directory: [dir/MANIFEST]. *)

val save : t -> dir:string -> (unit, string) result
(** Atomically replace the manifest in [dir] (tmp + fsync + rename +
    directory fsync). *)

val load : dir:string -> (t option, string) result
(** Read and validate the manifest in [dir]. [Ok None] when the file
    does not exist (a fresh directory); [Error] on a bad magic, CRC
    mismatch or truncated body. Removes a stray [.tmp] from an
    interrupted save. *)

val crash_points : string list
(** Fault-injection crash points inside {!save}, in protocol order. *)

val encode : t -> string
val decode : string -> (t, string) result
(** The pure codec, exposed for corruption tests. *)
