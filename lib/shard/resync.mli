(** Shard resync: bring a crashed or restarted member back to serving
    by replaying only the statements it missed ([docs/SHARDING.md]).

    The coordinator keeps a per-shard statement log (LSN-ordered routed
    statements). A member marked down misses statements; when the shard
    pair's breaker grants a half-open probe, {!attempt} replays the
    delta above the member's applied-LSN cursor and, if the whole delta
    lands, the member rejoins serving.

    For an in-process member the delta comes straight from the
    coordinator's view of the member's cursor. For a remote member the
    resync starts with the protocol-v3 handshake: the server adopts the
    offered fencing epoch and reports its durable applied LSN, the
    coordinator replays everything above it as fenced statements (the
    server skips any it already holds), so replay is idempotent and
    bounded — the cursor advances per statement, no statement is ever
    replayed twice against one member.

    Instruments: [shard.resync.attempts], [shard.resync.replayed],
    [shard.resync.failed], [shard.rejoin.count]. *)

type endpoint =
  | Local of Genalg_storage.Database.t
  | Remote of Genalg_serve.Client.t
  | Detached of string
      (** a remote member whose server is unreachable; the string is the
          socket path to re-dial. A probe against a detached member
          always fails — the caller re-dials first and swaps the
          endpoint to [Remote] when the server is back *)

type entry = int * string * string
(** one logged statement: [(lsn, actor, routed sql)] *)

type outcome =
  | Rejoined of { applied : int; replayed : int }
      (** the member is current again; [replayed] statements landed *)
  | Failed of { applied : int }
      (** the member is still down (fault, transport, refused
          statement); [applied] carries any partial progress so the
          next probe resumes, not restarts *)
  | Unrecoverable
      (** a remote member reported an applied LSN older than the log
          base — the delta was checkpointed away and the member can
          never catch up from the log *)
  | Epoch_superseded of { epoch : int }
      (** the server already honours a higher epoch than offered; the
          caller must adopt it and retry *)

val attempt :
  actor:string ->
  site:string ->
  epoch:int ->
  log_base:int ->
  applied:int ->
  entries_after:(int -> entry list) ->
  endpoint ->
  outcome
(** One breaker-granted resync probe against one member. [site] is the
    member's fault-injection site (a still-failing member aborts the
    probe); [entries_after lsn] must return the logged statements with
    LSN strictly above [lsn], ascending. *)
