module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Schema = Genalg_storage.Schema
module Wal = Genalg_storage.Wal
module Fsutil = Genalg_storage.Fsutil
module Ast = Genalg_sqlx.Ast
module Eval = Genalg_sqlx.Eval
module Exec = Genalg_sqlx.Exec
module Parser = Genalg_sqlx.Parser
module Scatter = Genalg_sqlx.Scatter
module Obs = Genalg_obs.Obs
module Fault = Genalg_fault.Fault
module Breaker = Genalg_resilience.Resilience.Breaker
module Client = Genalg_serve.Client
module P = Genalg_serve.Protocol

let ( let* ) = Result.bind

let c_queries = Obs.counter "shard.queries"
let c_fanout = Obs.counter "shard.scatter.fanout"
let c_gathered = Obs.counter "shard.gathered_rows"
let c_failovers = Obs.counter "shard.failovers"
let c_merges = Obs.counter "shard.partial_merges"
let c_fallbacks = Obs.counter "shard.fallbacks"
let c_pruned = Obs.counter "shard.pruned"
let c_epoch_bumps = Obs.counter "shard.epoch.bumps"
let h_gather = Obs.histogram "shard.gather"
let h_merge = Obs.histogram "shard.merge"

(* the three steps of the staged checkpoint protocol, for crash tests *)
let ckpt_crash_points =
  [
    "shard.checkpoint.stage";
    "shard.checkpoint.commit";
    "shard.checkpoint.promote";
  ]

let () = List.iter Fault.register_crash_point ckpt_crash_points

type endpoint = Resync.endpoint =
  | Local of Db.t
  | Remote of Client.t
  | Detached of string

type role = R_primary | R_replica

(* One store of a shard pair. [m_applied] is the coordinator's view of
   the highest statement LSN the member holds (for a remote member:
   durably, because fenced writes are acknowledged after the server's
   group flush). A member that misses a statement is marked unhealthy
   and catches up through the statement log; [m_dead] means it can
   never catch up from the log (its delta was checkpointed away). *)
type member = {
  mutable m_ep : endpoint;
  m_sock : string option;  (* re-dial address for a remote member *)
  mutable m_healthy : bool;
  mutable m_dead : bool;
  mutable m_applied : int;
}

type shard = {
  sid : int;
  primary : member;
  replica : member option;
  breaker : Breaker.t;
  mutable epoch : int;
  mutable resyncing : bool;
}

type shard_state = Serving | Degraded | Resyncing | Dead

type report = {
  targets : int;
  gathered : int;
  failed_over : int;
  fallback : string option;
}

(* internal mutable version of the report *)
type rep = {
  mutable r_targets : int;
  mutable r_gathered : int;
  mutable r_failed_over : int;
  mutable r_fallback : string option;
}

type persist = { dir : string; log : Wal.t }

type t = {
  shards : shard array;
  mirror_db : Db.t;
  pcols : (string, string) Hashtbl.t;  (* lc table -> lc partition column *)
  mutable next_seq : int;  (* next LSN, which doubles as the __grid value *)
  mutable log_base : int;  (* LSNs <= this are checkpointed into images *)
  mem_logs : (int * string * string) list array;  (* newest-first, per shard *)
  persist : persist option;
  topology : Manifest.topology;
  rep : rep;
  mutable failovers_sum : int;
  (* set when a statement-log flush failed: the coordinator refuses
     further writes until it is reopened (recovery re-derives a
     consistent state from the durable log) *)
  mutable wedged : string option;
}

(* a shard (primary or replica) that cannot answer at all — injected
   fault, simulated crash, or a broken remote connection *)
exception Shard_down of string

let shard_count t = Array.length t.shards
let mirror t = t.mirror_db

let endpoint_db = function Local db -> Some db | Remote _ | Detached _ -> None

let primary_db t i =
  if i < 0 || i >= Array.length t.shards then None
  else endpoint_db t.shards.(i).primary.m_ep

let replica_db t i =
  if i < 0 || i >= Array.length t.shards then None
  else
    Option.bind t.shards.(i).replica (fun m -> endpoint_db m.m_ep)

let last_report t =
  {
    targets = t.rep.r_targets;
    gathered = t.rep.r_gathered;
    failed_over = t.rep.r_failed_over;
    fallback = t.rep.r_fallback;
  }

let failovers_total t = t.failovers_sum
let epoch t i = t.shards.(i).epoch

let members sh =
  (R_primary, sh.primary)
  :: (match sh.replica with Some m -> [ (R_replica, m) ] | None -> [])

let shard_site i = function
  | R_primary -> Printf.sprintf "shard.%d.primary" i
  | R_replica -> Printf.sprintf "shard.%d.replica" i

let is_shard_site s = String.length s >= 6 && String.sub s 0 6 = "shard."

let shard_state_of sh =
  let replica_ok =
    match sh.replica with Some m -> m.m_healthy | None -> false
  in
  if sh.resyncing then Resyncing
  else if sh.primary.m_healthy then Serving
  else if replica_ok then Degraded
  else if sh.primary.m_dead then Dead
  else Resyncing

let shard_state_to_string = function
  | Serving -> "serving"
  | Degraded -> "degraded"
  | Resyncing -> "resyncing"
  | Dead -> "dead"

let shard_states t = Array.map shard_state_of t.shards

let next_lsn t =
  let l = t.next_seq in
  t.next_seq <- l + 1;
  l

(* ------------------------------------------------------------------ *)
(* Coordinator state directory                                         *)

let log_file dir = Filename.concat dir "statements.log"
let mirror_file dir = Filename.concat dir "mirror.db"
let shard_image dir i = Filename.concat dir (Printf.sprintf "shard%d.db" i)

(* A checkpoint must be crash-atomic against the statement log: saving
   an image and truncating the log are separate steps, and a crash
   between them must not leave recovery replaying statements an image
   already holds. The protocol stages every image under the log base
   it covers — [<file>.ckpt-<base>] — and commits by persisting the
   manifest with that base; only then are the staged images renamed
   over the live ones and the log truncated. Recovery (see
   [settle_staged]) finishes a committed promotion and sweeps staged
   files of an uncommitted one, and every replay path filters by
   [lsn > log_base], so each statement is applied exactly once no
   matter where the crash landed. *)
let ckpt_infix = ".ckpt-"
let staged_image file base = Printf.sprintf "%s%s%d" file ckpt_infix base

type staged =
  | Staged_db of string * int  (* live file name, checkpoint base *)
  | Staged_aux  (* a save-machinery leftover: <file>.ckpt-<base>.tmp/.journal *)

let classify_staged name =
  let n = String.length name and m = String.length ckpt_infix in
  let rec find i =
    if i + m > n then None
    else if String.sub name i m = ckpt_infix then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> (
      let j = ref (i + m) in
      while !j < n && name.[!j] >= '0' && name.[!j] <= '9' do
        incr j
      done;
      match int_of_string_opt (String.sub name (i + m) (!j - i - m)) with
      | None -> None
      | Some w ->
          if !j = n then Some (Staged_db (String.sub name 0 i, w))
          else if name.[!j] = '.' then Some Staged_aux
          else None)

(* Finish or sweep an interrupted checkpoint. A staged image whose base
   matches the manifest's belongs to a committed checkpoint whose
   promotion crashed mid-way: rename it into place. Staged images (and
   their tmp/journal leftovers) of an uncommitted checkpoint are
   removed — the manifest never named their base, so the live images
   plus the intact log are still the truth. *)
let settle_staged dir ~log_base =
  match
    Array.iter
      (fun name ->
        match classify_staged name with
        | None -> ()
        | Some Staged_aux -> Sys.remove (Filename.concat dir name)
        | Some (Staged_db (live, w)) ->
            let staged = Filename.concat dir name in
            if w = log_base then Sys.rename staged (Filename.concat dir live)
            else Sys.remove staged)
      (Sys.readdir dir);
    Fsutil.fsync_dir dir
  with
  | () -> Ok ()
  | exception Sys_error e -> Error e

(* The statement log is physically one LSN-ordered file but logically
   per-shard: each statement's transaction (txn id = LSN) carries the
   original statement for the mirror plus the routed statement tagged
   with its target shard in the actor field. Actor names starting with
   '@' are reserved for this tag. *)
let encode_route tgt actor = "@" ^ tgt ^ ":" ^ actor

let decode_route actor =
  if String.length actor > 0 && actor.[0] = '@' then
    match String.index_opt actor ':' with
    | Some i ->
        Some
          ( String.sub actor 1 (i - 1),
            String.sub actor (i + 1) (String.length actor - i - 1) )
    | None -> None
  else None

let manifest_of t =
  let pcols =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pcols [])
  in
  let shards =
    Array.to_list
      (Array.map
         (fun sh ->
           {
             Manifest.epoch = sh.epoch;
             primary_applied = sh.primary.m_applied;
             replica_applied = Option.map (fun m -> m.m_applied) sh.replica;
           })
         t.shards)
  in
  {
    Manifest.topology = t.topology;
    pcols;
    next_seq = t.next_seq;
    log_base = t.log_base;
    shards;
  }

(* The manifest is advisory over the logs, so a failed write is not
   fatal to the statement that triggered it — recovery re-derives the
   truth. Injected crash points still propagate. *)
let save_manifest t =
  match t.persist with
  | None -> ()
  | Some p -> (
      match Manifest.save (manifest_of t) ~dir:p.dir with
      | Ok () | Error _ -> ())

(* Log one routed statement under its LSN, atomically with the original
   it was derived from: both records share one log transaction, so both
   survive a crash or neither does — there is no window where the
   mirror and a shard diverge after recovery. [target] is a shard
   index, or [-1] for a broadcast.

   A statement is only as durable as its flush: if the flush fails the
   LSN may not survive a restart, and applying the statement to members
   anyway would let a later coordinator re-assign that LSN to a
   different statement, which the members' idempotent-replay cursors
   would then silently skip. A failed flush therefore fails the
   statement — no member sees it, its buffered records are dropped so a
   later flush cannot resurrect them — and wedges the coordinator
   against further writes until it is reopened (the mirror, which
   rules on statements first, is one undurable statement ahead of the
   log until then). *)
let log_statement t ~actor ~lsn ~target ~original ~routed =
  match t.persist with
  | Some p -> (
      Wal.append_begin p.log ~txn:lsn;
      Wal.append_stmt p.log ~txn:lsn ~actor ~sql:original;
      let tgt = if target < 0 then "*" else string_of_int target in
      Wal.append_stmt p.log ~txn:lsn ~actor:(encode_route tgt actor)
        ~sql:routed;
      Wal.append_commit p.log ~txn:lsn;
      (* flush per statement: a member ack means its LSN is replayable;
         a torn tail from a flush crash is rebuilt on recovery *)
      match
        Fault.hit "shard.log.flush";
        Wal.flush p.log
      with
      | Ok () -> Ok ()
      | Error e | (exception Fault.Injected (_, e)) ->
          Wal.drop_pending p.log;
          let msg =
            Printf.sprintf
              "statement log write failed (%s); the coordinator refuses \
               further writes — reopen the state directory to recover"
              e
          in
          t.wedged <- Some msg;
          Error msg)
  | None ->
      if target < 0 then
        Array.iteri
          (fun i l -> t.mem_logs.(i) <- (lsn, actor, routed) :: l)
          t.mem_logs
      else begin
        t.mem_logs.(target) <- (lsn, actor, routed) :: t.mem_logs.(target)
      end;
      Ok ()

(* the logical statement stream of shard [i]: routed statements
   targeting it (or broadcast) with LSN strictly above [lsn], ascending *)
let entries_after t i lsn =
  match t.persist with
  | Some p -> (
      match Wal.replay_from (Wal.path p.log) ~lsn with
      | Error _ -> []
      | Ok rp ->
          List.filter_map
            (fun (s : Wal.replay_stmt) ->
              match decode_route s.Wal.rp_actor with
              | Some (tgt, actor) when tgt = "*" || tgt = string_of_int i ->
                  Some (s.Wal.rp_txn, actor, s.Wal.rp_sql)
              | _ -> None)
            rp.Wal.committed)
  | None ->
      List.rev (List.filter (fun (l, _, _) -> l > lsn) t.mem_logs.(i))

(* ------------------------------------------------------------------ *)
(* Endpoint execution                                                  *)

let exec_endpoint ~actor ep stmt =
  match ep with
  | Local db -> Exec.run db ~actor stmt
  | Detached socket -> raise (Shard_down (socket ^ ": unreachable"))
  | Remote c -> (
      match Client.query c (Ast.stmt_to_string stmt) with
      | Ok (P.Rows { columns; rows }) -> Ok (Exec.Rows { columns; rows })
      | Ok (P.Affected n) -> Ok (Exec.Affected n)
      | Ok (P.Ok_reply _) -> Ok Exec.Executed
      | Ok (P.Error_reply { message; _ }) -> Error message
      | Ok _ -> raise (Shard_down "unexpected reply")
      | Error e -> raise (Shard_down e))

(* a fenced write: remote members get the statement under the shard's
   epoch and the statement's LSN, so a stale primary is refused
   (FENCED) and a restarted server skips statements it already holds *)
let exec_write ~actor ~epoch ~lsn ep stmt =
  match ep with
  | Local db -> Exec.run db ~actor stmt
  | Detached socket -> raise (Shard_down (socket ^ ": unreachable"))
  | Remote c -> (
      match Client.fenced_query c ~epoch ~lsn (Ast.stmt_to_string stmt) with
      | Ok (P.Rows { columns; rows }) -> Ok (Exec.Rows { columns; rows })
      | Ok (P.Affected n) -> Ok (Exec.Affected n)
      | Ok (P.Ok_reply _) -> Ok Exec.Executed
      | Ok (P.Error_reply { code = P.FENCED; message }) ->
          raise (Shard_down message)
      | Ok (P.Error_reply { message; _ }) -> Error message
      | Ok _ -> raise (Shard_down "unexpected reply")
      | Error e -> raise (Shard_down e))

let try_endpoint ~actor ep stmt =
  try exec_endpoint ~actor ep stmt with Shard_down m -> Error m

(* ------------------------------------------------------------------ *)
(* Health, fencing, resync                                             *)

(* Losing a primary fences the pair: the epoch bumps and is pushed to
   every member still serving, so the stale primary — which may come
   back with writes it never durably applied elsewhere — is refused
   under its old epoch until it resyncs. *)
let rec mark_down t sh role m =
  if m.m_healthy then begin
    m.m_healthy <- false;
    if role = R_primary then begin
      sh.epoch <- sh.epoch + 1;
      Obs.add c_epoch_bumps 1;
      propagate_epoch t sh
    end;
    save_manifest t
  end

and propagate_epoch t sh =
  List.iter
    (fun (role, m) ->
      if m.m_healthy && not m.m_dead then
        match m.m_ep with
        | Local _ | Detached _ -> ()
        | Remote c -> (
            match Client.resync c ~epoch:sh.epoch with
            | Ok (srv_epoch, _) when srv_epoch > sh.epoch ->
                sh.epoch <- srv_epoch
            | Ok _ -> ()
            | Error _ -> mark_down t sh role m))
    (members sh)

(* A down remote member may be holding a dead connection (its server
   crashed or restarted). Before the probe, re-dial the remembered
   socket: a fresh connection reaches the restarted server where the
   stale fd only ever yields EPIPE. While the server stays gone the
   member parks as [Detached socket] so nothing blocks on a dead fd. *)
let redial m ~actor =
  match (m.m_ep, m.m_sock) with
  | (Remote _ | Detached _), Some socket -> (
      match Client.connect ~actor ~socket () with
      | Ok c ->
          (match m.m_ep with Remote old -> Client.close old | _ -> ());
          m.m_ep <- Remote c
      | Error _ -> (
          match m.m_ep with
          | Remote old ->
              Client.close old;
              m.m_ep <- Detached socket
          | _ -> ()))
  | _ -> ()

(* One resync probe for a down member. On success the member's cursor
   is current and it rejoins serving; partial progress survives in
   [m_applied] so the next probe resumes where this one stopped. *)
let resync_member t sh role m ~actor =
  if m.m_dead then false
  else begin
    redial m ~actor;
    sh.resyncing <- true;
    Fun.protect
      ~finally:(fun () -> sh.resyncing <- false)
      (fun () ->
        match
          Resync.attempt ~actor
            ~site:(shard_site sh.sid role)
            ~epoch:sh.epoch ~log_base:t.log_base ~applied:m.m_applied
            ~entries_after:(entries_after t sh.sid)
            m.m_ep
        with
        | Resync.Rejoined { applied; replayed = _ } ->
            m.m_applied <- applied;
            m.m_healthy <- true;
            save_manifest t;
            true
        | Resync.Failed { applied } ->
            m.m_applied <- applied;
            false
        | Resync.Unrecoverable ->
            m.m_dead <- true;
            save_manifest t;
            false
        | Resync.Epoch_superseded { epoch } ->
            if epoch > sh.epoch then begin
              sh.epoch <- epoch;
              save_manifest t
            end;
            false)
  end

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)

(* Member writes never fail the statement: the mirror already accepted
   it and is the authority. A member that cannot apply it (fault,
   crash, transport, fencing) is marked down and catches up through
   the statement log on a later resync probe. *)
let write_member t sh role m ~actor ~lsn stmt =
  if m.m_healthy && not m.m_dead then
    match
      Fault.hit (shard_site sh.sid role);
      exec_write ~actor ~epoch:sh.epoch ~lsn m.m_ep stmt
    with
    | Ok _ -> m.m_applied <- lsn
    | Error _ -> mark_down t sh role m
    | exception Fault.Injected _ -> mark_down t sh role m
    | exception Fault.Crash_point site when is_shard_site site ->
        mark_down t sh role m
    | exception Shard_down _ -> mark_down t sh role m

let write_shard t ~actor i ~lsn stmt =
  let sh = t.shards.(i) in
  List.iter
    (fun (role, m) -> write_member t sh role m ~actor ~lsn stmt)
    (members sh)

let broadcast_write t ~actor ~lsn stmt =
  Array.iter
    (fun sh ->
      List.iter
        (fun (role, m) -> write_member t sh role m ~actor ~lsn stmt)
        (members sh))
    t.shards

(* ------------------------------------------------------------------ *)
(* Reads with failover                                                 *)

(* [None] = this endpoint is down (fault/crash/transport); [Some r] =
   it answered, where [r] may still be a query-level error *)
let attempt ~actor i role ep stmt =
  try
    Fault.hit (shard_site i role);
    Some (exec_endpoint ~actor ep stmt)
  with
  | Fault.Injected _ -> None
  | Fault.Crash_point site when is_shard_site site -> None
  | Shard_down _ -> None

(* Read from shard [i]: primary behind its breaker, then replica.
   [None] = the whole shard is unavailable. A granted breaker probe
   doubles as the rejoin driver: before retrying the primary it tries
   to resync every member that is down but recoverable. *)
let shard_read t ~actor i stmt =
  let sh = t.shards.(i) in
  let allowed = Breaker.allow sh.breaker in
  if allowed then
    List.iter
      (fun (role, m) ->
        if (not m.m_healthy) && not m.m_dead then
          ignore (resync_member t sh role m ~actor))
      (members sh);
  let primary_answer =
    if allowed && sh.primary.m_healthy then
      match attempt ~actor sh.sid R_primary sh.primary.m_ep stmt with
      | Some r ->
          Breaker.success sh.breaker;
          Some r
      | None ->
          Breaker.failure sh.breaker;
          mark_down t sh R_primary sh.primary;
          None
    else begin
      (* a claimed half-open probe must be resolved either way *)
      if allowed then Breaker.failure sh.breaker;
      None
    end
  in
  match primary_answer with
  | Some r -> Some r
  | None -> (
      Obs.add c_failovers 1;
      t.rep.r_failed_over <- t.rep.r_failed_over + 1;
      t.failovers_sum <- t.failovers_sum + 1;
      match sh.replica with
      | None -> None
      | Some m ->
          if m.m_healthy then
            match attempt ~actor sh.sid R_replica m.m_ep stmt with
            | Some r -> Some r
            | None ->
                mark_down t sh R_replica m;
                None
          else None)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let fresh_rep () =
  { r_targets = 0; r_gathered = 0; r_failed_over = 0; r_fallback = None }

let fresh_member ?sock ep =
  { m_ep = ep; m_sock = sock; m_healthy = true; m_dead = false; m_applied = 0 }

let fresh_shard ?psock ?rsock i primary replica =
  {
    sid = i;
    primary = fresh_member ?sock:psock primary;
    replica = Option.map (fresh_member ?sock:rsock) replica;
    breaker = Breaker.create ();
    epoch = 0;
    resyncing = false;
  }

(* A fresh state directory: refuse one that already holds a manifest
   (that cluster's logs would be clobbered — reopen it with
   {!open_dir} instead). *)
let open_fresh_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if Sys.file_exists (Manifest.path dir) then
    Error
      (Printf.sprintf "%s already holds a coordinator manifest (use open_dir)"
         dir)
  else
    match Wal.open_ (log_file dir) with
    | Ok log -> Ok { dir; log }
    | Error e -> Error e

let make ~shards ~mirror_db ~persist ~topology =
  let t =
    {
      shards;
      mirror_db;
      pcols = Hashtbl.create 8;
      next_seq = 1;
      log_base = 0;
      mem_logs = Array.make (Array.length shards) [];
      persist;
      topology;
      rep = fresh_rep ();
      failovers_sum = 0;
      wedged = None;
    }
  in
  save_manifest t;
  t

let create_local ?(attach = fun _ -> ()) ?(replicas = true) ?dir ~shards:n () =
  let mk () =
    let db = Db.create () in
    attach db;
    db
  in
  let mirror_db = mk () in
  let n = max 1 n in
  let shards =
    Array.init n (fun i ->
        fresh_shard i
          (Local (mk ()))
          (if replicas then Some (Local (mk ())) else None))
  in
  let* persist =
    match dir with
    | None -> Ok None
    | Some dir -> Result.map Option.some (open_fresh_dir dir)
  in
  Ok
    (make ~shards ~mirror_db ~persist
       ~topology:(Manifest.Local { shards = n; replicas }))

let close t =
  (match t.persist with
  | Some p ->
      (match Wal.flush p.log with Ok () | Error _ -> ());
      save_manifest t;
      Wal.close p.log
  | None -> ());
  Array.iter
    (fun sh ->
      List.iter
        (fun (_, m) ->
          match m.m_ep with
          | Remote c -> Client.close c
          | Local _ | Detached _ -> ())
        (members sh))
    t.shards

let create_remote ?(attach = fun _ -> ()) ?(replicas = []) ?dir ~actor ~sockets
    () =
  if sockets = [] then Error "no shard sockets given"
  else begin
    let connected = ref [] in
    let fail msg =
      List.iter (fun c -> Client.close c) !connected;
      Error msg
    in
    let rec connect_all acc = function
      | [] -> Ok (List.rev acc)
      | socket :: rest -> (
          match Client.connect ~actor ~socket () with
          | Ok c ->
              connected := c :: !connected;
              connect_all (c :: acc) rest
          | Error e -> Error (socket ^ ": " ^ e))
    in
    match connect_all [] sockets with
    | Error e -> fail e
    | Ok primaries -> (
        match connect_all [] replicas with
        | Error e -> fail e
        | Ok reps -> (
            let persist_r =
              match dir with
              | None -> Ok None
              | Some dir -> (
                  match open_fresh_dir dir with
                  | Ok p -> Ok (Some p)
                  | Error e -> Error e)
            in
            match persist_r with
            | Error e -> fail e
            | Ok persist ->
                let mirror_db = Db.create () in
                attach mirror_db;
                let reps = Array.of_list reps in
                let rsocks = Array.of_list replicas in
                let shards =
                  Array.of_list
                    (List.mapi
                       (fun i (sock, c) ->
                         if i < Array.length reps then
                           fresh_shard i ~psock:sock
                             ~rsock:rsocks.(i) (Remote c)
                             (Some (Remote reps.(i)))
                         else fresh_shard i ~psock:sock (Remote c) None)
                       (List.combine sockets primaries))
                in
                Ok
                  (make ~shards ~mirror_db ~persist
                     ~topology:(Manifest.Remote { actor; sockets; replicas }))))
  end

(* ------------------------------------------------------------------ *)
(* Recovery: reopen a coordinator state directory                      *)

(* After a torn tail the intact committed prefix is rewritten to a
   fresh file: replay tolerates the tear, but appending after one
   would leave the new records unreachable behind it. *)
let rebuild_log dir (rp : Wal.replay) =
  let file = log_file dir in
  let tmp = file ^ ".rebuild" in
  if Sys.file_exists tmp then Sys.remove tmp;
  let* log = Wal.open_ tmp in
  let last = ref min_int in
  List.iter
    (fun (s : Wal.replay_stmt) ->
      if s.Wal.rp_txn <> !last then begin
        if !last <> min_int then Wal.append_commit log ~txn:!last;
        Wal.append_begin log ~txn:s.Wal.rp_txn;
        last := s.Wal.rp_txn
      end;
      Wal.append_stmt log ~txn:s.Wal.rp_txn ~actor:s.Wal.rp_actor
        ~sql:s.Wal.rp_sql)
    rp.Wal.committed;
  if !last <> min_int then Wal.append_commit log ~txn:!last;
  let* () = Wal.flush log in
  Wal.close log;
  Sys.rename tmp file;
  Fsutil.fsync_dir dir;
  Wal.open_ file

let route_entries (rp : Wal.replay) i =
  List.filter_map
    (fun (s : Wal.replay_stmt) ->
      match decode_route s.Wal.rp_actor with
      | Some (tgt, actor) when tgt = "*" || tgt = string_of_int i ->
          Some (s.Wal.rp_txn, actor, s.Wal.rp_sql)
      | _ -> None)
    rp.Wal.committed

(* [from] is both the filter and the cursor: entries at or below it are
   already in the image being rebuilt (they were checkpointed away) and
   must not be applied again *)
let apply_entries db ~from entries =
  let rec go applied = function
    | [] -> Ok applied
    | (lsn, _, _) :: rest when lsn <= from -> go applied rest
    | (lsn, actor, sql) :: rest ->
        let* stmt = Parser.parse sql in
        let* _ = Exec.run db ~actor stmt in
        go (max applied lsn) rest
  in
  go from entries

let load_image ~attach path =
  ignore (Db.recover path);
  let* db = if Sys.file_exists path then Db.load path else Ok (Db.create ()) in
  attach db;
  Ok db

let open_dir ?(attach = fun _ -> ()) ~dir () =
  let* mf_opt = Manifest.load ~dir in
  match mf_opt with
  | None -> Error (dir ^ ": no coordinator manifest")
  | Some mf ->
      let log_base = mf.Manifest.log_base in
      (* an interrupted checkpoint first: promote its images if it
         committed, sweep them if it did not *)
      let* () = settle_staged dir ~log_base in
      let* rp = Wal.replay (log_file dir) in
      let* log =
        if rp.Wal.torn then rebuild_log dir rp else Wal.open_ (log_file dir)
      in
      (* mirror: checkpoint image + every original (non-routed) logged
         statement, in LSN order; partition columns follow the DDL the
         replay carries (the manifest may predate a crash-logged
         CREATE TABLE) *)
      let* mirror_db = load_image ~attach (mirror_file dir) in
      let pcols = Hashtbl.create 8 in
      List.iter
        (fun (table, col) -> Hashtbl.replace pcols table col)
        mf.Manifest.pcols;
      let rec replay_mirror = function
        | [] -> Ok ()
        (* at or below the checkpoint base: the image already holds it *)
        | (s : Wal.replay_stmt) :: rest when s.Wal.rp_txn <= log_base ->
            replay_mirror rest
        | (s : Wal.replay_stmt) :: rest -> (
            match decode_route s.Wal.rp_actor with
            | Some _ -> replay_mirror rest
            | None ->
                let* stmt = Parser.parse s.Wal.rp_sql in
                let* _ = Exec.run mirror_db ~actor:s.Wal.rp_actor stmt in
                (match stmt with
                | Ast.Create_table { table; defs } ->
                    Hashtbl.replace pcols
                      (String.lowercase_ascii table)
                      (String.lowercase_ascii
                         (Partitioner.partition_column defs))
                | Ast.Drop_table table ->
                    Hashtbl.remove pcols (String.lowercase_ascii table)
                | _ -> ());
                replay_mirror rest)
      in
      let* () = replay_mirror rp.Wal.committed in
      let max_txn =
        List.fold_left
          (fun a (s : Wal.replay_stmt) -> max a s.Wal.rp_txn)
          0 rp.Wal.committed
      in
      let next_seq = max mf.Manifest.next_seq (max_txn + 1) in
      let entry i = List.nth_opt mf.Manifest.shards i in
      let entry_epoch i =
        match entry i with Some e -> e.Manifest.epoch | None -> 0
      in
      let finish shards =
        {
          shards;
          mirror_db;
          pcols;
          next_seq;
          log_base;
          mem_logs = Array.make (Array.length shards) [];
          persist = Some { dir; log };
          topology = mf.Manifest.topology;
          rep = fresh_rep ();
          failovers_sum = 0;
          wedged = None;
        }
      in
      (match mf.Manifest.topology with
      | Manifest.Local { shards = n; replicas } ->
          (* in-process members are rebuilt from their checkpoint image
             plus their logical log stream, so they come back serving *)
          let rec build acc i =
            if i >= n then Ok (Array.of_list (List.rev acc))
            else
              let* pdb = load_image ~attach (shard_image dir i) in
              let* applied =
                apply_entries pdb ~from:log_base (route_entries rp i)
              in
              let rdb =
                if replicas then begin
                  let d = Db.clone pdb in
                  attach d;
                  Some (Local d)
                end
                else None
              in
              let sh = fresh_shard i (Local pdb) rdb in
              sh.epoch <- entry_epoch i;
              sh.primary.m_applied <- applied;
              Option.iter (fun m -> m.m_applied <- applied) sh.replica;
              build (sh :: acc) (i + 1)
          in
          let* shards = build [] 0 in
          Ok (finish shards)
      | Manifest.Remote { actor; sockets; replicas } ->
          (* no fail-fast dialing: a shard whose server is still gone
             reopens as a down [Detached] member holding its socket; the
             eager resync pass below — and every later breaker probe —
             re-dials it and rejoins it once the server is back *)
          let rsocks = Array.of_list replicas in
          let shards =
            Array.of_list
              (List.mapi
                 (fun i sock ->
                   let sh =
                     if i < Array.length rsocks then
                       fresh_shard i ~psock:sock ~rsock:rsocks.(i)
                         (Detached sock)
                         (Some (Detached rsocks.(i)))
                     else fresh_shard i ~psock:sock (Detached sock) None
                   in
                   sh.epoch <- entry_epoch i;
                   (* members start down: the resync handshake below
                      re-imposes the persisted epoch and finds each
                      server's durable cursor before it rejoins *)
                   List.iter
                     (fun (_, m) -> m.m_healthy <- false)
                     (members sh);
                   sh)
                 sockets)
          in
          let t = finish shards in
          Array.iter
            (fun sh ->
              List.iter
                (fun (role, m) ->
                  ignore (resync_member t sh role m ~actor))
                (members sh))
            t.shards;
          Ok t)

(* Checkpoint: fold the log into images and truncate it, via the staged
   protocol described at [staged_image] (stage images -> commit by
   manifest -> promote -> truncate), so a crash at any step recovers
   without replaying a statement twice or losing one. Refused while any
   member is not serving — truncation would strand that member's delta
   and turn a recoverable lag into a dead store — and while the
   coordinator is wedged on a failed log flush — the mirror is ahead of
   the log then, and an image of it would launder the undurable
   statement into the checkpoint. *)
let checkpoint t =
  match t.persist with
  | None -> Error "not a persistent cluster (no state directory)"
  | Some p -> (
      match t.wedged with
      | Some msg -> Error msg
      | None ->
          if
            Array.exists
              (fun sh ->
                List.exists (fun (_, m) -> not m.m_healthy) (members sh))
              t.shards
          then Error "cannot checkpoint: a shard member is not serving"
          else begin
            let base = t.next_seq - 1 in
            let live = ref [ mirror_file p.dir ] in
            let* () =
              Db.save t.mirror_db (staged_image (mirror_file p.dir) base)
            in
            let rec save_shards i =
              if i >= Array.length t.shards then Ok ()
              else
                match t.shards.(i).primary.m_ep with
                | Local db ->
                    let file = shard_image p.dir i in
                    let* () = Db.save db (staged_image file base) in
                    live := file :: !live;
                    save_shards (i + 1)
                | Remote _ | Detached _ -> save_shards (i + 1)
            in
            let* () = save_shards 0 in
            Fault.crash "shard.checkpoint.stage";
            (* commit point: the manifest now names the staged set *)
            let old_base = t.log_base in
            t.log_base <- base;
            match Manifest.save (manifest_of t) ~dir:p.dir with
            | Error e ->
                t.log_base <- old_base;
                Error e
            | Ok () ->
                Fault.crash "shard.checkpoint.commit";
                let* () =
                  match
                    List.iter
                      (fun file ->
                        Sys.rename (staged_image file base) file)
                      !live;
                    Fsutil.fsync_dir p.dir
                  with
                  | () -> Ok ()
                  | exception Sys_error e -> Error e
                in
                Fault.crash "shard.checkpoint.promote";
                let* () = Wal.truncate p.log in
                Array.iteri (fun i _ -> t.mem_logs.(i) <- []) t.mem_logs;
                Ok ()
          end)

(* ------------------------------------------------------------------ *)
(* Scatter-gather SELECT                                               *)

let pcol_of t table = Hashtbl.find_opt t.pcols (String.lowercase_ascii table)

let conjunct_col ~alias = function
  | Ast.Col (None, c) -> Some c
  | Ast.Col (Some q, c)
    when String.lowercase_ascii q = String.lowercase_ascii alias ->
      Some c
  | _ -> None

(* WHERE pins the partition column to a literal -> one target shard *)
let prune t (select : Ast.select) =
  let n = Array.length t.shards in
  let all = List.init n Fun.id in
  match select.Ast.from with
  | [ (table, alias) ] -> (
      match pcol_of t table, select.Ast.where with
      | Some pcol, Some w -> (
          let hit =
            List.find_map
              (fun c ->
                match c with
                | Ast.Binop (Ast.Eq, lhs, Ast.Lit v)
                | Ast.Binop (Ast.Eq, Ast.Lit v, lhs) -> (
                    match conjunct_col ~alias lhs with
                    | Some c
                      when String.lowercase_ascii c = pcol && v <> D.Null ->
                        Some v
                    | _ -> None)
                | _ -> None)
              (Ast.conjuncts w)
          in
          match hit with
          | Some v ->
              Obs.add c_pruned 1;
              [ Partitioner.shard_of ~shards:n v ]
          | None -> all)
      | _ -> all)
  | _ -> all

let star_columns t ~actor (select : Ast.select) () =
  match select.Ast.from with
  | [ (table, _) ] -> (
      match Db.resolve t.mirror_db ~actor table with
      | Some (_, tbl) ->
          Ok
            (List.map
               (fun (c : Schema.column) -> c.Schema.name)
               (Schema.columns (Table.schema tbl)))
      | None -> Error (Printf.sprintf "unknown or unreadable table %s" table))
  | _ -> Error "multi-table star"

let has_index t ~actor (select : Ast.select) column =
  match select.Ast.from with
  | [ (table, _) ] -> (
      match Db.resolve t.mirror_db ~actor table with
      | Some (_, tbl) -> Table.has_index tbl ~column
      | None -> false)
  | _ -> false

(* gather rows from every target; any shard-level problem aborts the
   scatter (the caller answers from the mirror instead) *)
let gather t ~actor targets shard_select =
  let t0 = Obs.now_s () in
  let rec loop acc = function
    | [] ->
        Obs.observe h_gather (Obs.now_s () -. t0);
        Ok acc
    | i :: rest -> (
        match shard_read t ~actor i (Ast.Select shard_select) with
        | None -> Error (Printf.sprintf "shard %d unavailable" i)
        | Some (Error msg) -> Error (Printf.sprintf "shard %d: %s" i msg)
        | Some (Ok (Exec.Rows rs)) ->
            t.rep.r_gathered <- t.rep.r_gathered + 1;
            loop (acc @ rs.Exec.rows) rest
        | Some (Ok _) -> Error (Printf.sprintf "shard %d: unexpected reply" i))
  in
  loop [] targets

let scatter_select t ~actor select =
  Obs.add c_queries 1;
  t.rep.r_targets <- 0;
  t.rep.r_gathered <- 0;
  t.rep.r_failed_over <- 0;
  t.rep.r_fallback <- None;
  let fallback reason =
    Obs.add c_fallbacks 1;
    t.rep.r_fallback <- Some reason;
    Exec.run t.mirror_db ~actor (Ast.Select select)
  in
  Obs.with_span "shard.scatter" (fun () ->
      match
        Scatter.decompose
          ~star_columns:(star_columns t ~actor select)
          ~has_index:(has_index t ~actor select)
          select
      with
      | Scatter.Not_shardable reason -> fallback reason
      | Scatter.Plain p -> (
          let targets = prune t select in
          t.rep.r_targets <- List.length targets;
          Obs.add c_fanout (List.length targets);
          match gather t ~actor targets p.Scatter.p_shard with
          | Error reason -> fallback reason
          | Ok rows ->
              Obs.add c_gathered (List.length rows);
              let m0 = Obs.now_s () in
              let rs = Scatter.merge_plain p rows in
              Obs.observe h_merge (Obs.now_s () -. m0);
              Ok (Exec.Rows rs))
      | Scatter.Grouped g -> (
          let targets = prune t select in
          t.rep.r_targets <- List.length targets;
          Obs.add c_fanout (List.length targets);
          match gather t ~actor targets g.Scatter.g_shard with
          | Error reason -> fallback reason
          | Ok rows -> (
              Obs.add c_gathered (List.length rows);
              Obs.add c_merges 1;
              let m0 = Obs.now_s () in
              let merged =
                Scatter.merge_grouped ~udts:(Db.udts t.mirror_db) g rows
              in
              Obs.observe h_merge (Obs.now_s () -. m0);
              match merged with
              | Ok rs -> Ok (Exec.Rows rs)
              | Error reason ->
                  (* a coordinator-side evaluation error; the mirror
                     reproduces the canonical single-node message *)
                  fallback reason)))

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)

let plan_rows lines =
  Exec.Rows
    {
      Exec.columns = [ "QUERY PLAN" ];
      rows = List.map (fun l -> [| D.Str l |]) lines;
    }

let rows_to_lines (rs : Exec.result_set) =
  List.filter_map
    (fun row -> match row with [| D.Str s |] -> Some s | _ -> None)
    rs.Exec.rows

let explain_cluster t ~actor ~analyze select =
  let n = Array.length t.shards in
  let mirror_explain header =
    let* rs = Exec.explain t.mirror_db ~actor ~analyze select in
    Ok (plan_rows (header :: List.map (fun l -> "  " ^ l) (rows_to_lines rs)))
  in
  let decomposed =
    Scatter.decompose
      ~star_columns:(star_columns t ~actor select)
      ~has_index:(has_index t ~actor select)
      select
  in
  match decomposed with
  | Scatter.Not_shardable reason ->
      mirror_explain (Printf.sprintf "Gather-all (fallback: %s)" reason)
  | Scatter.Plain _ | Scatter.Grouped _ ->
      if analyze then begin
        let* outcome = scatter_select t ~actor select in
        let rep = last_report t in
        match rep.fallback with
        | Some reason ->
            mirror_explain (Printf.sprintf "Gather-all (fallback: %s)" reason)
        | None ->
            let rows_out =
              match outcome with
              | Exec.Rows rs -> List.length rs.Exec.rows
              | _ -> 0
            in
            let gather_line =
              match decomposed with
              | Scatter.Plain p ->
                  "Gather: merge on __grid"
                  ^ (if p.Scatter.p_order <> [] then "; sort" else "")
                  ^ (match p.Scatter.p_limit with
                    | Some l -> Printf.sprintf "; limit %d" l
                    | None -> "")
              | Scatter.Grouped _ ->
                  "Gather: merge partial aggregates; groups by first occurrence"
              | Scatter.Not_shardable _ -> ""
            in
            Ok
              (plan_rows
                 [
                   Printf.sprintf
                     "Scatter-gather (shards=%d gathered=%d failed-over=%d)" n
                     rep.gathered rep.failed_over;
                   "  " ^ gather_line;
                   Printf.sprintf "  rows=%d" rows_out;
                 ])
      end
      else begin
        let targets = prune t select in
        let partition =
          match select.Ast.from with
          | [ (table, _) ] -> (
              match pcol_of t table with Some c -> c | None -> "none")
          | _ -> "none"
        in
        let header =
          Printf.sprintf "Scatter-gather (shards=%d, targets=%d, partition=%s)"
            n (List.length targets) partition
        in
        let shard_select, gather_line =
          match decomposed with
          | Scatter.Plain p ->
              ( p.Scatter.p_shard,
                "Gather: merge on __grid"
                ^ (if p.Scatter.p_order <> [] then "; sort" else "")
                ^ (match p.Scatter.p_limit with
                  | Some l -> Printf.sprintf "; limit %d" l
                  | None -> "") )
          | Scatter.Grouped g ->
              ( g.Scatter.g_shard,
                "Gather: merge partial aggregates; groups by first occurrence"
              )
          | Scatter.Not_shardable _ -> assert false
        in
        let shard_plan =
          match targets with
          | [] -> [ "  (no targets)" ]
          | i0 :: _ -> (
              match
                try_endpoint ~actor t.shards.(i0).primary.m_ep
                  (Ast.Explain { analyze = false; select = shard_select })
              with
              | Ok (Exec.Rows rs) ->
                  Printf.sprintf "  shard %d plan:" i0
                  :: List.map (fun l -> "    " ^ l) (rows_to_lines rs)
              | Ok _ | Error _ -> [ "  (shard plan unavailable)" ])
        in
        Ok (plan_rows ((header :: shard_plan) @ [ "  " ^ gather_line ]))
      end

(* ------------------------------------------------------------------ *)
(* Writes and DDL                                                      *)

let target_space ~actor =
  if actor = Db.loader_actor then Db.Public else Db.User actor

let reserved_column defs =
  List.exists
    (fun d -> String.lowercase_ascii d.Ast.col_name = Scatter.grid_col)
    defs

let run_insert t ~actor table columns rows =
  let env =
    {
      Eval.lookup = (fun _ n -> Error ("unknown column " ^ n));
      udts = Db.udts t.mirror_db;
    }
  in
  let schema = ref None in
  let get_schema () =
    match !schema with
    | Some s -> Some s
    | None -> (
        match Db.find_table t.mirror_db ~space:(target_space ~actor) table with
        | Some tbl ->
            let s = Table.schema tbl in
            schema := Some s;
            Some s
        | None -> None)
  in
  let partition_value exprs =
    (* evaluation cannot fail here: the mirror already accepted the row *)
    let values =
      List.map
        (fun e -> match Eval.eval env e with Ok v -> v | Error _ -> D.Null)
        exprs
    in
    match get_schema (), pcol_of t table with
    | Some schema, Some pcol -> (
        if columns = [] then
          match Schema.column_index schema pcol with
          | Some i when i < List.length values -> List.nth values i
          | _ -> D.Null
        else
          let rec find cols vals =
            match cols, vals with
            | c :: _, v :: _ when String.lowercase_ascii c = pcol -> v
            | _ :: cs, _ :: vs -> find cs vs
            | _ -> D.Null
          in
          find columns values)
    | _ -> D.Null
  in
  let shard_columns () =
    (if columns = [] then
       match get_schema () with
       | Some s ->
           List.map (fun (c : Schema.column) -> c.Schema.name)
             (Schema.columns s)
       | None -> []
     else columns)
    @ [ Scatter.grid_col ]
  in
  let rec insert_rows n = function
    | [] -> Ok (Exec.Affected n)
    | exprs :: rest -> (
        (* the mirror rules on each row first: its errors are the
           canonical single-node errors, and like the single-node
           engine, rows before a failing one stay applied *)
        let original = Ast.Insert { table; columns; rows = [ exprs ] } in
        match Exec.run t.mirror_db ~actor original with
        | Error _ as e -> e
        | Ok _ ->
            let v = partition_value exprs in
            let tgt =
              Partitioner.shard_of ~shards:(Array.length t.shards) v
            in
            (* the statement LSN doubles as the row's __grid value:
               both only need to be monotone in arrival order *)
            let lsn = next_lsn t in
            let stmt =
              Ast.Insert
                {
                  table;
                  columns = shard_columns ();
                  rows = [ exprs @ [ Ast.Lit (D.Int lsn) ] ];
                }
            in
            let* () =
              log_statement t ~actor ~lsn ~target:tgt
                ~original:(Ast.stmt_to_string original)
                ~routed:(Ast.stmt_to_string stmt)
            in
            write_shard t ~actor tgt ~lsn stmt;
            insert_rows (n + 1) rest)
  in
  insert_rows 0 rows

(* a broadcast DDL/DML statement: mirror first (if it rejects, no shard
   sees the statement), then log under one LSN, then every member *)
let run_broadcast t ~actor stmt shard_stmt =
  let lsn = next_lsn t in
  let* () =
    log_statement t ~actor ~lsn ~target:(-1)
      ~original:(Ast.stmt_to_string stmt)
      ~routed:(Ast.stmt_to_string shard_stmt)
  in
  broadcast_write t ~actor ~lsn shard_stmt;
  Ok ()

let is_write = function
  | Ast.Select _ | Ast.Explain _ -> false
  | Ast.Insert _ | Ast.Create_table _ | Ast.Drop_table _ | Ast.Create_index _
  | Ast.Create_genomic_index _ | Ast.Analyze _ | Ast.Delete _ ->
      true

let reserved_actor actor = String.length actor > 0 && actor.[0] = '@'

let run_stmt t ~actor stmt =
  match stmt with
  | Ast.Select select -> scatter_select t ~actor select
  | Ast.Explain { analyze; select } -> explain_cluster t ~actor ~analyze select
  | Ast.Insert { table; columns; rows } -> run_insert t ~actor table columns rows
  | Ast.Create_table { table; defs } ->
      if reserved_column defs then
        Error
          (Printf.sprintf "column name %s is reserved by the sharding layer"
             Scatter.grid_col)
      else
        let* outcome = Exec.run t.mirror_db ~actor stmt in
        let pcol = Partitioner.partition_column defs in
        Hashtbl.replace t.pcols
          (String.lowercase_ascii table)
          (String.lowercase_ascii pcol);
        let shard_stmt =
          Ast.Create_table
            {
              table;
              defs =
                defs
                @ [
                    {
                      Ast.col_name = Scatter.grid_col;
                      col_type = D.TInt;
                      col_nullable = false;
                    };
                  ];
            }
        in
        let* () = run_broadcast t ~actor stmt shard_stmt in
        save_manifest t;
        Ok outcome
  | Ast.Drop_table table ->
      let* outcome = Exec.run t.mirror_db ~actor stmt in
      Hashtbl.remove t.pcols (String.lowercase_ascii table);
      let* () = run_broadcast t ~actor stmt stmt in
      save_manifest t;
      Ok outcome
  | Ast.Create_index _ | Ast.Create_genomic_index _ | Ast.Analyze _
  | Ast.Delete _ ->
      let* outcome = Exec.run t.mirror_db ~actor stmt in
      let* () = run_broadcast t ~actor stmt stmt in
      Ok outcome

let run t ~actor stmt =
  if reserved_actor actor then
    Error
      (Printf.sprintf
         "actor name %S is invalid: names starting with '@' are reserved by \
          the sharding layer"
         actor)
  else
    match t.wedged with
    | Some msg when is_write stmt -> Error msg
    | _ -> run_stmt t ~actor stmt

let query t ~actor sql =
  let* stmt = Parser.parse sql in
  run t ~actor stmt

(* ------------------------------------------------------------------ *)
(* Cluster health text                                                 *)

let report_text t =
  let rep = last_report t in
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "last scatter: targets=%d gathered=%d failed-over=%d fallback=%s\n"
    rep.targets rep.gathered rep.failed_over
    (match rep.fallback with Some r -> r | None -> "-");
  Array.iter
    (fun sh ->
      let lsns =
        String.concat ", "
          (List.map
             (fun (role, m) ->
               Printf.sprintf "%s lsn %d%s"
                 (match role with
                 | R_primary -> "primary"
                 | R_replica -> "replica")
                 m.m_applied
                 (if m.m_dead then " dead"
                  else if m.m_healthy then ""
                  else " down"))
             (members sh))
      in
      Printf.bprintf buf "shard %d: %s (epoch %d, %s)\n" sh.sid
        (shard_state_to_string (shard_state_of sh))
        sh.epoch lsns)
    t.shards;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Merged statistics                                                   *)

let max_merged_buckets = 32

let merge_histograms hs =
  let entries =
    List.concat_map
      (fun (h : Table.histogram) ->
        List.init (Array.length h.Table.bounds) (fun i ->
            (h.Table.bounds.(i), h.Table.counts.(i))))
      hs
  in
  match entries with
  | [] -> None
  | _ ->
      let sorted =
        List.sort (fun (a, _) (b, _) -> D.compare_value a b) entries
      in
      let len = List.length sorted in
      let per = max 1 ((len + max_merged_buckets - 1) / max_merged_buckets) in
      let rec chunk acc cur cnt i = function
        | [] ->
            let acc =
              match cur with
              | Some b -> (b, cnt) :: acc
              | None -> acc
            in
            List.rev acc
        | (b, c) :: rest ->
            if (i + 1) mod per = 0 then
              chunk ((b, cnt + c) :: acc) None 0 (i + 1) rest
            else chunk acc (Some b) (cnt + c) (i + 1) rest
      in
      let merged = chunk [] None 0 0 sorted in
      Some
        {
          Table.bounds = Array.of_list (List.map fst merged);
          counts = Array.of_list (List.map snd merged);
        }

let merged_stats_text t ~actor ~table =
  let snapshots =
    Array.to_list t.shards
    |> List.filter_map (fun sh -> endpoint_db sh.primary.m_ep)
    |> List.filter_map (fun db ->
           match Db.resolve db ~actor table with
           | Some (_, tbl) when Table.has_stats tbl ->
               Some (Table.stats_snapshot tbl)
           | _ -> None)
  in
  if snapshots = [] then
    Error
      (Printf.sprintf "no shard statistics for %s (run ANALYZE %s)" table
         table)
  else begin
    let columns =
      List.sort_uniq compare (List.concat_map (List.map fst) snapshots)
    in
    let buf = Buffer.create 256 in
    Printf.bprintf buf "merged statistics for %s across %d shard(s)\n" table
      (List.length snapshots);
    Printf.bprintf buf "%-16s %10s %10s %10s  %s\n" "column" "rows" "nulls"
      "buckets" "range";
    List.iter
      (fun col ->
        if col <> Scatter.grid_col then begin
          let stats =
            List.filter_map (fun snap -> List.assoc_opt col snap) snapshots
          in
          let rows =
            List.fold_left (fun a (s : Table.column_stats) -> a + s.rows) 0
              stats
          in
          let nulls =
            List.fold_left (fun a (s : Table.column_stats) -> a + s.nulls) 0
              stats
          in
          let mins = List.filter_map (fun s -> s.Table.min_value) stats in
          let maxs = List.filter_map (fun s -> s.Table.max_value) stats in
          let fold_best cmp = function
            | [] -> None
            | v :: rest ->
                Some
                  (List.fold_left
                     (fun m v -> if cmp (D.compare_value v m) then v else m)
                     v rest)
          in
          let mn = fold_best (fun c -> c < 0) mins in
          let mx = fold_best (fun c -> c > 0) maxs in
          let hist =
            merge_histograms
              (List.filter_map (fun s -> s.Table.histogram) stats)
          in
          let buckets =
            match hist with
            | Some h -> Array.length h.Table.bounds
            | None -> 0
          in
          let range =
            match mn, mx with
            | Some a, Some b ->
                Printf.sprintf "[%s .. %s]" (D.value_to_display a)
                  (D.value_to_display b)
            | _ -> "-"
          in
          Printf.bprintf buf "%-16s %10d %10d %10d  %s\n" col rows nulls
            buckets range
        end)
      columns;
    Ok (Buffer.contents buf)
  end
