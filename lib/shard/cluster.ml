module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Schema = Genalg_storage.Schema
module Ast = Genalg_sqlx.Ast
module Eval = Genalg_sqlx.Eval
module Exec = Genalg_sqlx.Exec
module Parser = Genalg_sqlx.Parser
module Scatter = Genalg_sqlx.Scatter
module Obs = Genalg_obs.Obs
module Fault = Genalg_fault.Fault
module Breaker = Genalg_resilience.Resilience.Breaker
module Client = Genalg_serve.Client
module P = Genalg_serve.Protocol

let ( let* ) = Result.bind

let c_queries = Obs.counter "shard.queries"
let c_fanout = Obs.counter "shard.scatter.fanout"
let c_gathered = Obs.counter "shard.gathered_rows"
let c_failovers = Obs.counter "shard.failovers"
let c_merges = Obs.counter "shard.partial_merges"
let c_fallbacks = Obs.counter "shard.fallbacks"
let c_pruned = Obs.counter "shard.pruned"
let h_gather = Obs.histogram "shard.gather"
let h_merge = Obs.histogram "shard.merge"

type endpoint = Local of Db.t | Remote of Client.t

type shard = {
  primary : endpoint;
  replica : endpoint option;
  breaker : Breaker.t;
}

type report = {
  targets : int;
  gathered : int;
  failed_over : int;
  fallback : string option;
}

(* internal mutable version of the report *)
type rep = {
  mutable r_targets : int;
  mutable r_gathered : int;
  mutable r_failed_over : int;
  mutable r_fallback : string option;
}

type t = {
  shards : shard array;
  mirror_db : Db.t;
  pcols : (string, string) Hashtbl.t;  (* lc table -> lc partition column *)
  mutable next_grid : int;
  rep : rep;
  mutable failovers_sum : int;
}

(* a shard (primary or replica) that cannot answer at all — injected
   fault, simulated crash, or a broken remote connection *)
exception Shard_down of string

let shard_count t = Array.length t.shards
let mirror t = t.mirror_db

let endpoint_db = function Local db -> Some db | Remote _ -> None

let primary_db t i =
  if i < 0 || i >= Array.length t.shards then None
  else endpoint_db t.shards.(i).primary

let replica_db t i =
  if i < 0 || i >= Array.length t.shards then None
  else Option.bind t.shards.(i).replica endpoint_db

let last_report t =
  {
    targets = t.rep.r_targets;
    gathered = t.rep.r_gathered;
    failed_over = t.rep.r_failed_over;
    fallback = t.rep.r_fallback;
  }

let failovers_total t = t.failovers_sum

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let fresh_rep () =
  { r_targets = 0; r_gathered = 0; r_failed_over = 0; r_fallback = None }

let create_local ?(attach = fun _ -> ()) ?(replicas = true) ~shards:n () =
  let mk () =
    let db = Db.create () in
    attach db;
    db
  in
  let mirror_db = mk () in
  let shards =
    Array.init (max 1 n) (fun _ ->
        {
          primary = Local (mk ());
          replica = (if replicas then Some (Local (mk ())) else None);
          breaker = Breaker.create ();
        })
  in
  {
    shards;
    mirror_db;
    pcols = Hashtbl.create 8;
    next_grid = 0;
    rep = fresh_rep ();
    failovers_sum = 0;
  }

let close t =
  Array.iter
    (fun sh ->
      (match sh.primary with Remote c -> Client.close c | Local _ -> ());
      match sh.replica with
      | Some (Remote c) -> Client.close c
      | _ -> ())
    t.shards

let create_remote ?(attach = fun _ -> ()) ?(replicas = []) ~actor ~sockets () =
  if sockets = [] then Error "no shard sockets given"
  else begin
    let connected = ref [] in
    let fail msg =
      List.iter (fun c -> Client.close c) !connected;
      Error msg
    in
    let rec connect_all acc = function
      | [] -> Ok (List.rev acc)
      | socket :: rest -> (
          match Client.connect ~actor ~socket () with
          | Ok c ->
              connected := c :: !connected;
              connect_all (c :: acc) rest
          | Error e -> Error (socket ^ ": " ^ e))
    in
    match connect_all [] sockets with
    | Error e -> fail e
    | Ok primaries -> (
        match connect_all [] replicas with
        | Error e -> fail e
        | Ok reps ->
            let mirror_db = Db.create () in
            attach mirror_db;
            let reps = Array.of_list reps in
            let shards =
              Array.of_list
                (List.mapi
                   (fun i c ->
                     {
                       primary = Remote c;
                       replica =
                         (if i < Array.length reps then
                            Some (Remote reps.(i))
                          else None);
                       breaker = Breaker.create ();
                     })
                   primaries)
            in
            Ok
              {
                shards;
                mirror_db;
                pcols = Hashtbl.create 8;
                next_grid = 0;
                rep = fresh_rep ();
                failovers_sum = 0;
              })
  end

(* ------------------------------------------------------------------ *)
(* Endpoint execution                                                  *)

let exec_endpoint ~actor ep stmt =
  match ep with
  | Local db -> Exec.run db ~actor stmt
  | Remote c -> (
      match Client.query c (Ast.stmt_to_string stmt) with
      | Ok (P.Rows { columns; rows }) -> Ok (Exec.Rows { columns; rows })
      | Ok (P.Affected n) -> Ok (Exec.Affected n)
      | Ok (P.Ok_reply _) -> Ok Exec.Executed
      | Ok (P.Error_reply { message; _ }) -> Error message
      | Ok _ -> raise (Shard_down "unexpected reply")
      | Error e -> raise (Shard_down e))

(* writes have no fault sites: a write that reached the mirror must
   reach both stores of its shard or the cluster is inconsistent, so
   the failure experiments only target the read path *)
let write_endpoint ~actor ep stmt =
  try exec_endpoint ~actor ep stmt with Shard_down m -> Error m

let write_shard t ~actor i stmt =
  let sh = t.shards.(i) in
  let* _ = write_endpoint ~actor sh.primary stmt in
  match sh.replica with
  | None -> Ok ()
  | Some rep ->
      let* _ = write_endpoint ~actor rep stmt in
      Ok ()

let broadcast_write t ~actor stmt =
  let n = Array.length t.shards in
  let rec loop i =
    if i >= n then Ok ()
    else
      let* () = write_shard t ~actor i stmt in
      loop (i + 1)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Reads with failover                                                 *)

type role = R_primary | R_replica

let shard_site i = function
  | R_primary -> Printf.sprintf "shard.%d.primary" i
  | R_replica -> Printf.sprintf "shard.%d.replica" i

let is_shard_site s = String.length s >= 6 && String.sub s 0 6 = "shard."

(* [None] = this endpoint is down (fault/crash/transport); [Some r] =
   it answered, where [r] may still be a query-level error *)
let attempt ~actor i role ep stmt =
  try
    Fault.hit (shard_site i role);
    Some (exec_endpoint ~actor ep stmt)
  with
  | Fault.Injected _ -> None
  | Fault.Crash_point site when is_shard_site site -> None
  | Shard_down _ -> None

(* Read from shard [i]: primary behind its breaker, then replica.
   [None] = the whole shard is unavailable. *)
let shard_read t ~actor i stmt =
  let sh = t.shards.(i) in
  let primary_answer =
    if Breaker.allow sh.breaker then
      match attempt ~actor i R_primary sh.primary stmt with
      | Some r ->
          Breaker.success sh.breaker;
          Some r
      | None ->
          Breaker.failure sh.breaker;
          None
    else None
  in
  match primary_answer with
  | Some r -> Some r
  | None -> (
      Obs.add c_failovers 1;
      t.rep.r_failed_over <- t.rep.r_failed_over + 1;
      t.failovers_sum <- t.failovers_sum + 1;
      match sh.replica with
      | None -> None
      | Some rep -> attempt ~actor i R_replica rep stmt)

(* ------------------------------------------------------------------ *)
(* Scatter-gather SELECT                                               *)

let pcol_of t table = Hashtbl.find_opt t.pcols (String.lowercase_ascii table)

let conjunct_col ~alias = function
  | Ast.Col (None, c) -> Some c
  | Ast.Col (Some q, c)
    when String.lowercase_ascii q = String.lowercase_ascii alias ->
      Some c
  | _ -> None

(* WHERE pins the partition column to a literal -> one target shard *)
let prune t (select : Ast.select) =
  let n = Array.length t.shards in
  let all = List.init n Fun.id in
  match select.Ast.from with
  | [ (table, alias) ] -> (
      match pcol_of t table, select.Ast.where with
      | Some pcol, Some w -> (
          let hit =
            List.find_map
              (fun c ->
                match c with
                | Ast.Binop (Ast.Eq, lhs, Ast.Lit v)
                | Ast.Binop (Ast.Eq, Ast.Lit v, lhs) -> (
                    match conjunct_col ~alias lhs with
                    | Some c
                      when String.lowercase_ascii c = pcol && v <> D.Null ->
                        Some v
                    | _ -> None)
                | _ -> None)
              (Ast.conjuncts w)
          in
          match hit with
          | Some v ->
              Obs.add c_pruned 1;
              [ Partitioner.shard_of ~shards:n v ]
          | None -> all)
      | _ -> all)
  | _ -> all

let star_columns t ~actor (select : Ast.select) () =
  match select.Ast.from with
  | [ (table, _) ] -> (
      match Db.resolve t.mirror_db ~actor table with
      | Some (_, tbl) ->
          Ok
            (List.map
               (fun (c : Schema.column) -> c.Schema.name)
               (Schema.columns (Table.schema tbl)))
      | None -> Error (Printf.sprintf "unknown or unreadable table %s" table))
  | _ -> Error "multi-table star"

let has_index t ~actor (select : Ast.select) column =
  match select.Ast.from with
  | [ (table, _) ] -> (
      match Db.resolve t.mirror_db ~actor table with
      | Some (_, tbl) -> Table.has_index tbl ~column
      | None -> false)
  | _ -> false

(* gather rows from every target; any shard-level problem aborts the
   scatter (the caller answers from the mirror instead) *)
let gather t ~actor targets shard_select =
  let t0 = Obs.now_s () in
  let rec loop acc = function
    | [] ->
        Obs.observe h_gather (Obs.now_s () -. t0);
        Ok acc
    | i :: rest -> (
        match shard_read t ~actor i (Ast.Select shard_select) with
        | None -> Error (Printf.sprintf "shard %d unavailable" i)
        | Some (Error msg) -> Error (Printf.sprintf "shard %d: %s" i msg)
        | Some (Ok (Exec.Rows rs)) ->
            t.rep.r_gathered <- t.rep.r_gathered + 1;
            loop (acc @ rs.Exec.rows) rest
        | Some (Ok _) -> Error (Printf.sprintf "shard %d: unexpected reply" i))
  in
  loop [] targets

let scatter_select t ~actor select =
  Obs.add c_queries 1;
  t.rep.r_targets <- 0;
  t.rep.r_gathered <- 0;
  t.rep.r_failed_over <- 0;
  t.rep.r_fallback <- None;
  let fallback reason =
    Obs.add c_fallbacks 1;
    t.rep.r_fallback <- Some reason;
    Exec.run t.mirror_db ~actor (Ast.Select select)
  in
  Obs.with_span "shard.scatter" (fun () ->
      match
        Scatter.decompose
          ~star_columns:(star_columns t ~actor select)
          ~has_index:(has_index t ~actor select)
          select
      with
      | Scatter.Not_shardable reason -> fallback reason
      | Scatter.Plain p -> (
          let targets = prune t select in
          t.rep.r_targets <- List.length targets;
          Obs.add c_fanout (List.length targets);
          match gather t ~actor targets p.Scatter.p_shard with
          | Error reason -> fallback reason
          | Ok rows ->
              Obs.add c_gathered (List.length rows);
              let m0 = Obs.now_s () in
              let rs = Scatter.merge_plain p rows in
              Obs.observe h_merge (Obs.now_s () -. m0);
              Ok (Exec.Rows rs))
      | Scatter.Grouped g -> (
          let targets = prune t select in
          t.rep.r_targets <- List.length targets;
          Obs.add c_fanout (List.length targets);
          match gather t ~actor targets g.Scatter.g_shard with
          | Error reason -> fallback reason
          | Ok rows -> (
              Obs.add c_gathered (List.length rows);
              Obs.add c_merges 1;
              let m0 = Obs.now_s () in
              let merged =
                Scatter.merge_grouped ~udts:(Db.udts t.mirror_db) g rows
              in
              Obs.observe h_merge (Obs.now_s () -. m0);
              match merged with
              | Ok rs -> Ok (Exec.Rows rs)
              | Error reason ->
                  (* a coordinator-side evaluation error; the mirror
                     reproduces the canonical single-node message *)
                  fallback reason)))

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)

let plan_rows lines =
  Exec.Rows
    {
      Exec.columns = [ "QUERY PLAN" ];
      rows = List.map (fun l -> [| D.Str l |]) lines;
    }

let rows_to_lines (rs : Exec.result_set) =
  List.filter_map
    (fun row ->
      match row with [| D.Str s |] -> Some s | _ -> None)
    rs.Exec.rows

let explain_cluster t ~actor ~analyze select =
  let n = Array.length t.shards in
  let mirror_explain header =
    let* rs = Exec.explain t.mirror_db ~actor ~analyze select in
    Ok (plan_rows (header :: List.map (fun l -> "  " ^ l) (rows_to_lines rs)))
  in
  let decomposed =
    Scatter.decompose
      ~star_columns:(star_columns t ~actor select)
      ~has_index:(has_index t ~actor select)
      select
  in
  match decomposed with
  | Scatter.Not_shardable reason ->
      mirror_explain (Printf.sprintf "Gather-all (fallback: %s)" reason)
  | Scatter.Plain _ | Scatter.Grouped _ ->
      if analyze then begin
        let* outcome = scatter_select t ~actor select in
        let rep = last_report t in
        match rep.fallback with
        | Some reason ->
            mirror_explain (Printf.sprintf "Gather-all (fallback: %s)" reason)
        | None ->
            let rows_out =
              match outcome with
              | Exec.Rows rs -> List.length rs.Exec.rows
              | _ -> 0
            in
            let gather_line =
              match decomposed with
              | Scatter.Plain p ->
                  "Gather: merge on __grid"
                  ^ (if p.Scatter.p_order <> [] then "; sort" else "")
                  ^ (match p.Scatter.p_limit with
                    | Some l -> Printf.sprintf "; limit %d" l
                    | None -> "")
              | Scatter.Grouped _ ->
                  "Gather: merge partial aggregates; groups by first occurrence"
              | Scatter.Not_shardable _ -> ""
            in
            Ok
              (plan_rows
                 [
                   Printf.sprintf
                     "Scatter-gather (shards=%d gathered=%d failed-over=%d)" n
                     rep.gathered rep.failed_over;
                   "  " ^ gather_line;
                   Printf.sprintf "  rows=%d" rows_out;
                 ])
      end
      else begin
        let targets = prune t select in
        let partition =
          match select.Ast.from with
          | [ (table, _) ] -> (
              match pcol_of t table with Some c -> c | None -> "none")
          | _ -> "none"
        in
        let header =
          Printf.sprintf "Scatter-gather (shards=%d, targets=%d, partition=%s)"
            n (List.length targets) partition
        in
        let shard_select, gather_line =
          match decomposed with
          | Scatter.Plain p ->
              ( p.Scatter.p_shard,
                "Gather: merge on __grid"
                ^ (if p.Scatter.p_order <> [] then "; sort" else "")
                ^ (match p.Scatter.p_limit with
                  | Some l -> Printf.sprintf "; limit %d" l
                  | None -> "") )
          | Scatter.Grouped g ->
              ( g.Scatter.g_shard,
                "Gather: merge partial aggregates; groups by first occurrence"
              )
          | Scatter.Not_shardable _ -> assert false
        in
        let shard_plan =
          match targets with
          | [] -> [ "  (no targets)" ]
          | i0 :: _ -> (
              match
                write_endpoint ~actor t.shards.(i0).primary
                  (Ast.Explain { analyze = false; select = shard_select })
              with
              | Ok (Exec.Rows rs) ->
                  Printf.sprintf "  shard %d plan:" i0
                  :: List.map (fun l -> "    " ^ l) (rows_to_lines rs)
              | Ok _ | Error _ -> [ "  (shard plan unavailable)" ])
        in
        Ok (plan_rows ((header :: shard_plan) @ [ "  " ^ gather_line ]))
      end

(* ------------------------------------------------------------------ *)
(* Writes and DDL                                                      *)

let target_space ~actor =
  if actor = Db.loader_actor then Db.Public else Db.User actor

let reserved_column defs =
  List.exists
    (fun d -> String.lowercase_ascii d.Ast.col_name = Scatter.grid_col)
    defs

let run_insert t ~actor table columns rows =
  let env =
    {
      Eval.lookup = (fun _ n -> Error ("unknown column " ^ n));
      udts = Db.udts t.mirror_db;
    }
  in
  let schema = ref None in
  let get_schema () =
    match !schema with
    | Some s -> Some s
    | None -> (
        match Db.find_table t.mirror_db ~space:(target_space ~actor) table with
        | Some tbl ->
            let s = Table.schema tbl in
            schema := Some s;
            Some s
        | None -> None)
  in
  let partition_value exprs =
    (* evaluation cannot fail here: the mirror already accepted the row *)
    let values =
      List.map
        (fun e -> match Eval.eval env e with Ok v -> v | Error _ -> D.Null)
        exprs
    in
    match get_schema (), pcol_of t table with
    | Some schema, Some pcol -> (
        if columns = [] then
          match Schema.column_index schema pcol with
          | Some i when i < List.length values -> List.nth values i
          | _ -> D.Null
        else
          let rec find cols vals =
            match cols, vals with
            | c :: _, v :: _ when String.lowercase_ascii c = pcol -> v
            | _ :: cs, _ :: vs -> find cs vs
            | _ -> D.Null
          in
          find columns values)
    | _ -> D.Null
  in
  let shard_columns () =
    (if columns = [] then
       match get_schema () with
       | Some s ->
           List.map (fun (c : Schema.column) -> c.Schema.name)
             (Schema.columns s)
       | None -> []
     else columns)
    @ [ Scatter.grid_col ]
  in
  let rec insert_rows n = function
    | [] -> Ok (Exec.Affected n)
    | exprs :: rest -> (
        (* the mirror rules on each row first: its errors are the
           canonical single-node errors, and like the single-node
           engine, rows before a failing one stay applied *)
        match
          Exec.run t.mirror_db ~actor
            (Ast.Insert { table; columns; rows = [ exprs ] })
        with
        | Error _ as e -> e
        | Ok _ ->
            let v = partition_value exprs in
            let tgt =
              Partitioner.shard_of ~shards:(Array.length t.shards) v
            in
            let grid = t.next_grid in
            t.next_grid <- grid + 1;
            let stmt =
              Ast.Insert
                {
                  table;
                  columns = shard_columns ();
                  rows = [ exprs @ [ Ast.Lit (D.Int grid) ] ];
                }
            in
            let* () = write_shard t ~actor tgt stmt in
            insert_rows (n + 1) rest)
  in
  insert_rows 0 rows

let run t ~actor stmt =
  match stmt with
  | Ast.Select select -> scatter_select t ~actor select
  | Ast.Explain { analyze; select } -> explain_cluster t ~actor ~analyze select
  | Ast.Insert { table; columns; rows } -> run_insert t ~actor table columns rows
  | Ast.Create_table { table; defs } ->
      if reserved_column defs then
        Error
          (Printf.sprintf "column name %s is reserved by the sharding layer"
             Scatter.grid_col)
      else
        let* outcome = Exec.run t.mirror_db ~actor stmt in
        let pcol = Partitioner.partition_column defs in
        Hashtbl.replace t.pcols
          (String.lowercase_ascii table)
          (String.lowercase_ascii pcol);
        let shard_stmt =
          Ast.Create_table
            {
              table;
              defs =
                defs
                @ [
                    {
                      Ast.col_name = Scatter.grid_col;
                      col_type = D.TInt;
                      col_nullable = false;
                    };
                  ];
            }
        in
        let* () = broadcast_write t ~actor shard_stmt in
        Ok outcome
  | Ast.Drop_table table ->
      let* outcome = Exec.run t.mirror_db ~actor stmt in
      Hashtbl.remove t.pcols (String.lowercase_ascii table);
      let* () = broadcast_write t ~actor stmt in
      Ok outcome
  | Ast.Create_index _ | Ast.Create_genomic_index _ | Ast.Analyze _
  | Ast.Delete _ ->
      (* mirror first: if it rejects, no shard sees the statement; if
         it accepts, every shard (and replica) applies the same one *)
      let* outcome = Exec.run t.mirror_db ~actor stmt in
      let* () = broadcast_write t ~actor stmt in
      Ok outcome

let query t ~actor sql =
  let* stmt = Parser.parse sql in
  run t ~actor stmt

(* ------------------------------------------------------------------ *)
(* Merged statistics                                                   *)

let max_merged_buckets = 32

let merge_histograms hs =
  let entries =
    List.concat_map
      (fun (h : Table.histogram) ->
        List.init (Array.length h.Table.bounds) (fun i ->
            (h.Table.bounds.(i), h.Table.counts.(i))))
      hs
  in
  match entries with
  | [] -> None
  | _ ->
      let sorted =
        List.sort (fun (a, _) (b, _) -> D.compare_value a b) entries
      in
      let len = List.length sorted in
      let per = max 1 ((len + max_merged_buckets - 1) / max_merged_buckets) in
      let rec chunk acc cur cnt i = function
        | [] ->
            let acc =
              match cur with
              | Some b -> (b, cnt) :: acc
              | None -> acc
            in
            List.rev acc
        | (b, c) :: rest ->
            if (i + 1) mod per = 0 then
              chunk ((b, cnt + c) :: acc) None 0 (i + 1) rest
            else chunk acc (Some b) (cnt + c) (i + 1) rest
      in
      let merged = chunk [] None 0 0 sorted in
      Some
        {
          Table.bounds = Array.of_list (List.map fst merged);
          counts = Array.of_list (List.map snd merged);
        }

let merged_stats_text t ~actor ~table =
  let snapshots =
    Array.to_list t.shards
    |> List.filter_map (fun sh -> endpoint_db sh.primary)
    |> List.filter_map (fun db ->
           match Db.resolve db ~actor table with
           | Some (_, tbl) when Table.has_stats tbl ->
               Some (Table.stats_snapshot tbl)
           | _ -> None)
  in
  if snapshots = [] then
    Error
      (Printf.sprintf "no shard statistics for %s (run ANALYZE %s)" table
         table)
  else begin
    let columns =
      List.sort_uniq compare (List.concat_map (List.map fst) snapshots)
    in
    let buf = Buffer.create 256 in
    Printf.bprintf buf "merged statistics for %s across %d shard(s)\n" table
      (List.length snapshots);
    Printf.bprintf buf "%-16s %10s %10s %10s  %s\n" "column" "rows" "nulls"
      "buckets" "range";
    List.iter
      (fun col ->
        if col <> Scatter.grid_col then begin
          let stats =
            List.filter_map (fun snap -> List.assoc_opt col snap) snapshots
          in
          let rows =
            List.fold_left (fun a (s : Table.column_stats) -> a + s.rows) 0
              stats
          in
          let nulls =
            List.fold_left (fun a (s : Table.column_stats) -> a + s.nulls) 0
              stats
          in
          let mins = List.filter_map (fun s -> s.Table.min_value) stats in
          let maxs = List.filter_map (fun s -> s.Table.max_value) stats in
          let fold_best cmp = function
            | [] -> None
            | v :: rest ->
                Some
                  (List.fold_left
                     (fun m v -> if cmp (D.compare_value v m) then v else m)
                     v rest)
          in
          let mn = fold_best (fun c -> c < 0) mins in
          let mx = fold_best (fun c -> c > 0) maxs in
          let hist =
            merge_histograms
              (List.filter_map (fun s -> s.Table.histogram) stats)
          in
          let buckets =
            match hist with
            | Some h -> Array.length h.Table.bounds
            | None -> 0
          in
          let range =
            match mn, mx with
            | Some a, Some b ->
                Printf.sprintf "[%s .. %s]" (D.value_to_display a)
                  (D.value_to_display b)
            | _ -> "-"
          in
          Printf.bprintf buf "%-16s %10d %10d %10d  %s\n" col rows nulls
            buckets range
        end)
      columns;
    Ok (Buffer.contents buf)
  end
