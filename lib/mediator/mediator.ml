open Genalg_gdt
open Genalg_formats
module Source = Genalg_etl.Source
module Integrator = Genalg_etl.Integrator
module Delta = Genalg_etl.Delta
module Obs = Genalg_obs.Obs
module Lru = Genalg_cache.Lru
module Fault = Genalg_fault.Fault
module Resilience = Genalg_resilience.Resilience

let c_round_trips = Obs.counter "mediator.round_trips"
let c_records_shipped = Obs.counter "mediator.records_shipped"
let c_bytes_shipped = Obs.counter "mediator.bytes_shipped"
let c_source_failures = Obs.counter "mediator.source_failures"
let c_partial_answers = Obs.counter "mediator.partial_answers"

type query = {
  organism : string option;
  min_length : int option;
  contains_motif : string option;
}

let query_all = { organism = None; min_length = None; contains_motif = None }

type source_status =
  | Served
  | Retried of int
  | Skipped_open_circuit
  | Failed of string

let status_to_string = function
  | Served -> "ok"
  | Retried n -> Printf.sprintf "retried(%d)" n
  | Skipped_open_circuit -> "skipped-open-circuit"
  | Failed msg -> Printf.sprintf "failed(%s)" msg

let status_ok = function
  | Served | Retried _ -> true
  | Skipped_open_circuit | Failed _ -> false

type source_timing = {
  source : string;
  network_s : float;
  wall_s : float;
  shipped : int;
  bytes : int;
  from_cache : bool;
  status : source_status;
}

type timing = {
  simulated_network_s : float;
  sources_contacted : int;
  sources_answered : int;
  records_shipped : int;
  per_source : source_timing list;
}

(* one cached source response: post-pushdown entries, keyed below by
   (source name, pushed-down organism) *)
type cached = {
  entries : Entry.t list;
  expires_s : float; (* Obs.now_s deadline *)
}

type t = {
  sources : Source.t list;
  latency_s : float;
  bytes_per_second : float;
  cache : (string * string option, cached) Lru.t option;
  ttl_s : float;
  resilience : Resilience.policy option;
  breakers : (string, Resilience.Breaker.t) Hashtbl.t;
  mutable listener : int option; (* Delta.on_change token *)
}

let breaker_for t source =
  let name = Source.name source in
  match Hashtbl.find_opt t.breakers name with
  | Some b -> b
  | None ->
      let b = Resilience.Breaker.create () in
      Hashtbl.add t.breakers name b;
      b

let breaker_states t =
  Hashtbl.fold (fun name b acc -> (name, Resilience.Breaker.state b) :: acc)
    t.breakers []
  |> List.sort compare

let invalidate_source t name =
  match t.cache with
  | None -> 0
  | Some c -> Lru.invalidate_where c (fun (src, _) _ -> src = name)

let detach t =
  match t.listener with
  | Some id ->
      Delta.unsubscribe id;
      t.listener <- None
  | None -> ()

let create ?(latency_s = 0.02) ?(bytes_per_second = 10e6) ?cache_ttl_s
    ?resilience sources =
  let cache =
    Option.map
      (fun _ -> Lru.create ~name:"mediator" ~max_entries:256 ())
      cache_ttl_s
  in
  let t =
    { sources; latency_s; bytes_per_second; cache;
      ttl_s = Option.value cache_ttl_s ~default:0.;
      resilience; breakers = Hashtbl.create 7; listener = None }
  in
  (* ETL change detection drives explicit invalidation: whenever a
     monitor publishes deltas for a source, its cached responses die *)
  if cache <> None then
    t.listener <-
      Some (Delta.on_change (fun ~source _deltas -> ignore (invalidate_source t source)));
  t

(* One remote access. Injected faults and any other source-side
   exception surface as [Error] so the fan-out can record them per
   source instead of dying. *)
let fetch_entries source =
  match
    match Source.query_all source with
    | Ok entries -> Ok entries
    | Error _ ->
        (* not queryable: pull and re-parse its dump (wrapper work);
           corrupt/truncated dumps fail in the parser *)
        Source.parse_dump (Source.representation source) (Source.dump source)
  with
  | result -> result
  | exception Fault.Injected (_, msg) -> Error msg
  | exception exn -> Error (Printexc.to_string exn)

let entry_bytes (e : Entry.t) =
  (* wire size approximation: sequence plus annotation text *)
  Sequence.length e.Entry.sequence + 200 + (80 * List.length e.Entry.features)

let client_side_filter q (e : Entry.t) =
  (match q.min_length with
  | Some n -> Sequence.length e.Entry.sequence >= n
  | None -> true)
  && (match q.contains_motif with
     | Some motif -> Sequence.contains ~pattern:motif e.Entry.sequence
     | None -> true)

let run ?(reconcile = true) t q =
  Obs.with_span "mediator.query" @@ fun () ->
  let network = ref 0. in
  let shipped = ref 0 in
  let per_source = ref [] in
  let gathered =
    List.concat_map
      (fun source ->
        Obs.with_span
          ~attrs:[ ("source", Source.name source) ]
          "mediator.source"
        @@ fun () ->
        let t0 = Obs.now_s () in
        let key = (Source.name source, q.organism) in
        let site = Source.fault_site source in
        let cached =
          match t.cache with
          | None -> None
          | Some c ->
              Lru.find_validated c key ~validate:(fun e ->
                  e.expires_s > Obs.now_s ())
        in
        let source_filtered, bytes, src_network, from_cache, status =
          match cached with
          | Some e ->
              (e.entries, 0, 0., true, Served) (* no round trip *)
          | None ->
              (* simulated network time for this source, accumulated
                 across attempts (failed attempts still cost latency) *)
              let net = ref 0. in
              let attempt () =
                Obs.add c_round_trips 1;
                let lat = t.latency_s +. Fault.latency_s site in
                let timeout =
                  Option.bind t.resilience (fun p -> p.Resilience.timeout_s)
                in
                match timeout with
                | Some tmo when lat > tmo ->
                    (* we stop waiting at the deadline *)
                    net := !net +. tmo;
                    Error (Printf.sprintf "timeout after %.3g s" tmo)
                | _ -> (
                    net := !net +. lat;
                    match fetch_entries source with
                    | Error _ as e -> e
                    | Ok entries ->
                        (* the source only understands organism equality *)
                        let source_filtered =
                          match q.organism with
                          | None -> entries
                          | Some org ->
                              List.filter
                                (fun (e : Entry.t) -> e.Entry.organism = org)
                                entries
                        in
                        let bytes =
                          List.fold_left
                            (fun acc e -> acc + entry_bytes e)
                            0 source_filtered
                        in
                        net := !net +. (float_of_int bytes /. t.bytes_per_second);
                        Ok (source_filtered, bytes))
              in
              let fetched, status =
                match t.resilience with
                | None -> (
                    (* no retries, but a failing source still cannot
                       abort the fan-out *)
                    match attempt () with
                    | Ok _ as ok -> (ok, Served)
                    | Error msg as e -> (e, Failed msg))
                | Some policy ->
                    let breaker = breaker_for t source in
                    if not (Resilience.Breaker.allow breaker) then
                      (Error "open circuit", Skipped_open_circuit)
                    else begin
                      let seed =
                        let s = Fault.seed () in
                        if s = 0 then 1 else s
                      in
                      let o = Resilience.run ~policy ~seed ~site attempt in
                      (* simulated backoff waiting is network-side time *)
                      net := !net +. o.Resilience.backoff_s;
                      match o.Resilience.result with
                      | Ok _ as ok ->
                          Resilience.Breaker.success breaker;
                          ( ok,
                            if o.Resilience.attempts > 1 then
                              Retried (o.Resilience.attempts - 1)
                            else Served )
                      | Error msg as e ->
                          Resilience.Breaker.failure breaker;
                          (e, Failed msg)
                    end
              in
              network := !network +. !net;
              (match fetched with
              | Ok (source_filtered, bytes) ->
                  shipped := !shipped + List.length source_filtered;
                  Obs.add c_records_shipped (List.length source_filtered);
                  Obs.add c_bytes_shipped bytes;
                  (match t.cache with
                  | Some c ->
                      Lru.put c key
                        { entries = source_filtered;
                          expires_s = Obs.now_s () +. t.ttl_s }
                  | None -> ());
                  (source_filtered, bytes, !net, false, status)
              | Error _ ->
                  Obs.add c_source_failures 1;
                  ([], 0, !net, false, status))
        in
        per_source :=
          { source = Source.name source;
            network_s = src_network;
            wall_s = Obs.now_s () -. t0;
            shipped = (if from_cache then 0 else List.length source_filtered);
            bytes;
            from_cache;
            status }
          :: !per_source;
        List.map (fun e -> (Source.name source, e)) source_filtered)
      t.sources
  in
  (* remaining predicates run in the middleware *)
  let filtered = List.filter (fun (_, e) -> client_side_filter q e) gathered in
  let results =
    if not reconcile then List.map snd filtered
    else begin
      (* per-query duplicate elimination: the cost the warehouse pays once *)
      let merged = Integrator.reconcile ~threshold:0.6 filtered in
      List.map (fun (m : Integrator.merged) -> m.Integrator.canonical) merged
    end
  in
  let per_source = List.rev !per_source in
  let answered =
    List.length (List.filter (fun st -> status_ok st.status) per_source)
  in
  if answered < List.length per_source then Obs.add c_partial_answers 1;
  ( results,
    {
      simulated_network_s = !network;
      sources_contacted = List.length t.sources;
      sources_answered = answered;
      records_shipped = !shipped;
      per_source;
    } )
