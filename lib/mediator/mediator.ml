open Genalg_gdt
open Genalg_formats
module Source = Genalg_etl.Source
module Integrator = Genalg_etl.Integrator
module Delta = Genalg_etl.Delta
module Obs = Genalg_obs.Obs
module Lru = Genalg_cache.Lru

let c_round_trips = Obs.counter "mediator.round_trips"
let c_records_shipped = Obs.counter "mediator.records_shipped"
let c_bytes_shipped = Obs.counter "mediator.bytes_shipped"

type query = {
  organism : string option;
  min_length : int option;
  contains_motif : string option;
}

let query_all = { organism = None; min_length = None; contains_motif = None }

type source_timing = {
  source : string;
  network_s : float;
  wall_s : float;
  shipped : int;
  bytes : int;
  from_cache : bool;
}

type timing = {
  simulated_network_s : float;
  sources_contacted : int;
  records_shipped : int;
  per_source : source_timing list;
}

(* one cached source response: post-pushdown entries, keyed below by
   (source name, pushed-down organism) *)
type cached = {
  entries : Entry.t list;
  expires_s : float; (* Obs.now_s deadline *)
}

type t = {
  sources : Source.t list;
  latency_s : float;
  bytes_per_second : float;
  cache : (string * string option, cached) Lru.t option;
  ttl_s : float;
  mutable listener : int option; (* Delta.on_change token *)
}

let invalidate_source t name =
  match t.cache with
  | None -> 0
  | Some c -> Lru.invalidate_where c (fun (src, _) _ -> src = name)

let detach t =
  match t.listener with
  | Some id ->
      Delta.unsubscribe id;
      t.listener <- None
  | None -> ()

let create ?(latency_s = 0.02) ?(bytes_per_second = 10e6) ?cache_ttl_s sources =
  let cache =
    Option.map
      (fun _ -> Lru.create ~name:"mediator" ~max_entries:256 ())
      cache_ttl_s
  in
  let t =
    { sources; latency_s; bytes_per_second; cache;
      ttl_s = Option.value cache_ttl_s ~default:0.; listener = None }
  in
  (* ETL change detection drives explicit invalidation: whenever a
     monitor publishes deltas for a source, its cached responses die *)
  if cache <> None then
    t.listener <-
      Some (Delta.on_change (fun ~source _deltas -> ignore (invalidate_source t source)));
  t

let entries_of source =
  match Source.query_all source with
  | Ok entries -> entries
  | Error _ -> (
      match Source.parse_dump (Source.representation source) (Source.dump source) with
      | Ok entries -> entries
      | Error _ -> [])

let entry_bytes (e : Entry.t) =
  (* wire size approximation: sequence plus annotation text *)
  Sequence.length e.Entry.sequence + 200 + (80 * List.length e.Entry.features)

let client_side_filter q (e : Entry.t) =
  (match q.min_length with
  | Some n -> Sequence.length e.Entry.sequence >= n
  | None -> true)
  && (match q.contains_motif with
     | Some motif -> Sequence.contains ~pattern:motif e.Entry.sequence
     | None -> true)

let run ?(reconcile = true) t q =
  Obs.with_span "mediator.query" @@ fun () ->
  let network = ref 0. in
  let shipped = ref 0 in
  let per_source = ref [] in
  let gathered =
    List.concat_map
      (fun source ->
        Obs.with_span
          ~attrs:[ ("source", Source.name source) ]
          "mediator.source"
        @@ fun () ->
        let t0 = Obs.now_s () in
        let key = (Source.name source, q.organism) in
        let cached =
          match t.cache with
          | None -> None
          | Some c ->
              Lru.find_validated c key ~validate:(fun e ->
                  e.expires_s > Obs.now_s ())
        in
        let source_filtered, bytes, from_cache =
          match cached with
          | Some e -> (e.entries, 0, true) (* no round trip, nothing shipped *)
          | None ->
              (* one round-trip per source *)
              Obs.add c_round_trips 1;
              let src_network = ref t.latency_s in
              let entries = entries_of source in
              (* the source only understands organism equality *)
              let source_filtered =
                match q.organism with
                | None -> entries
                | Some org ->
                    List.filter (fun (e : Entry.t) -> e.Entry.organism = org) entries
              in
              let bytes =
                List.fold_left (fun acc e -> acc + entry_bytes e) 0 source_filtered
              in
              src_network := !src_network +. (float_of_int bytes /. t.bytes_per_second);
              network := !network +. !src_network;
              shipped := !shipped + List.length source_filtered;
              Obs.add c_records_shipped (List.length source_filtered);
              Obs.add c_bytes_shipped bytes;
              (match t.cache with
              | Some c ->
                  Lru.put c key
                    { entries = source_filtered;
                      expires_s = Obs.now_s () +. t.ttl_s }
              | None -> ());
              (source_filtered, bytes, false)
        in
        per_source :=
          { source = Source.name source;
            network_s =
              (if from_cache then 0.
               else t.latency_s +. (float_of_int bytes /. t.bytes_per_second));
            wall_s = Obs.now_s () -. t0;
            shipped = (if from_cache then 0 else List.length source_filtered);
            bytes;
            from_cache }
          :: !per_source;
        List.map (fun e -> (Source.name source, e)) source_filtered)
      t.sources
  in
  (* remaining predicates run in the middleware *)
  let filtered = List.filter (fun (_, e) -> client_side_filter q e) gathered in
  let results =
    if not reconcile then List.map snd filtered
    else begin
      (* per-query duplicate elimination: the cost the warehouse pays once *)
      let merged = Integrator.reconcile ~threshold:0.6 filtered in
      List.map (fun (m : Integrator.merged) -> m.Integrator.canonical) merged
    end
  in
  ( results,
    {
      simulated_network_s = !network;
      sources_contacted = List.length t.sources;
      records_shipped = !shipped;
      per_source = List.rev !per_source;
    } )
