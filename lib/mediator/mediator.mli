(** The query-driven (mediator/wrapper) integration baseline of the
    paper's Figure 1 — the architecture the Unifying Database is argued
    to outperform.

    Each query is decomposed and shipped to every source behind a
    simulated network round-trip; sources expose only a limited interface
    (organism equality — the paper's C6: "interactions … are limited to
    the functions available in the user interface of that repository"),
    so all remaining predicates run client-side over the shipped,
    re-parsed records, and duplicate elimination happens per query.

    Simulated time (latency + transfer) is accounted separately from real
    compute time so experiments can report both. *)

open Genalg_formats

type query = {
  organism : string option;       (** pushed down to the sources *)
  min_length : int option;        (** client-side *)
  contains_motif : string option; (** client-side *)
}

val query_all : query
(** No predicates. *)

(** How each source fared during a fan-out. A query never raises because
    of one bad source: failures are recorded here and the query answers
    from whatever sources did respond. *)
type source_status =
  | Served                (** answered on the first attempt *)
  | Retried of int        (** answered after this many retries *)
  | Skipped_open_circuit  (** not contacted: its circuit breaker is open *)
  | Failed of string      (** all attempts failed (last error message) *)

val status_to_string : source_status -> string
val status_ok : source_status -> bool
(** [Served] and [Retried _] contributed records. *)

type source_timing = {
  source : string;
  network_s : float;  (** simulated network time charged to this source:
                          per-attempt round-trips (failed ones included),
                          transfer, injected latency and retry backoff *)
  wall_s : float;     (** real compute time spent querying this source *)
  shipped : int;      (** records this source shipped *)
  bytes : int;        (** approximate wire bytes shipped *)
  from_cache : bool;  (** served from the response cache: no round trip,
                          [network_s] and [shipped] are zero *)
  status : source_status;
}

type timing = {
  simulated_network_s : float;  (** round-trips + per-byte transfer *)
  sources_contacted : int;
  sources_answered : int;       (** sources with {!status_ok} statuses *)
  records_shipped : int;
  per_source : source_timing list;  (** one entry per source, in order *)
}

type t

val create :
  ?latency_s:float ->
  ?bytes_per_second:float ->
  ?cache_ttl_s:float ->
  ?resilience:Genalg_resilience.Resilience.policy ->
  Genalg_etl.Source.t list ->
  t
(** Wrap sources for mediation. Default latency 0.02 s per round-trip,
    transfer 10 MB/s.

    [resilience] switches on retries with deterministic backoff, a
    per-attempt timeout against simulated latency, and one circuit
    breaker per source (see {!Genalg_resilience.Resilience}): failing
    sources are retried within the policy's budget, and a source that
    keeps failing trips its breaker and is skipped (recorded as
    {!Skipped_open_circuit}) until the call-counted cooldown lets a
    probe through. Off by default: each source gets exactly one attempt
    — but even then a raising source is caught and reported as
    {!Failed}, never allowed to abort the fan-out.

    [cache_ttl_s] switches on the per-source response cache ([cache.mediator.*]
    instruments): each (source, pushed-down organism) response is kept for
    that many seconds and dropped early when ETL change detection publishes
    deltas for the source ({!Genalg_etl.Delta.on_change}). Off by default —
    the paper's Figure-1 baseline pays every round trip, and the F1
    experiment measures it that way. A caching mediator is registered with
    the delta notifier; call {!detach} when discarding it. *)

val invalidate_source : t -> string -> int
(** Drop every cached response from the named source; returns the number
    dropped (counted under [cache.mediator.invalidations]). No-op without
    a cache. *)

val detach : t -> unit
(** Unsubscribe from delta notifications (no-op if not subscribed). *)

val breaker_states :
  t -> (string * Genalg_resilience.Resilience.Breaker.state) list
(** Per-source circuit-breaker states, sorted by source name. Empty
    until a resilience-enabled mediator has contacted sources. *)

val run : ?reconcile:bool -> t -> query -> Entry.t list * timing
(** Execute a query: ship to every source (each contributes a dump parsed
    client-side, the paper's wrapper work), filter, optionally
    deduplicate across sources ([reconcile], default true, pairs entries
    with {!Genalg_etl.Integrator.pair_score} ≥ 0.6 and keeps one).

    Degradation: a source that fails (or whose breaker is open) simply
    contributes no records; its {!source_timing.status} says why, and
    the query still answers from the rest ([mediator.partial_answers]
    counts such queries, [mediator.source_failures] each dead source).

    Observability: runs under a [mediator.query] span with one
    [mediator.source] child span per source contacted; every attempt
    bumps [mediator.round_trips] and successful ones add to
    [mediator.records_shipped] and [mediator.bytes_shipped]. The
    returned {!timing.per_source} list gives the same breakdown without
    enabling the metrics layer. *)
