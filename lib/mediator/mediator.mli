(** The query-driven (mediator/wrapper) integration baseline of the
    paper's Figure 1 — the architecture the Unifying Database is argued
    to outperform.

    Each query is decomposed and shipped to every source behind a
    simulated network round-trip; sources expose only a limited interface
    (organism equality — the paper's C6: "interactions … are limited to
    the functions available in the user interface of that repository"),
    so all remaining predicates run client-side over the shipped,
    re-parsed records, and duplicate elimination happens per query.

    Simulated time (latency + transfer) is accounted separately from real
    compute time so experiments can report both. *)

open Genalg_formats

type query = {
  organism : string option;       (** pushed down to the sources *)
  min_length : int option;        (** client-side *)
  contains_motif : string option; (** client-side *)
}

val query_all : query
(** No predicates. *)

type source_timing = {
  source : string;
  network_s : float;  (** simulated round-trip + transfer for this source *)
  wall_s : float;     (** real compute time spent querying this source *)
  shipped : int;      (** records this source shipped *)
  bytes : int;        (** approximate wire bytes shipped *)
  from_cache : bool;  (** served from the response cache: no round trip,
                          [network_s] and [shipped] are zero *)
}

type timing = {
  simulated_network_s : float;  (** round-trips + per-byte transfer *)
  sources_contacted : int;
  records_shipped : int;
  per_source : source_timing list;  (** one entry per source, in order *)
}

type t

val create :
  ?latency_s:float ->
  ?bytes_per_second:float ->
  ?cache_ttl_s:float ->
  Genalg_etl.Source.t list ->
  t
(** Wrap sources for mediation. Default latency 0.02 s per round-trip,
    transfer 10 MB/s.

    [cache_ttl_s] switches on the per-source response cache ([cache.mediator.*]
    instruments): each (source, pushed-down organism) response is kept for
    that many seconds and dropped early when ETL change detection publishes
    deltas for the source ({!Genalg_etl.Delta.on_change}). Off by default —
    the paper's Figure-1 baseline pays every round trip, and the F1
    experiment measures it that way. A caching mediator is registered with
    the delta notifier; call {!detach} when discarding it. *)

val invalidate_source : t -> string -> int
(** Drop every cached response from the named source; returns the number
    dropped (counted under [cache.mediator.invalidations]). No-op without
    a cache. *)

val detach : t -> unit
(** Unsubscribe from delta notifications (no-op if not subscribed). *)

val run : ?reconcile:bool -> t -> query -> Entry.t list * timing
(** Execute a query: ship to every source (each contributes a dump parsed
    client-side, the paper's wrapper work), filter, optionally
    deduplicate across sources ([reconcile], default true, pairs entries
    with {!Genalg_etl.Integrator.pair_score} ≥ 0.6 and keeps one).

    Observability: runs under a [mediator.query] span with one
    [mediator.source] child span per source contacted; every contact
    bumps [mediator.round_trips] and adds to [mediator.records_shipped]
    and [mediator.bytes_shipped]. The returned {!timing.per_source} list
    gives the same breakdown without enabling the metrics layer. *)
