(** Engine-wide observability: monotonic-clock spans, counters, histograms,
    a process-wide instrument registry, and pluggable span sinks.

    The paper's §6.5 optimizer hooks and the warehouse-vs-mediator claims
    (Figures 1–3) only become measurable experiments when the engine can
    report what it is doing; this module is the single place every layer
    (storage, sqlx, etl, mediator) records into. Every instrument name the
    engine emits is documented in [docs/OBSERVABILITY.md].

    Design:
    - Instruments are registered process-wide by name; calling {!counter}
      or {!histogram} twice with the same name returns the same instrument.
    - Recording is gated on a global flag (off by default). With the flag
      off, {!add}, {!observe} and {!with_span} cost a single branch, so the
      instrumented hot paths regress by well under the 5% overhead budget.
    - Completed spans are fanned out to registered sinks (in-memory for
      tests, JSON lines for tracing) and aggregated into a histogram of the
      same name (unit: seconds), so span timings also appear in
      {!render_table} snapshots. *)

(** {1 Global switch} *)

val set_enabled : bool -> unit
(** Turn recording on or off (default: off). Instruments keep their
    accumulated values when recording is switched off. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered instrument and reset span nesting. Instruments
    stay registered; sinks stay attached. Intended for tests and for
    delimiting measurement windows. *)

(** {1 Clock} *)

val now_s : unit -> float
(** Monotonic clock reading in seconds ([CLOCK_MONOTONIC]; arbitrary
    epoch — only differences are meaningful). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Get or create the process-wide counter registered under this name.
    Raises [Invalid_argument] if the name is registered as a histogram. *)

val add : counter -> int -> unit
(** Add to a counter. No-op while recording is disabled. *)

val value : counter -> int

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Get or create the process-wide histogram registered under this name.
    Raises [Invalid_argument] if the name is registered as a counter. *)

val observe : histogram -> float -> unit
(** Record one observation. No-op while recording is disabled. *)

type hist_stats = {
  n : int;
  sum : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
  mean : float; (** [nan] when empty *)
}

val stats : histogram -> hist_stats

val buckets : histogram -> (float * int) list
(** Exponential (powers-of-two from 1 µs) bucket upper bounds with their
    occupancy; only non-empty buckets are returned. *)

(** {1 Spans} *)

type span = {
  span_name : string;
  attrs : (string * string) list;
  depth : int;       (** nesting depth at entry; 0 = top-level *)
  start_s : float;   (** {!now_s} at entry *)
  elapsed_s : float;
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] between two monotonic-clock reads,
    delivers the completed {!span} to every sink, and observes the elapsed
    seconds into the histogram registered under [name]. Nesting is tracked
    with a process-wide depth. The span is recorded even if [f] raises;
    the exception is re-raised. With recording disabled this is just
    [f ()]. *)

(** {1 Sinks} *)

type sink

val memory_sink : unit -> sink * (unit -> span list)
(** An in-memory sink for tests: returns the sink and a function yielding
    every span delivered so far, in completion order. *)

val json_sink : name:string -> (string -> unit) -> sink
(** [json_sink ~name emit] delivers each span as one JSON object per line
    through [emit] (JSON-lines, suitable for piping to a file). *)

val add_sink : sink -> unit
(** Attach a sink. A sink with the same name replaces the previous one. *)

val remove_sink : string -> unit
val sink_names : unit -> string list

val span_to_json : span -> string

(** {1 Registry snapshots} *)

type entry = {
  name : string;
  kind : [ `Counter | `Histogram ];
  count : int;   (** counter value, or histogram observation count *)
  sum : float;   (** histogram sum (counters: the value again) *)
  min_v : float;
  max_v : float;
}

val snapshot : ?prefix:string -> unit -> entry list
(** Every registered instrument (optionally those whose name starts with
    [prefix]), sorted by name. *)

val render_table : ?prefix:string -> unit -> string
(** Human-readable table of the registry snapshot: one instrument per
    line with kind, count, sum/mean/min/max (histogram times are shown in
    milliseconds when the name looks like a span duration). *)

val render_json : ?prefix:string -> unit -> string
(** The registry snapshot as JSON lines (one instrument per line). *)
