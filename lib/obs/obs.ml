let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* ------------------------------------------------------------------ *)
(* Instruments and the process-wide registry                           *)

type counter = { c_name : string; mutable c_value : int }

(* exponential buckets: powers of two starting at 1e-6 *)
let n_buckets = 32
let bucket_base = 1e-6

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type instrument = C of counter | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some (H _) ->
      invalid_arg (Printf.sprintf "Obs.counter: %s is registered as a histogram" name)
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add registry name (C c);
      c

let add c by = if !enabled_flag then c.c_value <- c.c_value + by
let value c = c.c_value

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some (C _) ->
      invalid_arg (Printf.sprintf "Obs.histogram: %s is registered as a counter" name)
  | None ->
      let h =
        { h_name = name; h_count = 0; h_sum = 0.; h_min = nan; h_max = nan;
          h_buckets = Array.make n_buckets 0 }
      in
      Hashtbl.add registry name (H h);
      h

let bucket_of v =
  if v <= bucket_base then 0
  else
    let i = 1 + int_of_float (Float.log2 (v /. bucket_base)) in
    if i >= n_buckets then n_buckets - 1 else i

let observe h v =
  if !enabled_flag then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if h.h_count = 1 || v < h.h_min then h.h_min <- v;
    if h.h_count = 1 || v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1
  end

type hist_stats = { n : int; sum : float; min : float; max : float; mean : float }

let stats h =
  { n = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max;
    mean = (if h.h_count = 0 then nan else h.h_sum /. float_of_int h.h_count) }

let buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      acc := (bucket_base *. (2. ** float_of_int i), h.h_buckets.(i)) :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Spans and sinks                                                     *)

type span = {
  span_name : string;
  attrs : (string * string) list;
  depth : int;
  start_s : float;
  elapsed_s : float;
}

type sink = { sink_name : string; emit : span -> unit }

let sinks : sink list ref = ref []

let add_sink s =
  sinks := s :: List.filter (fun x -> x.sink_name <> s.sink_name) !sinks

let remove_sink name = sinks := List.filter (fun x -> x.sink_name <> name) !sinks
let sink_names () = List.map (fun s -> s.sink_name) !sinks

let memory_sink () =
  let acc = ref [] in
  ( { sink_name = "memory"; emit = (fun sp -> acc := sp :: !acc) },
    fun () -> List.rev !acc )

(* %S produces valid JSON for the ASCII instrument/attribute names used
   throughout the engine *)
let span_to_json sp =
  let attrs =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%S:%S" k v) sp.attrs)
  in
  Printf.sprintf
    {|{"type":"span","name":%S,"depth":%d,"start_s":%.9f,"elapsed_s":%.9f,"attrs":{%s}}|}
    sp.span_name sp.depth sp.start_s sp.elapsed_s attrs

let json_sink ~name emit = { sink_name = name; emit = (fun sp -> emit (span_to_json sp)) }

let span_depth = ref 0

let with_span ?(attrs = []) name f =
  if not !enabled_flag then f ()
  else begin
    let d = !span_depth in
    span_depth := d + 1;
    let t0 = now_s () in
    let finish () =
      let elapsed = now_s () -. t0 in
      span_depth := d;
      observe (histogram name) elapsed;
      let sp = { span_name = name; attrs; depth = d; start_s = t0; elapsed_s = elapsed } in
      List.iter (fun s -> s.emit sp) !sinks
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let reset () =
  span_depth := 0;
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | C c -> c.c_value <- 0
      | H h ->
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- nan;
          h.h_max <- nan;
          Array.fill h.h_buckets 0 n_buckets 0)
    registry

type entry = {
  name : string;
  kind : [ `Counter | `Histogram ];
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
}

let snapshot ?(prefix = "") () =
  Hashtbl.fold
    (fun name inst acc ->
      if not (String.starts_with ~prefix name) then acc
      else
        let e =
          match inst with
          | C c ->
              { name; kind = `Counter; count = c.c_value;
                sum = float_of_int c.c_value; min_v = nan; max_v = nan }
          | H h -> { name; kind = `Histogram; count = h.h_count; sum = h.h_sum;
                     min_v = h.h_min; max_v = h.h_max }
        in
        e :: acc)
    registry []
  |> List.sort (fun a b -> String.compare a.name b.name)

let fmt_s t =
  if Float.is_nan t then "-"
  else if t >= 1. then Printf.sprintf "%.2f s" t
  else if t >= 1e-3 then Printf.sprintf "%.2f ms" (t *. 1e3)
  else if t >= 1e-6 then Printf.sprintf "%.1f us" (t *. 1e6)
  else Printf.sprintf "%.0f ns" (t *. 1e9)

let render_table ?prefix () =
  let entries = snapshot ?prefix () in
  let header = [ "instrument"; "kind"; "count"; "sum"; "mean"; "min"; "max" ] in
  let rows =
    List.map
      (fun e ->
        match e.kind with
        | `Counter -> [ e.name; "counter"; string_of_int e.count; "-"; "-"; "-"; "-" ]
        | `Histogram ->
            let mean = if e.count = 0 then nan else e.sum /. float_of_int e.count in
            [ e.name; "histogram"; string_of_int e.count;
              (if e.count = 0 then "-" else fmt_s e.sum); fmt_s mean;
              fmt_s e.min_v; fmt_s e.max_v ])
      entries
  in
  let all = header :: rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell ->
         if i < ncols then widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render row =
    "  "
    ^ String.concat "  "
        (List.mapi (fun i c -> c ^ String.make (widths.(i) - String.length c) ' ') row)
  in
  String.concat "\n"
    (render header
     :: render (List.map (fun w -> String.make w '-') (Array.to_list widths))
     :: List.map render rows)

let render_json ?prefix () =
  String.concat "\n"
    (List.map
       (fun e ->
         match e.kind with
         | `Counter ->
             Printf.sprintf {|{"type":"counter","name":%S,"value":%d}|} e.name e.count
         | `Histogram ->
             Printf.sprintf
               {|{"type":"histogram","name":%S,"count":%d,"sum":%.9f,"min":%s,"max":%s}|}
               e.name e.count e.sum
               (if Float.is_nan e.min_v then "null" else Printf.sprintf "%.9f" e.min_v)
               (if Float.is_nan e.max_v then "null" else Printf.sprintf "%.9f" e.max_v))
       (snapshot ?prefix ()))
