open Genalg_gdt
module Core = Genalg_core
module St = Genalg_storage

let storable_udts =
  [ "dna"; "rna"; "proteinseq"; "gene"; "primarytranscript"; "mrna"; "protein" ]

let dtype_of_sort = function
  | Core.Sort.Bool -> Some St.Dtype.TBool
  | Core.Sort.Int -> Some St.Dtype.TInt
  | Core.Sort.Float -> Some St.Dtype.TFloat
  | Core.Sort.String -> Some St.Dtype.TString
  | Core.Sort.Dna -> Some (St.Dtype.TOpaque "dna")
  | Core.Sort.Rna -> Some (St.Dtype.TOpaque "rna")
  | Core.Sort.Protein_seq -> Some (St.Dtype.TOpaque "proteinseq")
  | Core.Sort.Gene -> Some (St.Dtype.TOpaque "gene")
  | Core.Sort.Primary_transcript -> Some (St.Dtype.TOpaque "primarytranscript")
  | Core.Sort.Mrna -> Some (St.Dtype.TOpaque "mrna")
  | Core.Sort.Protein -> Some (St.Dtype.TOpaque "protein")
  | Core.Sort.Nucleotide | Core.Sort.Amino_acid | Core.Sort.Chromosome
  | Core.Sort.Genome | Core.Sort.List _ | Core.Sort.Uncertain _ ->
      None

let seq_payload expected_alphabet data =
  match Sequence.of_bytes data with
  | Error _ as e -> e
  | Ok s ->
      if Sequence.alphabet s = expected_alphabet then Ok s
      else Error "sequence payload has the wrong alphabet"

let to_db = function
  | Core.Value.VBool b -> Ok (St.Dtype.Bool b)
  | Core.Value.VInt i -> Ok (St.Dtype.Int i)
  | Core.Value.VFloat f -> Ok (St.Dtype.Float f)
  | Core.Value.VString s -> Ok (St.Dtype.Str s)
  | Core.Value.VDna s -> Ok (St.Dtype.Opaque ("dna", Sequence.to_bytes s))
  | Core.Value.VRna s -> Ok (St.Dtype.Opaque ("rna", Sequence.to_bytes s))
  | Core.Value.VProtein_seq s -> Ok (St.Dtype.Opaque ("proteinseq", Sequence.to_bytes s))
  | Core.Value.VGene g -> Ok (St.Dtype.Opaque ("gene", Codec.encode_gene g))
  | Core.Value.VPrimary p ->
      Ok (St.Dtype.Opaque ("primarytranscript", Codec.encode_primary p))
  | Core.Value.VMrna m -> Ok (St.Dtype.Opaque ("mrna", Codec.encode_mrna m))
  | Core.Value.VProtein p -> Ok (St.Dtype.Opaque ("protein", Codec.encode_protein p))
  | ( Core.Value.VNucleotide _ | Core.Value.VAmino_acid _ | Core.Value.VChromosome _
    | Core.Value.VGenome _ | Core.Value.VList _ | Core.Value.VUncertain _ ) as v ->
      Error
        (Printf.sprintf "sort %s is not storable as a database attribute"
           (Core.Sort.to_string (Core.Value.sort_of v)))

let of_db = function
  | St.Dtype.Bool b -> Ok (Core.Value.VBool b)
  | St.Dtype.Int i -> Ok (Core.Value.VInt i)
  | St.Dtype.Float f -> Ok (Core.Value.VFloat f)
  | St.Dtype.Str s -> Ok (Core.Value.VString s)
  | St.Dtype.Null -> Error "NULL has no algebra value"
  | St.Dtype.Opaque ("dna", data) ->
      Result.map (fun s -> Core.Value.VDna s) (seq_payload Sequence.Dna data)
  | St.Dtype.Opaque ("rna", data) ->
      Result.map (fun s -> Core.Value.VRna s) (seq_payload Sequence.Rna data)
  | St.Dtype.Opaque ("proteinseq", data) ->
      Result.map (fun s -> Core.Value.VProtein_seq s) (seq_payload Sequence.Protein data)
  | St.Dtype.Opaque ("gene", data) ->
      Result.map (fun g -> Core.Value.VGene g) (Codec.decode_gene data)
  | St.Dtype.Opaque ("primarytranscript", data) ->
      Result.map (fun p -> Core.Value.VPrimary p) (Codec.decode_primary data)
  | St.Dtype.Opaque ("mrna", data) ->
      Result.map (fun m -> Core.Value.VMrna m) (Codec.decode_mrna data)
  | St.Dtype.Opaque ("protein", data) ->
      Result.map (fun p -> Core.Value.VProtein p) (Codec.decode_protein data)
  | St.Dtype.Opaque (name, _) -> Error (Printf.sprintf "unknown UDT %s" name)

let display_of_payload decode pp data =
  match decode data with
  | Ok v -> Format.asprintf "%a" pp v
  | Error msg -> Printf.sprintf "<corrupt: %s>" msg

let udt_definitions : St.Udt.udt list =
  let seq_udt name alphabet =
    (* sequences are substring-searchable: canonical letters feed the
       engine's k-mer postings, while records with ambiguity codes stay
       always-candidates so IUPAC matching remains exact (section 6.5) *)
    let search =
      {
        St.Udt.index_text =
          (fun data ->
            match seq_payload alphabet data with
            | Error _ -> `Always_candidate
            | Ok s ->
                let ambiguous =
                  match alphabet with
                  | Sequence.Protein -> false
                  | Sequence.Dna | Sequence.Rna ->
                      Sequence.count
                        (fun c ->
                          match Genalg_gdt.Nucleotide.of_char c with
                          | Some b -> Genalg_gdt.Nucleotide.is_ambiguous b
                          | None -> true)
                        s
                      > 0
                in
                if ambiguous then `Always_candidate else `Text (Sequence.to_string s));
        matches =
          (fun data ~pattern ->
            (* straight off the stored frame — no payload copy, and
               canonical DNA patterns hit the packed word-level search
               (docs/EXECUTION.md); alphabet check mirrors seq_payload *)
            match Sequence.framed_info data with
            | Some (a, _) when a = alphabet ->
                Option.value ~default:false
                  (Sequence.framed_contains ~pattern data)
            | Some _ | None -> false);
      }
    in
    {
      St.Udt.type_name = name;
      validate = (fun data -> Result.is_ok (seq_payload alphabet data));
      display =
        (fun data ->
          match seq_payload alphabet data with
          | Ok s -> Sequence.to_string s
          | Error msg -> Printf.sprintf "<corrupt: %s>" msg);
      search = Some search;
    }
  in
  [
    seq_udt "dna" Sequence.Dna;
    seq_udt "rna" Sequence.Rna;
    seq_udt "proteinseq" Sequence.Protein;
    {
      St.Udt.type_name = "gene";
      validate = (fun data -> Result.is_ok (Codec.decode_gene data));
      display = display_of_payload Codec.decode_gene Gene.pp;
      search = None;
    };
    {
      St.Udt.type_name = "primarytranscript";
      validate = (fun data -> Result.is_ok (Codec.decode_primary data));
      display = display_of_payload Codec.decode_primary Transcript.pp_primary;
      search = None;
    };
    {
      St.Udt.type_name = "mrna";
      validate = (fun data -> Result.is_ok (Codec.decode_mrna data));
      display = display_of_payload Codec.decode_mrna Transcript.pp_mrna;
      search = None;
    };
    {
      St.Udt.type_name = "protein";
      validate = (fun data -> Result.is_ok (Codec.decode_protein data));
      display = display_of_payload Codec.decode_protein Protein.pp;
      search = None;
    };
  ]

let udf_of_operator sg (op : Core.Signature.operator) =
  let map_sorts sorts = List.map dtype_of_sort sorts in
  let args = map_sorts op.Core.Signature.arg_sorts in
  match dtype_of_sort op.Core.Signature.result_sort with
  | None -> None
  | Some return_type ->
      if List.exists Option.is_none args then None
      else
        let arg_types = List.map Option.get args in
        let code db_args =
          let rec convert acc = function
            | [] -> Ok (List.rev acc)
            | v :: rest -> (
                match of_db v with
                | Ok cv -> convert (cv :: acc) rest
                | Error _ as e -> e)
          in
          match convert [] db_args with
          | Error _ as e -> e
          | Ok values -> (
              match Core.Signature.apply sg op.Core.Signature.name values with
              | Error _ as e -> e
              | Ok result -> to_db result)
        in
        Some { St.Udt.fn_name = op.Core.Signature.name; arg_types; return_type; code }

(* Constructor functions let SQL literals enter the genomic type system:
   [WHERE resembles(seq, dna('ACGT...')) > 0.8]. *)
let constructor_udfs : St.Udt.udf list =
  let seq_ctor name alphabet =
    {
      St.Udt.fn_name = name;
      arg_types = [ St.Dtype.TString ];
      return_type = St.Dtype.TOpaque name;
      code =
        (function
        | [ St.Dtype.Str s ] -> (
            match Sequence.of_string alphabet s with
            | Ok seq -> Ok (St.Dtype.Opaque (name, Sequence.to_bytes seq))
            | Error msg -> Error msg)
        | _ -> Error (name ^ " expects one string argument"));
    }
  in
  [
    seq_ctor "dna" Sequence.Dna;
    seq_ctor "rna" Sequence.Rna;
    seq_ctor "proteinseq" Sequence.Protein;
    {
      St.Udt.fn_name = "seq_text";
      arg_types = [ St.Dtype.TOpaque "dna" ];
      return_type = St.Dtype.TString;
      code =
        (function
        | [ St.Dtype.Opaque ("dna", data) ] -> (
            match Sequence.of_bytes data with
            | Ok s -> Ok (St.Dtype.Str (Sequence.to_string s))
            | Error msg -> Error msg)
        | _ -> Error "seq_text expects a dna argument");
    };
  ]

let attach db sg =
  let registry = St.Database.udts db in
  List.iter
    (fun udt -> ignore (St.Udt.register_type registry udt))
    udt_definitions;
  List.iter
    (fun udf -> ignore (St.Udt.register_function registry udf))
    constructor_udfs;
  List.iter
    (fun op ->
      match udf_of_operator sg op with
      | Some udf -> ignore (St.Udt.register_function registry udf)
      | None -> ())
    (Core.Signature.operators sg);
  (* genomic index specs restored from an image wait for exactly this
     moment: the registry now knows the UDTs, so backfill them *)
  List.iter
    (fun (_, table) -> St.Table.rebuild_genomic_indexes table ~registry)
    (St.Database.tables db)
