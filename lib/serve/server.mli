(** The genalg serving layer: a Unix-domain-socket server with
    concurrent sessions, snapshot transactions and a group-commit WAL.

    Architecture (full story in [docs/SERVING.md]): a single-threaded
    event loop ([select] over the listen socket and every session)
    interleaves sessions at {e statement} granularity — the statements
    themselves still fan out over the [lib/par] domain pool — so session
    state needs no locks and every interleaving is deterministic to
    test. Transactions get snapshot isolation by copy-on-BEGIN
    ({!Genalg_storage.Database.clone}): reads inside a transaction see
    the database exactly as of BEGIN plus the transaction's own writes;
    COMMIT is first-committer-wins (version-counter conflict check),
    applies the write set to the live database, appends logical redo
    records to the WAL and is acknowledged only after the group flush.

    Durability: the snapshot image on disk is a checkpoint; every commit
    since the last checkpoint is re-playable from [<db>.wal]
    ({!Genalg_storage.Wal}). {!create} replays the log before serving,
    so an acknowledged commit survives a crash. A clean shutdown
    checkpoints (image save + WAL truncate).

    Admission control: session count is capped ([max_sessions], HELLO
    refused with [ADMISSION]); per-query row and time limits refuse
    oversized answers with [LIMIT]; and a per-session
    {!Genalg_resilience.Resilience.Breaker} trips after consecutive
    failing statements, refusing further ones with [ADMISSION] until its
    call-counted cooldown passes — one misbehaving client cannot hog the
    loop.

    Instruments ([docs/OBSERVABILITY.md]): [serve.connections],
    [serve.sessions.{opened,closed}],
    [serve.admission.{rejected,breaker_open}],
    [serve.queries], [serve.query_errors], [serve.query] (histogram),
    [serve.txn.{begin,commit,rollback,conflict}],
    [serve.group_commit.{batches,commits}], [serve.wal.replayed]. *)

type config = {
  socket_path : string;    (** Unix-domain socket to listen on *)
  max_sessions : int;      (** HELLOs beyond this are refused (default 32) *)
  max_rows : int;          (** per-query result cap (default 100_000) *)
  max_query_s : float;     (** per-query wall-clock cap (default 5.0) *)
  breaker_failures : int;  (** consecutive statement failures that trip a
                               session's breaker (default 8) *)
  metrics : bool;          (** enable {!Genalg_obs.Obs} recording so
                               [serve.*] instruments tick (default true) *)
  attach : Genalg_storage.Database.t -> unit;
      (** UDT/UDF registration, applied to the live database and to
          every transaction snapshot (the CLI passes the genomic
          adapter; tests may pass [ignore]) *)
  topology : string;
      (** serving shape announced to v2 clients in the WELCOME:
          ["standalone"] (default), or ["shard I/N"] when this process
          is one shard of a cluster ([genalg serve --shard-id
          --shard-count]) *)
}

val default_config : socket_path:string -> config

type t

val create : config -> db_path:string -> (t, string) result
(** Load the snapshot at [db_path], replay [<db_path>.wal] through the
    SQL executor, open the WAL for appending, and bind the socket. The
    database file must exist ([genalg demo] makes one). *)

val replayed : t -> int
(** Committed statements re-applied from the WAL by {!create}. *)

val db : t -> Genalg_storage.Database.t
(** The live database (tests inspect it between requests). *)

val serve : t -> (unit, string) result
(** Run the event loop until {!stop} or a client's SHUTDOWN request.
    A clean stop checkpoints and removes the socket; a SHUTDOWN with
    [dirty = true] skips the checkpoint (recovery is then WAL replay).
    Re-raises {!Genalg_fault.Fault.Crash_point} from a WAL crash point —
    the simulated process death the recovery tests rely on. *)

val stop : t -> unit
(** Ask the loop to stop after the current iteration (clean shutdown);
    safe to call from another domain. *)

val checkpoint : t -> (unit, string) result
(** Save the snapshot image, persist the epoch state file, and truncate
    the WAL. Called by clean shutdown; exposed for tests. *)

(** {1 Cluster fencing state}

    A server that is one shard of a cluster carries a {e fencing epoch}
    and an {e applied-LSN cursor} (protocol v3, [docs/SHARDING.md]). A
    [Fenced_query] is refused with [FENCED] unless its epoch matches;
    one carrying an LSN at or below the cursor is skipped as already
    applied. Both survive restarts: the cursor rides the WAL as ['M']
    markers between checkpoints, and [<db>.epoch] holds both at clean
    checkpoints and on every [Resync] handshake. *)

val epoch : t -> int
(** The fencing epoch in force (0 until a coordinator resyncs one in). *)

val applied_lsn : t -> int
(** LSN of the last fenced statement durably applied (0 if none). *)

val shard_topology :
  shard_id:int option -> shard_count:int option -> (string, string) result
(** Validate [--shard-id]/[--shard-count] into a WELCOME topology
    string: [Ok "standalone"] when both are absent, [Ok "shard I/N"]
    when consistent, and [Error] for values no coordinator could ever
    address (one flag without the other, [count <= 0], [id < 0],
    [id >= count]). *)
