module D = Genalg_storage.Dtype

let version = 3
let min_version = 1
let supported v = v >= min_version && v <= version
let max_frame = 16 * 1024 * 1024

type request =
  | Hello of { actor : string; client_version : int }
  | Query of { sql : string }
  | Fenced_query of { epoch : int; lsn : int option; sql : string }
  | Resync of { epoch : int }
  | Begin
  | Commit
  | Rollback
  | Stats
  | Ping
  | Goodbye
  | Shutdown of { dirty : bool }

type error_code =
  | PROTO
  | ADMISSION
  | QUERY
  | TXN_STATE
  | CONFLICT
  | LIMIT
  | SHUTDOWN
  | VERSION
  | FENCED

type reply =
  | Welcome of { session : int; server_version : int; topology : string }
  | Ok_reply of { info : string }
  | Rows of { columns : string list; rows : D.value array list }
  | Affected of int
  | Error_reply of { code : error_code; message : string }
  | Pong
  | Stats_text of string
  | Resync_state of { epoch : int; applied_lsn : int }
  | Bye

let error_code_to_string = function
  | PROTO -> "PROTO"
  | ADMISSION -> "ADMISSION"
  | QUERY -> "QUERY"
  | TXN_STATE -> "TXN_STATE"
  | CONFLICT -> "CONFLICT"
  | LIMIT -> "LIMIT"
  | SHUTDOWN -> "SHUTDOWN"
  | VERSION -> "VERSION"
  | FENCED -> "FENCED"

let error_code_to_int = function
  | PROTO -> 1
  | ADMISSION -> 2
  | QUERY -> 3
  | TXN_STATE -> 4
  | CONFLICT -> 5
  | LIMIT -> 6
  | SHUTDOWN -> 7
  | VERSION -> 8
  | FENCED -> 9

let error_code_of_int = function
  | 1 -> Some PROTO
  | 2 -> Some ADMISSION
  | 3 -> Some QUERY
  | 4 -> Some TXN_STATE
  | 5 -> Some CONFLICT
  | 6 -> Some LIMIT
  | 7 -> Some SHUTDOWN
  | 8 -> Some VERSION
  | 9 -> Some FENCED
  | _ -> None

let request_tag = function
  | Hello _ -> 'H'
  | Query _ -> 'Q'
  | Fenced_query _ -> 'F'
  | Resync _ -> 'N'
  | Begin -> 'B'
  | Commit -> 'C'
  | Rollback -> 'R'
  | Stats -> 'S'
  | Ping -> 'P'
  | Goodbye -> 'G'
  | Shutdown _ -> 'X'

let reply_tag = function
  | Welcome _ -> 'W'
  | Ok_reply _ -> 'K'
  | Rows _ -> 'T'
  | Affected _ -> 'A'
  | Error_reply _ -> 'E'
  | Pong -> 'O'
  | Stats_text _ -> 'Z'
  | Resync_state _ -> 'U'
  | Bye -> 'Y'

(* ---- body primitives: i64le ints and length-prefixed strings ---- *)

let add_int buf n = Buffer.add_int64_le buf (Int64.of_int n)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

exception Malformed of string

type cursor = { data : bytes; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.data then raise (Malformed "truncated message")

let get_int c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  if v < 0 then raise (Malformed "negative length");
  v

let get_str c =
  let n = get_int c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_char c =
  need c 1;
  let ch = Bytes.get c.data c.pos in
  c.pos <- c.pos + 1;
  ch

let finished c =
  if c.pos <> Bytes.length c.data then raise (Malformed "trailing bytes")

(* ---- requests ---- *)

let encode_request r =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (request_tag r);
  (match r with
  | Hello { actor; client_version } ->
      add_int buf client_version;
      add_str buf actor
  | Query { sql } -> add_str buf sql
  | Fenced_query { epoch; lsn; sql } ->
      add_int buf epoch;
      (* the codec rejects negative ints, so the optional LSN ships
         shifted: 0 = none, n+1 = Some n *)
      add_int buf (match lsn with None -> 0 | Some l -> l + 1);
      add_str buf sql
  | Resync { epoch } -> add_int buf epoch
  | Shutdown { dirty } -> Buffer.add_char buf (if dirty then '\001' else '\000')
  | Begin | Commit | Rollback | Stats | Ping | Goodbye -> ());
  Buffer.contents buf

let decode_request s =
  match
    if s = "" then raise (Malformed "empty message");
    let c = { data = Bytes.of_string s; pos = 1 } in
    let r =
      match s.[0] with
      | 'H' ->
          let client_version = get_int c in
          let actor = get_str c in
          Hello { actor; client_version }
      | 'Q' -> Query { sql = get_str c }
      | 'F' ->
          let epoch = get_int c in
          let shifted = get_int c in
          let lsn = if shifted = 0 then None else Some (shifted - 1) in
          let sql = get_str c in
          Fenced_query { epoch; lsn; sql }
      | 'N' -> Resync { epoch = get_int c }
      | 'B' -> Begin
      | 'C' -> Commit
      | 'R' -> Rollback
      | 'S' -> Stats
      | 'P' -> Ping
      | 'G' -> Goodbye
      | 'X' -> Shutdown { dirty = get_char c <> '\000' }
      | t -> raise (Malformed (Printf.sprintf "unknown request tag %C" t))
    in
    (* HELLO tolerates trailing bytes: a future-version client may
       append fields we don't know, and the server must still be able
       to read the version number and answer with a typed VERSION
       error rather than a framing failure *)
    (match r with Hello _ -> () | _ -> finished c);
    r
  with
  | r -> Ok r
  | exception Malformed msg -> Error msg

(* ---- replies ---- *)

let encode_reply r =
  let buf = Buffer.create 256 in
  Buffer.add_char buf (reply_tag r);
  (match r with
  | Welcome { session; server_version; topology } ->
      add_int buf server_version;
      add_int buf session;
      (* v2 appends the shard topology; omitted (v1 wire shape) when
         empty so v1 clients still decode the welcome *)
      if topology <> "" then add_str buf topology
  | Ok_reply { info } -> add_str buf info
  | Rows { columns; rows } ->
      add_int buf (List.length columns);
      List.iter (add_str buf) columns;
      add_int buf (List.length rows);
      List.iter
        (fun row -> add_str buf (Bytes.to_string (D.encode_row row)))
        rows
  | Affected n -> add_int buf n
  | Error_reply { code; message } ->
      add_int buf (error_code_to_int code);
      add_str buf message
  | Pong -> ()
  | Stats_text text -> add_str buf text
  | Resync_state { epoch; applied_lsn } ->
      add_int buf epoch;
      add_int buf applied_lsn
  | Bye -> ());
  Buffer.contents buf

let decode_reply s =
  match
    if s = "" then raise (Malformed "empty message");
    let c = { data = Bytes.of_string s; pos = 1 } in
    let r =
      match s.[0] with
      | 'W' ->
          let server_version = get_int c in
          let session = get_int c in
          let topology =
            if c.pos < Bytes.length c.data then get_str c else ""
          in
          Welcome { session; server_version; topology }
      | 'K' -> Ok_reply { info = get_str c }
      | 'T' ->
          let ncols = get_int c in
          if ncols > String.length s then raise (Malformed "implausible count");
          let columns = List.init ncols (fun _ -> get_str c) in
          let nrows = get_int c in
          if nrows > String.length s then raise (Malformed "implausible count");
          let rows =
            List.init nrows (fun _ ->
                D.decode_row (Bytes.of_string (get_str c)))
          in
          Rows { columns; rows }
      | 'A' -> Affected (get_int c)
      | 'E' ->
          let code =
            match error_code_of_int (get_int c) with
            | Some code -> code
            | None -> raise (Malformed "unknown error code")
          in
          let message = get_str c in
          Error_reply { code; message }
      | 'O' -> Pong
      | 'Z' -> Stats_text (get_str c)
      | 'U' ->
          let epoch = get_int c in
          let applied_lsn = get_int c in
          Resync_state { epoch; applied_lsn }
      | 'Y' -> Bye
      | t -> raise (Malformed (Printf.sprintf "unknown reply tag %C" t))
    in
    finished c;
    r
  with
  | r -> Ok r
  | exception Malformed msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | exception Failure msg -> Error msg

(* ---- framing ---- *)

let write_frame fd payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  let written = ref 0 in
  while !written < Bytes.length b do
    written :=
      !written + Unix.write fd b !written (Bytes.length b - !written)
  done

let read_exactly fd n =
  let b = Bytes.create n in
  let got = ref 0 in
  (try
     while !got < n do
       let k = Unix.read fd b !got (n - !got) in
       if k = 0 then raise Exit;
       got := !got + k
     done
   with
  | Exit -> ()
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  if !got = n then Some b else None

let read_frame fd =
  match read_exactly fd 4 with
  | None -> Error "connection closed"
  | Some hdr ->
      let n =
        (Bytes.get_uint8 hdr 0 lsl 24)
        lor (Bytes.get_uint8 hdr 1 lsl 16)
        lor (Bytes.get_uint8 hdr 2 lsl 8)
        lor Bytes.get_uint8 hdr 3
      in
      if n > max_frame then Error "oversized frame"
      else (
        match read_exactly fd n with
        | None -> Error "truncated frame"
        | Some b -> Ok (Bytes.to_string b))

module Framing = struct
  type t = { buf : Buffer.t }

  let create () = { buf = Buffer.create 1024 }
  let feed t b n = Buffer.add_subbytes t.buf b 0 n

  let next t =
    let len = Buffer.length t.buf in
    if len < 4 then Ok None
    else begin
      let s = Buffer.contents t.buf in
      let n =
        (Char.code s.[0] lsl 24)
        lor (Char.code s.[1] lsl 16)
        lor (Char.code s.[2] lsl 8)
        lor Char.code s.[3]
      in
      if n > max_frame then Error "oversized frame"
      else if len < 4 + n then Ok None
      else begin
        let frame = String.sub s 4 n in
        Buffer.clear t.buf;
        Buffer.add_substring t.buf s (4 + n) (len - 4 - n);
        Ok (Some frame)
      end
    end
end
