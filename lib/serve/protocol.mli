(** The genalg wire protocol, version 3 (spec: [docs/SERVING.md]).

    Frames are length-prefixed: [len:u32be | tag:u8 | body], where [len]
    counts the tag byte plus the body. Bodies are built from
    [i64le]-length-prefixed strings and [i64le] integers; result-set
    rows travel in the storage engine's own row encoding
    ({!Genalg_storage.Dtype.encode_row}), so the client decodes values
    without a copy of the schema.

    Everything here is pure (message <-> string); the blocking framing
    helpers at the bottom are the only code that touches a file
    descriptor. The server reads frames incrementally through
    {!Framing.feed} instead. *)

module D := Genalg_storage.Dtype

val version : int
(** Protocol version carried in HELLO/WELCOME; v3. v2 added the typed
    [VERSION] error code and a shard-topology string in [Welcome]; v3
    adds epoch-fenced writes ([Fenced_query]), the [Resync] handshake
    with its [Resync_state] reply, and the [FENCED] error code. v1/v2
    message shapes are unchanged — v3 only introduces new tags. *)

val min_version : int
(** Oldest client version the server still accepts (v1: the WELCOME it
    gets simply omits the topology field). *)

val supported : int -> bool
(** Whether a HELLO's [client_version] is within [min_version..version]. *)

val max_frame : int
(** Refuse frames longer than this (16 MiB) — a malformed length prefix
    must not allocate unboundedly. *)

(** {1 Messages} *)

type request =
  | Hello of { actor : string; client_version : int }
      (** first message on a connection; answered by [Welcome] or
          [Error_reply ADMISSION] *)
  | Query of { sql : string }   (** one extended-SQL statement *)
  | Fenced_query of { epoch : int; lsn : int option; sql : string }
      (** a coordinator write (or resync replay) carrying the shard
          pair's current epoch. The server refuses it with [FENCED]
          unless [epoch] matches its own — a stale coordinator (or a
          write reaching a fenced stale primary) cannot mutate state.
          [lsn], when given, is the statement's log sequence number:
          the server skips statements it has already applied
          ([lsn <= applied_lsn]) and advances its durable cursor
          otherwise, making resync replay idempotent. *)
  | Resync of { epoch : int }
      (** adopt [max (epoch, own epoch)] and report the resulting
          epoch + applied LSN ([Resync_state]) so the coordinator can
          compute the replay delta *)
  | Begin                       (** open a transaction *)
  | Commit
  | Rollback
  | Stats                       (** server + instrument snapshot, rendered *)
  | Ping
  | Goodbye                     (** orderly session close; answered by [Bye] *)
  | Shutdown of { dirty : bool }
      (** stop the whole server. [dirty = false] checkpoints (snapshot
          save + WAL truncate) first; [dirty = true] skips the
          checkpoint, leaving recovery to WAL replay — tests use it to
          simulate a crash right after the commit acknowledgement *)

type error_code =
  | PROTO      (** malformed frame or message out of order *)
  | ADMISSION  (** server full, or the session's breaker is open *)
  | QUERY      (** parse or execution failure *)
  | TXN_STATE  (** BEGIN inside a transaction, COMMIT/ROLLBACK outside *)
  | CONFLICT   (** first-committer-wins serialization failure *)
  | LIMIT      (** per-query row or time limit exceeded *)
  | SHUTDOWN   (** server is stopping *)
  | VERSION    (** HELLO carried an unsupported protocol version *)
  | FENCED     (** a fenced request carried a stale (or unknown) epoch *)

type reply =
  | Welcome of { session : int; server_version : int; topology : string }
      (** [topology] describes the serving shape for v2 clients
          (["standalone"] or ["shard I/N"]); empty for v1 clients, in
          which case it is not put on the wire at all *)
  | Ok_reply of { info : string }    (** BEGIN/COMMIT/ROLLBACK/DDL ack *)
  | Rows of { columns : string list; rows : D.value array list }
  | Affected of int                  (** INSERT/DELETE row count *)
  | Error_reply of { code : error_code; message : string }
  | Pong
  | Stats_text of string
  | Resync_state of { epoch : int; applied_lsn : int }
      (** answer to [Resync]: the epoch now in force on this server and
          the LSN of the last statement it durably applied *)
  | Bye

val error_code_to_string : error_code -> string
val error_code_of_int : int -> error_code option
val error_code_to_int : error_code -> int

val request_tag : request -> char
val reply_tag : reply -> char
(** The on-wire tag bytes ([H Q F N B C R S P G X] for requests,
    [W K T A E O Z U Y] for replies); the spec documents each. *)

(** {1 Codecs} *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_reply : reply -> string
val decode_reply : string -> (reply, string) result
(** Encode/decode one message payload (tag byte + body, no length
    prefix). [decode_*] errors on unknown tags and truncated bodies. *)

(** {1 Framing} *)

val write_frame : Unix.file_descr -> string -> unit
(** Prefix with the u32be length and write fully (blocking). Raises
    [Unix.Unix_error] on a dead peer. *)

val read_frame : Unix.file_descr -> (string, string) result
(** Blocking read of exactly one frame (client side). [Error] on EOF,
    oversized length, or a truncated frame. *)

module Framing : sig
  (** Incremental decoder for the server's event loop: feed raw bytes
      as they arrive, pop complete frames. *)

  type t

  val create : unit -> t
  val feed : t -> bytes -> int -> unit
  (** [feed t b n] appends the first [n] bytes of [b]. *)

  val next : t -> (string option, string) result
  (** Pop the next complete frame payload, [Ok None] if more bytes are
      needed, [Error] once the stream is unrecoverable (oversized
      frame). *)
end
