module D = Genalg_storage.Dtype
module P = Protocol

type t = {
  fd : Unix.file_descr;
  session : int;
  client_actor : string;
  server_topology : string;
}

let session_id t = t.session
let actor t = t.client_actor
let topology t = t.server_topology

let roundtrip_fd fd req =
  match
    P.write_frame fd (P.encode_request req);
    P.read_frame fd
  with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Error _ as e -> e
  | Ok frame -> P.decode_reply frame

let connect ?(actor = "biologist") ?(client_version = P.version) ~socket () =
  (* a peer that died mid-connection must surface as EPIPE (a transport
     error the caller can fail over from), not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket)
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (socket ^ ": " ^ Unix.error_message e)
  | fd -> (
      match roundtrip_fd fd (P.Hello { actor; client_version }) with
      | Ok (P.Welcome { session; topology; _ }) ->
          Ok { fd; session; client_actor = actor; server_topology = topology }
      | Ok (P.Error_reply { code; message }) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "%s: %s" (P.error_code_to_string code) message)
      | Ok _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error "unexpected reply to HELLO"
      | Error msg ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error msg)

let roundtrip t req = roundtrip_fd t.fd req

let query t sql = roundtrip t (P.Query { sql })

let fenced_query t ~epoch ?lsn sql =
  roundtrip t (P.Fenced_query { epoch; lsn; sql })

let resync t ~epoch =
  match roundtrip t (P.Resync { epoch }) with
  | Ok (P.Resync_state { epoch; applied_lsn }) -> Ok (epoch, applied_lsn)
  | Ok (P.Error_reply { code; message }) ->
      Error (Printf.sprintf "%s: %s" (P.error_code_to_string code) message)
  | Ok _ -> Error "unexpected reply to RESYNC"
  | Error _ as e -> e

let expect_ok t req =
  match roundtrip t req with
  | Ok (P.Ok_reply _) -> Ok ()
  | Ok (P.Error_reply { code; message }) ->
      Error (Printf.sprintf "%s: %s" (P.error_code_to_string code) message)
  | Ok _ -> Error "unexpected reply"
  | Error _ as e -> e

let begin_ t = expect_ok t P.Begin
let commit t = expect_ok t P.Commit
let rollback t = expect_ok t P.Rollback

let stats t =
  match roundtrip t P.Stats with
  | Ok (P.Stats_text text) -> Ok text
  | Ok (P.Error_reply { code; message }) ->
      Error (Printf.sprintf "%s: %s" (P.error_code_to_string code) message)
  | Ok _ -> Error "unexpected reply"
  | Error _ as e -> e

let ping t =
  match roundtrip t P.Ping with
  | Ok P.Pong -> Ok ()
  | Ok _ -> Error "unexpected reply"
  | Error _ as e -> e

let shutdown t ~dirty = expect_ok t (P.Shutdown { dirty })

let close t =
  (try P.write_frame t.fd (P.encode_request P.Goodbye)
   with Unix.Unix_error _ -> ());
  (* best-effort: drain the BYE so the server sees an orderly close *)
  (match P.read_frame t.fd with Ok _ | Error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let render_rows ~columns rows =
  let cells = List.map (fun row -> Array.map D.value_to_display row) rows in
  let ncols = List.length columns in
  let widths = Array.of_list (List.map String.length columns) in
  List.iter
    (fun row ->
      Array.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    cells;
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad c widths.(i)))
    columns;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Array.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string buf "  ";
          if i < ncols then Buffer.add_string buf (pad cell widths.(i)))
        row)
    cells;
  Printf.bprintf buf "\n(%d rows)" (List.length rows);
  Buffer.contents buf
