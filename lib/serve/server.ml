module Db = Genalg_storage.Database
module Table = Genalg_storage.Table
module Wal = Genalg_storage.Wal
module Exec = Genalg_sqlx.Exec
module Ast = Genalg_sqlx.Ast
module Parser = Genalg_sqlx.Parser
module Obs = Genalg_obs.Obs
module Resilience = Genalg_resilience.Resilience
module P = Protocol

let c_connections = Obs.counter "serve.connections"
let c_sessions_opened = Obs.counter "serve.sessions.opened"
let c_sessions_closed = Obs.counter "serve.sessions.closed"
let c_admission_rejected = Obs.counter "serve.admission.rejected"
let c_version_rejected = Obs.counter "serve.admission.version_rejected"
let c_breaker_open = Obs.counter "serve.admission.breaker_open"
let c_queries = Obs.counter "serve.queries"
let c_query_errors = Obs.counter "serve.query_errors"
let c_txn_begin = Obs.counter "serve.txn.begin"
let c_txn_commit = Obs.counter "serve.txn.commit"
let c_txn_rollback = Obs.counter "serve.txn.rollback"
let c_txn_conflict = Obs.counter "serve.txn.conflict"
let c_gc_batches = Obs.counter "serve.group_commit.batches"
let c_gc_commits = Obs.counter "serve.group_commit.commits"
let c_wal_replayed = Obs.counter "serve.wal.replayed"
let c_fenced_rejected = Obs.counter "serve.fenced.rejected"
let c_fenced_skipped = Obs.counter "serve.fenced.skipped"
let c_resyncs = Obs.counter "serve.resyncs"
let h_query = Obs.histogram "serve.query"

type config = {
  socket_path : string;
  max_sessions : int;
  max_rows : int;
  max_query_s : float;
  breaker_failures : int;
  metrics : bool;
  attach : Db.t -> unit;
  topology : string;
      (* serving shape announced in the v2 WELCOME: "standalone", or
         "shard I/N" when this process is one shard of a cluster *)
}

let default_config ~socket_path =
  {
    socket_path;
    max_sessions = 32;
    max_rows = 100_000;
    max_query_s = 5.0;
    breaker_failures = 8;
    metrics = true;
    attach = ignore;
    topology = "standalone";
  }

(* One open transaction: a snapshot clone for reads and validation, the
   recorded write set (statement text, replayed on the live db at
   commit), and the version counters the conflict check compares. *)
type txn = {
  snapshot : Db.t;
  mutable writes : (string * string) list; (* (table, sql) newest first *)
  mutable ddl : bool;                      (* write set contains DDL *)
  begin_versions : (string * (int * int)) list; (* key -> data/schema vsn *)
  begin_catalog : int;
}

type session = {
  fd : Unix.file_descr;
  sid : int;
  framing : P.Framing.t;
  breaker : Resilience.Breaker.t;
  mutable actor : string option; (* None until HELLO *)
  mutable txn : txn option;
}

type t = {
  config : config;
  db_path : string;
  live : Db.t;
  wal : Wal.t;
  listen : Unix.file_descr;
  sessions : (Unix.file_descr, session) Hashtbl.t;
  stopping : bool Atomic.t;
  mutable dirty_stop : bool;
  mutable next_sid : int;
  mutable next_txn : int;
  mutable replayed : int;
  mutable txns_committed : int;
  mutable epoch : int;       (* shard-pair fencing epoch in force *)
  mutable applied_lsn : int; (* last coordinator LSN durably applied *)
}

let replayed t = t.replayed
let db t = t.live
let stop t = Atomic.set t.stopping true
let epoch t = t.epoch
let applied_lsn t = t.applied_lsn

(* ------------------------------------------------------------------ *)
(* Epoch state file: [<db>.epoch] holds the fencing epoch and the
   applied-LSN cursor as of the last resync or clean checkpoint. The
   WAL's 'M' markers carry the cursor between checkpoints, so a dirty
   crash recovers [max (file, markers)]. Losing the file entirely only
   regresses the server to epoch 0 — a fenced write then fails and the
   coordinator resyncs it forward, so the file needs atomicity (tmp +
   rename) but no journal. *)

let epoch_magic = "GENALGEP1"
let epoch_path db_path = db_path ^ ".epoch"

let load_epoch_file db_path =
  let file = epoch_path db_path in
  if not (Sys.file_exists file) then (0, 0)
  else
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error _ -> (0, 0)
    | contents -> (
        try
          Scanf.sscanf contents "%s %d %d" (fun m e l ->
              if m = epoch_magic && e >= 0 && l >= 0 then (e, l) else (0, 0))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> (0, 0))

let save_epoch_file t =
  let file = epoch_path t.db_path in
  let tmp = file ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc "%s %d %d\n" epoch_magic t.epoch t.applied_lsn);
    Genalg_storage.Fsutil.fsync_file tmp;
    Sys.rename tmp file;
    Genalg_storage.Fsutil.fsync_dir (Genalg_storage.Fsutil.parent file)
  with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Statement classification: what a statement touches decides where it
   runs inside a transaction and what the commit-time conflict check
   must validate.                                                      *)

type access =
  | Read                 (* SELECT / EXPLAIN *)
  | Write of string      (* DML / index DDL on an existing table *)
  | Catalog of string    (* CREATE TABLE / DROP TABLE *)

let classify = function
  | Ast.Select _ | Ast.Explain _ -> Read
  | Ast.Insert { table; _ }
  | Ast.Delete { table; _ }
  | Ast.Create_index { table; _ }
  | Ast.Create_genomic_index { table; _ } ->
      Write table
  | Ast.Analyze table -> Write table
  | Ast.Create_table { table; _ } | Ast.Drop_table table -> Catalog table

let space_key = function
  | Db.Public -> "!public"
  | Db.User u -> "user:" ^ String.lowercase_ascii u

let version_key space name = space_key space ^ "/" ^ String.lowercase_ascii name

let all_versions db =
  List.map
    (fun (space, tbl) ->
      ( version_key space (Table.name tbl),
        (Table.data_version tbl, Table.schema_version tbl) ))
    (Db.tables db)

(* ------------------------------------------------------------------ *)

let create config ~db_path =
  match Db.load db_path with
  | Error msg -> Error msg
  | Ok live -> (
      config.attach live;
      if config.metrics then Obs.set_enabled true;
      (* redo: re-apply every committed statement since the last
         checkpoint, in commit order, through the executor *)
      match Wal.replay (Wal.wal_path db_path) with
      | Error msg -> Error ("wal replay: " ^ msg)
      | Ok rp -> (
          let replay_errors = ref 0 in
          List.iter
            (fun (s : Wal.replay_stmt) ->
              match Exec.query live ~actor:s.Wal.rp_actor s.Wal.rp_sql with
              | Ok _ -> ()
              | Error _ -> incr replay_errors)
            rp.Wal.committed;
          Obs.add c_wal_replayed (List.length rp.Wal.committed);
          if !replay_errors > 0 then
            Error
              (Printf.sprintf "wal replay: %d of %d statements failed"
                 !replay_errors
                 (List.length rp.Wal.committed))
          else
            match Wal.open_ (Wal.wal_path db_path) with
            | Error msg -> Error msg
            | Ok wal -> (
                match
                  if Sys.file_exists config.socket_path then
                    Sys.remove config.socket_path;
                  let listen =
                    Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
                  in
                  Unix.bind listen (Unix.ADDR_UNIX config.socket_path);
                  Unix.listen listen 64;
                  listen
                with
                | exception Unix.Unix_error (e, _, _) ->
                    Wal.close wal;
                    Error (config.socket_path ^ ": " ^ Unix.error_message e)
                | listen ->
                    (* the durable applied-LSN cursor is whichever got
                       further: the epoch file (last clean checkpoint /
                       resync) or the WAL's committed markers *)
                    let file_epoch, file_lsn = load_epoch_file db_path in
                    let applied_lsn =
                      max file_lsn (Option.value rp.Wal.last_lsn ~default:0)
                    in
                    Ok
                      {
                        config;
                        db_path;
                        live;
                        wal;
                        listen;
                        sessions = Hashtbl.create 16;
                        stopping = Atomic.make false;
                        dirty_stop = false;
                        next_sid = 0;
                        next_txn = 0;
                        replayed = List.length rp.Wal.committed;
                        txns_committed = 0;
                        epoch = file_epoch;
                        applied_lsn;
                      })))

let checkpoint t =
  match Db.save t.live t.db_path with
  | Error _ as e -> e
  | Ok () ->
      (* truncation erases the WAL's applied-LSN markers, so the cursor
         must be durable in the epoch file first *)
      save_epoch_file t;
      Wal.truncate t.wal

(* Shard topology validation for [genalg serve --shard-id/--shard-count]
   (and the WELCOME announcement): values that can never be addressed by
   a coordinator are refused at startup instead of silently joining. *)
let shard_topology ~shard_id ~shard_count =
  match (shard_id, shard_count) with
  | None, None -> Ok "standalone"
  | Some _, None -> Error "--shard-id requires --shard-count"
  | None, Some _ -> Error "--shard-count requires --shard-id"
  | Some i, Some n ->
      if n <= 0 then
        Error (Printf.sprintf "--shard-count must be positive (got %d)" n)
      else if i < 0 then
        Error (Printf.sprintf "--shard-id must be non-negative (got %d)" i)
      else if i >= n then
        Error
          (Printf.sprintf
             "--shard-id %d is out of range for --shard-count %d (valid: \
              0..%d)"
             i n (n - 1))
      else Ok (Printf.sprintf "shard %d/%d" i n)

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

let err code message = P.Error_reply { code; message }

let active_sessions t =
  Hashtbl.fold
    (fun _ s acc -> if s.actor <> None then acc + 1 else acc)
    t.sessions 0

let close_session t s =
  (match s.txn with
  | Some _ ->
      s.txn <- None;
      Obs.add c_txn_rollback 1
  | None -> ());
  Hashtbl.remove t.sessions s.fd;
  (try Unix.close s.fd with Unix.Unix_error _ -> ());
  if s.actor <> None then Obs.add c_sessions_closed 1

let send t s reply =
  try P.write_frame s.fd (P.encode_reply reply)
  with Unix.Unix_error _ -> close_session t s

(* Execute one parsed statement with the per-query limits applied;
   returns the wire reply. *)
let execute_limited t target ~actor stmt =
  let t0 = Unix.gettimeofday () in
  let result = Exec.run target ~actor stmt in
  let elapsed = Unix.gettimeofday () -. t0 in
  Obs.observe h_query elapsed;
  if elapsed > t.config.max_query_s then
    err P.LIMIT
      (Printf.sprintf "query exceeded the %.1fs time limit (took %.1fs)"
         t.config.max_query_s elapsed)
  else
    match result with
    | Error msg -> err P.QUERY msg
    | Ok (Exec.Rows rs) ->
        if List.length rs.Exec.rows > t.config.max_rows then
          err P.LIMIT
            (Printf.sprintf "result exceeds the %d-row limit (add LIMIT)"
               t.config.max_rows)
        else P.Rows { columns = rs.Exec.columns; rows = rs.Exec.rows }
    | Ok (Exec.Affected n) -> P.Affected n
    | Ok Exec.Executed -> P.Ok_reply { info = "ok" }

let is_error = function P.Error_reply _ -> true | _ -> false

(* Append one committed transaction's redo records; the flush (and the
   client's acknowledgement) happens once per group in [flush_group]. *)
let wal_log_txn ?lsn t ~actor stmts =
  t.next_txn <- t.next_txn + 1;
  let txn = t.next_txn in
  Wal.append_begin t.wal ~txn;
  List.iter (fun sql -> Wal.append_stmt t.wal ~txn ~actor ~sql) stmts;
  (* a fenced statement's LSN cursor commits atomically with it *)
  (match lsn with
  | Some l -> Wal.append_marker t.wal ~txn ~lsn:l
  | None -> ());
  Wal.append_commit t.wal ~txn

(* The commit-time conflict check: first committer wins. Every table in
   the write set must be exactly as the snapshot saw it at BEGIN —
   version counters unmoved, existence unchanged — and DDL additionally
   pins the catalog version. *)
let conflict_check t txn ~actor =
  let check_table table =
    match Db.resolve t.live ~actor table with
    | Some (space, tbl) -> (
        let key = version_key space (Table.name tbl) in
        match List.assoc_opt key txn.begin_versions with
        | None ->
            Some (Printf.sprintf "table %s was created concurrently" table)
        | Some (dv, sv) ->
            if
              Table.data_version tbl <> dv || Table.schema_version tbl <> sv
            then
              Some
                (Printf.sprintf "table %s was modified concurrently" table)
            else None)
    | None -> (
        (* absent now: fine if it was also absent (or unreadable) at
           BEGIN — i.e. this transaction created it *)
        let lname = String.lowercase_ascii table in
        let existed =
          List.exists
            (fun (k, _) ->
              match String.rindex_opt k '/' with
              | Some i ->
                  String.sub k (i + 1) (String.length k - i - 1) = lname
              | None -> false)
            txn.begin_versions
        in
        if existed then
          Some (Printf.sprintf "table %s was dropped concurrently" table)
        else None)
  in
  let tables =
    List.sort_uniq compare (List.map fst (List.rev txn.writes))
  in
  let table_conflict =
    List.fold_left
      (fun acc tbl -> match acc with Some _ -> acc | None -> check_table tbl)
      None tables
  in
  match table_conflict with
  | Some _ as c -> c
  | None ->
      if txn.ddl && Db.catalog_version t.live <> txn.begin_catalog then
        Some "catalog changed concurrently"
      else None

(* Handle one request; [defer] registers a reply to be sent only after
   the group-commit flush. *)
let handle_request t s ~defer req =
  match s.actor, req with
  | _, P.Ping -> send t s P.Pong
  | None, P.Hello { actor; client_version } ->
      if not (P.supported client_version) then begin
        Obs.add c_version_rejected 1;
        send t s
          (err P.VERSION
             (Printf.sprintf
                "unsupported protocol version %d (server speaks %d..%d)"
                client_version P.min_version P.version));
        close_session t s
      end
      else if active_sessions t >= t.config.max_sessions then begin
        Obs.add c_admission_rejected 1;
        send t s
          (err P.ADMISSION
             (Printf.sprintf "server full (%d sessions)" t.config.max_sessions));
        close_session t s
      end
      else begin
        s.actor <- Some actor;
        Obs.add c_sessions_opened 1;
        (* the topology handshake is a v2 field; v1 clients get the v1
           wire shape (no trailing string) *)
        let topology =
          if client_version >= 2 then t.config.topology else ""
        in
        send t s
          (P.Welcome { session = s.sid; server_version = P.version; topology })
      end
  | None, _ ->
      send t s (err P.PROTO "say HELLO first");
      close_session t s
  | Some _, P.Hello _ -> send t s (err P.PROTO "already said HELLO")
  | Some _, P.Goodbye ->
      send t s P.Bye;
      close_session t s
  | Some _, P.Shutdown { dirty } ->
      t.dirty_stop <- dirty;
      Atomic.set t.stopping true;
      send t s (P.Ok_reply { info = "shutting down" })
  | Some _, P.Stats ->
      let b = Buffer.create 512 in
      Printf.bprintf b "genalg server on %s\n" t.config.socket_path;
      Printf.bprintf b "database: %s (%d tables)\n" t.db_path
        (Db.table_count t.live);
      Printf.bprintf b
        "sessions: %d active (max %d); limits: %d rows, %.1fs per query\n"
        (active_sessions t) t.config.max_sessions t.config.max_rows
        t.config.max_query_s;
      Printf.bprintf b
        "wal: %s, %d B pending, %d stmts replayed at startup, %d txns \
         committed\n"
        (Wal.path t.wal) (Wal.pending_bytes t.wal) t.replayed
        t.txns_committed;
      Printf.bprintf b "cluster: epoch %d, applied lsn %d\n\n" t.epoch
        t.applied_lsn;
      Buffer.add_string b (Obs.render_table ());
      send t s (P.Stats_text (Buffer.contents b))
  | Some _, P.Begin -> (
      match s.txn with
      | Some _ -> send t s (err P.TXN_STATE "already in a transaction")
      | None ->
          let snapshot = Db.clone t.live in
          t.config.attach snapshot;
          s.txn <-
            Some
              {
                snapshot;
                writes = [];
                ddl = false;
                begin_versions = all_versions t.live;
                begin_catalog = Db.catalog_version t.live;
              };
          Obs.add c_txn_begin 1;
          send t s (P.Ok_reply { info = "transaction started" }))
  | Some _, P.Rollback -> (
      match s.txn with
      | None -> send t s (err P.TXN_STATE "no transaction in progress")
      | Some _ ->
          s.txn <- None;
          Obs.add c_txn_rollback 1;
          send t s (P.Ok_reply { info = "rolled back" }))
  | Some actor, P.Commit -> (
      match s.txn with
      | None -> send t s (err P.TXN_STATE "no transaction in progress")
      | Some txn -> (
          s.txn <- None;
          match List.rev txn.writes with
          | [] ->
              (* read-only: nothing to validate, apply or log *)
              Obs.add c_txn_commit 1;
              send t s (P.Ok_reply { info = "committed (read-only)" })
          | writes -> (
              match conflict_check t txn ~actor with
              | Some msg ->
                  Obs.add c_txn_conflict 1;
                  send t s
                    (err P.CONFLICT ("serialization failure: " ^ msg))
              | None ->
                  (* the checked tables are exactly as the snapshot saw
                     them, so replaying the statements on the live
                     database reproduces the snapshot's outcome *)
                  List.iter
                    (fun (_, sql) ->
                      ignore (Exec.query t.live ~actor sql))
                    writes;
                  wal_log_txn t ~actor (List.map snd writes);
                  t.txns_committed <- t.txns_committed + 1;
                  Obs.add c_txn_commit 1;
                  defer s (P.Ok_reply { info = "committed" }))))
  | Some _, P.Resync { epoch } ->
      (* adopt the higher epoch (a coordinator announcing a failover it
         performed while we were away) and report where we stand so the
         coordinator can replay exactly the delta *)
      t.epoch <- max t.epoch epoch;
      save_epoch_file t;
      Obs.add c_resyncs 1;
      send t s (P.Resync_state { epoch = t.epoch; applied_lsn = t.applied_lsn })
  | Some actor, P.Fenced_query { epoch; lsn; sql } -> (
      Obs.add c_queries 1;
      if epoch <> t.epoch then begin
        (* stale primary fencing: a coordinator (or replayed write) on
           the wrong epoch cannot mutate state until it resyncs *)
        Obs.add c_fenced_rejected 1;
        send t s
          (err P.FENCED
             (Printf.sprintf
                "epoch %d is not in force here (server at epoch %d); resync \
                 first"
                epoch t.epoch))
      end
      else
        match lsn with
        | Some l when l <= t.applied_lsn ->
            (* resync replay re-sending a statement that survived in the
               WAL: applying it twice would diverge the store *)
            Obs.add c_fenced_skipped 1;
            send t s (P.Ok_reply { info = "already applied" })
        | _ -> (
            match Parser.parse sql with
            | Error msg ->
                Obs.add c_query_errors 1;
                send t s (err P.QUERY msg)
            | Ok stmt -> (
                let reply = execute_limited t t.live ~actor stmt in
                if is_error reply then Obs.add c_query_errors 1;
                match classify stmt with
                | Read -> send t s reply
                | Write _ | Catalog _ ->
                    if is_error reply then send t s reply
                    else begin
                      wal_log_txn ?lsn t ~actor [ sql ];
                      (match lsn with
                      | Some l -> t.applied_lsn <- max t.applied_lsn l
                      | None -> ());
                      t.txns_committed <- t.txns_committed + 1;
                      defer s reply
                    end)))
  | Some actor, P.Query { sql } -> (
      Obs.add c_queries 1;
      if not (Resilience.Breaker.allow s.breaker) then begin
        Obs.add c_breaker_open 1;
        send t s
          (err P.ADMISSION
             "session back-off: too many consecutive failing statements")
      end
      else
        let reply_and_count reply =
          if is_error reply then begin
            Obs.add c_query_errors 1;
            Resilience.Breaker.failure s.breaker
          end
          else Resilience.Breaker.success s.breaker;
          reply
        in
        match Parser.parse sql with
        | Error msg -> send t s (reply_and_count (err P.QUERY msg))
        | Ok stmt -> (
            match s.txn with
            | None -> (
                (* autocommit: run on the live database; a successful
                   write becomes its own logged, group-flushed txn *)
                let reply = execute_limited t t.live ~actor stmt in
                match classify stmt with
                | Read -> send t s (reply_and_count reply)
                | Write _ | Catalog _ ->
                    let reply = reply_and_count reply in
                    if is_error reply then send t s reply
                    else begin
                      wal_log_txn t ~actor [ sql ];
                      t.txns_committed <- t.txns_committed + 1;
                      defer s reply
                    end)
            | Some txn -> (
                (* inside a transaction everything runs on the snapshot:
                   reads are as of BEGIN plus own writes, and validated
                   writes join the write set for commit time *)
                let reply = execute_limited t txn.snapshot ~actor stmt in
                let reply = reply_and_count reply in
                (match classify stmt with
                | Read -> ()
                | Write table | Catalog table ->
                    if not (is_error reply) then begin
                      txn.writes <- (table, sql) :: txn.writes;
                      match classify stmt with
                      | Catalog _ -> txn.ddl <- true
                      | _ -> ()
                    end);
                send t s reply)))

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)

let accept_new t =
  match Unix.accept t.listen with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      Obs.add c_connections 1;
      t.next_sid <- t.next_sid + 1;
      Hashtbl.replace t.sessions fd
        {
          fd;
          sid = t.next_sid;
          framing = P.Framing.create ();
          breaker =
            Resilience.Breaker.create
              ~failure_threshold:t.config.breaker_failures ~cooldown_calls:4
              ();
          actor = None;
          txn = None;
        }

let read_buf = Bytes.create 65536

(* Read whatever is available on a ready session and process its
   complete frames, stopping early once a reply has been deferred to
   the group flush (per-session replies must stay in order). *)
let handle_readable t s deferred =
  let closed =
    match Unix.read s.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> true
    | n ->
        P.Framing.feed s.framing read_buf n;
        false
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> true
    | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> false
  in
  if closed then close_session t s
  else begin
    let session_deferred = ref false in
    let defer s' reply =
      session_deferred := true;
      deferred := (s', reply) :: !deferred
    in
    let continue = ref true in
    while !continue && not !session_deferred do
      match P.Framing.next s.framing with
      | Error msg ->
          send t s (err P.PROTO msg);
          close_session t s;
          continue := false
      | Ok None -> continue := false
      | Ok (Some frame) -> (
          match P.decode_request frame with
          | Error msg ->
              send t s (err P.PROTO msg);
              close_session t s;
              continue := false
          | Ok req ->
              handle_request t s ~defer req;
              if not (Hashtbl.mem t.sessions s.fd) then continue := false)
    done
  end

(* One WAL flush acknowledges every commit gathered this iteration:
   that is the group commit. *)
let flush_group t deferred =
  match !deferred with
  | [] -> ()
  | acks ->
      let acks = List.rev acks in
      Obs.add c_gc_batches 1;
      Obs.add c_gc_commits (List.length acks);
      (match Wal.flush t.wal with
      | Ok () -> List.iter (fun (s, reply) -> send t s reply) acks
      | Error msg ->
          List.iter
            (fun (s, _) -> send t s (err P.QUERY ("wal flush: " ^ msg)))
            acks)

let shutdown_loop t =
  Hashtbl.iter (fun _ s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
    t.sessions;
  Hashtbl.reset t.sessions;
  (try Unix.close t.listen with Unix.Unix_error _ -> ());
  if Sys.file_exists t.config.socket_path then
    Sys.remove t.config.socket_path

let serve t =
  (* a client that vanished mid-reply must surface as EPIPE on the write
     (the session is torn down), not kill the whole server process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let result =
    try
      while not (Atomic.get t.stopping) do
        let fds =
          t.listen
          :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.sessions []
        in
        let ready, _, _ =
          try Unix.select fds [] [] 0.05
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        let deferred = ref [] in
        List.iter
          (fun fd ->
            if fd == t.listen then accept_new t
            else
              match Hashtbl.find_opt t.sessions fd with
              | Some s -> handle_readable t s deferred
              | None -> ())
          ready;
        flush_group t deferred
      done;
      if t.dirty_stop then Ok ()
      else
        (* clean shutdown: flush any tail, then checkpoint *)
        match Wal.flush t.wal with
        | Error _ as e -> e
        | Ok () -> checkpoint t
    with
    | Genalg_fault.Fault.Crash_point _ as crash ->
        (* simulated process death: leave the WAL exactly as torn as the
           crash point left it, close nothing gracefully *)
        shutdown_loop t;
        Wal.close t.wal;
        raise crash
  in
  shutdown_loop t;
  Wal.close t.wal;
  result
