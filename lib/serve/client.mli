(** Blocking client for the genalg wire protocol ([docs/SERVING.md]).

    One connection is one session. Calls are synchronous
    request/reply; the bench drives N concurrent sessions by running N
    clients on N domains. *)

type t

val connect :
  ?actor:string -> ?client_version:int -> socket:string -> unit ->
  (t, string) result
(** Connect to a server's Unix-domain socket and perform the
    HELLO/WELCOME handshake ([actor] defaults to ["biologist"],
    [client_version] to {!Protocol.version} — tests override it to
    exercise version negotiation). An admission or version refusal
    surfaces as [Error]. *)

val session_id : t -> int
val actor : t -> string

val topology : t -> string
(** The serving shape the v2 WELCOME announced (["standalone"] or
    ["shard I/N"]); [""] when handshaking as a v1 client. *)

val query : t -> string -> (Protocol.reply, string) result
(** One extended-SQL statement. [Ok] carries the server's reply —
    including [Error_reply] (a query-level failure is not a transport
    failure); [Error] means the connection itself broke. *)

val fenced_query :
  t -> epoch:int -> ?lsn:int -> string -> (Protocol.reply, string) result
(** A coordinator write carrying the shard pair's fencing epoch
    (protocol v3). The server answers [Error_reply FENCED] when the
    epoch is not in force there; a statement whose [lsn] the server
    already applied is acknowledged without re-running. *)

val resync : t -> epoch:int -> ((int * int), string) result
(** The v3 resync handshake: offer an epoch, get back
    [(epoch now in force, applied LSN)] so the caller can replay the
    delta with {!fenced_query}. *)

val begin_ : t -> (unit, string) result
val commit : t -> (unit, string) result
val rollback : t -> (unit, string) result
(** Transaction control. [Error] carries the server's refusal
    (TXN_STATE, CONFLICT) or a transport failure. *)

val stats : t -> (string, string) result
(** The server's rendered stats page ([serve.*] counters included). *)

val ping : t -> (unit, string) result

val shutdown : t -> dirty:bool -> (unit, string) result
(** Ask the server to stop. [dirty:true] skips the checkpoint —
    recovery tests use it to simulate a crash right after commit
    acknowledgements. *)

val close : t -> unit
(** Send GOODBYE (best-effort) and close the socket. *)

val render_rows :
  columns:string list -> Genalg_storage.Dtype.value array list -> string
(** Client-side ASCII table for [Rows] replies (the client has no
    database handle, so values render through
    {!Genalg_storage.Dtype.value_to_display}). *)
