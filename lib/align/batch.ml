module Par = Genalg_par.Par

let align_pairs ?mode ?matrix ?gap pairs =
  Par.parallel_map
    (fun (query, subject) -> Pairwise.align ?mode ?matrix ?gap ~query ~subject ())
    pairs

let score_pairs ?mode ?matrix ?gap pairs =
  Par.parallel_map
    (fun (query, subject) ->
      Pairwise.score_only ?mode ?matrix ?gap ~query ~subject ())
    pairs

let align_many ?mode ?matrix ?gap ~query subjects =
  Par.parallel_map
    (fun subject -> Pairwise.align ?mode ?matrix ?gap ~query ~subject ())
    subjects

let best_match ?mode ?matrix ?gap ~query subjects =
  if Array.length subjects = 0 then None
  else begin
    let scores =
      Par.parallel_map
        (fun (_, subject) ->
          Pairwise.score_only ?mode ?matrix ?gap ~query ~subject ())
        subjects
    in
    let best = ref 0 in
    Array.iteri (fun i s -> if s > scores.(!best) then best := i) scores;
    let id, _ = subjects.(!best) in
    Some (id, scores.(!best))
  end

let blast_search_many ?matrix ?min_score ?x_drop ?gapped db ~queries =
  Par.parallel_map
    (fun query -> Blast.search ?matrix ?min_score ?x_drop ?gapped db ~query)
    queries

let blast_best_hits ?matrix ?min_score db ~queries =
  Par.parallel_map (fun query -> Blast.best_hit ?matrix ?min_score db ~query) queries
