(** Batch (data-parallel) alignment and similarity search.

    Pairwise DP and BLAST candidate scoring are the engine's most
    CPU-bound kernels; a batch of independent alignments is embarrassingly
    parallel, so these wrappers fan the work out over the
    {!Genalg_par.Par} domain pool. Results are merged in input order and
    are bit-identical to a sequential loop for any jobs setting.

    All the heavy lifting is done by {!Pairwise} and {!Blast}; both are
    pure (shared inputs are read-only), which is what makes running them
    on worker domains safe. *)

val align_pairs :
  ?mode:Pairwise.mode ->
  ?matrix:Scoring.t ->
  ?gap:Scoring.gap ->
  (string * string) array ->
  Pairwise.t array
(** [align_pairs [| (query, subject); ... |]] — one full alignment per
    (query, subject) pair, same defaults as {!Pairwise.align}. *)

val score_pairs :
  ?mode:Pairwise.mode ->
  ?matrix:Scoring.t ->
  ?gap:Scoring.gap ->
  (string * string) array ->
  int array
(** Scores only, in O(min) memory per pair ({!Pairwise.score_only}). *)

val align_many :
  ?mode:Pairwise.mode ->
  ?matrix:Scoring.t ->
  ?gap:Scoring.gap ->
  query:string ->
  string array ->
  Pairwise.t array
(** One query against many subjects. *)

val best_match :
  ?mode:Pairwise.mode ->
  ?matrix:Scoring.t ->
  ?gap:Scoring.gap ->
  query:string ->
  (string * string) array ->
  (string * int) option
(** [best_match ~query [| (id, letters); ... |]] scores the query against
    every named subject and returns the best [(id, score)] (first on
    ties); [None] on an empty batch. *)

val blast_search_many :
  ?matrix:Scoring.t ->
  ?min_score:int ->
  ?x_drop:int ->
  ?gapped:bool ->
  Blast.db ->
  queries:string array ->
  Blast.hit list array
(** {!Blast.search} for each query, parallel over queries (the shared
    k-mer database is only read). *)

val blast_best_hits :
  ?matrix:Scoring.t ->
  ?min_score:int ->
  Blast.db ->
  queries:string array ->
  Blast.hit option array
