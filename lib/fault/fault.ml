module Obs = Genalg_obs.Obs

let c_checks = Obs.counter "fault.checks"
let c_error = Obs.counter "fault.injected.error"
let c_latency = Obs.counter "fault.injected.latency"
let c_truncate = Obs.counter "fault.injected.truncate"
let c_corrupt = Obs.counter "fault.injected.corrupt"
let c_crash = Obs.counter "fault.injected.crash"

type kind = Error | Latency | Truncate | Corrupt | Crash

let kind_to_string = function
  | Error -> "error"
  | Latency -> "latency"
  | Truncate -> "truncate"
  | Corrupt -> "corrupt"
  | Crash -> "crash"

let kind_of_string = function
  | "error" -> Some Error
  | "latency" -> Some Latency
  | "truncate" -> Some Truncate
  | "corrupt" -> Some Corrupt
  | "crash" -> Some Crash
  | _ -> None

type rule = {
  site : string;
  kind : kind;
  p : float;
  after : int;
  times : int option;
  seconds : float;
  fraction : float;
  message : string;
}

(* runtime state of one rule: evaluation and fire counters drive the
   after/times schedule and the deterministic hash stream *)
type live_rule = { rule : rule; mutable evals : int; mutable fires : int }

type state = { state_seed : int; live : live_rule list }

let current : state option ref = ref None

exception Injected of string * string
exception Crash_point of string

(* ------------------------------------------------------------------ *)
(* Deterministic pseudo-randomness: splitmix64 finalizer over the seed,
   the site, the rule identity and the per-rule evaluation count.       *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let unit_float ~seed ~salt ~n =
  let h =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.of_int ((salt * 2654435761) + n)))
  in
  let bits = Int64.to_float (Int64.shift_right_logical h 11) in
  bits /. 9007199254740992. (* 2^53 *)

let rule_salt site lr =
  Hashtbl.hash (site, lr.rule.site, kind_to_string lr.rule.kind)

(* ------------------------------------------------------------------ *)
(* Always-on per-site tallies                                          *)

type tally = {
  checks : int;
  injected : int;
  errors : int;
  latencies : int;
  truncations : int;
  corruptions : int;
  crashes : int;
}

let zero_tally =
  { checks = 0; injected = 0; errors = 0; latencies = 0; truncations = 0;
    corruptions = 0; crashes = 0 }

let tally_table : (string, tally) Hashtbl.t = Hashtbl.create 16

let bump_check site =
  let t = Option.value (Hashtbl.find_opt tally_table site) ~default:zero_tally in
  Hashtbl.replace tally_table site { t with checks = t.checks + 1 };
  Obs.add c_checks 1

let bump_fire site kind =
  let t = Option.value (Hashtbl.find_opt tally_table site) ~default:zero_tally in
  let t = { t with injected = t.injected + 1 } in
  let t =
    match kind with
    | Error ->
        Obs.add c_error 1;
        { t with errors = t.errors + 1 }
    | Latency ->
        Obs.add c_latency 1;
        { t with latencies = t.latencies + 1 }
    | Truncate ->
        Obs.add c_truncate 1;
        { t with truncations = t.truncations + 1 }
    | Corrupt ->
        Obs.add c_corrupt 1;
        { t with corruptions = t.corruptions + 1 }
    | Crash ->
        Obs.add c_crash 1;
        { t with crashes = t.crashes + 1 }
  in
  Hashtbl.replace tally_table site t

let tallies () =
  Hashtbl.fold (fun site t acc -> (site, t) :: acc) tally_table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_injected () =
  Hashtbl.fold (fun _ t acc -> acc + t.injected) tally_table 0

let reset_tallies () = Hashtbl.reset tally_table

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)

let parse_clause clause =
  match String.split_on_char ':' clause with
  | [] | [ "" ] -> Stdlib.Error "empty clause"
  | site :: kind_str :: params -> (
      match kind_of_string (String.trim kind_str) with
      | None -> Stdlib.Error (Printf.sprintf "unknown fault kind %S" kind_str)
      | Some kind ->
          let default_fraction = match kind with Truncate -> 0.5 | _ -> 0.01 in
          let init =
            { site = String.trim site; kind; p = 1.0; after = 0; times = None;
              seconds = 0.25; fraction = default_fraction;
              message = Printf.sprintf "injected fault at %s" (String.trim site) }
          in
          let rec fold r = function
            | [] -> Stdlib.Ok r
            | param :: rest -> (
                match String.index_opt param '=' with
                | None -> Stdlib.Error (Printf.sprintf "bad parameter %S" param)
                | Some i -> (
                    let k = String.trim (String.sub param 0 i) in
                    let v = String.sub param (i + 1) (String.length param - i - 1) in
                    match k with
                    | "p" -> (
                        match float_of_string_opt v with
                        | Some p when p >= 0. && p <= 1. -> fold { r with p } rest
                        | _ -> Stdlib.Error (Printf.sprintf "bad probability %S" v))
                    | "after" -> (
                        match int_of_string_opt v with
                        | Some after when after >= 0 -> fold { r with after } rest
                        | _ -> Stdlib.Error (Printf.sprintf "bad after %S" v))
                    | "times" -> (
                        match int_of_string_opt v with
                        | Some n when n >= 0 -> fold { r with times = Some n } rest
                        | _ -> Stdlib.Error (Printf.sprintf "bad times %S" v))
                    | "s" -> (
                        match float_of_string_opt v with
                        | Some seconds when seconds >= 0. -> fold { r with seconds } rest
                        | _ -> Stdlib.Error (Printf.sprintf "bad seconds %S" v))
                    | "frac" -> (
                        match float_of_string_opt v with
                        | Some fraction when fraction >= 0. && fraction <= 1. ->
                            fold { r with fraction } rest
                        | _ -> Stdlib.Error (Printf.sprintf "bad fraction %S" v))
                    | "msg" -> fold { r with message = v } rest
                    | _ -> Stdlib.Error (Printf.sprintf "unknown parameter %S" k)))
          in
          if init.site = "" then Stdlib.Error "empty site"
          else fold init params)
  | [ _ ] -> Stdlib.Error (Printf.sprintf "clause %S has no fault kind" clause)

let parse spec =
  let clauses =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go seed rules = function
    | [] -> Stdlib.Ok (seed, List.rev rules)
    | clause :: rest ->
        if String.length clause > 5 && String.sub clause 0 5 = "seed=" then
          match int_of_string_opt (String.sub clause 5 (String.length clause - 5)) with
          | Some s -> go s rules rest
          | None -> Stdlib.Error (Printf.sprintf "bad seed clause %S" clause)
        else begin
          match parse_clause clause with
          | Stdlib.Ok r -> go seed (r :: rules) rest
          | Error msg -> Stdlib.Error (Printf.sprintf "%s (in clause %S)" msg clause)
        end
  in
  go 1 [] clauses

let configure spec =
  match parse spec with
  | Stdlib.Error _ as e -> e
  | Stdlib.Ok (_, []) ->
      current := None;
      reset_tallies ();
      Stdlib.Ok ()
  | Stdlib.Ok (seed, rules) ->
      current :=
        Some
          { state_seed = seed;
            live = List.map (fun rule -> { rule; evals = 0; fires = 0 }) rules };
      reset_tallies ();
      Stdlib.Ok ()

let configure_env () =
  match Sys.getenv_opt "GENALG_FAULTS" with
  | None | Some "" -> Stdlib.Ok ()
  | Some spec -> configure spec

let disable () = current := None
let active () = !current <> None
let seed () = match !current with Some s -> s.state_seed | None -> 0
let rules () = match !current with Some s -> List.map (fun l -> l.rule) s.live | None -> []

let render_rule r =
  let b = Buffer.create 64 in
  Buffer.add_string b (r.site ^ ":" ^ kind_to_string r.kind);
  if r.p <> 1.0 then Buffer.add_string b (Printf.sprintf ":p=%g" r.p);
  if r.after <> 0 then Buffer.add_string b (Printf.sprintf ":after=%d" r.after);
  (match r.times with
  | Some n -> Buffer.add_string b (Printf.sprintf ":times=%d" n)
  | None -> ());
  (match r.kind with
  | Latency -> Buffer.add_string b (Printf.sprintf ":s=%g" r.seconds)
  | Truncate | Corrupt -> Buffer.add_string b (Printf.sprintf ":frac=%g" r.fraction)
  | Error | Crash -> ());
  Buffer.contents b

let render_spec () =
  match !current with
  | None -> ""
  | Some s ->
      String.concat ";"
        (Printf.sprintf "seed=%d" s.state_seed
        :: List.map (fun l -> render_rule l.rule) s.live)

(* ------------------------------------------------------------------ *)
(* Rule evaluation                                                     *)

let site_matches pattern site =
  pattern = site
  || String.length pattern > 0
     && pattern.[String.length pattern - 1] = '*'
     &&
     let prefix = String.sub pattern 0 (String.length pattern - 1) in
     String.length site >= String.length prefix
     && String.sub site 0 (String.length prefix) = prefix

(* decide whether [lr] fires for this hit at [site]; advances the rule's
   deterministic schedule either way *)
let decide state site lr =
  lr.evals <- lr.evals + 1;
  if lr.evals <= lr.rule.after then false
  else
    match lr.rule.times with
    | Some m when lr.fires >= m -> false
    | _ ->
        let u =
          unit_float ~seed:state.state_seed ~salt:(rule_salt site lr) ~n:lr.evals
        in
        if u < lr.rule.p then begin
          lr.fires <- lr.fires + 1;
          true
        end
        else false

(* first firing rule of the given kinds at this site *)
let fire_first state site kinds =
  List.find_opt
    (fun lr ->
      List.mem lr.rule.kind kinds
      && site_matches lr.rule.site site
      && decide state site lr)
    state.live

let hit site =
  match !current with
  | None -> ()
  | Some state -> (
      bump_check site;
      match fire_first state site [ Error ] with
      | Some lr ->
          bump_fire site Error;
          raise (Injected (site, lr.rule.message))
      | None -> ())

let latency_s site =
  match !current with
  | None -> 0.
  | Some state -> (
      bump_check site;
      match fire_first state site [ Latency ] with
      | Some lr ->
          bump_fire site Latency;
          lr.rule.seconds
      | None -> 0.)

let mangle site payload =
  match !current with
  | None -> payload
  | Some state -> (
      bump_check site;
      match fire_first state site [ Truncate; Corrupt ] with
      | None -> payload
      | Some lr -> (
          let n = String.length payload in
          match lr.rule.kind with
          | Truncate ->
              bump_fire site Truncate;
              let keep = int_of_float (lr.rule.fraction *. float_of_int n) in
              String.sub payload 0 (max 0 (min n keep))
          | Corrupt ->
              bump_fire site Corrupt;
              if n = 0 then payload
              else begin
                let flips =
                  max 1 (int_of_float (lr.rule.fraction *. float_of_int n))
                in
                let b = Bytes.of_string payload in
                for i = 1 to flips do
                  let u =
                    unit_float ~seed:state.state_seed
                      ~salt:(rule_salt site lr + i)
                      ~n:lr.evals
                  in
                  let pos = int_of_float (u *. float_of_int n) mod n in
                  Bytes.set b pos
                    (Char.chr (Char.code (Bytes.get b pos) lxor 0x55))
                done;
                Bytes.to_string b
              end
          | Error | Latency | Crash -> payload))

let crash site =
  match !current with
  | None -> ()
  | Some state -> (
      bump_check site;
      match fire_first state site [ Crash ] with
      | Some _ ->
          bump_fire site Crash;
          raise (Crash_point site)
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Crash-point registry                                                *)

let crash_point_set : (string, unit) Hashtbl.t = Hashtbl.create 8

let register_crash_point site = Hashtbl.replace crash_point_set site ()

let crash_points () =
  Hashtbl.fold (fun site () acc -> site :: acc) crash_point_set []
  |> List.sort String.compare
