(** Deterministic fault injection for robustness experiments.

    The paper's availability argument (the Figure-1 mediator degrades when
    remote repositories fail; the Figure-3 warehouse keeps serving) is only
    measurable if the engine can misbehave on demand. This module is a
    process-wide registry of {e fault rules}, keyed by {e site} — a
    dot-separated name such as [source.synthbank] or
    [storage.save.tmp_partial] — that instrumented code consults at each
    boundary crossing.

    Everything is deterministic: a rule fires based on a pure hash of the
    configured seed, the site, the rule identity and a per-rule hit
    counter, so the same spec replays the same fault sequence run after
    run. Nothing fires unless a spec has been {!configure}d (the default),
    and the disabled hooks cost one branch.

    Spec grammar (semicolon-separated clauses; see docs/ROBUSTNESS.md):
    {v
    spec   ::= clause (';' clause)*
    clause ::= 'seed=' INT
             | site ':' kind (':' param)*
    site   ::= dotted name, optionally ending in '*' (prefix match)
    kind   ::= 'error' | 'latency' | 'truncate' | 'corrupt' | 'crash'
    param  ::= 'p=' FLOAT      probability per hit          (default 1)
             | 'after=' INT    skip the first n hits        (default 0)
             | 'times=' INT    fire at most n times         (default inf)
             | 's=' FLOAT     latency seconds, simulated   (default 0.25)
             | 'frac=' FLOAT   payload fraction             (see below)
             | 'msg=' STRING   injected error message
    v}

    For [truncate], [frac] is the fraction of the payload kept (default
    0.5); for [corrupt] it is the fraction of bytes flipped (default
    0.01, at least one byte).

    Accounting is always on while a spec is active: per-site tallies of
    checks and injections are kept independently of the metrics layer,
    and mirrored into [fault.*] Obs counters when that layer is enabled. *)

type kind = Error | Latency | Truncate | Corrupt | Crash

val kind_to_string : kind -> string

type rule = {
  site : string;  (** exact site, or prefix when it ends in ['*'] *)
  kind : kind;
  p : float;
  after : int;
  times : int option;
  seconds : float;
  fraction : float;
  message : string;
}

exception Injected of string * string
(** [Injected (site, message)]: an [error] rule fired at [site]. *)

exception Crash_point of string
(** A [crash] rule fired: the process is considered dead at this point.
    Resilience machinery must never catch this — only test harnesses and
    benches that simulate a restart do. *)

(** {1 Configuration} *)

val configure : string -> (unit, string) result
(** Parse a spec and activate it. Replaces any previous spec and resets
    all tallies and per-rule counters, so a reconfigure replays the same
    deterministic sequence. An empty spec deactivates injection. *)

val configure_env : unit -> (unit, string) result
(** [configure] from [GENALG_FAULTS] if set; [Ok ()] if unset. *)

val disable : unit -> unit
(** Deactivate injection and clear the spec (tallies are kept until the
    next {!configure}). *)

val active : unit -> bool

val seed : unit -> int
(** The active seed (default 1, [seed=] clause overrides); 0 when
    inactive. *)

val rules : unit -> rule list
val render_spec : unit -> string
(** The active spec, normalized (one clause per rule, seed first). *)

(** {1 Hooks for instrumented code} *)

val hit : string -> unit
(** Evaluate [error] rules at this site; raises {!Injected} when one
    fires. *)

val latency_s : string -> float
(** Injected extra latency (simulated seconds) for this site; 0 when
    nothing fires. *)

val mangle : string -> string -> string
(** [mangle site payload]: apply a firing [truncate]/[corrupt] rule to
    the payload; identity when nothing fires. *)

val crash : string -> unit
(** Evaluate [crash] rules; raises {!Crash_point} when one fires. *)

(** {1 Crash-point registry} *)

val register_crash_point : string -> unit
(** Announce a site at which {!crash} is consulted, so tests can
    enumerate the crash matrix. Idempotent. *)

val crash_points : unit -> string list
(** Every registered crash point, sorted. *)

(** {1 Accounting (always on while a spec is active)} *)

type tally = {
  checks : int;       (** hook evaluations at this site *)
  injected : int;     (** total faults fired *)
  errors : int;
  latencies : int;
  truncations : int;
  corruptions : int;
  crashes : int;
}

val tallies : unit -> (string * tally) list
(** Per-site tallies, sorted by site. *)

val total_injected : unit -> int
val reset_tallies : unit -> unit
