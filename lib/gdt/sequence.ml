type alphabet = Dna | Rna | Protein
type encoding = Packed2 | Packed4 | Byte

type t = {
  alphabet : alphabet;
  encoding : encoding;
  len : int;
  payload : Bytes.t; (* packed data; layout depends on [encoding] *)
}

let alphabet t = t.alphabet
let encoding t = t.encoding
let length t = t.len

(* ------------------------------------------------------------------ *)
(* Encoding tables                                                     *)

(* Packed2: A=0 C=1 G=2 T/U=3, four bases per byte, little-end first.   *)

let packed2_code = function
  | 'A' -> 0
  | 'C' -> 1
  | 'G' -> 2
  | 'T' | 'U' -> 3
  | _ -> -1

let packed2_char_dna = [| 'A'; 'C'; 'G'; 'T' |]
let packed2_char_rna = [| 'A'; 'C'; 'G'; 'U' |]

(* Packed4: IUPAC bit sets A=1 C=2 G=4 T=8, two bases per byte,
   low nibble first. *)

let packed4_code c =
  match c with
  | 'A' -> 1
  | 'C' -> 2
  | 'G' -> 4
  | 'T' | 'U' -> 8
  | 'R' -> 5
  | 'Y' -> 10
  | 'S' -> 6
  | 'W' -> 9
  | 'K' -> 12
  | 'M' -> 3
  | 'B' -> 14
  | 'D' -> 13
  | 'H' -> 11
  | 'V' -> 7
  | 'N' -> 15
  | _ -> -1

let packed4_char_dna =
  (* index = bit set; 0 is unused *)
  [| '?'; 'A'; 'C'; 'M'; 'G'; 'R'; 'S'; 'V'; 'T'; 'W'; 'Y'; 'H'; 'K'; 'D'; 'B'; 'N' |]

let packed4_char_rna =
  [| '?'; 'A'; 'C'; 'M'; 'G'; 'R'; 'S'; 'V'; 'U'; 'W'; 'Y'; 'H'; 'K'; 'D'; 'B'; 'N' |]

let valid_protein c = Amino_acid.of_char c <> None

let valid_nucleotide alpha c =
  match Nucleotide.of_char c with
  | None -> false
  | Some b -> (
      match alpha, b with
      | Dna, Nucleotide.U -> false
      | Rna, Nucleotide.T -> false
      | (Dna | Rna), _ -> true
      | Protein, _ -> false)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let pack2 s =
  let n = String.length s in
  let buf = Bytes.make ((n + 3) / 4) '\000' in
  for i = 0 to n - 1 do
    let code = packed2_code s.[i] in
    let byte = i / 4 and off = (i mod 4) * 2 in
    Bytes.unsafe_set buf byte
      (Char.chr (Char.code (Bytes.unsafe_get buf byte) lor (code lsl off)))
  done;
  buf

let pack4 s =
  let n = String.length s in
  let buf = Bytes.make ((n + 1) / 2) '\000' in
  for i = 0 to n - 1 do
    let code = packed4_code s.[i] in
    let byte = i / 2 and off = (i mod 2) * 4 in
    Bytes.unsafe_set buf byte
      (Char.chr (Char.code (Bytes.unsafe_get buf byte) lor (code lsl off)))
  done;
  buf

let of_string alpha s =
  let n = String.length s in
  let s = String.uppercase_ascii s in
  match alpha with
  | Protein ->
      let bad = ref None in
      String.iteri (fun i c -> if !bad = None && not (valid_protein c) then bad := Some (i, c)) s;
      (match !bad with
      | Some (i, c) ->
          Error (Printf.sprintf "invalid amino-acid code %C at position %d" c i)
      | None -> Ok { alphabet = Protein; encoding = Byte; len = n; payload = Bytes.of_string s })
  | Dna | Rna ->
      let bad = ref None and canonical = ref true in
      String.iteri
        (fun i c ->
          if !bad = None then
            if not (valid_nucleotide alpha c) then bad := Some (i, c)
            else if packed2_code c < 0 then canonical := false)
        s;
      (match !bad with
      | Some (i, c) ->
          Error (Printf.sprintf "invalid nucleotide code %C at position %d" c i)
      | None ->
          if !canonical then
            Ok { alphabet = alpha; encoding = Packed2; len = n; payload = pack2 s }
          else Ok { alphabet = alpha; encoding = Packed4; len = n; payload = pack4 s })

let of_string_exn alpha s =
  match of_string alpha s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Sequence.of_string_exn: " ^ msg)

let dna s = of_string_exn Dna s
let rna s = of_string_exn Rna s
let protein s = of_string_exn Protein s
let empty alpha = of_string_exn alpha ""

(* ------------------------------------------------------------------ *)
(* Access                                                              *)

(* Positional code reads parameterized by a byte offset so the same
   accessors serve both an owned payload (off = 0) and a framed
   serialized buffer (off = 9, see {!to_bytes}) without copying. *)

let get2 buf off i =
  (Char.code (Bytes.unsafe_get buf (off + (i / 4))) lsr ((i mod 4) * 2)) land 3

let get4 buf off i =
  (Char.code (Bytes.unsafe_get buf (off + (i / 2))) lsr ((i mod 2) * 4)) land 15

let char_at alphabet encoding buf off i =
  match encoding with
  | Byte -> Bytes.unsafe_get buf (off + i)
  | Packed2 -> (
      let code = get2 buf off i in
      match alphabet with
      | Rna -> Array.unsafe_get packed2_char_rna code
      | Dna | Protein -> Array.unsafe_get packed2_char_dna code)
  | Packed4 -> (
      let code = get4 buf off i in
      match alphabet with
      | Rna -> Array.unsafe_get packed4_char_rna code
      | Dna | Protein -> Array.unsafe_get packed4_char_dna code)

let unsafe_get t i = char_at t.alphabet t.encoding t.payload 0 i

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Sequence.get: index out of bounds";
  unsafe_get t i

let get_base t i =
  match t.alphabet with
  | Protein -> invalid_arg "Sequence.get_base: protein sequence"
  | Dna | Rna -> Nucleotide.of_char_exn (get t i)

let get_residue t i =
  match t.alphabet with
  | Protein -> Amino_acid.of_char_exn (get t i)
  | Dna | Rna -> invalid_arg "Sequence.get_residue: nucleotide sequence"

let to_string t =
  String.init t.len (fun i -> unsafe_get t i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (unsafe_get t i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (unsafe_get t i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc

let count pred t =
  fold_left (fun n c -> if pred c then n + 1 else n) 0 t

let gc_count t =
  match t.alphabet with
  | Protein -> invalid_arg "Sequence.gc_count: protein sequence"
  | Dna | Rna -> count (function 'G' | 'C' | 'S' -> true | _ -> false) t

(* ------------------------------------------------------------------ *)
(* Slicing and assembly                                                *)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Sequence.sub: bounds";
  of_string_exn t.alphabet (String.init len (fun i -> unsafe_get t (pos + i)))

let concat = function
  | [] -> empty Dna
  | first :: _ as parts ->
      let alpha = first.alphabet in
      let ok = List.for_all (fun p -> p.alphabet = alpha) parts in
      if not ok then invalid_arg "Sequence.concat: mixed alphabets";
      of_string_exn alpha (String.concat "" (List.map to_string parts))

let append a b = concat [ a; b ]

let rev t =
  of_string_exn t.alphabet (String.init t.len (fun i -> unsafe_get t (t.len - 1 - i)))

let complement t =
  match t.alphabet with
  | Protein -> invalid_arg "Sequence.complement: protein sequence"
  | Dna | Rna ->
      let comp c =
        let b = Nucleotide.complement (Nucleotide.of_char_exn c) in
        let b = if t.alphabet = Rna then Nucleotide.to_rna b else b in
        Nucleotide.to_char b
      in
      of_string_exn t.alphabet (String.init t.len (fun i -> comp (unsafe_get t i)))

let reverse_complement t = rev (complement t)

let to_rna t =
  match t.alphabet with
  | Rna -> t
  | Protein -> invalid_arg "Sequence.to_rna: protein sequence"
  | Dna ->
      let conv c = if c = 'T' then 'U' else c in
      of_string_exn Rna (String.init t.len (fun i -> conv (unsafe_get t i)))

let to_dna t =
  match t.alphabet with
  | Dna -> t
  | Protein -> invalid_arg "Sequence.to_dna: protein sequence"
  | Rna ->
      let conv c = if c = 'U' then 'T' else c in
      of_string_exn Dna (String.init t.len (fun i -> conv (unsafe_get t i)))

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

let char_matches alpha a b =
  if a = b then true
  else
    match alpha with
    | Protein -> false
    | Dna | Rna -> (
        match Nucleotide.of_char a, Nucleotide.of_char b with
        | Some x, Some y -> Nucleotide.matches x y
        | _ -> false)

(* Generic matcher: decode one subject char at a time and compare via
   [char_matches]. Works for every alphabet/encoding pair. *)
let find_chars alphabet encoding buf off len ~start ~pattern =
  let m = String.length pattern in
  let limit = len - m in
  let rec at i j =
    if j = m then true
    else if char_matches alphabet (char_at alphabet encoding buf off (i + j)) pattern.[j]
    then at i (j + 1)
    else false
  in
  let rec loop i =
    if i > limit then None else if at i 0 then Some i else loop (i + 1)
  in
  loop (max 0 start)

(* Packed2 fast path. Canonical bases have exactly one 2-bit code each
   and T/U share code 3, so for a canonical pattern [char_matches]
   degenerates to code equality: a window of up to 31 subject codes
   packs into one 62-bit word (code j at bits 2j..2j+1) compared
   against a precomputed pattern word, advancing by one shift+or per
   position instead of per-char decode. Patterns longer than 31 verify
   the remaining codes only on a window hit. *)
let find_packed2 buf off len ~start ~pattern =
  let m = String.length pattern in
  let start = max 0 start in
  let limit = len - m in
  if limit < start then None
  else begin
    let mm = min m 31 in
    let pat = ref 0 in
    for j = mm - 1 downto 0 do
      pat := (!pat lsl 2) lor packed2_code pattern.[j]
    done;
    let pat = !pat in
    let verify_tail i =
      let rec go j =
        j >= m || (get2 buf off (i + j) = packed2_code pattern.[j] && go (j + 1))
      in
      go mm
    in
    let w = ref 0 in
    for j = mm - 1 downto 0 do
      w := (!w lsl 2) lor get2 buf off (start + j)
    done;
    let rec loop i =
      if !w = pat && (mm = m || verify_tail i) then Some i
      else if i >= limit then None
      else begin
        w := (!w lsr 2) lor (get2 buf off (i + mm) lsl (2 * (mm - 1)));
        loop (i + 1)
      end
    in
    loop start
  end

let all_packed2 pattern =
  let m = String.length pattern in
  let rec go i = i >= m || (packed2_code pattern.[i] >= 0 && go (i + 1)) in
  go 0

let find_in alphabet encoding buf off len ~start ~pattern =
  let m = String.length pattern in
  let pattern = String.uppercase_ascii pattern in
  if m = 0 then if start <= len then Some start else None
  else if encoding = Packed2 && all_packed2 pattern then
    find_packed2 buf off len ~start ~pattern
  else find_chars alphabet encoding buf off len ~start ~pattern

let find ?(start = 0) ~pattern t =
  find_in t.alphabet t.encoding t.payload 0 t.len ~start ~pattern

let find_all ~pattern t =
  let rec loop start acc =
    match find ~start ~pattern t with
    | None -> List.rev acc
    | Some i -> loop (i + 1) (i :: acc)
  in
  if String.length pattern = 0 then []
  else loop 0 []

let contains ~pattern t = find ~pattern t <> None

(* ------------------------------------------------------------------ *)
(* Packed word-level kernels                                           *)

(* GC counting one payload byte at a time via 256-entry tables: each
   Packed2 byte holds four 2-bit codes (G=2, C=1), each Packed4 byte two
   IUPAC nibbles (G=4, C=2, S=6 — the exact set [gc_count] accepts). *)

let gc2_byte_lut =
  Array.init 256 (fun b ->
      let n = ref 0 in
      for s = 0 to 3 do
        match (b lsr (s * 2)) land 3 with 1 | 2 -> incr n | _ -> ()
      done;
      !n)

let gc4_byte_lut =
  Array.init 256 (fun b ->
      let nib = function 2 | 4 | 6 -> 1 | _ -> 0 in
      nib (b land 15) + nib (b lsr 4))

(* The bases of a partial trailing byte are counted individually:
   [of_bytes] does not validate padding bits, so a crafted final byte
   must not leak into the count. *)
let gc_packed encoding buf off len =
  match encoding with
  | Packed2 ->
      let full = len / 4 in
      let n = ref 0 in
      for b = 0 to full - 1 do
        n := !n + Array.unsafe_get gc2_byte_lut (Char.code (Bytes.unsafe_get buf (off + b)))
      done;
      for i = full * 4 to len - 1 do
        match get2 buf off i with 1 | 2 -> incr n | _ -> ()
      done;
      !n
  | Packed4 ->
      let full = len / 2 in
      let n = ref 0 in
      for b = 0 to full - 1 do
        n := !n + Array.unsafe_get gc4_byte_lut (Char.code (Bytes.unsafe_get buf (off + b)))
      done;
      if len land 1 = 1 then begin
        match get4 buf off (len - 1) with 2 | 4 | 6 -> incr n | _ -> ()
      end;
      !n
  | Byte ->
      let n = ref 0 in
      for i = 0 to len - 1 do
        match Bytes.unsafe_get buf (off + i) with 'G' | 'C' | 'S' -> incr n | _ -> ()
      done;
      !n

(* Rolling k-mer extraction straight off the packed codes, using the
   same big-endian hash convention as [Kmer_index] (A=0 C=1 G=2 T=3;
   U shares T's code). The valid counter resets on any base without a
   canonical 2-bit code, so ambiguity codes never produce a k-mer. *)
let fold_kmers ~k f init t =
  if k < 1 || k > 31 then invalid_arg "Sequence.fold_kmers: k must be in [1, 31]";
  let mask = (1 lsl (2 * k)) - 1 in
  let code_at =
    match t.encoding with
    | Packed2 -> fun i -> get2 t.payload 0 i
    | Packed4 | Byte -> fun i -> packed2_code (Char.uppercase_ascii (unsafe_get t i))
  in
  let acc = ref init in
  let hash = ref 0 and valid = ref 0 in
  for i = 0 to t.len - 1 do
    let c = code_at i in
    if c < 0 then begin
      valid := 0;
      hash := 0
    end
    else begin
      hash := ((!hash lsl 2) lor c) land mask;
      incr valid;
      if !valid >= k then acc := f !acc (i - k + 1) !hash
    end
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

let equal a b =
  a.alphabet = b.alphabet && a.len = b.len
  &&
  let rec loop i =
    i >= a.len || (unsafe_get a i = unsafe_get b i && loop (i + 1))
  in
  loop 0

let compare a b =
  let c = Stdlib.compare a.alphabet b.alphabet in
  if c <> 0 then c
  else
    let n = min a.len b.len in
    let rec loop i =
      if i = n then Stdlib.compare a.len b.len
      else
        let c = Char.compare (unsafe_get a i) (unsafe_get b i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash t = Hashtbl.hash (t.alphabet, to_string t)

let memory_bytes t = Bytes.length t.payload

(* ------------------------------------------------------------------ *)
(* Binary serialization (the "compact storage area" of section 4.4)    *)

let tag_of t =
  let a = match t.alphabet with Dna -> 0 | Rna -> 1 | Protein -> 2 in
  let e = match t.encoding with Packed2 -> 0 | Packed4 -> 1 | Byte -> 2 in
  (a lsl 2) lor e

let to_bytes t =
  let payload_len = Bytes.length t.payload in
  let buf = Bytes.create (1 + 8 + payload_len) in
  Bytes.set buf 0 (Char.chr (tag_of t));
  Bytes.set_int64_le buf 1 (Int64.of_int t.len);
  Bytes.blit t.payload 0 buf 9 payload_len;
  buf

let of_bytes buf =
  if Bytes.length buf < 9 then Error "Sequence.of_bytes: truncated header"
  else
    let tag = Char.code (Bytes.get buf 0) in
    let alpha =
      match tag lsr 2 with 0 -> Some Dna | 1 -> Some Rna | 2 -> Some Protein | _ -> None
    in
    let enc =
      match tag land 3 with 0 -> Some Packed2 | 1 -> Some Packed4 | 2 -> Some Byte | _ -> None
    in
    match alpha, enc with
    | Some alphabet, Some encoding ->
        let len = Int64.to_int (Bytes.get_int64_le buf 1) in
        let expected =
          match encoding with
          | Packed2 -> (len + 3) / 4
          | Packed4 -> (len + 1) / 2
          | Byte -> len
        in
        if len < 0 || Bytes.length buf <> 9 + expected then
          Error "Sequence.of_bytes: payload length mismatch"
        else
          Ok { alphabet; encoding; len; payload = Bytes.sub buf 9 expected }
    | _ -> Error "Sequence.of_bytes: bad tag byte"

(* ------------------------------------------------------------------ *)
(* Framed kernels: operate on a [to_bytes] buffer in place              *)

(* Validates the frame exactly as [of_bytes] does but keeps the payload
   where it is (offset 9) instead of copying it out — the scan kernels
   below are the reason rows never need a per-row [Bytes.sub]. *)
let frame_info buf =
  if Bytes.length buf < 9 then None
  else
    let tag = Char.code (Bytes.get buf 0) in
    let alpha =
      match tag lsr 2 with 0 -> Some Dna | 1 -> Some Rna | 2 -> Some Protein | _ -> None
    in
    let enc =
      match tag land 3 with 0 -> Some Packed2 | 1 -> Some Packed4 | 2 -> Some Byte | _ -> None
    in
    match alpha, enc with
    | Some alphabet, Some encoding ->
        let len = Int64.to_int (Bytes.get_int64_le buf 1) in
        let expected =
          match encoding with
          | Packed2 -> (len + 3) / 4
          | Packed4 -> (len + 1) / 2
          | Byte -> len
        in
        if len < 0 || Bytes.length buf <> 9 + expected then None
        else Some (alphabet, encoding, len)
    | _ -> None

let framed_info buf =
  match frame_info buf with
  | Some (alphabet, _, len) -> Some (alphabet, len)
  | None -> None

let framed_gc_count buf =
  match frame_info buf with
  | Some ((Dna | Rna), encoding, len) -> Some (gc_packed encoding buf 9 len)
  | Some (Protein, _, _) | None -> None

let framed_find ?(start = 0) ~pattern buf =
  match frame_info buf with
  | Some (alphabet, encoding, len) ->
      Some (find_in alphabet encoding buf 9 len ~start ~pattern)
  | None -> None

let framed_contains ~pattern buf =
  match framed_find ~pattern buf with
  | Some r -> Some (r <> None)
  | None -> None

let pp ppf t =
  let n = min t.len 60 in
  let prefix = String.init n (fun i -> unsafe_get t i) in
  if t.len <= 60 then Format.fprintf ppf "%s" prefix
  else Format.fprintf ppf "%s… (%d)" prefix t.len
