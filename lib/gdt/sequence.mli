(** Compact, immutable genomic sequences.

    Section 4.4 of the paper demands that GDT representations "not employ
    pointer data structures in main memory but be embedded into compact
    storage areas which can be efficiently transferred between main memory
    and disk". This module provides exactly that: sequences are stored in
    flat byte buffers using the densest encoding the data admits
    (2 bits/base for canonical DNA/RNA, 4 bits/base for IUPAC-ambiguous
    nucleotide data, 1 byte/residue otherwise), and serialize to a framed
    binary form with no unpacking cost beyond a buffer copy.

    A single representation serves every algebra operation (section 4.4's
    "reconciling the various requirements posed by different algorithms
    within a single data structure"). *)

type alphabet = Dna | Rna | Protein

type encoding =
  | Packed2  (** 2 bits per base; canonical ACGT / ACGU only *)
  | Packed4  (** 4 bits per base; full IUPAC nucleotide alphabet *)
  | Byte     (** 1 byte per residue; proteins and anything else *)

type t

val alphabet : t -> alphabet
val encoding : t -> encoding

val of_string : alphabet -> string -> (t, string) result
(** Validate and pack a textual sequence. Letters are case-normalised.
    Returns [Error] describing the first offending character. The densest
    valid encoding is chosen automatically. *)

val of_string_exn : alphabet -> string -> t
(** Like {!of_string}; raises [Invalid_argument] on bad input. *)

val dna : string -> t
(** [dna s] is [of_string_exn Dna s]. *)

val rna : string -> t
val protein : string -> t

val to_string : t -> string
(** Upper-case textual form. *)

val length : t -> int

val get : t -> int -> char
(** [get t i] is the upper-case letter at 0-based position [i].
    Raises [Invalid_argument] when out of bounds. *)

val get_base : t -> int -> Nucleotide.t
(** Typed accessor for nucleotide alphabets; raises [Invalid_argument] on
    protein sequences. *)

val get_residue : t -> int -> Amino_acid.t
(** Typed accessor for protein sequences. *)

val sub : t -> pos:int -> len:int -> t
(** Contiguous subsequence; raises [Invalid_argument] on bad bounds. *)

val concat : t list -> t
(** Concatenation. All inputs must share an alphabet; the empty list yields
    an empty DNA sequence. *)

val append : t -> t -> t

val rev : t -> t
(** Reversal (not complementation). *)

val complement : t -> t
(** Base-wise Watson–Crick complement; raises [Invalid_argument] for
    proteins. *)

val reverse_complement : t -> t

val to_rna : t -> t
(** Reinterpret a DNA sequence as RNA (T becomes U). Identity on RNA. *)

val to_dna : t -> t
(** Reverse of {!to_rna}. Identity on DNA. *)

val iter : (char -> unit) -> t -> unit
val iteri : (int -> char -> unit) -> t -> unit
val fold_left : ('a -> char -> 'a) -> 'a -> t -> 'a

val count : (char -> bool) -> t -> int
(** Number of positions whose letter satisfies the predicate. *)

val gc_count : t -> int
(** Occurrences of G, C or S (strong). Raises on proteins. *)

val find : ?start:int -> pattern:string -> t -> int option
(** Leftmost exact occurrence of [pattern] at or after [start] (default 0);
    ambiguity codes in either pattern or subject match via
    {!Nucleotide.matches} for nucleotide alphabets. *)

val find_all : pattern:string -> t -> int list
(** All (possibly overlapping) occurrences, ascending. *)

val contains : pattern:string -> t -> bool

val equal : t -> t -> bool
(** Letter-wise equality (same alphabet, same letters); encodings may
    differ. *)

val compare : t -> t -> int
(** Lexicographic on letters, alphabet first. *)

val hash : t -> int

val memory_bytes : t -> int
(** Bytes occupied by the packed payload (excludes OCaml headers). *)

val to_bytes : t -> bytes
(** Framed binary serialization: 1 tag byte (alphabet, encoding), 8-byte
    little-endian length, then the packed payload verbatim. *)

val of_bytes : bytes -> (t, string) result
(** Inverse of {!to_bytes}. *)

(** {2 Framed kernels}

    Word-level operations evaluated directly on a {!to_bytes} buffer,
    reading the packed payload in place — no [Bytes.sub], no decode to
    text, no per-row allocation. Each returns [None] when the buffer is
    not a valid frame (exactly the cases {!of_bytes} rejects), or when
    the operation does not apply to the framed alphabet; callers fall
    back to the decoding path to reproduce its error message. *)

val framed_info : bytes -> (alphabet * int) option
(** Alphabet and base-pair length of a frame, validating the header and
    payload size exactly as {!of_bytes} does, without copying. *)

val framed_gc_count : bytes -> int option
(** G/C/S count of a framed nucleotide sequence via 256-entry per-byte
    tables over the packed payload (4 bases per probe at 2 bits/base).
    [None] for protein frames and invalid buffers. Agrees exactly with
    {!gc_count}∘{!of_bytes}, including partial trailing bytes. *)

val framed_find : ?start:int -> pattern:string -> bytes -> int option option
(** [Some (find result)] evaluated in place on the frame; [None] for
    invalid buffers. Same semantics as {!find}∘{!of_bytes}. *)

val framed_contains : pattern:string -> bytes -> bool option
(** [Some (contains result)] evaluated in place on the frame. Canonical
    patterns over 2-bit payloads use a rolling packed-word comparison
    (up to 31 bases per machine-word equality test). *)

val fold_kmers : k:int -> ('a -> int -> int -> 'a) -> 'a -> t -> 'a
(** [fold_kmers ~k f init t] folds [f acc pos hash] over every k-mer of
    [t] whose bases all have canonical 2-bit codes, reading codes
    straight from the packed payload. [hash] is the big-endian 2-bit
    packing (A=0, C=1, G=2, T/U=3) used by the k-mer index, [pos] the
    0-based start. Ambiguous bases reset the window. [k] must be in
    [\[1, 31\]]. *)

val empty : alphabet -> t

val pp : Format.formatter -> t -> unit
(** Prints at most 60 letters followed by an ellipsis and the length. *)
