(** Group-commit redo write-ahead log (WAL format v1, magic [GENALGWL1]).

    The intent journal of [Database.save] makes whole-image snapshots
    crash-safe, but a serving workload cannot rewrite the full image per
    commit. This log makes commits cheap: a committed transaction appends
    a few CRC-framed {e logical} records (the statements it ran) and the
    snapshot image becomes a checkpoint that is only rewritten on
    shutdown or on demand. Recovery is: load the last snapshot, then
    replay the log's committed transactions in commit order (the serve
    layer drives the replay through the SQL executor, which is
    deterministic, so logical redo is exact).

    Appends are buffered in memory; {!flush} writes and fsyncs the tail
    once for a whole {e group} of transactions — the serve layer's group
    commit acknowledges every commit in the batch after the single
    flush. A crash between appends and the completed flush loses only
    unacknowledged transactions; {!replay} stops cleanly at a torn tail.

    On-disk layout after the 9-byte magic, per record:
    [len:i64le | crc32:i64le | payload], with
    [payload = txn:i64le | kind:u8 | rest]. Kinds: ['B'] begin (empty
    rest), ['S'] statement ([actor_len:i64le | actor | sql]), ['C']
    commit (empty rest), ['M'] applied-LSN marker ([lsn:i64le]) — a
    crash-consistent progress cursor honoured only when its
    transaction commits (the shard layer writes the marker in the same
    transaction as the statement it covers, so the statement and the
    cursor advance atomically).

    Instruments: [storage.wal.appends], [storage.wal.flushes],
    [storage.wal.flushed_bytes], [storage.wal.truncations],
    [storage.wal.replay.committed], [storage.wal.replay.discarded].
    Crash points (registered with {!Genalg_fault.Fault}):
    [storage.wal.flush_partial] (tears the tail mid-write) and
    [storage.wal.flush] (after write+fsync, before the buffer clears). *)

type t

val wal_path : string -> string
(** The log file that shadows a snapshot: [<db path>.wal]. *)

val open_ : string -> (t, string) result
(** Open (creating if missing) the log at this path — the full log path,
    usually [wal_path db_path]. Validates the magic and seeks to the
    end; a file whose magic does not match is refused. *)

val path : t -> string

val append_begin : t -> txn:int -> unit
val append_stmt : t -> txn:int -> actor:string -> sql:string -> unit
val append_commit : t -> txn:int -> unit
(** Buffer a record; nothing reaches the file until {!flush}. *)

val append_marker : t -> txn:int -> lsn:int -> unit
(** Buffer an applied-LSN marker inside transaction [txn]. Replay
    surfaces the highest marker among committed transactions as
    {!replay.last_lsn}. *)

val pending_bytes : t -> int
(** Bytes buffered and not yet flushed. *)

val flush : t -> (unit, string) result
(** Write every buffered record to the file and fsync. One flush
    acknowledges a whole commit group. Idempotent when nothing is
    pending (no write, no fsync). *)

val drop_pending : t -> unit
(** Discard every buffered record without writing it. For callers that
    treat a failed {!flush} as aborting the records it covered: after a
    flush error the buffer still holds them, and a later flush (say at
    close) would silently make them durable after all. *)

val truncate : t -> (unit, string) result
(** Checkpoint: discard every record (the snapshot image now covers
    them), leaving just the magic. Pending unflushed records are
    dropped too — checkpoint after a successful [Database.save]. *)

val close : t -> unit
(** Close the file descriptor. Pending records are NOT flushed. *)

(** {1 Recovery} *)

type replay_stmt = {
  rp_txn : int;
  rp_actor : string;
  rp_sql : string;
}

type replay = {
  committed : replay_stmt list;
      (** statements of committed transactions, in commit order, each
          transaction's statements in append order *)
  discarded : int;
      (** records belonging to transactions with no commit record
          (in-flight at the crash) *)
  torn : bool;
      (** the scan hit a truncated or CRC-mismatched tail and stopped *)
  last_lsn : int option;
      (** highest ['M'] marker carried by any committed transaction,
          if one exists *)
}

val replay : string -> (replay, string) result
(** Scan the log at this path. A missing file replays as empty; a torn
    tail ends the scan cleanly (records before it are honoured). Only
    transactions whose commit record survived are returned — an
    acknowledged commit is by construction flushed, so it is never
    lost. *)

val replay_from : string -> lsn:int -> (replay, string) result
(** Like {!replay}, but return only committed transactions whose txn id
    is strictly greater than [lsn] — the read-from-LSN cursor used for
    shard resync, where the shard statement log assigns txn = LSN.
    [last_lsn] still reflects the whole log. *)

val crash_points : string list
(** The fault-injection crash points inside {!flush}, in protocol
    order. *)
