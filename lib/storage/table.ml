module Obs = Genalg_obs.Obs

let c_rows_scanned = Obs.counter "storage.table.rows_scanned"
let c_index_lookups = Obs.counter "storage.table.index_lookups"
let c_genomic_searches = Obs.counter "storage.table.genomic_searches"

type t = {
  name : string;
  schema : Schema.t;
  heap : Heap.t;
  indexes : (string, Btree.t) Hashtbl.t; (* lower-case column name -> index *)
  genomic : (string, int * Text_index.t) Hashtbl.t;
      (* lower-case column name -> (column position, k-mer postings) *)
  mutable pending_genomic : (string * int) list;
      (* (column, k) specs restored from an image, awaiting a UDT
         registry to backfill; see [rebuild_genomic_indexes] *)
  mutable stats : (string, column_stats) Hashtbl.t option;
      (* per-column statistics, present after [analyze] *)
  mutable data_version : int;
      (* bumped on every row write; result-cache validation token *)
  mutable schema_version : int;
      (* bumped on planning-relevant changes (indexes, analyze) *)
  mutable stats_version : int;
      (* bumped whenever statistics are replaced; plan-cache token *)
}

and column_stats = {
  rows : int;
  distinct : int;
  nulls : int;
  min_value : Dtype.value option;
  max_value : Dtype.value option;
  histogram : histogram option;
}

and histogram = {
  bounds : Dtype.value array;
  counts : int array;
}

let create ~name schema =
  { name; schema; heap = Heap.create (); indexes = Hashtbl.create 4;
    genomic = Hashtbl.create 2; pending_genomic = []; stats = None;
    data_version = 0; schema_version = 0; stats_version = 0 }

let name t = t.name
let schema t = t.schema
let data_version t = t.data_version
let schema_version t = t.schema_version
let stats_version t = t.stats_version
let touch_data t = t.data_version <- t.data_version + 1
let touch_schema t = t.schema_version <- t.schema_version + 1

let index_updates t row f =
  Hashtbl.iter
    (fun col idx ->
      match Schema.column_index t.schema col with
      | Some i -> f idx row.(i)
      | None -> ())
    t.indexes

let genomic_updates t rid row f =
  Hashtbl.iter
    (fun _ (i, gidx) ->
      match row.(i) with
      | Dtype.Opaque (_, payload) -> f gidx rid payload
      | Dtype.Null | Dtype.Bool _ | Dtype.Int _ | Dtype.Float _ | Dtype.Str _ -> ())
    t.genomic

let insert t row =
  match Schema.validate_row t.schema row with
  | Error _ as e -> e
  | Ok () ->
      let rid = Heap.insert t.heap (Dtype.encode_row row) in
      index_updates t row (fun idx key -> Btree.insert idx key rid);
      genomic_updates t rid row Text_index.add;
      touch_data t;
      Ok rid

let insert_exn t row =
  match insert t row with
  | Ok rid -> rid
  | Error msg -> invalid_arg (Printf.sprintf "Table.insert_exn (%s): %s" t.name msg)

let get t rid = Option.map Dtype.decode_row (Heap.get t.heap rid)

let delete t rid =
  match get t rid with
  | None -> false
  | Some row ->
      index_updates t row (fun idx key -> ignore (Btree.remove idx key rid));
      genomic_updates t rid row Text_index.remove;
      let ok = Heap.delete t.heap rid in
      if ok then touch_data t;
      ok

let update t rid row =
  match Schema.validate_row t.schema row with
  | Error _ as e -> e
  | Ok () -> (
      match get t rid with
      | None -> Error "no such record"
      | Some old_row ->
          index_updates t old_row (fun idx key -> ignore (Btree.remove idx key rid));
          genomic_updates t rid old_row Text_index.remove;
          let rid' = Heap.update t.heap rid (Dtype.encode_row row) in
          index_updates t row (fun idx key -> Btree.insert idx key rid');
          genomic_updates t rid' row Text_index.add;
          touch_data t;
          Ok rid')

let scan t f =
  Heap.iter
    (fun rid bytes ->
      Obs.add c_rows_scanned 1;
      f rid (Dtype.decode_row bytes))
    t.heap

let fold t ~init ~f =
  Heap.fold (fun rid bytes acc -> f acc rid (Dtype.decode_row bytes)) t.heap init

let row_count t = Heap.record_count t.heap
let page_count t = Heap.page_count t.heap
let drop_page_cache t = Heap.drop_page_cache t.heap

let create_index t ~column =
  let col = String.lowercase_ascii column in
  match Schema.column_index t.schema col with
  | None -> Error (Printf.sprintf "no column %s in table %s" column t.name)
  | Some i ->
      if Hashtbl.mem t.indexes col then
        Error (Printf.sprintf "index on %s.%s already exists" t.name column)
      else begin
        let idx = Btree.create () in
        scan t (fun rid row -> Btree.insert idx row.(i) rid);
        Hashtbl.add t.indexes col idx;
        touch_schema t;
        Ok ()
      end

let has_index t ~column = Hashtbl.mem t.indexes (String.lowercase_ascii column)

let indexed_columns t =
  Hashtbl.fold (fun col _ acc -> col :: acc) t.indexes []
  |> List.sort String.compare

let index_lookup t ~column key =
  Option.map
    (fun idx ->
      Obs.add c_index_lookups 1;
      Btree.find idx key)
    (Hashtbl.find_opt t.indexes (String.lowercase_ascii column))

let index_range t ~column ?lo ?hi ?lo_inclusive ?hi_inclusive () =
  Option.map
    (fun idx ->
      Obs.add c_index_lookups 1;
      List.concat_map snd (Btree.range ?lo ?hi ?lo_inclusive ?hi_inclusive idx))
    (Hashtbl.find_opt t.indexes (String.lowercase_ascii column))

(* ---- statistics (paper 6.5) --------------------------------------- *)

let histogram_buckets = 32

(* equi-depth histogram over the ascending non-null values; bucket
   boundaries extend past duplicates so every bound is the last of its
   run, making per-bucket NDV reasoning sound. *)
let build_histogram sorted n =
  if n = 0 then None
  else begin
    let nb = min histogram_buckets n in
    let depth = float_of_int n /. float_of_int nb in
    let bounds = ref [] and counts = ref [] and closed = ref 0 in
    let start = ref 0 in
    while !start < n do
      let target =
        int_of_float (Float.round (float_of_int (!closed + 1) *. depth))
      in
      let i = ref (max (!start + 1) (min n target)) in
      while !i < n && Dtype.compare_value sorted.(!i) sorted.(!i - 1) = 0 do
        incr i
      done;
      bounds := sorted.(!i - 1) :: !bounds;
      counts := (!i - !start) :: !counts;
      incr closed;
      start := !i
    done;
    Some
      { bounds = Array.of_list (List.rev !bounds);
        counts = Array.of_list (List.rev !counts) }
  end

let analyze t =
  let ncols = Schema.arity t.schema in
  let seen = Array.init ncols (fun _ -> Hashtbl.create 64) in
  let nulls = Array.make ncols 0 in
  let values = Array.init ncols (fun _ -> ref []) in
  let sortable =
    Array.init ncols (fun i ->
        match (Schema.column t.schema i).Schema.dtype with
        | Dtype.TOpaque _ -> false
        | Dtype.TBool | Dtype.TInt | Dtype.TFloat | Dtype.TString -> true)
  in
  let rows = ref 0 in
  scan t (fun _ row ->
      incr rows;
      Array.iteri
        (fun i v ->
          match v with
          | Dtype.Null -> nulls.(i) <- nulls.(i) + 1
          | _ ->
              (* hash the encoded form so opaque payloads count too *)
              let buf = Buffer.create 16 in
              Dtype.encode_value buf v;
              Hashtbl.replace seen.(i) (Buffer.contents buf) ();
              if sortable.(i) then values.(i) := v :: !(values.(i)))
        row);
  let table = Hashtbl.create ncols in
  List.iteri
    (fun i (c : Schema.column) ->
      let sorted = Array.of_list !(values.(i)) in
      Array.sort Dtype.compare_value sorted;
      let n = Array.length sorted in
      Hashtbl.replace table
        (String.lowercase_ascii c.Schema.name)
        { rows = !rows; distinct = Hashtbl.length seen.(i); nulls = nulls.(i);
          min_value = (if n = 0 then None else Some sorted.(0));
          max_value = (if n = 0 then None else Some sorted.(n - 1));
          histogram = build_histogram sorted n })
    (Schema.columns t.schema);
  t.stats <- Some table;
  t.stats_version <- t.stats_version + 1;
  touch_schema t

let column_stats t ~column =
  match t.stats with
  | None -> None
  | Some table -> Hashtbl.find_opt table (String.lowercase_ascii column)

let has_stats t = t.stats <> None

let stats_snapshot t =
  match t.stats with
  | None -> []
  | Some table ->
      Hashtbl.fold (fun col cs acc -> (col, cs) :: acc) table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let set_stats t entries =
  match entries with
  | [] -> ()
  | _ :: _ ->
      let table = Hashtbl.create (List.length entries) in
      List.iter
        (fun (col, cs) -> Hashtbl.replace table (String.lowercase_ascii col) cs)
        entries;
      t.stats <- Some table;
      t.stats_version <- t.stats_version + 1;
      touch_schema t

(* ---- genomic indexes (paper 6.5) --------------------------------- *)

let create_genomic_index ?k t ~column ~registry =
  let col = String.lowercase_ascii column in
  match Schema.column_index t.schema col with
  | None -> Error (Printf.sprintf "no column %s in table %s" column t.name)
  | Some i -> (
      if Hashtbl.mem t.genomic col then
        Error (Printf.sprintf "genomic index on %s.%s already exists" t.name column)
      else
        match (Schema.column t.schema i).Schema.dtype with
        | Dtype.TBool | Dtype.TInt | Dtype.TFloat | Dtype.TString ->
            Error (Printf.sprintf "column %s is not an opaque type" column)
        | Dtype.TOpaque type_name -> (
            match Udt.find_type registry type_name with
            | None -> Error (Printf.sprintf "UDT %s is not registered" type_name)
            | Some udt -> (
                match udt.Udt.search with
                | None ->
                    Error
                      (Printf.sprintf "UDT %s does not support substring search"
                         type_name)
                | Some support ->
                    let gidx = Text_index.create ?k support in
                    scan t (fun rid row ->
                        match row.(i) with
                        | Dtype.Opaque (_, payload) -> Text_index.add gidx rid payload
                        | Dtype.Null | Dtype.Bool _ | Dtype.Int _ | Dtype.Float _
                        | Dtype.Str _ ->
                            ());
                    Hashtbl.add t.genomic col (i, gidx);
                    touch_schema t;
                    Ok ())))

(* A genomic index cannot be rebuilt at image-load time: backfilling
   needs the UDT registry to extract searchable text from opaque
   payloads, and the registry is only populated when an adapter
   attaches. Loads stash the persisted (column, k) specs and
   [rebuild_genomic_indexes] turns them into live indexes the moment a
   registry shows up. *)

let genomic_specs t =
  let live =
    Hashtbl.fold
      (fun col (_, gidx) acc -> (col, Text_index.k gidx) :: acc)
      t.genomic []
  in
  let pending =
    List.filter (fun (col, _) -> not (Hashtbl.mem t.genomic col))
      t.pending_genomic
  in
  List.sort compare (live @ pending)

let set_pending_genomic t specs =
  t.pending_genomic <-
    List.map (fun (col, k) -> (String.lowercase_ascii col, k)) specs

let rebuild_genomic_indexes t ~registry =
  t.pending_genomic <-
    List.filter
      (fun (col, k) ->
        if Hashtbl.mem t.genomic col then false
        else
          match create_genomic_index ~k t ~column:col ~registry with
          | Ok () -> false
          | Error _ -> true (* e.g. UDT not registered yet: stay pending *))
      t.pending_genomic

(* Carry [src]'s built genomic indexes over to a freshly-cloned [dst]
   copy-on-write instead of leaving them pending for a full rebuild at
   attach time. Text_index postings store [Heap.rid]s, so sharing is
   only sound when both heaps assign identical rids in scan order —
   true for a serialize/parse clone of a table with no tombstones
   (re-insertion into a fresh heap is sequential, deletes leave holes
   the clone compacts away). On any mismatch the specs stay pending and
   the attach-time rebuild proceeds as before. *)
let share_genomic_indexes ~src ~dst =
  if Hashtbl.length src.genomic > 0 then begin
    let rids t = List.rev (Heap.fold (fun rid _ acc -> rid :: acc) t.heap []) in
    if rids src = rids dst then
      Hashtbl.iter
        (fun col (i, gidx) ->
          if not (Hashtbl.mem dst.genomic col) then begin
            Hashtbl.add dst.genomic col (i, Text_index.cow_clone gidx);
            dst.pending_genomic <-
              List.filter (fun (c, _) -> c <> col) dst.pending_genomic
          end)
        src.genomic
  end

let has_genomic_index t ~column =
  Hashtbl.mem t.genomic (String.lowercase_ascii column)

let genomic_k t ~column =
  Option.map
    (fun (_, gidx) -> Text_index.k gidx)
    (Hashtbl.find_opt t.genomic (String.lowercase_ascii column))

let genomic_mean_len t ~column =
  Option.bind
    (Hashtbl.find_opt t.genomic (String.lowercase_ascii column))
    (fun (_, gidx) -> Text_index.mean_len gidx)

let genomic_search t ~column ~pattern =
  match Hashtbl.find_opt t.genomic (String.lowercase_ascii column) with
  | None -> `No_index
  | Some (i, gidx) -> (
      Obs.add c_genomic_searches 1;
      let payload_of rid =
        match get t rid with
        | Some row -> (
            match row.(i) with
            | Dtype.Opaque (_, payload) -> Some payload
            | Dtype.Null | Dtype.Bool _ | Dtype.Int _ | Dtype.Float _ | Dtype.Str _ ->
                None)
        | None -> None
      in
      match Text_index.search gidx ~pattern ~payload_of with
      | None -> `Unsupported_pattern
      | Some rids -> `Hits rids)

let genomic_seed t ~column ~pattern ~min_len =
  match Hashtbl.find_opt t.genomic (String.lowercase_ascii column) with
  | None -> `No_index
  | Some (_, gidx) -> (
      Obs.add c_genomic_searches 1;
      match Text_index.seed_candidates gidx ~pattern ~min_len with
      | None -> `Unsupported_pattern
      | Some rids -> `Hits rids)
