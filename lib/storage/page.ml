(* Layout: [0..3] slot count (LE int32) | [4..7] free_end (start of the
   record region, records grow downward from the end) | slot directory from
   byte 8 (per slot: offset int32, length int32; offset = -1 marks a
   tombstone) | free space | records. *)

let page_size = 8192
let header = 8
let slot_bytes = 8

module Obs = Genalg_obs.Obs

let c_reads = Obs.counter "storage.page.reads"
let c_writes = Obs.counter "storage.page.writes"
let c_compactions = Obs.counter "storage.page.compactions"

type t = { data : Bytes.t }

let get_i32 t off = Int32.to_int (Bytes.get_int32_le t.data off)
let set_i32 t off v = Bytes.set_int32_le t.data off (Int32.of_int v)

let slot_count t = get_i32 t 0
let free_end t = get_i32 t 4
let set_slot_count t n = set_i32 t 0 n
let set_free_end t n = set_i32 t 4 n

let slot_off i = header + (i * slot_bytes)
let slot_offset t i = get_i32 t (slot_off i)
let slot_length t i = get_i32 t (slot_off i + 4)

let set_slot t i ~offset ~length =
  set_i32 t (slot_off i) offset;
  set_i32 t (slot_off i + 4) length

let create () =
  let t = { data = Bytes.make page_size '\000' } in
  set_slot_count t 0;
  set_free_end t page_size;
  t

let free_space t =
  free_end t - (header + (slot_count t * slot_bytes)) - slot_bytes

let insert t record =
  let len = Bytes.length record in
  if len > page_size - header - slot_bytes then
    invalid_arg "Page.insert: record exceeds page capacity";
  if free_space t < len then None
  else begin
    Obs.add c_writes 1;
    let n = slot_count t in
    let offset = free_end t - len in
    Bytes.blit record 0 t.data offset len;
    set_slot t n ~offset ~length:len;
    set_free_end t offset;
    set_slot_count t (n + 1);
    Some n
  end

let valid_slot t i = i >= 0 && i < slot_count t

let get t i =
  if not (valid_slot t i) then None
  else begin
    let offset = slot_offset t i in
    if offset < 0 then None
    else begin
      Obs.add c_reads 1;
      Some (Bytes.sub t.data offset (slot_length t i))
    end
  end

let delete t i =
  if not (valid_slot t i) then false
  else begin
    let offset = slot_offset t i in
    if offset < 0 then false
    else begin
      set_slot t i ~offset:(-1) ~length:0;
      true
    end
  end

let live_count t =
  let n = ref 0 in
  for i = 0 to slot_count t - 1 do
    if slot_offset t i >= 0 then incr n
  done;
  !n

let compact t =
  (* Copy live records into a scratch region, tightly packed at the end. *)
  Obs.add c_compactions 1;
  let scratch = Bytes.create page_size in
  let write_ptr = ref page_size in
  let n = slot_count t in
  let moves = Array.make n (-1, 0) in
  for i = 0 to n - 1 do
    let offset = slot_offset t i in
    if offset >= 0 then begin
      let len = slot_length t i in
      write_ptr := !write_ptr - len;
      Bytes.blit t.data offset scratch !write_ptr len;
      moves.(i) <- (!write_ptr, len)
    end
  done;
  Bytes.blit scratch !write_ptr t.data !write_ptr (page_size - !write_ptr);
  for i = 0 to n - 1 do
    let offset, length = moves.(i) in
    if offset >= 0 then set_slot t i ~offset ~length
  done;
  set_free_end t !write_ptr

let update t i record =
  if not (valid_slot t i) then false
  else begin
    let offset = slot_offset t i in
    if offset < 0 then false
    else begin
      let new_len = Bytes.length record in
      let old_len = slot_length t i in
      if new_len <= old_len then begin
        Obs.add c_writes 1;
        Bytes.blit record 0 t.data offset new_len;
        set_slot t i ~offset ~length:new_len;
        true
      end
      else begin
        (* would the record fit once this slot's bytes are reclaimed? *)
        let live_bytes = ref 0 in
        for j = 0 to slot_count t - 1 do
          if j <> i && slot_offset t j >= 0 then live_bytes := !live_bytes + slot_length t j
        done;
        let room = page_size - header - (slot_count t * slot_bytes) - !live_bytes in
        if room < new_len then false
        else begin
          set_slot t i ~offset:(-1) ~length:0;
          compact t;
          Obs.add c_writes 1;
          let offset = free_end t - new_len in
          Bytes.blit record 0 t.data offset new_len;
          set_slot t i ~offset ~length:new_len;
          set_free_end t offset;
          true
        end
      end
    end
  end


let iter f t =
  for i = 0 to slot_count t - 1 do
    match get t i with Some record -> f i record | None -> ()
  done

let to_bytes t = Bytes.copy t.data

let of_bytes data =
  if Bytes.length data <> page_size then
    Error
      (Printf.sprintf "Page.of_bytes: expected %d bytes, got %d" page_size
         (Bytes.length data))
  else begin
    let t = { data = Bytes.copy data } in
    let n = slot_count t in
    if n < 0 || header + (n * slot_bytes) > page_size then
      Error "Page.of_bytes: corrupt slot count"
    else Ok t
  end
