(** A buffer pool in front of {!Page}: the serialized 8 KB page images are
    the "disk" tier, and a bounded LRU of decoded {!Page.t} frames sits in
    front of them. A miss decodes (and validates) the image; a dirty frame
    is written back to its image when evicted or flushed. Frames are pinned
    for the duration of every [with_page*] callback, so the LRU can never
    evict a page that is being read or mutated.

    All pools share the [cache.bufferpool.*] instruments and the
    "bufferpool" row of [Lru.registry_stats]. The per-process default
    capacity (frames per pool) is a tuning knob; see [docs/CACHING.md]. *)

type t

val set_default_capacity : int -> unit
(** Frames per newly created pool (clamped to >= 4; default 256 = 2 MiB
    of decoded pages per heap file). Existing pools are unaffected. *)

val default_capacity : unit -> int

val create : ?capacity:int -> unit -> t
(** An empty pool (no pages). *)

val page_count : t -> int

val add_page : t -> int
(** Append a fresh empty page; returns its index. The new frame is dirty
    (its image does not exist until write-back). *)

val install_page_image : t -> bytes -> unit
(** Append an already-serialized page image without decoding it — the
    deserialization path ({!Heap.of_bytes}) validates and then installs,
    leaving the pool cold. The pool takes ownership of [img]. *)

val with_page : t -> int -> (Page.t -> 'a) -> 'a
(** [with_page t i f] pins page [i] (decoding its image on a miss), runs
    [f] on the frame, and unpins. The [Page.t] must not escape [f].
    Raises [Invalid_argument] if [i] is out of range. *)

val with_page_mut : t -> int -> (Page.t -> 'a) -> 'a
(** Like {!with_page} but marks the frame dirty, scheduling write-back. *)

val flush : t -> unit
(** Write every dirty frame back to its image (frames stay resident). *)

val drop_frames : t -> unit
(** {!flush}, then empty the frame cache — a cold restart. Subsequent
    reads decode from images again. Used by [Database.flush_buffers] and
    the [CACHE] bench's cold runs. *)

val page_image : t -> int -> bytes
(** The serialized image of page [i]. Only valid when the frame is clean
    or absent — call {!flush} first. The returned bytes are the pool's own
    copy; treat as read-only. *)
