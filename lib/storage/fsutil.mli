(** Durability helpers shared by image saves and the WAL.

    A rename or file creation is only power-loss durable once the
    containing directory entry is fsynced. These helpers are
    best-effort: filesystems that refuse fsync on a directory (or on a
    read-only fd) are tolerated silently. *)

val fsync_dir : string -> unit
(** Open the directory and fsync it, swallowing [Unix_error]s. *)

val fsync_file : string -> unit
(** Open the file read-only and fsync it, swallowing [Unix_error]s. *)

val parent : string -> string
(** [Filename.dirname], with [""] mapped to ["."]. *)
