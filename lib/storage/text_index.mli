(** A per-record k-mer posting index over opaque payload text — the
    engine half of the "genomic index structures" of paper section 6.5.

    Each indexed record contributes the k-mers of its canonical index
    text; a containment query looks up the pattern's first k-mer, unions
    in the always-candidate records, and verifies every candidate with
    the type's authoritative matcher. Postings are maintained on insert
    and delete, so results are exact at all times. *)

type t

val create : ?k:int -> Udt.search_support -> t
(** Default k = 8. Raises [Invalid_argument] when k is outside [2, 31]. *)

val cow_clone : t -> t
(** A new handle sharing this index's posting store copy-on-write. Reads
    on either handle keep using the shared segment; the first [add] or
    [remove] on a handle deep-copies the store for that handle only, so
    neither side ever observes the other's writes. The clone's record
    identities ([Heap.rid]s) are the original's — only valid when the
    cloned table's heap assigns the same rids (see
    [Table.share_genomic_indexes]). *)

val k : t -> int

val add : t -> Heap.rid -> bytes -> unit
(** Index one record's payload. *)

val remove : t -> Heap.rid -> bytes -> unit
(** Drop one record's postings (pass the payload it was indexed with). *)

val candidates : t -> pattern:string -> Heap.rid list option
(** Records that may contain [pattern]: posting hits for its first
    k-mer plus all always-candidates. [None] when the pattern is shorter
    than [k] or its first k-mer contains letters outside A/C/G/T — the
    caller must fall back to a scan. The result is unverified. *)

val seed_candidates : t -> pattern:string -> min_len:int -> Heap.rid list option
(** Similarity-seed candidates: the union of posting hits for {e every}
    k-mer of [pattern], the always-candidates, and every record whose
    index text is shorter than [min_len]. [None] when [pattern] is
    shorter than [k] or contains letters outside A/C/G/T. Unverified;
    complete only under the caller's similarity-threshold bound (see
    docs/OPTIMIZER.md). *)

val search :
  t -> pattern:string -> payload_of:(Heap.rid -> bytes option) -> Heap.rid list option
(** Verified containment matches; [None] when the index cannot serve the
    pattern. Pure-ACGT candidates are verified by exact search
    (Boyer–Moore–Horspool, or a cached suffix array for records of
    ≥ 4096 letters); ambiguous ones through the type's authoritative
    [matches]. Records whose payload can no longer be fetched are
    dropped. *)

val indexed_records : t -> int
val distinct_kmers : t -> int

val mean_len : t -> float option
(** Mean length of the indexed texts, or [None] when the index is empty.
    Feeds the planner's k-mer candidate-fraction model. *)
