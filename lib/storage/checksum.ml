(* Table-driven reflected CRC-32 (polynomial 0xEDB88320). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc byte =
  let t = Lazy.force table in
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xffl) in
  Int32.logxor t.(idx) (Int32.shift_right_logical crc 8)

let finish crc = Int32.logxor crc 0xffffffffl

let sub b ~pos ~len =
  let crc = ref 0xffffffffl in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get b i))
  done;
  finish !crc

let bytes b = sub b ~pos:0 ~len:(Bytes.length b)

let string s =
  let crc = ref 0xffffffffl in
  String.iter (fun ch -> crc := update !crc (Char.code ch)) s;
  finish !crc
