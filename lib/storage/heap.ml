module Obs = Genalg_obs.Obs

let c_page_allocs = Obs.counter "storage.heap.page_allocs"
let c_inserts = Obs.counter "storage.heap.inserts"
let c_deletes = Obs.counter "storage.heap.deletes"

type rid = { page : int; slot : int }

(* Pages live behind the buffer pool: serialized images are the "disk"
   tier, decoded frames a bounded LRU in front of it. The public API is
   unchanged — callers still see an append-friendly bag of records. *)
type t = { pool : Buffer_pool.t; mutable live : int }

let create () = { pool = Buffer_pool.create (); live = 0 }

let add_page t =
  Obs.add c_page_allocs 1;
  Buffer_pool.add_page t.pool

let insert t record =
  Obs.add c_inserts 1;
  (* try the last page first; heap loads are append-dominated *)
  let try_page i =
    match Buffer_pool.with_page_mut t.pool i (fun p -> Page.insert p record) with
    | Some slot -> Some { page = i; slot }
    | None -> None
  in
  let npages = Buffer_pool.page_count t.pool in
  let rid =
    if npages = 0 then None
    else
      match try_page (npages - 1) with
      | Some _ as r -> r
      | None -> if npages >= 2 then try_page (npages - 2) else None
  in
  match rid with
  | Some r ->
      t.live <- t.live + 1;
      r
  | None -> (
      let i = add_page t in
      match Buffer_pool.with_page_mut t.pool i (fun p -> Page.insert p record) with
      | Some slot ->
          t.live <- t.live + 1;
          { page = i; slot }
      | None -> invalid_arg "Heap.insert: record exceeds page capacity")

let get t rid =
  if rid.page < 0 || rid.page >= Buffer_pool.page_count t.pool then None
  else Buffer_pool.with_page t.pool rid.page (fun p -> Page.get p rid.slot)

let delete t rid =
  if rid.page < 0 || rid.page >= Buffer_pool.page_count t.pool then false
  else begin
    let ok = Buffer_pool.with_page_mut t.pool rid.page (fun p -> Page.delete p rid.slot) in
    if ok then begin
      Obs.add c_deletes 1;
      t.live <- t.live - 1
    end;
    ok
  end

let update t rid record =
  if
    rid.page >= 0
    && rid.page < Buffer_pool.page_count t.pool
    && Buffer_pool.with_page_mut t.pool rid.page (fun p -> Page.update p rid.slot record)
  then rid
  else begin
    ignore (delete t rid);
    insert t record
  end

let iter f t =
  for i = 0 to Buffer_pool.page_count t.pool - 1 do
    Buffer_pool.with_page t.pool i
      (Page.iter (fun slot record -> f { page = i; slot } record))
  done

let fold f t init =
  let acc = ref init in
  iter (fun rid record -> acc := f rid record !acc) t;
  !acc

let record_count t = t.live
let page_count t = Buffer_pool.page_count t.pool
let flush t = Buffer_pool.flush t.pool
let drop_page_cache t = Buffer_pool.drop_frames t.pool

let to_bytes t =
  Buffer_pool.flush t.pool;
  let npages = Buffer_pool.page_count t.pool in
  let buf = Buffer.create (npages * Page.page_size) in
  Buffer.add_int64_le buf (Int64.of_int npages);
  Buffer.add_int64_le buf (Int64.of_int t.live);
  for i = 0 to npages - 1 do
    Buffer.add_bytes buf (Buffer_pool.page_image t.pool i)
  done;
  Buffer.to_bytes buf

let of_bytes data =
  if Bytes.length data < 16 then Error "Heap.of_bytes: truncated header"
  else begin
    let npages = Int64.to_int (Bytes.get_int64_le data 0) in
    let live = Int64.to_int (Bytes.get_int64_le data 8) in
    if npages < 0 || Bytes.length data <> 16 + (npages * Page.page_size) then
      Error "Heap.of_bytes: size mismatch"
    else begin
      let pool = Buffer_pool.create () in
      (* Validate every image eagerly (decode errors must surface here,
         not on first access), but install only the images: a reloaded
         heap starts with a cold frame cache. *)
      let rec load i =
        if i = npages then Ok ()
        else
          let chunk = Bytes.sub data (16 + (i * Page.page_size)) Page.page_size in
          match Page.of_bytes chunk with
          | Ok _ ->
              Buffer_pool.install_page_image pool chunk;
              load (i + 1)
          | Error _ as e -> e
      in
      match load 0 with
      | Ok () -> Ok { pool; live }
      | Error msg -> Error msg
    end
  end
