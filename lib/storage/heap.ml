module Obs = Genalg_obs.Obs

let c_page_allocs = Obs.counter "storage.heap.page_allocs"
let c_inserts = Obs.counter "storage.heap.inserts"
let c_deletes = Obs.counter "storage.heap.deletes"

type rid = { page : int; slot : int }

type t = {
  mutable pages : Page.t array;
  mutable npages : int;
  mutable live : int;
}

let create () = { pages = Array.make 4 (Page.create ()); npages = 0; live = 0 }

let ensure_capacity t =
  if t.npages = Array.length t.pages then begin
    let bigger = Array.make (2 * Array.length t.pages) (Page.create ()) in
    Array.blit t.pages 0 bigger 0 t.npages;
    t.pages <- bigger
  end

let add_page t =
  ensure_capacity t;
  Obs.add c_page_allocs 1;
  let p = Page.create () in
  t.pages.(t.npages) <- p;
  t.npages <- t.npages + 1;
  (t.npages - 1, p)

let insert t record =
  Obs.add c_inserts 1;
  (* try the last page first; heap loads are append-dominated *)
  let try_page i =
    match Page.insert t.pages.(i) record with
    | Some slot -> Some { page = i; slot }
    | None -> None
  in
  let rid =
    if t.npages = 0 then None
    else
      match try_page (t.npages - 1) with
      | Some _ as r -> r
      | None -> if t.npages >= 2 then try_page (t.npages - 2) else None
  in
  match rid with
  | Some r ->
      t.live <- t.live + 1;
      r
  | None ->
      let i, p = add_page t in
      (match Page.insert p record with
      | Some slot ->
          t.live <- t.live + 1;
          { page = i; slot }
      | None -> invalid_arg "Heap.insert: record exceeds page capacity")

let get t rid =
  if rid.page < 0 || rid.page >= t.npages then None
  else Page.get t.pages.(rid.page) rid.slot

let delete t rid =
  if rid.page < 0 || rid.page >= t.npages then false
  else begin
    let ok = Page.delete t.pages.(rid.page) rid.slot in
    if ok then begin
      Obs.add c_deletes 1;
      t.live <- t.live - 1
    end;
    ok
  end

let update t rid record =
  if rid.page >= 0 && rid.page < t.npages
     && Page.update t.pages.(rid.page) rid.slot record
  then rid
  else begin
    ignore (delete t rid);
    insert t record
  end

let iter f t =
  for i = 0 to t.npages - 1 do
    Page.iter (fun slot record -> f { page = i; slot } record) t.pages.(i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun rid record -> acc := f rid record !acc) t;
  !acc

let record_count t = t.live
let page_count t = t.npages

let to_bytes t =
  let buf = Buffer.create (t.npages * Page.page_size) in
  Buffer.add_int64_le buf (Int64.of_int t.npages);
  Buffer.add_int64_le buf (Int64.of_int t.live);
  for i = 0 to t.npages - 1 do
    Buffer.add_bytes buf (Page.to_bytes t.pages.(i))
  done;
  Buffer.to_bytes buf

let of_bytes data =
  if Bytes.length data < 16 then Error "Heap.of_bytes: truncated header"
  else begin
    let npages = Int64.to_int (Bytes.get_int64_le data 0) in
    let live = Int64.to_int (Bytes.get_int64_le data 8) in
    if npages < 0 || Bytes.length data <> 16 + (npages * Page.page_size) then
      Error "Heap.of_bytes: size mismatch"
    else begin
      let pages = Array.make (max 4 npages) (Page.create ()) in
      let rec load i =
        if i = npages then Ok ()
        else
          let chunk = Bytes.sub data (16 + (i * Page.page_size)) Page.page_size in
          match Page.of_bytes chunk with
          | Ok p ->
              pages.(i) <- p;
              load (i + 1)
          | Error _ as e -> e
      in
      match load 0 with
      | Ok () -> Ok { pages; npages; live }
      | Error msg -> Error msg
    end
  end
