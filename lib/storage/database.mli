(** The Unifying Database: a catalog of tables split into a read-only
    public space and per-user spaces (paper section 5.1), an opaque-UDT
    registry, and snapshot persistence.

    "The schema containing the external data is read-only to facilitate
    maintenance of the warehouse; user-owned entities are updateable by
    their owners … sharing of data between users can be controlled via the
    standard database access control mechanism." Writes to the public
    space are reserved to the ETL loader actor {!loader_actor}; user
    tables are writable by their owner and readable by grantees. *)

type space =
  | Public
  | User of string  (** owner name *)

type t

val create : unit -> t

val id : t -> int
(** Process-unique instance id; process-wide caches (sqlx plan/result)
    use it as part of their keys. *)

val catalog_version : t -> int
(** Bumped by {!create_table}, {!drop_table} and new {!grant_read}s —
    anything that can change how a name resolves or who may read it.
    Cache-coherence token (see [docs/CACHING.md]). *)

val flush_buffers : t -> unit
(** Drop every table's buffer-pool frames (dirty pages are written back
    first). The next reads start cold; used by the [CACHE] bench. *)

val loader_actor : string
(** The distinguished actor ("etl") allowed to write the public space. *)

val udts : t -> Udt.t
(** The database's UDT/UDF registry (the adapter populates it). *)

val create_table :
  t -> actor:string -> space:space -> name:string -> Schema.t ->
  (Table.t, string) result
(** Table names are unique within a space, case-insensitive. Creating in
    [Public] requires the loader actor; in [User u], actor [u]. *)

val drop_table : t -> actor:string -> space:space -> name:string -> (unit, string) result

val find_table : t -> space:space -> string -> Table.t option

val resolve : t -> actor:string -> string -> (space * Table.t) option
(** Name resolution for queries: the actor's own space first, then
    public. Only readable tables resolve. *)

val can_read : t -> actor:string -> space -> bool
val can_write : t -> actor:string -> space -> bool

val grant_read : t -> owner:string -> grantee:string -> table:string -> (unit, string) result
(** Share a user table; only its owner may grant. *)

val insert :
  t -> actor:string -> space:space -> table:string -> Dtype.value array ->
  (Heap.rid, string) result
(** Permission-checked insert; [Opaque] values are validated against the
    UDT registry. *)

val clone : t -> t
(** An independent deep copy (fresh {!id}, catalog version 0): every
    table, row, grant and B-tree index is duplicated through the
    snapshot serializer; genomic indexes, UDT registrations and ANALYZE
    statistics are not carried (the {!load} contract) — re-attach the
    adapter on the copy. Transaction snapshots in the serve layer are
    made with this. *)

val tables : t -> (space * Table.t) list
(** Every table, public space first, then user spaces sorted by owner. *)

val table_count : t -> int

val save : t -> string -> (unit, string) result
(** Snapshot the catalog, all heaps and index definitions to a file.

    Crash-safe: the snapshot body is wrapped in CRC-32-checksummed 8 KiB
    chunks (torn-write detection) and written under a write-ahead intent
    journal ([<path>.journal]) via [<path>.tmp] and an atomic rename. A
    save interrupted at any point — the fault registry exposes crash
    points [storage.save.serialize], [.journal], [.tmp_partial], [.tmp]
    and [.rename] — leaves a file that {!load} restores to either the
    previous or the new snapshot, never a mix. *)

val load : string -> (t, string) result
(** Restore a snapshot; runs {!recover} first, then verifies chunk
    checksums (counter [storage.recovery.checksum_failures] on
    mismatch). Files written by pre-checksum versions (bare [GENALGDB1]
    bodies) still load. B-tree indexes are rebuilt. UDT registrations,
    genomic (substring) indexes and ANALYZE statistics are in-memory
    only — re-attach the adapter and re-issue [CREATE GENOMIC INDEX] /
    [ANALYZE] after loading. *)

(** {1 Crash recovery} *)

type recovery =
  | No_journal      (** clean open: no interrupted save *)
  | Rolled_forward  (** a complete new image in [<path>.tmp] was
                        promoted ([storage.recovery.roll_forward]) *)
  | Rolled_back     (** the interrupted save was discarded; the previous
                        snapshot stands ([storage.recovery.roll_back]) *)
  | Completed       (** the rename had landed; only the journal clear
                        was replayed *)

val recover : string -> recovery
(** Inspect [<path>.journal] and finish or undo an interrupted save.
    Called automatically by {!load}; idempotent. Always clears the
    journal and any leftover tmp file
    ([storage.recovery.journal_cleared]). *)

val recovery_to_string : recovery -> string

val crash_points : string list
(** The fault-injection crash points registered by the save path, in
    protocol order. *)
