module Lru = Genalg_cache.Lru

type frame = { page : Page.t; mutable dirty : bool }

type t = {
  mutable images : Bytes.t option array;
      (* the "disk" tier; [None] only while the page's frame is dirty *)
  mutable npages : int;
  frames : (int, frame) Lru.t;
}

let default_cap = ref 256
let set_default_capacity n = default_cap := max 4 n
let default_capacity () = !default_cap

let write_back t i fr =
  if fr.dirty then begin
    t.images.(i) <- Some (Page.to_bytes fr.page);
    fr.dirty <- false
  end

let create ?capacity () =
  let capacity = max 4 (Option.value capacity ~default:!default_cap) in
  (* Tie the eviction callback to the pool through a forward reference:
     the Lru must exist before the record it writes back into. *)
  let self = ref None in
  let on_evict i fr =
    match !self with Some t -> write_back t i fr | None -> ()
  in
  let t =
    {
      images = Array.make 4 None;
      npages = 0;
      frames = Lru.create ~name:"bufferpool" ~max_entries:capacity ~on_evict ();
    }
  in
  self := Some t;
  t

let page_count t = t.npages

let ensure_capacity t =
  if t.npages = Array.length t.images then begin
    let bigger = Array.make (2 * Array.length t.images) None in
    Array.blit t.images 0 bigger 0 t.npages;
    t.images <- bigger
  end

let add_page t =
  ensure_capacity t;
  let i = t.npages in
  t.npages <- t.npages + 1;
  Lru.put t.frames i { page = Page.create (); dirty = true };
  i

let install_page_image t img =
  ensure_capacity t;
  t.images.(t.npages) <- Some img;
  t.npages <- t.npages + 1

let frame t i =
  match Lru.find t.frames i with
  | Some fr -> fr
  | None -> (
      match t.images.(i) with
      | None -> invalid_arg "Buffer_pool: page has neither frame nor image"
      | Some img -> (
          match Page.of_bytes img with
          | Ok page ->
              let fr = { page; dirty = false } in
              Lru.put t.frames i fr;
              fr
          | Error msg -> invalid_arg ("Buffer_pool: corrupt page image: " ^ msg)))

let with_frame t i f =
  if i < 0 || i >= t.npages then invalid_arg "Buffer_pool.with_page: out of range";
  let fr = frame t i in
  ignore (Lru.pin t.frames i);
  Fun.protect ~finally:(fun () -> Lru.unpin t.frames i) (fun () -> f fr)

let with_page t i f = with_frame t i (fun fr -> f fr.page)

let with_page_mut t i f =
  with_frame t i (fun fr ->
      fr.dirty <- true;
      f fr.page)

let flush t = Lru.iter (fun i fr -> write_back t i fr) t.frames

let drop_frames t =
  flush t;
  Lru.clear t.frames

let page_image t i =
  if i < 0 || i >= t.npages then invalid_arg "Buffer_pool.page_image: out of range";
  match t.images.(i) with
  | Some img -> img
  | None -> invalid_arg "Buffer_pool.page_image: dirty page, flush first"
