(* Durability helpers shared by image saves and the WAL.

   POSIX rename is atomic but not durable: the directory entry itself
   must be fsynced or a power loss can forget the rename (or the file
   creation) entirely. Some filesystems refuse fsync on a directory fd;
   those errors are swallowed — the call is best-effort hardening, not
   a correctness gate for the in-process crash model. *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let fsync_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let parent path =
  let d = Filename.dirname path in
  if d = "" then Filename.current_dir_name else d
