module Obs = Genalg_obs.Obs

let c_candidates = Obs.counter "storage.text_index.candidates"
let c_verified = Obs.counter "storage.text_index.verified"

type t = {
  k : int;
  support : Udt.search_support;
  postings : (int, Heap.rid list ref) Hashtbl.t; (* packed k-mer -> rids *)
  always : (Heap.rid, unit) Hashtbl.t;           (* ambiguous payloads *)
  mutable count : int;
}

let create ?(k = 8) support =
  if k < 2 || k > 31 then invalid_arg "Text_index.create: k must be in [2, 31]";
  { k; support; postings = Hashtbl.create 1024; always = Hashtbl.create 16; count = 0 }

let k t = t.k
let indexed_records t = t.count
let distinct_kmers t = Hashtbl.length t.postings

let code = function
  | 'A' | 'a' -> 0
  | 'C' | 'c' -> 1
  | 'G' | 'g' -> 2
  | 'T' | 't' -> 3
  | _ -> -1

(* distinct packed k-mers of [text]; k-mers spanning a non-ACGT letter
   are skipped and reported through [saw_other]. *)
let kmers_of t text =
  let n = String.length text in
  let mask = (1 lsl (2 * t.k)) - 1 in
  let seen = Hashtbl.create (max 16 n) in
  let hash = ref 0 and valid = ref 0 in
  let saw_other = ref false in
  for i = 0 to n - 1 do
    let c = code text.[i] in
    if c < 0 then begin
      saw_other := true;
      valid := 0;
      hash := 0
    end
    else begin
      hash := ((!hash lsl 2) lor c) land mask;
      incr valid;
      if !valid >= t.k then Hashtbl.replace seen !hash ()
    end
  done;
  (seen, !saw_other)

let add t rid payload =
  t.count <- t.count + 1;
  match t.support.Udt.index_text payload with
  | `Always_candidate -> Hashtbl.replace t.always rid ()
  | `Text text ->
      let seen, saw_other = kmers_of t text in
      (* ambiguity letters make exact k-mers incomplete for this record *)
      if saw_other then Hashtbl.replace t.always rid ();
      Hashtbl.iter
        (fun kmer () ->
          match Hashtbl.find_opt t.postings kmer with
          | Some cell -> cell := rid :: !cell
          | None -> Hashtbl.add t.postings kmer (ref [ rid ]))
        seen

let remove t rid payload =
  t.count <- max 0 (t.count - 1);
  Hashtbl.remove t.always rid;
  match t.support.Udt.index_text payload with
  | `Always_candidate -> ()
  | `Text text ->
      let seen, _ = kmers_of t text in
      Hashtbl.iter
        (fun kmer () ->
          match Hashtbl.find_opt t.postings kmer with
          | Some cell -> cell := List.filter (fun r -> r <> rid) !cell
          | None -> ())
        seen

let pack_first t pattern =
  if String.length pattern < t.k then None
  else begin
    let rec loop i acc =
      if i = t.k then Some acc
      else
        let c = code pattern.[i] in
        if c < 0 then None else loop (i + 1) ((acc lsl 2) lor c)
    in
    loop 0 0
  end

let candidates t ~pattern =
  match pack_first t pattern with
  | None -> None
  | Some kmer ->
      let hits =
        match Hashtbl.find_opt t.postings kmer with Some cell -> !cell | None -> []
      in
      let with_always =
        Hashtbl.fold (fun rid () acc -> rid :: acc) t.always hits
      in
      let out = List.sort_uniq compare with_always in
      Obs.add c_candidates (List.length out);
      Some out

let search t ~pattern ~payload_of =
  match candidates t ~pattern with
  | None -> None
  | Some rids ->
      let hits =
        List.filter
          (fun rid ->
            match payload_of rid with
            | Some payload -> t.support.Udt.matches payload ~pattern
            | None -> false)
          rids
      in
      Obs.add c_verified (List.length hits);
      Some hits
