module Obs = Genalg_obs.Obs
module Search = Genalg_seqindex.Search
module Suffix_array = Genalg_seqindex.Suffix_array

let c_candidates = Obs.counter "storage.text_index.candidates"
let c_verified = Obs.counter "storage.text_index.verified"
let c_seed_candidates = Obs.counter "storage.text_index.seed_candidates"
let c_exact_verifies = Obs.counter "storage.text_index.exact_verifies"
let c_cow_clones = Obs.counter "storage.text_index.cow_clones"
let c_cow_breaks = Obs.counter "storage.text_index.cow_breaks"

(* The immutable-until-written segment shared between a clone and its
   original: postings, always-candidates and text lengths. A handle that
   doesn't own its store deep-copies it before the first mutation. *)
type store = {
  postings : (int, Heap.rid list ref) Hashtbl.t; (* packed k-mer -> rids *)
  always : (Heap.rid, unit) Hashtbl.t;           (* ambiguous payloads *)
  lengths : (Heap.rid, int) Hashtbl.t;           (* index-text lengths *)
}

type t = {
  k : int;
  support : Udt.search_support;
  mutable store : store;
  mutable owns : bool;
      (* false while [store] may be shared with another handle *)
  sa_cache : (Heap.rid, Suffix_array.t) Hashtbl.t;
      (* lazily-built suffix arrays over long record texts; per-handle
         (mutated on the read path) so it is never shared *)
  mutable count : int;
}

(* records at least this long get a cached suffix array instead of
   Horspool for exact verification *)
let sa_threshold = 4096
let sa_cache_cap = 64

let create ?(k = 8) support =
  if k < 2 || k > 31 then invalid_arg "Text_index.create: k must be in [2, 31]";
  { k; support;
    store =
      { postings = Hashtbl.create 1024; always = Hashtbl.create 16;
        lengths = Hashtbl.create 64 };
    owns = true; sa_cache = Hashtbl.create 8; count = 0 }

(* Share the postings store with a new handle. Both handles drop
   ownership: whichever mutates first pays for its own private copy. *)
let cow_clone t =
  t.owns <- false;
  Obs.add c_cow_clones 1;
  { t with owns = false; sa_cache = Hashtbl.create 8 }

let copy_store s =
  let postings = Hashtbl.create (max 1024 (Hashtbl.length s.postings)) in
  Hashtbl.iter (fun kmer cell -> Hashtbl.add postings kmer (ref !cell)) s.postings;
  { postings; always = Hashtbl.copy s.always; lengths = Hashtbl.copy s.lengths }

let ensure_private t =
  if not t.owns then begin
    t.store <- copy_store t.store;
    t.owns <- true;
    Obs.add c_cow_breaks 1
  end

let k t = t.k
let indexed_records t = t.count
let distinct_kmers t = Hashtbl.length t.store.postings

let mean_len t =
  let n = Hashtbl.length t.store.lengths in
  if n = 0 then None
  else
    Some
      (float_of_int (Hashtbl.fold (fun _ l acc -> acc + l) t.store.lengths 0)
      /. float_of_int n)

let code = function
  | 'A' | 'a' -> 0
  | 'C' | 'c' -> 1
  | 'G' | 'g' -> 2
  | 'T' | 't' -> 3
  | _ -> -1

(* distinct packed k-mers of [text]; k-mers spanning a non-ACGT letter
   are skipped and reported through [saw_other]. *)
let kmers_of t text =
  let n = String.length text in
  let mask = (1 lsl (2 * t.k)) - 1 in
  let seen = Hashtbl.create (max 16 n) in
  let hash = ref 0 and valid = ref 0 in
  let saw_other = ref false in
  for i = 0 to n - 1 do
    let c = code text.[i] in
    if c < 0 then begin
      saw_other := true;
      valid := 0;
      hash := 0
    end
    else begin
      hash := ((!hash lsl 2) lor c) land mask;
      incr valid;
      if !valid >= t.k then Hashtbl.replace seen !hash ()
    end
  done;
  (seen, !saw_other)

let add t rid payload =
  ensure_private t;
  t.count <- t.count + 1;
  Hashtbl.remove t.sa_cache rid;
  match t.support.Udt.index_text payload with
  | `Always_candidate -> Hashtbl.replace t.store.always rid ()
  | `Text text ->
      Hashtbl.replace t.store.lengths rid (String.length text);
      let seen, saw_other = kmers_of t text in
      (* ambiguity letters make exact k-mers incomplete for this record *)
      if saw_other then Hashtbl.replace t.store.always rid ();
      Hashtbl.iter
        (fun kmer () ->
          match Hashtbl.find_opt t.store.postings kmer with
          | Some cell -> cell := rid :: !cell
          | None -> Hashtbl.add t.store.postings kmer (ref [ rid ]))
        seen

let remove t rid payload =
  ensure_private t;
  t.count <- max 0 (t.count - 1);
  Hashtbl.remove t.store.always rid;
  Hashtbl.remove t.store.lengths rid;
  Hashtbl.remove t.sa_cache rid;
  match t.support.Udt.index_text payload with
  | `Always_candidate -> ()
  | `Text text ->
      let seen, _ = kmers_of t text in
      Hashtbl.iter
        (fun kmer () ->
          match Hashtbl.find_opt t.store.postings kmer with
          | Some cell -> cell := List.filter (fun r -> r <> rid) !cell
          | None -> ())
        seen

let pack_first t pattern =
  if String.length pattern < t.k then None
  else begin
    let rec loop i acc =
      if i = t.k then Some acc
      else
        let c = code pattern.[i] in
        if c < 0 then None else loop (i + 1) ((acc lsl 2) lor c)
    in
    loop 0 0
  end

let candidates t ~pattern =
  match pack_first t pattern with
  | None -> None
  | Some kmer ->
      let hits =
        match Hashtbl.find_opt t.store.postings kmer with
        | Some cell -> !cell
        | None -> []
      in
      let with_always =
        Hashtbl.fold (fun rid () acc -> rid :: acc) t.store.always hits
      in
      let out = List.sort_uniq compare with_always in
      Obs.add c_candidates (List.length out);
      Some out

let pure_acgt s =
  let ok = ref true in
  String.iter (fun ch -> if code ch < 0 then ok := false) s;
  !ok

let seed_candidates t ~pattern ~min_len =
  let n = String.length pattern in
  if n < t.k || not (pure_acgt pattern) then None
  else begin
    let mask = (1 lsl (2 * t.k)) - 1 in
    let acc = Hashtbl.create 64 in
    let hash = ref 0 in
    (* union the postings of EVERY pattern k-mer: a qualifying row is
       only guaranteed to share some k-mer with the pattern, not the
       first one *)
    for i = 0 to n - 1 do
      hash := ((!hash lsl 2) lor code pattern.[i]) land mask;
      if i >= t.k - 1 then
        match Hashtbl.find_opt t.store.postings !hash with
        | Some cell -> List.iter (fun rid -> Hashtbl.replace acc rid ()) !cell
        | None -> ()
    done;
    Hashtbl.iter (fun rid () -> Hashtbl.replace acc rid ()) t.store.always;
    (* rows shorter than [min_len] fall below the guaranteed shared-run
       length, so the k-mer filter cannot rule them out *)
    Hashtbl.iter
      (fun rid len -> if len < min_len then Hashtbl.replace acc rid ())
      t.store.lengths;
    let out = Hashtbl.fold (fun rid () l -> rid :: l) acc [] |> List.sort compare in
    Obs.add c_seed_candidates (List.length out);
    Some out
  end

(* exact containment for pure-ACGT pattern and text: Horspool for short
   records, a cached suffix array for long ones (section 6.5's index
   structures, via lib/seqindex) *)
let exact_contains t rid text ~pattern =
  Obs.add c_exact_verifies 1;
  if String.length text >= sa_threshold then begin
    let sa =
      match Hashtbl.find_opt t.sa_cache rid with
      | Some sa -> sa
      | None ->
          let sa = Suffix_array.build text in
          if Hashtbl.length t.sa_cache < sa_cache_cap then
            Hashtbl.add t.sa_cache rid sa;
          sa
    in
    Suffix_array.contains sa pattern
  end
  else Search.horspool_find ~pattern text <> None

let search t ~pattern ~payload_of =
  match candidates t ~pattern with
  | None -> None
  | Some rids ->
      let up = String.uppercase_ascii pattern in
      (* IUPAC matching degenerates to exact equality when both sides are
         concrete A/C/G/T, so non-always candidates (whose index text had
         no ambiguity letters) can be verified by exact search *)
      let exact_ok = up <> "" && pure_acgt up in
      let hits =
        List.filter
          (fun rid ->
            match payload_of rid with
            | None -> false
            | Some payload ->
                if exact_ok && not (Hashtbl.mem t.store.always rid) then
                  match t.support.Udt.index_text payload with
                  | `Text text ->
                      exact_contains t rid (String.uppercase_ascii text)
                        ~pattern:up
                  | `Always_candidate -> t.support.Udt.matches payload ~pattern
                else t.support.Udt.matches payload ~pattern)
          rids
      in
      Obs.add c_verified (List.length hits);
      Some hits
