(** Tables: a schema, a heap file, and optional B-tree secondary indexes. *)

type t

val create : name:string -> Schema.t -> t

val name : t -> string
val schema : t -> Schema.t

val insert : t -> Dtype.value array -> (Heap.rid, string) result
(** Validates against the schema, stores the encoded row, and maintains
    every index. *)

val insert_exn : t -> Dtype.value array -> Heap.rid

val get : t -> Heap.rid -> Dtype.value array option

val delete : t -> Heap.rid -> bool

val update : t -> Heap.rid -> Dtype.value array -> (Heap.rid, string) result

val scan : t -> (Heap.rid -> Dtype.value array -> unit) -> unit
(** Full scan in physical order. *)

val fold : t -> init:'a -> f:('a -> Heap.rid -> Dtype.value array -> 'a) -> 'a

val row_count : t -> int
val page_count : t -> int

val drop_page_cache : t -> unit
(** Flush and empty the heap's buffer pool (cold restart). For benches. *)

(** {1 Version counters — cache-coherence tokens}

    Every cache above the storage engine validates entries against these
    monotonic counters instead of trusting write paths to call back, so
    invalidation is correct no matter who wrote (sqlx, the ETL loader, or
    direct [Table] calls). See [docs/CACHING.md]. *)

val data_version : t -> int
(** Bumped by every successful {!insert}, {!delete}, {!update}. *)

val schema_version : t -> int
(** Bumped by planning-relevant changes: {!create_index},
    {!create_genomic_index}, {!analyze}. *)

val create_index : t -> column:string -> (unit, string) result
(** Build a B-tree over an existing column (backfilled from the heap).
    Fails for unknown columns or when an index already exists. *)

val has_index : t -> column:string -> bool
val indexed_columns : t -> string list

val index_lookup : t -> column:string -> Dtype.value -> Heap.rid list option
(** [None] when the column has no index; [Some rids] (possibly empty)
    otherwise. *)

val index_range :
  t -> column:string ->
  ?lo:Dtype.value -> ?hi:Dtype.value ->
  ?lo_inclusive:bool -> ?hi_inclusive:bool ->
  unit -> Heap.rid list option

(** {1 Statistics — paper section 6.5's optimizer inputs} *)

type column_stats = {
  rows : int;           (** live rows when analyzed *)
  distinct : int;       (** distinct non-null values *)
  nulls : int;
  min_value : Dtype.value option;
      (** smallest non-null value; [None] when the column is all-null or
          opaque (UDT payloads have no engine order) *)
  max_value : Dtype.value option;
  histogram : histogram option;
      (** equi-depth histogram; [None] for all-null or opaque columns *)
}

and histogram = {
  bounds : Dtype.value array;
      (** ascending inclusive upper bounds, one per bucket; each bound is
          the last value of its bucket so duplicates never straddle *)
  counts : int array;   (** rows per bucket; sums to [rows - nulls] *)
}

val analyze : t -> unit
(** Scan the table and cache per-column statistics (row count, NDV,
    nulls, min/max, equi-depth histograms for scalar columns).
    Statistics are a snapshot: they go stale under writes until the next
    [analyze] (the usual DBMS contract). Bumps {!schema_version} and
    {!stats_version}. *)

val column_stats : t -> column:string -> column_stats option
(** [None] before {!analyze} or for unknown columns. *)

val has_stats : t -> bool

val stats_version : t -> int
(** Bumped whenever statistics are replaced ({!analyze}, {!set_stats});
    plan caches key on this so re-ANALYZE invalidates cached plans. *)

val stats_snapshot : t -> (string * column_stats) list
(** All per-column statistics sorted by column name; [[]] before
    {!analyze}. Used by image persistence. *)

val set_stats : t -> (string * column_stats) list -> unit
(** Install statistics wholesale (image load / clone); [[]] is a no-op.
    Bumps {!schema_version} and {!stats_version}. *)

(** {1 Genomic (substring) indexes — paper section 6.5}

    A genomic index over an opaque column accelerates containment
    predicates ([contains(seq, 'PATTERN')]) through per-record k-mer
    postings with authoritative verification. The column's UDT must
    provide {!Udt.search_support}. *)

val create_genomic_index :
  ?k:int -> t -> column:string -> registry:Udt.t -> (unit, string) result
(** Build (and backfill) a genomic index. Fails for unknown columns,
    non-opaque columns, types without search support, or duplicates. *)

val has_genomic_index : t -> column:string -> bool

val genomic_specs : t -> (string * int) list
(** Every genomic index as a [(column, k)] spec — live indexes plus any
    specs restored from an image that still await rebuilding. Sorted;
    this is what image saves persist. *)

val set_pending_genomic : t -> (string * int) list -> unit
(** Stash [(column, k)] specs read from an image. The index itself is
    not built — backfilling needs a UDT registry — until
    {!rebuild_genomic_indexes} runs. *)

val rebuild_genomic_indexes : t -> registry:Udt.t -> unit
(** Build every pending genomic spec against [registry] (the adapter
    calls this when it attaches). Specs whose UDT is still unregistered
    stay pending; successfully built or already-live specs are
    cleared. *)

val share_genomic_indexes : src:t -> dst:t -> unit
(** Install copy-on-write clones of [src]'s built genomic indexes into
    [dst] (a fresh clone of [src]), clearing the matching pending specs
    so the attach-time rebuild is skipped. Only applies when both heaps
    assign identical record ids in scan order (postings carry rids);
    otherwise a no-op and [dst]'s specs stay pending. Each side
    deep-copies the shared postings before its first write, so the
    handles never observe each other's mutations. *)

val genomic_k : t -> column:string -> int option
(** The k-mer width of the column's genomic index, when one exists. The
    planner needs it to derive the safe seed length for [resembles]. *)

val genomic_mean_len : t -> column:string -> float option
(** Mean length of the texts indexed by the column's genomic index;
    [None] without an index or when it is empty. Feeds the planner's
    candidate-fraction estimates for genomic access paths. *)

val genomic_search :
  t -> column:string -> pattern:string ->
  [ `No_index | `Unsupported_pattern | `Hits of Heap.rid list ]
(** Verified rids of rows whose column contains [pattern].
    [`Unsupported_pattern] means the index exists but cannot serve this
    pattern (shorter than k, or ambiguous first k-mer) — fall back to a
    scan. *)

val genomic_seed :
  t -> column:string -> pattern:string -> min_len:int ->
  [ `No_index | `Unsupported_pattern | `Hits of Heap.rid list ]
(** Unverified candidate rids for similarity ([resembles]) predicates:
    rows sharing at least one k-mer with [pattern], plus every
    always-candidate and every row whose indexed text is shorter than
    [min_len]. The caller must verify each candidate with the real
    predicate; completeness holds only under the planner's similarity
    bound (see docs/OPTIMIZER.md). [`Unsupported_pattern] when [pattern]
    is shorter than k or not pure A/C/G/T. *)
