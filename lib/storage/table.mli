(** Tables: a schema, a heap file, and optional B-tree secondary indexes. *)

type t

val create : name:string -> Schema.t -> t

val name : t -> string
val schema : t -> Schema.t

val insert : t -> Dtype.value array -> (Heap.rid, string) result
(** Validates against the schema, stores the encoded row, and maintains
    every index. *)

val insert_exn : t -> Dtype.value array -> Heap.rid

val get : t -> Heap.rid -> Dtype.value array option

val delete : t -> Heap.rid -> bool

val update : t -> Heap.rid -> Dtype.value array -> (Heap.rid, string) result

val scan : t -> (Heap.rid -> Dtype.value array -> unit) -> unit
(** Full scan in physical order. *)

val fold : t -> init:'a -> f:('a -> Heap.rid -> Dtype.value array -> 'a) -> 'a

val row_count : t -> int
val page_count : t -> int

val drop_page_cache : t -> unit
(** Flush and empty the heap's buffer pool (cold restart). For benches. *)

(** {1 Version counters — cache-coherence tokens}

    Every cache above the storage engine validates entries against these
    monotonic counters instead of trusting write paths to call back, so
    invalidation is correct no matter who wrote (sqlx, the ETL loader, or
    direct [Table] calls). See [docs/CACHING.md]. *)

val data_version : t -> int
(** Bumped by every successful {!insert}, {!delete}, {!update}. *)

val schema_version : t -> int
(** Bumped by planning-relevant changes: {!create_index},
    {!create_genomic_index}, {!analyze}. *)

val create_index : t -> column:string -> (unit, string) result
(** Build a B-tree over an existing column (backfilled from the heap).
    Fails for unknown columns or when an index already exists. *)

val has_index : t -> column:string -> bool
val indexed_columns : t -> string list

val index_lookup : t -> column:string -> Dtype.value -> Heap.rid list option
(** [None] when the column has no index; [Some rids] (possibly empty)
    otherwise. *)

val index_range :
  t -> column:string ->
  ?lo:Dtype.value -> ?hi:Dtype.value ->
  ?lo_inclusive:bool -> ?hi_inclusive:bool ->
  unit -> Heap.rid list option

(** {1 Statistics — paper section 6.5's optimizer inputs} *)

type column_stats = {
  rows : int;           (** live rows when analyzed *)
  distinct : int;       (** distinct non-null values *)
  nulls : int;
}

val analyze : t -> unit
(** Scan the table and cache per-column statistics. Statistics are a
    snapshot: they go stale under writes until the next [analyze] (the
    usual DBMS contract). *)

val column_stats : t -> column:string -> column_stats option
(** [None] before {!analyze} or for unknown columns. *)

(** {1 Genomic (substring) indexes — paper section 6.5}

    A genomic index over an opaque column accelerates containment
    predicates ([contains(seq, 'PATTERN')]) through per-record k-mer
    postings with authoritative verification. The column's UDT must
    provide {!Udt.search_support}. *)

val create_genomic_index :
  ?k:int -> t -> column:string -> registry:Udt.t -> (unit, string) result
(** Build (and backfill) a genomic index. Fails for unknown columns,
    non-opaque columns, types without search support, or duplicates. *)

val has_genomic_index : t -> column:string -> bool

val genomic_search :
  t -> column:string -> pattern:string ->
  [ `No_index | `Unsupported_pattern | `Hits of Heap.rid list ]
(** Verified rids of rows whose column contains [pattern].
    [`Unsupported_pattern] means the index exists but cannot serve this
    pattern (shorter than k, or ambiguous first k-mer) — fall back to a
    scan. *)
