(** CRC-32 (IEEE 802.3 polynomial, reflected) over strings and bytes.
    Used by the database snapshot format for torn-write detection and by
    the save journal to identify a complete file image. *)

val string : string -> int32
val bytes : Bytes.t -> int32

val sub : Bytes.t -> pos:int -> len:int -> int32
(** CRC of a slice, without copying. *)
