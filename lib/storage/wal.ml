module Fault = Genalg_fault.Fault
module Obs = Genalg_obs.Obs

let c_appends = Obs.counter "storage.wal.appends"
let c_flushes = Obs.counter "storage.wal.flushes"
let c_flushed_bytes = Obs.counter "storage.wal.flushed_bytes"
let c_truncations = Obs.counter "storage.wal.truncations"
let c_replay_committed = Obs.counter "storage.wal.replay.committed"
let c_replay_discarded = Obs.counter "storage.wal.replay.discarded"

let magic = "GENALGWL1"

let crash_points = [ "storage.wal.flush_partial"; "storage.wal.flush" ]
let () = List.iter Fault.register_crash_point crash_points

let wal_path db_path = db_path ^ ".wal"

type t = {
  wal_file : string;
  mutable fd : Unix.file_descr;
  pending : Buffer.t; (* records appended but not yet flushed *)
}

let path t = t.wal_file
let pending_bytes t = Buffer.length t.pending

let open_ file =
  match
    let exists = Sys.file_exists file in
    let fd = Unix.openfile file [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    if exists then begin
      let m = Bytes.create (String.length magic) in
      let n = Unix.read fd m 0 (Bytes.length m) in
      if n <> Bytes.length m || Bytes.to_string m <> magic then begin
        Unix.close fd;
        failwith (file ^ ": not a genalg WAL (bad magic)")
      end;
      ignore (Unix.lseek fd 0 Unix.SEEK_END)
    end
    else begin
      let b = Bytes.of_string magic in
      ignore (Unix.write fd b 0 (Bytes.length b));
      Unix.fsync fd;
      (* the file's directory entry must also survive power loss *)
      Fsutil.fsync_dir (Fsutil.parent file)
    end;
    { wal_file = file; fd; pending = Buffer.create 512 }
  with
  | t -> Ok t
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, _, _) ->
      Error (file ^ ": " ^ Unix.error_message e)

(* ---- record encoding ---- *)

let add_record t payload =
  let buf = t.pending in
  Buffer.add_int64_le buf (Int64.of_int (String.length payload));
  Buffer.add_int64_le buf (Int64.of_int32 (Checksum.string payload));
  Buffer.add_string buf payload;
  Obs.add c_appends 1

let payload ~txn kind rest =
  let b = Buffer.create (16 + String.length rest) in
  Buffer.add_int64_le b (Int64.of_int txn);
  Buffer.add_char b kind;
  Buffer.add_string b rest;
  Buffer.contents b

let append_begin t ~txn = add_record t (payload ~txn 'B' "")
let append_commit t ~txn = add_record t (payload ~txn 'C' "")

let append_stmt t ~txn ~actor ~sql =
  let rest = Buffer.create (9 + String.length actor + String.length sql) in
  Buffer.add_int64_le rest (Int64.of_int (String.length actor));
  Buffer.add_string rest actor;
  Buffer.add_string rest sql;
  add_record t (payload ~txn 'S' (Buffer.contents rest))

let append_marker t ~txn ~lsn =
  let rest = Buffer.create 8 in
  Buffer.add_int64_le rest (Int64.of_int lsn);
  add_record t (payload ~txn 'M' (Buffer.contents rest))

let write_all fd s pos len =
  let b = Bytes.of_string s in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd b (pos + !written) (len - !written)
  done

let flush t =
  if Buffer.length t.pending = 0 then Ok ()
  else
    match
      let image = Buffer.contents t.pending in
      (* written in two halves around a crash point so fault specs can
         manufacture a genuinely torn tail *)
      let mid = String.length image / 2 in
      write_all t.fd image 0 mid;
      Fault.crash "storage.wal.flush_partial";
      write_all t.fd image mid (String.length image - mid);
      Unix.fsync t.fd;
      Fault.crash "storage.wal.flush";
      Buffer.clear t.pending;
      Obs.add c_flushes 1;
      Obs.add c_flushed_bytes (String.length image)
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Error (t.wal_file ^ ": " ^ Unix.error_message e)

let drop_pending t = Buffer.clear t.pending

let truncate t =
  match
    Buffer.clear t.pending;
    Unix.ftruncate t.fd (String.length magic);
    ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
    Unix.fsync t.fd;
    Obs.add c_truncations 1
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (t.wal_file ^ ": " ^ Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ---- recovery scan ---- *)

type replay_stmt = { rp_txn : int; rp_actor : string; rp_sql : string }

type replay = {
  committed : replay_stmt list;
  discarded : int;
  torn : bool;
  last_lsn : int option;
}

exception Torn

let scan ?from file =
  if not (Sys.file_exists file) then
    Ok { committed = []; discarded = 0; torn = false; last_lsn = None }
  else
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error msg
    | contents ->
        let m = String.length magic in
        if String.length contents < m || String.sub contents 0 m <> magic then
          Error (file ^ ": not a genalg WAL (bad magic)")
        else begin
          let data = Bytes.of_string contents in
          let pos = ref m in
          let torn = ref false in
          (* per-txn pending statements, in append order; txns emit into
             [out] when their commit record is reached *)
          let open_txns : (int, replay_stmt list ref) Hashtbl.t =
            Hashtbl.create 7
          in
          (* per-txn applied-LSN markers; honoured only at commit *)
          let markers : (int, int) Hashtbl.t = Hashtbl.create 7 in
          let out = ref [] in
          let discarded = ref 0 in
          let last_lsn = ref None in
          let note_lsn lsn =
            match !last_lsn with
            | Some prev when prev >= lsn -> ()
            | _ -> last_lsn := Some lsn
          in
          let wanted txn =
            match from with None -> true | Some cut -> txn > cut
          in
          let need n =
            if !pos + n > Bytes.length data then raise Torn
          in
          let read_i64 () =
            need 8;
            let v = Int64.to_int (Bytes.get_int64_le data !pos) in
            pos := !pos + 8;
            if v < 0 then raise Torn;
            v
          in
          (try
             while !pos < Bytes.length data do
               let start = !pos in
               let len = read_i64 () in
               need 8;
               let crc = Int64.to_int32 (Bytes.get_int64_le data !pos) in
               pos := !pos + 8;
               need len;
               if Checksum.sub data ~pos:!pos ~len <> crc then begin
                 pos := start;
                 raise Torn
               end;
               (* decode the payload: txn | kind | rest *)
               let p = !pos in
               pos := !pos + len;
               if len < 9 then raise Torn;
               let txn = Int64.to_int (Bytes.get_int64_le data p) in
               let kind = Bytes.get data (p + 8) in
               let rest_pos = p + 9 and rest_len = len - 9 in
               match kind with
               | 'B' -> Hashtbl.replace open_txns txn (ref [])
               | 'S' ->
                   if rest_len < 8 then raise Torn;
                   let alen =
                     Int64.to_int (Bytes.get_int64_le data rest_pos)
                   in
                   if alen < 0 || alen > rest_len - 8 then raise Torn;
                   let actor = Bytes.sub_string data (rest_pos + 8) alen in
                   let sql =
                     Bytes.sub_string data
                       (rest_pos + 8 + alen)
                       (rest_len - 8 - alen)
                   in
                   let stmts =
                     match Hashtbl.find_opt open_txns txn with
                     | Some r -> r
                     | None ->
                         let r = ref [] in
                         Hashtbl.replace open_txns txn r;
                         r
                   in
                   stmts :=
                     { rp_txn = txn; rp_actor = actor; rp_sql = sql } :: !stmts
               | 'M' ->
                   if rest_len < 8 then raise Torn;
                   let lsn = Int64.to_int (Bytes.get_int64_le data rest_pos) in
                   if lsn < 0 then raise Torn;
                   (match Hashtbl.find_opt markers txn with
                   | Some prev when prev >= lsn -> ()
                   | _ -> Hashtbl.replace markers txn lsn)
               | 'C' ->
                   (match Hashtbl.find_opt markers txn with
                   | Some lsn -> note_lsn lsn
                   | None -> ());
                   Hashtbl.remove markers txn;
                   (match Hashtbl.find_opt open_txns txn with
                   | Some stmts ->
                       (* [!stmts] is newest-first and [out] is kept
                          newest-first overall, so plain prepend keeps
                          the final [List.rev] correct within a txn *)
                       if wanted txn then out := !stmts @ !out;
                       Hashtbl.remove open_txns txn
                   | None -> () (* commit of an empty txn *))
               | _ -> raise Torn
             done
           with Torn -> torn := true);
          (* whatever is still open never committed: its records are
             discarded (an unacknowledged in-flight transaction) *)
          Hashtbl.iter
            (fun _ stmts -> discarded := !discarded + List.length !stmts)
            open_txns;
          let committed = List.rev !out in
          Obs.add c_replay_committed (List.length committed);
          Obs.add c_replay_discarded !discarded;
          Ok
            {
              committed;
              discarded = !discarded;
              torn = !torn;
              last_lsn = !last_lsn;
            }
        end

let replay file = scan file
let replay_from file ~lsn = scan ~from:lsn file
