(** Heap files: an append-friendly sequence of slotted pages addressed by
    record ids. *)

type t

type rid = { page : int; slot : int }
(** A record's physical address. *)

val create : unit -> t

val insert : t -> bytes -> rid
(** Appends into the last page with room (first-fit over the tail), or a
    new page. *)

val get : t -> rid -> bytes option
val delete : t -> rid -> bool

val update : t -> rid -> bytes -> rid
(** In-place when the page can hold it; otherwise delete + reinsert,
    returning the (possibly new) rid. *)

val iter : (rid -> bytes -> unit) -> t -> unit
(** Live records in physical order. *)

val fold : (rid -> bytes -> 'a -> 'a) -> t -> 'a -> 'a

val record_count : t -> int
val page_count : t -> int

val flush : t -> unit
(** Write every dirty buffered page back to its serialized image. *)

val drop_page_cache : t -> unit
(** {!flush}, then empty the heap's buffer pool so the next reads start
    cold ([cache.bufferpool.misses] ticks again). For benchmarks. *)

val to_bytes : t -> bytes
val of_bytes : bytes -> (t, string) result
