type space =
  | Public
  | User of string

type entry = {
  space : space;
  table : Table.t;
  mutable grantees : string list; (* read grants, user tables only *)
}

type t = {
  id : int;
  mutable entries : entry list;
  mutable catalog_version : int;
  udts : Udt.t;
}

let loader_actor = "etl"

(* Process-unique ids let process-wide caches (sqlx plan/result) key by
   database instance without keeping the instance alive. *)
let next_id = ref 0

let create () =
  incr next_id;
  { id = !next_id; entries = []; catalog_version = 0; udts = Udt.create () }

let id t = t.id
let catalog_version t = t.catalog_version
let udts t = t.udts

let space_key = function
  | Public -> "!public"
  | User u -> "user:" ^ String.lowercase_ascii u

let entry_key space name = space_key space ^ "/" ^ String.lowercase_ascii name

let find_entry t space name =
  let k = entry_key space name in
  List.find_opt (fun e -> entry_key e.space (Table.name e.table) = k) t.entries

let can_write _t ~actor = function
  | Public -> actor = loader_actor
  | User u -> String.lowercase_ascii actor = String.lowercase_ascii u

let can_read_entry ~actor e =
  match e.space with
  | Public -> true
  | User u ->
      String.lowercase_ascii actor = String.lowercase_ascii u
      || List.exists
           (fun g -> String.lowercase_ascii g = String.lowercase_ascii actor)
           e.grantees

(* Space-level readability; per-table grants are honoured by [resolve]. *)
let can_read _t ~actor = function
  | Public -> true
  | User u -> String.lowercase_ascii actor = String.lowercase_ascii u

let create_table t ~actor ~space ~name schema =
  if name = "" then Error "empty table name"
  else if not (can_write t ~actor space) then
    Error (Printf.sprintf "actor %s may not create tables in this space" actor)
  else if find_entry t space name <> None then
    Error (Printf.sprintf "table %s already exists" name)
  else begin
    let table = Table.create ~name schema in
    t.entries <- t.entries @ [ { space; table; grantees = [] } ];
    t.catalog_version <- t.catalog_version + 1;
    Ok table
  end

let drop_table t ~actor ~space ~name =
  if not (can_write t ~actor space) then
    Error (Printf.sprintf "actor %s may not drop tables in this space" actor)
  else
    match find_entry t space name with
    | None -> Error (Printf.sprintf "no table %s" name)
    | Some e ->
        t.entries <- List.filter (fun e' -> e' != e) t.entries;
        t.catalog_version <- t.catalog_version + 1;
        Ok ()

let find_table t ~space name =
  Option.map (fun e -> e.table) (find_entry t space name)

let resolve t ~actor name =
  let own = find_entry t (User actor) name in
  let entry =
    match own with
    | Some _ -> own
    | None -> (
        match find_entry t Public name with
        | Some _ as r -> r
        | None ->
            (* granted tables in other user spaces *)
            List.find_opt
              (fun e ->
                String.lowercase_ascii (Table.name e.table) = String.lowercase_ascii name
                && can_read_entry ~actor e)
              t.entries)
  in
  match entry with
  | Some e when can_read_entry ~actor e -> Some (e.space, e.table)
  | Some _ | None -> None

let grant_read t ~owner ~grantee ~table =
  match find_entry t (User owner) table with
  | None -> Error (Printf.sprintf "no table %s owned by %s" table owner)
  | Some e ->
      if not (List.mem grantee e.grantees) then begin
        e.grantees <- grantee :: e.grantees;
        t.catalog_version <- t.catalog_version + 1
      end;
      Ok ()

let insert t ~actor ~space ~table row =
  if not (can_write t ~actor space) then
    Error (Printf.sprintf "actor %s may not write this space" actor)
  else
    match find_entry t space table with
    | None -> Error (Printf.sprintf "no table %s" table)
    | Some e ->
        let rec validate i =
          if i = Array.length row then Ok ()
          else
            match Udt.validate_value t.udts row.(i) with
            | Ok () -> validate (i + 1)
            | Error _ as err -> err
        in
        (match validate 0 with
        | Error _ as err -> err
        | Ok () -> Table.insert e.table row)

let tables t =
  let rank = function Public -> (0, "") | User u -> (1, String.lowercase_ascii u) in
  List.map (fun e -> (e.space, e.table)) t.entries
  |> List.sort (fun (s1, t1) (s2, t2) ->
         let c = compare (rank s1) (rank s2) in
         if c <> 0 then c else String.compare (Table.name t1) (Table.name t2))

let table_count t = List.length t.entries

let flush_buffers t =
  List.iter (fun e -> Table.drop_page_cache e.table) t.entries

(* --------------------------------------------------------------- *)
(* Persistence: crash-safe, checksummed snapshots.

   On-disk format (v2, magic GENALGDB2):
     magic | n_chunks:i64 | payload_len:i64
     then per chunk: len:i64 | crc32:i64 | bytes
   The concatenated chunk bytes are the v1 body (magic GENALGDB1 ...),
   which loads unchanged for pre-v2 files. Per-chunk CRCs turn torn
   writes and bit flips into clean load errors instead of silent
   corruption.

   Saves follow a write-ahead intent protocol, punctuated by registered
   fault crash points so the whole sequence is testable:

     serialize -> write <path>.journal (CRC + length of the complete
     new image) -> write <path>.tmp -> rename over <path> -> clear
     journal.

   [recover] (run by every [load]) looks at the journal: a tmp matching
   the journaled CRC is rolled forward (the save is completed); anything
   else is rolled back to the previous snapshot. Either way the database
   opens to exactly the pre-save or post-save state, never a mix. *)

module Fault = Genalg_fault.Fault
module Obs = Genalg_obs.Obs

let c_roll_forward = Obs.counter "storage.recovery.roll_forward"
let c_roll_back = Obs.counter "storage.recovery.roll_back"
let c_journal_cleared = Obs.counter "storage.recovery.journal_cleared"
let c_checksum_failures = Obs.counter "storage.recovery.checksum_failures"
let c_clean_open = Obs.counter "storage.recovery.clean_open"

let crash_points =
  [ "storage.save.serialize"; "storage.save.stats"; "storage.save.journal";
    "storage.save.tmp_partial"; "storage.save.tmp"; "storage.save.rename";
    "storage.save.dir_sync" ]

let () = List.iter Fault.register_crash_point crash_points

let magic = "GENALGDB1"
let magic_v2 = "GENALGDB2"
let magic_v3 = "GENALGDB3"
let journal_magic = "GENALGJL1"

let add_sized buf s =
  Buffer.add_int64_le buf (Int64.of_int (String.length s));
  Buffer.add_string buf s

let encode_schema buf schema =
  let cols = Schema.columns schema in
  Buffer.add_int64_le buf (Int64.of_int (List.length cols));
  List.iter
    (fun (c : Schema.column) ->
      add_sized buf c.Schema.name;
      add_sized buf (Dtype.to_string c.Schema.dtype);
      Buffer.add_char buf (if c.Schema.nullable then '\001' else '\000'))
    cols

let encode_stats buf table =
  let stats = Table.stats_snapshot table in
  Buffer.add_int64_le buf (Int64.of_int (List.length stats));
  List.iter
    (fun (col, (cs : Table.column_stats)) ->
      add_sized buf col;
      Buffer.add_int64_le buf (Int64.of_int cs.Table.rows);
      Buffer.add_int64_le buf (Int64.of_int cs.Table.distinct);
      Buffer.add_int64_le buf (Int64.of_int cs.Table.nulls);
      let add_opt = function
        | None -> Buffer.add_char buf '\000'
        | Some v ->
            Buffer.add_char buf '\001';
            Dtype.encode_value buf v
      in
      add_opt cs.Table.min_value;
      add_opt cs.Table.max_value;
      match cs.Table.histogram with
      | None -> Buffer.add_int64_le buf 0L
      | Some h ->
          Buffer.add_int64_le buf (Int64.of_int (Array.length h.Table.bounds));
          Array.iteri
            (fun i b ->
              Dtype.encode_value buf b;
              Buffer.add_int64_le buf (Int64.of_int h.Table.counts.(i)))
            h.Table.bounds)
    stats

let serialize t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v3;
  Buffer.add_int64_le buf (Int64.of_int (List.length t.entries));
  List.iter
    (fun e ->
      (match e.space with
      | Public -> add_sized buf "!public"
      | User u -> add_sized buf ("user:" ^ u));
      add_sized buf (Table.name e.table);
      encode_schema buf (Table.schema e.table);
      let indexed = Table.indexed_columns e.table in
      Buffer.add_int64_le buf (Int64.of_int (List.length indexed));
      List.iter (add_sized buf) indexed;
      Buffer.add_int64_le buf (Int64.of_int (List.length e.grantees));
      List.iter (add_sized buf) e.grantees;
      (* rows re-encoded from the heap; tombstones drop out *)
      let rows = Table.fold e.table ~init:[] ~f:(fun acc _ row -> row :: acc) in
      let rows = List.rev rows in
      Buffer.add_int64_le buf (Int64.of_int (List.length rows));
      List.iter
        (fun row ->
          let enc = Dtype.encode_row row in
          Buffer.add_int64_le buf (Int64.of_int (Bytes.length enc));
          Buffer.add_bytes buf enc)
        rows;
      (* ANALYZE statistics ride in the image (v3 bodies only) *)
      encode_stats buf e.table;
      (* genomic index specs (column, k): the index itself is rebuilt
         when an adapter attaches a UDT registry (v3 bodies only) *)
      let genomic = Table.genomic_specs e.table in
      Buffer.add_int64_le buf (Int64.of_int (List.length genomic));
      List.iter
        (fun (col, k) ->
          add_sized buf col;
          Buffer.add_int64_le buf (Int64.of_int k))
        genomic)
    t.entries;
  Buffer.contents buf

exception Corrupt of string

let chunk_size = 8192

(* Wrap a v1 body in the v2 chunk-checksummed envelope. *)
let encode_v2 body =
  let nbytes = String.length body in
  let n_chunks = (nbytes + chunk_size - 1) / chunk_size in
  let buf = Buffer.create (nbytes + 32 + (16 * n_chunks)) in
  Buffer.add_string buf magic_v2;
  Buffer.add_int64_le buf (Int64.of_int n_chunks);
  Buffer.add_int64_le buf (Int64.of_int nbytes);
  for i = 0 to n_chunks - 1 do
    let pos = i * chunk_size in
    let len = min chunk_size (nbytes - pos) in
    Buffer.add_int64_le buf (Int64.of_int len);
    Buffer.add_int64_le buf
      (Int64.of_int32 (Checksum.string (String.sub body pos len)));
    Buffer.add_substring buf body pos len
  done;
  Buffer.contents buf

(* Unwrap a v2 envelope, verifying every chunk CRC. Raises [Corrupt]. *)
let decode_v2 contents =
  let data = Bytes.of_string contents in
  let pos = ref (String.length magic_v2) in
  let need n =
    if !pos + n > Bytes.length data then raise (Corrupt "truncated envelope")
  in
  let read_int () =
    need 8;
    let v = Int64.to_int (Bytes.get_int64_le data !pos) in
    pos := !pos + 8;
    if v < 0 then raise (Corrupt "negative envelope length");
    v
  in
  let n_chunks = read_int () in
  let payload_len = read_int () in
  if n_chunks > Bytes.length data || payload_len > Bytes.length data then
    raise (Corrupt "implausible envelope header");
  let buf = Buffer.create payload_len in
  for _ = 1 to n_chunks do
    let len = read_int () in
    if len > chunk_size then raise (Corrupt "oversized chunk");
    need 8;
    let crc = Int64.to_int32 (Bytes.get_int64_le data !pos) in
    pos := !pos + 8;
    need len;
    if Checksum.sub data ~pos:!pos ~len <> crc then begin
      Obs.add c_checksum_failures 1;
      raise (Corrupt "chunk checksum mismatch (torn or corrupt write)")
    end;
    Buffer.add_subbytes buf data !pos len;
    pos := !pos + len
  done;
  if Buffer.length buf <> payload_len then
    raise (Corrupt "payload length mismatch");
  Buffer.contents buf

(* ---- write-ahead intent journal ---- *)

let journal_path path = path ^ ".journal"
let tmp_path path = path ^ ".tmp"

let encode_journal image =
  let buf = Buffer.create 32 in
  Buffer.add_string buf journal_magic;
  Buffer.add_int64_le buf (Int64.of_int32 (Checksum.string image));
  Buffer.add_int64_le buf (Int64.of_int (String.length image));
  Buffer.contents buf

let parse_journal s =
  let m = String.length journal_magic in
  if String.length s = m + 16 && String.sub s 0 m = journal_magic then begin
    let b = Bytes.of_string s in
    let crc = Int64.to_int32 (Bytes.get_int64_le b m) in
    let len = Int64.to_int (Bytes.get_int64_le b (m + 8)) in
    if len >= 0 then Some (crc, len) else None
  end
  else None

let write_file file contents =
  let oc = open_out_bin file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

let read_file_opt file =
  if Sys.file_exists file then
    Some
      (let ic = open_in_bin file in
       Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
           really_input_string ic (in_channel_length ic)))
  else None

let remove_if_exists file = if Sys.file_exists file then Sys.remove file

type recovery = No_journal | Rolled_forward | Rolled_back | Completed

let recovery_to_string = function
  | No_journal -> "no-journal"
  | Rolled_forward -> "rolled-forward"
  | Rolled_back -> "rolled-back"
  | Completed -> "completed"

let recover path =
  let journal = journal_path path and tmp = tmp_path path in
  match read_file_opt journal with
  | None ->
      (* no interrupted save; a stray tmp is leftover garbage *)
      remove_if_exists tmp;
      No_journal
  | Some jbytes ->
      let matches file (crc, len) =
        match read_file_opt file with
        | Some img -> String.length img = len && Checksum.string img = crc
        | None -> false
      in
      let outcome =
        match Option.bind (Some jbytes) parse_journal with
        | Some intent when matches tmp intent ->
            (* complete new image made it to tmp: finish the save *)
            Sys.rename tmp path;
            Obs.add c_roll_forward 1;
            Rolled_forward
        | Some intent when matches path intent ->
            (* rename happened; only the journal clear was lost *)
            remove_if_exists tmp;
            Completed
        | Some _ | None ->
            (* torn/absent tmp (or unreadable journal): keep the old
               snapshot *)
            remove_if_exists tmp;
            Obs.add c_roll_back 1;
            Rolled_back
      in
      Sys.remove journal;
      Obs.add c_journal_cleared 1;
      outcome

let save t path =
  match
    let body = serialize t in
    (* statistics are serialized into the body; nothing durable yet, so a
       crash here must recover to the pre-ANALYZE image *)
    Fault.crash "storage.save.stats";
    Fault.crash "storage.save.serialize";
    let image = encode_v2 body in
    let journal = journal_path path and tmp = tmp_path path in
    write_file journal (encode_journal image);
    (* harden the journal itself: its bytes, then its directory entry
       (a freshly created file is not power-loss durable until the
       parent directory is fsynced) *)
    Fsutil.fsync_file journal;
    Fsutil.fsync_dir (Fsutil.parent journal);
    Fault.crash "storage.save.journal";
    (* the tmp image is written in two halves around a crash point, so
       fault specs can manufacture a genuinely torn file *)
    let mid = String.length image / 2 in
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_substring oc image 0 mid;
        flush oc;
        Fault.crash "storage.save.tmp_partial";
        output_substring oc image mid (String.length image - mid));
    Fsutil.fsync_file tmp;
    Fault.crash "storage.save.tmp";
    Sys.rename tmp path;
    Fault.crash "storage.save.rename";
    (* the rename is atomic but not durable until the directory entry
       is fsynced; power loss before this point may resurrect the old
       image, which recovery rolls forward from the journal *)
    Fsutil.fsync_dir (Fsutil.parent path);
    Fault.crash "storage.save.dir_sync";
    Sys.remove journal
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

(* Parse a v1 body (magic GENALGDB1 ...) into a database. *)
let parse_body contents =
      let data = Bytes.of_string contents in
      let pos = ref 0 in
      let need n =
        if !pos + n > Bytes.length data then raise (Corrupt "truncated file")
      in
      let read_int () =
        need 8;
        let v = Int64.to_int (Bytes.get_int64_le data !pos) in
        pos := !pos + 8;
        if v < 0 then raise (Corrupt "negative length");
        v
      in
      (* counts of variable-size items: each item consumes at least one
         byte, so a count larger than the remaining payload is corrupt
         (prevents unbounded allocation from mutated headers) *)
      let read_count () =
        let v = read_int () in
        if v > Bytes.length data - !pos then raise (Corrupt "implausible count");
        v
      in
      let read_sized () =
        let n = read_int () in
        need n;
        let s = Bytes.sub_string data !pos n in
        pos := !pos + n;
        s
      in
      let read_value () =
        let v, next = Dtype.decode_value data !pos in
        pos := next;
        v
      in
      let read_stats () =
        let nstats = read_count () in
        List.init nstats (fun _ ->
            let col = read_sized () in
            let rows = read_int () in
            let distinct = read_int () in
            let nulls = read_int () in
            let read_opt () =
              need 1;
              let tag = Bytes.get data !pos in
              incr pos;
              if tag = '\000' then None else Some (read_value ())
            in
            let min_value = read_opt () in
            let max_value = read_opt () in
            let nb = read_count () in
            let histogram =
              if nb = 0 then None
              else begin
                let bounds = Array.make nb Dtype.Null in
                let counts = Array.make nb 0 in
                for i = 0 to nb - 1 do
                  bounds.(i) <- read_value ();
                  counts.(i) <- read_int ()
                done;
                Some { Table.bounds; counts }
              end
            in
            ( col,
              { Table.rows; distinct; nulls; min_value; max_value; histogram } ))
      in
      (try
         need (String.length magic);
         let m = Bytes.sub_string data 0 (String.length magic) in
         let with_stats = m = magic_v3 in
         if m <> magic && m <> magic_v3 then raise (Corrupt "bad magic");
         pos := String.length magic;
         let t = create () in
         let n_entries = read_count () in
         for _ = 1 to n_entries do
           let space_str = read_sized () in
           let space =
             if space_str = "!public" then Public
             else if String.length space_str > 5 && String.sub space_str 0 5 = "user:"
             then User (String.sub space_str 5 (String.length space_str - 5))
             else raise (Corrupt "bad space tag")
           in
           let name = read_sized () in
           let ncols = read_count () in
           let cols =
             List.init ncols (fun _ ->
                 let cname = read_sized () in
                 let tname = read_sized () in
                 need 1;
                 let nullable = Bytes.get data !pos <> '\000' in
                 incr pos;
                 match Dtype.of_string tname with
                 | Some dtype -> { Schema.name = cname; dtype; nullable }
                 | None -> raise (Corrupt ("bad column type " ^ tname)))
           in
           let schema =
             match Schema.make cols with
             | Ok s -> s
             | Error msg -> raise (Corrupt msg)
           in
           let table = Table.create ~name schema in
           let nidx = read_count () in
           let indexed = List.init nidx (fun _ -> read_sized ()) in
           let ngrant = read_count () in
           let grantees = List.init ngrant (fun _ -> read_sized ()) in
           let nrows = read_count () in
           for _ = 1 to nrows do
             let len = read_int () in
             need len;
             let row = Dtype.decode_row (Bytes.sub data !pos len) in
             pos := !pos + len;
             match Table.insert table row with
             | Ok _ -> ()
             | Error msg -> raise (Corrupt msg)
           done;
           List.iter
             (fun col ->
               match Table.create_index table ~column:col with
               | Ok () -> ()
               | Error msg -> raise (Corrupt msg))
             indexed;
           if with_stats then begin
             Table.set_stats table (read_stats ());
             let ngen = read_count () in
             let specs =
               List.init ngen (fun _ ->
                   let col = read_sized () in
                   let k = read_int () in
                   (col, k))
             in
             if specs <> [] then Table.set_pending_genomic table specs
           end;
           t.entries <- t.entries @ [ { space; table; grantees } ]
         done;
         Ok t
       with
      | Corrupt msg -> Error ("Database.load: " ^ msg)
      | Invalid_argument msg -> Error ("Database.load: " ^ msg))

(* Snapshot clone through the serializer: cheap enough at warehouse
   scale, and it reuses the one codepath that already knows how to copy
   every table. B-tree indexes are rebuilt; ANALYZE statistics and
   genomic index specs carry over (v3 bodies persist them). Built
   genomic indexes are shared copy-on-write with the clone when record
   ids line up (the common no-tombstone case), so a snapshot BEGIN no
   longer pays a rebuild-sized allocation spike; otherwise the specs
   stay pending and — like UDT registrations — materialize when an
   adapter re-attaches (same contract as [load]: both the CLI and the
   serve layer attach after load/clone, which triggers
   [Table.rebuild_genomic_indexes]). *)
let clone t =
  match parse_body (serialize t) with
  | Ok t' ->
      (* serialize/parse preserves entry order, so the lists pair up *)
      List.iter2
        (fun e e' -> Table.share_genomic_indexes ~src:e.table ~dst:e'.table)
        t.entries t'.entries;
      t'
  | Error msg -> invalid_arg ("Database.clone: " ^ msg)

let load path =
  match
    let (_ : recovery) = recover path in
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match
        let m2 = String.length magic_v2 in
        if String.length contents >= m2 && String.sub contents 0 m2 = magic_v2
        then decode_v2 contents
        else contents (* legacy v1 body, stored bare *)
      with
      | exception Corrupt msg -> Error ("Database.load: " ^ msg)
      | body -> (
          match parse_body body with
          | Ok _ as ok ->
              Obs.add c_clean_open 1;
              ok
          | Error _ as err -> err))
