(* CLRS-style B-tree with minimum degree [min_degree]; each key carries a
   posting list of rids. *)

let min_degree = 16
let max_keys = (2 * min_degree) - 1

module Obs = Genalg_obs.Obs

let c_lookups = Obs.counter "storage.btree.lookups"
let c_inserts = Obs.counter "storage.btree.inserts"
let c_splits = Obs.counter "storage.btree.node_splits"
let c_ranges = Obs.counter "storage.btree.range_scans"

type node = {
  mutable keys : Dtype.value array;
  mutable postings : Heap.rid list array;
  mutable children : node array; (* [||] for leaves *)
  mutable n : int;
  mutable leaf : bool;
}

type t = { mutable root : node }

let dummy_node =
  { keys = [||]; postings = [||]; children = [||]; n = 0; leaf = true }

let new_node leaf =
  {
    keys = Array.make max_keys Dtype.Null;
    postings = Array.make max_keys [];
    children = (if leaf then [||] else Array.make (max_keys + 1) dummy_node);
    n = 0;
    leaf;
  }

let create () = { root = new_node true }

let cmp = Dtype.compare_value

(* index of the first key >= k in node, or node.n *)
let lower_bound node k =
  let lo = ref 0 and hi = ref node.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp node.keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_node node k =
  let i = lower_bound node k in
  if i < node.n && cmp node.keys.(i) k = 0 then Some (node, i)
  else if node.leaf then None
  else find_node node.children.(i) k

let find t k =
  Obs.add c_lookups 1;
  match find_node t.root k with
  | Some (node, i) -> List.rev node.postings.(i)
  | None -> []

(* Split the full child [child] of [parent] at child index [ci]. *)
let split_child parent ci =
  Obs.add c_splits 1;
  let child = parent.children.(ci) in
  let right = new_node child.leaf in
  let mid = min_degree - 1 in
  right.n <- min_degree - 1;
  for j = 0 to right.n - 1 do
    right.keys.(j) <- child.keys.(mid + 1 + j);
    right.postings.(j) <- child.postings.(mid + 1 + j)
  done;
  if not child.leaf then
    for j = 0 to right.n do
      right.children.(j) <- child.children.(mid + 1 + j)
    done;
  let median_key = child.keys.(mid) and median_post = child.postings.(mid) in
  child.n <- mid;
  (* shift parent entries right to make room *)
  for j = parent.n downto ci + 1 do
    parent.keys.(j) <- parent.keys.(j - 1);
    parent.postings.(j) <- parent.postings.(j - 1)
  done;
  for j = parent.n + 1 downto ci + 2 do
    parent.children.(j) <- parent.children.(j - 1)
  done;
  parent.keys.(ci) <- median_key;
  parent.postings.(ci) <- median_post;
  parent.children.(ci + 1) <- right;
  parent.n <- parent.n + 1

let rec insert_nonfull node k rid =
  let i = lower_bound node k in
  if i < node.n && cmp node.keys.(i) k = 0 then
    node.postings.(i) <- rid :: node.postings.(i)
  else if node.leaf then begin
    for j = node.n downto i + 1 do
      node.keys.(j) <- node.keys.(j - 1);
      node.postings.(j) <- node.postings.(j - 1)
    done;
    node.keys.(i) <- k;
    node.postings.(i) <- [ rid ];
    node.n <- node.n + 1
  end
  else begin
    let i =
      if node.children.(i).n = max_keys then begin
        split_child node i;
        if cmp node.keys.(i) k < 0 then i + 1
        else if cmp node.keys.(i) k = 0 then begin
          node.postings.(i) <- rid :: node.postings.(i);
          -1
        end
        else i
      end
      else i
    in
    if i >= 0 then insert_nonfull node.children.(i) k rid
  end

let insert t k rid =
  Obs.add c_inserts 1;
  if t.root.n = max_keys then begin
    let new_root = new_node false in
    new_root.children.(0) <- t.root;
    t.root <- new_root;
    split_child new_root 0
  end;
  insert_nonfull t.root k rid

let remove t k rid =
  match find_node t.root k with
  | None -> false
  | Some (node, i) ->
      let before = node.postings.(i) in
      let after = List.filter (fun r -> r <> rid) before in
      node.postings.(i) <- after;
      List.length after < List.length before

let rec iter_node f node =
  if node.leaf then
    for i = 0 to node.n - 1 do
      f node.keys.(i) (List.rev node.postings.(i))
    done
  else begin
    for i = 0 to node.n - 1 do
      iter_node f node.children.(i);
      f node.keys.(i) (List.rev node.postings.(i))
    done;
    iter_node f node.children.(node.n)
  end

let iter f t = iter_node f t.root

let range ?lo ?hi ?(lo_inclusive = true) ?(hi_inclusive = true) t =
  Obs.add c_ranges 1;
  let in_range k =
    (match lo with
    | None -> true
    | Some l ->
        let c = cmp k l in
        if lo_inclusive then c >= 0 else c > 0)
    && (match hi with
       | None -> true
       | Some h ->
           let c = cmp k h in
           if hi_inclusive then c <= 0 else c < 0)
  in
  let acc = ref [] in
  iter (fun k rids -> if in_range k && rids <> [] then acc := (k, rids) :: !acc) t;
  List.rev !acc

let cardinal t =
  let n = ref 0 in
  iter (fun _ rids -> if rids <> [] then incr n) t;
  !n

let distinct_keys t =
  let n = ref 0 in
  iter (fun _ _ -> incr n) t;
  !n

let height t =
  let rec depth node = if node.leaf then 1 else 1 + depth node.children.(0) in
  depth t.root
