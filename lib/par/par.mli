(** Multicore parallel execution: a process-wide, lazily-spawned pool of
    OCaml 5 domains with chunked, order-preserving data-parallel
    combinators.

    ROADMAP's north star is an engine that "runs as fast as the hardware
    allows"; this module is the single place the engine takes parallelism
    from. The SQL executor partitions scans and join probes over it, and
    the CPU-bound genomic kernels (batch alignment, k-mer / suffix-array
    index construction) fan their chunks out through the same pool, so one
    [--jobs] knob governs the whole process.

    Design (docs/PARALLELISM.md has the full story):

    - Degree of parallelism [jobs] = worker domains + the submitting
      domain. It defaults to [GENALG_JOBS] when set, otherwise
      {!Domain.recommended_domain_count} (so the pool holds
      [recommended - 1] workers and the caller makes up the difference).
    - Workers are spawned lazily on the first parallel operation and are
      reused for the life of the process ({!shutdown} tears them down).
    - Every combinator is {e deterministic}: results are merged in input
      order, so output is identical for any [jobs], including [jobs = 1]
      (which runs inline, spawning nothing).
    - The submitting domain participates in chunk execution; an exception
      raised by the user function cancels the remaining chunks and is
      re-raised (with its backtrace) in the submitter once in-flight
      chunks drain.
    - Nested parallel calls from inside a worker run sequentially inline —
      no deadlock, no domain explosion.
    - Instruments (submitter-side only, so recording stays race-free):
      [par.ops], [par.ops_inline], [par.chunks], [par.chunks_stolen],
      [par.spawned] counters and the [par.run] span/histogram. *)

val default_jobs : unit -> int
(** [GENALG_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val jobs : unit -> int
(** Current degree of parallelism (includes the submitting domain). *)

val set_jobs : int -> unit
(** Override the degree of parallelism; clamped to [>= 1]. Growing takes
    effect on the next parallel operation; shrinking below the number of
    already-spawned workers takes effect after {!shutdown}. *)

val pool_size : unit -> int
(** Worker domains currently alive (0 until the first parallel op). *)

val spawned_total : unit -> int
(** Cumulative worker domains spawned by this process — stays flat across
    repeated parallel operations once the pool is warm. *)

val parallel_map : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f a] is [Array.map f a] computed on the pool. [f] runs
    on arbitrary domains; it must not touch domain-unsafe shared state.
    Order is preserved exactly. [chunk] overrides the chunk size (default
    [length / (4 * jobs)], at least 1). *)

val parallel_map_list : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!parallel_map} (converts through arrays). *)

val parallel_fold :
  ?chunk:int ->
  map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** Map-reduce: each chunk folds [combine acc (map x)] left-to-right from
    [init], then the per-chunk results are combined left-to-right in chunk
    order. Deterministic whenever [combine] is associative with [init] as
    identity. *)

val parallel_for : ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f i] for [i = 0 .. n-1] on the pool. [f]
    must only write to disjoint slots (e.g. [results.(i)]). *)

val parallel_sort : ?chunk:int -> ('a -> 'a -> int) -> 'a array -> unit
(** In-place sort: chunks are sorted concurrently, then merged with a
    stable pairwise merge. Like [Array.sort], not stable overall (the
    per-chunk sorts are [Array.sort]). *)

val shutdown : unit -> unit
(** Join every worker domain and empty the pool. Subsequent parallel
    operations re-spawn lazily. For tests and orderly exits. *)
