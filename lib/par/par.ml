module Obs = Genalg_obs.Obs

let c_ops = Obs.counter "par.ops"
let c_ops_inline = Obs.counter "par.ops_inline"
let c_chunks = Obs.counter "par.chunks"
let c_chunks_stolen = Obs.counter "par.chunks_stolen"
let c_spawned = Obs.counter "par.spawned"

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

let default_jobs () =
  match Sys.getenv_opt "GENALG_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> max 1 (Domain.recommended_domain_count ()))
  | None -> max 1 (Domain.recommended_domain_count ())

let jobs_override = ref None
let jobs () = match !jobs_override with Some n -> n | None -> default_jobs ()
let set_jobs n = jobs_override := Some (max 1 n)

(* ------------------------------------------------------------------ *)
(* Pool: a queue of chunked tasks; workers and the submitter claim
   chunk indices with an atomic fetch-and-add, so scheduling is
   self-balancing while the merge stays order-preserving (each chunk
   writes only its own slot).                                          *)

type task = {
  run : int -> unit; (* execute chunk [i]; must not raise *)
  total : int;
  next : int Atomic.t;
  remaining : int Atomic.t;
  fin_mutex : Mutex.t;
  fin_cond : Condition.t;
  mutable finished : bool;
}

let pool_mutex = Mutex.create ()
let pool_cond = Condition.create ()
let pending : task Queue.t = Queue.create ()
let workers : unit Domain.t list ref = ref []
let shutting_down = ref false
let spawned = ref 0 (* cumulative; only touched under [pool_mutex] *)

let pool_size () =
  Mutex.lock pool_mutex;
  let n = List.length !workers in
  Mutex.unlock pool_mutex;
  n

let spawned_total () =
  Mutex.lock pool_mutex;
  let n = !spawned in
  Mutex.unlock pool_mutex;
  n

(* workers flag their domain so nested parallel calls run inline *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let finish t =
  Mutex.lock t.fin_mutex;
  t.finished <- true;
  Condition.broadcast t.fin_cond;
  Mutex.unlock t.fin_mutex

(* Claim and execute chunks until the task is exhausted; returns how many
   chunks this domain ran. *)
let run_chunks t =
  let rec go ran =
    let c = Atomic.fetch_and_add t.next 1 in
    if c >= t.total then ran
    else begin
      t.run c;
      if Atomic.fetch_and_add t.remaining (-1) = 1 then finish t;
      go (ran + 1)
    end
  in
  go 0

let wait_finished t =
  Mutex.lock t.fin_mutex;
  while not t.finished do
    Condition.wait t.fin_cond t.fin_mutex
  done;
  Mutex.unlock t.fin_mutex

(* Drop [t] from the head of the queue if nobody has yet. *)
let unqueue t =
  Mutex.lock pool_mutex;
  (match Queue.peek_opt pending with
  | Some t' when t' == t -> ignore (Queue.pop pending)
  | _ -> ());
  Mutex.unlock pool_mutex

let rec worker_loop () =
  Mutex.lock pool_mutex;
  let rec await () =
    if !shutting_down then None
    else
      match Queue.peek_opt pending with
      | Some t -> Some t
      | None ->
          Condition.wait pool_cond pool_mutex;
          await ()
  in
  match await () with
  | None -> Mutex.unlock pool_mutex
  | Some t ->
      Mutex.unlock pool_mutex;
      ignore (run_chunks t);
      (* chunks all claimed: wait for in-flight ones, then make sure the
         task leaves the queue before looking for the next one *)
      wait_finished t;
      unqueue t;
      worker_loop ()

let worker_main () =
  Domain.DLS.set in_worker true;
  worker_loop ()

(* Grow the pool (lazily, on first use) to [jobs () - 1] workers. *)
let ensure_workers () =
  let target = jobs () - 1 in
  Mutex.lock pool_mutex;
  let missing = target - List.length !workers in
  if missing > 0 then begin
    for _ = 1 to missing do
      workers := Domain.spawn worker_main :: !workers;
      incr spawned
    done;
    Obs.add c_spawned missing
  end;
  Mutex.unlock pool_mutex

let shutdown () =
  Mutex.lock pool_mutex;
  shutting_down := true;
  Condition.broadcast pool_cond;
  let ws = !workers in
  workers := [];
  Mutex.unlock pool_mutex;
  List.iter Domain.join ws;
  Mutex.lock pool_mutex;
  shutting_down := false;
  Mutex.unlock pool_mutex

(* ------------------------------------------------------------------ *)
(* Chunked submission                                                  *)

let chunk_size ?chunk n j =
  match chunk with
  | Some c -> max 1 c
  | None -> max 1 ((n + (4 * j) - 1) / (4 * j))

(* Run [nchunks] chunks of [body] on the pool, submitter included.
   [body i] must not raise — wrap user code with [guarded] below. *)
let submit ~nchunks body =
  ensure_workers ();
  let t =
    {
      run = body;
      total = nchunks;
      next = Atomic.make 0;
      remaining = Atomic.make nchunks;
      fin_mutex = Mutex.create ();
      fin_cond = Condition.create ();
      finished = false;
    }
  in
  Mutex.lock pool_mutex;
  Queue.push t pending;
  Condition.broadcast pool_cond;
  Mutex.unlock pool_mutex;
  let mine = run_chunks t in
  wait_finished t;
  unqueue t;
  Obs.add c_chunks nchunks;
  Obs.add c_chunks_stolen (nchunks - mine)

(* First exception wins; the rest of the chunks are cancelled. *)
type failure = { mutable exn : (exn * Printexc.raw_backtrace) option }

let guarded fail fail_mutex cancelled body i =
  if not (Atomic.get cancelled) then
    try body i
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Atomic.set cancelled true;
      Mutex.lock fail_mutex;
      if fail.exn = None then fail.exn <- Some (e, bt);
      Mutex.unlock fail_mutex

let run_parallel ~nchunks body =
  let fail = { exn = None } in
  let fail_mutex = Mutex.create () in
  let cancelled = Atomic.make false in
  Obs.add c_ops 1;
  Obs.with_span ~attrs:[ ("chunks", string_of_int nchunks) ] "par.run"
    (fun () -> submit ~nchunks (guarded fail fail_mutex cancelled body));
  match fail.exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* Parallelism is worth taking when we are not already on a worker, more
   than one job is configured, and there are at least two chunks. *)
let effective_jobs () = if Domain.DLS.get in_worker then 1 else jobs ()

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)

let parallel_map ?chunk f arr =
  let n = Array.length arr in
  let j = effective_jobs () in
  let csize = chunk_size ?chunk n j in
  let nchunks = if csize >= n then 1 else (n + csize - 1) / csize in
  if j <= 1 || nchunks <= 1 then begin
    Obs.add c_ops_inline 1;
    Array.map f arr
  end
  else begin
    let parts = Array.make nchunks [||] in
    run_parallel ~nchunks (fun ci ->
        let lo = ci * csize in
        let hi = min n (lo + csize) in
        parts.(ci) <- Array.init (hi - lo) (fun i -> f arr.(lo + i)));
    Array.concat (Array.to_list parts)
  end

let parallel_map_list ?chunk f l =
  Array.to_list (parallel_map ?chunk f (Array.of_list l))

let parallel_fold ?chunk ~map ~combine ~init arr =
  let n = Array.length arr in
  let j = effective_jobs () in
  let csize = chunk_size ?chunk n j in
  let nchunks = if csize >= n then 1 else (n + csize - 1) / csize in
  if j <= 1 || nchunks <= 1 then begin
    Obs.add c_ops_inline 1;
    Array.fold_left (fun acc x -> combine acc (map x)) init arr
  end
  else begin
    let parts = Array.make nchunks init in
    run_parallel ~nchunks (fun ci ->
        let lo = ci * csize in
        let hi = min n (lo + csize) in
        let acc = ref init in
        for i = lo to hi - 1 do
          acc := combine !acc (map arr.(i))
        done;
        parts.(ci) <- !acc);
    Array.fold_left combine init parts
  end

let parallel_for ?chunk n f =
  let j = effective_jobs () in
  let csize = chunk_size ?chunk n j in
  let nchunks = if csize >= n then 1 else (n + csize - 1) / csize in
  if j <= 1 || nchunks <= 1 then begin
    Obs.add c_ops_inline 1;
    for i = 0 to n - 1 do
      f i
    done
  end
  else
    run_parallel ~nchunks (fun ci ->
        let lo = ci * csize in
        let hi = min n (lo + csize) in
        for i = lo to hi - 1 do
          f i
        done)

(* Stable merge of two sorted arrays (left elements first on ties). *)
let merge cmp a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) a.(0) in
    let i = ref 0 and j = ref 0 in
    for k = 0 to na + nb - 1 do
      if !i < na && (!j >= nb || cmp a.(!i) b.(!j) <= 0) then begin
        out.(k) <- a.(!i);
        incr i
      end
      else begin
        out.(k) <- b.(!j);
        incr j
      end
    done;
    out
  end

let parallel_sort ?chunk cmp arr =
  let n = Array.length arr in
  let j = effective_jobs () in
  let csize =
    match chunk with Some c -> max 1 c | None -> max 1024 ((n + j - 1) / j)
  in
  let nchunks = if csize >= n then 1 else (n + csize - 1) / csize in
  if j <= 1 || nchunks <= 1 then Array.sort cmp arr
  else begin
    let parts =
      Array.init nchunks (fun ci ->
          let lo = ci * csize in
          Array.sub arr lo (min csize (n - lo)))
    in
    run_parallel ~nchunks (fun ci -> Array.sort cmp parts.(ci));
    (* pairwise merge rounds; each round's merges run on the pool *)
    let runs = ref parts in
    while Array.length !runs > 1 do
      let m = Array.length !runs in
      let nout = (m + 1) / 2 in
      let out = Array.make nout [||] in
      let prev = !runs in
      let merge_one i =
        out.(i) <-
          (if (2 * i) + 1 < m then merge cmp prev.(2 * i) prev.((2 * i) + 1)
           else prev.(2 * i))
      in
      if nout > 1 then run_parallel ~nchunks:nout merge_one
      else merge_one 0;
      runs := out
    done;
    Array.blit !runs.(0) 0 arr 0 n
  end
