type t = {
  k : int;
  text : string;
  table : (int, int list) Hashtbl.t; (* packed k-mer -> positions, descending *)
}

let k t = t.k
let text_length t = String.length t.text
let distinct_kmers t = Hashtbl.length t.table

let code = function
  | 'A' -> 0
  | 'C' -> 1
  | 'G' -> 2
  | 'T' -> 3
  | _ -> -1

(* Collect k-mers whose start positions fall in [lo, hi) into [table],
   positions per key in descending order (the rolling scan pushes later
   positions on top). The window may read up to [k - 1] letters past
   [hi], which is why parallel segments need no communication. *)
let scan_segment ~k ~mask text table ~lo ~hi =
  let n = String.length text in
  let hash = ref 0 and valid = ref 0 in
  let stop = min (n - 1) (hi + k - 2) in
  for i = lo to stop do
    let c = code text.[i] in
    if c < 0 then begin
      valid := 0;
      hash := 0
    end
    else begin
      hash := ((!hash lsl 2) lor c) land mask;
      incr valid;
      if !valid >= k then begin
        let pos = i - k + 1 in
        if pos >= lo && pos < hi then begin
          let prev = Option.value (Hashtbl.find_opt table !hash) ~default:[] in
          Hashtbl.replace table !hash (pos :: prev)
        end
      end
    end
  done

(* Below this length a single rolling scan beats spawning chunks. *)
let par_threshold = 1 lsl 15

let build ?(k = 12) text =
  if k < 2 || k > 31 then invalid_arg "Kmer_index.build: k must be in [2, 31]";
  let text = String.uppercase_ascii text in
  let n = String.length text in
  let mask = (1 lsl (2 * k)) - 1 in
  let module Par = Genalg_par.Par in
  if n < par_threshold || Par.jobs () <= 1 then begin
    let table = Hashtbl.create (max 64 (n / 4)) in
    scan_segment ~k ~mask text table ~lo:0 ~hi:n;
    { k; text; table }
  end
  else begin
    (* partition the text into per-worker segments (each re-reads at most
       k - 1 letters of its right neighbour), build local tables in
       parallel, then splice the per-key position lists back together in
       segment order so the result is identical to the sequential scan *)
    let nseg = 2 * Par.jobs () in
    let seg = (n + nseg - 1) / nseg in
    let locals =
      Par.parallel_map ~chunk:1
        (fun si ->
          let lo = si * seg in
          let hi = min n (lo + seg) in
          let local = Hashtbl.create (max 64 (seg / 4)) in
          if lo < hi then scan_segment ~k ~mask text local ~lo ~hi;
          local)
        (Array.init nseg Fun.id)
    in
    let table = Hashtbl.create (max 64 (n / 4)) in
    (* ascending segments hold ascending positions: prepending each local
       (descending) list keeps every key's list globally descending *)
    Array.iter
      (fun local ->
        Hashtbl.iter
          (fun key positions ->
            let prev = Option.value (Hashtbl.find_opt table key) ~default:[] in
            Hashtbl.replace table key (positions @ prev))
          local)
      locals;
    { k; text; table }
  end

let verify_at text pattern pos =
  let m = String.length pattern in
  pos >= 0
  && pos + m <= String.length text
  &&
  let rec check j = j >= m || (text.[pos + j] = pattern.[j] && check (j + 1)) in
  check 0

let pack_word pattern k =
  let rec loop i acc =
    if i = k then Some acc
    else
      let c = code pattern.[i] in
      if c < 0 then None else loop (i + 1) ((acc lsl 2) lor c)
  in
  loop 0 0

let find_all t pattern =
  let pattern = String.uppercase_ascii pattern in
  if String.length pattern < t.k then
    invalid_arg "Kmer_index.find_all: pattern shorter than k";
  match pack_word pattern t.k with
  | None ->
      (* ambiguous first word: no index help, fall back to a scan *)
      Search.naive_find_all ~pattern t.text
  | Some word ->
      let candidates = Option.value (Hashtbl.find_opt t.table word) ~default:[] in
      List.fold_left
        (fun acc pos -> if verify_at t.text pattern pos then pos :: acc else acc)
        [] candidates
      (* positions were stored descending, so the fold yields ascending *)

let find t pattern =
  match find_all t pattern with [] -> None | pos :: _ -> Some pos

let contains t pattern = find t pattern <> None
