type t = {
  text : string;
  sa : int array; (* rank -> suffix start *)
}

let length t = String.length t.text
let suffixes t = t.sa

let build text =
  let text = String.uppercase_ascii text in
  let n = String.length text in
  let sa = Array.init n Fun.id in
  let rank = Array.init n (fun i -> Char.code text.[i]) in
  let tmp = Array.make n 0 in
  let k = ref 1 in
  let continue = ref (n > 1) in
  while !continue do
    let kk = !k in
    let key i =
      (rank.(i), if i + kk < n then rank.(i + kk) else -1)
    in
    (* the prefix-doubling sort dominates construction; the pool sorts
       chunks concurrently and merges them in order. Ties (equal keys)
       collapse to equal ranks below, so any correct sort yields the
       same final array. *)
    Genalg_par.Par.parallel_sort
      (fun a b ->
        let c = Int.compare rank.(a) rank.(b) in
        if c <> 0 then c
        else
          Int.compare
            (if a + kk < n then rank.(a + kk) else -1)
            (if b + kk < n then rank.(b + kk) else -1))
      sa;
    (* re-rank *)
    tmp.(sa.(0)) <- 0;
    for r = 1 to n - 1 do
      let prev = sa.(r - 1) and cur = sa.(r) in
      tmp.(cur) <- tmp.(prev) + (if key prev = key cur then 0 else 1)
    done;
    Array.blit tmp 0 rank 0 n;
    if rank.(sa.(n - 1)) = n - 1 then continue := false else k := kk * 2
  done;
  { text; sa }

(* Compare pattern with the suffix starting at [pos]: negative when the
   suffix is smaller, 0 when the pattern is a prefix of the suffix. *)
let compare_at text pattern pos =
  let n = String.length text and m = String.length pattern in
  let rec loop j =
    if j = m then 0
    else if pos + j >= n then 1 (* suffix exhausted: suffix < pattern *)
    else
      let c = Char.compare pattern.[j] text.[pos + j] in
      if c <> 0 then c else loop (j + 1)
  in
  loop 0

let bounds t pattern =
  let n = Array.length t.sa in
  (* lower bound: first rank whose suffix >= pattern (as prefix match) *)
  let rec lower lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if compare_at t.text pattern t.sa.(mid) > 0 then lower (mid + 1) hi
      else lower lo mid
  in
  (* upper bound: first rank whose suffix does not start with pattern and
     is greater *)
  let rec upper lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if compare_at t.text pattern t.sa.(mid) >= 0 then upper (mid + 1) hi
      else upper lo mid
  in
  let lo = lower 0 n in
  let hi = upper lo n in
  (lo, hi)

let find_all t pattern =
  let pattern = String.uppercase_ascii pattern in
  if String.length pattern = 0 then []
  else begin
    let lo, hi = bounds t pattern in
    let positions = ref [] in
    for r = lo to hi - 1 do
      positions := t.sa.(r) :: !positions
    done;
    List.sort Int.compare !positions
  end

let find t pattern =
  match find_all t pattern with [] -> None | pos :: _ -> Some pos

let contains t pattern =
  let pattern = String.uppercase_ascii pattern in
  if String.length pattern = 0 then true
  else begin
    let lo, hi = bounds t pattern in
    hi > lo
  end

let lcp_of text a b =
  let n = String.length text in
  let rec loop k = if a + k < n && b + k < n && text.[a + k] = text.[b + k] then loop (k + 1) else k in
  loop 0

let longest_repeat t =
  let n = Array.length t.sa in
  if n < 2 then None
  else begin
    let best = ref (t.sa.(0), t.sa.(1), 0) in
    for r = 1 to n - 1 do
      let a = t.sa.(r - 1) and b = t.sa.(r) in
      let l = lcp_of t.text a b in
      let _, _, bl = !best in
      if l > bl then best := (min a b, max a b, l)
    done;
    let p1, p2, l = !best in
    if l = 0 then None else Some (p1, p2, l)
  end
