module Obs = Genalg_obs.Obs

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  rejections : int;
}

type tally = {
  mutable t_hits : int;
  mutable t_misses : int;
  mutable t_evictions : int;
  mutable t_invalidations : int;
  mutable t_rejections : int;
}

let fresh_tally () =
  { t_hits = 0; t_misses = 0; t_evictions = 0; t_invalidations = 0; t_rejections = 0 }

let stats_of_tally y =
  {
    hits = y.t_hits;
    misses = y.t_misses;
    evictions = y.t_evictions;
    invalidations = y.t_invalidations;
    rejections = y.t_rejections;
  }

(* Per-name aggregates shared by every instance with that name, so
   [genalg stats] can report e.g. all buffer pools as one row. *)
let registry : (string, tally) Hashtbl.t = Hashtbl.create 8

let registry_tally name =
  match Hashtbl.find_opt registry name with
  | Some y -> y
  | None ->
      let y = fresh_tally () in
      Hashtbl.add registry name y;
      y

let registry_stats () =
  Hashtbl.fold (fun name y acc -> (name, stats_of_tally y) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_registry_stats () =
  Hashtbl.iter
    (fun _ y ->
      y.t_hits <- 0;
      y.t_misses <- 0;
      y.t_evictions <- 0;
      y.t_invalidations <- 0;
      y.t_rejections <- 0)
    registry

type ('k, 'v) node = {
  nkey : 'k;
  mutable nval : 'v;
  mutable weight : int;
  mutable pins : int;
  mutable prev : ('k, 'v) node option; (* toward MRU *)
  mutable next : ('k, 'v) node option; (* toward LRU *)
}

type ('k, 'v) t = {
  name : string;
  max_entries : int;
  max_bytes : int;
  weight_of : 'k -> 'v -> int;
  on_evict : ('k -> 'v -> unit) option;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable mru : ('k, 'v) node option;
  mutable lru : ('k, 'v) node option;
  mutable bytes : int;
  local : tally;
  global : tally;
  c_hits : Obs.counter;
  c_misses : Obs.counter;
  c_evictions : Obs.counter;
  c_invalidations : Obs.counter;
}

let create ~name ?(max_entries = 1024) ?(max_bytes = max_int)
    ?(weight = fun _ _ -> 0) ?on_evict () =
  if max_entries < 1 then invalid_arg "Lru.create: max_entries < 1";
  if max_bytes < 0 then invalid_arg "Lru.create: max_bytes < 0";
  {
    name;
    max_entries;
    max_bytes;
    weight_of = weight;
    on_evict;
    tbl = Hashtbl.create 64;
    mru = None;
    lru = None;
    bytes = 0;
    local = fresh_tally ();
    global = registry_tally name;
    c_hits = Obs.counter (Printf.sprintf "cache.%s.hits" name);
    c_misses = Obs.counter (Printf.sprintf "cache.%s.misses" name);
    c_evictions = Obs.counter (Printf.sprintf "cache.%s.evictions" name);
    c_invalidations = Obs.counter (Printf.sprintf "cache.%s.invalidations" name);
  }

let hit t =
  t.local.t_hits <- t.local.t_hits + 1;
  t.global.t_hits <- t.global.t_hits + 1;
  Obs.add t.c_hits 1

let miss t =
  t.local.t_misses <- t.local.t_misses + 1;
  t.global.t_misses <- t.global.t_misses + 1;
  Obs.add t.c_misses 1

let note_eviction t =
  t.local.t_evictions <- t.local.t_evictions + 1;
  t.global.t_evictions <- t.global.t_evictions + 1;
  Obs.add t.c_evictions 1

let note_invalidation t n =
  if n > 0 then begin
    t.local.t_invalidations <- t.local.t_invalidations + n;
    t.global.t_invalidations <- t.global.t_invalidations + n;
    Obs.add t.c_invalidations n
  end

let note_rejection t =
  t.local.t_rejections <- t.local.t_rejections + 1;
  t.global.t_rejections <- t.global.t_rejections + 1

(* Doubly-linked recency list: [mru] is the head, [lru] the tail. *)

let detach t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_mru t n =
  n.prev <- None;
  n.next <- t.mru;
  (match t.mru with Some h -> h.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let touch t n =
  match t.mru with
  | Some h when h == n -> ()
  | _ ->
      detach t n;
      push_mru t n

let drop t n =
  detach t n;
  Hashtbl.remove t.tbl n.nkey;
  t.bytes <- t.bytes - n.weight

let over_budget t =
  Hashtbl.length t.tbl > t.max_entries || t.bytes > t.max_bytes

(* Evict unpinned entries from the LRU end until the bounds hold (or only
   pinned entries remain, in which case the bounds are transiently
   exceeded — see the .mli). *)
let evict_to_fit t =
  let rec victim = function
    | None -> None
    | Some n when n.pins = 0 -> Some n
    | Some n -> victim n.prev
  in
  let rec go () =
    if over_budget t then
      match victim t.lru with
      | None -> ()
      | Some n ->
          drop t n;
          note_eviction t;
          (match t.on_evict with Some f -> f n.nkey n.nval | None -> ());
          go ()
  in
  go ()

let find_validated t k ~validate =
  match Hashtbl.find_opt t.tbl k with
  | Some n when validate n.nval ->
      touch t n;
      hit t;
      Some n.nval
  | Some n ->
      (* present but stale: a coherence event, not a plain miss *)
      drop t n;
      note_invalidation t 1;
      miss t;
      None
  | None ->
      miss t;
      None

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      touch t n;
      hit t;
      Some n.nval
  | None ->
      miss t;
      None

let peek t k =
  match Hashtbl.find_opt t.tbl k with Some n -> Some n.nval | None -> None

let put t k v =
  let w = t.weight_of k v in
  if w > t.max_bytes then begin
    (* Inadmissible: keeping it would purge everything else for nothing.
       Drop any stale entry under the same key so we never serve it. *)
    (match Hashtbl.find_opt t.tbl k with Some n -> drop t n | None -> ());
    note_rejection t
  end
  else begin
    (match Hashtbl.find_opt t.tbl k with
    | Some n ->
        t.bytes <- t.bytes - n.weight + w;
        n.nval <- v;
        n.weight <- w;
        touch t n
    | None ->
        let n = { nkey = k; nval = v; weight = w; pins = 0; prev = None; next = None } in
        Hashtbl.add t.tbl k n;
        push_mru t n;
        t.bytes <- t.bytes + w);
    evict_to_fit t
  end

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      drop t n;
      true
  | None -> false

let invalidate t k =
  let removed = remove t k in
  if removed then note_invalidation t 1;
  removed

let invalidate_where t pred =
  let victims =
    Hashtbl.fold (fun _ n acc -> if pred n.nkey n.nval then n :: acc else acc) t.tbl []
  in
  List.iter (drop t) victims;
  let n = List.length victims in
  note_invalidation t n;
  n

let pin t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.pins <- n.pins + 1;
      touch t n;
      true
  | None -> false

let unpin t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n -> if n.pins > 0 then n.pins <- n.pins - 1
  | None -> ()

let mem t k = Hashtbl.mem t.tbl k
let length t = Hashtbl.length t.tbl
let weight_total t = t.bytes
let max_entries t = t.max_entries
let max_bytes t = t.max_bytes

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        let next = n.next in
        f n.nkey n.nval;
        go next
  in
  go t.mru

let keys t =
  let acc = ref [] in
  iter (fun k _ -> acc := k :: !acc) t;
  List.rev !acc

let clear t =
  Hashtbl.reset t.tbl;
  t.mru <- None;
  t.lru <- None;
  t.bytes <- 0

let stats t = stats_of_tally t.local
let name t = t.name
