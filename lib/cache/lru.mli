(** A generic bounded LRU cache with pin counts, the shared core behind the
    storage buffer pool, the sqlx statement/plan/result caches, and the
    mediator response cache.

    Bounds: [max_entries] caps the entry count and [max_bytes] caps the sum
    of entry weights (as computed by [weight]). When either bound is
    exceeded the cache evicts from the least-recently-used end, skipping
    pinned entries. Pinned entries are never evicted, so a workload that
    pins more than the capacity can transiently exceed the bounds — the
    bounds are re-established as soon as pins are released and another
    insertion occurs.

    An entry whose own weight exceeds [max_bytes] is never admitted
    (counted under [rejections]); admitting it would immediately purge the
    whole cache for a value that cannot be retained anyway.

    Every cache keeps two sets of statistics:
    - always-on internal tallies ({!stats}, {!registry_stats}) used by the
      [CACHE] bench and [genalg stats], aggregated per cache {i name}
      across instances (all buffer pools share one "bufferpool" row);
    - [Obs] counters [cache.<name>.{hits,misses,evictions,invalidations}],
      gated by [Obs.set_enabled] like every other instrument and listed in
      [docs/OBSERVABILITY.md].

    Keys are compared with structural equality ([Hashtbl.hash] / [(=)]);
    do not use cyclic or functional keys. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** capacity-driven removals (pinned entries exempt) *)
  invalidations : int;
      (** explicit removals via {!invalidate} / {!invalidate_where},
          including TTL expiries counted by callers *)
  rejections : int;  (** values refused because weight > [max_bytes] *)
}

val create :
  name:string ->
  ?max_entries:int ->
  ?max_bytes:int ->
  ?weight:('k -> 'v -> int) ->
  ?on_evict:('k -> 'v -> unit) ->
  unit ->
  ('k, 'v) t
(** [create ~name ()] makes an empty cache. [name] selects the
    [cache.<name>.*] instrument family and the {!registry_stats} row.
    [max_entries] defaults to 1024, [max_bytes] to [max_int], [weight] to
    [fun _ _ -> 0]. [on_evict] is called for each capacity eviction (after
    the entry has been detached) — the buffer pool uses it for dirty-page
    write-back. It is {i not} called by {!remove}, {!invalidate} or
    {!clear}. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency. Counts a hit or miss. *)

val find_validated : ('k, 'v) t -> 'k -> validate:('v -> bool) -> 'v option
(** Like {!find}, but a present entry that fails [validate] is removed and
    counted as one invalidation plus one miss (not a hit) — the lookup
    path for version- or TTL-validated caches. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching recency or statistics. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, making the entry most-recently-used, then evict
    until the bounds hold (pinned entries are skipped). *)

val remove : ('k, 'v) t -> 'k -> bool
(** Detach an entry regardless of pins; pins on a removed key become
    no-ops. Counts nothing — use {!invalidate} when the removal is a
    cache-coherence event. *)

val invalidate : ('k, 'v) t -> 'k -> bool
(** {!remove} counted under [invalidations]. *)

val invalidate_where : ('k, 'v) t -> ('k -> 'v -> bool) -> int
(** Remove every matching entry; returns how many, all counted under
    [invalidations]. *)

val note_invalidation : ('k, 'v) t -> int -> unit
(** Count [n] invalidations that the caller performed by other means
    (e.g. a TTL expiry detected at lookup). *)

val pin : ('k, 'v) t -> 'k -> bool
(** Increment the entry's pin count (false if absent). A pinned entry is
    never evicted. Refreshes recency. *)

val unpin : ('k, 'v) t -> 'k -> unit
(** Decrement the pin count (no-op if absent or already zero). *)

val mem : ('k, 'v) t -> 'k -> bool
val length : ('k, 'v) t -> int
val weight_total : ('k, 'v) t -> int
val max_entries : ('k, 'v) t -> int
val max_bytes : ('k, 'v) t -> int

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Most-recently-used first. Must not mutate the cache. *)

val keys : ('k, 'v) t -> 'k list
(** Most-recently-used first. *)

val clear : ('k, 'v) t -> unit
(** Drop everything (pins included) without counting evictions and
    without calling [on_evict]; callers owning dirty state must flush
    first. *)

val stats : ('k, 'v) t -> stats
(** This instance's tallies (always on, independent of [Obs]). *)

val name : ('k, 'v) t -> string

val registry_stats : unit -> (string * stats) list
(** Aggregated tallies per cache name across all instances ever created,
    sorted by name — the backing for [genalg stats]' cache table. *)

val reset_registry_stats : unit -> unit
(** Zero the per-name aggregates (instance tallies are untouched).
    For tests and benches that need a clean measurement window. *)
