#!/bin/sh
# Local CI: build, full test suite, then a smoke run of the CLI with the
# observability layer switched on.
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== smoke: demo warehouse + stats + EXPLAIN ANALYZE =="
DB=$(mktemp -d)/smoke.db
dune exec bin/genalg.exe -- demo --output "$DB" >/dev/null

# inventory + instrument snapshot for a traced statement
dune exec bin/genalg.exe -- stats "$DB" \
  --sql "SELECT organism, count(*) FROM sequences GROUP BY organism"

# operator tree with live row counts and timings
dune exec bin/genalg.exe -- query "$DB" \
  "EXPLAIN ANALYZE SELECT organism, count(*) AS n FROM sequences WHERE length > 500 GROUP BY organism"

rm -rf "$(dirname "$DB")"

echo "== smoke: cache layers (CACHE bench, warm hit rate must be nonzero) =="
CACHE_OUT=$(dune exec bench/main.exe -- CACHE)
echo "$CACHE_OUT"
echo "$CACHE_OUT" | grep -q "cache-smoke: warm-hit-rate-nonzero=yes" || {
  echo "cache smoke FAILED: warm hit rate is zero" >&2
  exit 1
}

echo "== smoke: parallel engine (PAR bench: hash join >=2x, jobs-identical) =="
PAR_OUT=$(GENALG_PAR_N=2500 dune exec bench/main.exe -- PAR)
echo "$PAR_OUT"
echo "$PAR_OUT" | grep -q "par-smoke: hash-join-2x=yes" || {
  echo "parallel smoke FAILED: hash join is not >=2x faster than nested loop" >&2
  exit 1
}
echo "$PAR_OUT" | grep -q "par-smoke: jobs-results-identical=yes" || {
  echo "parallel smoke FAILED: jobs>1 changed query or alignment results" >&2
  exit 1
}

echo "== smoke: cost-based optimizer (OPT bench: never loses, plans differ) =="
OPT_OUT=$(dune exec bench/main.exe -- OPT)
echo "$OPT_OUT"
echo "$OPT_OUT" | grep -q "opt-smoke: never-loses=yes" || {
  echo "optimizer smoke FAILED: cost-based planner lost to the heuristic beyond noise" >&2
  exit 1
}
echo "$OPT_OUT" | grep -q "opt-smoke: results-identical=yes" || {
  echo "optimizer smoke FAILED: cost-based planner changed a result set" >&2
  exit 1
}
echo "$OPT_OUT" | grep -q "opt-smoke: plans-differ=yes" || {
  echo "optimizer smoke FAILED: statistics never changed a chosen access path" >&2
  exit 1
}

echo "== smoke: vectorized scans (VEC bench: >=2x single-core, results identical) =="
VEC_OUT=$(GENALG_VEC_N=4000 dune exec bench/main.exe -- VEC)
echo "$VEC_OUT"
echo "$VEC_OUT" | grep -q "vec-smoke: single-core-2x=yes" || {
  echo "vectorized smoke FAILED: packed kernels are not >=2x the tuple path" >&2
  exit 1
}
echo "$VEC_OUT" | grep -q "vec-smoke: results-identical=yes" || {
  echo "vectorized smoke FAILED: vectorized scan changed a result set" >&2
  exit 1
}
echo "$VEC_OUT" | grep -q "vec-smoke: jobs-results-identical=yes" || {
  echo "vectorized smoke FAILED: jobs>1 changed vectorized results" >&2
  exit 1
}

echo "== smoke: availability under faults (AVAIL bench + crash matrix) =="
AVAIL_OUT=$(dune exec bench/main.exe -- AVAIL)
echo "$AVAIL_OUT"
echo "$AVAIL_OUT" | grep -q "avail-smoke: zero-faults-when-disabled=yes" || {
  echo "availability smoke FAILED: faults fired with injection disabled" >&2
  exit 1
}
echo "$AVAIL_OUT" | grep -q "avail-smoke: deterministic=yes" || {
  echo "availability smoke FAILED: replay under a fixed seed was not reproducible" >&2
  exit 1
}
echo "$AVAIL_OUT" | grep -q "avail-smoke: warehouse-ge-mediator=yes" || {
  echo "availability smoke FAILED: warehouse availability fell below the mediator's" >&2
  exit 1
}
echo "$AVAIL_OUT" | grep -q "avail-smoke: crash-recovery=ok" || {
  echo "availability smoke FAILED: a crash point left the database torn" >&2
  exit 1
}

echo "== smoke: serve layer (SERVE bench: concurrent sessions + WAL recovery) =="
SERVE_OUT=$(dune exec bench/main.exe -- SERVE)
echo "$SERVE_OUT"
echo "$SERVE_OUT" | grep -q "serve-smoke: sessions=8 zero-failed=yes" || {
  echo "serve smoke FAILED: a query failed under 8 concurrent sessions" >&2
  exit 1
}
echo "$SERVE_OUT" | grep -q "serve-smoke: p99-reported=yes" || {
  echo "serve smoke FAILED: no p99 latency reported" >&2
  exit 1
}
echo "$SERVE_OUT" | grep -q "serve-smoke: wal-recovery=ok" || {
  echo "serve smoke FAILED: WAL replay lost an acknowledged commit" >&2
  exit 1
}
echo "$SERVE_OUT" | grep -q "serve-smoke: wal-crash-matrix=ok" || {
  echo "serve smoke FAILED: a group-commit crash point lost an acked commit" >&2
  exit 1
}

echo "== smoke: sharding (SHARD bench: pruning scaling, identical results, failover) =="
SHARD_OUT=$(dune exec bench/main.exe -- SHARD)
echo "$SHARD_OUT"
echo "$SHARD_OUT" | grep -q "shard-smoke: scan-scaling-1.6x=yes" || {
  echo "shard smoke FAILED: 4-shard pruned scans are not >=1.6x one shard" >&2
  exit 1
}
echo "$SHARD_OUT" | grep -q "shard-smoke: results-identical=yes" || {
  echo "shard smoke FAILED: scatter-gather changed a result or an error" >&2
  exit 1
}
echo "$SHARD_OUT" | grep -q "shard-smoke: failover-40of40=yes" || {
  echo "shard smoke FAILED: a query failed under the crash-looping primary" >&2
  exit 1
}

echo "== smoke: cluster durability (CLUSTER bench: crash matrix + bounded resync) =="
CLUSTER_OUT=$(dune exec bench/main.exe -- CLUSTER)
echo "$CLUSTER_OUT"
echo "$CLUSTER_OUT" | grep -q "cluster-smoke: crash-matrix-40of40=yes" || {
  echo "cluster smoke FAILED: a crash-matrix query diverged from the single-node engine" >&2
  exit 1
}
echo "$CLUSTER_OUT" | grep -q "cluster-smoke: resync-bounded=yes" || {
  echo "cluster smoke FAILED: resync replayed more statements than members missed" >&2
  exit 1
}
echo "$CLUSTER_OUT" | grep -q "cluster-smoke: recovery=ok" || {
  echo "cluster smoke FAILED: a restarted coordinator did not heal back to serving" >&2
  exit 1
}

echo "== docs: index completeness + intra-repo link integrity =="
for f in docs/*.md; do
  b=$(basename "$f")
  [ "$b" = "ARCHITECTURE.md" ] && continue
  grep -q "]($b)" docs/ARCHITECTURE.md || {
    echo "docs check FAILED: docs/$b is not in docs/ARCHITECTURE.md's doc index" >&2
    exit 1
  }
done
for f in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md; do
  dir=$(dirname "$f")
  for target in $(grep -o ']([^)]*\.md[^)]*)' "$f" | sed 's/^](//; s/)$//; s/#.*$//'); do
    case "$target" in
      http://*|https://*) continue ;;
    esac
    [ -f "$dir/$target" ] || {
      echo "docs check FAILED: $f links to missing $target" >&2
      exit 1
    }
  done
done
# heading anchors: every ](file.md#anchor) must slugify to a real heading
for f in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md; do
  dir=$(dirname "$f")
  for link in $(grep -o ']([^)#]*\.md#[^)]*)' "$f" | sed 's/^](//; s/)$//'); do
    target=${link%%#*}
    anchor=${link#*#}
    [ -f "$dir/$target" ] || continue  # missing files reported above
    slugs=$(grep '^#' "$dir/$target" | sed 's/^#*[[:space:]]*//' \
      | tr 'A-Z' 'a-z' | sed 's/[^a-z0-9 -]//g; s/ /-/g')
    echo "$slugs" | grep -qx "$anchor" || {
      echo "docs check FAILED: $f links to $target#$anchor but no heading there slugifies to it" >&2
      exit 1
    }
  done
done
echo "docs check ok"

echo "== ci ok =="
