#!/bin/sh
# Local CI: build, full test suite, then a smoke run of the CLI with the
# observability layer switched on.
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== smoke: demo warehouse + stats + EXPLAIN ANALYZE =="
DB=$(mktemp -d)/smoke.db
dune exec bin/genalg.exe -- demo --output "$DB" >/dev/null

# inventory + instrument snapshot for a traced statement
dune exec bin/genalg.exe -- stats "$DB" \
  --sql "SELECT organism, count(*) FROM sequences GROUP BY organism"

# operator tree with live row counts and timings
dune exec bin/genalg.exe -- query "$DB" \
  "EXPLAIN ANALYZE SELECT organism, count(*) AS n FROM sequences WHERE length > 500 GROUP BY organism"

rm -rf "$(dirname "$DB")"

echo "== smoke: cache layers (CACHE bench, warm hit rate must be nonzero) =="
CACHE_OUT=$(dune exec bench/main.exe -- CACHE)
echo "$CACHE_OUT"
echo "$CACHE_OUT" | grep -q "cache-smoke: warm-hit-rate-nonzero=yes" || {
  echo "cache smoke FAILED: warm hit rate is zero" >&2
  exit 1
}

echo "== ci ok =="
