(* The benchmark harness: regenerates every table and figure of the paper
   (T1, F1-F3) and the quantified experiments derived from its claims
   (E1-E10). See DESIGN.md section 3 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured notes.

   Run with: dune exec bench/main.exe
   (pass experiment ids as arguments to run a subset, e.g.
    dune exec bench/main.exe -- T1 E2) *)

open Bench_util
module Capability = Genalg_capability.Capability
open Genalg_gdt
module Ops = Genalg_core.Ops
module Exec = Genalg_sqlx.Exec
module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Source = Genalg_etl.Source
module Monitor = Genalg_etl.Monitor
module Loader = Genalg_etl.Loader
module Pipeline = Genalg_etl.Pipeline
module Mediator = Genalg_mediator.Mediator
module Obs = Genalg_obs.Obs
module R = Genalg_core.Requirements

let rng () = Genalg_synth.Rng.make 20030105

(* ================================================================== *)
(* T1 — the paper's Table 1: capability matrix                         *)
(* ================================================================== *)

let t1 () =
  heading "T1" "Capability matrix (paper Table 1 + the proposed system, probed live)";
  note "+ full support, o partial, - none; GenAlg+UDB cells are LIVE probes";
  let systems = Capability.all_systems () in
  let header = "req" :: List.map (fun s -> s.Capability.name) systems in
  let rows =
    List.map
      (fun req ->
        R.requirement_label req
        :: List.map
             (fun s -> Capability.support_glyph (s.Capability.assess req).Capability.support)
             systems)
      R.all_requirements
  in
  print_table header rows;
  print_newline ();
  note "requirement key:";
  List.iter
    (fun req -> note "%-4s %s" (R.requirement_label req) (R.requirement_description req))
    R.all_requirements;
  print_newline ();
  note "GenAlg+UDB column details:";
  let us = List.nth systems 6 in
  List.iter
    (fun req ->
      let c = us.Capability.assess req in
      note "%-4s %s %s" (R.requirement_label req)
        (Capability.support_glyph c.Capability.support)
        c.Capability.notes)
    R.all_requirements

(* ================================================================== *)
(* F1 — query-driven mediation vs the warehouse                        *)
(* ================================================================== *)

let f1 () =
  heading "F1" "Mediator (Figure 1) vs Unifying Database: latency vs source count";
  note "100 records/source; query: organism = X AND length >= 900;";
  note "mediator pays per-query network + client integration; warehouse pays ETL once";
  let r = rng () in
  let header =
    [ "sources"; "mediator/query"; "shipped"; "warehouse load (once)"; "warehouse/query";
      "speedup" ]
  in
  let last = ref None in
  let rows =
    List.map
      (fun n ->
        let repos =
          List.init n (fun i ->
              Genalg_synth.Recordgen.repository r ~size:100
                ~prefix:(Printf.sprintf "F%d" i) ())
        in
        let make_sources () =
          List.mapi
            (fun i repo ->
              Source.create
                ~name:(Printf.sprintf "s%d" i)
                Source.Queryable
                (if i mod 2 = 0 then Source.Relational else Source.Hierarchical)
                repo)
            repos
        in
        let organism = "Synthetica primus" in
        let med = Mediator.create ~latency_s:0.02 (make_sources ()) in
        let q =
          { Mediator.organism = Some organism; min_length = Some 900; contains_motif = None }
        in
        let (results_m, timing), compute = time (fun () -> Mediator.run med q) in
        let med_total = timing.Mediator.simulated_network_s +. compute in
        let pl = Result.get_ok (Pipeline.create ~sources:(make_sources ()) ()) in
        let _, load_t = time (fun () -> Result.get_ok (Pipeline.bootstrap pl)) in
        let db = Pipeline.database pl in
        ignore (Exec.query db ~actor:"u" "CREATE INDEX ON sequences (organism)");
        let sql =
          Printf.sprintf
            "SELECT accession FROM sequences WHERE organism = '%s' AND length >= 900"
            organism
        in
        let wh_rows = ref 0 in
        let wh_t =
          measure (fun () ->
              match Exec.query db ~actor:"u" sql with
              | Ok (Exec.Rows rs) -> wh_rows := List.length rs.Exec.rows
              | _ -> ())
        in
        ignore results_m;
        last := Some (timing, db, sql);
        [
          string_of_int n;
          fmt_ms med_total;
          string_of_int timing.Mediator.records_shipped;
          fmt_ms load_t;
          fmt_ms wh_t;
          Printf.sprintf "%.0fx" (med_total /. wh_t);
        ])
      [ 1; 2; 4; 8 ]
  in
  print_table header rows;
  note "shape: mediator latency grows with source count; warehouse query time does not";
  match !last with
  | None -> ()
  | Some (timing, db, sql) ->
      print_newline ();
      note "per-source mediator breakdown at %d sources:"
        timing.Mediator.sources_contacted;
      print_table
        [ "source"; "network (sim)"; "wall"; "shipped"; "bytes" ]
        (List.map
           (fun (st : Mediator.source_timing) ->
             [ st.Mediator.source; fmt_ms st.Mediator.network_s;
               fmt_ms st.Mediator.wall_s; string_of_int st.Mediator.shipped;
               string_of_int st.Mediator.bytes ])
           timing.Mediator.per_source);
      print_newline ();
      note "warehouse operator breakdown (EXPLAIN ANALYZE, same query):";
      (match Exec.query db ~actor:"u" ("EXPLAIN ANALYZE " ^ sql) with
      | Ok (Exec.Rows rs) ->
          List.iter
            (fun row ->
              match row with
              | [| D.Str l |] -> Printf.printf "  %s\n" l
              | _ -> ())
            rs.Exec.rows
      | _ -> ())

(* ================================================================== *)
(* F2 — the change-detection grid of Figure 2                          *)
(* ================================================================== *)

let f2 () =
  heading "F2" "Change detection grid (paper Figure 2), measured per populated cell";
  note "200-record sources; update batches touch 1%%, 10%% and 50%% of records";
  let caps = [ Source.Active, "Active"; Source.Logged, "Logged";
               Source.Queryable, "Queryable"; Source.Non_queryable, "Non-queryable" ]
  in
  let reprs = [ Source.Hierarchical, "Hierarchical"; Source.Flat_file, "Flat file";
                Source.Relational, "Relational" ]
  in
  (* first the technique grid itself, as in the figure *)
  let header = "" :: List.map snd reprs in
  let rows =
    List.map
      (fun (cap, cap_name) ->
        cap_name
        :: List.map
             (fun (repr, _) ->
               match Monitor.technique_for cap repr with
               | Some t -> Monitor.technique_to_string t
               | None -> "N/A")
             reprs)
      caps
  in
  print_table header rows;
  print_newline ();
  note "measured detection latency per cell and update fraction:";
  let r = rng () in
  let header =
    [ "cell"; "technique"; "1% (ms)"; "10% (ms)"; "50% (ms)"; "deltas@10%" ]
  in
  let rows =
    List.concat_map
      (fun (cap, cap_name) ->
        List.filter_map
          (fun (repr, repr_name) ->
            match Monitor.technique_for cap repr with
            | None -> None
            | Some tech ->
                let timings, deltas10 =
                  let run fraction =
                    let entries =
                      Genalg_synth.Recordgen.repository r ~size:200 ~prefix:"F2X" ()
                    in
                    let src = Source.create ~name:"s" cap repr entries in
                    let m = Result.get_ok (Monitor.create src) in
                    ignore (Monitor.poll m);
                    let _, ups =
                      Genalg_synth.Recordgen.update_stream r entries ~fraction ()
                    in
                    Source.apply src
                      (List.map
                         (function
                           | Genalg_synth.Recordgen.Insert e -> Source.Insert e
                           | Genalg_synth.Recordgen.Delete a -> Source.Delete a
                           | Genalg_synth.Recordgen.Modify e -> Source.Modify e)
                         ups);
                    let deltas, dt = time (fun () -> Monitor.poll m) in
                    (dt, List.length deltas)
                  in
                  let t1, _ = run 0.01 in
                  let t10, d10 = run 0.10 in
                  let t50, _ = run 0.50 in
                  ((t1, t10, t50), d10)
                in
                let t1, t10, t50 = timings in
                Some
                  [
                    Printf.sprintf "%s x %s" cap_name repr_name;
                    Monitor.technique_to_string tech;
                    Printf.sprintf "%.2f" (ms t1);
                    Printf.sprintf "%.2f" (ms t10);
                    Printf.sprintf "%.2f" (ms t50);
                    string_of_int deltas10;
                  ])
          reprs)
      caps
  in
  print_table header rows;
  note "shape: triggers/logs are O(changes); snapshot and dump diffs pay O(source size)"

(* ================================================================== *)
(* F3 — the integrated architecture of Figure 3, end to end            *)
(* ================================================================== *)

let f3 () =
  heading "F3" "End-to-end pipeline (paper Figure 3): sources -> ETL -> warehouse -> query";
  Obs.reset ();
  Obs.set_enabled true;
  let r = rng () in
  let repo_a, repo_b, pairs =
    Genalg_synth.Recordgen.overlapping_repositories r ~size:100 ~overlap:0.4
      ~noise_fraction:0.45 ()
  in
  let repo_c = Genalg_synth.Recordgen.repository r ~size:50 ~prefix:"FC3" () in
  let src_a = Source.create ~name:"synthbank" Source.Logged Source.Flat_file repo_a in
  let src_b = Source.create ~name:"relbank" Source.Queryable Source.Relational repo_b in
  let src_c = Source.create ~name:"acebank" Source.Non_queryable Source.Hierarchical repo_c in
  let pl, create_t =
    time (fun () -> Result.get_ok (Pipeline.create ~sources:[ src_a; src_b; src_c ] ()))
  in
  let stats, boot_t = time (fun () -> Result.get_ok (Pipeline.bootstrap pl)) in
  let db = Pipeline.database pl in
  let _, q1 =
    time (fun () ->
        ignore (Exec.query db ~actor:"u" "SELECT count(*) FROM sequences"))
  in
  let _, q2 =
    time (fun () ->
        ignore
          (Genalg_biolang.Biolang.run db ~actor:"u"
             "count sequences where gc content above 0.5"))
  in
  let _, ups = Genalg_synth.Recordgen.update_stream r repo_a ~fraction:0.1 () in
  Source.apply src_a
    (List.map
       (function
         | Genalg_synth.Recordgen.Insert e -> Source.Insert e
         | Genalg_synth.Recordgen.Delete a -> Source.Delete a
         | Genalg_synth.Recordgen.Modify e -> Source.Modify e)
       ups);
  let (rstats, ndeltas), refresh_t = time (fun () -> Result.get_ok (Pipeline.refresh pl)) in
  print_table
    [ "stage"; "time"; "outcome" ]
    [
      [ "pipeline setup"; fmt_ms create_t; "3 monitors attached (3 Figure-2 cells)" ];
      [ "bootstrap (extract+reconcile+load)"; fmt_ms boot_t;
        Printf.sprintf
          "250 raw -> %d merged records, %d genes, %d proteins, %d conflicts (%d true dups)"
          stats.Loader.entries stats.Loader.genes stats.Loader.proteins
          stats.Loader.conflicts (List.length pairs) ];
      [ "SQL query"; fmt_ms q1; "count over warehouse" ];
      [ "biolang query"; fmt_ms q2; "compiled to SQL, same engine" ];
      [ "manual refresh"; fmt_ms refresh_t;
        Printf.sprintf "%d deltas detected and applied incrementally (%d rows rewritten)"
          ndeltas rstats.Loader.entries ];
    ];
  print_newline ();
  note "per-stage instrument snapshot (etl.* spans and counters over the run):";
  print_endline (Obs.render_table ~prefix:"etl." ());
  Obs.set_enabled false

(* ================================================================== *)
(* E1 — central-dogma operator throughput                              *)
(* ================================================================== *)

let e1 () =
  heading "E1" "Central dogma: translate(splice(transcribe(g))) throughput vs gene size";
  let r = rng () in
  let header =
    [ "gene (bp)"; "transcribe"; "splice"; "translate"; "decode (composed)" ]
  in
  let rows =
    List.map
      (fun exon_length ->
        let g = Genalg_synth.Genegen.gene r ~exon_count:5 ~exon_length ~id:"e1" () in
        let bp = Gene.length g in
        let primary = Ops.transcribe g in
        let mrna = Ops.splice primary in
        let t_tr = measure (fun () -> ignore (Ops.transcribe g)) in
        let t_sp = measure (fun () -> ignore (Ops.splice primary)) in
        let t_tl = measure (fun () -> ignore (Ops.translate mrna)) in
        let t_dec = measure (fun () -> ignore (Ops.decode g)) in
        [
          string_of_int bp;
          fmt_rate ~unit:"b" bp t_tr;
          fmt_rate ~unit:"b" bp t_sp;
          fmt_rate ~unit:"b" (Gene.exonic_length g) t_tl;
          fmt_rate ~unit:"b" bp t_dec;
        ])
      [ 200; 2_000; 20_000; 200_000 ]
  in
  print_table header rows;
  note "shape: every operator streams linearly; composition adds no asymptotic cost"

(* ================================================================== *)
(* E2 — genomic index structures (paper 6.5)                           *)
(* ================================================================== *)

let e2 () =
  heading "E2" "Motif search: scan baselines vs genomic index structures (paper 6.5)";
  let r = rng () in
  let text_len = 2_000_000 in
  let text = Genalg_synth.Seqgen.dna_string r text_len in
  note "subject: %d bp synthetic genome; pattern: planted 16-mer" text_len;
  let pattern = String.sub text (text_len / 2) 16 in
  let naive_t = measure ~runs:3 (fun () -> ignore (Genalg_seqindex.Search.naive_find_all ~pattern text)) in
  let horspool_t =
    measure ~runs:3 (fun () -> ignore (Genalg_seqindex.Search.horspool_find_all ~pattern text))
  in
  let kmer_idx, kmer_build = time (fun () -> Genalg_seqindex.Kmer_index.build ~k:12 text) in
  let kmer_t = measure (fun () -> ignore (Genalg_seqindex.Kmer_index.find_all kmer_idx pattern)) in
  (* suffix array construction is O(n log^2 n); use a quarter of the text *)
  let sa_text = String.sub text 0 (text_len / 4) in
  let sa, sa_build = time (fun () -> Genalg_seqindex.Suffix_array.build sa_text) in
  let sa_pattern = String.sub sa_text (String.length sa_text / 2) 16 in
  let sa_t = measure (fun () -> ignore (Genalg_seqindex.Suffix_array.find_all sa sa_pattern)) in
  print_table
    [ "method"; "text (bp)"; "build"; "query"; "speedup vs naive" ]
    [
      [ "naive scan"; string_of_int text_len; "-"; fmt_ms naive_t; "1x" ];
      [ "Boyer-Moore-Horspool"; string_of_int text_len; "-"; fmt_ms horspool_t;
        Printf.sprintf "%.1fx" (naive_t /. horspool_t) ];
      [ "k-mer index (k=12)"; string_of_int text_len; fmt_ms kmer_build; fmt_ms kmer_t;
        Printf.sprintf "%.0fx" (naive_t /. kmer_t) ];
      [ "suffix array"; string_of_int (text_len / 4); fmt_ms sa_build; fmt_ms sa_t;
        Printf.sprintf "%.0fx" (naive_t /. 4. /. sa_t) ];
    ];
  note "shape: indexes pay a one-time build for orders-of-magnitude query speedups"

(* ================================================================== *)
(* E3 — the genomic-predicate optimizer (paper 6.5)                    *)
(* ================================================================== *)

let e3 () =
  heading "E3" "Optimizer: selectivity-aware ordering of genomic predicates (paper 6.5)";
  let r = rng () in
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  ignore
    (Exec.query db ~actor:Db.loader_actor
       "CREATE TABLE frags (id int, organism string, seq dna)");
  let n_rows = 1500 in
  let organisms = [| "Synthetica primus"; "Synthetica secundus"; "Testcasia minor";
                     "Exemplaria vulgaris"; "Modelorganism demo" |] in
  let probe = Genalg_synth.Seqgen.dna_string r 120 in
  for i = 1 to n_rows do
    let seq = Genalg_synth.Seqgen.dna_string r 300 in
    let organism = organisms.(i mod Array.length organisms) in
    ignore
      (Exec.query db ~actor:Db.loader_actor
         (Printf.sprintf "INSERT INTO frags VALUES (%d, '%s', dna('%s'))" i organism seq))
  done;
  (* WHERE written worst-first: expensive resembles, then contains, then
     the cheap selective equality *)
  let sql =
    Printf.sprintf
      "SELECT id FROM frags WHERE resembles(seq, dna('%s')) >= 0.9 AND contains(seq, 'ATTGCCATAGGA') AND organism = 'Synthetica primus'"
      probe
  in
  let run optimize = measure ~runs:3 (fun () -> ignore (Exec.query ~optimize db ~actor:"u" sql)) in
  let naive_t = run false in
  let opt_t = run true in
  (* with an index on organism the equality becomes an access path *)
  ignore (Exec.query db ~actor:Db.loader_actor "CREATE INDEX ON frags (organism)");
  let indexed_t = run true in
  print_table
    [ "plan"; "predicate order"; "time"; "speedup" ]
    [
      [ "naive (as written)"; "resembles, contains, organism="; fmt_ms naive_t; "1x" ];
      [ "selectivity-ordered"; "organism=, contains, resembles"; fmt_ms opt_t;
        Printf.sprintf "%.0fx" (naive_t /. opt_t) ];
      [ "+ B-tree access path"; "index(organism), contains, resembles"; fmt_ms indexed_t;
        Printf.sprintf "%.0fx" (naive_t /. indexed_t) ];
    ];
  note "estimated ranks: resembles %.0f, contains %.2f, equality %.2f (lower runs first)"
    (Genalg_sqlx.Plan.rank
       (Result.get_ok (Genalg_sqlx.Parser.parse_expr "resembles(seq, dna('AC')) >= 0.9")))
    (Genalg_sqlx.Plan.rank
       (Result.get_ok (Genalg_sqlx.Parser.parse_expr "contains(seq, 'ATTGCCATAGGA')")))
    (Genalg_sqlx.Plan.rank
       (Result.get_ok (Genalg_sqlx.Parser.parse_expr "organism = 'x'")))

(* ================================================================== *)
(* E4 — compact storage areas (paper 4.4)                              *)
(* ================================================================== *)

let e4 () =
  heading "E4" "Compact storage vs pointer structures (paper 4.4)";
  let r = rng () in
  let n = 1_000_000 in
  let letters = Genalg_synth.Seqgen.dna_string r n in
  let packed2 = Sequence.dna letters in
  let packed4 = Sequence.dna (letters ^ "N") in (* one IUPAC code forces 4-bit *)
  let boxed = List.init n (String.get letters) in
  let words v = Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8) in
  let count_packed seq () = ignore (Sequence.gc_count seq) in
  let count_string () =
    let c = ref 0 in
    String.iter (function 'G' | 'C' -> incr c | _ -> ()) letters;
    ignore !c
  in
  let count_list () =
    ignore (List.length (List.filter (function 'G' | 'C' -> true | _ -> false) boxed))
  in
  let serialize_packed seq () = ignore (Sequence.to_bytes seq) in
  let t2 = measure (count_packed packed2) in
  let t4 = measure (count_packed packed4) in
  let ts = measure count_string in
  let tl = measure count_list in
  print_table
    [ "representation"; "bytes/base"; "GC scan"; "serialize" ]
    [
      [ "2-bit packed (this library)"; Printf.sprintf "%.2f" (float_of_int (words packed2) /. float_of_int n);
        fmt_ms t2; fmt_ms (measure (serialize_packed packed2)) ];
      [ "4-bit packed (IUPAC)"; Printf.sprintf "%.2f" (float_of_int (words packed4) /. float_of_int n);
        fmt_ms t4; fmt_ms (measure (serialize_packed packed4)) ];
      [ "byte string"; Printf.sprintf "%.2f" (float_of_int (words letters) /. float_of_int n);
        fmt_ms ts; "(copy)" ];
      [ "boxed char list (pointer structure)";
        Printf.sprintf "%.2f" (float_of_int (words boxed) /. float_of_int n); fmt_ms tl;
        "(traversal + copy)" ];
    ];
  note "shape: packed areas are 8-100x smaller than pointer structures and serialize as flat buffers"

(* ================================================================== *)
(* E5 — resembles: exact alignment vs BLAST-like heuristic             *)
(* ================================================================== *)

let e5 () =
  heading "E5" "resembles: Smith-Waterman scan vs seed-and-extend heuristic";
  let r = rng () in
  let db_size = 400 and seq_len = 260 in
  let decoys =
    List.init db_size (fun i ->
        (Printf.sprintf "d%03d" i, Genalg_synth.Seqgen.dna_string r seq_len))
  in
  let query_src = Genalg_synth.Seqgen.dna r 250 in
  let n_homologs = 20 in
  let homolog_entries =
    List.init n_homologs (fun i ->
        let h = Genalg_synth.Seqgen.homolog r ~identity:0.85 query_src in
        (Printf.sprintf "h%03d" i, Sequence.to_string h))
  in
  let database = decoys @ homolog_entries in
  let query = Sequence.to_string query_src in
  note "database: %d decoys + %d homologs (85%% identity) of a %d bp query"
    db_size n_homologs 250;
  (* exact: local alignment against every subject *)
  let matrix = Genalg_align.Scoring.dna_default in
  let sw_scores = ref [] in
  let sw_t =
    measure ~runs:3 (fun () ->
        sw_scores :=
          List.map
            (fun (id, subject) ->
              ( id,
                Genalg_align.Pairwise.score_only ~mode:Genalg_align.Pairwise.Local
                  ~matrix ~query ~subject () ))
            database)
  in
  let sw_top =
    List.sort (fun (_, a) (_, b) -> Int.compare b a) !sw_scores
    |> List.filteri (fun i _ -> i < n_homologs)
    |> List.map fst
  in
  let sw_recall =
    List.length (List.filter (fun id -> id.[0] = 'h') sw_top)
  in
  (* heuristic *)
  let blast_db, build_t = time (fun () -> Genalg_align.Blast.make_db ~k:11 database) in
  let hits = ref [] in
  let blast_t =
    measure (fun () -> hits := Genalg_align.Blast.search ~min_score:24 blast_db ~query)
  in
  let blast_top =
    List.filteri (fun i _ -> i < n_homologs) !hits
    |> List.map (fun h -> h.Genalg_align.Blast.subject_id)
  in
  let blast_recall = List.length (List.filter (fun id -> id.[0] = 'h') blast_top) in
  (* banded global verification: candidates assumed near-diagonal *)
  let banded_scores = ref [] in
  let banded_t =
    measure ~runs:3 (fun () ->
        banded_scores :=
          List.filter_map
            (fun (id, subject) ->
              let band = 25 + abs (String.length query - String.length subject) in
              match
                Genalg_align.Pairwise.banded_score ~band ~matrix ~query ~subject ()
              with
              | score -> Some (id, score)
              | exception Invalid_argument _ -> None)
            database)
  in
  let banded_top =
    List.sort (fun (_, a) (_, b) -> Int.compare b a) !banded_scores
    |> List.filteri (fun i _ -> i < n_homologs)
    |> List.map fst
  in
  let banded_recall = List.length (List.filter (fun id -> id.[0] = 'h') banded_top) in
  print_table
    [ "method"; "build"; "search"; "recall@20"; "speedup" ]
    [
      [ "Smith-Waterman scan (exact)"; "-"; fmt_ms sw_t;
        Printf.sprintf "%d/%d" sw_recall n_homologs; "1x" ];
      [ "banded global scan (band ~25)"; "-"; fmt_ms banded_t;
        Printf.sprintf "%d/%d" banded_recall n_homologs;
        Printf.sprintf "%.0fx" (sw_t /. banded_t) ];
      [ "BLAST-like seed-and-extend"; fmt_ms build_t; fmt_ms blast_t;
        Printf.sprintf "%d/%d" blast_recall n_homologs;
        Printf.sprintf "%.0fx" (sw_t /. blast_t) ];
    ];
  note "shape: the heuristic trades a little sensitivity for orders of magnitude in speed"

(* ================================================================== *)
(* E6 — view maintenance: incremental vs full reload (paper 5.2)       *)
(* ================================================================== *)

let e6 () =
  heading "E6" "Warehouse maintenance: self-maintainable incremental load vs full reload";
  let r = rng () in
  let base = 600 in
  let entries = Genalg_synth.Recordgen.repository r ~size:base ~prefix:"E6X" () in
  let fresh_db () =
    let db = Db.create () in
    ignore (Loader.init db Genalg_core.Builtin.default);
    ignore
      (Loader.load_merged db
         (Genalg_etl.Integrator.reconcile (List.map (fun e -> ("src", e)) entries)));
    db
  in
  let db = fresh_db () in
  note "warehouse: %d records loaded" base;
  let header = [ "update fraction"; "deltas"; "incremental"; "full reload"; "speedup" ] in
  let rows =
    List.map
      (fun fraction ->
        let next, ups = Genalg_synth.Recordgen.update_stream r entries ~fraction () in
        let deltas =
          List.mapi
            (fun i u ->
              match u with
              | Genalg_synth.Recordgen.Insert e ->
                  Genalg_etl.Delta.insertion ~id:i ~timestamp:(float_of_int i) e
              | Genalg_synth.Recordgen.Delete a ->
                  let victim =
                    List.find
                      (fun (e : Genalg_formats.Entry.t) ->
                        e.Genalg_formats.Entry.accession = a)
                      entries
                  in
                  Genalg_etl.Delta.deletion ~id:i ~timestamp:(float_of_int i) victim
              | Genalg_synth.Recordgen.Modify e ->
                  Genalg_etl.Delta.modification ~id:i ~timestamp:(float_of_int i)
                    ~before:e ~after:e)
            ups
        in
        let _, inc_t = time (fun () -> Result.get_ok (Loader.incremental db ~source:"src" deltas)) in
        let _, full_t =
          time (fun () ->
              let db2 = Db.create () in
              ignore (Loader.init db2 Genalg_core.Builtin.default);
              ignore
                (Loader.load_merged db2
                   (Genalg_etl.Integrator.reconcile (List.map (fun e -> ("src", e)) next))))
        in
        [
          Printf.sprintf "%.1f%%" (fraction *. 100.);
          string_of_int (List.length deltas);
          fmt_ms inc_t;
          fmt_ms full_t;
          Printf.sprintf "%.0fx" (full_t /. inc_t);
        ])
      [ 0.005; 0.02; 0.10 ]
  in
  print_table header rows;
  note "shape: incremental cost tracks the delta count, full reload pays the whole warehouse"

(* ================================================================== *)
(* E7 — reconciliation of noisy, conflicting sources (B10/C8/C9)       *)
(* ================================================================== *)

let e7 () =
  heading "E7" "Reconciliation quality under noise (paper B10: 30-60% erroneous copies)";
  let r = rng () in
  let header =
    [ "noise fraction"; "error rate"; "precision"; "recall"; "conflicts kept"; "time" ]
  in
  let rows =
    List.map
      (fun (noise_fraction, error_rate) ->
        let repo_a, repo_b, truth =
          Genalg_synth.Recordgen.overlapping_repositories r ~size:150 ~overlap:0.5
            ~noise_fraction ~error_rate ()
        in
        let sourced =
          List.map (fun e -> ("A", e)) repo_a @ List.map (fun e -> ("B", e)) repo_b
        in
        let found = ref [] in
        let dt =
          measure ~runs:3 (fun () ->
              found := Genalg_etl.Integrator.find_duplicates ~threshold:0.6 sourced)
        in
        let found_pairs =
          List.map
            (fun ((_, (a : Genalg_formats.Entry.t)), (_, (b : Genalg_formats.Entry.t)), _) ->
              (a.Genalg_formats.Entry.accession, b.Genalg_formats.Entry.accession))
            !found
        in
        let hits =
          List.length
            (List.filter
               (fun (x, y) -> List.mem (x, y) found_pairs || List.mem (y, x) found_pairs)
               truth)
        in
        let precision =
          if found_pairs = [] then 1.
          else float_of_int hits /. float_of_int (List.length found_pairs)
        in
        let recall = float_of_int hits /. float_of_int (List.length truth) in
        let merged = Genalg_etl.Integrator.reconcile ~threshold:0.6 sourced in
        let conflicts =
          List.length
            (List.filter (fun m -> not m.Genalg_etl.Integrator.consistent) merged)
        in
        [
          Printf.sprintf "%.0f%%" (noise_fraction *. 100.);
          Printf.sprintf "%.0f%%" (error_rate *. 100.);
          Printf.sprintf "%.3f" precision;
          Printf.sprintf "%.3f" recall;
          string_of_int conflicts;
          fmt_ms dt;
        ])
      [ (0.30, 0.02); (0.45, 0.02); (0.60, 0.02); (0.45, 0.05); (0.45, 0.10) ]
  in
  print_table header rows;
  note "shape: k-mer blocking keeps precision ~1.0; recall degrades only at high error rates,";
  note "and every surviving disagreement is preserved as ranked alternatives (C9)"

(* ================================================================== *)
(* E8 — UDT operators inside SQL (paper 6.3)                           *)
(* ================================================================== *)

let e8 () =
  heading "E8" "SQL with opaque UDTs: contains() in WHERE, genomic & B-tree indexes";
  let r = rng () in
  let header =
    [ "rows"; "contains() scan"; "contains() genomic idx"; "idx speedup";
      "point (scan)"; "point (B-tree)"; "B-tree speedup" ]
  in
  let rows =
    List.map
      (fun n ->
        let db = Db.create () in
        Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
        ignore
          (Exec.query db ~actor:Db.loader_actor
             "CREATE TABLE frags (id int, accession string, seq dna)");
        for i = 1 to n do
          let s = Genalg_synth.Seqgen.dna_string r 300 in
          (* plant the paper's motif in 1% of rows *)
          let s = if i mod 100 = 0 then "ATTGCCATA" ^ s else s in
          ignore
            (Exec.query db ~actor:Db.loader_actor
               (Printf.sprintf "INSERT INTO frags VALUES (%d, 'ACC%06d', dna('%s'))" i i s))
        done;
        let contains_sql = "SELECT id FROM frags WHERE contains(seq, 'ATTGCCATA')" in
        let contains_t =
          measure ~runs:3 (fun () -> ignore (Exec.query db ~actor:"u" contains_sql))
        in
        ignore (Exec.query db ~actor:Db.loader_actor "CREATE GENOMIC INDEX ON frags (seq)");
        let genomic_t =
          measure (fun () -> ignore (Exec.query db ~actor:"u" contains_sql))
        in
        let target = Printf.sprintf "ACC%06d" (n / 2) in
        let point_sql =
          Printf.sprintf "SELECT id FROM frags WHERE accession = '%s'" target
        in
        let scan_t = measure (fun () -> ignore (Exec.query db ~actor:"u" point_sql)) in
        ignore (Exec.query db ~actor:Db.loader_actor "CREATE INDEX ON frags (accession)");
        let index_t = measure (fun () -> ignore (Exec.query db ~actor:"u" point_sql)) in
        [
          string_of_int n;
          fmt_ms contains_t;
          fmt_ms genomic_t;
          Printf.sprintf "%.0fx" (contains_t /. genomic_t);
          fmt_ms scan_t;
          fmt_ms index_t;
          Printf.sprintf "%.0fx" (scan_t /. index_t);
        ])
      [ 1_000; 4_000; 16_000 ]
  in
  print_table header rows;
  note "the paper's query: SELECT id FROM DNAFragments WHERE contains(fragment, 'ATTGCCATA');";
  note "the genomic index is the 'user-defined index structure' integration of section 6.5"

(* ================================================================== *)
(* E9 — biological query language overhead (paper 6.4)                 *)
(* ================================================================== *)

let e9 () =
  heading "E9" "Biological query language: compilation overhead vs hand-written SQL";
  let r = rng () in
  let entries = Genalg_synth.Recordgen.repository r ~size:800 ~prefix:"E9X" () in
  let db = Db.create () in
  ignore (Loader.init db Genalg_core.Builtin.default);
  ignore
    (Loader.load_merged db
       (Genalg_etl.Integrator.reconcile (List.map (fun e -> ("src", e)) entries)));
  let bio = "count sequences where gc content above 0.45 and length at least 900" in
  let sql = "SELECT count(*) AS count FROM sequences WHERE gc > 0.45 AND length >= 900" in
  let compile_t =
    measure ~runs:7 (fun () ->
        for _ = 1 to 1000 do
          ignore (Genalg_biolang.Biolang.compile bio)
        done)
  in
  let bio_t = measure (fun () -> ignore (Genalg_biolang.Biolang.run db ~actor:"u" bio)) in
  let sql_t = measure (fun () -> ignore (Exec.query db ~actor:"u" sql)) in
  print_table
    [ "path"; "time" ]
    [
      [ "compile biolang -> SQL (per query)"; fmt_ms (compile_t /. 1000.) ];
      [ "biolang end-to-end"; fmt_ms bio_t ];
      [ "hand-written SQL end-to-end"; fmt_ms sql_t ];
      [ "overhead"; Printf.sprintf "%.1f%%" (100. *. (bio_t -. sql_t) /. sql_t) ];
    ];
  note "generated SQL: %s"
    (Result.get_ok (Genalg_biolang.Biolang.compile_to_sql bio))

(* ================================================================== *)
(* E10 — GenAlgXML as the I/O facility (paper 6.4)                     *)
(* ================================================================== *)

let e10 () =
  heading "E10" "GenAlgXML vs the binary codec: size and round-trip cost";
  let r = rng () in
  let genes = List.init 100 (fun i -> Genalg_synth.Genegen.gene r ~id:(Printf.sprintf "x%d" i) ()) in
  let xml_strings = List.map (fun g -> Genalg_xml.Genalgxml.to_string (Genalg_core.Value.VGene g)) genes in
  let bin_strings = List.map Genalg_adapter.Codec.encode_gene genes in
  let xml_bytes = List.fold_left (fun a s -> a + String.length s) 0 xml_strings in
  let bin_bytes = List.fold_left (fun a b -> a + Bytes.length b) 0 bin_strings in
  let xml_write =
    measure (fun () ->
        List.iter (fun g -> ignore (Genalg_xml.Genalgxml.to_string (Genalg_core.Value.VGene g))) genes)
  in
  let xml_read =
    measure (fun () ->
        List.iter (fun s -> ignore (Genalg_xml.Genalgxml.of_string s)) xml_strings)
  in
  let bin_write =
    measure (fun () -> List.iter (fun g -> ignore (Genalg_adapter.Codec.encode_gene g)) genes)
  in
  let bin_read =
    measure (fun () -> List.iter (fun b -> ignore (Genalg_adapter.Codec.decode_gene b)) bin_strings)
  in
  print_table
    [ "format"; "bytes (100 genes)"; "write"; "read" ]
    [
      [ "GenAlgXML (interchange)"; string_of_int xml_bytes; fmt_ms xml_write; fmt_ms xml_read ];
      [ "binary codec (storage)"; string_of_int bin_bytes; fmt_ms bin_write; fmt_ms bin_read ];
    ];
  note "shape: XML costs ~%.1fx the bytes — the price of a standardized interchange format"
    (float_of_int xml_bytes /. float_of_int bin_bytes)

(* ================================================================== *)
(* Ablations of the design choices DESIGN.md calls out                 *)
(* ================================================================== *)

(* A1: does the integrator's (organism, length-band) blocking matter?    *)
let a1 () =
  heading "A1" "Ablation: integrator blocking vs all-pairs scoring";
  let r = rng () in
  let header = [ "entries"; "blocked pairs scored"; "blocked"; "all-pairs"; "speedup"; "same duplicates" ] in
  let rows =
    List.map
      (fun size ->
        let repo_a, repo_b, _ =
          Genalg_synth.Recordgen.overlapping_repositories r ~size ~overlap:0.5
            ~noise_fraction:0.45 ()
        in
        let sourced =
          List.map (fun e -> ("A", e)) repo_a @ List.map (fun e -> ("B", e)) repo_b
        in
        let blocked = ref [] in
        let blocked_t =
          measure ~runs:3 (fun () ->
              blocked := Genalg_etl.Integrator.find_duplicates ~threshold:0.6 sourced)
        in
        (* all-pairs: score every cross-source pair with the public scorer *)
        let arr = Array.of_list sourced in
        let all = ref [] in
        let all_t =
          measure ~runs:3 (fun () ->
              let acc = ref [] in
              Array.iteri
                (fun i (src_i, e_i) ->
                  Array.iteri
                    (fun j (src_j, e_j) ->
                      if j > i && src_i <> src_j then begin
                        let s = Genalg_etl.Integrator.pair_score e_i e_j in
                        if s >= 0.6 then acc := (e_i, e_j) :: !acc
                      end)
                    arr)
                arr;
              all := !acc)
        in
        let key (a : Genalg_formats.Entry.t) (b : Genalg_formats.Entry.t) =
          (a.Genalg_formats.Entry.accession, b.Genalg_formats.Entry.accession)
        in
        let blocked_keys =
          List.map (fun ((_, a), (_, b), _) -> key a b) !blocked
          |> List.sort compare
        in
        let all_keys = List.map (fun (a, b) -> key a b) !all |> List.sort compare in
        [
          string_of_int (2 * size);
          string_of_int (List.length !blocked);
          fmt_ms blocked_t;
          fmt_ms all_t;
          Printf.sprintf "%.1fx" (all_t /. blocked_t);
          string_of_bool (blocked_keys = all_keys);
        ])
      [ 100; 200 ]
  in
  print_table header rows;
  note "blocking loses no duplicates on this workload (same organisms/lengths cluster)"

(* A2: word size of the genomic k-mer index                              *)
let a2 () =
  heading "A2" "Ablation: k-mer index word size (build vs query vs candidate precision)";
  let r = rng () in
  let text = Genalg_synth.Seqgen.dna_string r 1_000_000 in
  let pattern = String.sub text 500_000 16 in
  let naive_hits = List.length (Genalg_seqindex.Search.naive_find_all ~pattern text) in
  let header = [ "k"; "build"; "distinct k-mers"; "query"; "hits" ] in
  let rows =
    List.map
      (fun k ->
        let idx, build_t = time (fun () -> Genalg_seqindex.Kmer_index.build ~k text) in
        let hits = ref [] in
        let query_t =
          measure (fun () -> hits := Genalg_seqindex.Kmer_index.find_all idx pattern)
        in
        [
          string_of_int k;
          fmt_ms build_t;
          string_of_int (Genalg_seqindex.Kmer_index.distinct_kmers idx);
          fmt_ms query_t;
          Printf.sprintf "%d (scan: %d)" (List.length !hits) naive_hits;
        ])
      [ 6; 8; 12; 16 ]
  in
  print_table header rows;
  note "small k: fewer distinct words, more false candidates to verify; large k: bigger";
  note "index, fewer candidates — k=12 balances both for genome-scale DNA"

(* A3: affine vs linear gap penalties in pairwise alignment              *)
let a3 () =
  heading "A3" "Ablation: affine (Gotoh) vs linear gap penalties";
  let r = rng () in
  let base = Genalg_synth.Seqgen.dna r 300 in
  (* subject with two long (15 bp) deletions plus light point mutations:
     biologically, indels arrive as events spanning several bases, which
     is exactly what affine gap costs model *)
  let with_indels =
    let s = Sequence.to_string (Genalg_synth.Seqgen.mutate r ~rate:0.03 base) in
    String.sub s 0 60 ^ String.sub s 75 120 ^ String.sub s 210 90
  in
  let query = Sequence.to_string base in
  let matrix = Genalg_align.Scoring.dna ~match_:1 ~mismatch:(-1) in
  let run gap =
    let aln = ref None in
    let t =
      measure (fun () ->
          aln :=
            Some
              (Genalg_align.Pairwise.align ~mode:Genalg_align.Pairwise.Global ~matrix
                 ~gap ~query ~subject:with_indels ()))
    in
    (Option.get !aln, t)
  in
  let affine, affine_t = run { Genalg_align.Scoring.open_penalty = 4; extend_penalty = 1 } in
  let linear, linear_t = run (Genalg_align.Scoring.linear_gap 2) in
  let gap_runs s =
    let runs = ref 0 and in_gap = ref false in
    String.iter
      (fun c ->
        if c = '-' then begin
          if not !in_gap then incr runs;
          in_gap := true
        end
        else in_gap := false)
      s;
    !runs
  in
  let describe (aln : Genalg_align.Pairwise.t) =
    ( aln.Genalg_align.Pairwise.score,
      Genalg_align.Pairwise.identity aln,
      gap_runs aln.Genalg_align.Pairwise.aligned_query
      + gap_runs aln.Genalg_align.Pairwise.aligned_subject )
  in
  let a_score, a_id, a_gaps = describe affine in
  let l_score, l_id, l_gaps = describe linear in
  print_table
    [ "gap model"; "score"; "identity"; "gap openings"; "time" ]
    [
      [ "affine (open 4, extend 1)"; string_of_int a_score;
        Printf.sprintf "%.3f" a_id; string_of_int a_gaps; fmt_ms affine_t ];
      [ "linear (2/base)"; string_of_int l_score; Printf.sprintf "%.3f" l_id;
        string_of_int l_gaps; fmt_ms linear_t ];
    ];
  note "multi-base indels: affine costing recovers them as few long gaps (higher";
  note "score per opening), where linear costing pays per base and fragments them"

(* A5: the integrator's duplicate threshold                              *)
let a5 () =
  heading "A5" "Ablation: duplicate-score threshold (default 0.6)";
  let r = rng () in
  let repo_a, repo_b, truth =
    Genalg_synth.Recordgen.overlapping_repositories r ~size:150 ~overlap:0.5
      ~noise_fraction:0.45 ~error_rate:0.03 ()
  in
  let sourced =
    List.map (fun e -> ("A", e)) repo_a @ List.map (fun e -> ("B", e)) repo_b
  in
  let header = [ "threshold"; "pairs found"; "precision"; "recall" ] in
  let rows =
    List.map
      (fun threshold ->
        let found = Genalg_etl.Integrator.find_duplicates ~threshold sourced in
        let found_pairs =
          List.map
            (fun ((_, (a : Genalg_formats.Entry.t)), (_, (b : Genalg_formats.Entry.t)), _) ->
              (a.Genalg_formats.Entry.accession, b.Genalg_formats.Entry.accession))
            found
        in
        let hits =
          List.length
            (List.filter
               (fun (x, y) -> List.mem (x, y) found_pairs || List.mem (y, x) found_pairs)
               truth)
        in
        let precision =
          if found_pairs = [] then 1.
          else float_of_int hits /. float_of_int (List.length found_pairs)
        in
        let recall = float_of_int hits /. float_of_int (List.length truth) in
        [
          Printf.sprintf "%.2f" threshold;
          string_of_int (List.length found_pairs);
          Printf.sprintf "%.3f" precision;
          Printf.sprintf "%.3f" recall;
        ])
      [ 0.3; 0.45; 0.6; 0.75; 0.9 ]
  in
  print_table header rows;
  note "the default 0.6 sits on the plateau: full precision, near-full recall"

let ablations () =
  a1 ();
  a2 ();
  a3 ();
  a5 ()

(* ================================================================== *)
(* Bechamel micro-benchmarks                                           *)
(* ================================================================== *)

let bechamel_suite () =
  heading "MICRO" "Bechamel micro-benchmarks (ns per run, OLS on monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let r = rng () in
  let gene = Genalg_synth.Genegen.gene r ~exon_count:4 ~exon_length:300 ~id:"mb" () in
  let primary = Ops.transcribe gene in
  let mrna = Ops.splice primary in
  let text = Genalg_synth.Seqgen.dna_string r 200_000 in
  let kmer_idx = Genalg_seqindex.Kmer_index.build ~k:12 text in
  let pattern = String.sub text 100_000 16 in
  let seq_1k = Genalg_synth.Seqgen.dna r 1_000 in
  let seq_bytes = Sequence.to_bytes seq_1k in
  let q200 = Genalg_synth.Seqgen.dna_string r 200 in
  let s200 = Genalg_synth.Seqgen.dna_string r 200 in
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  ignore (Exec.query db ~actor:Db.loader_actor "CREATE TABLE t (id int, seq dna)");
  for i = 1 to 500 do
    ignore
      (Exec.query db ~actor:Db.loader_actor
         (Printf.sprintf "INSERT INTO t VALUES (%d, dna('%s'))" i
            (Genalg_synth.Seqgen.dna_string r 100)))
  done;
  let tests =
    [
      Test.make ~name:"E1/transcribe-4kb-gene" (Staged.stage (fun () -> Ops.transcribe gene));
      Test.make ~name:"E1/splice" (Staged.stage (fun () -> Ops.splice primary));
      Test.make ~name:"E1/translate" (Staged.stage (fun () -> Ops.translate mrna));
      Test.make ~name:"E1/decode-composed" (Staged.stage (fun () -> Ops.decode gene));
      Test.make ~name:"E2/naive-scan-200kb"
        (Staged.stage (fun () -> Genalg_seqindex.Search.naive_find_all ~pattern text));
      Test.make ~name:"E2/kmer-query-200kb"
        (Staged.stage (fun () -> Genalg_seqindex.Kmer_index.find_all kmer_idx pattern));
      Test.make ~name:"E4/gc-scan-1kb-packed"
        (Staged.stage (fun () -> Sequence.gc_count seq_1k));
      Test.make ~name:"E4/deserialize-1kb"
        (Staged.stage (fun () -> Sequence.of_bytes seq_bytes));
      Test.make ~name:"E5/sw-200x200"
        (Staged.stage (fun () ->
             Genalg_align.Pairwise.score_only ~query:q200 ~subject:s200 ()));
      Test.make ~name:"E5/banded40-200x200"
        (Staged.stage (fun () ->
             Genalg_align.Pairwise.banded_score ~band:40 ~query:q200 ~subject:s200 ()));
      Test.make ~name:"E8/sql-count-500rows"
        (Staged.stage (fun () -> Exec.query db ~actor:"u" "SELECT count(*) FROM t"));
      Test.make ~name:"E9/biolang-compile"
        (Staged.stage (fun () -> Genalg_biolang.Biolang.compile "count sequences"));
    ]
  in
  let test = Test.make_grouped ~name:"genalg" ~fmt:"%s %s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = benchmark () in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> fmt_ms (e /. 1e9)
        | Some _ | None -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  print_table [ "kernel"; "time/run" ]
    (List.sort compare !rows)

(* ================================================================== *)
(* OVERHEAD — cost of the observability layer on the query hot path    *)
(* ================================================================== *)

let overhead () =
  heading "OVERHEAD"
    "Observability layer cost: instrumented engine, obs disabled vs enabled";
  note "instrumentation is compiled in unconditionally; disabled = one";
  note "branch per call site (the <5%% budget), enabled = counters+spans live";
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  let exec sql =
    match Exec.query db ~actor:Db.loader_actor sql with
    | Ok o -> o
    | Error msg -> failwith (sql ^ ": " ^ msg)
  in
  ignore (exec "CREATE TABLE frag (id int NOT NULL, organism string, len int)");
  let r = rng () in
  for i = 1 to 2000 do
    ignore
      (exec
         (Printf.sprintf "INSERT INTO frag VALUES (%d, 'org%d', %d)" i
            (Genalg_synth.Rng.int r 5)
            (Genalg_synth.Rng.int r 1000)))
  done;
  let queries =
    [
      "SELECT * FROM frag WHERE len > 900";
      "SELECT organism, count(*) FROM frag GROUP BY organism";
      "SELECT * FROM frag ORDER BY len DESC LIMIT 10";
    ]
  in
  let workload () = List.iter (fun q -> ignore (exec q)) queries in
  let iters = 50 in
  let per_iter () = measure ~runs:7 (fun () -> for _ = 1 to iters do workload () done) in
  Obs.set_enabled false;
  let t_disabled = per_iter () in
  Obs.set_enabled true;
  Obs.reset ();
  let t_enabled = per_iter () in
  Obs.set_enabled false;
  let pct a b = (a /. b -. 1.) *. 100. in
  print_table
    [ "configuration"; "median / workload"; "vs disabled" ]
    [
      [ "obs disabled (default)"; fmt_ms (t_disabled /. float_of_int iters); "-" ];
      [ "obs enabled"; fmt_ms (t_enabled /. float_of_int iters);
        Printf.sprintf "%+.1f%%" (pct t_enabled t_disabled) ];
    ];
  note "workload = 3 queries (filter scan, group by, sort+limit) over 2000 rows"

(* ================================================================== *)
(* CACHE — multi-layer caching: cold vs warm latency and hit rates     *)
(* ================================================================== *)

let cache_bench () =
  let module Lru = Genalg_cache.Lru in
  heading "CACHE" "Multi-layer caching: cold vs warm latency and hit rates";
  note "layers: buffer pool (storage) / plan+result caches (sqlx) / mediator TTL cache";
  let ok = function Ok v -> v | Error m -> failwith m in
  (* warehouse: one 4000-row table queried with a filtered aggregate *)
  let db = Db.create () in
  let actor = "bench" in
  ignore (ok (Exec.query db ~actor "CREATE TABLE frag (id int, organism string, len int)"));
  let _, tbl = Option.get (Db.resolve db ~actor "frag") in
  for i = 1 to 4000 do
    ignore
      (Genalg_storage.Table.insert_exn tbl
         [| D.Int i;
            D.Str (if i mod 2 = 0 then "ecoli" else "yeast");
            D.Int (i * 37 mod 2000) |])
  done;
  let sql = "SELECT count(*) FROM frag WHERE len >= 500" in
  (* a standalone heap for the page layer: ~80 pages of 120-byte records *)
  let module Heap = Genalg_storage.Heap in
  let heap = Heap.create () in
  let rids =
    List.init 5000 (fun i ->
        Heap.insert heap (Bytes.of_string (Printf.sprintf "record-%04d-%s" i (String.make 100 'x'))))
  in
  Exec.clear_statement_caches ();
  Lru.reset_registry_stats ();
  (* layer 1: buffer pool. Page-sparse point reads, with decoded frames
     resident versus dropped (each touched page image re-decoded and
     re-validated). *)
  let sample = List.filteri (fun i _ -> i mod 40 = 0) rids in
  let scan () = List.iter (fun rid -> ignore (Heap.get heap rid)) sample in
  let t_page_cold =
    measure (fun () ->
        Heap.drop_page_cache heap;
        scan ())
  in
  let t_page_warm = measure scan in
  (* layer 2: statement caches. cold pays parse + plan + execute every
     time; warm is a result-cache hit. *)
  let t_query_cold =
    measure (fun () ->
        Exec.clear_statement_caches ();
        ignore (ok (Exec.query db ~actor sql)))
  in
  let t_query_warm = measure (fun () -> ignore (ok (Exec.query db ~actor sql))) in
  (* exercise the plan cache on its own path: EXPLAIN output is never
     result-cached, so the second one is a pure plan-cache hit *)
  ignore (ok (Exec.query db ~actor ("EXPLAIN " ^ sql)));
  ignore (ok (Exec.query db ~actor ("EXPLAIN " ^ sql)));
  (* layer 3: mediator response cache over a non-queryable flat-file
     source — a miss re-parses the textual dump (the wrapper work). *)
  let entries =
    Genalg_synth.Recordgen.repository (rng ()) ~size:200 ~prefix:"CB" ()
  in
  let src = Source.create ~name:"remote" Source.Non_queryable Source.Flat_file entries in
  let med = Mediator.create ~cache_ttl_s:3600. [ src ] in
  let t_med_cold =
    measure (fun () ->
        ignore (Mediator.invalidate_source med "remote");
        ignore (Mediator.run ~reconcile:false med Mediator.query_all))
  in
  let t_med_warm =
    measure (fun () -> ignore (Mediator.run ~reconcile:false med Mediator.query_all))
  in
  Mediator.detach med;
  let speedup cold warm = Printf.sprintf "%.1fx" (cold /. Float.max warm 1e-9) in
  print_table
    [ "layer"; "cold"; "warm"; "speedup" ]
    [
      [ "buffer pool (point reads)"; fmt_ms t_page_cold; fmt_ms t_page_warm;
        speedup t_page_cold t_page_warm ];
      [ "plan+result cache (query)"; fmt_ms t_query_cold; fmt_ms t_query_warm;
        speedup t_query_cold t_query_warm ];
      [ "mediator TTL cache (run)"; fmt_ms t_med_cold; fmt_ms t_med_warm;
        speedup t_med_cold t_med_warm ];
    ];
  note "hit rates (always-on Lru registry, accumulated over the runs above):";
  let stats = Lru.registry_stats () in
  print_table
    [ "cache"; "hits"; "misses"; "hit rate"; "evictions"; "invalidations" ]
    (List.map
       (fun (name, (s : Lru.stats)) ->
         let total = s.Lru.hits + s.Lru.misses in
         [ name; string_of_int s.Lru.hits; string_of_int s.Lru.misses;
           (if total = 0 then "-"
            else Printf.sprintf "%.0f%%" (100. *. float_of_int s.Lru.hits /. float_of_int total));
           string_of_int s.Lru.evictions; string_of_int s.Lru.invalidations ])
       stats);
  let hit_of name =
    match List.assoc_opt name stats with Some s -> s.Lru.hits | None -> 0
  in
  let warm_ok =
    hit_of "bufferpool" > 0 && hit_of "result" > 0 && hit_of "mediator" > 0
  in
  (* machine-checkable marker for ci.sh's cache smoke step *)
  Printf.printf "cache-smoke: warm-hit-rate-nonzero=%s\n"
    (if warm_ok then "yes" else "no");
  note "shape: every warm path should be well over 2x its cold path"

(* ================================================================== *)
(* PAR — parallel execution: hash join, partitioned scans, batch align *)
(* ================================================================== *)

let par_bench () =
  let module Par = Genalg_par.Par in
  heading "PAR" "Parallel execution: hash join vs nested loop, jobs=1 vs jobs=N";
  let n =
    match Sys.getenv_opt "GENALG_PAR_N" with
    | Some s -> (try max 100 (int_of_string s) with Failure _ -> 10_000)
    | None -> 10_000
  in
  (* on a single-core box the recommended count is 1; still exercise the
     pool with real worker domains so the identity checks mean something *)
  let jobs_n = max 4 (Par.default_jobs ()) in
  note "join: %d x %d rows on an int key (GENALG_PAR_N overrides); jobs=N is %d"
    n n jobs_n;
  let ok = function Ok v -> v | Error m -> failwith m in
  let db = Db.create () in
  let actor = "bench" in
  ignore (ok (Exec.query db ~actor "CREATE TABLE genes (gid int, organism string)"));
  ignore (ok (Exec.query db ~actor "CREATE TABLE prots (pid int, gene int, plen int)"));
  let _, genes_t = Option.get (Db.resolve db ~actor "genes") in
  let _, prots_t = Option.get (Db.resolve db ~actor "prots") in
  for i = 1 to n do
    ignore
      (Genalg_storage.Table.insert_exn genes_t
         [| D.Int i; D.Str (if i mod 2 = 0 then "ecoli" else "yeast") |]);
    ignore
      (Genalg_storage.Table.insert_exn prots_t
         [| D.Int (100_000 + i); D.Int (((i * 7) mod n) + 1); D.Int (i * 13 mod 400) |])
  done;
  let join_sql =
    "SELECT g.gid, p.pid FROM genes g, prots p \
     WHERE g.gid = p.gene AND p.plen >= 40"
  in
  let scan_sql =
    "SELECT gid FROM genes WHERE gid * 3 > 100 AND organism = 'ecoli'"
  in
  let rows_of sql =
    match ok (Exec.query db ~actor sql) with
    | Exec.Rows rs -> rs.Exec.rows
    | _ -> failwith "expected rows"
  in
  (* the result cache would otherwise serve every repeat, so each timed
     run starts from cleared statement caches (clearing is O(1)) *)
  let timed_rows sql =
    let rows = ref [] in
    let t =
      measure ~runs:3 (fun () ->
          Exec.clear_statement_caches ();
          rows := rows_of sql)
    in
    (!rows, t)
  in
  (* -- join strategy: nested loop vs hash, sequential ---------------- *)
  Par.set_jobs 1;
  Exec.set_hash_join_enabled false;
  let nested_rows, nested_t = timed_rows join_sql in
  Exec.set_hash_join_enabled true;
  let hash_rows, hash_t = timed_rows join_sql in
  let hash_same = nested_rows = hash_rows in
  (* -- degree of parallelism: jobs=1 vs jobs=N ----------------------- *)
  let scan_rows_1, scan_t_1 = timed_rows scan_sql in
  let join_t_1 = hash_t in
  Par.set_jobs jobs_n;
  let scan_rows_n, scan_t_n = timed_rows scan_sql in
  let join_rows_n, join_t_n = timed_rows join_sql in
  (* -- batch alignment: the same pool drives the genomic kernels ----- *)
  let r = rng () in
  let pairs =
    Array.init 64 (fun _ ->
        (Genalg_synth.Seqgen.dna_string r 160, Genalg_synth.Seqgen.dna_string r 160))
  in
  Par.set_jobs 1;
  let scores_1 = ref [||] in
  let align_t_1 =
    measure ~runs:3 (fun () -> scores_1 := Genalg_align.Batch.score_pairs pairs)
  in
  Par.set_jobs jobs_n;
  let scores_n = ref [||] in
  let align_t_n =
    measure ~runs:3 (fun () -> scores_n := Genalg_align.Batch.score_pairs pairs)
  in
  let identical =
    nested_rows = join_rows_n && scan_rows_1 = scan_rows_n && !scores_1 = !scores_n
  in
  Par.set_jobs 1;
  let speedup a b = Printf.sprintf "%.1fx" (a /. Float.max b 1e-9) in
  print_table
    [ "workload"; "baseline"; "tuned"; "speedup" ]
    [
      [ Printf.sprintf "equi-join %dx%d (nested -> hash)" n n;
        fmt_ms nested_t; fmt_ms hash_t; speedup nested_t hash_t ];
      [ Printf.sprintf "same join (jobs=1 -> jobs=%d)" jobs_n;
        fmt_ms join_t_1; fmt_ms join_t_n; speedup join_t_1 join_t_n ];
      [ Printf.sprintf "filter scan (jobs=1 -> jobs=%d)" jobs_n;
        fmt_ms scan_t_1; fmt_ms scan_t_n; speedup scan_t_1 scan_t_n ];
      [ Printf.sprintf "64 pairwise alignments (jobs=1 -> jobs=%d)" jobs_n;
        fmt_ms align_t_1; fmt_ms align_t_n; speedup align_t_1 align_t_n ];
    ];
  note "join rows: %d; pool spawned %d worker domain(s) over the run"
    (List.length nested_rows) (Par.spawned_total ());
  note "jobs>1 speedups depend on available cores (this host: %d)"
    (Domain.recommended_domain_count ());
  (* machine-checkable markers for ci.sh's parallel smoke step *)
  Printf.printf "par-smoke: hash-join-2x=%s\n"
    (if hash_same && nested_t >= 2. *. hash_t then "yes" else "no");
  Printf.printf "par-smoke: jobs-results-identical=%s\n"
    (if identical then "yes" else "no");
  note "shape: hash join is O(|L|+|R|) vs the nested loop's O(|L|*|R|);";
  note "jobs=N never changes results, only who computes them"

(* ================================================================== *)
(* AVAIL — availability under injected faults: mediator vs warehouse   *)
(* ================================================================== *)

let avail () =
  let module Fault = Genalg_fault.Fault in
  let module Resilience = Genalg_resilience.Resilience in
  heading "AVAIL"
    "Availability under injected faults: mediator (Figure 1) vs warehouse (Figure 3)";
  note "F1 workload (organism + length query, 100 records/source, 4 sources)";
  note "replayed %d times under a fixed fault spec; the warehouse is loaded" 40;
  note "before the outage window — the paper's availability argument, quantified";
  let n_queries = 40 in
  let organism = "Synthetica primus" in
  let q =
    { Mediator.organism = Some organism; min_length = Some 900;
      contains_motif = None }
  in
  let mk_sources () =
    let r = rng () in
    List.init 4 (fun i ->
        Source.create
          ~name:(Printf.sprintf "s%d" i)
          (if i = 2 then Source.Non_queryable else Source.Queryable)
          (match i mod 3 with
          | 0 -> Source.Relational
          | 1 -> Source.Hierarchical
          | _ -> Source.Flat_file)
          (Genalg_synth.Recordgen.repository r ~size:100
             ~prefix:(Printf.sprintf "F%d" i) ()))
  in
  (* -- gate 1: with injection disabled, instrumented code never fires -- *)
  Fault.disable ();
  Fault.reset_tallies ();
  let med0 = Mediator.create (mk_sources ()) in
  let baseline_results, _ = Mediator.run med0 q in
  let zero_when_disabled = Fault.total_injected () = 0 in
  (* warehouse loaded once, while the sources are healthy *)
  let pl = Result.get_ok (Pipeline.create ~sources:(mk_sources ()) ()) in
  ignore (Result.get_ok (Pipeline.bootstrap pl));
  let db = Pipeline.database pl in
  ignore (Exec.query db ~actor:"u" "CREATE INDEX ON sequences (organism)");
  let sql =
    Printf.sprintf
      "SELECT accession FROM sequences WHERE organism = '%s' AND length >= 900"
      organism
  in
  let spec =
    "seed=11;source.s0:error:p=0.9;source.s1:latency:p=0.3:s=0.4;\
     source.s2:corrupt:p=0.25:frac=0.02;source.s3:error:p=0.25"
  in
  note "fault spec: %s" spec;
  (* one full replay: fresh spec (resets the registry's deterministic
     counters), fresh sources, fresh breakers *)
  let replay () =
    (match Fault.configure spec with Ok () -> () | Error m -> failwith m);
    let med =
      Mediator.create ~resilience:Resilience.default_policy (mk_sources ())
    in
    let full = ref 0 and partial = ref 0 and unanswered = ref 0 in
    let contacts_ok = ref 0 and contacts = ref 0 in
    let retries = ref 0 and skips = ref 0 and fails = ref 0 in
    for _ = 1 to n_queries do
      let _, tm = Mediator.run med q in
      contacts := !contacts + tm.Mediator.sources_contacted;
      contacts_ok := !contacts_ok + tm.Mediator.sources_answered;
      if tm.Mediator.sources_answered = tm.Mediator.sources_contacted then
        incr full
      else if tm.Mediator.sources_answered > 0 then incr partial
      else incr unanswered;
      List.iter
        (fun (st : Mediator.source_timing) ->
          match st.Mediator.status with
          | Mediator.Retried n -> retries := !retries + n
          | Mediator.Skipped_open_circuit -> incr skips
          | Mediator.Failed _ -> incr fails
          | Mediator.Served -> ())
        tm.Mediator.per_source
    done;
    Fault.disable ();
    (!full, !partial, !unanswered, !contacts_ok, !contacts, !retries, !skips,
     !fails)
  in
  let run1 = replay () in
  let run2 = replay () in
  let deterministic = run1 = run2 in
  let full, partial, unanswered, cok, ctot, retries, skips, fails = run1 in
  (* the warehouse answers the same workload locally *)
  let wh_ok = ref 0 in
  for _ = 1 to n_queries do
    match Exec.query db ~actor:"u" sql with
    | Ok _ -> incr wh_ok
    | Error _ -> ()
  done;
  let frac a b = float_of_int a /. float_of_int (max 1 b) in
  print_table
    [ "architecture"; "queries"; "complete"; "partial"; "unanswered";
      "answered-frac"; "contact-avail"; "retries"; "breaker-skips"; "failures" ]
    [
      [ "mediator (faults)"; string_of_int n_queries; string_of_int full;
        string_of_int partial; string_of_int unanswered;
        Printf.sprintf "%.3f" (frac full n_queries);
        Printf.sprintf "%.3f" (frac cok ctot); string_of_int retries;
        string_of_int skips; string_of_int fails ];
      [ "warehouse (faults)"; string_of_int n_queries; string_of_int !wh_ok;
        "0"; string_of_int (n_queries - !wh_ok);
        Printf.sprintf "%.3f" (frac !wh_ok n_queries); "1.000"; "0"; "0"; "0" ];
    ];
  note "complete = every source answered; partial queries still return the";
  note "records of live sources with per-source statuses (never an exception)";
  let wh_ge_med =
    frac !wh_ok n_queries >= frac full n_queries && !wh_ok = n_queries
  in
  (* -- crash-recovery: interrupt a save at every registered point ------ *)
  print_newline ();
  note "crash matrix: grow a table, interrupt Db.save at each crash point, reopen;";
  note "the reopened file must hold exactly the pre- or post-save row count:";
  Obs.set_enabled true;
  Obs.reset ();
  let path = Filename.temp_file "genalg_avail" ".db" in
  let cdb = Db.create () in
  let cok = function Ok v -> v | Error m -> failwith m in
  ignore (cok (Exec.query cdb ~actor:"u" "CREATE TABLE t (k int)"));
  ignore (cok (Exec.query cdb ~actor:"u" "INSERT INTO t VALUES (0)"));
  let recovery_ok = ref (Result.is_ok (Db.save cdb path)) in
  let file_rows = ref 1 and mem_rows = ref 1 in
  let count_rows db' =
    match Exec.query db' ~actor:"u" "SELECT k FROM t" with
    | Ok (Exec.Rows rs) -> List.length rs.Exec.rows
    | _ -> -1
  in
  List.iter
    (fun site ->
      (* each interrupted save carries one new row, so pre- and
         post-save states are distinguishable on disk *)
      incr mem_rows;
      ignore
        (cok
           (Exec.query cdb ~actor:"u"
              (Printf.sprintf "INSERT INTO t VALUES (%d)" !mem_rows)));
      (match Fault.configure (site ^ ":crash:times=1") with
      | Ok () -> ()
      | Error m -> failwith m);
      let crashed =
        match Db.save cdb path with
        | exception Genalg_fault.Fault.Crash_point _ -> true
        | Ok () | Error _ -> false
      in
      Fault.disable ();
      let outcome = Db.recover path in
      let rows =
        match Db.load path with Ok db' -> count_rows db' | Error _ -> -1
      in
      (* the new image survives only once it fully reached the tmp file;
         dir_sync fires after the rename, when the save is already in place *)
      let expected =
        match site with
        | "storage.save.tmp" | "storage.save.rename"
        | "storage.save.dir_sync" -> !mem_rows
        | _ -> !file_rows
      in
      let consistent = rows = expected in
      note "  %-28s crashed=%b recovery=%-14s rows=%d (pre=%d post=%d) ok=%b"
        site crashed
        (Db.recovery_to_string outcome)
        rows !file_rows !mem_rows consistent;
      if not (crashed && consistent) then recovery_ok := false;
      file_rows := expected)
    Db.crash_points;
  List.iter
    (fun (e : Obs.entry) -> note "  %-34s %d" e.Obs.name e.Obs.count)
    (Obs.snapshot ~prefix:"storage.recovery" ());
  Obs.set_enabled false;
  List.iter
    (fun f -> if Sys.file_exists f then Sys.remove f)
    [ path; path ^ ".tmp"; path ^ ".journal" ];
  ignore baseline_results;
  (* machine-checkable markers for ci.sh's availability smoke step *)
  Printf.printf "avail-smoke: zero-faults-when-disabled=%s\n"
    (if zero_when_disabled then "yes" else "no");
  Printf.printf "avail-smoke: deterministic=%s\n"
    (if deterministic then "yes" else "no");
  Printf.printf "avail-smoke: warehouse-ge-mediator=%s\n"
    (if wh_ge_med then "yes" else "no");
  Printf.printf "avail-smoke: crash-recovery=%s\n"
    (if !recovery_ok then "ok" else "fail");
  note "shape: the warehouse keeps answering when sources die; the mediator";
  note "degrades per-source and recovers what retries and breakers allow"

(* ================================================================== *)
(* SERVE — concurrent sessions over the wire protocol + group-commit   *)
(* WAL (docs/SERVING.md); gated in ci.sh                               *)
(* ================================================================== *)

let serve_bench () =
  let module Server = Genalg_serve.Server in
  let module Client = Genalg_serve.Client in
  let module Proto = Genalg_serve.Protocol in
  let module Wal = Genalg_storage.Wal in
  let module Fault = Genalg_fault.Fault in
  heading "SERVE"
    "Multi-client serving: concurrent sessions, transactions, group-commit WAL";
  let n_clients =
    match Sys.getenv_opt "GENALG_SERVE_CLIENTS" with
    | Some s -> (try max 1 (int_of_string s) with _ -> 8)
    | None -> 8
  in
  let ops_per_client =
    match Sys.getenv_opt "GENALG_SERVE_OPS" with
    | Some s -> (try max 1 (int_of_string s) with _ -> 40)
    | None -> 40
  in
  note "%d concurrent client sessions x %d operations each" n_clients
    ops_per_client;
  note "mix: 70%% SELECT / 20%% autocommit INSERT / 10%% BEGIN-INSERT-COMMIT";
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "genalg_serve_%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let db_path = Filename.concat dir "serve.db" in
  let socket = Filename.concat dir "serve.sock" in
  let attach db = Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default in
  (* the warehouse under test: the F-series synthetic federation *)
  let pl =
    Result.get_ok
      (Pipeline.create
         ~sources:
           (let r = rng () in
            List.init 2 (fun i ->
                Source.create
                  ~name:(Printf.sprintf "s%d" i)
                  Source.Queryable Source.Relational
                  (Genalg_synth.Recordgen.repository r ~size:150
                     ~prefix:(Printf.sprintf "S%d" i) ())))
         ())
  in
  ignore (Result.get_ok (Pipeline.bootstrap pl));
  (match Db.save (Pipeline.database pl) db_path with
  | Ok () -> ()
  | Error m -> failwith m);
  let config =
    { (Server.default_config ~socket_path:socket) with Server.attach } in
  let server = Result.get_ok (Server.create config ~db_path) in
  let server_domain =
    Domain.spawn (fun () -> Server.serve server)
  in
  (* wait until the socket answers *)
  let rec wait_ready n =
    if n = 0 then failwith "server did not come up"
    else
      match Client.connect ~actor:"probe" ~socket () with
      | Ok c -> Client.close c
      | Error _ ->
          Unix.sleepf 0.05;
          wait_ready (n - 1)
  in
  wait_ready 100;
  (* one client session's workload; returns (latencies, failures) *)
  let client_workload i () =
    let actor = Printf.sprintf "u%d" i in
    match Client.connect ~actor ~socket () with
    | Error msg -> ([||], [ "connect: " ^ msg ])
    | Ok c ->
        let failures = ref [] in
        let fail msg = failures := msg :: !failures in
        let expect_applied label = function
          | Ok (Proto.Rows _ | Proto.Affected _ | Proto.Ok_reply _) -> ()
          | Ok (Proto.Error_reply { code; message }) ->
              fail
                (Printf.sprintf "%s: [%s] %s" label
                   (Proto.error_code_to_string code)
                   message)
          | Ok _ -> fail (label ^ ": unexpected reply")
          | Error msg -> fail (label ^ ": " ^ msg)
        in
        expect_applied "create"
          (Client.query c "CREATE TABLE notes (k int, tag string)");
        let lat = Array.make ops_per_client 0. in
        for j = 0 to ops_per_client - 1 do
          let t0 = Unix.gettimeofday () in
          (match j mod 10 with
          | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
              expect_applied "select"
                (Client.query c
                   (Printf.sprintf
                      "SELECT accession, organism FROM sequences WHERE length \
                       > %d LIMIT 20"
                      (400 + (37 * ((i + j) mod 20)))))
          | 7 | 8 ->
              expect_applied "insert"
                (Client.query c
                   (Printf.sprintf "INSERT INTO notes VALUES (%d, 'auto')" j))
          | _ -> (
              match Client.begin_ c with
              | Error msg -> fail ("begin: " ^ msg)
              | Ok () ->
                  expect_applied "txn-insert"
                    (Client.query c
                       (Printf.sprintf "INSERT INTO notes VALUES (%d, 'txn')" j));
                  (match Client.commit c with
                  | Ok () -> ()
                  | Error msg -> fail ("commit: " ^ msg))));
          lat.(j) <- Unix.gettimeofday () -. t0
        done;
        Client.close c;
        (lat, List.rev !failures)
  in
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init n_clients (fun i -> Domain.spawn (client_workload i))
  in
  let results = List.map Domain.join workers in
  let wall = Unix.gettimeofday () -. t0 in
  let all_lat =
    Array.concat (List.map fst results)
  in
  let failures = List.concat_map snd results in
  Array.sort Float.compare all_lat;
  let n_ops = Array.length all_lat in
  let pct p =
    if n_ops = 0 then nan
    else all_lat.(min (n_ops - 1) (int_of_float (p *. float_of_int n_ops)))
  in
  let qps = float_of_int n_ops /. wall in
  print_table
    [ "sessions"; "ops"; "failed"; "wall"; "QPS"; "p50"; "p99"; "max" ]
    [
      [ string_of_int n_clients; string_of_int n_ops;
        string_of_int (List.length failures); fmt_ms wall;
        Printf.sprintf "%.0f" qps; fmt_ms (pct 0.50); fmt_ms (pct 0.99);
        fmt_ms (pct 1.0) ];
    ];
  List.iteri
    (fun i msg -> if i < 5 then note "failure: %s" msg)
    failures;
  (* server-side accounting (single process: read the registry after the
     workers have drained) *)
  print_newline ();
  note "server-side serve.* instruments:";
  List.iter
    (fun (e : Obs.entry) -> note "  %-32s %d" e.Obs.name e.Obs.count)
    (Obs.snapshot ~prefix:"serve" ());
  let commits =
    List.fold_left
      (fun acc (e : Obs.entry) ->
        if e.Obs.name = "serve.group_commit.commits" then e.Obs.count else acc)
      0
      (Obs.snapshot ~prefix:"serve" ())
  and batches =
    List.fold_left
      (fun acc (e : Obs.entry) ->
        if e.Obs.name = "serve.group_commit.batches" then e.Obs.count else acc)
      0
      (Obs.snapshot ~prefix:"serve" ())
  in
  if batches > 0 then
    note "group commit: %d commits in %d WAL flushes (%.2f commits/flush)"
      commits batches
      (float_of_int commits /. float_of_int (max 1 batches));
  (* -- phase 2: dirty shutdown, then WAL-replay recovery -------------- *)
  print_newline ();
  note "recovery: commit rows, shut down WITHOUT checkpoint, reopen, replay:";
  let recovery_ok =
    match Client.connect ~actor:"rec" ~socket () with
    | Error msg ->
        note "  recovery client failed: %s" msg;
        false
    | Ok c ->
        let ok1 =
          Client.query c "CREATE TABLE ledger (k int)" |> Result.is_ok
        in
        let committed = ref 0 in
        for k = 1 to 5 do
          match
            Client.query c (Printf.sprintf "INSERT INTO ledger VALUES (%d)" k)
          with
          | Ok (Proto.Affected 1) -> incr committed
          | _ -> ()
        done;
        (match Client.shutdown c ~dirty:true with Ok () | Error _ -> ());
        Client.close c;
        (match Domain.join server_domain with Ok () | Error _ -> ());
        ignore ok1;
        (* the image on disk predates every commit; reopening must
           replay them all from the WAL *)
        let config2 =
          { (Server.default_config ~socket_path:socket) with Server.attach }
        in
        let s2 = Result.get_ok (Server.create config2 ~db_path) in
        let rows =
          match
            Exec.query (Server.db s2) ~actor:"rec" "SELECT k FROM ledger"
          with
          | Ok (Exec.Rows rs) -> List.length rs.Exec.rows
          | _ -> -1
        in
        Server.stop s2;
        let d2 = Domain.spawn (fun () -> Server.serve s2) in
        (match Domain.join d2 with Ok () | Error _ -> ());
        note "  committed=%d, image rows=0, replayed statements=%d, rows \
              after reopen=%d"
          !committed (Server.replayed s2) rows;
        rows = !committed && Server.replayed s2 > 0
  in
  (* -- phase 3: crash matrix at the WAL group-commit crash points ----- *)
  print_newline ();
  note "WAL crash matrix: txn A flushed+acked, then crash while flushing txn B;";
  note "an acknowledged commit must never be lost:";
  let crash_ok = ref true in
  List.iter
    (fun site ->
      let wal_file = Filename.concat dir ("crash_" ^ Filename.basename site) in
      (try Sys.remove wal_file with Sys_error _ -> ());
      let wal = Result.get_ok (Wal.open_ wal_file) in
      Wal.append_begin wal ~txn:1;
      Wal.append_stmt wal ~txn:1 ~actor:"u" ~sql:"INSERT INTO t VALUES (1)";
      Wal.append_commit wal ~txn:1;
      (match Wal.flush wal with Ok () -> () | Error m -> failwith m);
      Wal.append_begin wal ~txn:2;
      Wal.append_stmt wal ~txn:2 ~actor:"u" ~sql:"INSERT INTO t VALUES (2)";
      Wal.append_commit wal ~txn:2;
      (match Fault.configure (site ^ ":crash:times=1") with
      | Ok () -> ()
      | Error m -> failwith m);
      let crashed =
        match Wal.flush wal with
        | exception Genalg_fault.Fault.Crash_point _ -> true
        | Ok () | Error _ -> false
      in
      Fault.disable ();
      Wal.close wal;
      let rp = Result.get_ok (Wal.replay wal_file) in
      let sqls =
        List.map (fun (s : Wal.replay_stmt) -> s.Wal.rp_sql) rp.Wal.committed
      in
      let txn1_survives = List.mem "INSERT INTO t VALUES (1)" sqls in
      (* a crash after the fsync (storage.wal.flush) means txn B is
         durable too; a torn tail (flush_partial) may lose it — it was
         never acknowledged *)
      let consistent =
        txn1_survives
        && (site <> "storage.wal.flush"
           || List.mem "INSERT INTO t VALUES (2)" sqls)
      in
      note "  %-28s crashed=%b torn=%b committed-replayed=%d ok=%b" site
        crashed rp.Wal.torn
        (List.length rp.Wal.committed)
        consistent;
      if not (crashed && consistent) then crash_ok := false)
    Wal.crash_points;
  (* cleanup *)
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  Obs.set_enabled false;
  (* machine-checkable markers for ci.sh *)
  Printf.printf "serve-smoke: sessions=%d zero-failed=%s\n" n_clients
    (if failures = [] then "yes" else "no");
  Printf.printf "serve-smoke: p99-reported=%s\n"
    (if n_ops > 0 && Float.is_finite (pct 0.99) then "yes" else "no");
  Printf.printf "serve-smoke: wal-recovery=%s\n"
    (if recovery_ok then "ok" else "fail");
  Printf.printf "serve-smoke: wal-crash-matrix=%s\n"
    (if !crash_ok then "ok" else "fail");
  note "shape: one event loop interleaves N sessions at statement granularity;";
  note "commits are acknowledged once per group flush, and replay after a";
  note "dirty stop recovers every acknowledged transaction"

(* ================================================================== *)
(* OPT — cost-based optimizer vs the heuristic planner                 *)
(* ================================================================== *)

let opt_bench () =
  let module Plan = Genalg_sqlx.Plan in
  let module Cost = Genalg_sqlx.Cost in
  heading "OPT" "Cost-based optimizer: chosen access paths and index-vs-scan crossover";
  note "each query planned by the heuristic and by the cost-based planner (ANALYZE stats);";
  note "the gate: cost-based never loses beyond noise and never changes result sets";
  let ok = function Ok v -> v | Error m -> failwith m in
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  let actor = "bench" in
  let run sql = ignore (ok (Exec.query db ~actor sql)) in
  (* F1-style warehouse table with a B-tree on the key *)
  run "CREATE TABLE frag (id int, organism string, len int)";
  let _, tbl = Option.get (Db.resolve db ~actor "frag") in
  for i = 1 to 4000 do
    ignore
      (Genalg_storage.Table.insert_exn tbl
         [| D.Int i;
            D.Str (if i mod 2 = 0 then "ecoli" else "yeast");
            D.Int (i * 37 mod 2000) |])
  done;
  run "CREATE INDEX ON frag (id)";
  (* genomic table: planted motif in every 10th sequence, k-mer index *)
  let r = rng () in
  let pattern = "ACGTTGCAGGATCCATTACGGATCAGGTCA" in
  run "CREATE TABLE frags (id int, seq dna)";
  for i = 1 to 600 do
    let s = Genalg_synth.Seqgen.dna_string r 250 in
    let s = if i mod 10 = 0 then pattern ^ s else s in
    run (Printf.sprintf "INSERT INTO frags VALUES (%d, dna('%s'))" i s)
  done;
  run "CREATE GENOMIC INDEX ON frags (seq)";
  (* asymmetric join pair for the reordering rule *)
  run "CREATE TABLE big (k int, v int)";
  run "CREATE TABLE small (k int, w int)";
  let _, btbl = Option.get (Db.resolve db ~actor "big") in
  for i = 1 to 3000 do
    ignore (Genalg_storage.Table.insert_exn btbl [| D.Int (i mod 80); D.Int i |])
  done;
  for i = 1 to 12 do
    run (Printf.sprintf "INSERT INTO small VALUES (%d, %d)" i i)
  done;
  List.iter (fun t -> run ("ANALYZE " ^ t)) [ "frag"; "frags"; "big"; "small" ];
  let sorted sql =
    match ok (Exec.query db ~actor sql) with
    | Exec.Rows rs -> List.sort compare (List.map Array.to_list rs.Exec.rows)
    | _ -> []
  in
  let explain sql =
    match ok (Exec.query db ~actor ("EXPLAIN " ^ sql)) with
    | Exec.Rows rs ->
        String.concat " | "
          (List.map (function [| D.Str s |] -> s | _ -> "") rs.Exec.rows)
    | _ -> ""
  in
  let has needle hay =
    let n = String.length needle and l = String.length hay in
    let rec mem i = i + n <= l && (String.sub hay i n = needle || mem (i + 1)) in
    mem 0
  in
  let with_mode m f =
    Exec.set_planner_mode m;
    Fun.protect ~finally:(fun () -> Exec.set_planner_mode Plan.Cost_based) f
  in
  (* median of cold runs: the caches are cleared inside the measured
     thunk (same tiny overhead for both planners), so every run pays
     parse + plan + execute under the selected planner *)
  let best_time mode sql =
    with_mode mode (fun () ->
        measure (fun () ->
            Exec.clear_statement_caches ();
            ignore (ok (Exec.query db ~actor sql))))
  in
  let access_of plan =
    if has "genomic seed" plan then "genomic seed (k-mer candidates)"
    else if has "genomic index" plan then "genomic index (contains)"
    else if has "via index" plan then "B-tree index"
    else "full scan"
  in
  let workloads =
    [
      ("F1 range+filter", "SELECT organism FROM frag WHERE id < 200 AND len >= 500");
      ("point lookup", "SELECT len FROM frag WHERE id = 1234");
      ( "genomic contains",
        Printf.sprintf "SELECT id FROM frags WHERE contains(seq, '%s')" pattern );
      ( "genomic resembles",
        Printf.sprintf
          "SELECT id FROM frags WHERE resembles(seq, dna('%s')) >= 0.9" pattern );
      ("join reorder", "SELECT count(*) FROM big, small WHERE big.k = small.k");
    ]
  in
  let never_lost = ref true and identical = ref true in
  let rows =
    List.map
      (fun (label, sql) ->
        let rows_h = with_mode Plan.Heuristic (fun () -> sorted sql) in
        let t_h = best_time Plan.Heuristic sql in
        let t_c = best_time Plan.Cost_based sql in
        let rows_c = sorted sql in
        let plan_c = explain sql in
        if rows_h <> rows_c then identical := false;
        (* noise floor: 1.5x plus an absolute millisecond allowance *)
        if t_c > (t_h *. 1.5) +. 0.002 then never_lost := false;
        [ label; fmt_ms t_h; fmt_ms t_c;
          Printf.sprintf "%.1fx" (t_h /. Float.max t_c 1e-9);
          access_of plan_c ])
      workloads
  in
  print_table
    [ "workload"; "heuristic"; "cost-based"; "speedup"; "cost-based access" ]
    rows;
  print_newline ();
  note "resembles threshold crossover (pattern %d chars, k=8): the seed path is" (String.length pattern);
  note "only index-safe above t = 1 - 3/(2k); below it the planner must keep scanning";
  let crossover =
    List.map
      (fun t ->
        let sql =
          Printf.sprintf
            "SELECT id FROM frags WHERE resembles(seq, dna('%s')) >= %.2f" pattern t
        in
        let min_len =
          match Cost.resembles_min_len ~k:8 ~threshold:t with
          | Some m -> string_of_int m
          | None -> "-"
        in
        [ Printf.sprintf "%.2f" t; min_len; access_of (explain sql);
          fmt_ms (best_time Plan.Cost_based sql) ])
      [ 0.80; 0.85; 0.92 ]
  in
  print_table [ "threshold"; "safe min len"; "chosen access"; "cost-based" ] crossover;
  let plan_resembles =
    explain
      (Printf.sprintf "SELECT id FROM frags WHERE resembles(seq, dna('%s')) >= 0.9"
         pattern)
  in
  (* machine-checkable markers for ci.sh's optimizer smoke step *)
  Printf.printf "opt-smoke: never-loses=%s\n" (if !never_lost then "yes" else "no");
  Printf.printf "opt-smoke: results-identical=%s\n" (if !identical then "yes" else "no");
  Printf.printf "opt-smoke: plans-differ=%s\n"
    (if has "genomic seed" plan_resembles then "yes" else "no");
  note "shape: genomic paths should win by 10x+; relational paths stay within noise"

(* ================================================================== *)
(* VEC — vectorized scans: packed kernels vs tuple-at-a-time           *)
(* ================================================================== *)

let vec_bench () =
  let module Par = Genalg_par.Par in
  let module Sequence = Genalg_gdt.Sequence in
  heading "VEC" "Vectorized scans: packed word-level kernels vs tuple-at-a-time";
  let n =
    match Sys.getenv_opt "GENALG_VEC_N" with
    | Some s -> (try max 100 (int_of_string s) with Failure _ -> 4_000)
    | None -> 4_000
  in
  let motif = "ACGTTGCAGGATTACCAGTTGACA" (* 24-mer, planted in ~1/8 rows *) in
  note "%d DNA reads of 400-800 bases (GENALG_VEC_N overrides); motif |%d|"
    n (String.length motif);
  let ok = function Ok v -> v | Error m -> failwith m in
  let db = Db.create () in
  Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default;
  let actor = "bench" in
  ignore (ok (Exec.query db ~actor "CREATE TABLE reads (id int, seq dna)"));
  let _, reads_t = Option.get (Db.resolve db ~actor "reads") in
  let r = rng () in
  for i = 1 to n do
    let len = 400 + (i * 97 mod 400) + (i mod 4) (* every residue mod 4 *) in
    let s = Bytes.of_string (Genalg_synth.Seqgen.dna_string r len) in
    if i mod 8 = 0 then
      Bytes.blit_string motif 0 s (i * 131 mod (len - String.length motif))
        (String.length motif);
    ignore
      (Genalg_storage.Table.insert_exn reads_t
         [| D.Int i;
            D.Opaque ("dna", Sequence.to_bytes (Sequence.dna (Bytes.to_string s))) |])
  done;
  let workloads =
    [
      ("gc", "SELECT id FROM reads WHERE gc_content(seq) >= 0.52");
      ("len", "SELECT id FROM reads WHERE length(seq) > 590");
      ("contains", Printf.sprintf "SELECT id FROM reads WHERE contains(seq, '%s')" motif);
      ( "combo",
        Printf.sprintf
          "SELECT id FROM reads WHERE gc_content(seq) >= 0.48 AND contains(seq, '%s')"
          motif );
    ]
  in
  let rows_of sql =
    match ok (Exec.query db ~actor sql) with
    | Exec.Rows rs -> rs.Exec.rows
    | _ -> failwith "expected rows"
  in
  (* each timed run starts from cleared statement caches, or the result
     cache would serve every repeat *)
  let timed_rows sql =
    let rows = ref [] in
    let t =
      measure ~runs:3 (fun () ->
          Exec.clear_statement_caches ();
          rows := rows_of sql)
    in
    (!rows, t)
  in
  (* -- single core: tuple-at-a-time vs vectorized -------------------- *)
  Par.set_jobs 1;
  Exec.set_vectorized_enabled false;
  let tuple = List.map (fun (name, sql) -> (name, timed_rows sql)) workloads in
  Exec.set_vectorized_enabled true;
  let vec = List.map (fun (name, sql) -> (name, timed_rows sql)) workloads in
  let identical =
    List.for_all2 (fun (_, (r1, _)) (_, (r2, _)) -> r1 = r2) tuple vec
  in
  let speedup_of name =
    let _, t_t = List.assoc name tuple and _, t_v = List.assoc name vec in
    t_t /. Float.max t_v 1e-9
  in
  print_table
    [ "workload"; "rows out"; "tuple"; "vectorized"; "speedup" ]
    (List.map
       (fun (name, (rows, t_t)) ->
         let _, t_v = List.assoc name vec in
         [ name; string_of_int (List.length rows); fmt_ms t_t; fmt_ms t_v;
           Printf.sprintf "%.1fx" (t_t /. Float.max t_v 1e-9) ])
       tuple);
  (* -- allocation audit: bytes allocated per scanned row ------------- *)
  let alloc_per_row sql =
    Exec.clear_statement_caches ();
    let b0 = Gc.allocated_bytes () in
    ignore (rows_of sql);
    (Gc.allocated_bytes () -. b0) /. float_of_int n
  in
  let gc_sql = List.assoc "gc" workloads in
  Exec.set_vectorized_enabled false;
  let alloc_tuple = alloc_per_row gc_sql in
  Exec.set_vectorized_enabled true;
  let alloc_vec = alloc_per_row gc_sql in
  note "gc workload allocation: %.0f B/row tuple -> %.0f B/row vectorized"
    alloc_tuple alloc_vec;
  (* -- jobs scaling: chunks partition across the domain pool --------- *)
  let jobs_n = max 4 (Par.default_jobs ()) in
  let scale_sql = List.assoc "combo" workloads in
  let rows_j1, t_j1 = timed_rows scale_sql in
  let curve =
    List.filter_map
      (fun j ->
        if j = 1 then Some (1, rows_j1, t_j1)
        else if j > jobs_n then None
        else begin
          Par.set_jobs j;
          let rows, t = timed_rows scale_sql in
          Some (j, rows, t)
        end)
      (List.sort_uniq compare [ 1; 2; 4; jobs_n ])
  in
  Par.set_jobs 1;
  let jobs_identical = List.for_all (fun (_, rows, _) -> rows = rows_j1) curve in
  print_table
    [ "combo workload"; "time"; "vs jobs=1" ]
    (List.map
       (fun (j, _, t) ->
         [ Printf.sprintf "jobs=%d" j; fmt_ms t;
           Printf.sprintf "%.1fx" (t_j1 /. Float.max t 1e-9) ])
       curve);
  (* -- packed k-mer extraction feeding batch alignment --------------- *)
  let k = 12 in
  let seed = ref 0 in
  String.iteri
    (fun i c ->
      if i < k then
        seed := (!seed lsl 2)
                lor (match c with 'A' -> 0 | 'C' -> 1 | 'G' -> 2 | _ -> 3))
    motif;
  let seqs =
    Genalg_storage.Table.fold reads_t ~init:[] ~f:(fun acc _ row ->
        match row.(1) with
        | D.Opaque (_, data) -> (
            match Sequence.of_bytes data with Ok s -> s :: acc | Error _ -> acc)
        | _ -> acc)
  in
  let hits = ref [] in
  let t_kmer =
    measure ~runs:3 (fun () ->
        hits :=
          List.fold_left
            (fun acc s ->
              Sequence.fold_kmers ~k
                (fun acc i h -> if h = !seed then (s, i) :: acc else acc)
                acc s)
            [] seqs)
  in
  let pairs =
    Array.of_list
      (List.map
         (fun (s, i) ->
           let len = min (String.length motif) (Sequence.length s - i) in
           (Sequence.to_string (Sequence.sub s ~pos:i ~len), motif))
         !hits)
  in
  let scores = ref [||] in
  let t_align =
    measure ~runs:3 (fun () -> scores := Genalg_align.Batch.score_pairs pairs)
  in
  note "k-mer seeds: %d hits of the motif's first %d-mer in %s; %d alignments in %s"
    (List.length !hits) k (fmt_ms t_kmer) (Array.length pairs) (fmt_ms t_align);
  (* machine-checkable markers for ci.sh's vectorized smoke step *)
  let twox = speedup_of "gc" >= 2. && speedup_of "combo" >= 2. in
  Printf.printf "vec-smoke: single-core-2x=%s\n" (if twox then "yes" else "no");
  Printf.printf "vec-smoke: results-identical=%s\n" (if identical then "yes" else "no");
  Printf.printf "vec-smoke: jobs-results-identical=%s\n"
    (if jobs_identical then "yes" else "no");
  note "shape: kernels never decode, so gc/len win big; contains wins the";
  note "decode+copy it skips; jobs>1 multiplies on multi-core hosts"

(* ================================================================== *)

(* SHARD: the scatter-gather coordinator. nproc may be 1, so the scan
   scaling gate has to come from partition pruning (a WHERE conjunct
   pinning the partition column routes to one shard, which scans ~1/N of
   the rows), not from parallel shard execution. Every query varies its
   literals and clears the statement caches so the result cache cannot
   serve repeats. *)
let shard_bench () =
  heading "SHARD"
    "Sharded scatter-gather: partition pruning, partial aggregates, failover";
  let module Cluster = Genalg_shard.Cluster in
  let module Fault = Genalg_fault.Fault in
  Obs.set_enabled true;
  let n =
    match Sys.getenv_opt "GENALG_SHARD_N" with
    | Some s -> (try max 500 (int_of_string s) with Failure _ -> 8_000)
    | None -> 8_000
  in
  let orgs = 64 in
  note "%d sample rows over %d organisms (GENALG_SHARD_N overrides)" n orgs;
  let actor = "bench" in
  let attach db = Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default in
  let create_sql =
    "CREATE TABLE samples (organism string, accession string, len int, score \
     float)"
  in
  let row_sql i =
    Printf.sprintf "('org%02d', 'ACC%05d', %d, %.2f)" (i mod orgs) i
      (200 + (i * 37 mod 600))
      (float_of_int (i * 13 mod 100) /. 100.)
  in
  let batches =
    let rec chunk lo acc =
      if lo >= n then List.rev acc
      else begin
        let hi = min n (lo + 250) in
        let rows = List.init (hi - lo) (fun k -> row_sql (lo + k)) in
        chunk hi
          (Printf.sprintf "INSERT INTO samples VALUES %s"
             (String.concat ", " rows)
          :: acc)
      end
    in
    chunk 0 []
  in
  let ok = function Ok v -> v | Error m -> failwith m in
  let load_cluster cl =
    ignore (ok (Cluster.query cl ~actor create_sql));
    List.iter (fun sql -> ignore (ok (Cluster.query cl ~actor sql))) batches
  in
  let base = Db.create () in
  attach base;
  ignore (ok (Exec.query base ~actor create_sql));
  List.iter (fun sql -> ignore (ok (Exec.query base ~actor sql))) batches;
  (* pruned read mix: aggregates and a top-k filter scan, literals varied *)
  let query_at i =
    let org = i * 7 mod orgs and thr = 200 + (i * 53 mod 600) in
    if i mod 2 = 0 then
      Printf.sprintf
        "SELECT count(*), sum(len), avg(score) FROM samples WHERE organism = \
         'org%02d' AND len >= %d"
        org thr
    else
      Printf.sprintf
        "SELECT accession, len FROM samples WHERE organism = 'org%02d' AND \
         len < %d ORDER BY len, accession LIMIT 5"
        org thr
  in
  (* -- scan scaling across shard counts ------------------------------ *)
  let q_scale = 96 in
  let run_mix cl =
    for i = 0 to q_scale - 1 do
      Exec.clear_statement_caches ();
      ignore (ok (Cluster.query cl ~actor (query_at i)))
    done
  in
  let scaling =
    List.map
      (fun shards ->
        let cl = ok (Cluster.create_local ~attach ~replicas:false ~shards ()) in
        let _, t_load = time (fun () -> load_cluster cl) in
        (* warm pass so domain pools and caches exist everywhere *)
        for i = 0 to 7 do
          Exec.clear_statement_caches ();
          ignore (ok (Cluster.query cl ~actor (query_at i)))
        done;
        let _, t = time (fun () -> run_mix cl) in
        (shards, cl, t_load, float_of_int q_scale /. Float.max t 1e-9))
      [ 1; 2; 4; 8 ]
  in
  let qps_of s =
    let _, _, _, qps = List.find (fun (s', _, _, _) -> s' = s) scaling in
    qps
  in
  print_table
    [ "shards"; "load"; "pruned qps"; "vs 1 shard" ]
    (List.map
       (fun (s, _, t_load, qps) ->
         [ string_of_int s; fmt_ms t_load; Printf.sprintf "%.0f" qps;
           Printf.sprintf "%.1fx" (qps /. Float.max (qps_of 1) 1e-9) ])
       scaling);
  let cl4 =
    let _, cl, _, _ = List.find (fun (s, _, _, _) -> s = 4) scaling in
    cl
  in
  let r = Cluster.last_report cl4 in
  note "pruning: last 4-shard scatter hit %d of 4 shards (gathered=%d)"
    r.Cluster.targets r.Cluster.gathered;
  (* -- results identical to the single-node engine -------------------- *)
  let corpus =
    [
      "SELECT count(*) FROM samples";
      "SELECT organism, count(*), avg(len) FROM samples GROUP BY organism \
       ORDER BY organism LIMIT 10";
      "SELECT count(*), min(score), max(len) FROM samples WHERE len >= 400";
      "SELECT accession FROM samples WHERE organism = 'org03' ORDER BY \
       accession LIMIT 20";
      "SELECT organism, sum(len) FROM samples GROUP BY organism HAVING \
       count(*) >= 50 ORDER BY organism";
      "SELECT upper(organism), count(*) FROM samples GROUP BY \
       upper(organism) ORDER BY upper(organism) LIMIT 5";
      "SELECT count(*) FROM samples WHERE organism = 'no-such-organism'";
      "SELECT avg(len) FROM samples WHERE organism = 'org00'";
      "SELECT missing FROM samples";
    ]
  in
  let identical =
    List.for_all
      (fun sql ->
        Exec.clear_statement_caches ();
        let a = Cluster.query cl4 ~actor sql in
        Exec.clear_statement_caches ();
        a = Exec.query base ~actor sql)
      corpus
  in
  (* -- zero failed queries under a crash-looping primary -------------- *)
  let fcl = ok (Cluster.create_local ~attach ~replicas:true ~shards:4 ()) in
  load_cluster fcl;
  let spec = "seed=7;shard.1.primary:error:p=0.7;shard.2.primary:crash:p=0.35" in
  (match Fault.configure spec with Ok () -> () | Error m -> failwith m);
  let q_fault = 40 in
  let ok_n = ref 0 and same_n = ref 0 in
  for i = 0 to q_fault - 1 do
    let sql = query_at i in
    Exec.clear_statement_caches ();
    let a = Cluster.query fcl ~actor sql in
    Exec.clear_statement_caches ();
    let b = Exec.query base ~actor sql in
    (match a with Ok _ -> incr ok_n | Error _ -> ());
    if a = b then incr same_n
  done;
  Fault.disable ();
  note "fault spec %s" spec;
  note "%d/%d queries answered, %d/%d identical to single-node; %d \
        primary->replica failovers"
    !ok_n q_fault !same_n q_fault
    (Cluster.failovers_total fcl);
  print_endline (Obs.render_table ~prefix:"shard" ());
  (* machine-checkable markers for ci.sh's sharding smoke step *)
  let scaling_ok = qps_of 4 >= 1.6 *. qps_of 1 in
  Printf.printf "shard-smoke: scan-scaling-1.6x=%s\n"
    (if scaling_ok then "yes" else "no");
  Printf.printf "shard-smoke: results-identical=%s\n"
    (if identical then "yes" else "no");
  Printf.printf "shard-smoke: failover-40of40=%s\n"
    (if !ok_n = q_fault && !same_n = q_fault then "yes" else "no");
  note "shape: pruning does the scaling work on a single core - a pinned";
  note "partition column scans ~1/N of the rows; fan-out adds cores when \
        present"

(* ================================================================== *)

(* CLUSTER: durability and self-healing. A persistent 4-shard cluster is
   driven through a crash matrix crossing shard crash-loop faults with
   coordinator restarts (clean close, abandoned-without-close, and
   abandoned with a torn statement-log tail). Every cell writes while
   members are down, queries under the active faults, then restarts and
   heals; all 40 matrix queries must match the single-node engine
   byte-for-byte, and the resync counters must show members replayed at
   most the statements they missed. *)
let cluster_bench () =
  heading "CLUSTER"
    "Cluster durability: crash matrix, bounded resync, manifest recovery";
  let module Cluster = Genalg_shard.Cluster in
  let module Fault = Genalg_fault.Fault in
  Obs.set_enabled true;
  let n =
    match Sys.getenv_opt "GENALG_CLUSTER_N" with
    | Some s -> (try max 200 (int_of_string s) with Failure _ -> 2_000)
    | None -> 2_000
  in
  let orgs = 32 in
  note "%d sample rows over %d organisms (GENALG_CLUSTER_N overrides)" n orgs;
  let actor = "bench" in
  let attach db = Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default in
  let ok = function Ok v -> v | Error m -> failwith m in
  let dir = Filename.temp_file "genalg_cluster_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> Fault.disable (); rm dir) @@ fun () ->
  let create_sql =
    "CREATE TABLE samples (organism string, accession string, len int, score \
     float)"
  in
  let row_sql i =
    Printf.sprintf "('org%02d', 'ACC%05d', %d, %.2f)" (i mod orgs) i
      (200 + (i * 37 mod 600))
      (float_of_int (i * 13 mod 100) /. 100.)
  in
  let base = Db.create () in
  attach base;
  let cl = ref (ok (Cluster.create_local ~attach ~replicas:true ~dir ~shards:4 ())) in
  let both sql =
    Exec.clear_statement_caches ();
    ignore (ok (Cluster.query !cl ~actor sql));
    Exec.clear_statement_caches ();
    ignore (ok (Exec.query base ~actor sql))
  in
  both create_sql;
  let rec load lo =
    if lo < n then begin
      let hi = min n (lo + 250) in
      let rows = List.init (hi - lo) (fun k -> row_sql (lo + k)) in
      both
        (Printf.sprintf "INSERT INTO samples VALUES %s"
           (String.concat ", " rows));
      load hi
    end
  in
  load 0;
  let query_at i =
    let org = i * 7 mod orgs and thr = 200 + (i * 53 mod 600) in
    if i mod 2 = 0 then
      Printf.sprintf
        "SELECT count(*), sum(len), avg(score) FROM samples WHERE organism = \
         'org%02d' AND len >= %d"
        org thr
    else
      Printf.sprintf
        "SELECT accession, len FROM samples WHERE organism = 'org%02d' AND \
         len < %d ORDER BY len, accession LIMIT 5"
        org thr
  in
  let all_serving () =
    Array.for_all (( = ) Cluster.Serving) (Cluster.shard_states !cl)
  in
  let heal () =
    let tries = ref 0 in
    while (not (all_serving ())) && !tries < 80 do
      incr tries;
      Exec.clear_statement_caches ();
      ignore (ok (Cluster.query !cl ~actor "SELECT count(*) FROM samples"))
    done;
    all_serving ()
  in
  let c_replayed = Obs.counter "shard.resync.replayed" in
  let replayed0 = Obs.value c_replayed in
  (* crash matrix: fault spec x coordinator-restart mode. Torn tails ride
     on the abandoned-restart axis (a clean close flushes the tail). *)
  let specs =
    [ None; Some "seed=11;shard.1.primary:error:p=0.6;shard.2.primary:crash:p=0.35" ]
  in
  let restarts = [ `Keep; `Clean_close; `Abandon; `Abandon_torn ] in
  let cells =
    List.concat_map (fun s -> List.map (fun r -> (s, r)) restarts) specs
  in
  let q_per_cell = 5 in
  let qi = ref 0 and wi = ref n in
  let same_n = ref 0 and missed = ref 0 in
  let healed_all = ref true and epochs_kept = ref true in
  List.iter
    (fun (spec, restart) ->
      (match spec with
      | None -> ()
      | Some s ->
          (match Fault.configure s with Ok () -> () | Error m -> failwith m));
      (* writes land while members are down; the statement log holds
         their delta for resync *)
      for _ = 1 to 2 do
        both (Printf.sprintf "INSERT INTO samples VALUES %s" (row_sql !wi));
        incr wi;
        Array.iter
          (fun st -> if st <> Cluster.Serving then incr missed)
          (Cluster.shard_states !cl)
      done;
      (* the cell's matrix queries run under the active faults: failover
         and mirror fallback must keep them byte-identical *)
      for _ = 1 to q_per_cell do
        let sql = query_at !qi in
        incr qi;
        Exec.clear_statement_caches ();
        let a = Cluster.query !cl ~actor sql in
        Exec.clear_statement_caches ();
        if a = Exec.query base ~actor sql then incr same_n
      done;
      Fault.disable ();
      let epochs_before =
        Array.init (Cluster.shard_count !cl) (Cluster.epoch !cl)
      in
      (match restart with
      | `Keep -> ()
      | `Clean_close ->
          Cluster.close !cl;
          cl := ok (Cluster.open_dir ~attach ~dir ())
      | `Abandon | `Abandon_torn ->
          (* coordinator crash: the old handle is simply dropped; every
             statement was flushed to the log when it ran *)
          if restart = `Abandon_torn then begin
            let oc =
              open_out_gen [ Open_append; Open_binary ] 0o600
                (Filename.concat dir "statements.log")
            in
            output_string oc "\x7f\x00torn-tail-garbage\x01\x02";
            close_out oc
          end;
          cl := ok (Cluster.open_dir ~attach ~dir ()));
      if restart <> `Keep then
        Array.iteri
          (fun i e0 -> if Cluster.epoch !cl i < e0 then epochs_kept := false)
          epochs_before;
      if not (heal ()) then healed_all := false)
    cells;
  let replayed = Obs.value c_replayed - replayed0 in
  note "%d/%d matrix queries identical to single-node across %d cells"
    !same_n !qi (List.length cells);
  note "resync replayed %d statements; members missed at most %d" replayed
    !missed;
  print_endline (Cluster.report_text !cl);
  print_endline (Obs.render_table ~prefix:"shard.resync" ());
  (* machine-checkable markers for ci.sh's cluster durability step *)
  Printf.printf "cluster-smoke: crash-matrix-40of40=%s\n"
    (if !same_n = !qi && !qi = q_per_cell * List.length cells then "yes"
     else "no");
  Printf.printf "cluster-smoke: resync-bounded=%s\n"
    (if replayed > 0 && replayed <= !missed then "yes" else "no");
  Printf.printf "cluster-smoke: recovery=%s\n"
    (if !healed_all && !epochs_kept && all_serving () then "ok" else "failed");
  Cluster.close !cl;
  note "shape: restarts replay the statement log over checkpoint images;";
  note "resync ships only each member's delta, so replayed <= missed"

let experiments =
  [
    ("T1", t1); ("F1", f1); ("F2", f2); ("F3", f3);
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5);
    ("E6", e6); ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10);
    ("ABLATE", ablations);
    ("PAR", par_bench);
    ("OPT", opt_bench);
    ("VEC", vec_bench);
    ("CACHE", cache_bench);
    ("AVAIL", avail);
    ("SERVE", serve_bench);
    ("SHARD", shard_bench);
    ("CLUSTER", cluster_bench);
    ("OVERHEAD", overhead);
    ("MICRO", bechamel_suite);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> List.map String.uppercase_ascii ids
    | _ -> List.map fst experiments
  in
  Printf.printf
    "Genomics Algebra reproduction benchmarks (Hammer & Schneider, CIDR 2003)\n";
  Printf.printf "experiments: %s\n" (String.concat ", " requested);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None -> Printf.eprintf "unknown experiment %s\n" id)
    requested;
  Printf.printf "\ntotal benchmark time: %.1f s\n" (Unix.gettimeofday () -. t0)
