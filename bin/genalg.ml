(* The genalg command-line tool: the Genomics Algebra and Unifying
   Database from a shell.

     genalg ops                         list the algebra's operators
     genalg demo -o wh.db               build a demo warehouse
     genalg query wh.db "SELECT ..."    extended SQL against a warehouse
     genalg ask wh.db "find sequences where ..."   biological language
     genalg orfs seqs.fasta             ORF finding over FASTA input
     genalg translate seqs.fasta        six-frame translation
     genalg align A.fasta B.fasta       pairwise alignment
     genalg xml seqs.fasta              FASTA -> GenAlgXML
     genalg serve wh.db                 serve the warehouse over a socket
     genalg connect --socket S          wire-protocol client/REPL *)

open Cmdliner
module Seq = Genalg_gdt.Sequence
module Ops = Genalg_core.Ops
module Db = Genalg_storage.Database
module Exec = Genalg_sqlx.Exec
module Obs = Genalg_obs.Obs
module Par = Genalg_par.Par
module Fault = Genalg_fault.Fault
module Resilience = Genalg_resilience.Resilience
module Cluster = Genalg_shard.Cluster

(* deterministic fault injection (docs/ROBUSTNESS.md); the same spec can
   also arrive via GENALG_FAULTS *)
let fault_flag =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "fault-spec" ] ~docv:"SPEC"
        ~doc:
          "Activate deterministic fault injection, e.g. \
           $(b,seed=7;source.*:error:p=0.3). Clauses are \
           semicolon-separated: $(b,seed=INT) or \
           $(b,site:kind:param...) with kinds error, latency, truncate, \
           corrupt, crash and params p=, after=, times=, s=, frac=, \
           msg=. Overrides $(b,GENALG_FAULTS).")

let apply_faults = function
  | None -> ()
  | Some spec -> (
      match Fault.configure spec with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "error: bad fault spec: %s\n" msg;
          exit 2)

let print_fault_tallies () =
  match Fault.tallies () with
  | [] -> ()
  | tallies ->
      print_newline ();
      Printf.printf "%-24s %8s %9s %7s %9s %10s %9s %8s\n" "fault site"
        "checks" "injected" "errors" "latencies" "truncated" "corrupted"
        "crashes";
      List.iter
        (fun (site, (y : Fault.tally)) ->
          Printf.printf "%-24s %8d %9d %7d %9d %10d %9d %8d\n" site y.Fault.checks
            y.Fault.injected y.Fault.errors y.Fault.latencies y.Fault.truncations
            y.Fault.corruptions y.Fault.crashes)
        tallies

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_fasta path =
  match Genalg_formats.Fasta.parse (read_file path) with
  | Ok records -> records
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 1

let attach db = Genalg_adapter.Adapter.attach db Genalg_core.Builtin.default

(* ---- ops ------------------------------------------------------------- *)

let ops_cmd =
  let run () =
    let sg = Genalg_core.Builtin.create () in
    List.iter
      (fun op ->
        Printf.printf "%-60s %s\n"
          (Genalg_core.Signature.rank_to_string op)
          op.Genalg_core.Signature.doc)
      (Genalg_core.Signature.operators sg);
    Printf.printf "\n%d operators over %d base sorts\n"
      (Genalg_core.Signature.cardinal sg)
      (List.length Genalg_core.Sort.all_base)
  in
  Cmd.v
    (Cmd.info "ops" ~doc:"List every operator of the Genomics Algebra signature")
    Term.(const run $ const ())

(* ---- demo -------------------------------------------------------------- *)

let demo_cmd =
  let run output size seed fault =
    apply_faults fault;
    let rng = Genalg_synth.Rng.make seed in
    let repo_a, repo_b, _ =
      Genalg_synth.Recordgen.overlapping_repositories rng ~size ~overlap:0.4
        ~noise_fraction:0.45 ()
    in
    let open Genalg_etl in
    let src_a = Source.create ~name:"synthbank" Source.Logged Source.Flat_file repo_a in
    let src_b = Source.create ~name:"relbank" Source.Queryable Source.Relational repo_b in
    match Pipeline.create ~sources:[ src_a; src_b ] () with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | Ok pl -> (
        match Pipeline.bootstrap pl with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        | Ok stats -> (
            Printf.printf "loaded %d records, %d genes, %d conflicts\n"
              stats.Loader.entries stats.Loader.genes stats.Loader.conflicts;
            match Db.save (Pipeline.database pl) output with
            | Ok () -> Printf.printf "warehouse written to %s\n" output
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit 1))
  in
  let output =
    Arg.(value & opt string "warehouse.db" & info [ "o"; "output" ] ~doc:"Output file")
  in
  let size =
    Arg.(value & opt int 50 & info [ "n"; "size" ] ~doc:"Records per repository")
  in
  let seed = Arg.(value & opt int 2003 & info [ "seed" ] ~doc:"Random seed") in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Build a demo warehouse from two synthetic repositories and save it")
    Term.(const run $ output $ size $ seed $ fault_flag)

(* ---- query / ask ----------------------------------------------------------- *)

let with_db path f =
  match Db.load path with
  | Error msg ->
      Printf.eprintf "error: cannot load %s: %s\n" path msg;
      exit 1
  | Ok db ->
      attach db;
      f db

let print_outcome db = function
  | Exec.Rows rs -> print_endline (Exec.render db rs)
  | Exec.Affected n -> Printf.printf "(%d rows affected)\n" n
  | Exec.Executed -> print_endline "ok"

(* shared --trace/--stats handling: both enable the metrics layer; trace
   streams completed spans to stderr as JSON lines, stats prints the
   instrument table to stderr afterwards *)
let with_obs ~trace ~stats f =
  if trace || stats then Obs.set_enabled true;
  if trace then
    Obs.add_sink
      (Obs.json_sink ~name:"stderr" (fun line -> Printf.eprintf "%s\n%!" line));
  let result = f () in
  if stats then Printf.eprintf "%s\n" (Obs.render_table ());
  result

let trace_flag =
  Cmdliner.Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream completed spans to stderr as JSON lines")

(* degree of parallelism for the whole process (scans, joins, kernels);
   the default comes from GENALG_JOBS or the core count *)
let jobs_flag =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Degree of parallelism: N-1 worker domains plus the main one. \
           Defaults to $(b,GENALG_JOBS) when set, else the recommended \
           domain count. $(b,--jobs 1) forces sequential execution.")

let apply_jobs = function None -> () | Some n -> Par.set_jobs n

let stats_flag =
  Cmdliner.Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the metrics table to stderr when done")

let query_cmd =
  let run path actor trace stats jobs fault sql =
    apply_jobs jobs;
    apply_faults fault;
    with_db path (fun db ->
        with_obs ~trace ~stats (fun () ->
            match Exec.query db ~actor sql with
            | Ok outcome ->
                print_outcome db outcome;
                (* persist mutations (INSERT/DELETE/DDL/ANALYZE) so a
                   one-shot write survives into the next invocation;
                   read-only statements leave the image untouched *)
                (match outcome with
                | Exec.Rows _ -> ()
                | Exec.Affected _ | Exec.Executed -> (
                    match Db.save db path with
                    | Ok () -> ()
                    | Error msg ->
                        Printf.eprintf "error: could not save %s: %s\n" path msg;
                        exit 1))
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit 1))
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DB") in
  let sql = Arg.(required & pos 1 (some string) None & info [] ~docv:"SQL") in
  let actor =
    Arg.(value & opt string "biologist" & info [ "actor" ] ~doc:"Acting user")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run an extended-SQL statement against a saved warehouse")
    Term.(
      const run $ path $ actor $ trace_flag $ stats_flag $ jobs_flag
      $ fault_flag $ sql)

let ask_cmd =
  let run path actor question show_sql trace stats jobs =
    apply_jobs jobs;
    with_db path (fun db ->
        with_obs ~trace ~stats (fun () ->
            (if show_sql then
               match Genalg_biolang.Biolang.compile_to_sql question with
               | Ok sql -> Printf.printf "-- %s\n" sql
               | Error _ -> ());
            match Genalg_biolang.Biolang.run_rendered db ~actor question with
            | Ok text -> print_endline text
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit 1))
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DB") in
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUESTION") in
  let actor =
    Arg.(value & opt string "biologist" & info [ "actor" ] ~doc:"Acting user")
  in
  let show_sql =
    Arg.(value & flag & info [ "show-sql" ] ~doc:"Print the generated SQL")
  in
  Cmd.v
    (Cmd.info "ask"
       ~doc:"Ask a question in the biological query language against a warehouse")
    Term.(
      const run $ path $ actor $ q $ show_sql $ trace_flag $ stats_flag
      $ jobs_flag)

(* ---- stats ------------------------------------------------------------- *)

let stats_cmd =
  let run path socket actor jobs fault sql =
    apply_jobs jobs;
    apply_faults fault;
    (* against a running server: fetch serve.* counters over the wire
       (the server's stats page), optionally tracing one statement *)
    match socket with
    | Some sock -> (
        let module Client = Genalg_serve.Client in
        let module Proto = Genalg_serve.Protocol in
        match Client.connect ~actor ~socket:sock () with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        | Ok c ->
            (match sql with
            | None -> ()
            | Some sql -> (
                match Client.query c sql with
                | Ok (Proto.Rows { columns; rows }) ->
                    print_endline (Client.render_rows ~columns rows);
                    print_newline ()
                | Ok (Proto.Affected n) -> Printf.printf "(%d rows affected)\n" n
                | Ok (Proto.Error_reply { code; message }) ->
                    Printf.eprintf "error [%s]: %s\n"
                      (Proto.error_code_to_string code) message
                | Ok _ -> ()
                | Error msg ->
                    Printf.eprintf "error: %s\n" msg;
                    exit 1));
            (match Client.stats c with
            | Ok text -> print_endline text
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit 1);
            Client.close c)
    | None ->
    let path =
      match path with
      | Some p -> p
      | None ->
          Printf.eprintf "error: a DB path (or --socket) is required\n";
          exit 2
    in
    with_db path (fun db ->
        Printf.printf "%-8s %-12s %8s %6s %-24s %s\n" "space" "table" "rows"
          "pages" "indexed" "genomic";
        List.iter
          (fun (space, t) ->
            let module Table = Genalg_storage.Table in
            let module Schema = Genalg_storage.Schema in
            let genomic_cols =
              List.filter
                (fun (c : Schema.column) ->
                  Table.has_genomic_index t ~column:c.Schema.name)
                (Schema.columns (Table.schema t))
              |> List.map (fun (c : Schema.column) -> c.Schema.name)
            in
            Printf.printf "%-8s %-12s %8d %6d %-24s %s\n"
              (match space with Db.Public -> "public" | Db.User u -> u)
              (Table.name t) (Table.row_count t) (Table.page_count t)
              (String.concat "," (Table.indexed_columns t))
              (String.concat "," genomic_cols))
          (Db.tables db);
        (* ANALYZE statistics catalog: what the cost-based planner sees *)
        let analyzed =
          List.filter
            (fun (_, t) -> Genalg_storage.Table.has_stats t)
            (Db.tables db)
        in
        if analyzed <> [] then begin
          let module Table = Genalg_storage.Table in
          let module Dtype = Genalg_storage.Dtype in
          print_newline ();
          Printf.printf "%-12s %-12s %8s %8s %6s %8s %-12s %-12s\n" "table"
            "column" "rows" "ndv" "nulls" "buckets" "min" "max";
          List.iter
            (fun (_, t) ->
              List.iter
                (fun (col, (s : Table.column_stats)) ->
                  let disp = function
                    | None -> "-"
                    | Some v -> Dtype.value_to_display v
                  in
                  Printf.printf "%-12s %-12s %8d %8d %6d %8d %-12s %-12s\n"
                    (Table.name t) col s.Table.rows s.Table.distinct
                    s.Table.nulls
                    (match s.Table.histogram with
                    | Some h -> Array.length h.Table.bounds
                    | None -> 0)
                    (disp s.Table.min_value) (disp s.Table.max_value))
                (Table.stats_snapshot t))
            analyzed
        end;
        (match sql with
        | None -> ()
        | Some sql -> (
            Obs.set_enabled true;
            Obs.reset ();
            print_newline ();
            match Exec.query db ~actor sql with
            | Ok outcome ->
                print_outcome db outcome;
                print_newline ();
                print_endline (Obs.render_table ())
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit 1));
        (* cache activity so far in this process (always-on tallies, so
           this works without --sql / the metrics layer) *)
        let module Lru = Genalg_cache.Lru in
        print_newline ();
        Printf.printf "%-12s %8s %8s %9s %9s %13s\n" "cache" "hits" "misses"
          "hit rate" "evictions" "invalidations";
        List.iter
          (fun (name, (s : Lru.stats)) ->
            let total = s.Lru.hits + s.Lru.misses in
            Printf.printf "%-12s %8d %8d %9s %9d %13d\n" name s.Lru.hits
              s.Lru.misses
              (if total = 0 then "-"
               else
                 Printf.sprintf "%.0f%%"
                   (100. *. float_of_int s.Lru.hits /. float_of_int total))
              s.Lru.evictions s.Lru.invalidations)
          (Lru.registry_stats ());
        (* fault-injection activity (always-on tallies, like the cache
           table); silent unless a spec fired *)
        print_fault_tallies ())
  in
  let path = Arg.(value & pos 0 (some file) None & info [] ~docv:"DB") in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Report a running server's counters over the wire instead of \
             opening a database file")
  in
  let actor =
    Arg.(value & opt string "biologist" & info [ "actor" ] ~doc:"Acting user")
  in
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "sql" ] ~docv:"SQL"
          ~doc:"Also run this statement and print the metrics it generates")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Show warehouse table inventory (rows, pages, indexes), optionally \
          with the metrics of a traced statement; with --socket, report a \
          running server's serve.* counters over the wire")
    Term.(const run $ path $ socket $ actor $ jobs_flag $ fault_flag $ sql)

(* ---- repl -------------------------------------------------------------------- *)

let repl_cmd =
  let run path actor jobs =
    apply_jobs jobs;
    with_db path (fun db ->
        Printf.printf
          "genalg interactive shell — extended SQL or biological language.\n\
           Commands: \\tables  \\ops  \\vocab  \\quit\n\
           Anything starting with SELECT/INSERT/CREATE/DELETE runs as SQL;\n\
           everything else is tried as a biological query.\n\n";
        let rec loop () =
          Printf.printf "%s> %!" actor;
          match In_channel.input_line stdin with
          | None -> print_newline ()
          | Some line -> (
              let line = String.trim line in
              match String.lowercase_ascii line with
              | "" -> loop ()
              | "\\quit" | "\\q" | "exit" | "quit" -> ()
              | "\\tables" ->
                  List.iter
                    (fun (space, t) ->
                      Printf.printf "  %-12s %s %s (%d rows)\n"
                        (match space with
                        | Db.Public -> "public"
                        | Db.User u -> u)
                        (Genalg_storage.Table.name t)
                        (Genalg_storage.Schema.to_string (Genalg_storage.Table.schema t))
                        (Genalg_storage.Table.row_count t))
                    (Db.tables db);
                  loop ()
              | "\\ops" ->
                  List.iter
                    (fun op ->
                      Printf.printf "  %s\n" (Genalg_core.Signature.rank_to_string op))
                    (Genalg_core.Signature.operators Genalg_core.Builtin.default);
                  loop ()
              | "\\vocab" ->
                  List.iter
                    (fun (phrase, col) -> Printf.printf "  %-20s -> %s\n" phrase col)
                    (Genalg_biolang.Biolang.vocabulary ());
                  loop ()
              | lower ->
                  let is_sql =
                    List.exists
                      (fun kw ->
                        String.length lower >= String.length kw
                        && String.sub lower 0 (String.length kw) = kw)
                      [ "select"; "insert"; "create"; "delete"; "analyze"; "drop" ]
                  in
                  (if is_sql then
                     match Exec.query db ~actor line with
                     | Ok outcome -> print_outcome db outcome
                     | Error msg -> Printf.printf "error: %s\n" msg
                   else
                     match Genalg_biolang.Biolang.run_rendered db ~actor line with
                     | Ok text -> print_endline text
                     | Error msg -> Printf.printf "error: %s\n" msg);
                  loop ())
        in
        loop ())
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DB") in
  let actor =
    Arg.(value & opt string "biologist" & info [ "actor" ] ~doc:"Acting user")
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL/biolang shell over a saved warehouse")
    Term.(const run $ path $ actor $ jobs_flag)

(* ---- serve / connect --------------------------------------------------------- *)

module Server = Genalg_serve.Server
module Client = Genalg_serve.Client
module Proto = Genalg_serve.Protocol

let socket_flag ~doc =
  Cmdliner.Arg.(
    value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let run path socket max_sessions max_rows max_query_s shard_id shard_count
      jobs fault =
    apply_jobs jobs;
    apply_faults fault;
    let socket_path = Option.value socket ~default:(path ^ ".sock") in
    let topology =
      match Server.shard_topology ~shard_id ~shard_count with
      | Ok t -> t
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
    in
    let config =
      {
        (Server.default_config ~socket_path) with
        Server.max_sessions;
        max_rows;
        max_query_s;
        attach = (fun db -> attach db);
        topology;
      }
    in
    match Server.create config ~db_path:path with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | Ok server ->
        Printf.printf
          "genalg server: %s\n\
           socket: %s\n\
           wal: %s (%d statements replayed)\n\
           limits: %d sessions, %d rows/query, %.1fs/query\n\
           connect with: genalg connect --socket %s\n\
           ^C for clean shutdown (checkpoint + WAL truncate)\n\
           %!"
          path socket_path
          (Genalg_storage.Wal.wal_path path)
          (Server.replayed server) max_sessions max_rows max_query_s
          socket_path;
        let stop_handler _ = Server.stop server in
        ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop_handler));
        ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop_handler));
        (match Server.serve server with
        | Ok () -> print_endline "server stopped (checkpointed)"
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DB") in
  let socket =
    socket_flag ~doc:"Unix-domain socket to listen on (default $(i,DB).sock)"
  in
  let max_sessions =
    Arg.(value & opt int 32 & info [ "max-sessions" ] ~doc:"Concurrent session cap")
  in
  let max_rows =
    Arg.(value & opt int 100_000 & info [ "max-rows" ] ~doc:"Per-query result row cap")
  in
  let max_query_s =
    Arg.(
      value & opt float 5.0
      & info [ "max-query-s" ] ~doc:"Per-query wall-clock cap in seconds")
  in
  let shard_id =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-id" ] ~docv:"I"
          ~doc:
            "Announce this server as shard $(docv) of a cluster in the v2 \
             WELCOME topology handshake (see docs/SHARDING.md)")
  in
  let shard_count =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-count" ] ~docv:"N"
          ~doc:"Total shard count announced alongside $(b,--shard-id)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a warehouse over a Unix-domain socket: concurrent sessions, \
          BEGIN/COMMIT transactions with snapshot reads, group-commit WAL \
          (see docs/SERVING.md)")
    Term.(
      const run $ path $ socket $ max_sessions $ max_rows $ max_query_s
      $ shard_id $ shard_count $ jobs_flag $ fault_flag)

let print_reply = function
  | Proto.Rows { columns; rows } ->
      print_endline (Client.render_rows ~columns rows)
  | Proto.Affected n -> Printf.printf "(%d rows affected)\n" n
  | Proto.Ok_reply { info } -> print_endline info
  | Proto.Error_reply { code; message } ->
      Printf.printf "error [%s]: %s\n" (Proto.error_code_to_string code) message
  | Proto.Stats_text text -> print_endline text
  | Proto.Pong -> print_endline "pong"
  | Proto.Resync_state { epoch; applied_lsn } ->
      Printf.printf "resync: epoch %d, applied lsn %d\n" epoch applied_lsn
  | Proto.Welcome _ | Proto.Bye -> ()

let connect_cmd =
  (* coordinator mode: --shards turns the client into a scatter-gather
     coordinator over N genalg-serve shards (docs/SHARDING.md) *)
  let run_cluster ~actor ~command ~sockets ~replicas ~dir ~fault =
    apply_faults fault;
    Obs.set_enabled true;
    let cluster =
      (* a state directory that already holds a manifest is an earlier
         coordinator's life: recover it instead of starting fresh *)
      match dir with
      | Some d when Sys.file_exists (Genalg_shard.Manifest.path d) ->
          Cluster.open_dir ~attach ~dir:d ()
      | _ -> Cluster.create_remote ~attach ?replicas ?dir ~actor ~sockets ()
    in
    match cluster with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | Ok cl -> (
        let dispatch line =
          match String.lowercase_ascii (String.trim line) with
          | "\\stats" ->
              print_endline (Obs.render_table ~prefix:"shard" ());
              Ok ()
          | "\\report" ->
              print_string (Cluster.report_text cl);
              Ok ()
          | _ -> (
              match Cluster.query cl ~actor line with
              | Ok outcome ->
                  print_outcome (Cluster.mirror cl) outcome;
                  Ok ()
              | Error msg ->
                  Printf.printf "error: %s\n" msg;
                  Ok ())
        in
        match command with
        | Some line ->
            ignore (dispatch line);
            Cluster.close cl
        | None ->
            Printf.printf
              "coordinator over %d shard(s) as %s\n\
               SQL scatters across the shards; writes go everywhere.\n\
               Commands: \\stats  \\report  \\quit\n\n"
              (Cluster.shard_count cl) actor;
            let rec loop () =
              Printf.printf "%s@cluster> %!" actor;
              match In_channel.input_line stdin with
              | None -> print_newline ()
              | Some line -> (
                  match String.lowercase_ascii (String.trim line) with
                  | "" -> loop ()
                  | "\\quit" | "\\q" | "exit" | "quit" -> ()
                  | _ ->
                      ignore (dispatch line);
                      loop ())
            in
            loop ();
            Cluster.close cl)
  in
  let run_single socket actor command =
    let socket =
      match socket with
      | Some s -> s
      | None ->
          Printf.eprintf "error: --socket is required\n";
          exit 2
    in
    match Client.connect ~actor ~socket () with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | Ok c -> (
        let dispatch line =
          match String.lowercase_ascii (String.trim line) with
          | "begin" -> Result.map (fun () -> ()) (Client.begin_ c)
          | "commit" -> Client.commit c
          | "rollback" -> Client.rollback c
          | "\\stats" -> Result.map print_endline (Client.stats c)
          | "\\shutdown" -> Client.shutdown c ~dirty:false
          | _ -> (
              match Client.query c line with
              | Ok reply ->
                  print_reply reply;
                  Ok ()
              | Error _ as e -> Result.map ignore e)
        in
        match command with
        | Some line -> (
            (* one-shot: run a single statement and exit *)
            match dispatch line with
            | Ok () -> Client.close c
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit 1)
        | None ->
            Printf.printf
              "connected to %s as %s (session %d)\n\
               SQL statements run remotely; BEGIN/COMMIT/ROLLBACK control \
               the transaction.\n\
               Commands: \\stats  \\shutdown  \\quit\n\n"
              socket actor (Client.session_id c);
            let rec loop () =
              Printf.printf "%s@%d> %!" actor (Client.session_id c);
              match In_channel.input_line stdin with
              | None -> print_newline ()
              | Some line -> (
                  match String.lowercase_ascii (String.trim line) with
                  | "" -> loop ()
                  | "\\quit" | "\\q" | "exit" | "quit" -> ()
                  | _ -> (
                      match dispatch line with
                      | Ok () -> loop ()
                      | Error msg ->
                          Printf.printf "connection error: %s\n" msg))
            in
            loop ();
            Client.close c)
  in
  let run socket actor command shards replicas dir fault =
    match shards with
    | Some socks ->
        let split s = String.split_on_char ',' s |> List.map String.trim in
        run_cluster ~actor ~command ~sockets:(split socks)
          ~replicas:(Option.map split replicas) ~dir ~fault
    | None -> run_single socket actor command
  in
  let socket = socket_flag ~doc:"Server socket (from $(b,genalg serve))" in
  let shards =
    Arg.(
      value
      & opt (some string) None
      & info [ "shards" ] ~docv:"SOCK,..."
          ~doc:
            "Comma-separated shard sockets: act as a scatter-gather \
             coordinator over these $(b,genalg serve) processes instead of \
             a single-server client (see docs/SHARDING.md)")
  in
  let replicas =
    Arg.(
      value
      & opt (some string) None
      & info [ "replicas" ] ~docv:"SOCK,..."
          ~doc:
            "Replica sockets paired positionally with $(b,--shards); a \
             shard whose primary dies fails over to its replica")
  in
  let state_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Coordinator state directory: persists the manifest, the \
             statement log and checkpoint images so a restarted \
             coordinator recovers routing state and resyncs its shards \
             (a directory already holding a manifest is reopened; see \
             docs/SHARDING.md)")
  in
  let actor =
    Arg.(value & opt string "biologist" & info [ "actor" ] ~doc:"Acting user")
  in
  let command =
    Arg.(
      value
      & opt (some string) None
      & info [ "c"; "command" ] ~docv:"SQL"
          ~doc:"Run one statement (or BEGIN/COMMIT/ROLLBACK/\\\\stats) and exit")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Connect to a running genalg server: remote SQL REPL over the \
             wire protocol, or a scatter-gather coordinator with \
             $(b,--shards)")
    Term.(
      const run $ socket $ actor $ command $ shards $ replicas $ state_dir
      $ fault_flag)

(* ---- orfs -------------------------------------------------------------------- *)

let orfs_cmd =
  let run path min_length =
    List.iter
      (fun (r : Genalg_formats.Fasta.record) ->
        let orfs = Ops.find_orfs ~min_length r.Genalg_formats.Fasta.sequence in
        Printf.printf ">%s: %d ORFs >= %d nt\n" r.Genalg_formats.Fasta.id
          (List.length orfs) min_length;
        List.iteri
          (fun i orf ->
            let protein = Ops.orf_protein r.Genalg_formats.Fasta.sequence orf in
            Printf.printf "  orf%d %s frame %d at %d..%d: %s\n" (i + 1)
              (match orf.Ops.strand with Ops.Forward -> "+" | Ops.Reverse -> "-")
              orf.Ops.frame orf.Ops.start
              (orf.Ops.start + orf.Ops.length)
              (Seq.to_string protein))
          orfs)
      (load_fasta path)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FASTA") in
  let min_length =
    Arg.(value & opt int 90 & info [ "m"; "min-length" ] ~doc:"Minimum ORF length (nt)")
  in
  Cmd.v
    (Cmd.info "orfs" ~doc:"Find open reading frames in FASTA sequences")
    Term.(const run $ path $ min_length)

(* ---- translate ------------------------------------------------------------------ *)

let translate_cmd =
  let run path =
    List.iter
      (fun (r : Genalg_formats.Fasta.record) ->
        Printf.printf ">%s\n" r.Genalg_formats.Fasta.id;
        let seq = r.Genalg_formats.Fasta.sequence in
        for frame = 0 to 2 do
          Printf.printf "  +%d %s\n" frame
            (Seq.to_string (Ops.translate_frame ~frame seq))
        done;
        let rc = Seq.reverse_complement seq in
        for frame = 0 to 2 do
          Printf.printf "  -%d %s\n" frame (Seq.to_string (Ops.translate_frame ~frame rc))
        done)
      (load_fasta path)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FASTA") in
  Cmd.v
    (Cmd.info "translate" ~doc:"Six-frame translation of FASTA sequences")
    Term.(const run $ path)

(* ---- align ---------------------------------------------------------------------- *)

let align_cmd =
  let run path_a path_b mode =
    match load_fasta path_a, load_fasta path_b with
    | a :: _, b :: _ ->
        let mode =
          match mode with
          | "global" -> Genalg_align.Pairwise.Global
          | "semiglobal" -> Genalg_align.Pairwise.Semiglobal
          | _ -> Genalg_align.Pairwise.Local
        in
        let aln =
          Genalg_align.Pairwise.align_seq ~mode ~query:a.Genalg_formats.Fasta.sequence
            ~subject:b.Genalg_formats.Fasta.sequence ()
        in
        Format.printf "%a@." Genalg_align.Pairwise.pp aln;
        Printf.printf "resemblance: %.3f\n"
          (Ops.resembles a.Genalg_formats.Fasta.sequence b.Genalg_formats.Fasta.sequence)
    | _ ->
        Printf.eprintf "error: both FASTA files must contain a sequence\n";
        exit 1
  in
  let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY.fasta") in
  let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"SUBJECT.fasta") in
  let mode =
    Arg.(value & opt string "local" & info [ "mode" ] ~doc:"local, global or semiglobal")
  in
  Cmd.v
    (Cmd.info "align" ~doc:"Pairwise-align the first sequences of two FASTA files")
    Term.(const run $ a $ b $ mode)

(* ---- faults ----------------------------------------------------------------------- *)

let faults_cmd =
  let run fault exercise =
    apply_faults fault;
    if not (Fault.active ()) then
      print_endline
        "fault injection: inactive (pass --fault-spec or set GENALG_FAULTS)"
    else begin
      Printf.printf "fault injection: active, seed %d\n" (Fault.seed ());
      Printf.printf "spec: %s\n" (Fault.render_spec ());
      let rules = Fault.rules () in
      Printf.printf "\n%d rule(s):\n" (List.length rules);
      List.iter
        (fun (r : Fault.rule) ->
          Printf.printf "  %-24s %-8s p=%g after=%d times=%s s=%g frac=%g%s\n"
            r.Fault.site
            (Fault.kind_to_string r.Fault.kind)
            r.Fault.p r.Fault.after
            (match r.Fault.times with None -> "inf" | Some n -> string_of_int n)
            r.Fault.seconds r.Fault.fraction
            (if r.Fault.message = "" then ""
             else Printf.sprintf " msg=%S" r.Fault.message))
        rules
    end;
    Printf.printf "\nregistered crash points:\n";
    List.iter (fun site -> Printf.printf "  %s\n" site) (Fault.crash_points ());
    if exercise then begin
      (* a small mediated fan-out so the spec's effects show up in the
         tallies below: three synthetic sources, resilient mediator,
         two identical queries *)
      let rng = Genalg_synth.Rng.make 7 in
      let open Genalg_etl in
      let sources =
        List.init 3 (fun i ->
            Source.create
              ~name:(Printf.sprintf "s%d" i)
              Source.Queryable
              (if i mod 2 = 0 then Source.Relational else Source.Hierarchical)
              (Genalg_synth.Recordgen.repository rng ~size:10
                 ~prefix:(Printf.sprintf "X%d" i) ()))
      in
      let module Mediator = Genalg_mediator.Mediator in
      let med =
        Mediator.create ~resilience:Resilience.default_policy sources
      in
      print_newline ();
      for round = 1 to 2 do
        let _, timing = Mediator.run med Mediator.query_all in
        Printf.printf "exercise round %d: %d/%d sources answered\n" round
          timing.Mediator.sources_answered timing.Mediator.sources_contacted;
        List.iter
          (fun (st : Mediator.source_timing) ->
            Printf.printf "  %-8s %s\n" st.Mediator.source
              (Mediator.status_to_string st.Mediator.status))
          timing.Mediator.per_source
      done
    end;
    print_fault_tallies ()
  in
  let exercise =
    Arg.(
      value & flag
      & info [ "exercise" ]
          ~doc:
            "Run a small mediated fan-out (3 synthetic sources, 2 queries) \
             under the spec and print per-source statuses and tallies")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Show the active fault-injection spec, registered crash points and \
          per-site injection tallies")
    Term.(const run $ fault_flag $ exercise)

(* ---- xml ------------------------------------------------------------------------- *)

let xml_cmd =
  let run path =
    List.iter
      (fun (r : Genalg_formats.Fasta.record) ->
        let v = Genalg_core.Value.VDna r.Genalg_formats.Fasta.sequence in
        print_string (Genalg_xml.Genalgxml.to_string v))
      (load_fasta path)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FASTA") in
  Cmd.v
    (Cmd.info "xml" ~doc:"Emit FASTA sequences as GenAlgXML")
    Term.(const run $ path)

let () =
  (match Fault.configure_env () with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "error: bad GENALG_FAULTS: %s\n" msg;
      exit 2);
  let info =
    Cmd.info "genalg" ~version:"1.0.0"
      ~doc:"The Genomics Algebra and Unifying Database (Hammer & Schneider, CIDR 2003)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ ops_cmd; demo_cmd; query_cmd; ask_cmd; repl_cmd; stats_cmd;
            serve_cmd; connect_cmd; faults_cmd; orfs_cmd; translate_cmd;
            align_cmd; xml_cmd ]))
