(* Shared measurement and table-rendering helpers for the benchmark
   harness. Wall-clock medians for macro experiments; Bechamel handles the
   micro-benchmarks in [main.ml]. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Median wall time of [runs] executions (first run warm-up excluded when
   runs > 2). *)
let measure ?(runs = 5) f =
  let samples =
    List.init runs (fun i ->
        let _, dt = time f in
        (i, dt))
  in
  let usable =
    match samples with
    | _ :: rest when runs > 2 -> List.map snd rest
    | all -> List.map snd all
  in
  let sorted = List.sort Float.compare usable in
  List.nth sorted (List.length sorted / 2)

let ms t = t *. 1000.

let fmt_ms t =
  if t >= 1. then Printf.sprintf "%.2f s" t
  else if t >= 1e-3 then Printf.sprintf "%.2f ms" (t *. 1e3)
  else if t >= 1e-6 then Printf.sprintf "%.1f us" (t *. 1e6)
  else Printf.sprintf "%.0f ns" (t *. 1e9)

let fmt_rate ~unit count t =
  if t <= 0. then "-"
  else begin
    let r = float_of_int count /. t in
    if r >= 1e6 then Printf.sprintf "%.1f M%s/s" (r /. 1e6) unit
    else if r >= 1e3 then Printf.sprintf "%.1f k%s/s" (r /. 1e3) unit
    else Printf.sprintf "%.0f %s/s" r unit
  end

(* Render a padded ASCII table: header row then data rows. *)
let print_table ?(indent = "  ") header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render row =
    let cells =
      List.mapi (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ') row
    in
    indent ^ String.concat "  " cells
  in
  print_endline (render header);
  print_endline
    (indent ^ String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') (Array.sub widths 0 (List.length header)))));
  List.iter (fun r -> print_endline (render r)) rows

let heading id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "================================================================\n"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt
