bench/bench_util.ml: Array Float List Printf String Unix
