bench/main.mli:
