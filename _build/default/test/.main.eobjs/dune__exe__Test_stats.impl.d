test/test_stats.ml: Alcotest Genalg_adapter Genalg_core Genalg_sqlx Genalg_storage List Option Printf Result
