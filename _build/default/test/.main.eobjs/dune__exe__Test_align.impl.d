test/test_align.ml: Alcotest Array Blast Char Distance Genalg_align Genalg_gdt Genalg_synth Lcs List Pairwise Printf Scoring String
