test/test_seqindex.ml: Alcotest Array Genalg_seqindex Genalg_synth Kmer_index Search String Suffix_array
