test/test_adapter.ml: Alcotest Bytes Genalg_adapter Genalg_core Genalg_gdt Genalg_storage Genalg_synth Gene List Option Protein Result Transcript
