test/test_sqlx.ml: Alcotest Array Genalg_adapter Genalg_core Genalg_sqlx Genalg_storage List Printf Result String
