test/test_mediator.ml: Alcotest Entry Genalg_etl Genalg_formats Genalg_gdt Genalg_mediator Genalg_synth List
