test/main.mli:
