test/test_gdt.ml: Alcotest Amino_acid Array Bytes Chromosome Feature Fun Genalg_gdt Gene Genetic_code Genome List Location Nucleotide Option Printf Protein Result Sequence String Transcript Uncertain
