test/test_core.ml: Alcotest Amino_acid Genalg_core Genalg_gdt Genalg_synth Gene Genetic_code List Option Protein Result Sequence String Transcript Uncertain
