test/test_capability.ml: Alcotest Genalg_capability Genalg_core List Printf
