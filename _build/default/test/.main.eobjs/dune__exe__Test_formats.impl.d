test/test_formats.ml: Acedb Alcotest Embl Entry Fasta Feature Genalg_formats Genalg_gdt Genalg_synth Genbank List Location Result Sequence String
