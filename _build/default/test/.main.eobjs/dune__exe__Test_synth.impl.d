test/test_synth.ml: Alcotest Chromosome Feature Genalg_core Genalg_formats Genalg_gdt Genalg_synth Gene Genegen Genome Hashtbl Int List Option Printf Protein Recordgen Rng Seqgen Sequence String
