test/test_storage.ml: Alcotest Array Buffer Bytes Filename Genalg_storage Genalg_synth Hashtbl List Option Printf Result String Sys
