test/test_xml.ml: Alcotest Amino_acid Genalg_core Genalg_gdt Genalg_synth Genalg_xml Gene Genetic_code Genome List Nucleotide Provenance Result Uncertain
