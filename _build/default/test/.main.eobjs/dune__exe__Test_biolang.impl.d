test/test_biolang.ml: Alcotest Genalg_biolang Genalg_core Genalg_etl Genalg_formats Genalg_sqlx Genalg_storage Genalg_synth Genalg_xml List Result String
