test/test_genomic_index.ml: Alcotest Array Genalg_adapter Genalg_core Genalg_gdt Genalg_sqlx Genalg_storage Genalg_synth Int List Option Printf Result Sequence
