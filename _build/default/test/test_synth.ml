(* Unit tests for the synthetic data generators (lib/synth). *)

open Genalg_gdt
open Genalg_synth

let check = Alcotest.check
let tc = Alcotest.test_case

let test_rng_determinism () =
  let a = Rng.make 1 and b = Rng.make 1 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  check (Alcotest.list Alcotest.int) "equal seeds, equal streams" (seq a) (seq b);
  let c = Rng.make 2 in
  check Alcotest.bool "different seed differs" true (seq (Rng.copy c) <> seq (Rng.make 1))

let test_rng_bounds () =
  let r = Rng.make 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    check Alcotest.bool "in range" true (v >= 0 && v < 7);
    let f = Rng.float r in
    check Alcotest.bool "float in [0,1)" true (f >= 0. && f < 1.)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_sample () =
  let r = Rng.make 4 in
  let s = Rng.sample r 5 100 in
  check Alcotest.int "k items" 5 (List.length s);
  check Alcotest.bool "distinct" true (List.length (List.sort_uniq Int.compare s) = 5);
  check Alcotest.bool "sorted" true (List.sort Int.compare s = s);
  check Alcotest.bool "in range" true (List.for_all (fun x -> x >= 0 && x < 100) s)

let test_rng_weighted () =
  let r = Rng.make 5 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 2000 do
    let v = Rng.choose_weighted r [| ("a", 9.); ("b", 1.) |] in
    Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
  done;
  let a = Option.value (Hashtbl.find_opt counts "a") ~default:0 in
  check Alcotest.bool "weights respected" true (a > 1500)

let test_seqgen_gc_bias () =
  let r = Rng.make 6 in
  let high = Seqgen.dna r ~gc:0.9 5000 in
  let low = Seqgen.dna r ~gc:0.1 5000 in
  let gc s = float_of_int (Sequence.gc_count s) /. 5000. in
  check Alcotest.bool "high-GC" true (gc high > 0.85);
  check Alcotest.bool "low-GC" true (gc low < 0.15)

let test_seqgen_alphabets () =
  let r = Rng.make 7 in
  check Alcotest.bool "rna alphabet" true
    (Sequence.alphabet (Seqgen.rna r 100) = Sequence.Rna);
  check Alcotest.bool "protein alphabet" true
    (Sequence.alphabet (Seqgen.protein r 100) = Sequence.Protein)

let test_plant_motif () =
  let r = Rng.make 8 in
  let s = Seqgen.dna r 200 in
  let planted, off = Seqgen.plant_motif r ~motif:"ATTGCCATA" s in
  check Alcotest.bool "motif present at offset" true
    (Sequence.find ~pattern:"ATTGCCATA" planted = Some off
    || Sequence.contains ~pattern:"ATTGCCATA" planted);
  check Alcotest.int "length unchanged" 200 (Sequence.length planted)

let test_mutate () =
  let r = Rng.make 9 in
  let s = Seqgen.dna r 2000 in
  let m = Seqgen.mutate r ~rate:0.1 s in
  let diffs = ref 0 in
  Sequence.iteri (fun i c -> if c <> Sequence.get m i then incr diffs) s;
  check Alcotest.bool "~10% changed" true (!diffs > 100 && !diffs < 320);
  let unchanged = Seqgen.mutate r ~rate:0. s in
  check Alcotest.bool "rate 0 is identity" true (Sequence.equal s unchanged)

let test_homolog_similarity () =
  let r = Rng.make 10 in
  let s = Seqgen.dna r 300 in
  let h = Seqgen.homolog r ~identity:0.9 s in
  let sim = Genalg_core.Ops.resembles s h in
  check Alcotest.bool "homolog is similar" true (sim > 0.5)

let test_genegen_well_formed () =
  let r = Rng.make 11 in
  for i = 1 to 10 do
    let g = Genegen.gene r ~id:(Printf.sprintf "g%d" i) () in
    (* every generated gene decodes to a protein *)
    match Genalg_core.Ops.decode g with
    | Ok p ->
        check Alcotest.char "starts with Met" 'M' (Sequence.get p.Protein.residues 0);
        check Alcotest.bool "no internal stop" true
          (not (Sequence.contains ~pattern:"*" p.Protein.residues))
    | Error msg -> Alcotest.failf "gene %d does not decode: %s" i msg
  done

let test_genegen_exon_structure () =
  let r = Rng.make 12 in
  let g = Genegen.gene r ~exon_count:5 ~id:"g" () in
  check Alcotest.int "five exons" 5 (Gene.exon_count g);
  check Alcotest.int "four introns" 4 (List.length (Gene.introns g));
  (* introns carry canonical GT...AG splice sites *)
  List.iter
    (fun (off, len) ->
      let intron = Sequence.sub g.Gene.dna ~pos:off ~len in
      check Alcotest.char "GT start" 'G' (Sequence.get intron 0);
      check Alcotest.char "AG end" 'G' (Sequence.get intron (len - 1)))
    (Gene.introns g)

let test_chromosome_genes_extractable () =
  let r = Rng.make 13 in
  let chrom, genes = Genegen.chromosome r ~gene_count:5 ~name:"c" () in
  check Alcotest.int "five gene features" 5
    (List.length (Chromosome.features_of_kind chrom Feature.Gene));
  check Alcotest.int "five CDS features" 5
    (List.length (Chromosome.features_of_kind chrom Feature.Cds));
  (* the gene feature's extracted sequence equals the generated gene DNA *)
  List.iter2
    (fun f (g : Gene.t) ->
      let extracted = Chromosome.feature_sequence chrom f in
      check Alcotest.bool ("gene " ^ g.Gene.id) true (Sequence.equal extracted g.Gene.dna))
    (Chromosome.features_of_kind chrom Feature.Gene)
    genes

let test_genome_shape () =
  let r = Rng.make 14 in
  let g = Genegen.genome r ~chromosome_count:3 ~genes_per_chromosome:4 ~organism:"T" () in
  check Alcotest.int "chromosomes" 3 (Genome.chromosome_count g);
  check Alcotest.int "genes" 12 (Genome.gene_count g)

let test_recordgen_repository () =
  let r = Rng.make 15 in
  let repo = Recordgen.repository r ~size:50 ~prefix:"XYZ" () in
  check Alcotest.int "size" 50 (List.length repo);
  let accs = List.map (fun (e : Genalg_formats.Entry.t) -> e.Genalg_formats.Entry.accession) repo in
  check Alcotest.int "unique accessions" 50 (List.length (List.sort_uniq compare accs));
  check Alcotest.bool "prefix" true
    (List.for_all (fun a -> String.length a >= 3 && String.sub a 0 3 = "XYZ") accs)

let test_recordgen_noisy_copy () =
  let r = Rng.make 16 in
  let e = List.hd (Recordgen.repository r ~size:1 ()) in
  let noisy = Recordgen.noisy_copy r ~error_rate:0.05 ~rename:"COPY1" e in
  check Alcotest.string "renamed" "COPY1" noisy.Genalg_formats.Entry.accession;
  check Alcotest.string "organism kept" e.Genalg_formats.Entry.organism
    noisy.Genalg_formats.Entry.organism;
  check Alcotest.int "length preserved (substitutions only)"
    (Sequence.length e.Genalg_formats.Entry.sequence)
    (Sequence.length noisy.Genalg_formats.Entry.sequence)

let test_overlapping_repositories () =
  let r = Rng.make 17 in
  let a, b, pairs = Recordgen.overlapping_repositories r ~size:40 ~overlap:0.5 () in
  check Alcotest.int "repo a size" 40 (List.length a);
  check Alcotest.int "repo b size" 40 (List.length b);
  check Alcotest.int "20 ground-truth pairs" 20 (List.length pairs);
  (* every pair's accessions exist in their repositories *)
  List.iter
    (fun (acc_a, acc_b) ->
      check Alcotest.bool "a exists" true
        (List.exists (fun (e : Genalg_formats.Entry.t) -> e.Genalg_formats.Entry.accession = acc_a) a);
      check Alcotest.bool "b exists" true
        (List.exists (fun (e : Genalg_formats.Entry.t) -> e.Genalg_formats.Entry.accession = acc_b) b))
    pairs

let test_update_stream () =
  let r = Rng.make 18 in
  let repo = Recordgen.repository r ~size:30 () in
  let new_state, updates = Recordgen.update_stream r repo ~fraction:0.2 ()  in
  check Alcotest.bool "some updates" true (List.length updates >= 1);
  (* applying updates by key to the old state yields the new state *)
  let table = Hashtbl.create 64 in
  List.iter
    (fun (e : Genalg_formats.Entry.t) -> Hashtbl.replace table e.Genalg_formats.Entry.accession e)
    repo;
  List.iter
    (function
      | Recordgen.Insert e -> Hashtbl.replace table e.Genalg_formats.Entry.accession e
      | Recordgen.Delete a -> Hashtbl.remove table a
      | Recordgen.Modify e -> Hashtbl.replace table e.Genalg_formats.Entry.accession e)
    updates;
  check Alcotest.int "state size matches" (Hashtbl.length table) (List.length new_state);
  List.iter
    (fun (e : Genalg_formats.Entry.t) ->
      match Hashtbl.find_opt table e.Genalg_formats.Entry.accession with
      | Some e' ->
          check Alcotest.bool "entry matches" true (Genalg_formats.Entry.equal e e')
      | None -> Alcotest.failf "unexpected entry %s" e.Genalg_formats.Entry.accession)
    new_state

let suites =
  [
    ( "synth.rng",
      [
        tc "determinism" `Quick test_rng_determinism;
        tc "bounds" `Quick test_rng_bounds;
        tc "sample" `Quick test_rng_sample;
        tc "weighted" `Quick test_rng_weighted;
      ] );
    ( "synth.seqgen",
      [
        tc "gc bias" `Quick test_seqgen_gc_bias;
        tc "alphabets" `Quick test_seqgen_alphabets;
        tc "plant motif" `Quick test_plant_motif;
        tc "mutate" `Quick test_mutate;
        tc "homolog" `Quick test_homolog_similarity;
      ] );
    ( "synth.genegen",
      [
        tc "well-formed genes" `Quick test_genegen_well_formed;
        tc "exon structure" `Quick test_genegen_exon_structure;
        tc "chromosome extraction" `Quick test_chromosome_genes_extractable;
        tc "genome shape" `Quick test_genome_shape;
      ] );
    ( "synth.recordgen",
      [
        tc "repository" `Quick test_recordgen_repository;
        tc "noisy copy" `Quick test_recordgen_noisy_copy;
        tc "overlapping repos" `Quick test_overlapping_repositories;
        tc "update stream" `Quick test_update_stream;
      ] );
  ]
