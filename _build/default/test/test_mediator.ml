(* Unit tests for the query-driven mediator baseline (lib/mediator). *)

open Genalg_formats
module Source = Genalg_etl.Source
module Mediator = Genalg_mediator.Mediator

let check = Alcotest.check
let tc = Alcotest.test_case

let fixture () =
  let rng = Genalg_synth.Rng.make 55 in
  let repo_a, repo_b, _pairs =
    Genalg_synth.Recordgen.overlapping_repositories rng ~size:20 ~overlap:0.5
      ~noise_fraction:0.0 ()
  in
  let src_a = Source.create ~name:"a" Source.Queryable Source.Flat_file repo_a in
  let src_b = Source.create ~name:"b" Source.Queryable Source.Relational repo_b in
  (repo_a, repo_b, Mediator.create ~latency_s:0.05 [ src_a; src_b ])

let test_query_all () =
  let repo_a, repo_b, m = fixture () in
  let results, timing = Mediator.run ~reconcile:false m Mediator.query_all in
  check Alcotest.int "everything shipped"
    (List.length repo_a + List.length repo_b)
    (List.length results);
  check Alcotest.int "both sources contacted" 2 timing.Mediator.sources_contacted;
  check Alcotest.bool "latency accounted" true (timing.Mediator.simulated_network_s >= 0.1)

let test_reconcile_dedupes () =
  let repo_a, repo_b, m = fixture () in
  let all, _ = Mediator.run ~reconcile:false m Mediator.query_all in
  let merged, _ = Mediator.run ~reconcile:true m Mediator.query_all in
  check Alcotest.int "raw has duplicates"
    (List.length repo_a + List.length repo_b)
    (List.length all);
  (* 10 shared exact copies collapse *)
  check Alcotest.int "reconciled" 30 (List.length merged)

let test_pushdown_reduces_transfer () =
  let _, _, m = fixture () in
  let q = { Mediator.query_all with Mediator.organism = Some "Synthetica primus" } in
  let results, timing = Mediator.run ~reconcile:false m q in
  let _, full_timing = Mediator.run ~reconcile:false m Mediator.query_all in
  check Alcotest.bool "filter applied" true
    (List.for_all (fun (e : Entry.t) -> e.Entry.organism = "Synthetica primus") results);
  check Alcotest.bool "fewer records shipped" true
    (timing.Mediator.records_shipped < full_timing.Mediator.records_shipped)

let test_client_side_filters () =
  let _, _, m = fixture () in
  let q = { Mediator.query_all with Mediator.min_length = Some 1000 } in
  let results, timing = Mediator.run ~reconcile:false m q in
  check Alcotest.bool "length filter works" true
    (List.for_all
       (fun (e : Entry.t) -> Genalg_gdt.Sequence.length e.Entry.sequence >= 1000)
       results);
  (* the filter is NOT pushed down: everything still ships *)
  check Alcotest.int "all records shipped anyway" 40 timing.Mediator.records_shipped

let test_motif_filter () =
  let rng = Genalg_synth.Rng.make 56 in
  let e = List.hd (Genalg_synth.Recordgen.repository rng ~size:1 ()) in
  let with_motif, _ =
    Genalg_synth.Seqgen.plant_motif rng ~motif:"ATTGCCATAATTGCC" e.Entry.sequence
  in
  let entry2 = Entry.make ~accession:"MOTIF1" ~organism:e.Entry.organism with_motif in
  let src = Source.create ~name:"s" Source.Queryable Source.Flat_file [ e; entry2 ] in
  let m = Mediator.create [ src ] in
  let results, _ =
    Mediator.run ~reconcile:false m
      { Mediator.query_all with Mediator.contains_motif = Some "ATTGCCATAATTGCC" }
  in
  check Alcotest.bool "motif row found" true
    (List.exists (fun (r : Entry.t) -> r.Entry.accession = "MOTIF1") results)

let suites =
  [
    ( "mediator",
      [
        tc "query all" `Quick test_query_all;
        tc "reconcile dedupes" `Quick test_reconcile_dedupes;
        tc "pushdown reduces transfer" `Quick test_pushdown_reduces_transfer;
        tc "client-side filters" `Quick test_client_side_filters;
        tc "motif filter" `Quick test_motif_filter;
      ] );
  ]
