(* Unit tests for GenAlgXML (lib/genalgxml). *)

open Genalg_gdt
module Xml = Genalg_xml.Xml
module Genalgxml = Genalg_xml.Genalgxml
module Value = Genalg_core.Value
module Sort = Genalg_core.Sort

let check = Alcotest.check
let tc = Alcotest.test_case

(* ---- the XML engine ------------------------------------------------- *)

let test_xml_roundtrip () =
  let doc =
    Xml.element "root"
      ~attrs:[ ("a", "1"); ("weird", "x<y&\"z\"") ]
      ~children:
        [
          Xml.element "leaf" ~children:[ Xml.text "hello & <world>" ];
          Xml.element "empty";
          Xml.element "nested"
            ~children:[ Xml.element "inner" ~attrs:[ ("k", "v") ] ];
        ]
  in
  match Xml.parse (Xml.to_string doc) with
  | Ok back -> (
      check (Alcotest.option Alcotest.string) "attr" (Some "x<y&\"z\"")
        (Xml.attr back "weird");
      match Xml.child back "leaf" with
      | Some leaf ->
          check Alcotest.string "escaped text" "hello & <world>" (Xml.text_content leaf)
      | None -> Alcotest.fail "leaf missing")
  | Error msg -> Alcotest.fail msg

let test_xml_parse_errors () =
  let err s = Result.is_error (Xml.parse s) in
  check Alcotest.bool "empty" true (err "");
  check Alcotest.bool "mismatched tags" true (err "<a></b>");
  check Alcotest.bool "unterminated" true (err "<a>");
  check Alcotest.bool "trailing content" true (err "<a/><b/>");
  check Alcotest.bool "bad entity" true (err "<a>&nope;</a>")

let test_xml_skips_decl_and_comments () =
  match Xml.parse "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>" with
  | Ok root -> check Alcotest.int "children" 1 (List.length (Xml.children_named root "b"))
  | Error msg -> Alcotest.fail msg

(* ---- GenAlgXML ------------------------------------------------------- *)

let roundtrip v =
  match Genalgxml.of_string (Genalgxml.to_string v) with
  | Ok v2 ->
      check Alcotest.bool
        ("roundtrip " ^ Sort.to_string (Value.sort_of v))
        true (Value.equal v v2)
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg

let test_scalars () =
  List.iter roundtrip
    [
      Value.VBool true; Value.VInt (-7); Value.VFloat 3.25; Value.VFloat 0.1;
      Value.VString "hello <world> & 'friends'";
      Value.VNucleotide Nucleotide.R;
      Value.VAmino_acid Amino_acid.Trp;
    ]

let test_sequences () =
  List.iter roundtrip
    [ Value.dna "ACGTACGTN"; Value.rna "ACGUACGU"; Value.protein_seq "MKVLAW" ]

let test_gdts () =
  let rng = Genalg_synth.Rng.make 61 in
  let gene = Genalg_synth.Genegen.gene rng ~id:"xg" () in
  roundtrip (Value.VGene gene);
  let primary = Genalg_core.Ops.transcribe gene in
  roundtrip (Value.VPrimary primary);
  let mrna = Genalg_core.Ops.splice primary in
  roundtrip (Value.VMrna mrna);
  let protein = Result.get_ok (Genalg_core.Ops.translate mrna) in
  roundtrip (Value.VProtein protein)

let test_chromosome_genome () =
  let rng = Genalg_synth.Rng.make 62 in
  let genome =
    Genalg_synth.Genegen.genome rng ~chromosome_count:2 ~genes_per_chromosome:2
      ~organism:"Xml test" ()
  in
  roundtrip (Value.VGenome genome);
  roundtrip (Value.VChromosome (List.hd genome.Genome.chromosomes))

let test_lists_and_uncertain () =
  roundtrip (Value.vlist Sort.Int [ Value.VInt 1; Value.VInt 2; Value.VInt 3 ]);
  roundtrip (Value.vlist Sort.Dna [ Value.dna "ACGT"; Value.dna "GGCC" ]);
  let u =
    Uncertain.of_alternatives
      [
        {
          Uncertain.value = Value.dna "ACGT";
          confidence = 0.75;
          provenance = Some (Provenance.make ~source:"bank" ~record_id:"X1" ());
        };
        { Uncertain.value = Value.dna "ACGA"; confidence = 0.25; provenance = None };
      ]
  in
  roundtrip (Value.uncertain u)

let test_genetic_code_preserved () =
  let rng = Genalg_synth.Rng.make 63 in
  let gene =
    Genalg_synth.Genegen.gene rng ~code:Genetic_code.vertebrate_mitochondrial ~id:"mito" ()
  in
  match Genalgxml.of_string (Genalgxml.to_string (Value.VGene gene)) with
  | Ok (Value.VGene g2) ->
      check Alcotest.int "code id preserved" 2 (Genetic_code.id g2.Gene.code)
  | _ -> Alcotest.fail "gene roundtrip failed"

let test_reject_garbage () =
  check Alcotest.bool "unknown element" true
    (Result.is_error (Genalgxml.of_string "<widget/>"));
  check Alcotest.bool "bad dna letters" true
    (Result.is_error (Genalgxml.of_string "<dna>HELLO</dna>"));
  check Alcotest.bool "gene without id" true
    (Result.is_error (Genalgxml.of_string "<gene><dna>ACGT</dna></gene>"))

let suites =
  [
    ( "xml.engine",
      [
        tc "roundtrip" `Quick test_xml_roundtrip;
        tc "errors" `Quick test_xml_parse_errors;
        tc "decl/comments" `Quick test_xml_skips_decl_and_comments;
      ] );
    ( "xml.genalgxml",
      [
        tc "scalars" `Quick test_scalars;
        tc "sequences" `Quick test_sequences;
        tc "gdts" `Quick test_gdts;
        tc "chromosome/genome" `Quick test_chromosome_genome;
        tc "lists/uncertain" `Quick test_lists_and_uncertain;
        tc "genetic code" `Quick test_genetic_code_preserved;
        tc "rejects garbage" `Quick test_reject_garbage;
      ] );
  ]
