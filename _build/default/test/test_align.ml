(* Unit tests for the alignment substrate (lib/align). *)

open Genalg_align

let check = Alcotest.check
let tc = Alcotest.test_case

(* ---- scoring -------------------------------------------------------- *)

let test_blosum62_values () =
  (* spot checks against the published matrix *)
  check Alcotest.int "W/W = 11" 11 (Scoring.score Scoring.blosum62 'W' 'W');
  check Alcotest.int "A/A = 4" 4 (Scoring.score Scoring.blosum62 'A' 'A');
  check Alcotest.int "E/Q = 2" 2 (Scoring.score Scoring.blosum62 'E' 'Q');
  check Alcotest.int "W/C = -2" (-2) (Scoring.score Scoring.blosum62 'W' 'C');
  check Alcotest.int "symmetric" (Scoring.score Scoring.blosum62 'R' 'K')
    (Scoring.score Scoring.blosum62 'K' 'R');
  check Alcotest.int "case-insensitive" 4 (Scoring.score Scoring.blosum62 'a' 'A')

let test_pam250_values () =
  check Alcotest.int "W/W = 17" 17 (Scoring.score Scoring.pam250 'W' 'W');
  check Alcotest.int "C/C = 12" 12 (Scoring.score Scoring.pam250 'C' 'C')

let test_dna_scoring () =
  let m = Scoring.dna ~match_:1 ~mismatch:(-2) in
  check Alcotest.int "match" 1 (Scoring.score m 'A' 'A');
  check Alcotest.int "mismatch" (-2) (Scoring.score m 'A' 'C');
  check Alcotest.int "unknown letter is mismatch" (-2) (Scoring.score m 'A' 'Z')

(* ---- pairwise ------------------------------------------------------- *)

let dna1 = Scoring.dna ~match_:1 ~mismatch:(-1)
let unit_gap = Scoring.linear_gap 1

let test_global_identical () =
  let a = Pairwise.align ~mode:Pairwise.Global ~matrix:dna1 ~gap:unit_gap
      ~query:"ACGTACGT" ~subject:"ACGTACGT" ()
  in
  check Alcotest.int "score = length" 8 a.Pairwise.score;
  check (Alcotest.float 1e-9) "identity 1" 1. (Pairwise.identity a);
  check Alcotest.string "no gaps" "ACGTACGT" a.Pairwise.aligned_query

let test_global_gap () =
  (* deleting one base costs one gap *)
  let a = Pairwise.align ~mode:Pairwise.Global ~matrix:dna1 ~gap:unit_gap
      ~query:"ACGT" ~subject:"ACGGT" ()
  in
  check Alcotest.int "4 matches - 1 gap" 3 a.Pairwise.score;
  check Alcotest.bool "one gap in query" true
    (String.contains a.Pairwise.aligned_query '-')

let test_global_empty () =
  let a = Pairwise.align ~mode:Pairwise.Global ~matrix:dna1 ~gap:unit_gap
      ~query:"" ~subject:"ACG" ()
  in
  check Alcotest.string "subject fully gapped" "---" a.Pairwise.aligned_query;
  let b = Pairwise.align ~mode:Pairwise.Global ~query:"" ~subject:"" () in
  check Alcotest.int "empty vs empty" 0 b.Pairwise.score

let test_local_finds_island () =
  (* a perfect island inside junk *)
  let a = Pairwise.align ~mode:Pairwise.Local ~matrix:dna1 ~gap:unit_gap
      ~query:"TTTTGGGGCCCCTTTT" ~subject:"AAAAGGGGCCCCAAAA" ()
  in
  check Alcotest.int "island score" 8 a.Pairwise.score;
  check Alcotest.string "island" "GGGGCCCC" a.Pairwise.aligned_query;
  check Alcotest.int "query start" 4 a.Pairwise.query_start;
  check Alcotest.int "subject start" 4 a.Pairwise.subject_start

let test_local_no_similarity () =
  let a = Pairwise.align ~mode:Pairwise.Local ~matrix:dna1 ~gap:unit_gap
      ~query:"AAAA" ~subject:"CCCC" ()
  in
  check Alcotest.int "no positive alignment" 0 a.Pairwise.score

let test_semiglobal () =
  (* query contained in a longer subject: no end-gap charges *)
  let a = Pairwise.align ~mode:Pairwise.Semiglobal ~matrix:dna1 ~gap:unit_gap
      ~query:"GGCC" ~subject:"AAAAGGCCAAAA" ()
  in
  check Alcotest.int "full query aligned free of end gaps" 4 a.Pairwise.score;
  check Alcotest.int "subject offset" 4 a.Pairwise.subject_start

let test_affine_gap_preference () =
  (* affine gaps should prefer one long gap over two short ones *)
  let gap = { Scoring.open_penalty = 4; extend_penalty = 1 } in
  let a = Pairwise.align ~mode:Pairwise.Global ~matrix:dna1 ~gap
      ~query:"ACGTACGTACGT" ~subject:"ACGTACGT" ()
  in
  (* 8 matches - (4 + 4*1) = 0 for one length-4 gap *)
  check Alcotest.int "one affine gap" 0 a.Pairwise.score;
  (* the gap should be contiguous in the subject row *)
  let gap_runs s =
    let runs = ref 0 and in_gap = ref false in
    String.iter
      (fun c ->
        if c = '-' then begin
          if not !in_gap then incr runs;
          in_gap := true
        end
        else in_gap := false)
      s;
    !runs
  in
  check Alcotest.int "contiguous gap" 1 (gap_runs a.Pairwise.aligned_subject)

let test_score_only_agrees () =
  let cases =
    [ ("ACGTACGT", "ACGTTCGT"); ("AAAA", "CCCC"); ("GATTACA", "GCATGCT");
      ("ACGTACGTACGT", "ACGT"); ("", "ACG") ]
  in
  List.iter
    (fun (q, s) ->
      List.iter
        (fun mode ->
          let full = Pairwise.align ~mode ~matrix:dna1 ~gap:unit_gap ~query:q ~subject:s () in
          let fast = Pairwise.score_only ~mode ~matrix:dna1 ~gap:unit_gap ~query:q ~subject:s () in
          check Alcotest.int
            (Printf.sprintf "score_only agrees on %s/%s" q s)
            full.Pairwise.score fast)
        [ Pairwise.Global; Pairwise.Local; Pairwise.Semiglobal ])
    cases

let test_banded_score () =
  let rng = Genalg_synth.Rng.make 99 in
  for _ = 1 to 20 do
    let q = Genalg_synth.Seqgen.dna_string rng (40 + Genalg_synth.Rng.int rng 40) in
    let s =
      Genalg_gdt.Sequence.to_string
        (Genalg_synth.Seqgen.mutate rng ~rate:0.1 (Genalg_gdt.Sequence.dna q))
    in
    let full =
      Pairwise.score_only ~mode:Pairwise.Global ~matrix:dna1 ~gap:unit_gap ~query:q
        ~subject:s ()
    in
    (* a full-width band reproduces the exact global score *)
    let wide =
      Pairwise.banded_score ~band:(max (String.length q) (String.length s))
        ~matrix:dna1 ~gap:unit_gap ~query:q ~subject:s ()
    in
    check Alcotest.int "wide band = full DP" full wide;
    (* substitution-only divergence keeps the path on the diagonal *)
    let narrow =
      Pairwise.banded_score ~band:2 ~matrix:dna1 ~gap:unit_gap ~query:q ~subject:s ()
    in
    check Alcotest.bool "narrow band is a lower bound" true (narrow <= full)
  done;
  Alcotest.check_raises "band below length difference"
    (Invalid_argument "Pairwise.banded_score: band narrower than the length difference")
    (fun () -> ignore (Pairwise.banded_score ~band:1 ~query:"AAAA" ~subject:"A" ()))

let test_banded_equal_on_substitutions () =
  (* identical-length sequences differing only by substitutions: even a
     zero-width band finds the optimal (diagonal) path *)
  let q = "ACGTACGTACGTACGT" in
  let s = "ACGAACGTACTTACGT" in
  let full = Pairwise.score_only ~mode:Pairwise.Global ~matrix:dna1 ~gap:unit_gap ~query:q ~subject:s () in
  let banded = Pairwise.banded_score ~band:0 ~matrix:dna1 ~gap:unit_gap ~query:q ~subject:s () in
  check Alcotest.int "diagonal band suffices" full banded

let test_protein_alignment () =
  let a = Pairwise.align ~mode:Pairwise.Global ~matrix:Scoring.blosum62
      ~query:"HEAGAWGHEE" ~subject:"HEAGAWGHEE" ()
  in
  check Alcotest.bool "self-alignment positive" true (a.Pairwise.score > 0);
  check (Alcotest.float 1e-9) "identity 1" 1. (Pairwise.identity a)

(* ---- LCS / diff ------------------------------------------------------ *)

let chars s = Array.init (String.length s) (String.get s)

let test_lcs_length () =
  check Alcotest.int "classic" 4
    (Lcs.length ~equal:Char.equal (chars "ABCBDAB") (chars "BDCABA"));
  check Alcotest.int "identical" 5 (Lcs.length ~equal:Char.equal (chars "HELLO") (chars "HELLO"));
  check Alcotest.int "disjoint" 0 (Lcs.length ~equal:Char.equal (chars "AAA") (chars "BBB"));
  check Alcotest.int "empty" 0 (Lcs.length ~equal:Char.equal (chars "") (chars "ABC"))

let test_diff_roundtrip () =
  let cases =
    [ ("ABCBDAB", "BDCABA"); ("", "ABC"); ("ABC", ""); ("SAME", "SAME");
      ("KITTEN", "SITTING"); ("A", "B") ]
  in
  List.iter
    (fun (a, b) ->
      let script = Lcs.diff ~equal:Char.equal (chars a) (chars b) in
      match Lcs.apply script (chars a) with
      | Some result ->
          check Alcotest.string
            (Printf.sprintf "apply(diff %s %s)" a b)
            b
            (String.init (Array.length result) (Array.get result))
      | None -> Alcotest.failf "script for %s -> %s did not apply" a b)
    cases

let test_diff_keeps_lcs () =
  let script = Lcs.diff ~equal:Char.equal (chars "ABCBDAB") (chars "BDCABA") in
  let keeps =
    List.length (List.filter (function Lcs.Keep _ -> true | _ -> false) script)
  in
  check Alcotest.int "keeps = LCS length" 4 keeps

let test_diff_edit_distance () =
  let script = Lcs.diff ~equal:Char.equal (chars "KITTEN") (chars "SITTING") in
  (* LCS edit distance (no substitution op): 2*7 - ... ; KITTEN/SITTING LCS=ITTN?
     lcs("KITTEN","SITTING") = "ITTN" length 4 -> dist = 6+7-2*4 = 5 *)
  check Alcotest.int "insert+delete count" 5 (Lcs.edit_distance_of script)

let test_lcs_subsequence () =
  let l = Lcs.lcs ~equal:Char.equal (chars "ABCBDAB") (chars "BDCABA") in
  check Alcotest.int "lcs length" 4 (List.length l)

(* ---- distances -------------------------------------------------------- *)

let test_levenshtein () =
  check Alcotest.int "kitten/sitting" 3 (Distance.levenshtein "kitten" "sitting");
  check Alcotest.int "identical" 0 (Distance.levenshtein "abc" "abc");
  check Alcotest.int "to empty" 3 (Distance.levenshtein "abc" "");
  check Alcotest.int "symmetric" (Distance.levenshtein "abcd" "dcba")
    (Distance.levenshtein "dcba" "abcd")

let test_hamming () =
  check (Alcotest.option Alcotest.int) "two diffs" (Some 2) (Distance.hamming "ACGT" "AGGA");
  check (Alcotest.option Alcotest.int) "length mismatch" None (Distance.hamming "AC" "ACG")

let test_similarity () =
  check (Alcotest.float 1e-9) "identical" 1. (Distance.similarity "abc" "abc");
  check (Alcotest.float 1e-9) "empty" 1. (Distance.similarity "" "");
  check (Alcotest.float 1e-9) "disjoint" 0. (Distance.similarity "aaa" "bbb")

(* ---- blast ------------------------------------------------------------ *)

let test_blast_finds_exact () =
  let db = Blast.make_db ~k:5 [ ("s1", "AAAAAAAAAA"); ("s2", "CCGGTTACGGTACCA") ] in
  check Alcotest.int "db size" 2 (Blast.db_size db);
  let hits = Blast.search ~min_score:10 db ~query:"CCGGTTACGGTACCA" in
  check Alcotest.bool "finds itself" true
    (List.exists (fun h -> h.Blast.subject_id = "s2") hits);
  check Alcotest.bool "no hit on the homopolymer" true
    (not (List.exists (fun h -> h.Blast.subject_id = "s1") hits))

let test_blast_homolog () =
  let rng = Genalg_synth.Rng.make 7 in
  let target = Genalg_synth.Seqgen.dna_string rng 400 in
  let decoys =
    List.init 20 (fun i ->
        (Printf.sprintf "decoy%d" i, Genalg_synth.Seqgen.dna_string rng 400))
  in
  let db = Blast.make_db ~k:11 (("target", target) :: decoys) in
  let homolog =
    Genalg_gdt.Sequence.to_string
      (Genalg_synth.Seqgen.homolog rng ~identity:0.9
         (Genalg_gdt.Sequence.dna target))
  in
  match Blast.best_hit ~min_score:20 db ~query:homolog with
  | Some hit -> check Alcotest.string "homolog maps to target" "target" hit.Blast.subject_id
  | None -> Alcotest.fail "no hit for a 90%-identity homolog"

let test_blast_gapped_refinement () =
  let db = Blast.make_db ~k:5 [ ("s", "AAAACCCCGGGGTTTTAAAACCCC") ] in
  let hits = Blast.search ~min_score:8 ~gapped:true db ~query:"CCCCGGGGTTTT" in
  match hits with
  | h :: _ ->
      check Alcotest.bool "gapped alignment present" true (h.Blast.gapped <> None)
  | [] -> Alcotest.fail "no hits"

let test_blast_rejects_bad_db () =
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Blast.make_db: duplicate subject ids") (fun () ->
      ignore (Blast.make_db [ ("a", "ACGT"); ("a", "ACGT") ]))

let suites =
  [
    ( "align.scoring",
      [
        tc "blosum62" `Quick test_blosum62_values;
        tc "pam250" `Quick test_pam250_values;
        tc "dna" `Quick test_dna_scoring;
      ] );
    ( "align.pairwise",
      [
        tc "global identical" `Quick test_global_identical;
        tc "global gap" `Quick test_global_gap;
        tc "global empty" `Quick test_global_empty;
        tc "local island" `Quick test_local_finds_island;
        tc "local none" `Quick test_local_no_similarity;
        tc "semiglobal" `Quick test_semiglobal;
        tc "affine gaps" `Quick test_affine_gap_preference;
        tc "score_only agrees" `Quick test_score_only_agrees;
        tc "banded score" `Quick test_banded_score;
        tc "banded diagonal" `Quick test_banded_equal_on_substitutions;
        tc "protein" `Quick test_protein_alignment;
      ] );
    ( "align.lcs",
      [
        tc "length" `Quick test_lcs_length;
        tc "diff roundtrip" `Quick test_diff_roundtrip;
        tc "keeps lcs" `Quick test_diff_keeps_lcs;
        tc "edit distance" `Quick test_diff_edit_distance;
        tc "subsequence" `Quick test_lcs_subsequence;
      ] );
    ( "align.distance",
      [
        tc "levenshtein" `Quick test_levenshtein;
        tc "hamming" `Quick test_hamming;
        tc "similarity" `Quick test_similarity;
      ] );
    ( "align.blast",
      [
        tc "exact" `Quick test_blast_finds_exact;
        tc "homolog" `Quick test_blast_homolog;
        tc "gapped" `Quick test_blast_gapped_refinement;
        tc "bad db" `Quick test_blast_rejects_bad_db;
      ] );
  ]
