(* Cross-library integration tests: full warehouse flows, mediator vs
   warehouse result equality, biolang end-to-end, save/load continuity. *)

open Genalg_formats
open Genalg_etl
module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Exec = Genalg_sqlx.Exec
module Mediator = Genalg_mediator.Mediator

let check = Alcotest.check
let tc = Alcotest.test_case

let build_world seed =
  let rng = Genalg_synth.Rng.make seed in
  let repo_a = Genalg_synth.Recordgen.repository rng ~size:25 ~prefix:"INA" () in
  let repo_b = Genalg_synth.Recordgen.repository rng ~size:25 ~prefix:"INB" () in
  let src_a = Source.create ~name:"bank-a" Source.Logged Source.Flat_file repo_a in
  let src_b = Source.create ~name:"bank-b" Source.Queryable Source.Hierarchical repo_b in
  (rng, repo_a, repo_b, src_a, src_b)

let test_warehouse_vs_mediator_results () =
  (* the same selection through both architectures returns the same set *)
  let _, repo_a, repo_b, src_a, src_b = build_world 201 in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src_a; src_b ] ()) in
  ignore (Result.get_ok (Pipeline.bootstrap pl));
  let db = Pipeline.database pl in
  let organism = (List.hd repo_a).Entry.organism in
  let sql =
    Printf.sprintf
      "SELECT accession FROM sequences WHERE organism = '%s' AND length >= 800" organism
  in
  let warehouse_accessions =
    match Exec.query db ~actor:"u" sql with
    | Ok (Exec.Rows rs) ->
        List.filter_map
          (fun r -> match r.(0) with D.Str s -> Some s | _ -> None)
          rs.Exec.rows
        |> List.sort String.compare
    | _ -> Alcotest.fail "warehouse query failed"
  in
  let med =
    Mediator.create
      [
        Source.create ~name:"bank-a" Source.Queryable Source.Flat_file repo_a;
        Source.create ~name:"bank-b" Source.Queryable Source.Hierarchical repo_b;
      ]
  in
  let results, _ =
    Mediator.run ~reconcile:false med
      { Mediator.organism = Some organism; min_length = Some 800; contains_motif = None }
  in
  let mediator_accessions =
    List.map (fun (e : Entry.t) -> e.Entry.accession) results |> List.sort String.compare
  in
  check (Alcotest.list Alcotest.string) "architectures agree" mediator_accessions
    warehouse_accessions

let test_full_refresh_cycle_consistency () =
  (* after a bootstrap + several refresh rounds, the warehouse content
     equals what a fresh bootstrap over the final source state would give *)
  let rng, repo_a, _, src_a, src_b = build_world 202 in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src_a; src_b ] ()) in
  ignore (Result.get_ok (Pipeline.bootstrap pl));
  (* three rounds of updates + refresh on source a *)
  let state = ref repo_a in
  for _ = 1 to 3 do
    let next, ups = Genalg_synth.Recordgen.update_stream rng !state ~fraction:0.15 () in
    state := next;
    Source.apply src_a
      (List.map
         (function
           | Genalg_synth.Recordgen.Insert e -> Source.Insert e
           | Genalg_synth.Recordgen.Delete a -> Source.Delete a
           | Genalg_synth.Recordgen.Modify e -> Source.Modify e)
         ups);
    ignore (Result.get_ok (Pipeline.refresh pl))
  done;
  let db = Pipeline.database pl in
  let warehouse_accessions =
    match Exec.query db ~actor:"u" "SELECT accession FROM sequences ORDER BY accession" with
    | Ok (Exec.Rows rs) ->
        List.filter_map (fun r -> match r.(0) with D.Str s -> Some s | _ -> None) rs.Exec.rows
    | _ -> Alcotest.fail "query failed"
  in
  let expected =
    (List.map (fun (e : Entry.t) -> e.Entry.accession) (Source.entries src_a)
    @ List.map (fun (e : Entry.t) -> e.Entry.accession) (Source.entries src_b))
    |> List.sort String.compare
  in
  check (Alcotest.list Alcotest.string) "incremental maintenance is exact" expected
    warehouse_accessions

let test_user_space_annotations () =
  (* C13: a biologist stores self-generated data alongside public data and
     joins across the boundary *)
  let _, _, _, src_a, src_b = build_world 203 in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src_a; src_b ] ()) in
  ignore (Result.get_ok (Pipeline.bootstrap pl));
  let db = Pipeline.database pl in
  let run actor sql =
    match Exec.query db ~actor sql with
    | Ok o -> o
    | Error m -> Alcotest.failf "%s: %s" sql m
  in
  ignore (run "alice" "CREATE TABLE notes (accession string, note string)");
  (* pick two real accessions *)
  let accs =
    match run "alice" "SELECT accession FROM sequences ORDER BY accession LIMIT 2" with
    | Exec.Rows rs ->
        List.filter_map (fun r -> match r.(0) with D.Str s -> Some s | _ -> None) rs.Exec.rows
    | _ -> Alcotest.fail "no accessions"
  in
  List.iter
    (fun acc ->
      ignore
        (run "alice" (Printf.sprintf "INSERT INTO notes VALUES ('%s', 'interesting')" acc)))
    accs;
  (* join user annotations with public data *)
  match
    run "alice"
      "SELECT s.accession, n.note, gc_content(s.seq) FROM sequences s, notes n WHERE s.accession = n.accession ORDER BY s.accession"
  with
  | Exec.Rows rs ->
      check Alcotest.int "joined rows" 2 (List.length rs.Exec.rows);
      (* bob cannot see alice's notes *)
      check Alcotest.bool "bob blocked" true
        (Result.is_error (Exec.query db ~actor:"bob" "SELECT * FROM notes"))
  | _ -> Alcotest.fail "join failed"

let test_biolang_over_pipeline () =
  let _, _, _, src_a, src_b = build_world 204 in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src_a; src_b ] ()) in
  ignore (Result.get_ok (Pipeline.bootstrap pl));
  let db = Pipeline.database pl in
  match Genalg_biolang.Biolang.run db ~actor:"u" "count sequences" with
  | Ok (Exec.Rows { rows = [ [| D.Int n |] ]; _ }) ->
      check Alcotest.int "all records visible to biolang" 50 n
  | _ -> Alcotest.fail "biolang count failed"

let test_save_load_warehouse () =
  let _, _, _, src_a, src_b = build_world 205 in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src_a; src_b ] ()) in
  ignore (Result.get_ok (Pipeline.bootstrap pl));
  let db = Pipeline.database pl in
  let path = Filename.temp_file "genalg_integration" ".db" in
  (match Db.save db path with Ok () -> () | Error m -> Alcotest.fail m);
  (match Db.load path with
  | Error m -> Alcotest.fail m
  | Ok db2 ->
      (* re-attach the adapter (UDTs are not persisted) and query *)
      Genalg_adapter.Adapter.attach db2 Genalg_core.Builtin.default;
      (match
         Exec.query db2 ~actor:"u"
           "SELECT count(*) FROM sequences WHERE contains(seq, 'ACGTACGT')"
       with
      | Ok (Exec.Rows { rows = [ [| D.Int _ |] ]; _ }) -> ()
      | Ok _ -> Alcotest.fail "unexpected shape"
      | Error m -> Alcotest.fail m));
  Sys.remove path

let test_genes_loaded_and_decodable () =
  (* genes extracted by the wrapper land in the warehouse as opaque gene
     UDTs and can be decoded back through the adapter *)
  let rng = Genalg_synth.Rng.make 206 in
  (* build entries whose CDS features are clean joins *)
  let chrom, _genes = Genalg_synth.Genegen.chromosome rng ~gene_count:4 ~name:"c1" () in
  let entry =
    Entry.make ~accession:"GEN001" ~organism:"Synthetica primus"
      ~features:chrom.Genalg_gdt.Chromosome.features chrom.Genalg_gdt.Chromosome.dna
  in
  let src = Source.create ~name:"bank" Source.Logged Source.Flat_file [ entry ] in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src ] ()) in
  let stats = Result.get_ok (Pipeline.bootstrap pl) in
  check Alcotest.int "four genes extracted" 4 stats.Loader.genes;
  let db = Pipeline.database pl in
  match Exec.query db ~actor:"u" "SELECT gene FROM genes ORDER BY id" with
  | Ok (Exec.Rows rs) ->
      check Alcotest.int "four gene rows" 4 (List.length rs.Exec.rows);
      List.iter
        (fun row ->
          match Genalg_adapter.Adapter.of_db row.(0) with
          | Ok (Genalg_core.Value.VGene g) -> (
              match Genalg_core.Ops.decode g with
              | Ok _ -> ()
              | Error m -> Alcotest.failf "stored gene does not decode: %s" m)
          | _ -> Alcotest.fail "gene column did not decode")
        rs.Exec.rows
  | _ -> Alcotest.fail "gene query failed"

let test_conflicts_surface_in_warehouse () =
  (* two sources disagreeing about the same record produce conflict rows *)
  let rng = Genalg_synth.Rng.make 207 in
  let e = List.hd (Genalg_synth.Recordgen.repository rng ~size:1 ~prefix:"CNF" ()) in
  let noisy = Genalg_synth.Recordgen.noisy_copy rng ~error_rate:0.03 ~rename:"CNFCOPY" e in
  let src_a = Source.create ~name:"a" Source.Logged Source.Flat_file [ e ] in
  let src_b = Source.create ~name:"b" Source.Logged Source.Flat_file [ noisy ] in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src_a; src_b ] ()) in
  let stats = Result.get_ok (Pipeline.bootstrap pl) in
  check Alcotest.int "merged to one record" 1 stats.Loader.entries;
  check Alcotest.bool "conflict recorded" true (stats.Loader.conflicts >= 2);
  let db = Pipeline.database pl in
  match
    Exec.query db ~actor:"u"
      "SELECT source, confidence FROM conflicts ORDER BY confidence DESC"
  with
  | Ok (Exec.Rows rs) ->
      check Alcotest.bool "both sources appear" true (List.length rs.Exec.rows >= 2)
  | _ -> Alcotest.fail "conflicts query failed"

let suites =
  [
    ( "integration",
      [
        tc "warehouse vs mediator agree" `Quick test_warehouse_vs_mediator_results;
        tc "refresh cycles stay consistent" `Quick test_full_refresh_cycle_consistency;
        tc "user space annotations" `Quick test_user_space_annotations;
        tc "biolang over pipeline" `Quick test_biolang_over_pipeline;
        tc "save/load warehouse" `Quick test_save_load_warehouse;
        tc "genes decodable from warehouse" `Quick test_genes_loaded_and_decodable;
        tc "conflicts surface" `Quick test_conflicts_surface_in_warehouse;
      ] );
  ]
