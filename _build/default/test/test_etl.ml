(* Unit tests for the ETL pipeline (lib/etl). *)

open Genalg_gdt
open Genalg_formats
open Genalg_etl
module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database

let check = Alcotest.check
let tc = Alcotest.test_case

let entry_t = Alcotest.testable Entry.pp Entry.equal

let rng () = Genalg_synth.Rng.make 77

let repo ?(size = 15) ?(prefix = "ETL") r = Genalg_synth.Recordgen.repository r ~size ~prefix ()

let to_source_updates updates =
  List.map
    (function
      | Genalg_synth.Recordgen.Insert e -> Source.Insert e
      | Genalg_synth.Recordgen.Delete a -> Source.Delete a
      | Genalg_synth.Recordgen.Modify e -> Source.Modify e)
    updates

(* ---- deltas ------------------------------------------------------------ *)

let test_delta_kinds () =
  let r = rng () in
  let e = List.hd (repo ~size:1 r) in
  let ins = Delta.insertion ~id:1 ~timestamp:1. e in
  let del = Delta.deletion ~id:2 ~timestamp:2. e in
  check Alcotest.bool "insertion" true (Delta.kind ins = Delta.Insertion);
  check Alcotest.bool "deletion" true (Delta.kind del = Delta.Deletion);
  let e2 = { e with Entry.version = 2 } in
  let m = Delta.modification ~id:3 ~timestamp:3. ~before:e ~after:e2 in
  check Alcotest.bool "modification" true (Delta.kind m = Delta.Modification)

let test_delta_apply () =
  let r = rng () in
  let entries = repo ~size:5 r in
  let extra = List.hd (repo ~size:1 ~prefix:"NEW" r) in
  let victim = List.nth entries 2 in
  let deltas =
    [
      Delta.insertion ~id:1 ~timestamp:1. extra;
      Delta.deletion ~id:2 ~timestamp:2. victim;
    ]
  in
  let result = Delta.apply deltas entries in
  check Alcotest.int "size" 5 (List.length result);
  check Alcotest.bool "victim gone" true
    (not
       (List.exists
          (fun (e : Entry.t) -> e.Entry.accession = victim.Entry.accession)
          result));
  check Alcotest.bool "insert appended" true
    (Entry.equal (List.nth result 4) extra)

(* ---- sources -------------------------------------------------------------- *)

let test_source_capabilities () =
  let r = rng () in
  let entries = repo r in
  let active = Source.create ~name:"a" Source.Active Source.Relational entries in
  let logged = Source.create ~name:"l" Source.Logged Source.Flat_file entries in
  let nq = Source.create ~name:"n" Source.Non_queryable Source.Flat_file entries in
  check Alcotest.bool "subscribe to active" true (Result.is_ok (Source.subscribe active (fun _ -> ())));
  check Alcotest.bool "subscribe to logged fails" true
    (Result.is_error (Source.subscribe logged (fun _ -> ())));
  check Alcotest.bool "log of logged" true (Result.is_ok (Source.read_log logged ~since:0));
  check Alcotest.bool "log of active fails" true (Result.is_error (Source.read_log active ~since:0));
  check Alcotest.bool "query non-queryable fails" true (Result.is_error (Source.query_all nq));
  check Alcotest.bool "dump always works" true (String.length (Source.dump nq) > 0)

let test_source_log_and_triggers () =
  let r = rng () in
  let entries = repo r in
  let logged = Source.create ~name:"l" Source.Logged Source.Relational entries in
  let extra = List.hd (repo ~size:1 ~prefix:"XX" r) in
  Source.apply logged [ Source.Insert extra; Source.Delete (List.hd entries).Entry.accession ];
  (match Source.read_log logged ~since:0 with
  | Ok [ d1; d2 ] ->
      check Alcotest.bool "insert logged" true (Delta.kind d1 = Delta.Insertion);
      check Alcotest.bool "delete logged" true (Delta.kind d2 = Delta.Deletion)
  | Ok ds -> Alcotest.failf "expected 2 log entries, got %d" (List.length ds)
  | Error msg -> Alcotest.fail msg);
  (* cursor semantics *)
  match Source.read_log logged ~since:2 with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "cursor should skip read entries"
  | Error msg -> Alcotest.fail msg

let test_source_dump_roundtrip () =
  let r = rng () in
  let entries = repo r in
  List.iter
    (fun repr ->
      let src = Source.create ~name:"s" Source.Non_queryable repr entries in
      match Source.parse_dump repr (Source.dump src) with
      | Ok back ->
          check Alcotest.int "count" (List.length entries) (List.length back);
          List.iter2 (fun a b -> check entry_t "dump entry" a b) entries back
      | Error msg -> Alcotest.fail msg)
    [ Source.Flat_file; Source.Relational; Source.Hierarchical ]

(* ---- monitors: the Figure 2 grid ------------------------------------------- *)

let test_figure2_grid () =
  let cell cap repr = Monitor.technique_for cap repr in
  (* populated cells *)
  check Alcotest.bool "active+rel = db trigger" true
    (cell Source.Active Source.Relational = Some Monitor.Database_trigger);
  check Alcotest.bool "active+hier = program trigger" true
    (cell Source.Active Source.Hierarchical = Some Monitor.Program_trigger);
  check Alcotest.bool "logged+flat = log" true
    (cell Source.Logged Source.Flat_file = Some Monitor.Log_inspection);
  check Alcotest.bool "queryable+hier = edit sequence" true
    (cell Source.Queryable Source.Hierarchical = Some Monitor.Edit_sequence);
  check Alcotest.bool "queryable+rel = snapshot diff" true
    (cell Source.Queryable Source.Relational = Some Monitor.Snapshot_differential);
  check Alcotest.bool "nq+flat = LCS" true
    (cell Source.Non_queryable Source.Flat_file = Some Monitor.Lcs_diff);
  check Alcotest.bool "nq+hier = tree diff" true
    (cell Source.Non_queryable Source.Hierarchical = Some Monitor.Tree_diff);
  (* N/A cells *)
  check Alcotest.bool "active+flat N/A" true (cell Source.Active Source.Flat_file = None);
  check Alcotest.bool "queryable+flat N/A" true (cell Source.Queryable Source.Flat_file = None);
  check Alcotest.bool "nq+rel N/A" true (cell Source.Non_queryable Source.Relational = None)

(* Each populated cell must detect the same keyed changes. *)
let monitor_detects cap repr () =
  let r = rng () in
  let entries = repo ~size:12 r in
  let src = Source.create ~name:"s" cap repr entries in
  let m = Result.get_ok (Monitor.create src) in
  check (Alcotest.list Alcotest.string) "quiescent poll is empty" []
    (List.map (fun (d : Delta.t) -> d.Delta.item) (Monitor.poll m));
  let extra = List.hd (repo ~size:1 ~prefix:"INS" r) in
  let victim = (List.hd entries).Entry.accession in
  let modified =
    let e = List.nth entries 3 in
    {
      e with
      Entry.version = e.Entry.version + 1;
      Entry.definition = e.Entry.definition ^ " (updated)";
    }
  in
  Source.apply src
    [ Source.Insert extra; Source.Delete victim; Source.Modify modified ];
  let deltas = Monitor.poll m in
  check Alcotest.int "three deltas" 3 (List.length deltas);
  let find kind =
    List.find_opt (fun d -> Delta.kind d = kind) deltas
  in
  (match find Delta.Insertion with
  | Some d -> check Alcotest.string "insert item" extra.Entry.accession d.Delta.item
  | None -> Alcotest.fail "no insertion detected");
  (match find Delta.Deletion with
  | Some d -> check Alcotest.string "delete item" victim d.Delta.item
  | None -> Alcotest.fail "no deletion detected");
  (match find Delta.Modification with
  | Some d ->
      check Alcotest.string "modify item" modified.Entry.accession d.Delta.item;
      (match d.Delta.after with
      | Some after -> check entry_t "a-posteriori data" modified after
      | None -> Alcotest.fail "modification without after")
  | None -> Alcotest.fail "no modification detected");
  (* second poll: nothing new *)
  check Alcotest.int "drained" 0 (List.length (Monitor.poll m))

let test_monitor_diff_cost () =
  let r = rng () in
  let entries = repo ~size:10 r in
  let src = Source.create ~name:"s" Source.Non_queryable Source.Flat_file entries in
  let m = Result.get_ok (Monitor.create src) in
  ignore (Monitor.poll m);
  check Alcotest.int "no change, no cost" 0 (Monitor.last_diff_cost m);
  let e = List.nth entries 2 in
  Source.apply src [ Source.Modify { e with Entry.version = 9 } ];
  ignore (Monitor.poll m);
  check Alcotest.bool "LCS cost positive after change" true (Monitor.last_diff_cost m > 0)

let test_monitor_rejects_na_cell () =
  let r = rng () in
  let src = Source.create ~name:"s" Source.Non_queryable Source.Relational (repo r) in
  check Alcotest.bool "N/A cell rejected" true (Result.is_error (Monitor.create src))

(* ---- tree diff -------------------------------------------------------------- *)

let test_tree_diff_equal () =
  let r = rng () in
  let tree = Acedb.of_entry (List.hd (repo ~size:1 r)) in
  check Alcotest.int "self-diff is empty" 0 (List.length (Tree_diff.diff tree tree))

let test_tree_diff_relabel () =
  let a = Acedb.node "Root" ~children:[ Acedb.node "X" ~value:"1"; Acedb.node "Y" ~value:"2" ] in
  let b = Acedb.node "Root" ~children:[ Acedb.node "X" ~value:"1"; Acedb.node "Y" ~value:"3" ] in
  let edits = Tree_diff.diff a b in
  check Alcotest.int "one edit" 1 (List.length edits);
  (match edits with
  | [ Tree_diff.Relabel { path; before; after } ] ->
      check Alcotest.string "path" "Root/Y" path;
      check Alcotest.string "before" "2" before;
      check Alcotest.string "after" "3" after
  | _ -> Alcotest.fail "expected one relabel");
  check Alcotest.int "cost 1" 1 (Tree_diff.cost edits)

let test_tree_diff_insert_delete () =
  let a = Acedb.node "Root" ~children:[ Acedb.node "A" ] in
  let b =
    Acedb.node "Root"
      ~children:[ Acedb.node "A"; Acedb.node "B" ~children:[ Acedb.node "C" ] ]
  in
  let edits = Tree_diff.diff a b in
  check Alcotest.int "insert subtree cost 2" 2 (Tree_diff.cost edits);
  let back = Tree_diff.diff b a in
  check Alcotest.int "delete subtree cost 2" 2 (Tree_diff.cost back)

let test_tree_diff_deep_change_is_cheap () =
  (* a one-field change deep inside a big record must cost 1, not the
     whole record *)
  let r = rng () in
  let e = List.hd (repo ~size:1 r) in
  let e' = { e with Entry.definition = "changed definition" } in
  let edits = Tree_diff.diff (Acedb.of_entry e) (Acedb.of_entry e') in
  check Alcotest.int "single relabel" 1 (Tree_diff.cost edits)

(* ---- wrapper ------------------------------------------------------------------ *)

let test_wrapper_extracts_genes () =
  let r = rng () in
  let chrom_seq = Genalg_synth.Seqgen.dna r 300 in
  let entry =
    Entry.make ~accession:"W1"
      ~features:
        [
          Feature.make
            ~qualifiers:[ ("gene", "gA") ]
            Feature.Cds
            (Location.join [ Location.range 11 40; Location.range 61 90 ]);
          Feature.make ~qualifiers:[ ("gene", "gB") ] Feature.Gene (Location.range 100 200);
        ]
      chrom_seq
  in
  let x = Wrapper.extract ~source:"test" entry in
  check Alcotest.int "one CDS -> one gene" 1 (List.length x.Wrapper.genes);
  let g = List.hd x.Wrapper.genes in
  check Alcotest.string "gene id" "W1:gA" g.Gene.id;
  check Alcotest.int "covering span" 80 (Gene.length g);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "exons"
    [ (0, 30); (50, 30) ] g.Gene.exons;
  check Alcotest.bool "provenance" true (g.Gene.provenance <> None)

let test_wrapper_complement_cds () =
  let seq = Sequence.dna "AAAACCCCGGGGTTTT" in
  let entry =
    Entry.make ~accession:"W2"
      ~features:
        [ Feature.make Feature.Cds (Location.complement (Location.range 5 12)) ]
      seq
  in
  let x = Wrapper.extract ~source:"test" entry in
  check Alcotest.int "reverse CDS extracted" 1 (List.length x.Wrapper.genes);
  let g = List.hd x.Wrapper.genes in
  (* region 5..12 = CCCCGGGG, reverse complement = CCCCGGGG *)
  check Alcotest.string "sense strand" "CCCCGGGG" (Sequence.to_string g.Gene.dna)

let test_wrapper_skips_bad_locations () =
  let seq = Sequence.dna "ACGTACGT" in
  let entry =
    Entry.make ~accession:"W3"
      ~features:[ Feature.make Feature.Cds (Location.range 5 100) ]
      seq
  in
  let x = Wrapper.extract ~source:"test" entry in
  check Alcotest.int "no genes" 0 (List.length x.Wrapper.genes);
  check Alcotest.int "counted as skipped" 1 x.Wrapper.skipped_features

(* ---- integrator ------------------------------------------------------------------ *)

let test_kmer_similarity () =
  let a = Sequence.dna "ACGTACGTACGTACGTACGT" in
  check (Alcotest.float 1e-9) "identical" 1. (Integrator.kmer_similarity a a);
  let r = rng () in
  let b = Genalg_synth.Seqgen.dna r 20 in
  check Alcotest.bool "random is dissimilar" true (Integrator.kmer_similarity a b < 0.5)

let test_find_duplicates_on_ground_truth () =
  let r = rng () in
  let repo_a, repo_b, pairs =
    Genalg_synth.Recordgen.overlapping_repositories r ~size:40 ~overlap:0.5
      ~noise_fraction:0.45 ~error_rate:0.02 ()
  in
  let sourced =
    List.map (fun e -> ("A", e)) repo_a @ List.map (fun e -> ("B", e)) repo_b
  in
  let found = Integrator.find_duplicates ~threshold:0.5 sourced in
  let found_pairs =
    List.map
      (fun ((_, (a : Entry.t)), (_, (b : Entry.t)), _) ->
        (a.Entry.accession, b.Entry.accession))
      found
  in
  let truth = List.length pairs in
  let hits =
    List.length
      (List.filter
         (fun (x, y) -> List.mem (x, y) found_pairs || List.mem (y, x) found_pairs)
         pairs)
  in
  let false_pos = List.length found_pairs - hits in
  check Alcotest.bool
    (Printf.sprintf "recall >= 0.9 (got %d/%d)" hits truth)
    true
    (float_of_int hits /. float_of_int truth >= 0.9);
  check Alcotest.bool
    (Printf.sprintf "precision high (%d false positives)" false_pos)
    true
    (false_pos <= 2)

let test_reconcile_merges_and_keeps_conflicts () =
  let r = rng () in
  let e = List.hd (repo ~size:1 ~prefix:"RC" r) in
  let noisy = Genalg_synth.Recordgen.noisy_copy r ~error_rate:0.02 ~rename:"RCCOPY" e in
  let merged =
    Integrator.reconcile ~threshold:0.5 [ ("A", e); ("B", noisy); ]
  in
  check Alcotest.int "one cluster" 1 (List.length merged);
  let m = List.hd merged in
  check Alcotest.int "two members" 2 (List.length m.Integrator.members);
  if not (Sequence.equal e.Entry.sequence noisy.Entry.sequence) then begin
    check Alcotest.bool "flagged inconsistent" false m.Integrator.consistent;
    check Alcotest.int "both alternatives kept" 2 (Uncertain.cardinal m.Integrator.sequence)
  end

let test_reconcile_keeps_distinct_entries_apart () =
  let r = rng () in
  let entries = repo ~size:10 r in
  let sourced = List.map (fun e -> ("A", e)) entries in
  let merged = Integrator.reconcile sourced in
  check Alcotest.int "no spurious merges" 10 (List.length merged);
  check Alcotest.bool "all consistent" true
    (List.for_all (fun m -> m.Integrator.consistent) merged)

(* ---- loader / pipeline -------------------------------------------------------------- *)

let test_loader_full_and_incremental () =
  let r = rng () in
  let entries = repo ~size:10 ~prefix:"LD" r in
  let db = Db.create () in
  (match Loader.init db (Genalg_core.Builtin.create ()) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let merged = Integrator.reconcile (List.map (fun e -> ("src", e)) entries) in
  (match Loader.load_merged db merged with
  | Ok stats -> check Alcotest.int "entries loaded" 10 stats.Loader.entries
  | Error m -> Alcotest.fail m);
  let count () =
    match Genalg_sqlx.Exec.query db ~actor:"u" "SELECT count(*) FROM sequences" with
    | Ok (Genalg_sqlx.Exec.Rows { rows = [ [| D.Int n |] ]; _ }) -> n
    | _ -> -1
  in
  check Alcotest.int "10 rows" 10 (count ());
  (* incremental: one delete, one insert, one modify *)
  let extra = List.hd (repo ~size:1 ~prefix:"NEW" r) in
  let victim = List.hd entries in
  let modified = { (List.nth entries 5) with Entry.version = 2 } in
  let deltas =
    [
      Delta.insertion ~id:1 ~timestamp:1. extra;
      Delta.deletion ~id:2 ~timestamp:2. victim;
      Delta.modification ~id:3 ~timestamp:3. ~before:(List.nth entries 5) ~after:modified;
    ]
  in
  (match Loader.incremental db ~source:"src" deltas with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.int "still 10 rows" 10 (count ());
  (* the victim is gone, the new accession is present, version bumped *)
  let q sql =
    match Genalg_sqlx.Exec.query db ~actor:"u" sql with
    | Ok (Genalg_sqlx.Exec.Rows { rows; _ }) -> rows
    | _ -> Alcotest.fail sql
  in
  check Alcotest.int "victim gone" 0
    (List.length
       (q (Printf.sprintf "SELECT * FROM sequences WHERE accession = '%s'" victim.Entry.accession)));
  check Alcotest.int "insert present" 1
    (List.length
       (q (Printf.sprintf "SELECT * FROM sequences WHERE accession = '%s'" extra.Entry.accession)));
  match q (Printf.sprintf "SELECT version FROM sequences WHERE accession = '%s'"
             modified.Entry.accession) with
  | [ [| D.Int 2 |] ] -> ()
  | _ -> Alcotest.fail "modification not applied"

let test_loader_clear () =
  let r = rng () in
  let db = Db.create () in
  ignore (Loader.init db (Genalg_core.Builtin.create ()));
  ignore
    (Loader.load_merged db (Integrator.reconcile (List.map (fun e -> ("s", e)) (repo r))));
  (match Loader.clear db with Ok () -> () | Error m -> Alcotest.fail m);
  match Genalg_sqlx.Exec.query db ~actor:"u" "SELECT count(*) FROM sequences" with
  | Ok (Genalg_sqlx.Exec.Rows { rows = [ [| D.Int 0 |] ]; _ }) -> ()
  | _ -> Alcotest.fail "clear left rows behind"

let test_pipeline_end_to_end () =
  let r = rng () in
  let entries_a = repo ~size:12 ~prefix:"PA" r in
  let entries_b = repo ~size:12 ~prefix:"PB" r in
  let src_a = Source.create ~name:"bank-a" Source.Logged Source.Flat_file entries_a in
  let src_b = Source.create ~name:"bank-b" Source.Queryable Source.Relational entries_b in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src_a; src_b ] ()) in
  (match Pipeline.bootstrap pl with
  | Ok stats -> check Alcotest.int "bootstrap entries" 24 stats.Loader.entries
  | Error m -> Alcotest.fail m);
  (* push updates into both sources, then refresh *)
  let _, ups_a = Genalg_synth.Recordgen.update_stream r entries_a ~fraction:0.2 () in
  Source.apply src_a (to_source_updates ups_a);
  let _, ups_b = Genalg_synth.Recordgen.update_stream r entries_b ~fraction:0.2 () in
  Source.apply src_b (to_source_updates ups_b);
  match Pipeline.refresh pl with
  | Ok (_, n) ->
      check Alcotest.int "all deltas processed" (List.length ups_a + List.length ups_b) n
  | Error m -> Alcotest.fail m

let test_pipeline_with_active_source () =
  (* an Active (push) source drives the same incremental path: its
     triggers fire into the monitor queue and refresh applies them *)
  let r = rng () in
  let entries = repo ~size:8 ~prefix:"ACT" r in
  let src = Source.create ~name:"push-bank" Source.Active Source.Relational entries in
  let pl = Result.get_ok (Pipeline.create ~sources:[ src ] ()) in
  ignore (Result.get_ok (Pipeline.bootstrap pl));
  let extra = List.hd (repo ~size:1 ~prefix:"ACTNEW" r) in
  Source.apply src
    [ Source.Insert extra; Source.Delete (List.hd entries).Entry.accession ];
  match Pipeline.refresh pl with
  | Ok (_, n) ->
      check Alcotest.int "both pushed deltas applied" 2 n;
      let db = Pipeline.database pl in
      (match
         Genalg_sqlx.Exec.query db ~actor:"u" "SELECT count(*) FROM sequences"
       with
      | Ok (Genalg_sqlx.Exec.Rows { rows = [ [| D.Int 8 |] ]; _ }) -> ()
      | _ -> Alcotest.fail "row count after push refresh")
  | Error m -> Alcotest.fail m

let suites =
  [
    ( "etl.delta",
      [ tc "kinds" `Quick test_delta_kinds; tc "apply" `Quick test_delta_apply ] );
    ( "etl.source",
      [
        tc "capabilities" `Quick test_source_capabilities;
        tc "log and triggers" `Quick test_source_log_and_triggers;
        tc "dump roundtrip" `Quick test_source_dump_roundtrip;
      ] );
    ( "etl.monitor",
      [
        tc "figure 2 grid" `Quick test_figure2_grid;
        tc "db trigger detects" `Quick (monitor_detects Source.Active Source.Relational);
        tc "program trigger detects" `Quick (monitor_detects Source.Active Source.Hierarchical);
        tc "log inspection detects" `Quick (monitor_detects Source.Logged Source.Flat_file);
        tc "edit sequence detects" `Quick (monitor_detects Source.Queryable Source.Hierarchical);
        tc "snapshot differential detects" `Quick (monitor_detects Source.Queryable Source.Relational);
        tc "LCS diff detects" `Quick (monitor_detects Source.Non_queryable Source.Flat_file);
        tc "tree diff detects" `Quick (monitor_detects Source.Non_queryable Source.Hierarchical);
        tc "diff cost" `Quick test_monitor_diff_cost;
        tc "rejects N/A cell" `Quick test_monitor_rejects_na_cell;
      ] );
    ( "etl.tree_diff",
      [
        tc "equal" `Quick test_tree_diff_equal;
        tc "relabel" `Quick test_tree_diff_relabel;
        tc "insert/delete" `Quick test_tree_diff_insert_delete;
        tc "deep change is cheap" `Quick test_tree_diff_deep_change_is_cheap;
      ] );
    ( "etl.wrapper",
      [
        tc "extracts genes" `Quick test_wrapper_extracts_genes;
        tc "complement CDS" `Quick test_wrapper_complement_cds;
        tc "skips bad locations" `Quick test_wrapper_skips_bad_locations;
      ] );
    ( "etl.integrator",
      [
        tc "kmer similarity" `Quick test_kmer_similarity;
        tc "duplicates vs ground truth" `Quick test_find_duplicates_on_ground_truth;
        tc "merge keeps conflicts" `Quick test_reconcile_merges_and_keeps_conflicts;
        tc "distinct stay apart" `Quick test_reconcile_keeps_distinct_entries_apart;
      ] );
    ( "etl.loader",
      [
        tc "full and incremental" `Quick test_loader_full_and_incremental;
        tc "clear" `Quick test_loader_clear;
      ] );
    ( "etl.pipeline",
      [
        tc "end to end" `Quick test_pipeline_end_to_end;
        tc "active source" `Quick test_pipeline_with_active_source;
      ] );
  ]
