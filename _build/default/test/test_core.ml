(* Unit tests for the Genomics Algebra core (lib/core). *)

open Genalg_gdt
module Sort = Genalg_core.Sort
module Value = Genalg_core.Value
module Signature = Genalg_core.Signature
module Term = Genalg_core.Term
module Ops = Genalg_core.Ops
module Builtin = Genalg_core.Builtin
module Ontology = Genalg_core.Ontology
module Requirements = Genalg_core.Requirements

let check = Alcotest.check
let tc = Alcotest.test_case

let contains_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
  m = 0 || at 0

(* ---- sorts ------------------------------------------------------------ *)

let test_sort_strings () =
  List.iter
    (fun s ->
      check Alcotest.bool
        ("round trip " ^ Sort.to_string s)
        true
        (Sort.of_string (Sort.to_string s) = Some s))
    (Sort.all_base
    @ [ Sort.List Sort.Dna; Sort.Uncertain Sort.Mrna; Sort.List (Sort.List Sort.Int) ]);
  check Alcotest.bool "unknown sort" true (Sort.of_string "widget" = None)

(* ---- values ------------------------------------------------------------ *)

let test_value_sorts () =
  check Alcotest.string "dna sort" "dna" (Sort.to_string (Value.sort_of (Value.dna "ACGT")));
  check Alcotest.string "list sort" "list(int)"
    (Sort.to_string (Value.sort_of (Value.vlist Sort.Int [ Value.VInt 1 ])));
  Alcotest.check_raises "heterogeneous list rejected"
    (Invalid_argument "Value.vlist: element of sort string in list(int)") (fun () ->
      ignore (Value.vlist Sort.Int [ Value.VString "x" ]))

let test_value_equal () =
  check Alcotest.bool "dna equal" true (Value.equal (Value.dna "ACGT") (Value.dna "acgt"));
  check Alcotest.bool "dna <> rna" false (Value.equal (Value.dna "ACGT") (Value.rna "ACGU"))

(* ---- signature ---------------------------------------------------------- *)

let dummy_op name args result =
  {
    Signature.name;
    arg_sorts = args;
    result_sort = result;
    doc = "test";
    impl = (fun _ -> Ok (Value.VInt 0));
  }

let test_signature_register_resolve () =
  let sg = Signature.create () in
  Signature.register_exn sg (dummy_op "f" [ Sort.Int ] Sort.Int);
  check Alcotest.bool "resolves" true (Signature.resolve sg "f" [ Sort.Int ] <> None);
  check Alcotest.bool "case-insensitive" true (Signature.resolve sg "F" [ Sort.Int ] <> None);
  check Alcotest.bool "wrong arity" true (Signature.resolve sg "f" [] = None);
  check Alcotest.bool "duplicate rejected" true
    (Result.is_error (Signature.register sg (dummy_op "f" [ Sort.Int ] Sort.Float)));
  (* overloading on different argument sorts is fine *)
  check Alcotest.bool "overload ok" true
    (Result.is_ok (Signature.register sg (dummy_op "f" [ Sort.Float ] Sort.Float)))

let test_signature_widening () =
  let sg = Signature.create () in
  Signature.register_exn sg (dummy_op "g" [ Sort.Float ] Sort.Int);
  check Alcotest.bool "int widens to float" true
    (Signature.resolve sg "g" [ Sort.Int ] <> None)

let test_signature_result_check () =
  let sg = Signature.create () in
  Signature.register_exn sg
    {
      Signature.name = "lying";
      arg_sorts = [];
      result_sort = Sort.String;
      doc = "claims string, returns int";
      impl = (fun _ -> Ok (Value.VInt 1));
    };
  check Alcotest.bool "result sort enforced" true
    (Result.is_error (Signature.apply sg "lying" []))

let test_rank_notation () =
  let op = dummy_op "translate" [ Sort.Mrna ] Sort.Protein in
  check Alcotest.string "paper notation" "translate: mrna -> protein"
    (Signature.rank_to_string op)

(* ---- terms ---------------------------------------------------------------- *)

let gene_fixture () =
  let rng = Genalg_synth.Rng.make 101 in
  Genalg_synth.Genegen.gene rng ~id:"tst" ()

let test_term_central_dogma () =
  (* the paper's example: translate(splice(transcribe(g))) *)
  let sg = Builtin.default in
  let g = gene_fixture () in
  let term =
    Term.app "translate" [ Term.app "splice" [ Term.app "transcribe" [ Term.const (Value.VGene g) ] ] ]
  in
  (match Term.sort_check_closed sg term with
  | Ok sort -> check Alcotest.string "term sort" "protein" (Sort.to_string sort)
  | Error msg -> Alcotest.failf "sort check failed: %s" msg);
  match Term.eval_closed sg term with
  | Ok (Value.VProtein p) ->
      check Alcotest.bool "non-empty protein" true (Protein.length p > 0);
      (* must agree with the composed kernel function *)
      let direct = Result.get_ok (Ops.decode g) in
      check Alcotest.bool "term = decode" true (Protein.equal p direct)
  | Ok v -> Alcotest.failf "unexpected value %s" (Value.to_display_string v)
  | Error msg -> Alcotest.failf "eval failed: %s" msg

let test_term_sort_errors () =
  let sg = Builtin.default in
  let bad = Term.app "translate" [ Term.const (Value.dna "ACGT") ] in
  check Alcotest.bool "translate(dna) ill-sorted" true
    (Result.is_error (Term.sort_check_closed sg bad));
  let unknown = Term.app "frobnicate" [ Term.const (Value.VInt 1) ] in
  check Alcotest.bool "unknown operator" true
    (Result.is_error (Term.sort_check_closed sg unknown))

let test_term_variables () =
  let sg = Builtin.default in
  let term = Term.app "gc_content" [ Term.var "x" Sort.Dna ] in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string)) "vars"
    [ ("x", "dna") ]
    (List.map (fun (n, s) -> (n, Sort.to_string s)) (Term.vars term));
  check Alcotest.bool "closed check rejects free vars" true
    (Result.is_error (Term.sort_check_closed sg term));
  let env name = if name = "x" then Some (Value.dna "GGCC") else None in
  match Term.eval sg ~env term with
  | Ok (Value.VFloat f) -> check (Alcotest.float 1e-9) "gc of GGCC" 1. f
  | _ -> Alcotest.fail "eval with environment failed"

let test_term_to_string () =
  let term = Term.app "f" [ Term.var "g" Sort.Gene; Term.const (Value.VInt 3) ] in
  check Alcotest.string "syntax" "f(g, 3)" (Term.to_string term)

(* ---- kernel operations ------------------------------------------------------ *)

let test_transcribe_splice () =
  let g = gene_fixture () in
  let primary = Ops.transcribe g in
  check Alcotest.int "pre-mRNA length = gene length" (Gene.length g)
    (Transcript.primary_length primary);
  let m = Ops.splice primary in
  check Alcotest.int "mRNA length = exonic length" (Gene.exonic_length g)
    (Transcript.mrna_length m);
  (* spliced RNA is the concatenation of exon transcripts *)
  let expected =
    Sequence.to_rna (Sequence.concat (Gene.exon_sequences g)) |> Sequence.to_string
  in
  check Alcotest.string "exon concatenation" expected (Sequence.to_string m.Transcript.rna)

let test_translate () =
  let g = gene_fixture () in
  match Ops.decode g with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok p ->
      (* generated CDS starts with ATG -> protein starts with M and, since
         the generator writes ATG + sense codons + stop, its length is
         exonic/3 - 1 *)
      check Alcotest.char "starts with Met" 'M' (Sequence.get p.Protein.residues 0);
      check Alcotest.int "protein length"
        ((Gene.exonic_length g / 3) - 1)
        (Protein.length p)

let test_translate_no_start () =
  let m =
    Transcript.mrna ~gene_id:"x" ~code:Genetic_code.standard (Sequence.rna "CCCCCCCCC")
  in
  check Alcotest.bool "no start codon is an error" true (Result.is_error (Ops.translate m))

let test_translate_frame () =
  let s = Sequence.dna "ATGAAATAG" in
  check Alcotest.string "frame 0" "MK*"
    (Sequence.to_string (Ops.translate_frame ~frame:0 s));
  check Alcotest.string "frame 1" "*N"
    (Sequence.to_string (Ops.translate_frame ~frame:1 s));
  Alcotest.check_raises "frame 3 invalid"
    (Invalid_argument "Ops.translate_frame: frame must be 0-2") (fun () ->
      ignore (Ops.translate_frame ~frame:3 s))

let test_reverse_transcribe () =
  check Alcotest.string "U -> T" "ACGT"
    (Sequence.to_string (Ops.reverse_transcribe (Sequence.rna "ACGU")));
  Alcotest.check_raises "DNA input rejected"
    (Invalid_argument "Ops.reverse_transcribe: input must be RNA") (fun () ->
      ignore (Ops.reverse_transcribe (Sequence.dna "ACGT")))

let test_splice_uncertain () =
  let rna = Sequence.rna (String.make 90 'A') in
  let p =
    Transcript.primary ~gene_id:"g" ~exons:[ (0, 10); (20, 10); (40, 10) ]
      ~code:Genetic_code.standard rna
  in
  let u = Ops.splice_uncertain ~confidence:0.8 p in
  check Alcotest.int "canonical + 1 skip variant" 2 (Uncertain.cardinal u);
  check (Alcotest.float 1e-9) "canonical confidence" 0.8 (Uncertain.best_confidence u);
  check Alcotest.int "canonical is full splice" 30
    (Transcript.mrna_length (Uncertain.best u));
  let variants = Uncertain.alternatives u in
  let skip = List.nth variants 1 in
  check Alcotest.int "variant skips one exon" 20
    (Transcript.mrna_length skip.Uncertain.value)

let test_find_orfs () =
  (* hand-built: ATG AAA TAG at offset 0; reverse strand has its own *)
  let s = Sequence.dna "ATGAAATAGCCC" in
  let orfs = Ops.find_orfs ~min_length:9 s in
  check Alcotest.bool "finds the forward ORF" true
    (List.exists
       (fun (o : Ops.orf) -> o.Ops.strand = Ops.Forward && o.Ops.start = 0 && o.Ops.length = 9)
       orfs);
  let orf =
    List.find
      (fun (o : Ops.orf) -> o.Ops.strand = Ops.Forward && o.Ops.start = 0)
      orfs
  in
  check Alcotest.string "orf sequence" "ATGAAATAG"
    (Sequence.to_string (Ops.orf_sequence s orf));
  check Alcotest.string "orf protein" "MK"
    (Sequence.to_string (Ops.orf_protein s orf))

let test_find_orfs_on_generated_gene () =
  let g = gene_fixture () in
  let m = Ops.splice (Ops.transcribe g) in
  let cdna = Ops.reverse_transcribe m.Transcript.rna in
  let orfs = Ops.find_orfs ~min_length:30 ~both_strands:false cdna in
  (* the full CDS must be among them, starting at 0 *)
  check Alcotest.bool "CDS found as ORF" true
    (List.exists
       (fun (o : Ops.orf) -> o.Ops.start = 0 && o.Ops.length = Sequence.length cdna)
       orfs)

let test_gc_and_melting () =
  check (Alcotest.float 1e-9) "gc of GGCC" 1. (Ops.gc_content (Sequence.dna "GGCC"));
  check (Alcotest.float 1e-9) "gc of AT" 0. (Ops.gc_content (Sequence.dna "AT"));
  check (Alcotest.float 1e-9) "empty" 0. (Ops.gc_content (Sequence.empty Sequence.Dna));
  (* Wallace rule: 2(A+T) + 4(G+C) *)
  check (Alcotest.float 1e-9) "wallace" 20. (Ops.melting_temperature (Sequence.dna "ATGCGC"));
  let long = Sequence.dna (String.concat "" (List.init 10 (fun _ -> "AT")) ^ "GCGC") in
  check Alcotest.bool "long formula differs" true
    (Ops.melting_temperature long < 60.)

let test_codon_usage () =
  let usage = Ops.codon_usage (Sequence.dna "ATGATGAAA") in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "counts"
    [ ("ATG", 2); ("AAA", 1) ] usage

let test_restriction () =
  let ecori = Option.get (Ops.enzyme_by_name "EcoRI") in
  let s = Sequence.dna "AAAGAATTCAAAGAATTCAAA" in
  check (Alcotest.list Alcotest.int) "sites" [ 3; 12 ] (Ops.restriction_sites ecori s);
  let frags = Ops.digest ecori s in
  check (Alcotest.list Alcotest.string) "fragments" [ "AAAG"; "AATTCAAAG"; "AATTCAAA" ]
    (List.map Sequence.to_string frags);
  check Alcotest.int "no sites: whole molecule" 1
    (List.length (Ops.digest ecori (Sequence.dna "AAAA")))

let test_resembles () =
  let a = Sequence.dna "ACGTACGTACGTACGTACGT" in
  check (Alcotest.float 1e-9) "self-resemblance" 1. (Ops.resembles a a);
  let rng = Genalg_synth.Rng.make 5 in
  let b = Genalg_synth.Seqgen.mutate rng ~rate:0.1 a in
  let r = Ops.resembles a b in
  check Alcotest.bool "mutant close but below 1" true (r > 0.3 && r <= 1.);
  check (Alcotest.float 1e-9) "empty" 0. (Ops.resembles a (Sequence.empty Sequence.Dna));
  Alcotest.check_raises "protein vs dna"
    (Invalid_argument "Ops: cannot compare protein with nucleotide sequences")
    (fun () -> ignore (Ops.resembles a (Sequence.protein "MK")))

let test_back_translate () =
  (* Met -> ATG exactly; frame-0 translation of any concretization of the
     consensus recovers the protein *)
  check Alcotest.string "M -> ATG" "ATG"
    (Sequence.to_string (Ops.back_translate (Sequence.protein "M")));
  check Alcotest.string "W -> TGG" "TGG"
    (Sequence.to_string (Ops.back_translate (Sequence.protein "W")));
  (* Leu codons TTA TTG CTT CTC CTA CTG -> Y T N *)
  check Alcotest.string "L -> YTN" "YTN"
    (Sequence.to_string (Ops.back_translate (Sequence.protein "L")));
  let p = Sequence.protein "MKVLAW" in
  let consensus = Ops.back_translate p in
  check Alcotest.int "3 nt per residue" 18 (Sequence.length consensus);
  (* translating the consensus with ambiguity-aware codon translation
     recovers the residues wherever codons agree; at least M and W are
     unambiguous *)
  check Alcotest.char "first codon decodes to M" 'M'
    (Amino_acid.to_char
       (Genetic_code.translate_codon Genetic_code.standard
          (String.init 3 (fun i -> Sequence.get consensus i))));
  Alcotest.check_raises "nucleotide input rejected"
    (Invalid_argument "Ops.back_translate: input must be a protein sequence")
    (fun () -> ignore (Ops.back_translate (Sequence.dna "ACGT")))

let test_longest_repeat () =
  (match Ops.longest_repeat (Sequence.dna "ACGTTTACGT") with
  | Some (p1, p2, len) ->
      check Alcotest.int "repeat length" 4 len;
      check Alcotest.int "first" 0 p1;
      check Alcotest.int "second" 6 p2
  | None -> Alcotest.fail "expected ACGT repeat");
  check Alcotest.bool "no repeats in distinct letters" true
    (Ops.longest_repeat (Sequence.dna "ACGT") = None)

let test_identity_edit_distance () =
  check (Alcotest.float 1e-9) "identical" 1.
    (Ops.identity (Sequence.dna "ACGT") (Sequence.dna "ACGT"));
  check Alcotest.int "edit distance" 1
    (Ops.edit_distance (Sequence.dna "ACGT") (Sequence.dna "ACCT"))

(* ---- builtin signature -------------------------------------------------------- *)

let test_builtin_operator_count () =
  let sg = Builtin.create () in
  check Alcotest.bool "rich signature" true (Signature.cardinal sg >= 40);
  List.iter
    (fun name ->
      check Alcotest.bool ("has " ^ name) true (Signature.mem sg name))
    [ "transcribe"; "splice"; "translate"; "decode"; "gc_content"; "contains";
      "resembles"; "find_orfs"; "digest"; "reverse_complement"; "length";
      "back_translate"; "longest_repeat" ]

let test_builtin_apply () =
  let sg = Builtin.default in
  (match Signature.apply sg "gc_content" [ Value.dna "GGCC" ] with
  | Ok (Value.VFloat f) -> check (Alcotest.float 1e-9) "gc via signature" 1. f
  | _ -> Alcotest.fail "gc_content apply failed");
  (match Signature.apply sg "contains" [ Value.dna "AACGTA"; Value.VString "ACGT" ] with
  | Ok (Value.VBool b) -> check Alcotest.bool "contains" true b
  | _ -> Alcotest.fail "contains apply failed");
  match Signature.apply sg "digest" [ Value.dna "AAAGAATTCAAA"; Value.VString "NoSuchEnzyme" ] with
  | Error msg ->
      check Alcotest.bool "enzyme error mentions name" true
        (contains_sub msg "NoSuchEnzyme")
  | Ok _ -> Alcotest.fail "unknown enzyme should fail"

let test_builtin_extensibility () =
  let sg = Builtin.create () in
  Signature.register_exn sg
    {
      Signature.name = "at_content";
      arg_sorts = [ Sort.Dna ];
      result_sort = Sort.Float;
      doc = "user extension";
      impl =
        (function
        | [ Value.VDna s ] -> Ok (Value.VFloat (1. -. Ops.gc_content s))
        | _ -> assert false);
    };
  match Signature.apply sg "at_content" [ Value.dna "AATT" ] with
  | Ok (Value.VFloat f) -> check (Alcotest.float 1e-9) "extension works" 1. f
  | _ -> Alcotest.fail "user-registered operator failed"

(* ---- ontology ------------------------------------------------------------------ *)

let test_ontology_resolution () =
  let o = Ontology.default () in
  check Alcotest.bool "gene resolves" true (Ontology.resolve o "gene" <> None);
  check Alcotest.bool "synonym resolves" true
    (Ontology.resolve_sort o "messenger rna" = Some Sort.Mrna);
  check Alcotest.bool "case/space-insensitive" true
    (Ontology.resolve_sort o "  Messenger   RNA " = Some Sort.Mrna);
  check (Alcotest.option Alcotest.string) "operation" (Some "gc_content")
    (Ontology.resolve_operation o "gc fraction");
  check Alcotest.bool "unknown" true (Ontology.resolve o "flux capacitor" = None)

let test_ontology_homonyms () =
  let o = Ontology.default () in
  check Alcotest.bool "expression is ambiguous" true (Ontology.is_ambiguous o "expression");
  check (Alcotest.option Alcotest.string) "biology context" (Some "decode")
    (Ontology.resolve_operation ~context:"molecular-biology" o "expression");
  check Alcotest.bool "query-language context" true
    (Ontology.resolve_sort ~context:"query-language" o "expression" = Some Sort.String)

let test_ontology_uniqueness () =
  let o = Ontology.default () in
  check Alcotest.bool "duplicate canonical term rejected" true
    (Result.is_error
       (Ontology.add o
          {
            Ontology.term = "gene";
            synonyms = [];
            definition = "dup";
            context = "molecular-biology";
            target = Ontology.Sort_target Sort.Gene;
          }))

(* ---- requirements ---------------------------------------------------------------- *)

let test_requirements_catalogue () =
  check Alcotest.int "15 requirements" 15 (List.length Requirements.all_requirements);
  check Alcotest.int "10 problems" 10 (List.length Requirements.all_problems);
  (* every C references at least one B, and C15 maps to B4 as in the paper *)
  List.iter
    (fun c ->
      check Alcotest.bool
        (Requirements.requirement_label c ^ " has cross refs")
        true
        (Requirements.cross_references c <> []))
    Requirements.all_requirements;
  check (Alcotest.list Alcotest.string) "C15 -> B4" [ "B4" ]
    (List.map Requirements.problem_label (Requirements.cross_references Requirements.C15))

let suites =
  [
    ("core.sort", [ tc "strings" `Quick test_sort_strings ]);
    ( "core.value",
      [ tc "sorts" `Quick test_value_sorts; tc "equal" `Quick test_value_equal ] );
    ( "core.signature",
      [
        tc "register/resolve" `Quick test_signature_register_resolve;
        tc "widening" `Quick test_signature_widening;
        tc "result check" `Quick test_signature_result_check;
        tc "rank notation" `Quick test_rank_notation;
      ] );
    ( "core.term",
      [
        tc "central dogma" `Quick test_term_central_dogma;
        tc "sort errors" `Quick test_term_sort_errors;
        tc "variables" `Quick test_term_variables;
        tc "to_string" `Quick test_term_to_string;
      ] );
    ( "core.ops",
      [
        tc "transcribe/splice" `Quick test_transcribe_splice;
        tc "translate" `Quick test_translate;
        tc "translate no start" `Quick test_translate_no_start;
        tc "translate frame" `Quick test_translate_frame;
        tc "reverse transcribe" `Quick test_reverse_transcribe;
        tc "splice uncertain" `Quick test_splice_uncertain;
        tc "find orfs" `Quick test_find_orfs;
        tc "orfs on gene" `Quick test_find_orfs_on_generated_gene;
        tc "gc/melting" `Quick test_gc_and_melting;
        tc "codon usage" `Quick test_codon_usage;
        tc "restriction" `Quick test_restriction;
        tc "resembles" `Quick test_resembles;
        tc "identity/edit" `Quick test_identity_edit_distance;
        tc "back translate" `Quick test_back_translate;
        tc "longest repeat" `Quick test_longest_repeat;
      ] );
    ( "core.builtin",
      [
        tc "operator count" `Quick test_builtin_operator_count;
        tc "apply" `Quick test_builtin_apply;
        tc "extensibility" `Quick test_builtin_extensibility;
      ] );
    ( "core.ontology",
      [
        tc "resolution" `Quick test_ontology_resolution;
        tc "homonyms" `Quick test_ontology_homonyms;
        tc "uniqueness" `Quick test_ontology_uniqueness;
      ] );
    ("core.requirements", [ tc "catalogue" `Quick test_requirements_catalogue ]);
  ]
