(* The Table 1 reproduction must stay honest: every capability the
   GenAlg+UDB column claims is probed live, and this test pins all 15
   probes to Full — a regression in any subsystem the probes touch
   (pipeline, integrator, SQL, biolang, signature, persistence) fails
   here rather than silently downgrading the published matrix. Probes
   must also be idempotent (the bench evaluates each cell twice). *)

module Capability = Genalg_capability.Capability
module R = Genalg_core.Requirements

let check = Alcotest.check
let tc = Alcotest.test_case

let test_genalg_column_full () =
  let us = Capability.genalg () in
  List.iter
    (fun req ->
      let c = us.Capability.assess req in
      check Alcotest.string
        (Printf.sprintf "%s (%s)" (R.requirement_label req) c.Capability.notes)
        "+"
        (Capability.support_glyph c.Capability.support))
    R.all_requirements

let test_probes_idempotent () =
  let us = Capability.genalg () in
  (* a second pass over the same closure must give the same verdicts *)
  List.iter
    (fun req ->
      let first = (us.Capability.assess req).Capability.support in
      let second = (us.Capability.assess req).Capability.support in
      check Alcotest.string
        (R.requirement_label req)
        (Capability.support_glyph first)
        (Capability.support_glyph second))
    R.all_requirements

let test_legacy_columns_match_paper () =
  (* spot-check the transcription of the paper's own assessments *)
  let by_name n =
    List.find (fun s -> s.Capability.name = n) (Capability.all_systems ())
  in
  let glyph s req = Capability.support_glyph (s.Capability.assess req).Capability.support in
  let srs = by_name "SRS" and gus = by_name "GUS" and tambis = by_name "TAMBIS" in
  check Alcotest.string "SRS C5 partial" "o" (glyph srs R.C5);
  check Alcotest.string "SRS C9 none" "-" (glyph srs R.C9);
  check Alcotest.string "GUS C8 full" "+" (glyph gus R.C8);
  check Alcotest.string "GUS C15 full" "+" (glyph gus R.C15);
  check Alcotest.string "TAMBIS C8 full" "+" (glyph tambis R.C8);
  (* the paper's punchline: NO legacy system covers C9, C12 or C14 *)
  List.iter
    (fun s ->
      List.iter
        (fun req ->
          check Alcotest.string
            (s.Capability.name ^ " lacks " ^ R.requirement_label req)
            "-" (glyph s req))
        [ R.C9; R.C12; R.C14 ])
    [ by_name "SRS"; by_name "BioNavigator"; by_name "K2/Kleisli";
      by_name "DiscoveryLink"; by_name "TAMBIS"; by_name "GUS" ]

let suites =
  [
    ( "capability",
      [
        tc "GenAlg column all probes pass" `Quick test_genalg_column_full;
        tc "probes idempotent" `Quick test_probes_idempotent;
        tc "legacy columns match paper" `Quick test_legacy_columns_match_paper;
      ] );
  ]
