(* Unit tests for the biological query language (lib/biolang). *)

module Biolang = Genalg_biolang.Biolang
module Ast = Genalg_sqlx.Ast
module Exec = Genalg_sqlx.Exec
module D = Genalg_storage.Dtype

let check = Alcotest.check
let tc = Alcotest.test_case

let sql_of input =
  match Biolang.compile_to_sql input with
  | Ok sql -> sql
  | Error msg -> Alcotest.failf "compile %S failed: %s" input msg

let test_find_simple () =
  check Alcotest.string "organism filter"
    "SELECT * FROM sequences WHERE (organism = 'Synthetica primus')"
    (sql_of "find sequences where organism is 'Synthetica primus'")

let test_count () =
  check Alcotest.string "count"
    "SELECT COUNT(*) AS count FROM sequences WHERE (gc > 0.5)"
    (sql_of "count sequences where gc content above 0.5")

let test_contains () =
  check Alcotest.string "contains becomes UDF"
    "SELECT * FROM sequences WHERE contains(seq, 'ATTGCCATA')"
    (sql_of "find sequences where sequence contains 'ATTGCCATA'")

let test_resembles () =
  check Alcotest.string "resembles with threshold"
    "SELECT * FROM sequences WHERE (resembles(seq, dna('ACGTACGT')) >= 0.8)"
    (sql_of "find sequences where sequence resembles 'ACGTACGT' at least 0.8")

let test_conjunction_and_limit () =
  check Alcotest.string "and + limit"
    "SELECT * FROM sequences WHERE ((organism = 'x') AND (length >= 500)) LIMIT 10"
    (sql_of "find sequences where organism is 'x' and length at least 500 limit 10")

let test_genes_entity () =
  check Alcotest.string "genes table"
    "SELECT * FROM genes WHERE (exon_count >= 3)"
    (sql_of "find genes where exon count at least 3")

let test_synonyms () =
  (* "loci" is an entity synonym, "size" an attribute synonym *)
  check Alcotest.string "loci -> genes" "SELECT * FROM genes WHERE (length < 200)"
    (sql_of "find loci where size below 200");
  (* ontology synonym: "messenger rna" resolves via the ontology to the
     sequences table *)
  check Alcotest.string "messenger rna -> sequences" "SELECT * FROM sequences"
    (sql_of "find messenger rna")

let test_negation_and_relations () =
  check Alcotest.string "not"
    "SELECT * FROM sequences WHERE NOT ((consistent = TRUE))"
    (sql_of "find sequences where consistent not is true");
  check Alcotest.string "at most"
    "SELECT * FROM sequences WHERE (length <= 100)"
    (sql_of "find sequences where length at most 100");
  check Alcotest.string "more than"
    "SELECT * FROM sequences WHERE (version > 1)"
    (sql_of "find sequences where version more than 1")

let test_between () =
  check Alcotest.string "between"
    "SELECT * FROM sequences WHERE ((length >= 500) AND (length <= 900))"
    (sql_of "find sequences where length between 500 and 900")

let test_sorted_by () =
  check Alcotest.string "sorted by desc"
    "SELECT * FROM sequences WHERE (gc > 0.4) ORDER BY length DESC LIMIT 5"
    (sql_of "find sequences where gc content above 0.4 sorted by length descending limit 5");
  check Alcotest.string "order by default asc"
    "SELECT * FROM genes ORDER BY exon_count ASC"
    (sql_of "find genes ordered by exon count")

let test_errors () =
  let err input = Result.is_error (Biolang.compile input) in
  check Alcotest.bool "unknown entity" true (err "find widgets");
  check Alcotest.bool "unknown attribute" true (err "find sequences where wibble is 3");
  check Alcotest.bool "missing relation" true (err "find sequences where organism");
  check Alcotest.bool "no verb" true (err "sequences where organism is 'x'");
  check Alcotest.bool "trailing junk" true (err "find sequences limit 5 extra")

(* execution parity with hand-written SQL (experiment E9's correctness half) *)
let test_execution_parity () =
  let db = Genalg_storage.Database.create () in
  let rng = Genalg_synth.Rng.make 91 in
  let entries = Genalg_synth.Recordgen.repository rng ~size:30 () in
  ignore (Genalg_etl.Loader.init db Genalg_core.Builtin.default);
  ignore
    (Genalg_etl.Loader.load_merged db
       (Genalg_etl.Integrator.reconcile (List.map (fun e -> ("s", e)) entries)));
  let bio = "count sequences where gc content above 0.45 and length at least 900" in
  let sql =
    "SELECT count(*) AS count FROM sequences WHERE gc > 0.45 AND length >= 900"
  in
  let run_bio = Result.get_ok (Biolang.run db ~actor:"u" bio) in
  let run_sql = Result.get_ok (Exec.query db ~actor:"u" sql) in
  match run_bio, run_sql with
  | Exec.Rows a, Exec.Rows b ->
      check Alcotest.bool "same answer" true (a.Exec.rows = b.Exec.rows);
      check Alcotest.bool "non-trivial fixture" true
        (match a.Exec.rows with [ [| D.Int _ |] ] -> true | _ -> false)
  | _ -> Alcotest.fail "expected row results"

let test_output_formats () =
  let db = Genalg_storage.Database.create () in
  let rng = Genalg_synth.Rng.make 92 in
  let entries = Genalg_synth.Recordgen.repository rng ~size:5 ~prefix:"OUT" () in
  ignore (Genalg_etl.Loader.init db Genalg_core.Builtin.default);
  ignore
    (Genalg_etl.Loader.load_merged db
       (Genalg_etl.Integrator.reconcile (List.map (fun e -> ("s", e)) entries)));
  let contains_sub hay needle =
    let n = String.length hay and m = String.length needle in
    let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
    m = 0 || at 0
  in
  (* split_output_clause *)
  check Alcotest.bool "fasta clause" true
    (snd (Biolang.split_output_clause "find sequences as fasta") = Biolang.Fasta);
  check Alcotest.bool "xml clause" true
    (snd (Biolang.split_output_clause "find sequences as xml") = Biolang.Genalgxml);
  check Alcotest.bool "default table" true
    (snd (Biolang.split_output_clause "find sequences") = Biolang.Table);
  (* FASTA rendering round-trips through the FASTA parser *)
  (match Biolang.run_rendered db ~actor:"u" "find sequences limit 3 as fasta" with
  | Ok text -> (
      match Genalg_formats.Fasta.parse text with
      | Ok records -> check Alcotest.int "3 fasta records" 3 (List.length records)
      | Error m -> Alcotest.failf "rendered FASTA does not parse: %s" m)
  | Error m -> Alcotest.fail m);
  (* XML rendering is a well-formed GenAlgXML list *)
  (match Biolang.run_rendered db ~actor:"u" "find sequences limit 2 as xml" with
  | Ok text -> (
      match Genalg_xml.Genalgxml.of_string text with
      | Ok (Genalg_core.Value.VList (_, vs)) ->
          check Alcotest.int "2 values" 2 (List.length vs)
      | Ok _ -> Alcotest.fail "expected a list document"
      | Error m -> Alcotest.failf "rendered XML does not parse: %s" m)
  | Error m -> Alcotest.fail m);
  (* table rendering falls through to the usual renderer *)
  match Biolang.run_rendered db ~actor:"u" "count sequences as table" with
  | Ok text -> check Alcotest.bool "table has count" true (contains_sub text "count")
  | Error m -> Alcotest.fail m

let test_vocabulary_listing () =
  check Alcotest.bool "vocabulary non-empty" true (List.length (Biolang.vocabulary ()) > 10)

let suites =
  [
    ( "biolang",
      [
        tc "find simple" `Quick test_find_simple;
        tc "count" `Quick test_count;
        tc "contains" `Quick test_contains;
        tc "resembles" `Quick test_resembles;
        tc "conjunction/limit" `Quick test_conjunction_and_limit;
        tc "genes entity" `Quick test_genes_entity;
        tc "synonyms" `Quick test_synonyms;
        tc "negation/relations" `Quick test_negation_and_relations;
        tc "between" `Quick test_between;
        tc "sorted by" `Quick test_sorted_by;
        tc "errors" `Quick test_errors;
        tc "execution parity" `Quick test_execution_parity;
        tc "output formats" `Quick test_output_formats;
        tc "vocabulary" `Quick test_vocabulary_listing;
      ] );
  ]
