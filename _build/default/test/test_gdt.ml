(* Unit tests for the genomic data types (lib/gdt). *)

open Genalg_gdt

let check = Alcotest.check
let tc = Alcotest.test_case

(* ---- nucleotides -------------------------------------------------- *)

let test_nucleotide_roundtrip () =
  List.iter
    (fun b ->
      check (Alcotest.option Alcotest.char) "of_char (to_char b) = b"
        (Some (Nucleotide.to_char b))
        (Option.map Nucleotide.to_char (Nucleotide.of_char (Nucleotide.to_char b))))
    Nucleotide.all

let test_nucleotide_lowercase () =
  check Alcotest.char "lower-case parses" 'A'
    (Nucleotide.to_char (Nucleotide.of_char_exn 'a'))

let test_nucleotide_invalid () =
  check Alcotest.bool "Z is invalid" true (Nucleotide.of_char 'Z' = None);
  Alcotest.check_raises "of_char_exn raises" (Invalid_argument "Nucleotide.of_char_exn: 'Z'")
    (fun () -> ignore (Nucleotide.of_char_exn 'Z'))

let test_complement_involution () =
  List.iter
    (fun b ->
      check Alcotest.char
        (Printf.sprintf "complement^2 %c" (Nucleotide.to_char b))
        (Nucleotide.to_char (if b = Nucleotide.U then Nucleotide.T else b))
        (Nucleotide.to_char (Nucleotide.complement (Nucleotide.complement b))))
    Nucleotide.all

let test_expand () =
  check Alcotest.int "N expands to 4" 4 (List.length (Nucleotide.expand Nucleotide.N));
  check Alcotest.int "R expands to 2" 2 (List.length (Nucleotide.expand Nucleotide.R));
  check Alcotest.bool "A not ambiguous" false (Nucleotide.is_ambiguous Nucleotide.A);
  check Alcotest.bool "Y ambiguous" true (Nucleotide.is_ambiguous Nucleotide.Y)

let test_matches () =
  check Alcotest.bool "N matches A" true (Nucleotide.matches Nucleotide.N Nucleotide.A);
  check Alcotest.bool "R matches G" true (Nucleotide.matches Nucleotide.R Nucleotide.G);
  check Alcotest.bool "R does not match C" false
    (Nucleotide.matches Nucleotide.R Nucleotide.C);
  check Alcotest.bool "U matches T" true (Nucleotide.matches Nucleotide.U Nucleotide.T)

(* ---- amino acids --------------------------------------------------- *)

let test_amino_roundtrip () =
  List.iter
    (fun a ->
      check Alcotest.char "one-letter round trip" (Amino_acid.to_char a)
        (Amino_acid.to_char (Amino_acid.of_char_exn (Amino_acid.to_char a))))
    (Amino_acid.all_standard @ [ Amino_acid.Asx; Amino_acid.Glx; Amino_acid.Xaa; Amino_acid.Stop ])

let test_amino_three_letter () =
  check (Alcotest.option Alcotest.char) "Met" (Some 'M')
    (Option.map Amino_acid.to_char (Amino_acid.of_three_letter "Met"));
  check Alcotest.string "Ter for stop" "Ter" (Amino_acid.to_three_letter Amino_acid.Stop);
  check (Alcotest.option Alcotest.char) "case-insensitive" (Some 'W')
    (Option.map Amino_acid.to_char (Amino_acid.of_three_letter "TRP"))

let test_amino_masses () =
  check Alcotest.bool "Gly lightest standard" true
    (List.for_all
       (fun a -> Amino_acid.average_mass Amino_acid.Gly <= Amino_acid.average_mass a)
       Amino_acid.all_standard);
  check Alcotest.bool "stop is massless" true (Amino_acid.average_mass Amino_acid.Stop = 0.)

(* ---- sequences ----------------------------------------------------- *)

let test_sequence_encodings () =
  check Alcotest.bool "canonical DNA packs 2-bit" true
    (Sequence.encoding (Sequence.dna "ACGTACGT") = Sequence.Packed2);
  check Alcotest.bool "ambiguous DNA packs 4-bit" true
    (Sequence.encoding (Sequence.dna "ACGTN") = Sequence.Packed4);
  check Alcotest.bool "protein is byte-encoded" true
    (Sequence.encoding (Sequence.protein "MKV") = Sequence.Byte);
  check Alcotest.bool "canonical RNA packs 2-bit" true
    (Sequence.encoding (Sequence.rna "ACGU") = Sequence.Packed2)

let test_sequence_memory () =
  (* 2-bit packing: 4 bases per byte *)
  check Alcotest.int "100 bases in 25 bytes" 25
    (Sequence.memory_bytes (Sequence.dna (String.make 100 'A')));
  check Alcotest.int "IUPAC: 2 bases per byte" 50
    (Sequence.memory_bytes
       (Sequence.dna (String.concat "" (List.init 50 (fun _ -> "AN")))))

let test_sequence_validation () =
  check Alcotest.bool "U invalid in DNA" true
    (Result.is_error (Sequence.of_string Sequence.Dna "ACGU"));
  check Alcotest.bool "T invalid in RNA" true
    (Result.is_error (Sequence.of_string Sequence.Rna "ACGT"));
  check Alcotest.bool "J invalid in protein" true
    (Result.is_error (Sequence.of_string Sequence.Protein "MJ"));
  check Alcotest.bool "case normalised" true
    (Sequence.equal (Sequence.dna "acgt") (Sequence.dna "ACGT"))

let test_sequence_access () =
  let s = Sequence.dna "ACGTN" in
  check Alcotest.char "get 0" 'A' (Sequence.get s 0);
  check Alcotest.char "get 4" 'N' (Sequence.get s 4);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Sequence.get: index out of bounds") (fun () ->
      ignore (Sequence.get s 5));
  check Alcotest.string "sub" "CGT" (Sequence.to_string (Sequence.sub s ~pos:1 ~len:3))

let test_sequence_revcomp () =
  check Alcotest.string "revcomp" "CCAATTGG"
    (Sequence.to_string (Sequence.reverse_complement (Sequence.dna "CCAATTGG")));
  check Alcotest.string "revcomp asymmetric" "TTTGCA"
    (Sequence.to_string (Sequence.reverse_complement (Sequence.dna "TGCAAA")));
  check Alcotest.string "RNA complement uses U" "UACG"
    (Sequence.to_string (Sequence.complement (Sequence.rna "AUGC")));
  Alcotest.check_raises "protein cannot complement"
    (Invalid_argument "Sequence.complement: protein sequence") (fun () ->
      ignore (Sequence.complement (Sequence.protein "MK")))

let test_sequence_transcription_letters () =
  check Alcotest.string "to_rna" "ACGU" (Sequence.to_string (Sequence.to_rna (Sequence.dna "ACGT")));
  check Alcotest.string "to_dna" "ACGT" (Sequence.to_string (Sequence.to_dna (Sequence.rna "ACGU")))

let test_sequence_concat_rev () =
  let a = Sequence.dna "AAA" and b = Sequence.dna "CCC" in
  check Alcotest.string "append" "AAACCC" (Sequence.to_string (Sequence.append a b));
  check Alcotest.string "rev" "TGC" (Sequence.to_string (Sequence.rev (Sequence.dna "CGT")));
  Alcotest.check_raises "mixed alphabets"
    (Invalid_argument "Sequence.concat: mixed alphabets") (fun () ->
      ignore (Sequence.concat [ a; Sequence.rna "AAA" ]))

let test_sequence_find () =
  let s = Sequence.dna "ACGTACGTACGT" in
  check (Alcotest.option Alcotest.int) "find" (Some 0) (Sequence.find ~pattern:"ACG" s);
  check (Alcotest.option Alcotest.int) "find from 1" (Some 4)
    (Sequence.find ~start:1 ~pattern:"ACG" s);
  check (Alcotest.list Alcotest.int) "find_all" [ 0; 4; 8 ]
    (Sequence.find_all ~pattern:"ACG" s);
  check (Alcotest.list Alcotest.int) "overlapping" [ 0; 1; 2 ]
    (Sequence.find_all ~pattern:"AA" (Sequence.dna "AAAA"));
  check Alcotest.bool "ambiguity codes match in subject" true
    (Sequence.contains ~pattern:"ACG" (Sequence.dna "NNACGNN"));
  check Alcotest.bool "ambiguity in pattern" true
    (Sequence.contains ~pattern:"ARG" (Sequence.dna "TTAGGTT"))

let test_sequence_counts () =
  let s = Sequence.dna "GGCCAATT" in
  check Alcotest.int "gc_count" 4 (Sequence.gc_count s);
  check Alcotest.int "count A" 2 (Sequence.count (fun c -> c = 'A') s)

let test_sequence_serialization () =
  List.iter
    (fun s ->
      match Sequence.of_bytes (Sequence.to_bytes s) with
      | Ok s2 -> check Alcotest.bool "binary round trip" true (Sequence.equal s s2)
      | Error msg -> Alcotest.failf "of_bytes failed: %s" msg)
    [
      Sequence.dna "ACGTACGTACGTA";
      Sequence.dna "ACGTN";
      Sequence.rna "ACGUACGU";
      Sequence.protein "MKVLAW";
      Sequence.empty Sequence.Dna;
    ];
  check Alcotest.bool "corrupt input rejected" true
    (Result.is_error (Sequence.of_bytes (Bytes.of_string "garbage")))

let test_sequence_compare () =
  check Alcotest.bool "equal across encodings" true
    (Sequence.equal (Sequence.dna "ACGT") (Sequence.dna "ACGT"));
  check Alcotest.bool "lexicographic" true
    (Sequence.compare (Sequence.dna "AAA") (Sequence.dna "AAC") < 0);
  check Alcotest.bool "prefix is smaller" true
    (Sequence.compare (Sequence.dna "AA") (Sequence.dna "AAA") < 0)

(* ---- genetic codes -------------------------------------------------- *)

let test_translate_codon () =
  let t c = Amino_acid.to_char (Genetic_code.translate_codon Genetic_code.standard c) in
  check Alcotest.char "ATG = Met" 'M' (t "ATG");
  check Alcotest.char "AUG = Met (RNA)" 'M' (t "AUG");
  check Alcotest.char "TAA = stop" '*' (t "TAA");
  check Alcotest.char "TGG = Trp" 'W' (t "TGG");
  check Alcotest.char "GGG = Gly" 'G' (t "GGG");
  check Alcotest.char "TTT = Phe" 'F' (t "TTT")

let test_code_differences () =
  (* TGA: stop in standard, Trp in vertebrate mitochondrial *)
  check Alcotest.char "TGA standard" '*'
    (Amino_acid.to_char (Genetic_code.translate_codon Genetic_code.standard "TGA"));
  check Alcotest.char "TGA mito" 'W'
    (Amino_acid.to_char
       (Genetic_code.translate_codon Genetic_code.vertebrate_mitochondrial "TGA"));
  (* AGA: Arg in standard, stop in vertebrate mitochondrial *)
  check Alcotest.char "AGA mito stop" '*'
    (Amino_acid.to_char
       (Genetic_code.translate_codon Genetic_code.vertebrate_mitochondrial "AGA"))

let test_ambiguous_codon () =
  (* GCN is alanine for any N *)
  check Alcotest.char "GCN = Ala" 'A'
    (Amino_acid.to_char (Genetic_code.translate_codon Genetic_code.standard "GCN"));
  (* NNN is unknown *)
  check Alcotest.char "NNN = Xaa" 'X'
    (Amino_acid.to_char (Genetic_code.translate_codon Genetic_code.standard "NNN"))

let test_start_stop () =
  check Alcotest.bool "ATG starts" true
    (Genetic_code.is_start_codon Genetic_code.standard "ATG");
  check Alcotest.bool "TAA stops" true
    (Genetic_code.is_stop_codon Genetic_code.standard "TAA");
  check (Alcotest.list Alcotest.string) "standard stops" [ "TAA"; "TAG"; "TGA" ]
    (Genetic_code.stop_codons Genetic_code.standard);
  check Alcotest.bool "bacterial has GTG start" true
    (Genetic_code.is_start_codon Genetic_code.bacterial "GTG")

let test_back_translate () =
  check Alcotest.int "6 Leu codons" 6
    (List.length (Genetic_code.back_translate Genetic_code.standard Amino_acid.Leu));
  check (Alcotest.list Alcotest.string) "Met codon" [ "ATG" ]
    (Genetic_code.back_translate Genetic_code.standard Amino_acid.Met)

let test_code_registry () =
  check Alcotest.bool "by_id 1" true (Genetic_code.by_id 1 <> None);
  check Alcotest.bool "by_id 2" true (Genetic_code.by_id 2 <> None);
  check Alcotest.bool "by_id 11" true (Genetic_code.by_id 11 <> None);
  check Alcotest.bool "by_id 99 absent" true (Genetic_code.by_id 99 = None)

(* ---- locations ------------------------------------------------------ *)

let test_location_parse_print () =
  List.iter
    (fun s ->
      match Location.of_string s with
      | Ok l -> check Alcotest.string ("round trip " ^ s) s (Location.to_string l)
      | Error msg -> Alcotest.failf "parse %s failed: %s" s msg)
    [ "42"; "1..10"; "complement(3..9)"; "join(1..10,20..30)";
      "join(1..10,complement(20..30),45)";
      "complement(join(1..5,8..12))" ]

let test_location_invalid () =
  List.iter
    (fun s ->
      check Alcotest.bool ("rejects " ^ s) true (Result.is_error (Location.of_string s)))
    [ ""; "0..5"; "10..5"; "join()"; "abc"; "1..2extra" ]

let test_location_partial_markers () =
  match Location.of_string "<1..>99" with
  | Ok l -> check Alcotest.string "partial markers dropped" "1..99" (Location.to_string l)
  | Error msg -> Alcotest.failf "partial parse failed: %s" msg

let test_location_extract () =
  let seq = Sequence.dna "AACCGGTTAA" in
  let get s = Sequence.to_string (Location.extract (Result.get_ok (Location.of_string s)) seq) in
  check Alcotest.string "range" "ACCG" (get "2..5");
  check Alcotest.string "point" "A" (get "1");
  (* bases 4..7 are CGGT; the complement strand read 5'->3' is ACCG *)
  check Alcotest.string "complement" "ACCG" (get "complement(4..7)");
  check Alcotest.string "join" "AAAA" (get "join(1..2,9..10)")

let test_location_metrics () =
  let l = Result.get_ok (Location.of_string "join(1..10,complement(20..30))") in
  check Alcotest.int "length sums parts" 21 (Location.length l);
  check (Alcotest.pair Alcotest.int Alcotest.int) "span" (1, 30) (Location.span l);
  check Alcotest.string "shift" "join(11..20,complement(30..40))"
    (Location.to_string (Location.shift 10 l))

(* ---- features ------------------------------------------------------- *)

let test_feature_kinds () =
  check Alcotest.string "CDS round trip" "CDS"
    (Feature.kind_to_string (Feature.kind_of_string "cds"));
  check Alcotest.string "unknown preserved" "misc_signal"
    (Feature.kind_to_string (Feature.kind_of_string "misc_signal"))

let test_feature_qualifiers () =
  let f =
    Feature.make ~qualifiers:[ ("gene", "lacZ"); ("note", "a"); ("note", "b") ]
      Feature.Gene (Location.range 1 10)
  in
  check (Alcotest.option Alcotest.string) "first qualifier" (Some "a")
    (Feature.qualifier f "note");
  check (Alcotest.list Alcotest.string) "all qualifiers" [ "a"; "b" ]
    (Feature.qualifier_all f "note");
  check (Alcotest.option Alcotest.string) "name via gene" (Some "lacZ") (Feature.name f);
  let f2 = Feature.with_qualifier f "db_xref" "X:1" in
  check (Alcotest.option Alcotest.string) "appended" (Some "X:1")
    (Feature.qualifier f2 "db_xref")

let test_feature_overlap () =
  let f1 = Feature.make Feature.Gene (Location.range 1 10) in
  let f2 = Feature.make Feature.Cds (Location.range 5 20) in
  let f3 = Feature.make Feature.Exon (Location.range 15 30) in
  check Alcotest.bool "1 and 2 overlap" true (Feature.overlaps f1 f2);
  check Alcotest.bool "1 and 3 disjoint" false (Feature.overlaps f1 f3)

(* ---- genes / transcripts / proteins --------------------------------- *)

let test_gene_validation () =
  let dna = Sequence.dna (String.make 100 'A') in
  check Alcotest.bool "valid gene" true
    (Result.is_ok (Gene.make ~id:"g" ~exons:[ (0, 30); (50, 30) ] dna));
  check Alcotest.bool "overlapping exons rejected" true
    (Result.is_error (Gene.make ~id:"g" ~exons:[ (0, 30); (20, 30) ] dna));
  check Alcotest.bool "out-of-bounds exon rejected" true
    (Result.is_error (Gene.make ~id:"g" ~exons:[ (90, 20) ] dna));
  check Alcotest.bool "empty exon rejected" true
    (Result.is_error (Gene.make ~id:"g" ~exons:[ (0, 0) ] dna));
  check Alcotest.bool "RNA rejected" true
    (Result.is_error (Gene.make ~id:"g" (Sequence.rna "ACGU")))

let test_gene_structure () =
  let dna = Sequence.dna (String.make 100 'A') in
  let g = Gene.make_exn ~id:"g" ~exons:[ (10, 20); (50, 30) ] dna in
  check Alcotest.int "length" 100 (Gene.length g);
  check Alcotest.int "exon count" 2 (Gene.exon_count g);
  check Alcotest.int "exonic length" 50 (Gene.exonic_length g);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "introns"
    [ (30, 20) ] (Gene.introns g);
  check Alcotest.int "default single exon" 1
    (Gene.exon_count (Gene.make_exn ~id:"g2" dna))

let test_transcript_constructors () =
  let rna = Sequence.rna (String.make 30 'A') in
  let p =
    Transcript.primary ~gene_id:"g" ~exons:[ (0, 10); (20, 10) ]
      ~code:Genetic_code.standard rna
  in
  check Alcotest.int "primary length" 30 (Transcript.primary_length p);
  let m = Transcript.mrna ~gene_id:"g" ~code:Genetic_code.standard rna in
  check Alcotest.int "mrna length" 30 (Transcript.mrna_length m);
  Alcotest.check_raises "DNA rejected for mRNA"
    (Invalid_argument "Transcript.mrna: sequence must be RNA") (fun () ->
      ignore (Transcript.mrna ~gene_id:"g" ~code:Genetic_code.standard (Sequence.dna "ACGT")))

let test_protein_weight () =
  (* glycine dipeptide: 2 * 57.0519 + water *)
  let p = Protein.make_exn ~id:"p" (Sequence.protein "GG") in
  let expected = (2. *. 57.0519) +. 18.01528 in
  check (Alcotest.float 0.001) "GG weight" expected (Protein.molecular_weight p);
  check (Alcotest.float 1e-9) "empty protein" 0.
    (Protein.molecular_weight (Protein.make_exn ~id:"e" (Sequence.protein "")))

let test_protein_hydropathy () =
  let p = Protein.make_exn ~id:"p" (Sequence.protein "IIIII") in
  let profile = Protein.hydropathy_profile p ~window:3 in
  check Alcotest.int "profile length" 3 (Array.length profile);
  check (Alcotest.float 0.001) "Ile hydropathy" 4.5 profile.(0);
  Alcotest.check_raises "even window rejected"
    (Invalid_argument "Protein.hydropathy_profile: window must be positive, odd, <= length")
    (fun () -> ignore (Protein.hydropathy_profile p ~window:2))

(* ---- chromosomes / genomes ------------------------------------------ *)

let test_chromosome () =
  let dna = Sequence.dna (String.make 50 'G') in
  let f = Feature.make ~qualifiers:[ ("gene", "x") ] Feature.Gene (Location.range 10 20) in
  let c = Chromosome.make_exn ~features:[ f ] ~name:"chr1" dna in
  check Alcotest.int "one gene feature" 1
    (List.length (Chromosome.features_of_kind c Feature.Gene));
  check Alcotest.int "window query hits" 1
    (List.length (Chromosome.features_overlapping c ~lo:15 ~hi:25));
  check Alcotest.int "window query misses" 0
    (List.length (Chromosome.features_overlapping c ~lo:30 ~hi:40));
  check Alcotest.int "extracted gene" 11 (Sequence.length (Chromosome.feature_sequence c f));
  check Alcotest.bool "oversized feature rejected" true
    (Result.is_error
       (Chromosome.make ~features:[ Feature.make Feature.Gene (Location.range 1 100) ]
          ~name:"bad" dna))

let test_genome () =
  let chrom name = Chromosome.make_exn ~name (Sequence.dna (String.make 10 'A')) in
  let g = Genome.make_exn ~organism:"Testus" [ chrom "c1"; chrom "c2" ] in
  check Alcotest.int "total length" 20 (Genome.total_length g);
  check Alcotest.bool "lookup" true (Genome.find_chromosome g "c1" <> None);
  check Alcotest.bool "duplicate names rejected" true
    (Result.is_error (Genome.make ~organism:"X" [ chrom "c"; chrom "c" ]))

(* ---- uncertainty ----------------------------------------------------- *)

let test_uncertain_basics () =
  let u = Uncertain.certain 42 in
  check Alcotest.int "best of certain" 42 (Uncertain.best u);
  check Alcotest.bool "is_certain" true (Uncertain.is_certain u);
  let u2 =
    Uncertain.of_alternatives
      [
        { Uncertain.value = 1; confidence = 0.2; provenance = None };
        { Uncertain.value = 2; confidence = 0.7; provenance = None };
      ]
  in
  check Alcotest.int "best is highest confidence" 2 (Uncertain.best u2);
  check (Alcotest.float 1e-9) "best confidence" 0.7 (Uncertain.best_confidence u2);
  check Alcotest.bool "not certain" false (Uncertain.is_certain u2)

let test_uncertain_map_bind () =
  let u =
    Uncertain.of_alternatives
      [
        { Uncertain.value = 1; confidence = 0.9; provenance = None };
        { Uncertain.value = 2; confidence = 0.1; provenance = None };
      ]
  in
  check Alcotest.int "map preserves order" 10 (Uncertain.best (Uncertain.map (( * ) 10) u));
  let bound = Uncertain.bind (fun x -> Uncertain.make ~confidence:0.5 (x + 1)) u in
  check (Alcotest.float 1e-9) "bind multiplies confidence" 0.45
    (Uncertain.best_confidence bound);
  let scaled = Uncertain.map_confidence ~factor:0.5 Fun.id u in
  check (Alcotest.float 1e-9) "factor scales" 0.45 (Uncertain.best_confidence scaled)

let test_uncertain_merge_prune () =
  let a = Uncertain.make ~confidence:0.8 "x" in
  let b =
    Uncertain.of_alternatives
      [
        { Uncertain.value = "x"; confidence = 0.3; provenance = None };
        { Uncertain.value = "y"; confidence = 0.6; provenance = None };
      ]
  in
  let m = Uncertain.merge ~equal:String.equal a b in
  check Alcotest.int "merged distinct values" 2 (Uncertain.cardinal m);
  check Alcotest.string "x keeps higher confidence" "x" (Uncertain.best m);
  let pruned = Uncertain.prune ~min_confidence:0.7 m in
  check Alcotest.int "pruned to best" 1 (Uncertain.cardinal pruned);
  (* prune never drops everything *)
  let all_low = Uncertain.make ~confidence:0.1 "z" in
  check Alcotest.int "keeps best even below threshold" 1
    (Uncertain.cardinal (Uncertain.prune ~min_confidence:0.9 all_low))

let test_uncertain_empty_rejected () =
  Alcotest.check_raises "empty alternatives"
    (Invalid_argument "Uncertain.of_alternatives: empty") (fun () ->
      ignore (Uncertain.of_alternatives ([] : int Uncertain.alternative list)))

let suites =
  [
    ( "gdt.nucleotide",
      [
        tc "roundtrip" `Quick test_nucleotide_roundtrip;
        tc "lowercase" `Quick test_nucleotide_lowercase;
        tc "invalid" `Quick test_nucleotide_invalid;
        tc "complement involution" `Quick test_complement_involution;
        tc "expand" `Quick test_expand;
        tc "matches" `Quick test_matches;
      ] );
    ( "gdt.amino_acid",
      [
        tc "roundtrip" `Quick test_amino_roundtrip;
        tc "three letter" `Quick test_amino_three_letter;
        tc "masses" `Quick test_amino_masses;
      ] );
    ( "gdt.sequence",
      [
        tc "encodings" `Quick test_sequence_encodings;
        tc "memory" `Quick test_sequence_memory;
        tc "validation" `Quick test_sequence_validation;
        tc "access" `Quick test_sequence_access;
        tc "revcomp" `Quick test_sequence_revcomp;
        tc "transcription letters" `Quick test_sequence_transcription_letters;
        tc "concat/rev" `Quick test_sequence_concat_rev;
        tc "find" `Quick test_sequence_find;
        tc "counts" `Quick test_sequence_counts;
        tc "serialization" `Quick test_sequence_serialization;
        tc "compare" `Quick test_sequence_compare;
      ] );
    ( "gdt.genetic_code",
      [
        tc "translate codon" `Quick test_translate_codon;
        tc "code differences" `Quick test_code_differences;
        tc "ambiguous codon" `Quick test_ambiguous_codon;
        tc "start/stop" `Quick test_start_stop;
        tc "back translate" `Quick test_back_translate;
        tc "registry" `Quick test_code_registry;
      ] );
    ( "gdt.location",
      [
        tc "parse/print" `Quick test_location_parse_print;
        tc "invalid" `Quick test_location_invalid;
        tc "partial markers" `Quick test_location_partial_markers;
        tc "extract" `Quick test_location_extract;
        tc "metrics" `Quick test_location_metrics;
      ] );
    ( "gdt.feature",
      [
        tc "kinds" `Quick test_feature_kinds;
        tc "qualifiers" `Quick test_feature_qualifiers;
        tc "overlap" `Quick test_feature_overlap;
      ] );
    ( "gdt.gene",
      [
        tc "validation" `Quick test_gene_validation;
        tc "structure" `Quick test_gene_structure;
      ] );
    ( "gdt.transcript", [ tc "constructors" `Quick test_transcript_constructors ] );
    ( "gdt.protein",
      [
        tc "weight" `Quick test_protein_weight;
        tc "hydropathy" `Quick test_protein_hydropathy;
      ] );
    ( "gdt.chromosome", [ tc "features" `Quick test_chromosome ] );
    ( "gdt.genome", [ tc "basics" `Quick test_genome ] );
    ( "gdt.uncertain",
      [
        tc "basics" `Quick test_uncertain_basics;
        tc "map/bind" `Quick test_uncertain_map_bind;
        tc "merge/prune" `Quick test_uncertain_merge_prune;
        tc "empty rejected" `Quick test_uncertain_empty_rejected;
      ] );
  ]
