(* Unit tests for the DBMS-specific adapter (lib/adapter). *)

open Genalg_gdt
module Adapter = Genalg_adapter.Adapter
module Codec = Genalg_adapter.Codec
module Value = Genalg_core.Value
module Sort = Genalg_core.Sort
module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Udt = Genalg_storage.Udt

let check = Alcotest.check
let tc = Alcotest.test_case

let gene_fixture () =
  Genalg_synth.Genegen.gene (Genalg_synth.Rng.make 81) ~id:"adp" ()

let test_codec_roundtrips () =
  let g = gene_fixture () in
  (match Codec.decode_gene (Codec.encode_gene g) with
  | Ok g2 -> check Alcotest.bool "gene" true (Gene.equal g g2)
  | Error m -> Alcotest.fail m);
  let primary = Genalg_core.Ops.transcribe g in
  (match Codec.decode_primary (Codec.encode_primary primary) with
  | Ok p2 -> check Alcotest.bool "primary" true (Transcript.equal_primary primary p2)
  | Error m -> Alcotest.fail m);
  let mrna = Genalg_core.Ops.splice primary in
  (match Codec.decode_mrna (Codec.encode_mrna mrna) with
  | Ok m2 -> check Alcotest.bool "mrna" true (Transcript.equal_mrna mrna m2)
  | Error m -> Alcotest.fail m);
  let protein = Result.get_ok (Genalg_core.Ops.translate mrna) in
  match Codec.decode_protein (Codec.encode_protein protein) with
  | Ok p2 -> check Alcotest.bool "protein" true (Protein.equal protein p2)
  | Error m -> Alcotest.fail m

let test_codec_rejects_corrupt () =
  check Alcotest.bool "garbage gene" true
    (Result.is_error (Codec.decode_gene (Bytes.of_string "nope")));
  let g = gene_fixture () in
  let data = Codec.encode_gene g in
  let truncated = Bytes.sub data 0 (Bytes.length data - 3) in
  check Alcotest.bool "truncated gene" true (Result.is_error (Codec.decode_gene truncated))

let test_value_conversion () =
  let samples =
    [
      Value.VBool true; Value.VInt 5; Value.VFloat 1.5; Value.VString "x";
      Value.dna "ACGT"; Value.rna "ACGU"; Value.protein_seq "MK";
      Value.VGene (gene_fixture ());
    ]
  in
  List.iter
    (fun v ->
      match Adapter.to_db v with
      | Error m -> Alcotest.failf "to_db: %s" m
      | Ok dv -> (
          match Adapter.of_db dv with
          | Ok v2 ->
              check Alcotest.bool
                ("db roundtrip " ^ Sort.to_string (Value.sort_of v))
                true (Value.equal v v2)
          | Error m -> Alcotest.failf "of_db: %s" m))
    samples

let test_unstorable_sorts () =
  check Alcotest.bool "list not storable" true
    (Result.is_error (Adapter.to_db (Value.vlist Sort.Int [ Value.VInt 1 ])));
  check Alcotest.bool "genome not storable" true
    (Adapter.dtype_of_sort Sort.Genome = None);
  check Alcotest.bool "null has no algebra value" true
    (Result.is_error (Adapter.of_db D.Null))

let test_attach_registers () =
  let db = Db.create () in
  Adapter.attach db Genalg_core.Builtin.default;
  let registry = Db.udts db in
  List.iter
    (fun name ->
      check Alcotest.bool ("UDT " ^ name) true (Udt.find_type registry name <> None))
    Adapter.storable_udts;
  (* eligible operators are registered as UDFs *)
  check Alcotest.bool "gc_content over dna" true
    (Udt.resolve_function registry "gc_content" [ D.TOpaque "dna" ] <> None);
  check Alcotest.bool "resembles over dna pairs" true
    (Udt.resolve_function registry "resembles" [ D.TOpaque "dna"; D.TOpaque "dna" ] <> None);
  check Alcotest.bool "contains" true
    (Udt.resolve_function registry "contains" [ D.TOpaque "dna"; D.TString ] <> None);
  (* constructors *)
  check Alcotest.bool "dna constructor" true
    (Udt.resolve_function registry "dna" [ D.TString ] <> None);
  (* list-sorted operators are algebra-only *)
  check Alcotest.bool "find_orfs not SQL-exposed" true
    (Udt.resolve_function registry "find_orfs" [ D.TOpaque "dna" ] = None)

let test_udf_execution_through_registry () =
  let db = Db.create () in
  Adapter.attach db Genalg_core.Builtin.default;
  let registry = Db.udts db in
  let udf = Option.get (Udt.resolve_function registry "gc_content" [ D.TOpaque "dna" ]) in
  let dna_val = Result.get_ok (Adapter.to_db (Value.dna "GGCC")) in
  (match udf.Udt.code [ dna_val ] with
  | Ok (D.Float f) -> check (Alcotest.float 1e-9) "gc via UDF" 1. f
  | _ -> Alcotest.fail "UDF call failed");
  (* corrupt payloads surface as errors, not crashes *)
  match udf.Udt.code [ D.Opaque ("dna", Bytes.of_string "junk") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt payload accepted"

let test_display_through_registry () =
  let db = Db.create () in
  Adapter.attach db Genalg_core.Builtin.default;
  let registry = Db.udts db in
  let dna_val = Result.get_ok (Adapter.to_db (Value.dna "ACGT")) in
  check Alcotest.string "dna displays as letters" "ACGT" (Udt.display_value registry dna_val)

let suites =
  [
    ( "adapter",
      [
        tc "codec roundtrips" `Quick test_codec_roundtrips;
        tc "codec rejects corrupt" `Quick test_codec_rejects_corrupt;
        tc "value conversion" `Quick test_value_conversion;
        tc "unstorable sorts" `Quick test_unstorable_sorts;
        tc "attach registers" `Quick test_attach_registers;
        tc "udf execution" `Quick test_udf_execution_through_registry;
        tc "display" `Quick test_display_through_registry;
      ] );
  ]
