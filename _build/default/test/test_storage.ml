(* Unit tests for the storage engine (lib/storage). *)

module D = Genalg_storage.Dtype
module Page = Genalg_storage.Page
module Heap = Genalg_storage.Heap
module Btree = Genalg_storage.Btree
module Schema = Genalg_storage.Schema
module Table = Genalg_storage.Table
module Db = Genalg_storage.Database
module Udt = Genalg_storage.Udt

let check = Alcotest.check
let tc = Alcotest.test_case

(* ---- dtype ----------------------------------------------------------- *)

let all_values =
  [
    D.Null; D.Bool true; D.Bool false; D.Int 0; D.Int (-42); D.Int max_int;
    D.Float 3.25; D.Float (-0.); D.Str ""; D.Str "hello\tworld";
    D.Opaque ("dna", Bytes.of_string "\x00\x01\x02");
  ]

let test_value_roundtrip () =
  List.iter
    (fun v ->
      let buf = Buffer.create 16 in
      D.encode_value buf v;
      let decoded, off = D.decode_value (Buffer.to_bytes buf) 0 in
      check Alcotest.bool ("round trip " ^ D.value_to_display v) true
        (D.equal_value v decoded);
      check Alcotest.int "consumed all" (Buffer.length buf) off)
    all_values

let test_row_roundtrip () =
  let row = Array.of_list all_values in
  let decoded = D.decode_row (D.encode_row row) in
  check Alcotest.int "arity" (Array.length row) (Array.length decoded);
  Array.iteri
    (fun i v -> check Alcotest.bool "cell" true (D.equal_value v decoded.(i)))
    row

let test_value_compare () =
  check Alcotest.bool "int/float numeric" true (D.compare_value (D.Int 2) (D.Float 2.5) < 0);
  check Alcotest.bool "int = float" true (D.equal_value (D.Int 2) (D.Float 2.));
  check Alcotest.bool "null first" true (D.compare_value D.Null (D.Int 0) < 0);
  check Alcotest.bool "strings" true (D.compare_value (D.Str "a") (D.Str "b") < 0)

let test_conforms () =
  check Alcotest.bool "int to float column" true (D.conforms D.TFloat (D.Int 3));
  check Alcotest.bool "null anywhere" true (D.conforms D.TInt D.Null);
  check Alcotest.bool "opaque name must match" false
    (D.conforms (D.TOpaque "dna") (D.Opaque ("rna", Bytes.empty)));
  check Alcotest.bool "str not int" false (D.conforms D.TInt (D.Str "3"))

let test_corrupt_decode () =
  check Alcotest.bool "truncated rejected" true
    (match D.decode_value (Bytes.of_string "\x02\x01") 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- pages ------------------------------------------------------------- *)

let test_page_insert_get () =
  let p = Page.create () in
  let r1 = Option.get (Page.insert p (Bytes.of_string "hello")) in
  let r2 = Option.get (Page.insert p (Bytes.of_string "world!")) in
  check Alcotest.int "slots" 2 (Page.slot_count p);
  check (Alcotest.option Alcotest.string) "get 1" (Some "hello")
    (Option.map Bytes.to_string (Page.get p r1));
  check (Alcotest.option Alcotest.string) "get 2" (Some "world!")
    (Option.map Bytes.to_string (Page.get p r2))

let test_page_delete_compact () =
  let p = Page.create () in
  let r1 = Option.get (Page.insert p (Bytes.make 1000 'a')) in
  let r2 = Option.get (Page.insert p (Bytes.make 1000 'b')) in
  let free_before = Page.free_space p in
  check Alcotest.bool "delete" true (Page.delete p r1);
  check Alcotest.bool "double delete" false (Page.delete p r1);
  check (Alcotest.option Alcotest.string) "tombstoned" None
    (Option.map Bytes.to_string (Page.get p r1));
  Page.compact p;
  check Alcotest.bool "space reclaimed" true (Page.free_space p >= free_before + 1000);
  check (Alcotest.option Alcotest.string) "survivor stable" (Some (String.make 1000 'b'))
    (Option.map Bytes.to_string (Page.get p r2))

let test_page_full () =
  let p = Page.create () in
  let record = Bytes.make 1000 'x' in
  let rec fill n = if Page.insert p record = None then n else fill (n + 1) in
  let n = fill 0 in
  check Alcotest.bool "8 records of 1000B fit an 8K page" true (n = 8 || n = 7);
  check Alcotest.int "live count" n (Page.live_count p)

let test_page_update () =
  let p = Page.create () in
  let r = Option.get (Page.insert p (Bytes.of_string "short")) in
  check Alcotest.bool "shrink in place" true (Page.update p r (Bytes.of_string "st"));
  check (Alcotest.option Alcotest.string) "shrunk" (Some "st")
    (Option.map Bytes.to_string (Page.get p r));
  check Alcotest.bool "grow via compact" true
    (Page.update p r (Bytes.of_string (String.make 100 'y')));
  check (Alcotest.option Alcotest.string) "grown" (Some (String.make 100 'y'))
    (Option.map Bytes.to_string (Page.get p r))

let test_page_serialization () =
  let p = Page.create () in
  ignore (Page.insert p (Bytes.of_string "alpha"));
  ignore (Page.insert p (Bytes.of_string "beta"));
  match Page.of_bytes (Page.to_bytes p) with
  | Ok p2 ->
      check (Alcotest.option Alcotest.string) "survives round trip" (Some "beta")
        (Option.map Bytes.to_string (Page.get p2 1))
  | Error msg -> Alcotest.fail msg

(* ---- heap ----------------------------------------------------------------- *)

let test_heap_many_records () =
  let h = Heap.create () in
  let rids =
    List.init 5000 (fun i -> (i, Heap.insert h (Bytes.of_string (string_of_int i))))
  in
  check Alcotest.int "count" 5000 (Heap.record_count h);
  check Alcotest.bool "multiple pages" true (Heap.page_count h > 1);
  List.iter
    (fun (i, rid) ->
      check (Alcotest.option Alcotest.string) "get" (Some (string_of_int i))
        (Option.map Bytes.to_string (Heap.get h rid)))
    rids

let test_heap_delete_update () =
  let h = Heap.create () in
  let r1 = Heap.insert h (Bytes.of_string "one") in
  let r2 = Heap.insert h (Bytes.of_string "two") in
  check Alcotest.bool "delete" true (Heap.delete h r1);
  check Alcotest.int "count after delete" 1 (Heap.record_count h);
  let r2' = Heap.update h r2 (Bytes.of_string "TWO!") in
  check (Alcotest.option Alcotest.string) "updated" (Some "TWO!")
    (Option.map Bytes.to_string (Heap.get h r2'))

let test_heap_serialization () =
  let h = Heap.create () in
  for i = 1 to 100 do
    ignore (Heap.insert h (Bytes.of_string (string_of_int i)))
  done;
  match Heap.of_bytes (Heap.to_bytes h) with
  | Ok h2 ->
      check Alcotest.int "count preserved" 100 (Heap.record_count h2);
      let total = Heap.fold (fun _ b acc -> acc + int_of_string (Bytes.to_string b)) h2 0 in
      check Alcotest.int "contents preserved" 5050 total
  | Error msg -> Alcotest.fail msg

(* ---- btree ------------------------------------------------------------------ *)

let rid i = { Heap.page = i; slot = 0 }

let test_btree_insert_find () =
  let t = Btree.create () in
  for i = 0 to 999 do
    Btree.insert t (D.Int ((i * 37) mod 1000)) (rid i)
  done;
  check Alcotest.int "all keys present" 1000 (Btree.cardinal t);
  check Alcotest.bool "height grows" true (Btree.height t >= 2);
  check (Alcotest.list Alcotest.int) "find key 0"
    [ 0 ]
    (List.map (fun r -> r.Heap.page) (Btree.find t (D.Int 0)));
  check (Alcotest.list Alcotest.int) "absent" []
    (List.map (fun r -> r.Heap.page) (Btree.find t (D.Int 5000)))

let test_btree_duplicates () =
  let t = Btree.create () in
  Btree.insert t (D.Str "k") (rid 1);
  Btree.insert t (D.Str "k") (rid 2);
  check Alcotest.int "two postings" 2 (List.length (Btree.find t (D.Str "k")));
  check Alcotest.bool "remove one" true (Btree.remove t (D.Str "k") (rid 1));
  check Alcotest.int "one left" 1 (List.length (Btree.find t (D.Str "k")));
  check Alcotest.bool "remove absent" false (Btree.remove t (D.Str "k") (rid 9))

let test_btree_order () =
  let t = Btree.create () in
  let keys = [ 5; 3; 9; 1; 7; 2; 8; 4; 6; 0 ] in
  List.iter (fun k -> Btree.insert t (D.Int k) (rid k)) keys;
  let collected = ref [] in
  Btree.iter (fun k _ -> collected := k :: !collected) t;
  check (Alcotest.list Alcotest.int) "in-order traversal"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev_map (function D.Int i -> i | _ -> -1) !collected)

let test_btree_range () =
  let t = Btree.create () in
  for i = 0 to 99 do
    Btree.insert t (D.Int i) (rid i)
  done;
  let between = Btree.range ~lo:(D.Int 10) ~hi:(D.Int 20) t in
  check Alcotest.int "inclusive range" 11 (List.length between);
  let strict = Btree.range ~lo:(D.Int 10) ~hi:(D.Int 20) ~lo_inclusive:false ~hi_inclusive:false t in
  check Alcotest.int "exclusive range" 9 (List.length strict);
  let from_lo = Btree.range ~lo:(D.Int 95) t in
  check Alcotest.int "open-ended" 5 (List.length from_lo)

let test_btree_random_vs_model () =
  let rng = Genalg_synth.Rng.make 23 in
  let t = Btree.create () in
  let model = Hashtbl.create 64 in
  for i = 0 to 2999 do
    let k = Genalg_synth.Rng.int rng 500 in
    Btree.insert t (D.Int k) (rid i);
    Hashtbl.replace model k (i :: Option.value (Hashtbl.find_opt model k) ~default:[])
  done;
  Hashtbl.iter
    (fun k expected ->
      let got = List.map (fun r -> r.Heap.page) (Btree.find t (D.Int k)) in
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "postings for %d" k)
        (List.rev expected) got)
    model

(* ---- schema / table ------------------------------------------------------------ *)

let simple_schema () =
  Schema.make_exn
    [
      { Schema.name = "id"; dtype = D.TInt; nullable = false };
      { Schema.name = "name"; dtype = D.TString; nullable = true };
    ]

let test_schema_validation () =
  check Alcotest.bool "duplicate names rejected" true
    (Result.is_error
       (Schema.make
          [
            { Schema.name = "x"; dtype = D.TInt; nullable = false };
            { Schema.name = "X"; dtype = D.TInt; nullable = false };
          ]));
  let s = simple_schema () in
  check (Alcotest.option Alcotest.int) "lookup" (Some 1) (Schema.column_index s "NAME");
  check Alcotest.bool "arity mismatch" true
    (Result.is_error (Schema.validate_row s [| D.Int 1 |]));
  check Alcotest.bool "null in non-nullable" true
    (Result.is_error (Schema.validate_row s [| D.Null; D.Str "x" |]));
  check Alcotest.bool "type mismatch" true
    (Result.is_error (Schema.validate_row s [| D.Str "1"; D.Null |]));
  check Alcotest.bool "valid row" true
    (Result.is_ok (Schema.validate_row s [| D.Int 1; D.Null |]))

let test_table_crud () =
  let t = Table.create ~name:"people" (simple_schema ()) in
  let r1 = Table.insert_exn t [| D.Int 1; D.Str "ada" |] in
  let _r2 = Table.insert_exn t [| D.Int 2; D.Str "grace" |] in
  check Alcotest.int "rows" 2 (Table.row_count t);
  check Alcotest.bool "bad row rejected" true
    (Result.is_error (Table.insert t [| D.Str "x"; D.Null |]));
  (match Table.get t r1 with
  | Some row -> check Alcotest.bool "get" true (D.equal_value row.(1) (D.Str "ada"))
  | None -> Alcotest.fail "get failed");
  (match Table.update t r1 [| D.Int 1; D.Str "ADA" |] with
  | Ok r1' ->
      check Alcotest.bool "updated" true
        (D.equal_value (Option.get (Table.get t r1')).(1) (D.Str "ADA"))
  | Error msg -> Alcotest.fail msg);
  check Alcotest.bool "delete" true (Table.delete t r1);
  check Alcotest.int "rows after delete" 1 (Table.row_count t)

let test_table_index () =
  let t = Table.create ~name:"data" (simple_schema ()) in
  for i = 1 to 200 do
    ignore (Table.insert_exn t [| D.Int (i mod 10); D.Str (string_of_int i) |])
  done;
  check Alcotest.bool "create index" true (Result.is_ok (Table.create_index t ~column:"id"));
  check Alcotest.bool "duplicate index rejected" true
    (Result.is_error (Table.create_index t ~column:"id"));
  (match Table.index_lookup t ~column:"id" (D.Int 3) with
  | Some rids -> check Alcotest.int "20 rows with id=3" 20 (List.length rids)
  | None -> Alcotest.fail "index missing");
  (* index maintained on insert and delete *)
  let r = Table.insert_exn t [| D.Int 3; D.Str "extra" |] in
  check Alcotest.int "after insert" 21
    (List.length (Option.get (Table.index_lookup t ~column:"id" (D.Int 3))));
  ignore (Table.delete t r);
  check Alcotest.int "after delete" 20
    (List.length (Option.get (Table.index_lookup t ~column:"id" (D.Int 3))));
  check Alcotest.bool "no index on name" true
    (Table.index_lookup t ~column:"name" (D.Str "5") = None)

(* ---- database ------------------------------------------------------------------- *)

let test_database_spaces () =
  let db = Db.create () in
  check Alcotest.bool "user cannot create public" true
    (Result.is_error
       (Db.create_table db ~actor:"alice" ~space:Db.Public ~name:"t" (simple_schema ())));
  check Alcotest.bool "loader creates public" true
    (Result.is_ok
       (Db.create_table db ~actor:Db.loader_actor ~space:Db.Public ~name:"t"
          (simple_schema ())));
  check Alcotest.bool "alice creates own" true
    (Result.is_ok
       (Db.create_table db ~actor:"alice" ~space:(Db.User "alice") ~name:"mine"
          (simple_schema ())));
  check Alcotest.bool "alice cannot create for bob" true
    (Result.is_error
       (Db.create_table db ~actor:"alice" ~space:(Db.User "bob") ~name:"x"
          (simple_schema ())));
  (* resolution: own space shadows public *)
  ignore
    (Db.create_table db ~actor:"alice" ~space:(Db.User "alice") ~name:"t" (simple_schema ()));
  (match Db.resolve db ~actor:"alice" "t" with
  | Some (Db.User "alice", _) -> ()
  | _ -> Alcotest.fail "own table should shadow public");
  match Db.resolve db ~actor:"bob" "t" with
  | Some (Db.Public, _) -> ()
  | _ -> Alcotest.fail "bob should see the public table"

let test_database_write_control () =
  let db = Db.create () in
  ignore
    (Db.create_table db ~actor:Db.loader_actor ~space:Db.Public ~name:"pub"
       (simple_schema ()));
  check Alcotest.bool "user cannot write public" true
    (Result.is_error
       (Db.insert db ~actor:"alice" ~space:Db.Public ~table:"pub" [| D.Int 1; D.Null |]));
  check Alcotest.bool "loader writes public" true
    (Result.is_ok
       (Db.insert db ~actor:Db.loader_actor ~space:Db.Public ~table:"pub"
          [| D.Int 1; D.Null |]))

let test_database_grants () =
  let db = Db.create () in
  ignore
    (Db.create_table db ~actor:"alice" ~space:(Db.User "alice") ~name:"private"
       (simple_schema ()));
  check Alcotest.bool "bob cannot see" true (Db.resolve db ~actor:"bob" "private" = None);
  check Alcotest.bool "grant" true
    (Result.is_ok (Db.grant_read db ~owner:"alice" ~grantee:"bob" ~table:"private"));
  check Alcotest.bool "bob sees after grant" true
    (Db.resolve db ~actor:"bob" "private" <> None);
  check Alcotest.bool "only owner grants" true
    (Result.is_error (Db.grant_read db ~owner:"bob" ~grantee:"carol" ~table:"private"))

let test_database_udt_validation () =
  let db = Db.create () in
  let registry = Db.udts db in
  ignore
    (Udt.register_type registry
       {
         Udt.type_name = "blob4";
         validate = (fun b -> Bytes.length b = 4);
         display = (fun _ -> "<blob4>");
         search = None;
       });
  let schema =
    Schema.make_exn [ { Schema.name = "b"; dtype = D.TOpaque "blob4"; nullable = false } ]
  in
  ignore (Db.create_table db ~actor:Db.loader_actor ~space:Db.Public ~name:"blobs" schema);
  check Alcotest.bool "valid payload" true
    (Result.is_ok
       (Db.insert db ~actor:Db.loader_actor ~space:Db.Public ~table:"blobs"
          [| D.Opaque ("blob4", Bytes.make 4 'x') |]));
  check Alcotest.bool "malformed payload rejected" true
    (Result.is_error
       (Db.insert db ~actor:Db.loader_actor ~space:Db.Public ~table:"blobs"
          [| D.Opaque ("blob4", Bytes.make 3 'x') |]));
  check Alcotest.bool "unregistered UDT rejected" true
    (Result.is_error
       (Db.insert db ~actor:Db.loader_actor ~space:Db.Public ~table:"blobs"
          [| D.Opaque ("mystery", Bytes.make 4 'x') |]))

let test_database_persistence () =
  let db = Db.create () in
  ignore
    (Db.create_table db ~actor:Db.loader_actor ~space:Db.Public ~name:"t" (simple_schema ()));
  ignore
    (Db.create_table db ~actor:"alice" ~space:(Db.User "alice") ~name:"mine"
       (simple_schema ()));
  (match Db.find_table db ~space:Db.Public "t" with
  | Some t ->
      for i = 1 to 50 do
        ignore (Table.insert_exn t [| D.Int i; D.Str (string_of_int i) |])
      done;
      ignore (Table.create_index t ~column:"id")
  | None -> Alcotest.fail "setup");
  let path = Filename.temp_file "genalg" ".db" in
  (match Db.save db path with Ok () -> () | Error m -> Alcotest.fail m);
  (match Db.load path with
  | Ok db2 -> (
      check Alcotest.int "tables restored" 2 (Db.table_count db2);
      match Db.find_table db2 ~space:Db.Public "t" with
      | Some t2 ->
          check Alcotest.int "rows restored" 50 (Table.row_count t2);
          check Alcotest.bool "index rebuilt" true (Table.has_index t2 ~column:"id");
          check Alcotest.int "index works" 1
            (List.length (Option.get (Table.index_lookup t2 ~column:"id" (D.Int 7))))
      | None -> Alcotest.fail "public table missing after load")
  | Error m -> Alcotest.fail m);
  Sys.remove path

(* ---- udt registry ------------------------------------------------------------------ *)

let test_udf_overloading () =
  let r = Udt.create () in
  let f args ret =
    { Udt.fn_name = "f"; arg_types = args; return_type = ret; code = (fun _ -> Ok D.Null) }
  in
  check Alcotest.bool "register" true (Result.is_ok (Udt.register_function r (f [ D.TInt ] D.TInt)));
  check Alcotest.bool "overload" true
    (Result.is_ok (Udt.register_function r (f [ D.TString ] D.TInt)));
  check Alcotest.bool "duplicate rank rejected" true
    (Result.is_error (Udt.register_function r (f [ D.TInt ] D.TFloat)));
  check Alcotest.bool "resolve exact" true (Udt.resolve_function r "f" [ D.TString ] <> None);
  check Alcotest.bool "resolve widened" true
    (Udt.resolve_function r "g" [ D.TInt ] = None)

let suites =
  [
    ( "storage.dtype",
      [
        tc "value roundtrip" `Quick test_value_roundtrip;
        tc "row roundtrip" `Quick test_row_roundtrip;
        tc "compare" `Quick test_value_compare;
        tc "conforms" `Quick test_conforms;
        tc "corrupt decode" `Quick test_corrupt_decode;
      ] );
    ( "storage.page",
      [
        tc "insert/get" `Quick test_page_insert_get;
        tc "delete/compact" `Quick test_page_delete_compact;
        tc "full page" `Quick test_page_full;
        tc "update" `Quick test_page_update;
        tc "serialization" `Quick test_page_serialization;
      ] );
    ( "storage.heap",
      [
        tc "many records" `Quick test_heap_many_records;
        tc "delete/update" `Quick test_heap_delete_update;
        tc "serialization" `Quick test_heap_serialization;
      ] );
    ( "storage.btree",
      [
        tc "insert/find" `Quick test_btree_insert_find;
        tc "duplicates" `Quick test_btree_duplicates;
        tc "order" `Quick test_btree_order;
        tc "range" `Quick test_btree_range;
        tc "random vs model" `Quick test_btree_random_vs_model;
      ] );
    ( "storage.table",
      [
        tc "schema validation" `Quick test_schema_validation;
        tc "crud" `Quick test_table_crud;
        tc "index" `Quick test_table_index;
      ] );
    ( "storage.database",
      [
        tc "spaces" `Quick test_database_spaces;
        tc "write control" `Quick test_database_write_control;
        tc "grants" `Quick test_database_grants;
        tc "udt validation" `Quick test_database_udt_validation;
        tc "persistence" `Quick test_database_persistence;
      ] );
    ("storage.udt", [ tc "overloading" `Quick test_udf_overloading ]);
  ]
