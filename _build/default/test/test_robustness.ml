(* Failure-injection and fuzz-robustness tests: every parser and decoder
   must return [Error] (or a clean result) on corrupted input — never
   raise. Corruption is deterministic (seeded mutations of valid data),
   so failures are reproducible. *)

open Genalg_gdt
module Rng = Genalg_synth.Rng

let check = Alcotest.check
let tc = Alcotest.test_case

(* mutate a string: substitutions, deletions, insertions, truncations *)
let mutate_text rng text =
  let n = String.length text in
  if n = 0 then text
  else
    match Rng.int rng 4 with
    | 0 ->
        (* substitute a random byte *)
        let b = Bytes.of_string text in
        Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
        Bytes.to_string b
    | 1 ->
        (* delete a slice *)
        let start = Rng.int rng n in
        let len = min (n - start) (1 + Rng.int rng 20) in
        String.sub text 0 start ^ String.sub text (start + len) (n - start - len)
    | 2 ->
        (* insert junk *)
        let pos = Rng.int rng n in
        let junk = String.init (1 + Rng.int rng 10) (fun _ -> Char.chr (32 + Rng.int rng 90)) in
        String.sub text 0 pos ^ junk ^ String.sub text pos (n - pos)
    | _ ->
        (* truncate *)
        String.sub text 0 (Rng.int rng n)

let no_crash name f inputs =
  List.iteri
    (fun i input ->
      match f input with
      | _ -> ()
      | exception exn ->
          Alcotest.failf "%s crashed on fuzz case %d: %s" name i
            (Printexc.to_string exn))
    inputs;
  check Alcotest.bool (name ^ " survived") true true

let fuzz_corpus rng base n = List.init n (fun _ -> mutate_text rng base)

let test_genbank_fuzz () =
  let rng = Rng.make 9001 in
  let entries = Genalg_synth.Recordgen.repository rng ~size:3 () in
  let base = Genalg_formats.Genbank.print entries in
  no_crash "Genbank.parse" Genalg_formats.Genbank.parse (fuzz_corpus rng base 150)

let test_embl_fuzz () =
  let rng = Rng.make 9002 in
  let entries = Genalg_synth.Recordgen.repository rng ~size:3 () in
  let base = Genalg_formats.Embl.print entries in
  no_crash "Embl.parse" Genalg_formats.Embl.parse (fuzz_corpus rng base 150)

let test_fasta_fuzz () =
  let rng = Rng.make 9003 in
  let base = ">a desc\nACGTACGT\n>b\nGGCCGGCC\n" in
  no_crash "Fasta.parse" Genalg_formats.Fasta.parse (fuzz_corpus rng base 150)

let test_acedb_fuzz () =
  let rng = Rng.make 9004 in
  let entries = Genalg_synth.Recordgen.repository rng ~size:2 () in
  let base =
    String.concat ""
      (List.map (fun e -> Genalg_formats.Acedb.print (Genalg_formats.Acedb.of_entry e)) entries)
  in
  no_crash "Acedb.parse" Genalg_formats.Acedb.parse (fuzz_corpus rng base 150)

let test_sql_fuzz () =
  let rng = Rng.make 9005 in
  let bases =
    [
      "SELECT a, count(*) FROM t, u x WHERE a = 1 AND contains(seq, 'ACGT') GROUP BY a HAVING count(*) > 2 ORDER BY a DESC LIMIT 5";
      "INSERT INTO t (a, b) VALUES (1, 'x''y'), (2.5, NULL)";
      "CREATE TABLE t (a int NOT NULL, s dna)";
      "CREATE GENOMIC INDEX ON t (s)";
    ]
  in
  let corpus = List.concat_map (fun b -> fuzz_corpus rng b 80) bases in
  no_crash "Parser.parse" Genalg_sqlx.Parser.parse corpus

let test_biolang_fuzz () =
  let rng = Rng.make 9006 in
  let base = "find sequences where organism is 'x' and gc content above 0.5 limit 3" in
  no_crash "Biolang.compile" Genalg_biolang.Biolang.compile (fuzz_corpus rng base 200)

let test_location_fuzz () =
  let rng = Rng.make 9007 in
  let base = "join(1..10,complement(20..30),order(40..50))" in
  no_crash "Location.of_string" Location.of_string (fuzz_corpus rng base 200)

let test_xml_fuzz () =
  let rng = Rng.make 9008 in
  let gene = Genalg_synth.Genegen.gene rng ~id:"fz" () in
  let base = Genalg_xml.Genalgxml.to_string (Genalg_core.Value.VGene gene) in
  no_crash "Genalgxml.of_string" Genalg_xml.Genalgxml.of_string (fuzz_corpus rng base 150)

let test_sequence_bytes_fuzz () =
  let rng = Rng.make 9009 in
  let base = Bytes.to_string (Sequence.to_bytes (Sequence.dna "ACGTACGTACGTN")) in
  no_crash "Sequence.of_bytes"
    (fun s -> Sequence.of_bytes (Bytes.of_string s))
    (fuzz_corpus rng base 200)

let test_codec_fuzz () =
  let rng = Rng.make 9010 in
  let gene = Genalg_synth.Genegen.gene rng ~id:"cz" () in
  let base = Bytes.to_string (Genalg_adapter.Codec.encode_gene gene) in
  no_crash "Codec.decode_gene"
    (fun s -> Genalg_adapter.Codec.decode_gene (Bytes.of_string s))
    (fuzz_corpus rng base 200)

let test_row_decode_fuzz () =
  let rng = Rng.make 9011 in
  let module D = Genalg_storage.Dtype in
  let base =
    Bytes.to_string
      (D.encode_row [| D.Int 5; D.Str "hello"; D.Opaque ("dna", Bytes.make 4 'x'); D.Null |])
  in
  no_crash "Dtype.decode_row"
    (fun s -> try Ok (D.decode_row (Bytes.of_string s)) with Invalid_argument m -> Error m)
    (fuzz_corpus rng base 200)

let test_database_load_corruption () =
  (* a valid snapshot, then byte-level corruption: load must error, not
     crash or loop *)
  let rng = Rng.make 9012 in
  let db = Genalg_storage.Database.create () in
  ignore (Genalg_etl.Loader.init db Genalg_core.Builtin.default);
  let entries = Genalg_synth.Recordgen.repository rng ~size:5 () in
  ignore
    (Genalg_etl.Loader.load_merged db
       (Genalg_etl.Integrator.reconcile (List.map (fun e -> ("s", e)) entries)));
  let path = Filename.temp_file "fuzz" ".db" in
  (match Genalg_storage.Database.save db path with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let original =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  for i = 0 to 49 do
    let corrupted = mutate_text rng original in
    let out = open_out_bin path in
    output_string out corrupted;
    close_out out;
    match Genalg_storage.Database.load path with
    | Ok _ | Error _ -> ()
    | exception exn ->
        Alcotest.failf "Database.load crashed on corruption %d: %s" i
          (Printexc.to_string exn)
  done;
  Sys.remove path;
  check Alcotest.bool "load survived corruption" true true

let test_page_of_bytes_fuzz () =
  let rng = Rng.make 9013 in
  let module Page = Genalg_storage.Page in
  for _ = 0 to 49 do
    (* random page-sized buffers *)
    let data =
      Bytes.init Page.page_size (fun _ -> Char.chr (Rng.int rng 256))
    in
    match Page.of_bytes data with
    | Ok page ->
        (* iterating a garbage page must not crash either *)
        (try Page.iter (fun _ _ -> ()) page with _ -> ())
    | Error _ -> ()
  done;
  check Alcotest.bool "page decode survived" true true

let test_monitor_on_corrupt_dump () =
  (* a source whose dump is corrupted between polls must not crash the
     monitor *)
  let rng = Rng.make 9014 in
  let entries = Genalg_synth.Recordgen.repository rng ~size:5 () in
  let src =
    Genalg_etl.Source.create ~name:"s" Genalg_etl.Source.Non_queryable
      Genalg_etl.Source.Flat_file entries
  in
  let m = Result.get_ok (Genalg_etl.Monitor.create src) in
  ignore (Genalg_etl.Monitor.poll m);
  (* mutate the source's entries so the next dump differs wildly *)
  Genalg_etl.Source.apply src
    [ Genalg_etl.Source.Delete (List.hd entries).Genalg_formats.Entry.accession ];
  match Genalg_etl.Monitor.poll m with
  | _ -> check Alcotest.bool "monitor survived" true true
  | exception exn -> Alcotest.failf "monitor crashed: %s" (Printexc.to_string exn)

let suites =
  [
    ( "robustness.parsers",
      [
        tc "genbank fuzz" `Quick test_genbank_fuzz;
        tc "embl fuzz" `Quick test_embl_fuzz;
        tc "fasta fuzz" `Quick test_fasta_fuzz;
        tc "acedb fuzz" `Quick test_acedb_fuzz;
        tc "sql fuzz" `Quick test_sql_fuzz;
        tc "biolang fuzz" `Quick test_biolang_fuzz;
        tc "location fuzz" `Quick test_location_fuzz;
        tc "xml fuzz" `Quick test_xml_fuzz;
      ] );
    ( "robustness.binary",
      [
        tc "sequence bytes fuzz" `Quick test_sequence_bytes_fuzz;
        tc "gene codec fuzz" `Quick test_codec_fuzz;
        tc "row decode fuzz" `Quick test_row_decode_fuzz;
        tc "database load corruption" `Quick test_database_load_corruption;
        tc "page decode fuzz" `Quick test_page_of_bytes_fuzz;
      ] );
    ("robustness.etl", [ tc "monitor corrupt dump" `Quick test_monitor_on_corrupt_dump ]);
  ]
