(* Tests for the proteins and history warehouse tables: decode-at-load
   (C12 inverted) and archival of replaced data (C15 / section 5.2). *)

open Genalg_gdt
open Genalg_formats
open Genalg_etl
module D = Genalg_storage.Dtype
module Db = Genalg_storage.Database
module Exec = Genalg_sqlx.Exec

let check = Alcotest.check
let tc = Alcotest.test_case

(* an entry whose CDS features come from well-formed generated genes *)
let decodable_entry rng ~accession =
  let chrom, genes = Genalg_synth.Genegen.chromosome rng ~gene_count:3 ~name:accession () in
  ( Entry.make ~accession ~organism:"Synthetica primus"
      ~features:chrom.Chromosome.features chrom.Chromosome.dna,
    genes )

let fresh_warehouse rng entries =
  let db = Db.create () in
  (match Loader.init db Genalg_core.Builtin.default with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match
     Loader.load_merged db
       (Integrator.reconcile (List.map (fun e -> ("src", e)) entries))
   with
  | Ok stats -> (db, stats)
  | Error m -> Alcotest.fail m)
  |> fun (db, stats) ->
  ignore rng;
  (db, stats)

let count db sql =
  match Exec.query db ~actor:"u" sql with
  | Ok (Exec.Rows { rows = [ [| D.Int n |] ]; _ }) -> n
  | Ok _ -> Alcotest.failf "unexpected shape for %s" sql
  | Error m -> Alcotest.failf "%s: %s" sql m

let test_proteins_loaded () =
  let rng = Genalg_synth.Rng.make 7001 in
  let e, genes = decodable_entry rng ~accession:"PRT001" in
  let db, stats = fresh_warehouse rng [ e ] in
  check Alcotest.int "3 genes" 3 stats.Loader.genes;
  check Alcotest.int "3 proteins" 3 stats.Loader.proteins;
  check Alcotest.int "3 protein rows" 3 (count db "SELECT count(*) FROM proteins");
  (* the stored protein equals decoding the generated gene directly *)
  match Exec.query db ~actor:"u" "SELECT protein FROM proteins ORDER BY id" with
  | Ok (Exec.Rows rs) ->
      let stored =
        List.filter_map
          (fun r ->
            match Genalg_adapter.Adapter.of_db r.(0) with
            | Ok (Genalg_core.Value.VProtein p) -> Some (Sequence.to_string p.Protein.residues)
            | _ -> None)
          rs.Exec.rows
        |> List.sort String.compare
      in
      let expected =
        List.filter_map
          (fun g ->
            match Genalg_core.Ops.decode g with
            | Ok p -> Some (Sequence.to_string p.Protein.residues)
            | Error _ -> None)
          genes
        |> List.sort String.compare
      in
      check (Alcotest.list Alcotest.string) "stored proteins = decoded genes" expected stored
  | _ -> Alcotest.fail "protein query failed"

let test_protein_weight_queryable () =
  let rng = Genalg_synth.Rng.make 7002 in
  let e, _ = decodable_entry rng ~accession:"PRT002" in
  let db, _ = fresh_warehouse rng [ e ] in
  (* weight column agrees with the molecular_weight UDF over the stored value *)
  match
    Exec.query db ~actor:"u"
      "SELECT weight, molecular_weight(protein) FROM proteins LIMIT 1"
  with
  | Ok (Exec.Rows { rows = [ [| D.Float w1; D.Float w2 |] ]; _ }) ->
      check (Alcotest.float 0.001) "stored weight = UDF weight" w1 w2
  | _ -> Alcotest.fail "weight query failed"

let test_biolang_proteins () =
  let rng = Genalg_synth.Rng.make 7003 in
  let e, _ = decodable_entry rng ~accession:"PRT003" in
  let db, _ = fresh_warehouse rng [ e ] in
  (match Genalg_biolang.Biolang.compile_to_sql "count proteins where weight above 1000" with
  | Ok sql ->
      check Alcotest.string "compiles to the proteins table"
        "SELECT COUNT(*) AS count FROM proteins WHERE (weight > 1000)" sql
  | Error m -> Alcotest.fail m);
  match Genalg_biolang.Biolang.run db ~actor:"u" "count proteins" with
  | Ok (Exec.Rows { rows = [ [| D.Int n |] ]; _ }) -> check Alcotest.int "3 proteins" 3 n
  | _ -> Alcotest.fail "biolang protein count failed"

let test_history_archives_modifications () =
  let rng = Genalg_synth.Rng.make 7004 in
  let entries = Genalg_synth.Recordgen.repository rng ~size:5 ~prefix:"HIS" () in
  let db, _ = fresh_warehouse rng entries in
  check Alcotest.int "history empty after bootstrap" 0
    (count db "SELECT count(*) FROM history");
  let victim = List.hd entries in
  let modified =
    Entry.make ~version:(victim.Entry.version + 1) ~definition:victim.Entry.definition
      ~organism:victim.Entry.organism ~features:victim.Entry.features
      ~keywords:victim.Entry.keywords ~accession:victim.Entry.accession
      (Genalg_synth.Seqgen.mutate rng ~rate:0.01 victim.Entry.sequence)
  in
  let deleted = List.nth entries 2 in
  let deltas =
    [
      Delta.modification ~id:1 ~timestamp:10. ~before:victim ~after:modified;
      Delta.deletion ~id:2 ~timestamp:11. deleted;
    ]
  in
  (match Loader.incremental db ~source:"src" deltas with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.int "two archived rows" 2 (count db "SELECT count(*) FROM history");
  (* the archived row holds the a-priori sequence of the modified record *)
  (match
     Exec.query db ~actor:"u"
       (Printf.sprintf "SELECT seq FROM history WHERE accession = '%s'"
          victim.Entry.accession)
   with
  | Ok (Exec.Rows { rows = [ [| v |] ]; _ }) -> (
      match Genalg_adapter.Adapter.of_db v with
      | Ok (Genalg_core.Value.VDna s) ->
          check Alcotest.bool "a-priori sequence preserved" true
            (Sequence.equal s victim.Entry.sequence)
      | _ -> Alcotest.fail "archived value did not decode")
  | _ -> Alcotest.fail "history query failed");
  (* the deleted record is gone from sequences but queryable from history *)
  check Alcotest.int "deleted gone from sequences" 0
    (count db
       (Printf.sprintf "SELECT count(*) FROM sequences WHERE accession = '%s'"
          deleted.Entry.accession));
  check Alcotest.int "deleted preserved in history" 1
    (count db
       (Printf.sprintf "SELECT count(*) FROM history WHERE accession = '%s'"
          deleted.Entry.accession))

let test_history_survives_clear_semantics () =
  (* clear wipes history too (full-reload semantics) *)
  let rng = Genalg_synth.Rng.make 7005 in
  let entries = Genalg_synth.Recordgen.repository rng ~size:3 ~prefix:"HCL" () in
  let db, _ = fresh_warehouse rng entries in
  let victim = List.hd entries in
  ignore
    (Loader.incremental db ~source:"src"
       [ Delta.deletion ~id:1 ~timestamp:1. victim ]);
  check Alcotest.int "one archived" 1 (count db "SELECT count(*) FROM history");
  (match Loader.clear db with Ok () -> () | Error m -> Alcotest.fail m);
  check Alcotest.int "history cleared" 0 (count db "SELECT count(*) FROM history")

let suites =
  [
    ( "warehouse.proteins",
      [
        tc "decoded at load" `Quick test_proteins_loaded;
        tc "weight queryable" `Quick test_protein_weight_queryable;
        tc "biolang entity" `Quick test_biolang_proteins;
      ] );
    ( "warehouse.history",
      [
        tc "archives modifications and deletions" `Quick test_history_archives_modifications;
        tc "clear semantics" `Quick test_history_survives_clear_semantics;
      ] );
  ]
