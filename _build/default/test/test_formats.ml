(* Unit tests for repository formats (lib/formats). *)

open Genalg_gdt
open Genalg_formats

let check = Alcotest.check
let tc = Alcotest.test_case

let entry_t = Alcotest.testable Entry.pp Entry.equal

let sample_entries () =
  let rng = Genalg_synth.Rng.make 31 in
  Genalg_synth.Recordgen.repository rng ~size:8 ~prefix:"TST" ()

let fancy_entry () =
  Entry.make ~version:3 ~definition:"putative kinase gene"
    ~organism:"Synthetica primus"
    ~features:
      [
        Feature.make ~qualifiers:[ ("gene", "k1") ] Feature.Gene (Location.range 10 90);
        Feature.make
          ~qualifiers:[ ("gene", "k1"); ("product", "kinase") ]
          Feature.Cds
          (Location.join [ Location.range 10 40; Location.range 60 90 ]);
        Feature.make Feature.Mrna (Location.complement (Location.range 95 99));
      ]
    ~keywords:[ "kinase"; "test" ] ~accession:"TST000042"
    (Sequence.dna (String.concat "" (List.init 10 (fun _ -> "ACGTACGTAG"))))

(* ---- FASTA ---------------------------------------------------------- *)

let test_fasta_roundtrip () =
  let records =
    [
      { Fasta.id = "seq1"; description = "first"; sequence = Sequence.dna "ACGTACGT" };
      { Fasta.id = "seq2"; description = ""; sequence = Sequence.dna (String.make 150 'A') };
    ]
  in
  match Fasta.parse (Fasta.print records) with
  | Ok back ->
      check Alcotest.int "count" 2 (List.length back);
      List.iter2
        (fun a b ->
          check Alcotest.string "id" a.Fasta.id b.Fasta.id;
          check Alcotest.bool "sequence" true (Sequence.equal a.Fasta.sequence b.Fasta.sequence))
        records back
  | Error msg -> Alcotest.fail msg

let test_fasta_wrapping () =
  let r = { Fasta.id = "x"; description = ""; sequence = Sequence.dna (String.make 130 'G') } in
  let lines = String.split_on_char '\n' (Fasta.print ~width:60 [ r ]) in
  check Alcotest.int "60+60+10 wrapped" 5 (List.length lines) (* 3 seq lines + header + trailing "" *)

let test_fasta_errors () =
  check Alcotest.bool "data before header" true
    (Result.is_error (Fasta.parse "ACGT\n>x\nACGT"));
  check Alcotest.bool "bad letters" true (Result.is_error (Fasta.parse ">x\nAC!T"))

let test_fasta_entry_conversion () =
  let e = fancy_entry () in
  let r = Fasta.of_entry e in
  check Alcotest.string "versioned id" "TST000042.3" r.Fasta.id;
  let back = Fasta.to_entry r in
  check Alcotest.string "accession" "TST000042" back.Entry.accession;
  check Alcotest.int "version" 3 back.Entry.version

(* ---- GenBank ---------------------------------------------------------- *)

let test_genbank_roundtrip () =
  let entries = fancy_entry () :: sample_entries () in
  match Genbank.parse (Genbank.print entries) with
  | Ok back ->
      check Alcotest.int "count" (List.length entries) (List.length back);
      List.iter2 (fun a b -> check entry_t "entry" a b) entries back
  | Error msg -> Alcotest.fail msg

let test_genbank_multi_record () =
  let entries = sample_entries () in
  let text = String.concat "" (List.map Genbank.print_one entries) in
  match Genbank.parse text with
  | Ok back -> check Alcotest.int "all records" (List.length entries) (List.length back)
  | Error msg -> Alcotest.fail msg

let test_genbank_errors () =
  check Alcotest.bool "missing terminator" true
    (Result.is_error (Genbank.parse "LOCUS       X 4 bp\nACCESSION   X\nORIGIN\n        1 acgt\n"));
  check Alcotest.bool "parse_one on two records" true
    (Result.is_error (Genbank.parse_one (Genbank.print (sample_entries ()))))

let test_genbank_parse_one () =
  let e = fancy_entry () in
  match Genbank.parse_one (Genbank.print_one e) with
  | Ok back -> check entry_t "single" e back
  | Error msg -> Alcotest.fail msg

(* ---- EMBL ---------------------------------------------------------------- *)

let test_embl_roundtrip () =
  let entries = fancy_entry () :: sample_entries () in
  match Embl.parse (Embl.print entries) with
  | Ok back ->
      check Alcotest.int "count" (List.length entries) (List.length back);
      List.iter2 (fun a b -> check entry_t "entry" a b) entries back
  | Error msg -> Alcotest.fail msg

let test_embl_genbank_agree () =
  (* the same entries through either syntax are the same entries *)
  let entries = sample_entries () in
  let via_gb = Result.get_ok (Genbank.parse (Genbank.print entries)) in
  let via_embl = Result.get_ok (Embl.parse (Embl.print entries)) in
  List.iter2 (fun a b -> check entry_t "cross-format" a b) via_gb via_embl

(* ---- AceDB ------------------------------------------------------------------ *)

let test_acedb_tree_roundtrip () =
  let tree =
    Acedb.node "Root" ~value:"r"
      ~children:
        [
          Acedb.node "Child" ~value:"one";
          Acedb.node "Child" ~value:"two"
            ~children:[ Acedb.node "Leaf"; Acedb.node "Leaf" ~value:"x" ];
        ]
  in
  match Acedb.parse (Acedb.print tree) with
  | Ok back -> check Alcotest.bool "tree equal" true (Acedb.equal tree back)
  | Error msg -> Alcotest.fail msg

let test_acedb_entry_roundtrip () =
  let e = fancy_entry () in
  match Acedb.to_entry (Result.get_ok (Acedb.parse (Acedb.print (Acedb.of_entry e)))) with
  | Ok back -> check entry_t "entry through tree" e back
  | Error msg -> Alcotest.fail msg

let test_acedb_errors () =
  check Alcotest.bool "empty" true (Result.is_error (Acedb.parse ""));
  check Alcotest.bool "no colon" true (Result.is_error (Acedb.parse "just words"));
  check Alcotest.bool "indented first line" true
    (Result.is_error (Acedb.parse "  Tag: x"))

let test_acedb_size () =
  let tree = Acedb.node "a" ~children:[ Acedb.node "b"; Acedb.node "c" ~children:[ Acedb.node "d" ] ] in
  check Alcotest.int "size" 4 (Acedb.size tree)

(* ---- Entry ---------------------------------------------------------------- *)

let test_entry_essential_equality () =
  let e = fancy_entry () in
  let bumped = Entry.make ~version:(e.Entry.version + 1) ~definition:e.Entry.definition
      ~organism:e.Entry.organism ~features:e.Entry.features ~keywords:e.Entry.keywords
      ~accession:e.Entry.accession e.Entry.sequence
  in
  check Alcotest.bool "essentially equal" true (Entry.essentially_equal e bumped);
  check Alcotest.bool "not equal" false (Entry.equal e bumped)

let suites =
  [
    ( "formats.fasta",
      [
        tc "roundtrip" `Quick test_fasta_roundtrip;
        tc "wrapping" `Quick test_fasta_wrapping;
        tc "errors" `Quick test_fasta_errors;
        tc "entry conversion" `Quick test_fasta_entry_conversion;
      ] );
    ( "formats.genbank",
      [
        tc "roundtrip" `Quick test_genbank_roundtrip;
        tc "multi record" `Quick test_genbank_multi_record;
        tc "errors" `Quick test_genbank_errors;
        tc "parse one" `Quick test_genbank_parse_one;
      ] );
    ( "formats.embl",
      [
        tc "roundtrip" `Quick test_embl_roundtrip;
        tc "agrees with genbank" `Quick test_embl_genbank_agree;
      ] );
    ( "formats.acedb",
      [
        tc "tree roundtrip" `Quick test_acedb_tree_roundtrip;
        tc "entry roundtrip" `Quick test_acedb_entry_roundtrip;
        tc "errors" `Quick test_acedb_errors;
        tc "size" `Quick test_acedb_size;
      ] );
    ("formats.entry", [ tc "essential equality" `Quick test_entry_essential_equality ]);
  ]
