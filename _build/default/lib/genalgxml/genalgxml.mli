(** GenAlgXML — the standardized XML input/output facility for genomic
    data the paper proposes in section 6.4 ("we plan to design our own
    XML application, which we name GenAlgXML"), covering the high-level
    objects of the Genomics Algebra that existing applications (GEML,
    RiboML, …) cannot represent.

    Every {!Genalg_core.Value.t} round-trips: scalars, sequences, genes,
    transcripts, proteins, chromosomes, genomes, homogeneous lists and
    uncertainty-carrying values with provenance. *)

val to_xml : Genalg_core.Value.t -> Xml.t
val of_xml : Xml.t -> (Genalg_core.Value.t, string) result

val to_string : Genalg_core.Value.t -> string
(** Serialized document with declaration. *)

val of_string : string -> (Genalg_core.Value.t, string) result
