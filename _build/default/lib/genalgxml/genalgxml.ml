open Genalg_gdt
module Value = Genalg_core.Value
module Sort = Genalg_core.Sort

let ( let* ) = Result.bind

let code_attr code = ("code", string_of_int (Genetic_code.id code))

let exon_elements exons =
  List.map
    (fun (off, len) ->
      Xml.element "exon"
        ~attrs:[ ("offset", string_of_int off); ("length", string_of_int len) ])
    exons

let sequence_element name seq = Xml.element name ~children:[ Xml.text (Sequence.to_string seq) ]

let feature_element (f : Feature.t) =
  Xml.element "feature"
    ~attrs:
      [
        ("kind", Feature.kind_to_string f.Feature.kind);
        ("location", Location.to_string f.Feature.location);
      ]
    ~children:
      (List.map
         (fun (k, v) ->
           Xml.element "qualifier" ~attrs:[ ("key", k) ] ~children:[ Xml.text v ])
         f.Feature.qualifiers)

let rec to_xml = function
  | Value.VBool b -> Xml.element "bool" ~children:[ Xml.text (string_of_bool b) ]
  | Value.VInt i -> Xml.element "int" ~children:[ Xml.text (string_of_int i) ]
  | Value.VFloat f ->
      Xml.element "float" ~children:[ Xml.text (Printf.sprintf "%h" f) ]
  | Value.VString s -> Xml.element "string" ~children:[ Xml.text s ]
  | Value.VNucleotide b ->
      Xml.element "nucleotide" ~children:[ Xml.text (String.make 1 (Nucleotide.to_char b)) ]
  | Value.VAmino_acid a ->
      Xml.element "aminoacid" ~children:[ Xml.text (String.make 1 (Amino_acid.to_char a)) ]
  | Value.VDna s -> sequence_element "dna" s
  | Value.VRna s -> sequence_element "rna" s
  | Value.VProtein_seq s -> sequence_element "proteinseq" s
  | Value.VGene g ->
      Xml.element "gene"
        ~attrs:[ ("id", g.Gene.id); ("name", g.Gene.name); code_attr g.Gene.code ]
        ~children:(sequence_element "dna" g.Gene.dna :: exon_elements g.Gene.exons)
  | Value.VPrimary p ->
      Xml.element "primarytranscript"
        ~attrs:[ ("gene-id", p.Transcript.gene_id); code_attr p.Transcript.code ]
        ~children:(sequence_element "rna" p.Transcript.rna :: exon_elements p.Transcript.exons)
  | Value.VMrna m ->
      Xml.element "mrna"
        ~attrs:[ ("gene-id", m.Transcript.gene_id); code_attr m.Transcript.code ]
        ~children:[ sequence_element "rna" m.Transcript.rna ]
  | Value.VProtein p ->
      Xml.element "protein"
        ~attrs:[ ("id", p.Protein.id); ("name", p.Protein.name) ]
        ~children:[ sequence_element "proteinseq" p.Protein.residues ]
  | Value.VChromosome c ->
      Xml.element "chromosome"
        ~attrs:[ ("name", c.Chromosome.name) ]
        ~children:
          (sequence_element "dna" c.Chromosome.dna
          :: List.map feature_element c.Chromosome.features)
  | Value.VGenome g ->
      Xml.element "genome"
        ~attrs:
          [
            ("organism", g.Genome.organism);
            ("taxonomy", String.concat ";" g.Genome.taxonomy);
          ]
        ~children:
          (List.map (fun c -> to_xml (Value.VChromosome c)) g.Genome.chromosomes)
  | Value.VList (elt, values) ->
      Xml.element "list"
        ~attrs:[ ("sort", Sort.to_string elt) ]
        ~children:(List.map to_xml values)
  | Value.VUncertain (elt, u) ->
      Xml.element "uncertain"
        ~attrs:[ ("sort", Sort.to_string elt) ]
        ~children:
          (List.map
             (fun (alt : Value.t Uncertain.alternative) ->
               let prov_attrs =
                 match alt.Uncertain.provenance with
                 | None -> []
                 | Some p ->
                     [
                       ("source", p.Provenance.source);
                       ("record", p.Provenance.record_id);
                       ("source-version", string_of_int p.Provenance.version);
                     ]
               in
               Xml.element "alternative"
                 ~attrs:
                   (("confidence", Printf.sprintf "%h" alt.Uncertain.confidence)
                   :: prov_attrs)
                 ~children:[ to_xml alt.Uncertain.value ])
             (Uncertain.alternatives u))

(* ------------------------------------------------------------------ *)

let required_attr node key =
  match Xml.attr node key with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing attribute %s" key)

let parse_code node =
  match Xml.attr node "code" with
  | None -> Ok Genetic_code.standard
  | Some s -> (
      match int_of_string_opt s with
      | None -> Error ("bad genetic code id " ^ s)
      | Some id -> (
          match Genetic_code.by_id id with
          | Some c -> Ok c
          | None -> Error (Printf.sprintf "unknown genetic code %d" id)))

let parse_exons node =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
        let* off = required_attr e "offset" in
        let* len = required_attr e "length" in
        (match int_of_string_opt off, int_of_string_opt len with
        | Some o, Some l -> loop ((o, l) :: acc) rest
        | _ -> Error "bad exon attributes")
  in
  loop [] (Xml.children_named node "exon")

let parse_sequence alphabet node = Sequence.of_string alphabet (Xml.text_content node)

let child_sequence node name alphabet =
  match Xml.child node name with
  | None -> Error (Printf.sprintf "missing <%s> child" name)
  | Some c -> parse_sequence alphabet c

let parse_feature node =
  let* kind = required_attr node "kind" in
  let* loc = required_attr node "location" in
  let* location = Location.of_string loc in
  let rec quals acc = function
    | [] -> Ok (List.rev acc)
    | q :: rest ->
        let* key = required_attr q "key" in
        quals ((key, Xml.text_content q) :: acc) rest
  in
  let* qualifiers = quals [] (Xml.children_named node "qualifier") in
  Ok (Feature.make ~qualifiers (Feature.kind_of_string kind) location)

let rec of_xml node =
  match node with
  | Xml.Text _ -> Error "expected an element, found text"
  | Xml.Element (name, _, _) -> (
      let content () = Xml.text_content node in
      match name with
      | "bool" -> (
          match bool_of_string_opt (String.trim (content ())) with
          | Some b -> Ok (Value.VBool b)
          | None -> Error "bad bool")
      | "int" -> (
          match int_of_string_opt (String.trim (content ())) with
          | Some i -> Ok (Value.VInt i)
          | None -> Error "bad int")
      | "float" -> (
          match float_of_string_opt (String.trim (content ())) with
          | Some f -> Ok (Value.VFloat f)
          | None -> Error "bad float")
      | "string" -> Ok (Value.VString (content ()))
      | "nucleotide" -> (
          match String.trim (content ()) with
          | s when String.length s = 1 -> (
              match Nucleotide.of_char s.[0] with
              | Some b -> Ok (Value.VNucleotide b)
              | None -> Error "bad nucleotide")
          | _ -> Error "bad nucleotide")
      | "aminoacid" -> (
          match String.trim (content ()) with
          | s when String.length s = 1 -> (
              match Amino_acid.of_char s.[0] with
              | Some a -> Ok (Value.VAmino_acid a)
              | None -> Error "bad amino acid")
          | _ -> Error "bad amino acid")
      | "dna" ->
          let* s = parse_sequence Sequence.Dna node in
          Ok (Value.VDna s)
      | "rna" ->
          let* s = parse_sequence Sequence.Rna node in
          Ok (Value.VRna s)
      | "proteinseq" ->
          let* s = parse_sequence Sequence.Protein node in
          Ok (Value.VProtein_seq s)
      | "gene" ->
          let* id = required_attr node "id" in
          let name = Option.value (Xml.attr node "name") ~default:id in
          let* code = parse_code node in
          let* dna = child_sequence node "dna" Sequence.Dna in
          let* exons = parse_exons node in
          let* g = Gene.make ~name ~exons ~code ~id dna in
          Ok (Value.VGene g)
      | "primarytranscript" -> (
          let* gene_id = required_attr node "gene-id" in
          let* code = parse_code node in
          let* rna = child_sequence node "rna" Sequence.Rna in
          let* exons = parse_exons node in
          match Transcript.primary ~gene_id ~exons ~code rna with
          | p -> Ok (Value.VPrimary p)
          | exception Invalid_argument msg -> Error msg)
      | "mrna" -> (
          let* gene_id = required_attr node "gene-id" in
          let* code = parse_code node in
          let* rna = child_sequence node "rna" Sequence.Rna in
          match Transcript.mrna ~gene_id ~code rna with
          | m -> Ok (Value.VMrna m)
          | exception Invalid_argument msg -> Error msg)
      | "protein" ->
          let* id = required_attr node "id" in
          let name = Option.value (Xml.attr node "name") ~default:id in
          let* residues = child_sequence node "proteinseq" Sequence.Protein in
          let* p = Protein.make ~name ~id residues in
          Ok (Value.VProtein p)
      | "chromosome" ->
          let* cname = required_attr node "name" in
          let* dna = child_sequence node "dna" Sequence.Dna in
          let rec feats acc = function
            | [] -> Ok (List.rev acc)
            | f :: rest ->
                let* feat = parse_feature f in
                feats (feat :: acc) rest
          in
          let* features = feats [] (Xml.children_named node "feature") in
          let* c = Chromosome.make ~features ~name:cname dna in
          Ok (Value.VChromosome c)
      | "genome" ->
          let* organism = required_attr node "organism" in
          let taxonomy =
            match Xml.attr node "taxonomy" with
            | None | Some "" -> []
            | Some t -> String.split_on_char ';' t
          in
          let rec chroms acc = function
            | [] -> Ok (List.rev acc)
            | c :: rest -> (
                let* v = of_xml c in
                match v with
                | Value.VChromosome chrom -> chroms (chrom :: acc) rest
                | _ -> Error "genome children must be chromosomes")
          in
          let* chromosomes = chroms [] (Xml.children_named node "chromosome") in
          let* g = Genome.make ~taxonomy ~organism chromosomes in
          Ok (Value.VGenome g)
      | "list" -> (
          let* sort_name = required_attr node "sort" in
          match Sort.of_string sort_name with
          | None -> Error ("unknown sort " ^ sort_name)
          | Some elt -> (
              let rec items acc = function
                | [] -> Ok (List.rev acc)
                | (Xml.Element _ as c) :: rest ->
                    let* v = of_xml c in
                    items (v :: acc) rest
                | Xml.Text _ :: rest -> items acc rest
              in
              let children =
                match node with Xml.Element (_, _, cs) -> cs | Xml.Text _ -> []
              in
              let* values = items [] children in
              match Value.vlist elt values with
              | v -> Ok v
              | exception Invalid_argument msg -> Error msg))
      | "uncertain" -> (
          let* _sort_name = required_attr node "sort" in
          let rec alts acc = function
            | [] -> Ok (List.rev acc)
            | a :: rest -> (
                let* conf = required_attr a "confidence" in
                match float_of_string_opt conf with
                | None -> Error "bad confidence"
                | Some confidence -> (
                    let provenance =
                      match Xml.attr a "source", Xml.attr a "record" with
                      | Some source, Some record_id ->
                          let version =
                            Option.bind (Xml.attr a "source-version") int_of_string_opt
                            |> Option.value ~default:1
                          in
                          Some (Provenance.make ~version ~source ~record_id ())
                      | _ -> None
                    in
                    let value_elt =
                      match a with
                      | Xml.Element (_, _, cs) ->
                          List.find_opt
                            (function Xml.Element _ -> true | Xml.Text _ -> false)
                            cs
                      | Xml.Text _ -> None
                    in
                    match value_elt with
                    | None -> Error "alternative without a value"
                    | Some v ->
                        let* value = of_xml v in
                        alts ({ Uncertain.value; confidence; provenance } :: acc) rest))
          in
          let* alternatives = alts [] (Xml.children_named node "alternative") in
          match Value.uncertain (Uncertain.of_alternatives alternatives) with
          | v -> Ok v
          | exception Invalid_argument msg -> Error msg)
      | other -> Error (Printf.sprintf "unknown GenAlgXML element <%s>" other))

let to_string v = Xml.to_string (to_xml v)

let of_string s =
  let* node = Xml.parse s in
  of_xml node
