lib/genalgxml/xml.mli:
