lib/genalgxml/genalgxml.mli: Genalg_core Xml
