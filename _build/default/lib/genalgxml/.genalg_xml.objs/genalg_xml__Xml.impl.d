lib/genalgxml/xml.ml: Buffer List Printf String
