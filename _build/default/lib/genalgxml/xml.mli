(** A small XML engine: elements, attributes, text, escaping. Enough for
    GenAlgXML documents; no namespaces, DTDs or CDATA. *)

type t =
  | Element of string * (string * string) list * t list
  | Text of string

val element : ?attrs:(string * string) list -> ?children:t list -> string -> t
val text : string -> t

val to_string : ?declaration:bool -> t -> string
(** Pretty-printed with two-space indentation; text-only elements stay on
    one line. [declaration] (default true) prepends [<?xml ...?>]. *)

val parse : string -> (t, string) result
(** Parse a document with a single root element. XML declarations,
    comments and inter-element whitespace are skipped; the five standard
    entities are decoded. *)

val attr : t -> string -> string option
val child : t -> string -> t option
val children_named : t -> string -> t list
val text_content : t -> string
(** Concatenated text of all [Text] children (not recursive). *)

val escape : string -> string
val unescape : string -> (string, string) result
