type t =
  | Element of string * (string * string) list * t list
  | Text of string

let element ?(attrs = []) ?(children = []) name = Element (name, attrs, children)
let text s = Text s

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '&' then begin
      match String.index_from_opt s i ';' with
      | None -> Error "unterminated entity"
      | Some j -> (
          let entity = String.sub s (i + 1) (j - i - 1) in
          match entity with
          | "amp" -> Buffer.add_char buf '&'; loop (j + 1)
          | "lt" -> Buffer.add_char buf '<'; loop (j + 1)
          | "gt" -> Buffer.add_char buf '>'; loop (j + 1)
          | "quot" -> Buffer.add_char buf '"'; loop (j + 1)
          | "apos" -> Buffer.add_char buf '\''; loop (j + 1)
          | other -> Error ("unknown entity &" ^ other ^ ";"))
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0

let to_string ?(declaration = true) root =
  let buf = Buffer.create 1024 in
  if declaration then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  let add_attrs attrs =
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
      attrs
  in
  let rec walk indent node =
    match node with
    | Text s -> Buffer.add_string buf (escape s)
    | Element (name, attrs, children) -> (
        Buffer.add_string buf indent;
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        add_attrs attrs;
        match children with
        | [] -> Buffer.add_string buf "/>\n"
        | [ Text s ] ->
            Buffer.add_char buf '>';
            Buffer.add_string buf (escape s);
            Buffer.add_string buf (Printf.sprintf "</%s>\n" name)
        | _ ->
            Buffer.add_string buf ">\n";
            List.iter
              (fun child ->
                match child with
                | Text s ->
                    Buffer.add_string buf (indent ^ "  ");
                    Buffer.add_string buf (escape s);
                    Buffer.add_char buf '\n'
                | Element _ -> walk (indent ^ "  ") child)
              children;
            Buffer.add_string buf indent;
            Buffer.add_string buf (Printf.sprintf "</%s>\n" name))
  in
  walk "" root;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

exception Err of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Err (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && input.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let starts_with p =
    !pos + String.length p <= n && String.sub input !pos (String.length p) = p
  in
  let skip_until p =
    match
      let rec find i =
        if i + String.length p > n then None
        else if String.sub input i (String.length p) = p then Some i
        else find (i + 1)
      in
      find !pos
    with
    | Some i -> pos := i + String.length p
    | None -> fail (Printf.sprintf "unterminated construct (looking for %s)" p)
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = ':' || c = '.'
  in
  let read_name () =
    let start = !pos in
    while !pos < n && is_name_char input.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a name";
    String.sub input start (!pos - start)
  in
  let read_attr_value () =
    expect '"';
    let start = !pos in
    while !pos < n && input.[!pos] <> '"' do
      incr pos
    done;
    if !pos >= n then fail "unterminated attribute value";
    let raw = String.sub input start (!pos - start) in
    incr pos;
    match unescape raw with Ok v -> v | Error msg -> fail msg
  in
  let rec skip_misc () =
    skip_ws ();
    if starts_with "<?" then begin
      skip_until "?>";
      skip_misc ()
    end
    else if starts_with "<!--" then begin
      skip_until "-->";
      skip_misc ()
    end
  in
  let rec parse_element () =
    expect '<';
    let name = read_name () in
    let rec attrs acc =
      skip_ws ();
      match peek () with
      | Some '/' | Some '>' -> List.rev acc
      | Some c when is_name_char c ->
          let k = read_name () in
          skip_ws ();
          expect '=';
          skip_ws ();
          let v = read_attr_value () in
          attrs ((k, v) :: acc)
      | _ -> fail "malformed attributes"
    in
    let attributes = attrs [] in
    skip_ws ();
    if starts_with "/>" then begin
      pos := !pos + 2;
      Element (name, attributes, [])
    end
    else begin
      expect '>';
      let children = parse_children name in
      Element (name, attributes, children)
    end
  and parse_children parent =
    let acc = ref [] in
    let closed = ref false in
    while not !closed do
      if starts_with "</" then begin
        pos := !pos + 2;
        let name = read_name () in
        if name <> parent then fail (Printf.sprintf "mismatched closing tag %s" name);
        skip_ws ();
        expect '>';
        closed := true
      end
      else if starts_with "<!--" then skip_until "-->"
      else if starts_with "<" then acc := parse_element () :: !acc
      else begin
        let start = !pos in
        while !pos < n && input.[!pos] <> '<' do
          incr pos
        done;
        if !pos >= n then fail "unterminated element";
        let raw = String.sub input start (!pos - start) in
        let txt = match unescape raw with Ok v -> v | Error msg -> fail msg in
        if String.trim txt <> "" then acc := Text txt :: !acc
      end
    done;
    List.rev !acc
  in
  match
    skip_misc ();
    let root = parse_element () in
    skip_misc ();
    if !pos <> n then fail "trailing content";
    root
  with
  | root -> Ok root
  | exception Err msg -> Error msg

let attr node key =
  match node with
  | Element (_, attrs, _) -> List.assoc_opt key attrs
  | Text _ -> None

let children_named node name =
  match node with
  | Element (_, _, children) ->
      List.filter
        (function Element (n, _, _) -> n = name | Text _ -> false)
        children
  | Text _ -> []

let child node name =
  match children_named node name with [] -> None | c :: _ -> Some c

let text_content node =
  match node with
  | Text s -> s
  | Element (_, _, children) ->
      String.concat ""
        (List.filter_map (function Text s -> Some s | Element _ -> None) children)
