let length ~equal a b =
  (* Keep the shorter array as the DP row. *)
  let a, b = if Array.length a < Array.length b then (a, b) else (b, a) in
  let n = Array.length a in
  let prev = Array.make (n + 1) 0 in
  let cur = Array.make (n + 1) 0 in
  Array.iter
    (fun bj ->
      for i = 1 to n do
        if equal a.(i - 1) bj then cur.(i) <- prev.(i - 1) + 1
        else cur.(i) <- max prev.(i) cur.(i - 1)
      done;
      Array.blit cur 0 prev 0 (n + 1))
    b;
  prev.(n)

type 'a edit = Keep of 'a | Remove of 'a | Add of 'a

(* Myers' O(ND) diff with a trace of V arrays for backtracking. *)
let diff ~equal a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 then Array.to_list (Array.map (fun x -> Add x) b)
  else if m = 0 then Array.to_list (Array.map (fun x -> Remove x) a)
  else begin
    let max_d = n + m in
    let offset = max_d in
    let v = Array.make ((2 * max_d) + 1) 0 in
    let trace = ref [] in
    let found = ref None in
    let d = ref 0 in
    while !found = None && !d <= max_d do
      let dd = !d in
      trace := Array.copy v :: !trace;
      let k = ref (-dd) in
      while !found = None && !k <= dd do
        let kk = !k in
        let x =
          if kk = -dd || (kk <> dd && v.(offset + kk - 1) < v.(offset + kk + 1)) then
            v.(offset + kk + 1)
          else v.(offset + kk - 1) + 1
        in
        let x = ref x in
        let y () = !x - kk in
        while !x < n && y () < m && equal a.(!x) b.(y ()) do
          incr x
        done;
        v.(offset + kk) <- !x;
        if !x >= n && y () >= m then found := Some dd;
        k := !k + 2
      done;
      incr d
    done;
    (* Backtrack through the stored V arrays. *)
    let script = ref [] in
    let x = ref n and y = ref m in
    let trace = Array.of_list (List.rev !trace) in
    let d = ref (match !found with Some d -> d | None -> assert false) in
    while !d > 0 do
      let v = trace.(!d) in
      let k = !x - !y in
      let prev_k =
        if k = - !d || (k <> !d && v.(offset + k - 1) < v.(offset + k + 1)) then k + 1
        else k - 1
      in
      let prev_x = v.(offset + prev_k) in
      let prev_y = prev_x - prev_k in
      (* snake *)
      while !x > prev_x && !y > prev_y do
        decr x;
        decr y;
        script := Keep a.(!x) :: !script
      done;
      if !x = prev_x then begin
        (* came from k+1: a downward move = insertion of b.(prev_y) *)
        decr y;
        script := Add b.(!y) :: !script
      end
      else begin
        decr x;
        script := Remove a.(!x) :: !script
      end;
      decr d
    done;
    (* d = 0: leading snake *)
    while !x > 0 && !y > 0 do
      decr x;
      decr y;
      script := Keep a.(!x) :: !script
    done;
    !script
  end

let lcs ~equal a b =
  List.filter_map (function Keep x -> Some x | Remove _ | Add _ -> None) (diff ~equal a b)

let apply script old =
  let out = ref [] in
  let i = ref 0 in
  let ok = ref true in
  List.iter
    (fun e ->
      if !ok then
        match e with
        | Keep x ->
            if !i < Array.length old && old.(!i) = x then begin
              out := x :: !out;
              incr i
            end
            else ok := false
        | Remove x ->
            if !i < Array.length old && old.(!i) = x then incr i else ok := false
        | Add x -> out := x :: !out)
    script;
  if !ok && !i = Array.length old then Some (Array.of_list (List.rev !out)) else None

let edit_distance_of script =
  List.fold_left
    (fun acc -> function Keep _ -> acc | Remove _ | Add _ -> acc + 1)
    0 script
