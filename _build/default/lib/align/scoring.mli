(** Substitution scoring for pairwise alignment.

    Provides the BLOSUM62 and PAM250 protein matrices and simple
    match/mismatch schemes for nucleotides, plus affine gap penalties.
    These power the algebra's [resembles] operator (paper section 6.3). *)

type t

val blosum62 : t
val pam250 : t

val dna : match_:int -> mismatch:int -> t
(** Uniform nucleotide scheme. Scores are symmetric; any letter outside
    the nucleotide alphabet scores as a mismatch. *)

val dna_default : t
(** [dna ~match_:2 ~mismatch:(-3)] — megablast-like. *)

val score : t -> char -> char -> int
(** Substitution score for two letters (case-insensitive). Letters unknown
    to the matrix use the matrix's minimum score. *)

val name : t -> string

type gap = {
  open_penalty : int;    (** cost of opening a gap, as a positive number *)
  extend_penalty : int;  (** cost per gapped position, positive *)
}

val default_gap : gap
(** open 10, extend 1 — the classic BLAST default for proteins. *)

val linear_gap : int -> gap
(** [linear_gap g] charges [g] per gapped position with no opening cost. *)
