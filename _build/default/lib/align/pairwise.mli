(** Pairwise sequence alignment by dynamic programming.

    One engine covers the three classical modes with affine gap penalties
    (Gotoh's algorithm):

    - [Global] — Needleman–Wunsch: end-to-end alignment of both sequences.
    - [Local] — Smith–Waterman: best-scoring pair of subsequences.
    - [Semiglobal] — free end gaps on the subject; aligns a whole query
      inside a longer subject (glocal).

    Sequences are given as strings (the textual form of {!Genalg_gdt.Sequence});
    use {!align_seq} for GDT values directly. *)

type mode = Global | Local | Semiglobal

type op =
  | Match            (** identical letters *)
  | Mismatch         (** substitution *)
  | Insert           (** gap in the subject (letter only in the query) *)
  | Delete           (** gap in the query (letter only in the subject) *)

type t = {
  score : int;
  query_start : int;    (** 0-based offset of the first aligned query letter *)
  query_end : int;      (** exclusive *)
  subject_start : int;
  subject_end : int;
  ops : op list;        (** alignment path, query/subject left to right *)
  aligned_query : string;    (** with ['-'] for gaps *)
  aligned_subject : string;
}

val align :
  ?mode:mode ->
  ?matrix:Scoring.t ->
  ?gap:Scoring.gap ->
  query:string ->
  subject:string ->
  unit ->
  t
(** Defaults: [Local], {!Scoring.dna_default}, {!Scoring.default_gap}.
    Runs in O(|query| × |subject|) time and space (the traceback matrix). *)

val align_seq :
  ?mode:mode ->
  ?matrix:Scoring.t ->
  ?gap:Scoring.gap ->
  query:Genalg_gdt.Sequence.t ->
  subject:Genalg_gdt.Sequence.t ->
  unit ->
  t
(** Convenience wrapper; picks {!Scoring.blosum62} automatically when both
    sequences are proteins and no matrix is supplied. *)

val score_only :
  ?mode:mode ->
  ?matrix:Scoring.t ->
  ?gap:Scoring.gap ->
  query:string ->
  subject:string ->
  unit ->
  int
(** The alignment score in O(min) memory, without traceback. *)

val banded_score :
  band:int ->
  ?matrix:Scoring.t ->
  ?gap:Scoring.gap ->
  query:string ->
  subject:string ->
  unit ->
  int
(** Global alignment score restricted to cells with
    [|i - j - (n - m)/2 ... |] within [band] of the main diagonal — the
    classic speedup when the sequences are known to be similar. Runs in
    O((n + m) · band) time. Equals {!score_only} with [Global] whenever
    the optimal path stays inside the band (always true when
    [band >= max n m]); otherwise it is a lower bound. Raises
    [Invalid_argument] when [band < 0] or when the band cannot reach the
    corner cell ([band < |n - m|]). *)

val identity : t -> float
(** Fraction of alignment columns that are exact matches, in [0, 1];
    0 for an empty alignment. *)

val pp : Format.formatter -> t -> unit
(** Three-line blast-style rendering (query / midline / subject). *)
