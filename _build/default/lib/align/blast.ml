type entry = { id : string; letters : string }

type db = {
  k : int;
  entries : entry array;
  index : (string, (int * int) list ref) Hashtbl.t;
      (* k-mer -> (entry index, offset) occurrences *)
}

let db_size db = Array.length db.entries
let word_size db = db.k

let make_db ?(k = 11) entries =
  if k < 2 then invalid_arg "Blast.make_db: word size must be >= 2";
  let ids = List.map fst entries in
  if List.length (List.sort_uniq String.compare ids) <> List.length ids then
    invalid_arg "Blast.make_db: duplicate subject ids";
  let entries =
    Array.of_list
      (List.map (fun (id, letters) -> { id; letters = String.uppercase_ascii letters }) entries)
  in
  let index = Hashtbl.create 4096 in
  Array.iteri
    (fun ei e ->
      let n = String.length e.letters in
      for off = 0 to n - k do
        let word = String.sub e.letters off k in
        match Hashtbl.find_opt index word with
        | Some cell -> cell := (ei, off) :: !cell
        | None -> Hashtbl.add index word (ref [ (ei, off) ])
      done)
    entries;
  { k; entries; index }

type hit = {
  subject_id : string;
  score : int;
  query_start : int;
  query_end : int;
  subject_start : int;
  subject_end : int;
  gapped : Pairwise.t option;
}

(* Ungapped X-drop extension of a seed match of length k at
   (q_off, s_off). Returns (score, q_start, q_end_exclusive, s_start). *)
let extend ~matrix ~x_drop ~query ~subject ~k ~q_off ~s_off =
  let seed_score = ref 0 in
  for i = 0 to k - 1 do
    seed_score := !seed_score + Scoring.score matrix query.[q_off + i] subject.[s_off + i]
  done;
  (* extend right *)
  let best_right = ref 0 and run = ref 0 and right_len = ref 0 in
  let qi = ref (q_off + k) and si = ref (s_off + k) in
  (try
     while !qi < String.length query && !si < String.length subject do
       run := !run + Scoring.score matrix query.[!qi] subject.[!si];
       incr qi;
       incr si;
       if !run > !best_right then begin
         best_right := !run;
         right_len := !qi - (q_off + k)
       end
       else if !best_right - !run > x_drop then raise Exit
     done
   with Exit -> ());
  (* extend left *)
  let best_left = ref 0 and run = ref 0 and left_len = ref 0 in
  let qi = ref (q_off - 1) and si = ref (s_off - 1) in
  (try
     while !qi >= 0 && !si >= 0 do
       run := !run + Scoring.score matrix query.[!qi] subject.[!si];
       if !run > !best_left then begin
         best_left := !run;
         left_len := q_off - !qi
       end
       else if !best_left - !run > x_drop then raise Exit;
       decr qi;
       decr si
     done
   with Exit -> ());
  let score = !seed_score + !best_right + !best_left in
  let q_start = q_off - !left_len in
  let q_end = q_off + k + !right_len in
  (score, q_start, q_end, s_off - !left_len)

let search ?(matrix = Scoring.dna_default) ?(min_score = 16) ?(x_drop = 20)
    ?(gapped = false) db ~query =
  let query = String.uppercase_ascii query in
  let n = String.length query in
  let best : (int * int, hit) Hashtbl.t = Hashtbl.create 64 in
  (* band the diagonal so nearby seeds on the same diagonal collapse *)
  let band_width = max db.k 16 in
  for q_off = 0 to n - db.k do
    let word = String.sub query q_off db.k in
    match Hashtbl.find_opt db.index word with
    | None -> ()
    | Some cell ->
        List.iter
          (fun (ei, s_off) ->
            let subject = db.entries.(ei).letters in
            let score, q_start, q_end, s_start =
              extend ~matrix ~x_drop ~query ~subject ~k:db.k ~q_off ~s_off
            in
            if score >= min_score then begin
              let diag = (s_off - q_off) / band_width in
              let key = (ei, diag) in
              let hit =
                {
                  subject_id = db.entries.(ei).id;
                  score;
                  query_start = q_start;
                  query_end = q_end;
                  subject_start = s_start;
                  subject_end = s_start + (q_end - q_start);
                  gapped = None;
                }
              in
              match Hashtbl.find_opt best key with
              | Some old when old.score >= score -> ()
              | Some _ | None -> Hashtbl.replace best key hit
            end)
          !cell
  done;
  let hits = Hashtbl.fold (fun _ h acc -> h :: acc) best [] in
  let hits =
    if not gapped then hits
    else
      List.map
        (fun h ->
          let entry =
            (* entries are few; linear lookup by id keeps the hit type simple *)
            Array.to_list db.entries |> List.find (fun e -> e.id = h.subject_id)
          in
          let margin = 2 * db.k in
          let s_lo = max 0 (h.subject_start - margin) in
          let s_hi = min (String.length entry.letters) (h.subject_end + margin) in
          let window = String.sub entry.letters s_lo (s_hi - s_lo) in
          let aln = Pairwise.align ~mode:Pairwise.Local ~matrix ~query ~subject:window () in
          {
            h with
            score = aln.Pairwise.score;
            query_start = aln.Pairwise.query_start;
            query_end = aln.Pairwise.query_end;
            subject_start = s_lo + aln.Pairwise.subject_start;
            subject_end = s_lo + aln.Pairwise.subject_end;
            gapped = Some aln;
          })
        hits
  in
  List.sort
    (fun a b ->
      let c = Int.compare b.score a.score in
      if c <> 0 then c else String.compare a.subject_id b.subject_id)
    hits

let best_hit ?matrix ?min_score db ~query =
  match search ?matrix ?min_score db ~query with
  | [] -> None
  | h :: _ -> Some h
