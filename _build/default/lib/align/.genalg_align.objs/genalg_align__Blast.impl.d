lib/align/blast.ml: Array Hashtbl Int List Pairwise Scoring String
