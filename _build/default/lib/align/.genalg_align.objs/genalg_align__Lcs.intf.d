lib/align/lcs.mli:
