lib/align/distance.ml: Array Fun String
