lib/align/distance.mli:
