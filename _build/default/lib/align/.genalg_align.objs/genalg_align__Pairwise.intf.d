lib/align/pairwise.mli: Format Genalg_gdt Scoring
