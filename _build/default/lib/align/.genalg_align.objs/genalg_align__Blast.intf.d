lib/align/blast.mli: Pairwise Scoring
