lib/align/scoring.ml: Array Char Genalg_gdt Printf String
