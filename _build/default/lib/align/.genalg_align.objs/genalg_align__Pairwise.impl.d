lib/align/pairwise.ml: Array Buffer Char Format Genalg_gdt List Scoring String
