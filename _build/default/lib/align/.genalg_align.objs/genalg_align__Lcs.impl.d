lib/align/lcs.ml: Array List
