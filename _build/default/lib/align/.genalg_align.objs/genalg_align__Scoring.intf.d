lib/align/scoring.mli:
